type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* JSON has no NaN/Infinity; clamp to null rather than emit garbage. *)
let float_repr f =
  if Float.is_nan f || Float.abs f = Float.infinity then None
  else Some (Printf.sprintf "%.6g" f)

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> (
      match float_repr f with
      | Some s -> Buffer.add_string buf s
      | None -> Buffer.add_string buf "null")
  | String s ->
      Buffer.add_char buf '"';
      Buffer.add_string buf (escape s);
      Buffer.add_char buf '"'
  | List xs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char buf ',';
          write buf x)
        xs;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_char buf '"';
          Buffer.add_string buf (escape k);
          Buffer.add_string buf "\":";
          write buf v)
        fields;
      Buffer.add_char buf '}'

let to_string t =
  let buf = Buffer.create 256 in
  write buf t;
  Buffer.contents buf

let rec pp ppf = function
  | (Null | Bool _ | Int _ | Float _ | String _) as atom ->
      Fmt.string ppf (to_string atom)
  | List [] -> Fmt.string ppf "[]"
  | List xs ->
      Fmt.pf ppf "@[<v 2>[@,%a@]@,]"
        (Fmt.list ~sep:(Fmt.any ",@,") pp)
        xs
  | Obj [] -> Fmt.string ppf "{}"
  | Obj fields ->
      let field ppf (k, v) = Fmt.pf ppf "\"%s\": %a" (escape k) pp v in
      Fmt.pf ppf "@[<v 2>{@,%a@]@,}"
        (Fmt.list ~sep:(Fmt.any ",@,") field)
        fields
