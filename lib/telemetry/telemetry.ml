type t = {
  metrics : Metrics.t;
  spans : Span.t;
}

let create ?(tracing = false) ~n () =
  {
    metrics = Metrics.create ~n;
    spans = (if tracing then Span.create () else Span.disabled);
  }

let disabled = { metrics = Metrics.disabled; spans = Span.disabled }

let enabled t = Metrics.enabled t.metrics

type snapshot = { m : Metrics.snapshot; traces : int }

let snapshot t =
  { m = Metrics.snapshot t.metrics; traces = Span.trace_count t.spans }

let snapshot_to_json s =
  Json.Obj
    [
      ("metrics", Metrics.snapshot_to_json s.m);
      ("traces", Json.Int s.traces);
    ]

let pp_snapshot ppf s =
  Metrics.pp_snapshot ppf s.m;
  if s.traces > 0 then Fmt.pf ppf "traces                       %8d@." s.traces

let snapshot_string t =
  Json.to_string (snapshot_to_json (snapshot t)) ^ "\n" ^ Span.dump t.spans

let metrics_of_snapshot s = s.m
