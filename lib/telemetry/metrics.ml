type counter = { mutable count : int }

(* Bucket [i] holds samples in [2^i, 2^(i+1)); bucket 0 also takes 0 and 1.
   62 buckets cover the whole non-negative OCaml int range. *)
let n_buckets = 62

type histogram = {
  buckets : int array;
  mutable total : int;
  mutable sum : int;
  mutable max_seen : int;
}

type t = {
  n : int;
  live : bool;
  counters : (string, counter array) Hashtbl.t;
  histograms : (string, histogram array) Hashtbl.t;
}

let create ~n =
  {
    n = max n 1;
    live = true;
    counters = Hashtbl.create 64;
    histograms = Hashtbl.create 16;
  }

let dummy_counter = { count = 0 }

(* Shared write-sinks for the disabled registry: absorbed writes are
   never read back, so the cross-run sharing is harmless by design. *)
let dummy_histogram =
  { buckets = Array.make n_buckets 0; total = 0; sum = 0; max_seen = 0 }
[@@lint.allow "escaping-mutable-state"]

let disabled =
  { n = 1; live = false; counters = Hashtbl.create 1; histograms = Hashtbl.create 1 }
[@@lint.allow "escaping-mutable-state"]

let enabled t = t.live

let counter t name ~node =
  if not t.live then dummy_counter
  else begin
    let cells =
      match Hashtbl.find_opt t.counters name with
      | Some cells -> cells
      | None ->
          let cells = Array.init t.n (fun _ -> { count = 0 }) in
          Hashtbl.replace t.counters name cells;
          cells
    in
    cells.(node)
  end

let inc c = c.count <- c.count + 1
let add c k = c.count <- c.count + k
let gauge = counter
let set_gauge c v = c.count <- v

let counter_value t name ~node =
  match Hashtbl.find_opt t.counters name with
  | Some cells when node < Array.length cells -> cells.(node).count
  | _ -> 0

let histogram t name ~node =
  if not t.live then dummy_histogram
  else begin
    let cells =
      match Hashtbl.find_opt t.histograms name with
      | Some cells -> cells
      | None ->
          let cells =
            Array.init t.n (fun _ ->
                {
                  buckets = Array.make n_buckets 0;
                  total = 0;
                  sum = 0;
                  max_seen = 0;
                })
          in
          Hashtbl.replace t.histograms name cells;
          cells
    in
    cells.(node)
  end

let bucket_of v =
  if v < 2 then 0
  else begin
    (* index of the highest set bit *)
    let i = ref 0 and v = ref v in
    while !v > 1 do
      v := !v lsr 1;
      incr i
    done;
    min !i (n_buckets - 1)
  end

let observe h v =
  let v = max 0 v in
  h.buckets.(bucket_of v) <- h.buckets.(bucket_of v) + 1;
  h.total <- h.total + 1;
  h.sum <- h.sum + v;
  if v > h.max_seen then h.max_seen <- v

let hist_count h = h.total
let hist_sum h = h.sum

(* Same rank convention as Stats.percentile_us: 0-based index
   [p * (total - 1)] into the sorted samples; we return the enclosing
   bucket's inclusive upper bound, clamped to the largest sample seen. *)
let quantile h p =
  if h.total = 0 then 0
  else begin
    let rank = int_of_float (p *. float_of_int (h.total - 1)) in
    let rank = max 0 (min (h.total - 1) rank) in
    let acc = ref 0 and found = ref (n_buckets - 1) in
    (try
       for i = 0 to n_buckets - 1 do
         acc := !acc + h.buckets.(i);
         if !acc > rank then begin
           found := i;
           raise Exit
         end
       done
     with Exit -> ());
    (* With 62 buckets the widest upper bound is [2^62 - 1 = max_int]. *)
    let upper = (1 lsl (!found + 1)) - 1 in
    min upper h.max_seen
  end

(* ---- snapshots ---- *)

type hist_view = { h_count : int; h_sum : int; h_p50 : int; h_p90 : int; h_p99 : int }

type snapshot = {
  s_n : int;
  s_counters : (string * int array) list;  (** sorted by name *)
  s_histograms : (string * hist_view array) list;
}

let snapshot t =
  let sorted_keys tbl =
    List.sort String.compare (Hashtbl.fold (fun k _ acc -> k :: acc) tbl [])
  in
  {
    s_n = t.n;
    s_counters =
      List.map
        (fun name ->
          let cells = Hashtbl.find t.counters name in
          (name, Array.map (fun c -> c.count) cells))
        (sorted_keys t.counters);
    s_histograms =
      List.map
        (fun name ->
          let cells = Hashtbl.find t.histograms name in
          ( name,
            Array.map
              (fun h ->
                {
                  h_count = h.total;
                  h_sum = h.sum;
                  h_p50 = quantile h 0.50;
                  h_p90 = quantile h 0.90;
                  h_p99 = quantile h 0.99;
                })
              cells ))
        (sorted_keys t.histograms);
  }

let snapshot_to_json s =
  let ints a = Json.List (Array.to_list (Array.map (fun v -> Json.Int v) a)) in
  let hist h =
    Json.Obj
      [
        ("count", Json.Int h.h_count);
        ("sum", Json.Int h.h_sum);
        ("p50", Json.Int h.h_p50);
        ("p90", Json.Int h.h_p90);
        ("p99", Json.Int h.h_p99);
      ]
  in
  Json.Obj
    [
      ("nodes", Json.Int s.s_n);
      ( "counters",
        Json.Obj (List.map (fun (name, a) -> (name, ints a)) s.s_counters) );
      ( "histograms",
        Json.Obj
          (List.map
             (fun (name, a) ->
               (name, Json.List (Array.to_list (Array.map hist a))))
             s.s_histograms) );
    ]

let pp_snapshot ppf s =
  List.iter
    (fun (name, a) ->
      Fmt.pf ppf "%-28s" name;
      Array.iter (fun v -> Fmt.pf ppf " %8d" v) a;
      Fmt.pf ppf "@.")
    s.s_counters;
  List.iter
    (fun (name, a) ->
      Fmt.pf ppf "%-28s" name;
      Array.iter
        (fun h -> Fmt.pf ppf " %d/%d/%d" h.h_count h.h_p50 h.h_p99)
        a;
      Fmt.pf ppf "  (count/p50/p99)@.")
    s.s_histograms

let nonzero_nodes s ~name =
  match List.assoc_opt name s.s_counters with
  | None -> []
  | Some a ->
      Array.to_list a
      |> List.mapi (fun i v -> (i, v))
      |> List.filter_map (fun (i, v) -> if v <> 0 then Some i else None)

let counter_names s = List.map fst s.s_counters
