type m = { time : int; node : int; phase : string }

type t = {
  live : bool;
  traces : (int, m list ref) Hashtbl.t;  (** trace id -> marks, newest first *)
}

let create () = { live = true; traces = Hashtbl.create 1024 }
(* Never written while [live = false]; shared on purpose. *)
let disabled =
  { live = false; traces = Hashtbl.create 1 }
[@@lint.allow "escaping-mutable-state"]
let enabled t = t.live

let mark t ~trace ~node ~phase ~now =
  if t.live then begin
    match Hashtbl.find_opt t.traces trace with
    | Some cell -> cell := { time = now; node; phase } :: !cell
    | None -> Hashtbl.replace t.traces trace (ref [ { time = now; node; phase } ])
  end

let marks t ~trace =
  match Hashtbl.find_opt t.traces trace with
  | Some cell -> List.rev !cell
  | None -> []

let trace_ids t =
  List.sort Int.compare (Hashtbl.fold (fun id _ acc -> id :: acc) t.traces [])

let trace_count t = Hashtbl.length t.traces

let total_us t ~trace =
  match marks t ~trace with
  | [] | [ _ ] -> 0
  | first :: rest -> (List.nth rest (List.length rest - 1)).time - first.time

let pp_waterfall ppf t ~trace =
  match marks t ~trace with
  | [] -> Fmt.pf ppf "trace %d: no spans@." trace
  | first :: rest ->
      let total = total_us t ~trace in
      Fmt.pf ppf "trace %d: %d phases, total %.3fms@." trace (List.length rest)
        (float_of_int total /. 1000.0);
      let bar_width = 32 in
      let prev = ref first in
      List.iter
        (fun m ->
          let dur = m.time - !prev.time in
          let offset = !prev.time - first.time in
          let scale x =
            if total <= 0 then 0 else x * bar_width / total
          in
          let lead = scale offset in
          let len = max (scale dur) (if dur > 0 then 1 else 0) in
          let len = min len (bar_width - lead) in
          Fmt.pf ppf "  %9.3fms +%9.3fms  %-16s n%d  |%s%s%s|@."
            (float_of_int offset /. 1000.0)
            (float_of_int dur /. 1000.0)
            m.phase m.node
            (String.make lead ' ')
            (String.make len '#')
            (String.make (max 0 (bar_width - lead - len)) ' ');
          prev := m)
        rest

let to_json t ~trace =
  let ms = marks t ~trace in
  Json.Obj
    [
      ("trace", Json.Int trace);
      ("total_us", Json.Int (total_us t ~trace));
      ( "marks",
        Json.List
          (List.map
             (fun m ->
               Json.Obj
                 [
                   ("t_us", Json.Int m.time);
                   ("node", Json.Int m.node);
                   ("phase", Json.String m.phase);
                 ])
             ms) );
    ]

let dump t =
  let buf = Buffer.create 4096 in
  List.iter
    (fun id ->
      Buffer.add_string buf (string_of_int id);
      List.iter
        (fun m ->
          Buffer.add_string buf
            (Printf.sprintf " %d@%d:%s" m.time m.node m.phase))
        (marks t ~trace:id);
      Buffer.add_char buf '\n')
    (trace_ids t);
  Buffer.contents buf
