(** The telemetry sink: one {!Metrics.t} registry plus one {!Span.t}
    tracer, created per run and threaded into the simulator layers
    (net, cpu) and the protocol runtimes.

    The default everywhere is {!disabled}, whose probes are no-ops; a
    harness, bench or nemesis run that wants observability creates a live
    sink and passes it down. *)

type t = {
  metrics : Metrics.t;
  spans : Span.t;
}

val create : ?tracing:bool -> n:int -> unit -> t
(** Live metrics for an [n]-node cluster; [tracing] (default [false])
    additionally enables the span tracer — benches keep it off because a
    multi-million-op sweep has no use for per-request marks. *)

val disabled : t

val enabled : t -> bool
(** True iff the metric registry is live. *)

type snapshot

val snapshot : t -> snapshot
(** Metric values plus the trace count, frozen at this instant. *)

val snapshot_to_json : snapshot -> Json.t
val pp_snapshot : Format.formatter -> snapshot -> unit

val snapshot_string : t -> string
(** Canonical single-string rendering — byte-identical across runs of the
    same seed; the determinism test's oracle. *)

val metrics_of_snapshot : snapshot -> Metrics.snapshot
