(** Per-request span tracing.

    Every client operation carries a trace id (its command id) through the
    commit pipeline; each pipeline stage drops a {e mark} — a timestamped
    phase-transition point recorded against the simulator's virtual clock.
    Consecutive marks delimit spans, so the waterfall telescopes: the sum
    of the phase durations is exactly [last mark - first mark], the
    request's end-to-end latency.  Marking a disabled tracer checks one
    boolean and returns — no allocation, no lookup — so always-on probe
    sites cost nothing in production runs.

    Negative trace ids name protocol-internal activities that are not tied
    to one client request (e.g. a Mencius revocation of slot [i] traces as
    [-(i + 1)]). *)

type t

val create : unit -> t
val disabled : t

val enabled : t -> bool

val mark : t -> trace:int -> node:int -> phase:string -> now:int -> unit
(** Record that [trace] reached [phase] on [node] at virtual time [now].
    The first mark of a trace opens it.  No-op when disabled. *)

type m = { time : int; node : int; phase : string }

val marks : t -> trace:int -> m list
(** Marks of one trace in chronological order; [[]] if unknown. *)

val trace_ids : t -> int list
(** All known trace ids, sorted ascending. *)

val trace_count : t -> int

val total_us : t -> trace:int -> int
(** [last mark - first mark]; 0 for unknown or single-mark traces. *)

val pp_waterfall : Format.formatter -> t -> trace:int -> unit
(** The per-request waterfall: one line per phase with offset, duration
    and a proportional bar, then the total. *)

val to_json : t -> trace:int -> Json.t

val dump : t -> string
(** Every trace in id order, one compact line per mark — byte-identical
    across runs of the same seed (the determinism oracle). *)
