(** Per-node metric registry: counters, gauges and log-bucketed streaming
    histograms.

    Handles are registered once (a hashtable lookup) and then updated
    through direct field mutation, so probe sites on the protocols' hot
    paths cost an increment, not a lookup.  A disabled registry hands out
    shared dummy cells: updates still mutate the dummy (one word store)
    but register nothing and allocate nothing.

    Snapshots are deterministic — metric names sorted, per-node values in
    node order — so the same seeded run always produces byte-identical
    output (checked by the telemetry determinism test). *)

type t

val create : n:int -> t
(** A live registry for an [n]-node cluster. *)

val disabled : t
(** Shared no-op registry: every handle it returns is a dummy. *)

val enabled : t -> bool

(** {1 Counters and gauges} *)

type counter

val counter : t -> string -> node:int -> counter
(** Register (or re-fetch) the named per-node counter. *)

val inc : counter -> unit
val add : counter -> int -> unit

val gauge : t -> string -> node:int -> counter
(** A gauge is a counter updated with {!set_gauge} instead of {!inc};
    snapshots list it under the same counters table. *)

val set_gauge : counter -> int -> unit

val counter_value : t -> string -> node:int -> int
(** 0 when the metric or registry does not exist. *)

(** {1 Histograms} *)

type histogram

val histogram : t -> string -> node:int -> histogram

val observe : histogram -> int -> unit
(** Record a sample (µs, bytes, …).  Negative samples clamp to 0. *)

val quantile : histogram -> float -> int
(** [quantile h 0.99]: an upper bound on the exact percentile with
    power-of-two bucket resolution — for a sample x at that rank,
    [x <= quantile h p <= 2 * max 1 x].  0 when empty. *)

val hist_count : histogram -> int
val hist_sum : histogram -> int

(** {1 Snapshots} *)

type snapshot

val snapshot : t -> snapshot
(** Deep copy of every metric at this instant (sorted, deterministic). *)

val snapshot_to_json : snapshot -> Json.t
(** [{ "counters": {name: [per-node]}, "histograms": {name: [{...}]} }] *)

val pp_snapshot : Format.formatter -> snapshot -> unit
(** One line per metric: name then per-node values; histograms as
    [count/p50/p99]. *)

val nonzero_nodes : snapshot -> name:string -> int list
(** Nodes whose value for the named counter is non-zero. *)

val counter_names : snapshot -> string list
