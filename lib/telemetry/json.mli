(** Minimal JSON tree and printer.

    The bench artifacts and telemetry snapshots must be machine-readable,
    but the toolchain carries no JSON library, so this is the smallest
    conforming emitter: objects keep their field order (snapshots sort
    their keys before building the tree, which is what makes two runs of
    the same seed byte-identical). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact, single-line rendering. *)

val pp : Format.formatter -> t -> unit
(** Indented rendering (2 spaces), for committed artifacts and humans. *)
