(** Growable array (OCaml 5.1 predates [Dynarray]); used for replica logs. *)

type 'a t

val create : unit -> 'a t
val length : 'a t -> int
val get : 'a t -> int -> 'a
val set : 'a t -> int -> 'a -> unit
val push : 'a t -> 'a -> unit
val truncate : 'a t -> int -> unit
(** [truncate v n] keeps the first [n] elements. *)

val clear : 'a t -> unit
(** [clear v] empties [v] without releasing its storage — the natural
    reset for per-election/per-takeover accumulators that refill to a
    similar size. *)

val last : 'a t -> 'a option
val iter : ('a -> unit) -> 'a t -> unit
val iteri : (int -> 'a -> unit) -> 'a t -> unit
val to_list : 'a t -> 'a list
