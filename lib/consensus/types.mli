(** Shared types for the runtime protocol implementations. *)

type op =
  | Get of { key : int }
  | Put of { key : int; size : int; write_id : int }
      (** [write_id] is globally unique; the consistency checker uses it to
          validate what reads return. *)

type cmd = {
  id : int;  (** unique per submission; routes the completion callback *)
  op : op;
  origin : int;  (** replica id where the client submitted *)
  submitted_us : int;
}

val op_size : op -> int
(** Payload bytes carried by the operation. *)

val is_read : op -> bool
val key_of : op -> int

type entry = { term : int; cmd : cmd option  (** [None] is a no-op *) }

(** Completion notification delivered back at the origin replica. *)
type reply = { value : int option  (** write_id a Get observed *) }

(** Performance model parameters; see DESIGN.md for the calibration
    rationale (Raft ~41K ops/s leader-bound; Mencius ~55K). *)
type params = {
  pipeline_window : int;
      (** max concurrently in-flight append batches per follower *)
  cpu_leader_op_us : int;  (** leader-side CPU per committed op *)
  cpu_follower_op_us : int;  (** follower-side CPU per replicated op *)
  cpu_read_op_us : int;  (** CPU to serve a read at any replica *)
  cpu_pql_commit_extra_us : int;
      (** extra leader CPU per write under quorum leases (holder
          bookkeeping and notifications) *)
  msg_header_bytes : int;
  reply_bytes : int;
  heartbeat_interval_us : int;
  election_timeout_min_us : int;
  election_timeout_max_us : int;
  lease_duration_us : int;  (** paper: 2 s *)
  lease_renew_us : int;  (** paper: 0.5 s *)
  batch_size : int;
      (** leader-side command batching: accumulate up to this many client
          commands into one consensus instance / replication batch before
          flushing.  1 disables batching — byte-identical to the
          unbatched runtime. *)
  batch_delay_us : int;
      (** time bound on the accumulator: a partial batch flushes this
          many µs after its first command.  0 = flush on size only. *)
}

val default_params : params

val entry_bytes : params -> entry -> int
val batch_bytes : params -> entry list -> int

(** {1 Canonical renderings}

    Stable, deterministic strings used by the model checker to
    fingerprint messages and states.  [submitted_us] is excluded on
    purpose (it only feeds latency accounting). *)

val render_op : op -> string

val render_cmd : ?rename:(int -> int) -> cmd -> string
(** [rename] maps node ids (here: the command's origin) to their
    canonical images, for the model checker's symmetry reduction;
    it defaults to the identity. *)

val render_cmd_opt : ?rename:(int -> int) -> cmd option -> string
val render_entry : ?rename:(int -> int) -> entry -> string
