(** Runtime implementation of the Raft protocol family over the simulated
    WAN: vanilla Raft, Raft*, Raft*-LL (leader lease) and Raft*-PQL
    (quorum leases) share this core, selected by {!config}.

    The implementation is event-driven: replicas exchange messages through
    {!Raftpax_sim.Net}, charge CPU through {!Raftpax_sim.Cpu}, and complete
    client operations via callbacks.  A closed-loop client keeps exactly
    one operation outstanding, so saturation shows up as latency rather
    than unbounded queues.

    Protocol features implemented: randomized-timeout leader election
    (with Raft*'s extra-entry adoption under [flavor = Star]), log
    replication with per-follower pipelining and unbounded batching (group
    commit), vanilla conflict-erase vs Raft*'s no-shorten reconciliation
    and ballot rewrite, Raft's 5.4.2 current-term commit restriction,
    follower-to-leader forwarding (the etcd optimization the paper keeps
    on), heartbeats, leader leases, quorum leases with
    all-holder-acknowledged commits and commit-waited local reads. *)

type flavor = Vanilla | Star

type read_mode =
  | Log_read  (** reads replicate through the log (Raft and Raft star) *)
  | Leader_lease  (** only the leader answers reads locally (LL) *)
  | Quorum_lease  (** any lease-holding replica answers locally (PQL) *)

type config = {
  flavor : flavor;
  read_mode : read_mode;
  params : Types.params;
  initial_leader : int option;
      (** [Some l] bootstraps with [l] already elected at term 1 (used by
          the benchmarks to skip the startup election); [None] runs a real
          election. *)
}

val raft : ?leader:int -> unit -> config
val raft_star : ?leader:int -> unit -> config
val raft_ll : ?leader:int -> unit -> config
val raft_pql : ?leader:int -> unit -> config

(** {1 Wire messages}

    Exposed (rather than abstract) so the real-network runtime's codec in
    {!Raftpax_netcore} can serialize them; the simulated harness never
    inspects them. *)

type msg =
  | RequestVote of { term : int; cand : int; last_idx : int; last_term : int }
  | Vote of {
      term : int;
      from : int;
      granted : bool;
      extras : (int * Types.entry * int) list;
          (** Raft*: (index, entry, ballot) beyond the candidate's log *)
    }
  | Append of {
      term : int;
      leader : int;
      prev_idx : int;
      prev_term : int;
      entries : (Types.entry * int) list;  (** entry with its ballot *)
      commit : int;
    }
  | Ack of {
      term : int;
      from : int;
      success : bool;
      match_idx : int;
      holders : (int * int) list;
          (** quorum-lease mode: (holder, deadline) leases granted by the
              acker and still valid *)
    }
  | Forward of Types.cmd
  | Complete of { cmd_id : int; reply : Types.reply }
  | Grant of { from : int; deadline : int; grantor_last : int }
  | GrantConfirm of { from : int; deadline : int }

type t

val create :
  ?telemetry:Raftpax_telemetry.Telemetry.t -> config -> Raftpax_sim.Net.t -> t
(** [?telemetry] attaches protocol probes (elections, term changes,
    appends, acks, retransmits, forwards, commits, heartbeats, leases,
    local reads) and — when its tracer is live — per-request span marks.
    Defaults to the disabled instance: every probe update is a no-op on a
    shared dummy cell. *)

val start : t -> unit
(** Arms timers (heartbeats, election timeouts, lease renewal). *)

val submit : t -> node:int -> Types.op -> (Types.reply -> unit) -> unit
(** Submit an operation at a replica's colocated client entry point; the
    callback fires (simulated-time later) when the operation completes. *)

val submit_id : t -> node:int -> Types.op -> (Types.reply -> unit) -> int
(** Like {!submit} but returns the command id — the span trace id, for
    correlating harness-side latency with the tracer's waterfall. *)

(** {1 Network-shell hooks}

    The real-network runtime hosts one [t] per process but keeps only the
    local replica live: [set_wire] intercepts every cross-replica message
    (self-sends still go through the local engine), the transport carries
    it, and the receiving process injects it with [deliver].  The
    runtime's protocol logic is unchanged — same state machine, two
    transports. *)

val set_wire : t -> (src:int -> dst:int -> size:int -> msg -> unit) option -> unit
val deliver : t -> node:int -> msg -> unit
(** Hand a transport-received message to replica [node]'s handler. *)

val set_cmd_ids : t -> base:int -> stride:int -> unit
(** Partition the command-id space across processes (process [i] of [n]
    uses [base:i stride:n]) so ids stay globally unique — the leader
    dedups forwarded commands by id. *)

(** {1 Introspection} *)

val leader_of : t -> int option
(** Current leader if any replica believes it is one. *)

val term_of : t -> node:int -> int
val commit_index : t -> node:int -> int
val log_length : t -> node:int -> int
val applied_value : t -> node:int -> key:int -> int option
(** The write_id the replica's state machine currently holds for a key. *)

val log_entries : t -> node:int -> Types.entry list
val lease_active : t -> node:int -> bool
(** Quorum-lease mode: is the replica entitled to local reads right now? *)

val crash : t -> node:int -> unit
val restart : t -> node:int -> unit
(** Crash-stop and restart with durable state (term, vote, log) retained —
    models a persisted log. *)

(** {1 Model-checker hooks} *)

val dump_state : ?rename:(int -> int) -> t -> node:int -> string
(** Canonical rendering of every behaviour-relevant field of one replica;
    two replicas with equal dumps are indistinguishable to the protocol.
    Used by {!Raftpax_mcheck} to fingerprint global states. *)

type peek_entry = { pe_term : int; pe_ballot : int; pe_cmd : int option }

type peek = {
  pk_term : int;
  pk_is_leader : bool;
  pk_commit : int;
  pk_log : peek_entry list;
}

val peek : t -> node:int -> peek
(** Structured snapshot of the refinement-relevant core of a replica. *)

val mono_view : t -> node:int -> int array
(** Components that must never decrease along any execution: term and
    commit index, plus (Raft* only, where the log never shortens) log
    length and per-index ballots.  The checker compares successive views
    pointwise over their common prefix. *)

val invariant_violation : t -> string option
(** Evaluates the executable safety invariants over the whole cluster:
    Election Safety, Log Matching, Leader Completeness (against the
    max-term live leader), State-Machine Safety, and the Raft* per-entry
    ballot field bound.  [None] means all hold. *)
