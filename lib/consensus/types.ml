type op =
  | Get of { key : int }
  | Put of { key : int; size : int; write_id : int }

type cmd = { id : int; op : op; origin : int; submitted_us : int }

let op_size = function Get _ -> 16 | Put { size; _ } -> size + 16
let is_read = function Get _ -> true | Put _ -> false
let key_of = function Get { key } -> key | Put { key; _ } -> key

type entry = { term : int; cmd : cmd option }
type reply = { value : int option }

(* parlint's knob-threading rule holds every field here to the
   six-surface porting discipline (Harness/Shard/Nemesis configs, the
   shard JSON emitter, a bench flag).  Fields that are engine-model
   constants rather than per-run knobs — only ever overridden via
   [{ default_params with ... }] at bench ablation sites — carry the
   reason inline. *)
type params = {
  pipeline_window : int;
      [@lint.allow
        "knob-threading"
        "replication-model constant; the pipelining ablation overrides it \
         via default_params, it is not a per-run config surface"]
  cpu_leader_op_us : int;
      [@lint.allow "knob-threading" "engine CPU cost-model constant"]
  cpu_follower_op_us : int;
      [@lint.allow "knob-threading" "engine CPU cost-model constant"]
  cpu_read_op_us : int;
      [@lint.allow "knob-threading" "engine CPU cost-model constant"]
  cpu_pql_commit_extra_us : int;
      [@lint.allow "knob-threading" "engine CPU cost-model constant"]
  msg_header_bytes : int;
      [@lint.allow "knob-threading" "wire cost-model constant"]
  reply_bytes : int;
      [@lint.allow "knob-threading" "wire cost-model constant"]
  heartbeat_interval_us : int;
      [@lint.allow
        "knob-threading"
        "protocol timing-model constant; the nemesis perturbs clocks and \
         schedules rather than retuning timeouts per run"]
  election_timeout_min_us : int;
      [@lint.allow "knob-threading" "protocol timing-model constant"]
  election_timeout_max_us : int;
      [@lint.allow "knob-threading" "protocol timing-model constant"]
  lease_duration_us : int;
      [@lint.allow
        "knob-threading"
        "Raft-LL lease-model constant; only the bench lease ablation \
         overrides it via default_params"]
  lease_renew_us : int;
      [@lint.allow "knob-threading" "Raft-LL lease-model constant"]
  batch_size : int;
      (** leader-side command batching: accumulate up to this many client
          commands into one consensus instance / replication batch before
          flushing.  1 disables batching entirely — the code path is then
          byte-identical to the unbatched runtime. *)
  batch_delay_us : int;
      (** time bound on the accumulator: a partial batch flushes this many
          µs after its first command.  0 means flush only on [batch_size]. *)
}

let default_params =
  {
    pipeline_window = 256;
    cpu_leader_op_us = 24;
    cpu_follower_op_us = 16;
    cpu_read_op_us = 24;
    cpu_pql_commit_extra_us = 30;
    msg_header_bytes = 64;
    reply_bytes = 64;
    heartbeat_interval_us = 100_000;
    election_timeout_min_us = 1_000_000;
    election_timeout_max_us = 2_000_000;
    lease_duration_us = 2_000_000;
    lease_renew_us = 500_000;
    batch_size = 1;
    batch_delay_us = 0;
  }

(* Canonical renderings used by the model checker to fingerprint
   messages and states.  [submitted_us] is deliberately excluded: it only
   feeds latency accounting, and folding it in would split otherwise
   identical states.  [rename] maps node ids to their canonical images
   for the checker's symmetry reduction; the default is the identity. *)

let render_op = function
  | Get { key } -> Printf.sprintf "G%d" key
  | Put { key; write_id; _ } -> Printf.sprintf "P%d=%d" key write_id

let render_cmd ?(rename = Fun.id) c =
  Printf.sprintf "c%d@%d:%s" c.id (rename c.origin) (render_op c.op)

let render_cmd_opt ?rename = function
  | None -> "noop"
  | Some c -> render_cmd ?rename c

let render_entry ?rename e =
  Printf.sprintf "{t%d %s}" e.term (render_cmd_opt ?rename e.cmd)

let entry_bytes params e =
  params.msg_header_bytes
  + match e.cmd with None -> 0 | Some c -> op_size c.op

let batch_bytes params entries =
  params.msg_header_bytes
  + List.fold_left (fun acc e -> acc + entry_bytes params e) 0 entries
