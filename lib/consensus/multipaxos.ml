module Net = Raftpax_sim.Net
module Engine = Raftpax_sim.Engine
module Cpu = Raftpax_sim.Cpu
module Rng = Raftpax_sim.Rng
module Telemetry = Raftpax_telemetry.Telemetry
module Metrics = Raftpax_telemetry.Metrics
module Span = Raftpax_telemetry.Span

type config = {
  params : Types.params;
  takeover_timeout_us : int;
  bug_no_takeover_after_restart : bool;
      (** test-only mutation: the watchdog only takes over from a *down*
          leader, re-introducing the pre-fix livelock where a restarted
          leader comes back as a non-leader and nobody ever runs Phase 1.
          The model checker's mutation smoke test asserts this is caught
          (as goal unreachability under an exhaustively explored scope). *)
}

let default_config =
  {
    params = Types.default_params;
    takeover_timeout_us = 3_000_000;
    bug_no_takeover_after_restart = false;
  }

type inst = {
  mutable accepted_bal : int;
  mutable accepted_cmd : Types.cmd option option;
      (** [None] = nothing accepted; [Some c] = accepted (c = None is noop) *)
  mutable chosen : bool;
}

type msg =
  | Prepare of { bal : int; from : int }
  | PrepareOk of {
      bal : int;
      from : int;
      accepted : (int * int * Types.cmd option) list;
          (** (instance, ballot, value) for every accepted instance *)
    }
  | Accept of { bal : int; from : int; inst : int; cmd : Types.cmd option }
  | AcceptOk of { bal : int; from : int; inst : int }
  | Learn of { inst : int; cmd : Types.cmd option }
  | AcceptMulti of {
      bal : int;
      from : int;
      items : (int * Types.cmd option) list;
          (** one flushed leader batch: (instance, value) per command —
            a single frame, CPU charge and ack instead of one each *)
    }
  | AcceptOkMulti of { bal : int; from : int; insts : int list }
  | LearnMulti of { items : (int * Types.cmd option) list }
  | Forward of Types.cmd
  | Complete of { cmd_id : int; reply : Types.reply }

type server_probes = {
  pr_elections : Metrics.counter;  (** phase-1 rounds started *)
  pr_leader_wins : Metrics.counter;
  pr_ballot_changes : Metrics.counter;
  pr_accepts : Metrics.counter;  (** Accept broadcasts sent (per peer msg) *)
  pr_acks : Metrics.counter;  (** AcceptOk replies sent *)
  pr_retransmits : Metrics.counter;  (** watchdog re-broadcasts of unchosen *)
  pr_forwards : Metrics.counter;
  pr_commits : Metrics.counter;  (** instances executed *)
  pr_batch_cmds : Metrics.histogram;
      (** commands per leader-side flush; batched path only *)
}

let make_probes m ~node =
  let c name = Metrics.counter m name ~node in
  {
    pr_elections = c "elections";
    pr_leader_wins = c "leader_wins";
    pr_ballot_changes = c "ballot_changes";
    pr_accepts = c "accepts_sent";
    pr_acks = c "acks_sent";
    pr_retransmits = c "retransmits";
    pr_forwards = c "forwards";
    pr_commits = c "commits";
    pr_batch_cmds = Metrics.histogram m "batch_flush_cmds" ~node;
  }

type server = {
  id : int;
  mutable ballot : int;  (** highest ballot seen *)
  mutable is_leader : bool;
  mutable leader_hint : int;
  insts : inst Vec.t;
  mutable next_inst : int;  (** leader: next free instance *)
  mutable executed : int;  (** prefix [0..executed) applied to store *)
  store : (int, int) Hashtbl.t;
  prepare_oks : (int, int) Hashtbl.t;  (** voter -> 1 (set) *)
  gathered : (int * int * Types.cmd option) Vec.t;
  accept_oks : (int, bool array) Hashtbl.t;
      (** instance -> which peers acked (per-sender, so duplicate
          deliveries under fault injection cannot double-count) *)
  waiters : (int, Types.cmd) Hashtbl.t;  (** instance -> originating cmd *)
  proposed_cmds : (int, unit) Hashtbl.t;
      (** cmd ids this leader already assigned an instance; a duplicated
          [Forward] must not occupy a second instance *)
  (* command batching (leader side, batch_size > 1 only): instances
     assigned but whose Accept broadcast is held for the current batch *)
  mutable pending_batch : (int * Types.cmd option) list;  (** reversed *)
  mutable pending_count : int;
  mutable flush_pending : bool;  (** a flush timer is armed *)
  mutable last_leader_sign : int;
  mutable down : bool;
  cpu : Cpu.t;
  rng : Rng.t;
  pr : server_probes;
}

type t = {
  config : config;
  net : Net.t;
  engine : Engine.t;
  n : int;
  servers : server array;
  completions : (int, Types.reply -> unit) Hashtbl.t;
  mutable next_cmd_id : int;
  mutable cmd_id_stride : int;
  mutable wire : (src:int -> dst:int -> size:int -> msg -> unit) option;
      (** network-shell hook: when set, cross-replica messages are handed
          to the transport instead of the simulated {!Net} *)
  spans : Span.t;
}

let majority t = (t.n / 2) + 1
let p t = t.config.params

let msg_size t = function
  | Prepare _ | AcceptOk _ -> (p t).msg_header_bytes
  | PrepareOk { accepted; _ } ->
      (p t).msg_header_bytes
      + List.fold_left
          (fun acc (_, _, c) ->
            acc + match c with Some c -> Types.op_size c.Types.op | None -> 8)
          0 accepted
  | Accept { cmd; _ } | Learn { cmd; _ } -> (
      (p t).msg_header_bytes
      + match cmd with Some c -> Types.op_size c.Types.op | None -> 8)
  | AcceptMulti { items; _ } | LearnMulti { items } ->
      (p t).msg_header_bytes
      + List.fold_left
          (fun acc (_, c) ->
            acc + match c with Some c -> Types.op_size c.Types.op | None -> 8)
          0 items
  | AcceptOkMulti { insts; _ } ->
      (p t).msg_header_bytes + (8 * List.length insts)
  | Forward cmd -> (p t).msg_header_bytes + Types.op_size cmd.Types.op
  | Complete _ -> (p t).reply_bytes

let ensure srv i =
  while Vec.length srv.insts <= i do
    Vec.push srv.insts { accepted_bal = -1; accepted_cmd = None; chosen = false }
  done

let inst srv i =
  ensure srv i;
  Vec.get srv.insts i

(* Ballots are globally unique per server: b = round * n + id. *)
let next_ballot t srv = ((srv.ballot / t.n) + 1) * t.n + srv.id

(* Symmetry renaming: because a ballot encodes its proposer's id in its
   low digits, renaming node ids means renaming ballots too — keep the
   round, map the id.  Negative ballots (the "nothing accepted" marker)
   carry no id. *)
let rename_ballot rename ~n b = if b < 0 then b else (b / n * n) + rename (b mod n)

let render_msg ?(rename = Fun.id) ~n = function
  | Prepare { bal; from } ->
      Printf.sprintf "Prepare(b%d f%d)" (rename_ballot rename ~n bal)
        (rename from)
  | PrepareOk { bal; from; accepted } ->
      Printf.sprintf "PrepareOk(b%d f%d [%s])"
        (rename_ballot rename ~n bal)
        (rename from)
        (String.concat ";"
           (List.map
              (fun (i, b, c) ->
                Printf.sprintf "%d:b%d:%s" i
                  (rename_ballot rename ~n b)
                  (Types.render_cmd_opt ~rename c))
              (List.sort
                 (fun (i1, b1, _) (i2, b2, _) ->
                   if i1 <> i2 then Int.compare i1 i2 else Int.compare b1 b2)
                 accepted)))
  | Accept { bal; from; inst; cmd } ->
      Printf.sprintf "Accept(b%d f%d i%d %s)"
        (rename_ballot rename ~n bal)
        (rename from) inst
        (Types.render_cmd_opt ~rename cmd)
  | AcceptOk { bal; from; inst } ->
      Printf.sprintf "AcceptOk(b%d f%d i%d)"
        (rename_ballot rename ~n bal)
        (rename from) inst
  | Learn { inst; cmd } ->
      Printf.sprintf "Learn(i%d %s)" inst (Types.render_cmd_opt ~rename cmd)
  | AcceptMulti { bal; from; items } ->
      Printf.sprintf "AcceptMulti(b%d f%d [%s])"
        (rename_ballot rename ~n bal)
        (rename from)
        (String.concat ";"
           (List.map
              (fun (i, c) ->
                Printf.sprintf "%d:%s" i (Types.render_cmd_opt ~rename c))
              items))
  | AcceptOkMulti { bal; from; insts } ->
      Printf.sprintf "AcceptOkMulti(b%d f%d [%s])"
        (rename_ballot rename ~n bal)
        (rename from)
        (String.concat ";" (List.map string_of_int insts))
  | LearnMulti { items } ->
      Printf.sprintf "LearnMulti([%s])"
        (String.concat ";"
           (List.map
              (fun (i, c) ->
                Printf.sprintf "%d:%s" i (Types.render_cmd_opt ~rename c))
              items))
  | Forward cmd -> "Forward(" ^ Types.render_cmd ~rename cmd ^ ")"
  | Complete { cmd_id; reply } ->
      Printf.sprintf "Complete(c%d v%s)" cmd_id
        (match reply.Types.value with
        | None -> "-"
        | Some v -> string_of_int v)

let rec send t ~src ~dst msg =
  match t.wire with
  | Some wire when src <> dst -> wire ~src ~dst ~size:(msg_size t msg) msg
  | _ ->
      Net.send t.net ~src ~dst ~size:(msg_size t msg)
        ~info:(fun rename -> render_msg ~rename ~n:t.n msg)
        (fun () -> handle t t.servers.(dst) msg)

and broadcast t srv msg =
  Array.iter
    (fun peer -> if peer.id <> srv.id then send t ~src:srv.id ~dst:peer.id msg)
    t.servers

and complete_at_origin t srv (cmd : Types.cmd) reply =
  send t ~src:srv.id ~dst:cmd.Types.origin
    (Complete { cmd_id = cmd.Types.id; reply })

(* Execute the decided prefix in order. *)
and execute t srv =
  let len = Vec.length srv.insts in
  let continue = ref true in
  while !continue && srv.executed < len do
    let it = Vec.get srv.insts srv.executed in
    if it.chosen then begin
      Metrics.inc srv.pr.pr_commits;
      (match it.accepted_cmd with
      | Some (Some ({ op = Types.Put { key; write_id; _ }; _ } as cmd)) ->
          Hashtbl.replace srv.store key write_id;
          if srv.is_leader then begin
            Span.mark t.spans ~trace:cmd.id ~node:srv.id ~phase:"quorum_commit"
              ~now:(Engine.now t.engine);
            complete_at_origin t srv cmd { Types.value = None }
          end
      | Some (Some ({ op = Types.Get { key }; _ } as cmd)) ->
          if srv.is_leader then begin
            Span.mark t.spans ~trace:cmd.id ~node:srv.id ~phase:"quorum_commit"
              ~now:(Engine.now t.engine);
            complete_at_origin t srv cmd
              { Types.value = Hashtbl.find_opt srv.store key }
          end
      | Some None | None -> ());
      srv.executed <- srv.executed + 1
    end
    else continue := false
  done

(* Record a decision without executing; callers run one [execute] walk
   per delivered batch instead of per instance. *)
and choose srv i cmd =
  let it = inst srv i in
  if not it.chosen then begin
    it.chosen <- true;
    it.accepted_cmd <- Some cmd;
    true
  end
  else false

and mark_chosen t srv i cmd = if choose srv i cmd then execute t srv

(* ---- phase 2 ---- *)

and propose t srv (cmd : Types.cmd) =
  Cpu.exec srv.cpu ~cost_us:(p t).cpu_leader_op_us (fun () ->
      if srv.is_leader && not srv.down && Hashtbl.mem srv.proposed_cmds cmd.id
      then () (* duplicate Forward: already has an instance *)
      else if srv.is_leader && not srv.down then begin
        Hashtbl.replace srv.proposed_cmds cmd.id ();
        let i = srv.next_inst in
        srv.next_inst <- i + 1;
        let it = inst srv i in
        it.accepted_bal <- srv.ballot;
        it.accepted_cmd <- Some (Some cmd);
        Hashtbl.replace srv.accept_oks i (Array.make t.n false);
        Hashtbl.replace srv.waiters i cmd;
        Span.mark t.spans ~trace:cmd.id ~node:srv.id ~phase:"append"
          ~now:(Engine.now t.engine);
        if (p t).batch_size <= 1 then begin
          Metrics.add srv.pr.pr_accepts (t.n - 1);
          broadcast t srv
            (Accept
               { bal = srv.ballot; from = srv.id; inst = i; cmd = Some cmd });
          if t.n = 1 then begin
            mark_chosen t srv i (Some cmd)
          end
        end
        else begin
          (* Batched: the instance is fully set up above; only its Accept
             broadcast is held back until the batch flushes. *)
          srv.pending_batch <- (i, Some cmd) :: srv.pending_batch;
          srv.pending_count <- srv.pending_count + 1;
          if srv.pending_count >= (p t).batch_size then flush_accepts t srv
          else if not srv.flush_pending then begin
            srv.flush_pending <- true;
            Engine.schedule t.engine ~node:srv.id ~label:"flush"
              ~delay:(max 1 (p t).batch_delay_us) (fun () ->
                srv.flush_pending <- false;
                if srv.is_leader && (not srv.down) && srv.pending_count > 0
                then flush_accepts t srv)
          end
        end
      end
      else if not srv.down then begin
        Metrics.inc srv.pr.pr_forwards;
        send t ~src:srv.id ~dst:srv.leader_hint (Forward cmd)
      end)

(* Release the accumulated batch: one AcceptMulti broadcast carries
   every held (instance, value) pair. *)
and flush_accepts t srv =
  let items = List.rev srv.pending_batch in
  Metrics.observe srv.pr.pr_batch_cmds srv.pending_count;
  srv.pending_batch <- [];
  srv.pending_count <- 0;
  Metrics.add srv.pr.pr_accepts (t.n - 1);
  broadcast t srv (AcceptMulti { bal = srv.ballot; from = srv.id; items });
  if t.n = 1 then begin
    let any = ref false in
    List.iter (fun (i, cmd) -> if choose srv i cmd then any := true) items;
    if !any then execute t srv
  end

(* ---- phase 1 ---- *)

and start_phase1 t srv =
  Metrics.inc srv.pr.pr_elections;
  Metrics.inc srv.pr.pr_ballot_changes;
  srv.ballot <- next_ballot t srv;
  srv.is_leader <- false;
  Hashtbl.reset srv.prepare_oks;
  Vec.clear srv.gathered;
  broadcast t srv (Prepare { bal = srv.ballot; from = srv.id })

and become_leader t srv =
  Metrics.inc srv.pr.pr_leader_wins;
  srv.is_leader <- true;
  srv.leader_hint <- srv.id;
  (* A batch held when leadership was lost refers to instances of the old
     reign; drop it (the origin's retry resubmits the commands). *)
  srv.pending_batch <- [];
  srv.pending_count <- 0;
  (* Adopt the highest-ballot accepted value per instance; re-propose each
     adopted instance at our ballot so it can be chosen. *)
  let best = Hashtbl.create 64 in
  Vec.iter
    (fun (i, b, c) ->
      match Hashtbl.find_opt best i with
      | Some (b', _) when b' >= b -> ()
      | _ -> Hashtbl.replace best i (b, c))
    srv.gathered;
  (* Include our own accepted values. *)
  Vec.iteri
    (fun i it ->
      if it.accepted_bal >= 0 then
        match Hashtbl.find_opt best i with
        | Some (b', _) when b' >= it.accepted_bal -> ()
        | _ -> (
            match it.accepted_cmd with
            | Some c -> Hashtbl.replace best i (it.accepted_bal, c)
            | None -> ()))
    srv.insts;
  let max_i = Hashtbl.fold (fun i _ acc -> max i acc) best (-1) in
  srv.next_inst <- max_i + 1;
  for i = 0 to max_i do
    let it = inst srv i in
    if not it.chosen then begin
      let value =
        match Hashtbl.find_opt best i with Some (_, c) -> c | None -> None
      in
      it.accepted_bal <- srv.ballot;
      it.accepted_cmd <- Some value;
      Hashtbl.replace srv.accept_oks i (Array.make t.n false);
      Metrics.add srv.pr.pr_accepts (t.n - 1);
      broadcast t srv
        (Accept { bal = srv.ballot; from = srv.id; inst = i; cmd = value })
    end
  done

(* ---- handling ---- *)

and handle t srv msg =
  if not srv.down then
    match msg with
    | Forward cmd ->
        Span.mark t.spans ~trace:cmd.id ~node:srv.id ~phase:"forward"
          ~now:(Engine.now t.engine);
        propose t srv cmd
    | Complete { cmd_id; reply } -> (
        match Hashtbl.find_opt t.completions cmd_id with
        | Some k ->
            Hashtbl.remove t.completions cmd_id;
            Span.mark t.spans ~trace:cmd_id ~node:srv.id ~phase:"reply"
              ~now:(Engine.now t.engine);
            k reply
        | None -> ())
    | Prepare { bal; from } ->
        if bal > srv.ballot then begin
          Metrics.inc srv.pr.pr_ballot_changes;
          srv.ballot <- bal;
          srv.is_leader <- false;
          srv.leader_hint <- from;
          srv.last_leader_sign <- Engine.now t.engine;
          let accepted = ref [] in
          Vec.iteri
            (fun i it ->
              if it.accepted_bal >= 0 then
                match it.accepted_cmd with
                | Some c -> accepted := (i, it.accepted_bal, c) :: !accepted
                | None -> ())
            srv.insts;
          send t ~src:srv.id ~dst:from
            (PrepareOk { bal; from = srv.id; accepted = !accepted })
        end
    | PrepareOk { bal; from; accepted } ->
        if bal = srv.ballot && not srv.is_leader then begin
          Hashtbl.replace srv.prepare_oks from 1;
          List.iter (Vec.push srv.gathered) accepted;
          if Hashtbl.length srv.prepare_oks + 1 >= majority t then
            become_leader t srv
        end
    | Accept { bal; from; inst = i; cmd } ->
        if bal >= srv.ballot then begin
          if bal > srv.ballot then Metrics.inc srv.pr.pr_ballot_changes;
          srv.ballot <- bal;
          if from <> srv.id then srv.is_leader <- false;
          srv.leader_hint <- from;
          srv.last_leader_sign <- Engine.now t.engine;
          Cpu.exec srv.cpu ~cost_us:(p t).cpu_follower_op_us (fun () ->
              if not srv.down then begin
                let it = inst srv i in
                it.accepted_bal <- bal;
                it.accepted_cmd <- Some cmd;
                Metrics.inc srv.pr.pr_acks;
                send t ~src:srv.id ~dst:from (AcceptOk { bal; from = srv.id; inst = i })
              end)
        end
    | AcceptOk { bal; from; inst = i } ->
        if bal = srv.ballot && srv.is_leader then begin
          match Hashtbl.find_opt srv.accept_oks i with
          | None -> ()
          | Some acked ->
              acked.(from) <- true;
              let count =
                Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 acked
              in
              if count + 1 >= majority t && not (inst srv i).chosen then begin
                let cmd =
                  match (inst srv i).accepted_cmd with Some c -> c | None -> None
                in
                mark_chosen t srv i cmd;
                broadcast t srv (Learn { inst = i; cmd })
              end
        end
    | Learn { inst = i; cmd } -> mark_chosen t srv i cmd
    | AcceptMulti { bal; from; items } ->
        if bal >= srv.ballot then begin
          if bal > srv.ballot then Metrics.inc srv.pr.pr_ballot_changes;
          srv.ballot <- bal;
          if from <> srv.id then srv.is_leader <- false;
          srv.leader_hint <- from;
          srv.last_leader_sign <- Engine.now t.engine;
          (* One CPU charge and one ack for the whole batch; the walk is
             bounded by the leader's batch_size. *)
          let k = (List.length items [@perf.allow "length-in-hot-path"]) in
          Cpu.exec srv.cpu ~cost_us:(max 1 (k * (p t).cpu_follower_op_us))
            (fun () ->
              if not srv.down then begin
                List.iter
                  (fun (i, cmd) ->
                    let it = inst srv i in
                    it.accepted_bal <- bal;
                    it.accepted_cmd <- Some cmd)
                  items;
                Metrics.inc srv.pr.pr_acks;
                send t ~src:srv.id ~dst:from
                  (AcceptOkMulti
                     { bal; from = srv.id; insts = List.map fst items })
              end)
        end
    | AcceptOkMulti { bal; from; insts } ->
        if bal = srv.ballot && srv.is_leader then begin
          let newly = ref [] in
          List.iter
            (fun i ->
              match Hashtbl.find_opt srv.accept_oks i with
              | None -> ()
              | Some acked ->
                  acked.(from) <- true;
                  let count =
                    Array.fold_left
                      (fun acc b -> if b then acc + 1 else acc)
                      0 acked
                  in
                  if count + 1 >= majority t && not (inst srv i).chosen then begin
                    let cmd =
                      match (inst srv i).accepted_cmd with
                      | Some c -> c
                      | None -> None
                    in
                    if choose srv i cmd then newly := (i, cmd) :: !newly
                  end)
            insts;
          if !newly <> [] then begin
            (* One execute walk and one Learn broadcast per acked batch. *)
            execute t srv;
            broadcast t srv (LearnMulti { items = List.rev !newly })
          end
        end
    | LearnMulti { items } ->
        let any = ref false in
        List.iter (fun (i, cmd) -> if choose srv i cmd then any := true) items;
        if !any then execute t srv

(* Leader-failure watchdog: lowest live replica takes over.  The same
   tick is the leader's repair timer: an [Accept] or its [AcceptOk]s can
   be lost, leaving an instance unchosen forever and stalling [execute]
   at the gap, so the leader re-broadcasts every unchosen instance below
   its frontier (acceptors re-accept idempotently). *)
and watchdog t srv =
  Engine.schedule t.engine ~node:srv.id ~label:"watchdog"
    ~delay:t.config.takeover_timeout_us (fun () ->
      if not srv.down then begin
        let now = Engine.now t.engine in
        let leader = t.servers.(srv.leader_hint) in
        let lowest_live =
          let rec find i =
            if i >= t.n || not t.servers.(i).down then i else find (i + 1)
          in
          find 0
        in
        if srv.is_leader then
          for i = srv.executed to srv.next_inst - 1 do
            let it = inst srv i in
            if not it.chosen then begin
              let cmd =
                match it.accepted_cmd with Some c -> c | None -> None
              in
              it.accepted_bal <- srv.ballot;
              it.accepted_cmd <- Some cmd;
              if not (Hashtbl.mem srv.accept_oks i) then
                Hashtbl.replace srv.accept_oks i (Array.make t.n false);
              Metrics.inc srv.pr.pr_retransmits;
              Metrics.add srv.pr.pr_accepts (t.n - 1);
              broadcast t srv
                (Accept { bal = srv.ballot; from = srv.id; inst = i; cmd })
            end
          done
        else if
          (leader.down
          || ((not t.config.bug_no_takeover_after_restart)
             && not leader.is_leader))
          (* a restarted leader comes back as a non-leader: the cluster
             is leaderless even though nobody is down *)
          && srv.id = lowest_live
          && now - srv.last_leader_sign >= t.config.takeover_timeout_us
        then start_phase1 t srv
      end;
      watchdog t srv)

let create ?(telemetry = Telemetry.disabled) ?(leader = 0) config net =
  let engine = Net.engine net in
  let n = Net.size net in
  let servers =
    Array.init n (fun id ->
        let cpu = Cpu.create engine in
        Cpu.set_metrics cpu telemetry.Telemetry.metrics ~node:id;
        {
          id;
          ballot = 0;
          is_leader = false;
          leader_hint = leader;
          insts = Vec.create ();
          next_inst = 0;
          executed = 0;
          store = Hashtbl.create 1024;
          prepare_oks = Hashtbl.create 8;
          gathered = Vec.create ();
          accept_oks = Hashtbl.create 1024;
          waiters = Hashtbl.create 1024;
          proposed_cmds = Hashtbl.create 1024;
          pending_batch = [];
          pending_count = 0;
          flush_pending = false;
          last_leader_sign = 0;
          down = false;
          cpu;
          rng = Rng.split (Engine.rng engine);
          pr = make_probes telemetry.Telemetry.metrics ~node:id;
        })
  in
  let t =
    {
      config;
      net;
      engine;
      n;
      servers;
      completions = Hashtbl.create 4096;
      next_cmd_id = 0;
      cmd_id_stride = 1;
      wire = None;
      spans = telemetry.Telemetry.spans;
    }
  in
  (* Bootstrap: the configured leader owns ballot [leader] (its own id in
     round 0 is unique) and is pre-elected, exactly as if Phase 1 ran. *)
  let l = t.servers.(leader) in
  l.ballot <- leader + n (* round 1 ballot, unique to this server *);
  l.is_leader <- true;
  Array.iter (fun srv -> if srv.id <> leader then srv.ballot <- l.ballot) servers;
  t

let start t = Array.iter (fun srv -> watchdog t srv) t.servers

let submit_id t ~node op k =
  let id = t.next_cmd_id in
  t.next_cmd_id <- id + t.cmd_id_stride;
  Hashtbl.replace t.completions id k;
  let cmd =
    { Types.id; op; origin = node; submitted_us = Engine.now t.engine }
  in
  Span.mark t.spans ~trace:id ~node ~phase:"submit" ~now:(Engine.now t.engine);
  Net.send t.net ~src:node ~dst:node
    ~size:((p t).msg_header_bytes + Types.op_size op)
    ~info:(fun rename -> "Submit(" ^ Types.render_cmd ~rename cmd ^ ")")
    (fun () ->
      Span.mark t.spans ~trace:id ~node ~phase:"client_hop"
        ~now:(Engine.now t.engine);
      propose t t.servers.(node) cmd);
  id

let submit t ~node op k = ignore (submit_id t ~node op k)

(* ---- network-shell hooks ---- *)

let set_wire t f = t.wire <- f
let deliver t ~node msg = handle t t.servers.(node) msg

let set_cmd_ids t ~base ~stride =
  t.next_cmd_id <- base;
  t.cmd_id_stride <- stride

let leader_of t =
  let best = ref 0 in
  Array.iter
    (fun srv ->
      if srv.is_leader && not srv.down then
        if not t.servers.(!best).is_leader || srv.ballot > t.servers.(!best).ballot
        then best := srv.id)
    t.servers;
  !best

let ballot_of t ~node = t.servers.(node).ballot

let chosen_count t ~node =
  let c = ref 0 in
  Vec.iteri (fun _ it -> if it.chosen then incr c) t.servers.(node).insts;
  !c

let executed_prefix t ~node = t.servers.(node).executed

let committed_ops t ~node =
  let srv = t.servers.(node) in
  List.filter_map
    (fun i ->
      match (Vec.get srv.insts i).accepted_cmd with
      | Some (Some cmd) -> Some cmd.Types.op
      | Some None | None -> None)
    (List.init srv.executed Fun.id)
let applied_value t ~node ~key = Hashtbl.find_opt t.servers.(node).store key

let crash t ~node =
  t.servers.(node).down <- true;
  Net.set_node_down t.net node true

let restart t ~node =
  let srv = t.servers.(node) in
  srv.down <- false;
  Net.set_node_down t.net node false;
  srv.is_leader <- false;
  srv.pending_batch <- [];
  srv.pending_count <- 0

(* ---- model-checker inspection hooks ---- *)

let dump_state ?(rename = Fun.id) t ~node =
  let srv = t.servers.(node) in
  let rb = rename_ballot rename ~n:t.n in
  let permuted a =
    let b = Array.copy a in
    Array.iteri (fun i v -> b.(rename i) <- v) a;
    b
  in
  let buf = Buffer.create 256 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "b%d %s h%d ni%d ex%d sg%d %s|" (rb srv.ballot)
    (if srv.is_leader then "L" else "F")
    (rename srv.leader_hint) srv.next_inst srv.executed srv.last_leader_sign
    (if srv.down then "D" else "U");
  Vec.iteri
    (fun _ it ->
      add "%d:%s%s;" (rb it.accepted_bal)
        (match it.accepted_cmd with
        | None -> "_"
        | Some c -> Types.render_cmd_opt ~rename c)
        (if it.chosen then "!" else ""))
    srv.insts;
  let tbl name tbl render =
    let items = Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [] in
    add "|%s:%s" name
      (String.concat ";"
         (List.map render
            (List.sort (fun (a, _) (b, _) -> Int.compare a b) items)))
  in
  let mask a =
    String.concat ""
      (Array.to_list (Array.map (fun b -> if b then "1" else "0") a))
  in
  tbl "st" srv.store (fun (k, v) -> Printf.sprintf "%d=%d" k v);
  (* keyed by voter node id: sort after renaming, or two symmetric
     states would render their voter sets in different orders *)
  add "|po:%s"
    (String.concat ";"
       (List.sort String.compare
          (Hashtbl.fold
             (fun k _ acc -> string_of_int (rename k) :: acc)
             srv.prepare_oks [])));
  add "|g:%s"
    (String.concat ";"
       (List.sort String.compare
          (List.map
             (fun (i, b, c) ->
               Printf.sprintf "%d:b%d:%s" i (rb b)
                 (Types.render_cmd_opt ~rename c))
             (Vec.to_list srv.gathered))));
  tbl "ao" srv.accept_oks (fun (i, a) ->
      Printf.sprintf "%d=%s" i (mask (permuted a)));
  tbl "wt" srv.waiters (fun (i, c) ->
      Printf.sprintf "%d:%s" i (Types.render_cmd ~rename c));
  tbl "pc" srv.proposed_cmds (fun (i, ()) -> string_of_int i);
  (* Batched runs only: the held batch is real protocol state the checker
     must distinguish.  Unbatched fingerprints stay byte-identical. *)
  if (p t).batch_size > 1 then
    add "|pb:%s"
      (String.concat ";"
         (List.rev_map
            (fun (i, c) ->
              Printf.sprintf "%d:%s" i (Types.render_cmd_opt ~rename c))
            srv.pending_batch));
  Buffer.contents buf

(* Highest ballot seen, the executed prefix and the chosen count only
   ever grow. *)
let mono_view t ~node =
  let srv = t.servers.(node) in
  let chosen = ref 0 in
  Vec.iteri (fun _ it -> if it.chosen then incr chosen) srv.insts;
  [| srv.ballot; srv.executed; !chosen |]

let invariant_violation t =
  let violation = ref None in
  let fail fmt =
    Printf.ksprintf (fun s -> if !violation = None then violation := Some s) fmt
  in
  (* Chosen-instance agreement: two replicas that both consider an
     instance chosen must hold the same value (this also makes the
     executed prefixes consistent, since execution requires chosen). *)
  Array.iter
    (fun a ->
      Array.iter
        (fun b ->
          if a.id < b.id then
            let upto = min (Vec.length a.insts) (Vec.length b.insts) - 1 in
            for i = 0 to upto do
              let ia = Vec.get a.insts i and ib = Vec.get b.insts i in
              if ia.chosen && ib.chosen then
                let id_of it =
                  match it.accepted_cmd with
                  | Some (Some c) -> Some c.Types.id
                  | Some None | None -> None
                in
                if id_of ia <> id_of ib then
                  fail "chosen-agreement: nodes %d,%d instance %d: %s vs %s"
                    a.id b.id i
                    (match ia.accepted_cmd with
                    | Some c -> Types.render_cmd_opt c
                    | None -> "_")
                    (match ib.accepted_cmd with
                    | Some c -> Types.render_cmd_opt c
                    | None -> "_")
            done)
        t.servers)
    t.servers;
  (* A command must not be chosen at two different instances. *)
  let placed = Hashtbl.create 64 in
  Array.iter
    (fun s ->
      Vec.iteri
        (fun i it ->
          match it.accepted_cmd with
          | Some (Some c) when it.chosen -> (
              match Hashtbl.find_opt placed c.Types.id with
              | Some j when j <> i ->
                  fail "dup-command: %s chosen at instances %d and %d"
                    (Types.render_cmd c) j i
              | _ -> Hashtbl.replace placed c.Types.id i)
          | _ -> ())
        s.insts)
    t.servers;
  !violation
