module Net = Raftpax_sim.Net
module Engine = Raftpax_sim.Engine
module Cpu = Raftpax_sim.Cpu
module Rng = Raftpax_sim.Rng
module Telemetry = Raftpax_telemetry.Telemetry
module Metrics = Raftpax_telemetry.Metrics
module Span = Raftpax_telemetry.Span

type flavor = Vanilla | Star
type read_mode = Log_read | Leader_lease | Quorum_lease

type config = {
  flavor : flavor;
  read_mode : read_mode;
  params : Types.params;
  initial_leader : int option;
}

let raft ?leader () =
  {
    flavor = Vanilla;
    read_mode = Log_read;
    params = Types.default_params;
    initial_leader = leader;
  }

let raft_star ?leader () = { (raft ?leader ()) with flavor = Star }

let raft_ll ?leader () =
  { (raft ?leader ()) with flavor = Star; read_mode = Leader_lease }

let raft_pql ?leader () =
  { (raft ?leader ()) with flavor = Star; read_mode = Quorum_lease }

type role = Follower | Candidate | Leader

(* One handle per probe per node, registered at creation: updating a probe
   on the hot path is a field increment, and against a disabled registry
   every handle is the shared dummy. *)
type server_probes = {
  pr_elections : Metrics.counter;
  pr_leader_wins : Metrics.counter;
  pr_term_changes : Metrics.counter;
  pr_heartbeats : Metrics.counter;
  pr_appends : Metrics.counter;
  pr_acks : Metrics.counter;
  pr_retransmits : Metrics.counter;
  pr_forwards : Metrics.counter;
  pr_commits : Metrics.counter;
  pr_lease_grants : Metrics.counter;
  pr_lease_renewals : Metrics.counter;
  pr_lease_confirms : Metrics.counter;
  pr_local_reads : Metrics.counter;
  pr_lease_waits : Metrics.counter;
  pr_batch_cmds : Metrics.histogram;
      (** commands per leader-side flush; observed only on the batched
          path, so batch_size=1 telemetry is unchanged *)
}

let make_probes m ~node =
  let c name = Metrics.counter m name ~node in
  {
    pr_elections = c "elections";
    pr_leader_wins = c "leader_wins";
    pr_term_changes = c "term_changes";
    pr_heartbeats = c "heartbeats";
    pr_appends = c "appends_sent";
    pr_acks = c "acks_sent";
    pr_retransmits = c "retransmits";
    pr_forwards = c "forwards";
    pr_commits = c "commits";
    pr_lease_grants = c "lease_grants";
    pr_lease_renewals = c "lease_renewals";
    pr_lease_confirms = c "lease_confirms";
    pr_local_reads = c "local_reads";
    pr_lease_waits = c "lease_waits";
    pr_batch_cmds = Metrics.histogram m "batch_flush_cmds" ~node;
  }

type msg =
  | RequestVote of { term : int; cand : int; last_idx : int; last_term : int }
  | Vote of {
      term : int;
      from : int;
      granted : bool;
      extras : (int * Types.entry * int) list;
          (** Raft*: (index, entry, ballot) beyond the candidate's log *)
    }
  | Append of {
      term : int;
      leader : int;
      prev_idx : int;
      prev_term : int;
      entries : (Types.entry * int) list;  (** entry with its ballot *)
      commit : int;
    }
  | Ack of {
      term : int;
      from : int;
      success : bool;
      match_idx : int;
      holders : (int * int) list;
          (** quorum-lease mode: (holder, deadline) leases granted by the
              acker and still valid — the paper's Figure-13 appendOK
              attachment *)
    }
  | Forward of Types.cmd
  | Complete of { cmd_id : int; reply : Types.reply }
  | Grant of { from : int; deadline : int; grantor_last : int }
  | GrantConfirm of { from : int; deadline : int }
      (** the holder activated the grant; renewals require it, so a dead
          holder stops being renewed and its last lease simply expires *)
      (** a lease only activates at the holder once its log reaches the
          grantor's log length at grant time — otherwise a freshly-granted
          replica could serve reads missing values the grantor already
          acknowledged *)

type server = {
  id : int;
  mutable term : int;
  mutable voted_for : int option;
  mutable role : role;
  mutable leader_hint : int;
  log : (Types.entry * int) Vec.t;
  mutable commit_index : int;
  mutable last_applied : int;
  store : (int, int) Hashtbl.t;
  key_last_write : (int, int) Hashtbl.t;
  appended_cmds : (int, unit) Hashtbl.t;
      (** cmd ids this leader already appended; a duplicated or re-routed
          [Forward] must not enter the log twice *)
  (* leader bookkeeping *)
  next_index : int array;
  match_index : int array;
  inflight : int array;  (* in-flight append batches per follower *)
  votes : bool array;
  vote_extras : (int * Types.entry * int) Vec.t;
  follower_last_ack : int array;
  mutable leader_lease_until : int;
  (* quorum leases *)
  grant_from : int array;  (** deadline of the active lease p granted me *)
  mutable pending_grants : (int * int * int) list;
      (** (grantor, deadline, required log length) not yet activated *)
  my_grants : int array;  (** deadline of the lease I granted to p *)
  confirmed_grants : int array;
      (** deadline of the last grant p confirmed activating *)
  peer_grants : int array array;
      (** [peer_grants.(x).(h)]: deadline of the lease x reported granting
          to h in its latest ack (leader-side bookkeeping) *)
  mutable pending_reads : (int * (unit -> unit)) list;
  mutable verified_term : int;
  mutable verified_to : int;
      (** Raft* only: the highest log index known to match the log of the
          leader of [verified_term] — the prefix this follower may safely
          commit through.  Raft's prev-term consistency check cannot
          serve: extra-entry adoption lets two logs agree at an index
          while disagreeing below it, so matching at [prev] no longer
          attests the prefix.  Reset to [commit_index] when a first batch
          of a newer term arrives; extended only by batches that overlap
          it ([prev_idx <= verified_to]). *)
  (* command batching (leader side, batch_size > 1 only) *)
  mutable flush_to : int;
      (** replication tip: the highest log index released to
          {!send_batch}.  Entries above it are appended but still
          accumulating into the current batch; with batching off the tip
          is simply [last_index] and this field is ignored. *)
  mutable unflushed : int;  (** commands appended since the last flush *)
  mutable flush_pending : bool;  (** a flush timer is armed *)
  mutable election_timer : Engine.timer option;
  mutable election_deadline : int;
      (** virtual time the current election timeout expires; the armed
          timer re-arms itself while the deadline keeps moving, so a
          reset is a field write instead of a cancel + reschedule *)
  mutable down : bool;
  cpu : Cpu.t;
  rng : Rng.t;
  pr : server_probes;
}

type t = {
  config : config;
  net : Net.t;
  engine : Engine.t;
  n : int;
  servers : server array;
  completions : (int, Types.reply -> unit) Hashtbl.t;
  mutable next_cmd_id : int;
  mutable cmd_id_stride : int;
  mutable wire : (src:int -> dst:int -> size:int -> msg -> unit) option;
      (** network-shell hook: when set, cross-replica messages are handed
          to the transport instead of the simulated {!Net} *)
  spans : Span.t;
}

let majority t = (t.n / 2) + 1
let p t = t.config.params

(* ---- message sizes ---- *)

let msg_size t = function
  | RequestVote _ -> (p t).msg_header_bytes
  | Vote { extras; _ } ->
      (p t).msg_header_bytes
      + List.fold_left
          (fun acc (_, e, _) -> acc + Types.entry_bytes (p t) e)
          0 extras
  | Append { entries; _ } -> Types.batch_bytes (p t) (List.map fst entries)
  | Ack { holders; _ } -> (p t).msg_header_bytes + (16 * List.length holders)
  | Forward cmd -> (p t).msg_header_bytes + Types.op_size cmd.Types.op
  | Complete _ -> (p t).reply_bytes
  | Grant _ | GrantConfirm _ -> (p t).msg_header_bytes

(* ---- canonical message rendering (model-checker fingerprints) ----

   [rename] maps node ids to their canonical images (symmetry
   reduction); every id-valued field — candidate, leader, sender, lease
   holder, command origin — goes through it.  Terms, indexes, per-entry
   ballots and deadlines carry no node ids in Raft, so they pass
   through untouched. *)

let render_msg ?(rename = Fun.id) = function
  | RequestVote { term; cand; last_idx; last_term } ->
      Printf.sprintf "RequestVote(t%d c%d li%d lt%d)" term (rename cand)
        last_idx last_term
  | Vote { term; from; granted; extras } ->
      Printf.sprintf "Vote(t%d f%d %b [%s])" term (rename from) granted
        (String.concat ";"
           (List.map
              (fun (i, e, b) ->
                Printf.sprintf "%d:%s/b%d" i (Types.render_entry ~rename e) b)
              extras))
  | Append { term; leader; prev_idx; prev_term; entries; commit } ->
      Printf.sprintf "Append(t%d l%d p%d/%d c%d [%s])" term (rename leader)
        prev_idx prev_term commit
        (String.concat ";"
           (List.map
              (fun (e, b) ->
                Printf.sprintf "%s/b%d" (Types.render_entry ~rename e) b)
              entries))
  | Ack { term; from; success; match_idx; holders } ->
      Printf.sprintf "Ack(t%d f%d %b m%d [%s])" term (rename from) success
        match_idx
        (String.concat ";"
           (List.map
              (fun (h, d) -> Printf.sprintf "%d@%d" (rename h) d)
              holders))
  | Forward cmd -> "Forward(" ^ Types.render_cmd ~rename cmd ^ ")"
  | Complete { cmd_id; reply } ->
      Printf.sprintf "Complete(c%d v%s)" cmd_id
        (match reply.Types.value with
        | None -> "-"
        | Some v -> string_of_int v)
  | Grant { from; deadline; grantor_last } ->
      Printf.sprintf "Grant(f%d d%d gl%d)" (rename from) deadline grantor_last
  | GrantConfirm { from; deadline } ->
      Printf.sprintf "GrantConfirm(f%d d%d)" (rename from) deadline

(* ---- log helpers ---- *)

let last_index srv = Vec.length srv.log - 1

let term_at srv i =
  if i < 0 || i > last_index srv then -1 else (fst (Vec.get srv.log i)).Types.term

(* The highest index replication may ship.  Batching holds appended
   entries back until the batch flushes; unbatched, the tip is the log
   end and the field plays no part. *)
let repl_tip t srv =
  if (p t).batch_size <= 1 then last_index srv else srv.flush_to

let note_write srv idx (e : Types.entry) =
  match e.cmd with
  | Some { op = Put { key; _ }; _ } ->
      let prev = Option.value ~default:(-1) (Hashtbl.find_opt srv.key_last_write key) in
      if idx > prev then Hashtbl.replace srv.key_last_write key idx
  | _ -> ()

(* ---- forward declarations through a mutable dispatcher ---- *)

let rec send t ~src ~dst msg =
  match t.wire with
  | Some wire when src <> dst -> wire ~src ~dst ~size:(msg_size t msg) msg
  | _ ->
      Net.send t.net ~src ~dst ~size:(msg_size t msg)
        ~info:(fun rename -> render_msg ~rename msg)
        (fun () -> handle t t.servers.(dst) msg)

and broadcast t srv msg =
  Array.iter (fun peer -> if peer.id <> srv.id then send t ~src:srv.id ~dst:peer.id msg) t.servers

(* ---- applying committed entries ---- *)

and complete_at_origin t srv (cmd : Types.cmd) reply =
  send t ~src:srv.id ~dst:cmd.origin (Complete { cmd_id = cmd.id; reply })

and apply_committed t srv =
  while srv.last_applied < srv.commit_index do
    srv.last_applied <- srv.last_applied + 1;
    Metrics.inc srv.pr.pr_commits;
    let entry, _bal = Vec.get srv.log srv.last_applied in
    (match entry.Types.cmd with
    | Some ({ op = Put { key; write_id; _ }; _ } as cmd) ->
        Hashtbl.replace srv.store key write_id;
        if srv.role = Leader then begin
          Span.mark t.spans ~trace:cmd.id ~node:srv.id ~phase:"quorum_commit"
            ~now:(Engine.now t.engine);
          complete_at_origin t srv cmd { Types.value = None }
        end
    | Some ({ op = Get { key }; _ } as cmd) ->
        if srv.role = Leader then begin
          Span.mark t.spans ~trace:cmd.id ~node:srv.id ~phase:"quorum_commit"
            ~now:(Engine.now t.engine);
          complete_at_origin t srv cmd
            { Types.value = Hashtbl.find_opt srv.store key }
        end
    | None -> ())
  done;
  (* Wake local reads blocked on the commit index (quorum-lease mode).
     The partition is skipped entirely when nothing is blocked — the
     common case on every append outside quorum-lease runs. *)
  if srv.pending_reads <> [] then begin
    let ready, blocked =
      List.partition (fun (threshold, _) -> srv.commit_index >= threshold) srv.pending_reads
    in
    srv.pending_reads <- blocked;
    List.iter (fun (_, serve) -> serve ()) ready
  end

(* ---- leases ---- *)

and quorum_lease_active t srv =
  let now = Engine.now t.engine in
  let valid = ref 1 (* self-grant *) in
  Array.iteri
    (fun i deadline -> if i <> srv.id && deadline >= now then incr valid)
    srv.grant_from;
  !valid >= majority t

and leader_lease_valid t srv =
  srv.role = Leader && Engine.now t.engine <= srv.leader_lease_until

and refresh_leader_lease t srv =
  let now = Engine.now t.engine in
  let fresh = ref 1 in
  Array.iteri
    (fun i ack ->
      if i <> srv.id && ack >= now - (2 * (p t).heartbeat_interval_us) then
        incr fresh)
    srv.follower_last_ack;
  if !fresh >= majority t then begin
    if srv.leader_lease_until < now then Metrics.inc srv.pr.pr_lease_grants
    else Metrics.inc srv.pr.pr_lease_renewals;
    srv.leader_lease_until <- now + (p t).election_timeout_min_us
  end

(* The (holder, deadline) leases this server has granted and that are
   still valid — attached to acks in quorum-lease mode (Figure 13). *)
and my_valid_grants t srv =
  if t.config.read_mode <> Quorum_lease then []
  else begin
    let now = Engine.now t.engine in
    let acc = ref [] in
    Array.iteri
      (fun h deadline ->
        if h <> srv.id && deadline >= now then acc := (h, deadline) :: !acc)
      srv.my_grants;
    !acc
  end

(* ---- replication (leader side) ---- *)

and send_batch t srv peer =
  let next = srv.next_index.(peer) in
  let tip = repl_tip t srv in
  let entries =
    List.init
      (max 0 (tip - next + 1))
      (fun k -> Vec.get srv.log (next + k))
  in
  srv.inflight.(peer) <- srv.inflight.(peer) + 1;
  Metrics.inc srv.pr.pr_appends;
  (* Optimistic next-index: pipeline further batches without waiting. *)
  srv.next_index.(peer) <- max srv.next_index.(peer) (tip + 1);
  send t ~src:srv.id ~dst:peer
    (Append
       {
         term = srv.term;
         leader = srv.id;
         prev_idx = next - 1;
         prev_term = term_at srv (next - 1);
         entries;
         commit = srv.commit_index;
       })

and maybe_replicate t srv =
  if srv.role = Leader then begin
    let tip = repl_tip t srv in
    Array.iter
      (fun peer ->
        if
          peer.id <> srv.id
          && srv.inflight.(peer.id) < (p t).pipeline_window
          && srv.next_index.(peer.id) <= tip
        then send_batch t srv peer.id)
      t.servers
  end

(* Release the accumulated batch to replication.  One call replicates
   every command appended since the previous flush as a single Append
   per follower (one wire frame, one follower CPU charge, one
   apply_committed walk and one Ack at the other end). *)
and flush_batch t srv =
  Metrics.observe srv.pr.pr_batch_cmds srv.unflushed;
  srv.unflushed <- 0;
  if srv.flush_to < last_index srv then begin
    srv.flush_to <- last_index srv;
    maybe_replicate t srv
  end

and advance_commit t srv =
  if srv.role = Leader then begin
    let now = Engine.now t.engine in
    (* Highest index replicated on a majority: the majority-th largest
       match index, with the leader standing at its own last index.
       [quorum_match m] holds iff [m <= frontier] (match counts are
       monotone downward), so the commit scan can start there instead of
       probing every in-flight index from the log tip — with hundreds of
       closed-loop clients the tip-to-commit gap is the outstanding-op
       count, and this runs once per ack. *)
    let quorum_frontier () =
      let xs = Array.copy srv.match_index in
      xs.(srv.id) <- last_index srv;
      (* n = cluster size (<= a handful), not data volume. *)
      (Array.sort Int.compare xs [@perf.allow "sort-in-loop"]);
      xs.(t.n - majority t)
    in
    (* Figure 13's LeaderLearn: the holder set is the union of the
       leases granted by every commit-quorum member (reported in their
       acks) and by the leader itself; each such holder must have
       acknowledged the entry before it commits.  Returns the smallest
       match index among the holders required at [m] ([max_int] when
       unconstrained): [m] commits iff that bound is [>= m], and when it
       is not, no index in its gap can commit either (a holder required
       at [m] stays required below it), so the scan may jump straight to
       the bound. *)
    let holders_min_match m =
      match t.config.read_mode with
      | Quorum_lease ->
          let bound = ref max_int in
          let require h =
            if h <> srv.id then bound := min !bound srv.match_index.(h)
          in
          Array.iteri
            (fun h deadline -> if deadline >= now then require h)
            srv.my_grants;
          Array.iteri
            (fun x row ->
              if x <> srv.id && srv.match_index.(x) >= m then
                Array.iteri
                  (fun h deadline -> if deadline >= now then require h)
                  row)
            srv.peer_grants;
          !bound
      | Log_read | Leader_lease -> max_int
    in
    (* 5.4.2: only an entry of the current term commits by counting
       replicas, but committing it commits the whole prefix (inherited
       old-term entries included) — so scan downward for the highest
       committable index. *)
    let new_commit = ref srv.commit_index in
    let blocked_on_holder = ref false in
    let m = ref (min (last_index srv) (quorum_frontier ())) in
    while !m > srv.commit_index && !new_commit = srv.commit_index do
      if term_at srv !m = srv.term then begin
        let bound = holders_min_match !m in
        if bound >= !m then new_commit := !m
        else begin
          blocked_on_holder := true;
          m := min (!m - 1) bound
        end
      end
      else decr m
    done;
    if !new_commit > srv.commit_index then begin
      srv.commit_index <- !new_commit;
      apply_committed t srv
    end;
    if !blocked_on_holder then
      (* A lease holder is behind (possibly down): retry when the earliest
         blocking lease expires. *)
      let earliest =
        let min_valid acc d = if d >= now then min acc d else acc in
        let own = Array.fold_left min_valid max_int srv.my_grants in
        Array.fold_left
          (fun acc row -> Array.fold_left min_valid acc row)
          own srv.peer_grants
      in
      if earliest < max_int then
        Engine.schedule t.engine ~node:srv.id ~label:"commit-retry"
          ~delay:(earliest - now + 1) (fun () ->
            if srv.role = Leader && not srv.down then advance_commit t srv)
  end

(* ---- client operations ---- *)

and serve_local_read t srv (cmd : Types.cmd) =
  Metrics.inc srv.pr.pr_local_reads;
  Cpu.exec srv.cpu ~cost_us:(p t).cpu_read_op_us (fun () ->
      if not srv.down then begin
        let key = Types.key_of cmd.op in
        Span.mark t.spans ~trace:cmd.id ~node:srv.id ~phase:"local_read"
          ~now:(Engine.now t.engine);
        complete_at_origin t srv cmd { Types.value = Hashtbl.find_opt srv.store key }
      end)

and append_cmd t srv (cmd : Types.cmd) =
  let extra =
    match (t.config.read_mode, cmd.op) with
    | Quorum_lease, Put _ -> (p t).cpu_pql_commit_extra_us
    | _ -> 0
  in
  Cpu.exec srv.cpu ~cost_us:((p t).cpu_leader_op_us + extra) (fun () ->
      if srv.role = Leader && not srv.down && Hashtbl.mem srv.appended_cmds cmd.id
      then () (* duplicate Forward: already in the log *)
      else if srv.role = Leader && not srv.down then begin
        Hashtbl.replace srv.appended_cmds cmd.id ();
        let entry = { Types.term = srv.term; cmd = Some cmd } in
        Vec.push srv.log (entry, srv.term);
        note_write srv (last_index srv) entry;
        Span.mark t.spans ~trace:cmd.id ~node:srv.id ~phase:"append"
          ~now:(Engine.now t.engine);
        (if (p t).batch_size <= 1 then maybe_replicate t srv
         else begin
           srv.unflushed <- srv.unflushed + 1;
           if srv.unflushed >= (p t).batch_size then flush_batch t srv
           else if not srv.flush_pending then begin
             (* Time bound on the accumulator: the timer is armed by the
                batch's first command and left to fire (never cancelled);
                a size-triggered flush just empties it early and the
                firing degenerates to a no-op. *)
             srv.flush_pending <- true;
             Engine.schedule t.engine ~node:srv.id ~label:"flush"
               ~delay:(max 1 (p t).batch_delay_us) (fun () ->
                 srv.flush_pending <- false;
                 if srv.role = Leader && (not srv.down) && srv.unflushed > 0
                 then flush_batch t srv)
           end
         end);
        if t.n = 1 then begin
          srv.match_index.(srv.id) <- last_index srv;
          srv.commit_index <- last_index srv;
          apply_committed t srv
        end
      end
      else if not srv.down then begin
        (* Leadership moved while queued: forward to wherever we believe
           the leader is. *)
        Metrics.inc srv.pr.pr_forwards;
        send t ~src:srv.id ~dst:srv.leader_hint (Forward cmd)
      end)

and handle_client t srv (cmd : Types.cmd) =
  if not srv.down then
    match cmd.op with
    | Get { key } -> (
        match t.config.read_mode with
        | Quorum_lease when quorum_lease_active t srv ->
            (* Figure 13: wait until every log entry that writes the key is
               committed, then read locally. *)
            let threshold =
              Option.value ~default:(-1) (Hashtbl.find_opt srv.key_last_write key)
            in
            if srv.commit_index >= threshold then serve_local_read t srv cmd
            else begin
              Metrics.inc srv.pr.pr_lease_waits;
              srv.pending_reads <-
                ( threshold,
                  fun () ->
                    (* The wake ends the lease-wait span; the local read's
                       CPU time is its own phase. *)
                    Span.mark t.spans ~trace:cmd.id ~node:srv.id
                      ~phase:"lease_wait" ~now:(Engine.now t.engine);
                    serve_local_read t srv cmd )
                :: srv.pending_reads
            end
        | Leader_lease when leader_lease_valid t srv ->
            serve_local_read t srv cmd
        | _ ->
            if srv.role = Leader then append_cmd t srv cmd
            else begin
              Metrics.inc srv.pr.pr_forwards;
              send t ~src:srv.id ~dst:srv.leader_hint (Forward cmd)
            end)
    | Put _ ->
        if srv.role = Leader then append_cmd t srv cmd
        else begin
          Metrics.inc srv.pr.pr_forwards;
          send t ~src:srv.id ~dst:srv.leader_hint (Forward cmd)
        end

(* ---- elections ---- *)

and reset_election_timer t srv =
  if srv.down then begin
    match srv.election_timer with
    | Some timer ->
        Engine.cancel timer;
        srv.election_timer <- None
    | None -> ()
  end
  else begin
    let span =
      (p t).election_timeout_min_us
      + Rng.int srv.rng
          (max 1 ((p t).election_timeout_max_us - (p t).election_timeout_min_us))
    in
    if Engine.is_manual t.engine then begin
      (* Model-checking mode: each held timer is an explicit choice whose
         firing must start an election, so a reset stays a fresh event. *)
      (match srv.election_timer with
      | Some timer -> Engine.cancel timer
      | None -> ());
      srv.election_timer <-
        Some
          (Engine.schedule_cancellable t.engine ~node:srv.id ~label:"election"
             ~delay:span (fun () ->
               if (not srv.down) && srv.role <> Leader then start_election t srv))
    end
    else begin
      (* Simulation mode: a follower resets this timer on every append,
         so cancelling and rescheduling here is two heap operations per
         replicated message.  Instead push the deadline forward and let
         the single armed timer re-arm itself until it catches up. *)
      srv.election_deadline <- Engine.now t.engine + span;
      if srv.election_timer = None then arm_election_timer t srv ~delay:span
    end
  end

and arm_election_timer t srv ~delay =
  srv.election_timer <-
    Some
      (Engine.schedule_cancellable t.engine ~node:srv.id ~label:"election"
         ~delay (fun () ->
           srv.election_timer <- None;
           if not srv.down then begin
             let remaining = srv.election_deadline - Engine.now t.engine in
             if remaining > 0 then arm_election_timer t srv ~delay:remaining
             else if srv.role <> Leader then start_election t srv
           end))

and start_election t srv =
  Metrics.inc srv.pr.pr_elections;
  Metrics.inc srv.pr.pr_term_changes;
  srv.term <- srv.term + 1;
  srv.role <- Candidate;
  srv.voted_for <- Some srv.id;
  Array.fill srv.votes 0 t.n false;
  srv.votes.(srv.id) <- true;
  Vec.clear srv.vote_extras;
  reset_election_timer t srv;
  broadcast t srv
    (RequestVote
       {
         term = srv.term;
         cand = srv.id;
         last_idx = last_index srv;
         last_term = term_at srv (last_index srv);
       })

and candidate_up_to_date srv ~last_idx ~last_term =
  let my_last = last_index srv in
  let my_term = term_at srv my_last in
  last_term > my_term || (last_term = my_term && last_idx >= my_last)

and become_leader t srv =
  Metrics.inc srv.pr.pr_leader_wins;
  srv.role <- Leader;
  srv.leader_hint <- srv.id;
  (* Raft*: adopt the safe (highest-ballot) extra entries the voters sent
     for the slots beyond our log. *)
  (if t.config.flavor = Star then
     let best = Hashtbl.create 8 in
     Vec.iter
       (fun (idx, entry, bal) ->
         if idx > last_index srv then
           match Hashtbl.find_opt best idx with
           | Some (_, b) when b >= bal -> ()
           | _ -> Hashtbl.replace best idx (entry, bal))
       srv.vote_extras;
     let rec adopt idx =
       match Hashtbl.find_opt best idx with
       | Some (entry, bal) ->
           Vec.push srv.log (entry, bal);
           note_write srv (last_index srv) entry;
           adopt (idx + 1)
       | None -> ()
     in
     adopt (last_index srv + 1));
  (* A fresh no-op lets the new term commit inherited entries (5.4.2). *)
  Vec.push srv.log ({ Types.term = srv.term; cmd = None }, srv.term);
  Array.iteri (fun i _ -> srv.next_index.(i) <- last_index srv) srv.next_index;
  Array.fill srv.match_index 0 t.n (-1);
  Array.fill srv.inflight 0 t.n 0;
  srv.match_index.(srv.id) <- last_index srv;
  (* The no-op (and any adopted extras) ship immediately: batching only
     holds back client commands between flushes. *)
  srv.flush_to <- last_index srv;
  srv.unflushed <- 0;
  Array.iter
    (fun peer -> if peer.id <> srv.id then send_batch t srv peer.id)
    t.servers;
  heartbeat_loop t srv srv.term

and heartbeat_loop t srv term =
  if srv.role = Leader && srv.term = term && not srv.down then begin
    let now = Engine.now t.engine in
    Metrics.inc srv.pr.pr_heartbeats;
    Array.iter
      (fun peer ->
        if peer.id <> srv.id then
          if srv.inflight.(peer.id) = 0 then send_batch t srv peer.id
          else if
            (* A link with in-flight batches but no ack for a long time is
               stale (peer crashed or partitioned): reset the window and
               probe so it can resynchronise when it comes back. *)
            srv.follower_last_ack.(peer.id)
            < now - (5 * (p t).heartbeat_interval_us)
          then begin
            srv.inflight.(peer.id) <- 0;
            Metrics.inc srv.pr.pr_retransmits;
            send_batch t srv peer.id
          end)
      t.servers;
    Engine.schedule t.engine ~node:srv.id ~label:"heartbeat"
      ~delay:(p t).heartbeat_interval_us (fun () -> heartbeat_loop t srv term)
  end

(* ---- message handling ---- *)

and step_down t srv term =
  if term > srv.term then Metrics.inc srv.pr.pr_term_changes;
  srv.term <- term;
  srv.role <- Follower;
  srv.voted_for <- None;
  reset_election_timer t srv

and handle t srv msg =
  if not srv.down then
    match msg with
    | Forward cmd ->
        Span.mark t.spans ~trace:cmd.id ~node:srv.id ~phase:"forward"
          ~now:(Engine.now t.engine);
        handle_client t srv cmd
    | Complete { cmd_id; reply } -> (
        match Hashtbl.find_opt t.completions cmd_id with
        | Some k ->
            Hashtbl.remove t.completions cmd_id;
            Span.mark t.spans ~trace:cmd_id ~node:srv.id ~phase:"reply"
              ~now:(Engine.now t.engine);
            k reply
        | None -> () (* duplicate completion after leader change *))
    | Grant { from; deadline; grantor_last } ->
        if last_index srv >= grantor_last then begin
          srv.grant_from.(from) <- max srv.grant_from.(from) deadline;
          Metrics.inc srv.pr.pr_lease_confirms;
          send t ~src:srv.id ~dst:from (GrantConfirm { from = srv.id; deadline })
        end
        else
          srv.pending_grants <-
            (from, deadline, grantor_last) :: srv.pending_grants
    | GrantConfirm { from; deadline } ->
        srv.confirmed_grants.(from) <- max srv.confirmed_grants.(from) deadline
    | RequestVote { term; cand; last_idx; last_term } ->
        if term > srv.term then step_down t srv term;
        let granted =
          term = srv.term
          && (match srv.voted_for with None -> true | Some v -> v = cand)
          && candidate_up_to_date srv ~last_idx ~last_term
        in
        if granted then begin
          srv.voted_for <- Some cand;
          reset_election_timer t srv
        end;
        let extras =
          if t.config.flavor = Star && granted then
            List.init
              (max 0 (last_index srv - last_idx))
              (fun k ->
                let idx = last_idx + 1 + k in
                let entry, bal = Vec.get srv.log idx in
                (idx, entry, bal))
          else []
        in
        send t ~src:srv.id ~dst:cand (Vote { term = srv.term; from = srv.id; granted; extras })
    | Vote { term; from; granted; extras } ->
        if term > srv.term then step_down t srv term
        else if srv.role = Candidate && term = srv.term && granted then begin
          srv.votes.(from) <- true;
          List.iter (Vec.push srv.vote_extras) extras;
          let count = Array.fold_left (fun acc v -> if v then acc + 1 else acc) 0 srv.votes in
          if count >= majority t then become_leader t srv
        end
    | Append { term; leader; prev_idx; prev_term; entries; commit } ->
        if term < srv.term then begin
          Metrics.inc srv.pr.pr_acks;
          send t ~src:srv.id ~dst:leader
            (Ack
               {
                 term = srv.term;
                 from = srv.id;
                 success = false;
                 match_idx = -1;
                 holders = my_valid_grants t srv;
               })
        end
        else begin
          if term > srv.term || srv.role <> Follower then step_down t srv term;
          srv.leader_hint <- leader;
          reset_election_timer t srv;
          (* Wire batches are bounded by [max_batch]; the walk is the
             same O(batch) the accept loop pays anyway. *)
          let k = (List.length entries [@perf.allow "length-in-hot-path"]) in
          let cost = max 1 (k * (p t).cpu_follower_op_us) in
          (* The consistency check runs in processing order (inside the CPU
             queue): an earlier batch's log write may still be queued, and
             checking against the stale log would reject valid batches. *)
          Cpu.exec srv.cpu ~cost_us:cost (fun () ->
              if not srv.down then begin
                (* Raft*'s acceptor rules.  Vanilla needs only the
                   prev-term consistency check: truncation preserves log
                   matching, so agreement at [prev] attests the whole
                   prefix.  Star overwrites point-wise and never
                   truncates, which voids both halves of that argument:

                   - a batch ending below our log end would leave a stale
                     old-term suffix whose tip no longer reflects the log
                     content, breaking the up-to-date vote check
                     ([would_shorten], spec AcceptEntries's
                     [l_index >= last_index]);
                   - extra-entry adoption lets the new leader's log agree
                     with ours at [prev] while disagreeing below it, so a
                     batch anchored past our verified frontier could make
                     [min commit match_idx] commit a never-replicated
                     stale gap ([unverified_gap]).

                   A rejection reports the frontier so the leader's
                   back-off resends a batch overlapping it, which then
                   extends the frontier — one extra round trip per leader
                   change, after which pipelined batches stay
                   contiguous. *)
                if t.config.flavor = Star && term > srv.verified_term then begin
                  srv.verified_term <- term;
                  srv.verified_to <- srv.commit_index
                end;
                let stale = t.config.flavor = Star && term < srv.term in
                let would_shorten =
                  t.config.flavor = Star && prev_idx + k < last_index srv
                in
                let unverified_gap =
                  t.config.flavor = Star && prev_idx > srv.verified_to
                in
                if
                  stale || would_shorten || unverified_gap
                  || not (prev_idx < 0 || term_at srv prev_idx = prev_term)
                then begin
                  Metrics.inc srv.pr.pr_acks;
                  send t ~src:srv.id ~dst:leader
                    (Ack
                       {
                         term = srv.term;
                         from = srv.id;
                         success = false;
                         match_idx =
                           (if t.config.flavor = Star then srv.verified_to
                            else srv.commit_index);
                         holders = my_valid_grants t srv;
                       })
                end
                else begin
                  accept_entries t srv ~prev_idx ~entries ~term;
                  let match_idx = prev_idx + k in
                  if t.config.flavor = Star then
                    srv.verified_to <- max srv.verified_to match_idx;
                  srv.commit_index <-
                    max srv.commit_index (min commit match_idx);
                  apply_committed t srv;
                  activate_pending_grants t srv;
                  Metrics.inc srv.pr.pr_acks;
                  send t ~src:srv.id ~dst:leader
                    (Ack
                       {
                         term = srv.term;
                         from = srv.id;
                         success = true;
                         match_idx;
                         holders = my_valid_grants t srv;
                       })
                end
              end)
        end
    | Ack { term; from; success; match_idx; holders } ->
        if term > srv.term then step_down t srv term
        else if srv.role = Leader then begin
          srv.inflight.(from) <- max 0 (srv.inflight.(from) - 1);
          srv.follower_last_ack.(from) <- Engine.now t.engine;
          List.iter
            (fun (h, deadline) ->
              srv.peer_grants.(from).(h) <-
                max srv.peer_grants.(from).(h) deadline)
            holders;
          refresh_leader_lease t srv;
          if success then begin
            srv.match_index.(from) <- max srv.match_index.(from) match_idx;
            srv.next_index.(from) <-
              max srv.next_index.(from) (srv.match_index.(from) + 1);
            advance_commit t srv
          end
          else begin
            Metrics.inc srv.pr.pr_retransmits;
            srv.next_index.(from) <- max 0 (match_idx + 1)
          end;
          maybe_replicate t srv
        end

and activate_pending_grants t srv =
  let ready, waiting =
    List.partition
      (fun (_, _, required) -> last_index srv >= required)
      srv.pending_grants
  in
  srv.pending_grants <- waiting;
  List.iter
    (fun (from, deadline, _) ->
      srv.grant_from.(from) <- max srv.grant_from.(from) deadline;
      Metrics.inc srv.pr.pr_lease_confirms;
      send t ~src:srv.id ~dst:from (GrantConfirm { from = srv.id; deadline }))
    ready

(* Log reconciliation.  Vanilla erases the conflicting suffix; Raft*
   overwrites the replicated range (rewriting ballots) and never shortens
   the log. *)
and accept_entries t srv ~prev_idx ~entries ~term =
  (* Raft*: every entry in an accepted batch is re-accepted at the
     replicating leader's term (spec AcceptEntries rewrites logBallot to
     [term] unconditionally) — not just the matching-term slots.  A
     commit-quorum member must hold the committed entry at a ballot at
     least the committing term, or a later election's highest-ballot
     adoption could prefer a stale competing entry carried at a higher
     wire ballot. *)
  let star_bal bal =
    if t.config.flavor = Star then max bal term else bal
  in
  let idx = ref (prev_idx + 1) in
  List.iter
    (fun ((entry : Types.entry), bal) ->
      let i = !idx in
      if i > last_index srv then begin
        Vec.push srv.log (entry, star_bal bal);
        note_write srv i entry
      end
      else begin
        let existing, _ = Vec.get srv.log i in
        if existing.Types.term <> entry.Types.term then begin
          (match t.config.flavor with
          | Vanilla -> Vec.truncate srv.log i
          | Star -> ());
          if i > last_index srv then Vec.push srv.log (entry, star_bal bal)
          else Vec.set srv.log i (entry, star_bal bal);
          note_write srv i entry
        end
        else if t.config.flavor = Star then
          Vec.set srv.log i (entry, star_bal bal)
      end;
      incr idx)
    entries

(* ---- lease renewal loop (quorum-lease mode) ---- *)

let rec lease_loop t srv =
  if not srv.down then begin
    let deadline = Engine.now t.engine + (p t).lease_duration_us in
    let now = Engine.now t.engine in
    let grantor_last = last_index srv in
    Array.iter
      (fun peer ->
        (* We are bound by any grant from the moment it is sent — even to
           a crashed holder, until it expires.  Renewal therefore requires
           the holder to have confirmed the previous grant: a dead holder
           stalls writes for at most one lease duration. *)
        if
          peer.id <> srv.id
          && (srv.my_grants.(peer.id) < now
             || srv.confirmed_grants.(peer.id) >= srv.my_grants.(peer.id))
        then begin
          if srv.my_grants.(peer.id) < now then
            Metrics.inc srv.pr.pr_lease_grants
          else Metrics.inc srv.pr.pr_lease_renewals;
          srv.my_grants.(peer.id) <- max srv.my_grants.(peer.id) deadline;
          send t ~src:srv.id ~dst:peer.id
            (Grant { from = srv.id; deadline; grantor_last })
        end)
      t.servers
  end;
  Engine.schedule t.engine ~node:srv.id ~label:"lease"
    ~delay:(p t).lease_renew_us (fun () -> lease_loop t srv)

(* ---- construction ---- *)

let create ?(telemetry = Telemetry.disabled) config net =
  let engine = Net.engine net in
  let n = Net.size net in
  let servers =
    Array.init n (fun id ->
        let cpu = Cpu.create engine in
        Cpu.set_metrics cpu telemetry.Telemetry.metrics ~node:id;
        {
          id;
          term = 0;
          voted_for = None;
          role = Follower;
          leader_hint = 0;
          log = Vec.create ();
          commit_index = -1;
          last_applied = -1;
          store = Hashtbl.create 1024;
          key_last_write = Hashtbl.create 1024;
          appended_cmds = Hashtbl.create 1024;
          next_index = Array.make n 0;
          match_index = Array.make n (-1);
          inflight = Array.make n 0;
          votes = Array.make n false;
          vote_extras = Vec.create ();
          follower_last_ack = Array.make n min_int;
          leader_lease_until = min_int;
          grant_from = Array.make n min_int;
          pending_grants = [];
          my_grants = Array.make n min_int;
          confirmed_grants = Array.make n min_int;
          peer_grants = Array.make_matrix n n min_int;
          pending_reads = [];
          flush_to = -1;
          unflushed = 0;
          flush_pending = false;
          verified_term = 0;
          verified_to = -1;
          election_timer = None;
          election_deadline = 0;
          down = false;
          cpu;
          rng = Rng.split (Engine.rng engine);
          pr = make_probes telemetry.Telemetry.metrics ~node:id;
        })
  in
  let t =
    {
      config;
      net;
      engine;
      n;
      servers;
      completions = Hashtbl.create 4096;
      next_cmd_id = 0;
      cmd_id_stride = 1;
      wire = None;
      spans = telemetry.Telemetry.spans;
    }
  in
  (match config.initial_leader with
  | Some l ->
      Array.iter
        (fun srv ->
          srv.term <- 1;
          srv.leader_hint <- l)
        servers;
      let leader = servers.(l) in
      leader.role <- Leader;
      Vec.push leader.log ({ Types.term = 1; cmd = None }, 1);
      leader.flush_to <- 0;
      leader.match_index.(l) <- 0;
      Array.iteri (fun i _ -> leader.next_index.(i) <- 0) leader.next_index;
      leader.next_index.(l) <- 1
  | None -> ());
  t

let start t =
  Array.iter
    (fun srv ->
      if srv.role = Leader then heartbeat_loop t srv srv.term
      else reset_election_timer t srv;
      if t.config.read_mode = Quorum_lease then lease_loop t srv)
    t.servers

let submit_id t ~node op k =
  let id = t.next_cmd_id in
  t.next_cmd_id <- id + t.cmd_id_stride;
  Hashtbl.replace t.completions id k;
  let cmd =
    { Types.id; op; origin = node; submitted_us = Engine.now t.engine }
  in
  Span.mark t.spans ~trace:id ~node ~phase:"submit" ~now:(Engine.now t.engine);
  (* Client-to-colocated-replica hop. *)
  Net.send t.net ~src:node ~dst:node
    ~size:((p t).msg_header_bytes + Types.op_size op)
    ~info:(fun rename -> "Submit(" ^ Types.render_cmd ~rename cmd ^ ")")
    (fun () ->
      Span.mark t.spans ~trace:id ~node ~phase:"client_hop"
        ~now:(Engine.now t.engine);
      handle_client t t.servers.(node) cmd);
  id

let submit t ~node op k = ignore (submit_id t ~node op k)

(* ---- network-shell hooks ---- *)

let set_wire t f = t.wire <- f
let deliver t ~node msg = handle t t.servers.(node) msg

let set_cmd_ids t ~base ~stride =
  t.next_cmd_id <- base;
  t.cmd_id_stride <- stride

let leader_of t =
  let found = ref None in
  Array.iter
    (fun srv ->
      if srv.role = Leader && not srv.down then
        match !found with
        | None -> found := Some srv.id
        | Some other ->
            (* Two leaders can transiently coexist at different terms; the
               higher term wins as "the" leader. *)
            if srv.term > t.servers.(other).term then found := Some srv.id)
    t.servers;
  !found

let term_of t ~node = t.servers.(node).term
let commit_index t ~node = t.servers.(node).commit_index
let log_length t ~node = Vec.length t.servers.(node).log

let applied_value t ~node ~key =
  Hashtbl.find_opt t.servers.(node).store key

let log_entries t ~node =
  List.map fst (Vec.to_list t.servers.(node).log)

let lease_active t ~node = quorum_lease_active t t.servers.(node)

let crash t ~node =
  let srv = t.servers.(node) in
  srv.down <- true;
  Net.set_node_down t.net node true;
  (match srv.election_timer with Some timer -> Engine.cancel timer | None -> ());
  srv.election_timer <- None

let restart t ~node =
  let srv = t.servers.(node) in
  srv.down <- false;
  Net.set_node_down t.net node false;
  srv.role <- Follower;
  Array.fill srv.inflight 0 t.n 0;
  srv.unflushed <- 0;
  srv.pending_reads <- [];
  Array.fill srv.grant_from 0 t.n min_int;
  srv.pending_grants <- [];
  Array.fill srv.my_grants 0 t.n min_int;
  Array.fill srv.confirmed_grants 0 t.n min_int;
  Array.iter (fun row -> Array.fill row 0 t.n min_int) srv.peer_grants;
  reset_election_timer t srv;
  if t.config.read_mode = Quorum_lease then lease_loop t srv

(* ---- model-checker inspection hooks ---- *)

let role_char = function Follower -> 'F' | Candidate -> 'C' | Leader -> 'L'

let sorted_tbl tbl render =
  let items = Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [] in
  let items = List.sort (fun (a, _) (b, _) -> Int.compare a b) items in
  String.concat "," (List.map render items)

let sorted_ints l = List.sort Int.compare l

let dump_state ?(rename = Fun.id) t ~node =
  let srv = t.servers.(node) in
  (* Node-indexed arrays move to canonical positions: slot [rename i]
     shows node [i]'s value. *)
  let permuted a =
    let b = Array.copy a in
    Array.iteri (fun i v -> b.(rename i) <- v) a;
    b
  in
  let buf = Buffer.create 256 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "t%d v%s %c h%d ci%d la%d %s|" srv.term
    (match srv.voted_for with
    | None -> "-"
    | Some v -> string_of_int (rename v))
    (role_char srv.role) (rename srv.leader_hint) srv.commit_index
    srv.last_applied
    (if srv.down then "D" else "U");
  Vec.iteri
    (fun _ (e, b) -> add "%s/b%d;" (Types.render_entry ~rename e) b)
    srv.log;
  add "|st:%s" (sorted_tbl srv.store (fun (k, v) -> Printf.sprintf "%d=%d" k v));
  add "|kw:%s"
    (sorted_tbl srv.key_last_write (fun (k, v) -> Printf.sprintf "%d=%d" k v));
  add "|ap:%s"
    (String.concat ","
       (List.map string_of_int
          (sorted_ints (Hashtbl.fold (fun k () acc -> k :: acc) srv.appended_cmds []))));
  let ints name a =
    add "|%s:%s" name
      (String.concat "," (Array.to_list (Array.map string_of_int a)))
  in
  ints "ni" (permuted srv.next_index);
  ints "mi" (permuted srv.match_index);
  ints "if" (permuted srv.inflight);
  add "|vt:%s"
    (String.concat ""
       (Array.to_list
          (Array.map (fun v -> if v then "1" else "0") (permuted srv.votes))));
  add "|vx:%s"
    (String.concat ";"
       (List.sort String.compare
          (List.map
             (fun (i, e, b) ->
               Printf.sprintf "%d:%s/b%d" i (Types.render_entry ~rename e) b)
             (Vec.to_list srv.vote_extras))));
  ints "fa" (permuted srv.follower_last_ack);
  add "|ll:%d" srv.leader_lease_until;
  ints "gf" (permuted srv.grant_from);
  add "|pg:%s"
    (String.concat ";"
       (List.sort String.compare
          (List.map
             (fun (f, d, r) -> Printf.sprintf "%d@%d>%d" (rename f) d r)
             srv.pending_grants)));
  ints "mg" (permuted srv.my_grants);
  ints "cg" (permuted srv.confirmed_grants);
  Array.iter (fun row -> ints "pr" (permuted row)) (permuted srv.peer_grants);
  add "|rd:%s"
    (String.concat ","
       (List.map string_of_int
          (sorted_ints (List.map fst srv.pending_reads))));
  (* Batched runs only: the accumulator is real protocol state the
     checker must distinguish.  Unbatched fingerprints stay identical. *)
  if (p t).batch_size > 1 then
    add "|fl:%d,%d,%b" srv.flush_to srv.unflushed srv.flush_pending;
  Buffer.contents buf

type peek_entry = { pe_term : int; pe_ballot : int; pe_cmd : int option }

type peek = {
  pk_term : int;
  pk_is_leader : bool;
  pk_commit : int;
  pk_log : peek_entry list;
}

let peek t ~node =
  let srv = t.servers.(node) in
  {
    pk_term = srv.term;
    pk_is_leader = (srv.role = Leader);
    pk_commit = srv.commit_index;
    pk_log =
      List.map
        (fun ((e : Types.entry), b) ->
          {
            pe_term = e.term;
            pe_ballot = b;
            pe_cmd = Option.map (fun (c : Types.cmd) -> c.id) e.cmd;
          })
        (Vec.to_list srv.log);
  }

(* Components that must never decrease along any execution.  The log
   block (length, then per-index ballots) is append-only under Raft*
   only, so vanilla exposes just term and commit index. *)
let mono_view t ~node =
  let srv = t.servers.(node) in
  match t.config.flavor with
  | Vanilla -> [| srv.term; srv.commit_index |]
  | Star ->
      let len = Vec.length srv.log in
      Array.init (3 + len) (fun i ->
          if i = 0 then srv.term
          else if i = 1 then srv.commit_index
          else if i = 2 then len
          else snd (Vec.get srv.log (i - 3)))

let entry_eq (e1 : Types.entry) (e2 : Types.entry) =
  e1.term = e2.term
  && Option.map (fun (c : Types.cmd) -> c.id) e1.cmd
     = Option.map (fun (c : Types.cmd) -> c.id) e2.cmd

let invariant_violation t =
  let violation = ref None in
  let fail fmt = Printf.ksprintf (fun s -> if !violation = None then violation := Some s) fmt in
  (* Election Safety: at most one leader per term (persisted state, so
     crashed servers' stale roles count too: a second leader in the same
     term would be a safety bug even if the first is currently down). *)
  Array.iter
    (fun a ->
      Array.iter
        (fun b ->
          if
            a.id < b.id && a.role = Leader && b.role = Leader
            && a.term = b.term
          then fail "election-safety: nodes %d and %d both lead term %d" a.id b.id a.term)
        t.servers)
    t.servers;
  (* Log Matching (per-index form, valid for both flavors): same creation
     term at an index implies the same entry.  Vanilla additionally
     guarantees equal prefixes below a matching index. *)
  Array.iter
    (fun a ->
      Array.iter
        (fun b ->
          if a.id < b.id then
            let upto = min (last_index a) (last_index b) in
            for i = 0 to upto do
              let ea, _ = Vec.get a.log i and eb, _ = Vec.get b.log i in
              if ea.Types.term = eb.Types.term && not (entry_eq ea eb) then
                fail "log-matching: nodes %d,%d index %d term %d: %s vs %s"
                  a.id b.id i ea.Types.term (Types.render_entry ea)
                  (Types.render_entry eb);
              if
                t.config.flavor = Vanilla
                && ea.Types.term = eb.Types.term
                && i > 0
              then begin
                let pa, _ = Vec.get a.log (i - 1)
                and pb, _ = Vec.get b.log (i - 1) in
                if not (entry_eq pa pb) then
                  fail
                    "log-matching-prefix: nodes %d,%d differ at %d below a \
                     term match at %d"
                    a.id b.id (i - 1) i
              end
            done)
        t.servers)
    t.servers;
  (* Leader Completeness, checkable form: a live leader holding the
     globally maximal term must contain every entry any server has
     committed (anything committed was chosen at a term <= that max). *)
  let max_term = Array.fold_left (fun acc s -> max acc s.term) 0 t.servers in
  Array.iter
    (fun l ->
      if l.role = Leader && (not l.down) && l.term = max_term then
        Array.iter
          (fun s ->
            for i = 0 to s.commit_index do
              if i > last_index l then
                fail "leader-completeness: leader %d (term %d) misses committed index %d of node %d"
                  l.id l.term i s.id
              else
                let el, _ = Vec.get l.log i and es, _ = Vec.get s.log i in
                if not (entry_eq el es) then
                  fail "leader-completeness: leader %d disagrees with node %d at committed index %d"
                    l.id s.id i
            done)
          t.servers)
    t.servers;
  (* State-Machine Safety: commonly committed prefixes are identical. *)
  Array.iter
    (fun a ->
      Array.iter
        (fun b ->
          if a.id < b.id then
            for i = 0 to min a.commit_index b.commit_index do
              let ea, _ = Vec.get a.log i and eb, _ = Vec.get b.log i in
              if not (entry_eq ea eb) then
                fail "state-machine-safety: nodes %d,%d disagree at committed index %d"
                  a.id b.id i
            done)
        t.servers)
    t.servers;
  (* The Raft* per-entry ballot field: never below the entry's creation
     term (vanilla degenerates to equality). *)
  Array.iter
    (fun s ->
      Vec.iteri
        (fun i (e, b) ->
          let bad =
            match t.config.flavor with
            | Vanilla -> b <> e.Types.term
            | Star -> b < e.Types.term
          in
          if bad then
            fail "ballot-field: node %d index %d ballot %d vs term %d" s.id i
              b e.Types.term)
        s.log)
    t.servers;
  !violation
