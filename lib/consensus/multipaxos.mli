(** Runtime MultiPaxos (Figure 1): a stable-leader multi-decree Paxos over
    the simulated WAN.

    The leader runs Phase 1 once (batched over all instances, as the paper
    describes) and then commits one instance per client operation with a
    single Phase-2 round.  Instances commit out of order — the
    characteristic MultiPaxos behaviour Raft lacks — and replicas execute
    the log in order once the prefix is decided.

    Failure handling: when the leader dies, the replica with the lowest id
    among the live ones takes over with a higher ballot, re-running
    Phase 1; acceptors reject lower-ballot traffic. *)

type config = {
  params : Types.params;
  takeover_timeout_us : int;  (** leader-failure detection *)
  bug_no_takeover_after_restart : bool;
      (** test-only mutation (default [false]): the takeover watchdog
          only fires for a *down* leader, re-introducing the
          restarted-leader livelock the fault-injection PR fixed.  Exists
          so the model checker's mutation smoke test can prove it detects
          the bug. *)
}

val default_config : config

(** {1 Wire messages} — exposed for the {!Raftpax_netcore} codec. *)

type msg =
  | Prepare of { bal : int; from : int }
  | PrepareOk of {
      bal : int;
      from : int;
      accepted : (int * int * Types.cmd option) list;
          (** (instance, ballot, value) for every accepted instance *)
    }
  | Accept of { bal : int; from : int; inst : int; cmd : Types.cmd option }
  | AcceptOk of { bal : int; from : int; inst : int }
  | Learn of { inst : int; cmd : Types.cmd option }
  | AcceptMulti of {
      bal : int;
      from : int;
      items : (int * Types.cmd option) list;
          (** one flushed leader batch: (instance, value) per command *)
    }
  | AcceptOkMulti of { bal : int; from : int; insts : int list }
  | LearnMulti of { items : (int * Types.cmd option) list }
  | Forward of Types.cmd
  | Complete of { cmd_id : int; reply : Types.reply }

type t

val create :
  ?telemetry:Raftpax_telemetry.Telemetry.t ->
  ?leader:int ->
  config ->
  Raftpax_sim.Net.t ->
  t
(** [?telemetry] attaches protocol probes (elections, ballot changes,
    accepts, acks, retransmits, forwards, commits) and span marks; defaults
    to the disabled instance. *)

val start : t -> unit

val submit : t -> node:int -> Types.op -> (Types.reply -> unit) -> unit

val submit_id : t -> node:int -> Types.op -> (Types.reply -> unit) -> int
(** Like {!submit} but returns the command id (the span trace id). *)

(** {1 Network-shell hooks} — see {!Raft.set_wire}; same contract. *)

val set_wire : t -> (src:int -> dst:int -> size:int -> msg -> unit) option -> unit
val deliver : t -> node:int -> msg -> unit
val set_cmd_ids : t -> base:int -> stride:int -> unit

val leader_of : t -> int
val ballot_of : t -> node:int -> int
val chosen_count : t -> node:int -> int
(** Instances this replica knows to be chosen. *)

val executed_prefix : t -> node:int -> int
(** Length of the executed (in-order decided) prefix. *)

val committed_ops : t -> node:int -> Types.op list
(** Operations in the executed prefix, in instance order — the oracle for
    consistency checking. *)

val applied_value : t -> node:int -> key:int -> int option

val crash : t -> node:int -> unit
val restart : t -> node:int -> unit

(** {1 Model-checker hooks} *)

val dump_state : ?rename:(int -> int) -> t -> node:int -> string
(** Canonical rendering of every behaviour-relevant field of one replica,
    for state fingerprinting. *)

val mono_view : t -> node:int -> int array
(** Non-decreasing components: ballot, executed prefix, chosen count. *)

val invariant_violation : t -> string option
(** Cluster-wide safety: chosen-instance agreement and no command chosen
    at two instances. *)
