(** Runtime implementation of Raft*-Mencius: the round-robin composition of
    coordinated instances whose spec-level core is
    {!Raftpax_core.Opt_mencius}.

    Every replica is the {e default leader} of the instances congruent to
    its id modulo the cluster size, so a client always submits to its local
    replica and never pays a forwarding round-trip.  A replica that
    observes the instance space advancing past its own unused slots
    {e skips} them (broadcasting no-ops that peers may treat as decided
    immediately — the coordinated-Paxos property checked at spec level).

    Execution follows Mencius' split between commit and execute:
    - an op on a {e contended} key replies only when the log is committed
      sequentially up to its slot (it must order against every earlier
      conflicting op);
    - a {e commutative} op (its key touched by no concurrent op) replies
      once its own slot commits and the contents of all earlier slots are
      known (append or skip received) — the paper's Raft*-M-0% fast path.

    Contention is keyed: operations on {!hot_key} are treated as
    conflicting, everything else as commutative, which is exactly how the
    paper's workload dials the conflict rate.

    A simplified revocation path handles a crashed replica: the lowest
    live replica no-ops the dead peer's pending slots after
    [revoke_timeout] (standing in for Mencius' recovery-leader Phase-1,
    with a single designated revoker instead of ballots). *)

type config = {
  params : Types.params;
  revoke_timeout_us : int;
  bug_slot_reuse : bool;
      (** test-only mutation (default [false]): skip the decided-slot
          check before proposing into the next own turn, re-introducing
          the slot-reuse-after-revocation bug the fault-injection PR
          fixed.  Exists so the model checker's mutation smoke test can
          prove it detects the bug. *)
}

val default_config : config

(** {1 Wire messages} — exposed for the {!Raftpax_netcore} codec. *)

type msg =
  | MAppend of { from : int; inst : int; cmd : Types.cmd }
  | MAck of { from : int; inst : int }
  | MSkip of { from : int; first : int; upto : int }
      (** [from]'s turns in [[first, upto)] are no-ops *)
  | MCommit of { inst : int }
  | MRevoke of { from : int; inst : int }
  | MRevStatus of { from : int; inst : int; value : Types.cmd option }
  | MSkipForce of { inst : int }
  | MCatchup of { from : int }
  | MState of {
      slots : (int * bool * Types.cmd option * bool) list;
          (** (instance, is_skip, value, committed) for every decided or
              known slot *)
    }
  | MAppendMulti of {
      from : int;
      items : (int * Types.cmd) list;
          (** one flushed batch of the sender's own turns *)
    }
  | MAckMulti of { from : int; insts : int list }
  | MCommitMulti of { insts : int list }
  | Complete of { cmd_id : int; reply : Types.reply }

type t

val create :
  ?telemetry:Raftpax_telemetry.Telemetry.t -> config -> Raftpax_sim.Net.t -> t
(** [?telemetry] attaches protocol probes (appends, acks, skips,
    revocations, catchups, commits, retransmits) and span marks; a
    revocation of slot [i] traces under the internal id [-(i + 1)] with
    phases [revoke_start] / [revoke_value] / [revoke_skip].  Defaults to
    the disabled instance. *)

val start : t -> unit
val hot_key : int

val submit : t -> node:int -> Types.op -> (Types.reply -> unit) -> unit

val submit_id : t -> node:int -> Types.op -> (Types.reply -> unit) -> int
(** Like {!submit} but returns the command id (the span trace id). *)

(** {1 Network-shell hooks} — see {!Raft.set_wire}; same contract. *)

val set_wire : t -> (src:int -> dst:int -> size:int -> msg -> unit) option -> unit
val deliver : t -> node:int -> msg -> unit
val set_cmd_ids : t -> base:int -> stride:int -> unit

(** {1 Introspection} *)

val commit_frontier : t -> node:int -> int
(** Slots below this are committed (value or skip) in order. *)

val known_frontier : t -> node:int -> int

val committed_ops : t -> node:int -> Types.op list
(** Operations in the committed prefix, in slot order (skips omitted) —
    the oracle for consistency checking. *)

val applied_value : t -> node:int -> key:int -> int option
val slot_count : t -> node:int -> int
val skipped_count : t -> node:int -> int

val dump_slots : t -> node:int -> string
(** Debug view of the slot space: one token per slot —
    ["V(w<id>)"]/["G"] value, ["S"] skip, ["U"] unknown, ["!"] suffix
    when uncommitted.  For diagnosing divergence in nemesis traces. *)

val crash : t -> node:int -> unit
val restart : t -> node:int -> unit

(** {1 Model-checker hooks} *)

val dump_state : ?rename:(int -> int) -> t -> node:int -> string
(** Canonical rendering of every behaviour-relevant field of one replica,
    for state fingerprinting. *)

val mono_view : t -> node:int -> int array
(** Non-decreasing components: known/commit frontiers, applied prefix,
    own-turn cursor, committed-slot count. *)

val invariant_violation : t -> string option
(** Cluster-wide safety: committed-slot agreement (including
    skip-soundness — no slot committed as both a value and a skip) and
    no command committed at two slots. *)
