type 'a t = { mutable data : 'a array; mutable len : int }

let create () = { data = [||]; len = 0 }
let length v = v.len

let get v i =
  if i < 0 || i >= v.len then invalid_arg "Vec.get";
  v.data.(i)

let set v i x =
  if i < 0 || i >= v.len then invalid_arg "Vec.set";
  v.data.(i) <- x

let[@perf.hot] push v x =
  if v.len = Array.length v.data then begin
    let cap = max 8 (2 * v.len) in
    (* Doubling growth: the copy amortises to O(1) per push. *)
    let data = (Array.make cap x [@perf.allow "alloc-in-handler"]) in
    Array.blit v.data 0 data 0 v.len;
    v.data <- data
  end;
  v.data.(v.len) <- x;
  v.len <- v.len + 1

let truncate v n = if n < v.len then v.len <- max 0 n
let clear v = v.len <- 0
let iter f v =
  for i = 0 to v.len - 1 do
    f v.data.(i)
  done

let last v = if v.len = 0 then None else Some v.data.(v.len - 1)

let iteri f v =
  for i = 0 to v.len - 1 do
    f i v.data.(i)
  done

let to_list v = List.init v.len (fun i -> v.data.(i))
