module Net = Raftpax_sim.Net
module Engine = Raftpax_sim.Engine
module Cpu = Raftpax_sim.Cpu
module Rng = Raftpax_sim.Rng
module Telemetry = Raftpax_telemetry.Telemetry
module Metrics = Raftpax_telemetry.Metrics
module Span = Raftpax_telemetry.Span

type config = {
  params : Types.params;
  revoke_timeout_us : int;
  bug_slot_reuse : bool;
      (** test-only mutation: re-introduce the pre-fix behaviour where a
          replica proposes into its next own turn without checking that
          the slot was decided (force-skipped) while it sat idle.  The
          model checker's mutation smoke test asserts this is caught. *)
}

let default_config =
  {
    params = Types.default_params;
    revoke_timeout_us = 3_000_000;
    bug_slot_reuse = false;
  }

let hot_key = 0

type slot = Unknown | Value of Types.cmd | Skip

type revocation = { seen : bool array; mutable found : Types.cmd option }
(* per-sender, so duplicate deliveries under fault injection cannot
   double-count toward the majority *)

type msg =
  | MAppend of { from : int; inst : int; cmd : Types.cmd }
  | MAck of { from : int; inst : int }
  | MSkip of { from : int; first : int; upto : int }
      (** [from]'s turns in [[first, upto)] are no-ops.  The range is
          explicit — "every slot of mine you haven't seen" would be
          unsound for a receiver that missed an append while down or
          partitioned. *)
  | MCommit of { inst : int }
  | MRevoke of { from : int; inst : int }
      (** simplified recovery: the designated revoker polls the cluster
          about a dead replica's slot *)
  | MRevStatus of { from : int; inst : int; value : Types.cmd option }
  | MSkipForce of { inst : int }
      (** revoker decision: the slot is a no-op *)
  | MCatchup of { from : int }
      (** a restarted replica asks a peer for its slot state *)
  | MState of {
      slots : (int * bool * Types.cmd option * bool) list;
          (** (instance, is_skip, value, committed) for every decided or
              known slot *)
    }
  | MAppendMulti of {
      from : int;
      items : (int * Types.cmd) list;
          (** one flushed batch of the sender's own turns — a single
            frame, CPU charge and ack instead of one each *)
    }
  | MAckMulti of { from : int; insts : int list }
  | MCommitMulti of { insts : int list }
  | Complete of { cmd_id : int; reply : Types.reply }

type server_probes = {
  pr_appends : Metrics.counter;  (** MAppend messages sent *)
  pr_acks : Metrics.counter;  (** MAck replies sent *)
  pr_skips_announced : Metrics.counter;  (** MSkip broadcasts *)
  pr_slots_skipped : Metrics.counter;  (** slots locally decided as Skip *)
  pr_commits : Metrics.counter;  (** slots past the commit frontier *)
  pr_revocations_started : Metrics.counter;
  pr_revocations_value : Metrics.counter;  (** resolved by re-proposal *)
  pr_revocations_skip : Metrics.counter;  (** resolved by force-skip *)
  pr_catchups : Metrics.counter;  (** MCatchup requests sent *)
  pr_retransmits : Metrics.counter;  (** own-append re-broadcasts *)
  pr_batch_cmds : Metrics.histogram;
      (** commands per flushed own-turn batch; batched path only *)
}

let make_probes m ~node =
  let c name = Metrics.counter m name ~node in
  {
    pr_appends = c "appends_sent";
    pr_acks = c "acks_sent";
    pr_skips_announced = c "skips_announced";
    pr_slots_skipped = c "slots_skipped";
    pr_commits = c "commits";
    pr_revocations_started = c "revocations_started";
    pr_revocations_value = c "revocations_value";
    pr_revocations_skip = c "revocations_skip";
    pr_catchups = c "catchups";
    pr_retransmits = c "retransmits";
    pr_batch_cmds = Metrics.histogram m "batch_flush_cmds" ~node;
  }

type server = {
  id : int;
  slots : slot Vec.t;
  committed : bool Vec.t;
  mutable next_own : int;
  mutable known_frontier : int;  (** all slots < this are Value or Skip *)
  mutable commit_frontier : int;  (** all slots < this are committed *)
  acks : (int, bool array) Hashtbl.t;  (** own instance -> acked peers *)
  revocations : (int, revocation) Hashtbl.t;
  promised : (int, unit) Hashtbl.t;
      (** slots whose revocation poll we answered: the poll is a Paxos
          phase 1, so afterwards the owner's own (ballot-0) append must
          be refused or the revocation's decision could lose the race *)
  store : (int, int) Hashtbl.t;
  key_writes : (int, int list ref) Hashtbl.t;
      (** slots known to carry a write of each key — what a commutative
          read must see applied before replying early *)
  mutable applied : int;  (** slots < this applied to [store] *)
  mutable waiting : (int * Types.cmd) list;  (** (slot, cmd) awaiting reply *)
  mutable recovering : bool;
  mutable buffered : Types.cmd list;  (** submissions queued during recovery *)
  (* command batching (batch_size > 1 only): own turns claimed but whose
     MAppend broadcast is held for the current batch *)
  mutable pending_batch : (int * Types.cmd) list;  (** reversed *)
  mutable pending_count : int;
  mutable flush_pending : bool;  (** a flush timer is armed *)
  mutable down : bool;
  cpu : Cpu.t;
  rng : Rng.t;
  pr : server_probes;
}

type t = {
  config : config;
  net : Net.t;
  engine : Engine.t;
  n : int;
  servers : server array;
  completions : (int, Types.reply -> unit) Hashtbl.t;
  mutable next_cmd_id : int;
  mutable cmd_id_stride : int;
  mutable wire : (src:int -> dst:int -> size:int -> msg -> unit) option;
      (** network-shell hook: when set, cross-replica messages are handed
          to the transport instead of the simulated {!Net} *)
  spans : Span.t;
}

(* Revocations are protocol-internal work with no client command, so they
   trace under a negative id derived from the slot: slot [i] revokes as
   trace [-(i + 1)]. *)
let revoke_trace inst = -(inst + 1)

let majority t = (t.n / 2) + 1
let p t = t.config.params

let msg_size t = function
  | MAppend { cmd; _ } -> (p t).msg_header_bytes + Types.op_size cmd.Types.op
  | MRevStatus { value; _ } ->
      (p t).msg_header_bytes
      + (match value with Some c -> Types.op_size c.Types.op | None -> 0)
  | MAck _ | MSkip _ | MCommit _ | MRevoke _ | MSkipForce _ | MCatchup _ ->
      (p t).msg_header_bytes
  | MState { slots } ->
      (p t).msg_header_bytes
      + List.fold_left
          (fun acc (_, _, cmd, _) ->
            acc
            + 8
            + match cmd with Some c -> Types.op_size c.Types.op | None -> 0)
          0 slots
  | MAppendMulti { items; _ } ->
      (p t).msg_header_bytes
      + List.fold_left
          (fun acc (_, c) -> acc + 8 + Types.op_size c.Types.op)
          0 items
  | MAckMulti { insts; _ } | MCommitMulti { insts } ->
      (p t).msg_header_bytes + (8 * List.length insts)
  | Complete _ -> (p t).reply_bytes

(* ---- slot bookkeeping ---- *)

let ensure srv inst =
  while Vec.length srv.slots <= inst do
    Vec.push srv.slots Unknown;
    Vec.push srv.committed false
  done

let slot srv inst =
  if inst < Vec.length srv.slots then Vec.get srv.slots inst else Unknown

let is_committed srv inst =
  inst < Vec.length srv.committed && Vec.get srv.committed inst

(* Record a slot's value, remembering write positions per key.  Only the
   Unknown -> Value transition calls this, so each write slot is recorded
   once. *)
let set_value srv inst (cmd : Types.cmd) =
  Vec.set srv.slots inst (Value cmd);
  match cmd.op with
  | Types.Put { key; _ } ->
      let cell =
        match Hashtbl.find_opt srv.key_writes key with
        | Some cell -> cell
        | None ->
            let cell = ref [] in
            Hashtbl.replace srv.key_writes key cell;
            cell
      in
      cell := inst :: !cell
  | Types.Get _ -> ()

(* A commutative read at [inst] may reply from the applied store only once
   every known earlier write of its key has been applied; otherwise it
   could return a value older than an already-acknowledged write (the
   fault-injection harness caught exactly this under churn). *)
let commutative_read_safe srv ~key ~inst =
  match Hashtbl.find_opt srv.key_writes key with
  | None -> true
  | Some slots ->
      (* A write below [applied] stays applied forever ([applied] is
         monotone), so prune such slots instead of re-scanning the key's
         full write history on every check: each write is dropped exactly
         once and the live list holds only unapplied writes. *)
      if List.exists (fun j -> j < srv.applied) !slots then
        slots := List.filter (fun j -> j >= srv.applied) !slots;
      List.for_all (fun j -> j >= inst) !slots

let owner t inst = inst mod t.n

let conflicting (cmd : Types.cmd) = Types.key_of cmd.op = hot_key

(* [rename] is the checker's symmetry renaming.  Note Mencius slot
   ownership is positional ([owner t inst = inst mod n]), so node ids are
   load-bearing in slot numbers themselves; symmetry scopes therefore
   never include Mencius, and the renaming here only keeps the interface
   uniform with the other protocols. *)
let render_msg ?(rename = Fun.id) = function
  | MAppend { from; inst; cmd } ->
      Printf.sprintf "MAppend(f%d i%d %s)" (rename from) inst
        (Types.render_cmd ~rename cmd)
  | MAck { from; inst } -> Printf.sprintf "MAck(f%d i%d)" (rename from) inst
  | MSkip { from; first; upto } ->
      Printf.sprintf "MSkip(f%d %d..%d)" (rename from) first upto
  | MCommit { inst } -> Printf.sprintf "MCommit(i%d)" inst
  | MRevoke { from; inst } ->
      Printf.sprintf "MRevoke(f%d i%d)" (rename from) inst
  | MRevStatus { from; inst; value } ->
      Printf.sprintf "MRevStatus(f%d i%d %s)" (rename from) inst
        (Types.render_cmd_opt ~rename value)
  | MSkipForce { inst } -> Printf.sprintf "MSkipForce(i%d)" inst
  | MCatchup { from } -> Printf.sprintf "MCatchup(f%d)" (rename from)
  | MState { slots } ->
      Printf.sprintf "MState([%s])"
        (String.concat ";"
           (List.map
              (fun (inst, is_skip, cmd, committed) ->
                Printf.sprintf "%d:%s%s%s" inst
                  (if is_skip then "S" else "")
                  (match cmd with
                  | Some c -> Types.render_cmd ~rename c
                  | None -> "")
                  (if committed then "!" else ""))
              (List.sort (fun (a, _, _, _) (b, _, _, _) -> Int.compare a b) slots)))
  | MAppendMulti { from; items } ->
      Printf.sprintf "MAppendMulti(f%d [%s])" (rename from)
        (String.concat ";"
           (List.map
              (fun (i, c) ->
                Printf.sprintf "%d:%s" i (Types.render_cmd ~rename c))
              items))
  | MAckMulti { from; insts } ->
      Printf.sprintf "MAckMulti(f%d [%s])" (rename from)
        (String.concat ";" (List.map string_of_int insts))
  | MCommitMulti { insts } ->
      Printf.sprintf "MCommitMulti([%s])"
        (String.concat ";" (List.map string_of_int insts))
  | Complete { cmd_id; reply } ->
      Printf.sprintf "Complete(c%d v%s)" cmd_id
        (match reply.Types.value with
        | None -> "-"
        | Some v -> string_of_int v)

(* ---- dispatch ---- *)

let rec send t ~src ~dst msg =
  match t.wire with
  | Some wire when src <> dst -> wire ~src ~dst ~size:(msg_size t msg) msg
  | _ ->
      Net.send t.net ~src ~dst ~size:(msg_size t msg)
        ~info:(fun rename -> render_msg ~rename msg)
        (fun () -> handle t t.servers.(dst) msg)

and broadcast t srv msg =
  Array.iter
    (fun peer -> if peer.id <> srv.id then send t ~src:srv.id ~dst:peer.id msg)
    t.servers

and complete_at_origin t srv (cmd : Types.cmd) reply =
  send t ~src:srv.id ~dst:cmd.Types.origin
    (Complete { cmd_id = cmd.Types.id; reply })

(* ---- frontiers, application, replies ---- *)

and advance_frontiers t srv =
  let len = Vec.length srv.slots in
  while
    srv.known_frontier < len && slot srv srv.known_frontier <> Unknown
  do
    srv.known_frontier <- srv.known_frontier + 1
  done;
  while
    srv.commit_frontier < len
    && is_committed srv srv.commit_frontier
    && slot srv srv.commit_frontier <> Unknown
  do
    Metrics.inc srv.pr.pr_commits;
    srv.commit_frontier <- srv.commit_frontier + 1
  done;
  (* Apply in slot order as the committed prefix grows. *)
  while srv.applied < srv.commit_frontier do
    (match slot srv srv.applied with
    | Value { op = Put { key; write_id; _ }; _ } ->
        Hashtbl.replace srv.store key write_id
    | Value { op = Get _; _ } | Skip | Unknown -> ());
    srv.applied <- srv.applied + 1
  done;
  try_reply t srv

and try_reply t srv =
  (* A waiting op whose slot no longer holds it was revoked into a skip:
     never acknowledge it — the client will retry as a fresh op. *)
  let still_ours (inst, (cmd : Types.cmd)) =
    match slot srv inst with
    | Value held -> held.Types.id = cmd.Types.id
    | Skip | Unknown -> false
  in
  let entry_ready (inst, (cmd : Types.cmd)) =
    if conflicting cmd then srv.commit_frontier > inst
    else
      is_committed srv inst
      && srv.known_frontier > inst
      &&
      match cmd.op with
      | Types.Get { key } -> commutative_read_safe srv ~key ~inst
      | Types.Put _ -> true
  in
  (* This runs after every message; most deliveries ready nothing, so
     check without allocating before rebuilding the waiting list. *)
  if
    srv.waiting <> []
    && List.exists
         (fun e -> (not (still_ours e)) || entry_ready e)
         srv.waiting
  then begin
    let ready, waiting =
      List.partition entry_ready (List.filter still_ours srv.waiting)
    in
    srv.waiting <- waiting;
    List.iter
      (fun (inst, (cmd : Types.cmd)) ->
        Span.mark t.spans ~trace:cmd.Types.id ~node:srv.id
          ~phase:"quorum_commit" ~now:(Engine.now t.engine);
        let value =
          match cmd.op with
          | Types.Get { key } ->
              (* Reads ordered at their slot: contended reads applied in
                 slot order see the applied store; commutative reads see
                 their key's applied state, untouched by concurrent
                 ops. *)
              ignore inst;
              Hashtbl.find_opt srv.store key
          | Types.Put _ -> None
        in
        complete_at_origin t srv cmd { Types.value })
      ready
  end

(* Mark [who]'s unused turns in [[start, upto)] as skips.  Skips by the
   slot owner are decided immediately (coordinated-Paxos): an owner only
   ever claims turns at or past its own monotone proposal frontier, so
   the claim cannot cover a slot it actually used. *)
and apply_skips t srv ~who ~start ~upto =
  ensure srv upto;
  let changed = ref false in
  let first_turn =
    (* smallest slot ≥ start owned by [who] *)
    let r = who mod t.n in
    let q = (max 0 (start - r) + t.n - 1) / t.n in
    (q * t.n) + r
  in
  let inst = ref first_turn in
  while !inst < upto do
    if slot srv !inst = Unknown then begin
      Vec.set srv.slots !inst Skip;
      Vec.set srv.committed !inst true;
      Metrics.inc srv.pr.pr_slots_skipped;
      changed := true
    end;
    inst := !inst + t.n
  done;
  !changed

(* The replica skips its own pending turns once it sees the instance space
   move past them, telling everyone. *)
and skip_own_turns t srv ~upto =
  if srv.next_own < upto then begin
    let first = srv.next_own in
    ignore (apply_skips t srv ~who:srv.id ~start:first ~upto);
    let first_own_after =
      let r = srv.id mod t.n in
      let q = (upto - r + t.n - 1) / t.n in
      (q * t.n) + r
    in
    srv.next_own <- max srv.next_own first_own_after;
    Metrics.inc srv.pr.pr_skips_announced;
    broadcast t srv (MSkip { from = srv.id; first; upto })
  end

(* ---- message handling ---- *)

and handle t srv msg =
  if not srv.down then
    match msg with
    | Complete { cmd_id; reply } -> (
        match Hashtbl.find_opt t.completions cmd_id with
        | Some k ->
            Hashtbl.remove t.completions cmd_id;
            Span.mark t.spans ~trace:cmd_id ~node:srv.id ~phase:"reply"
              ~now:(Engine.now t.engine);
            k reply
        | None -> ())
    | MAppend { from; inst; cmd } ->
        Cpu.exec srv.cpu ~cost_us:(p t).cpu_follower_op_us (fun () ->
            if not srv.down then begin
              ensure srv inst;
              let refused =
                from = owner t inst && Hashtbl.mem srv.promised inst
              in
              (match slot srv inst with
              | Unknown when not refused -> set_value srv inst cmd
              | _ -> ());
              skip_own_turns t srv ~upto:inst;
              (* Ack only if we actually hold this value: a promised or
                 force-skipped slot must not count toward the sender's
                 majority, or it could commit a value a revocation
                 concurrently decided to skip. *)
              (match slot srv inst with
              | Value held when held.Types.id = cmd.Types.id ->
                  Metrics.inc srv.pr.pr_acks;
                  send t ~src:srv.id ~dst:from (MAck { from = srv.id; inst })
              | _ -> ());
              advance_frontiers t srv
            end)
    | MAck { from; inst } -> (
        match Hashtbl.find_opt srv.acks inst with
        | None -> ()
        | Some acked ->
            acked.(from) <- true;
            let count =
              Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 acked
            in
            if count + 1 >= majority t && not (is_committed srv inst) then begin
              ensure srv inst;
              Vec.set srv.committed inst true;
              broadcast t srv (MCommit { inst });
              advance_frontiers t srv
            end)
    | MSkip { from; first; upto } ->
        if apply_skips t srv ~who:from ~start:first ~upto then
          advance_frontiers t srv
    | MCommit { inst } ->
        ensure srv inst;
        (* The commit flag may race ahead of the append carrying the value;
           the frontier waits for both. *)
        Vec.set srv.committed inst true;
        advance_frontiers t srv
    | MRevoke { from; inst } ->
        ensure srv inst;
        Hashtbl.replace srv.promised inst ();
        let value =
          match slot srv inst with Value cmd -> Some cmd | Unknown | Skip -> None
        in
        send t ~src:srv.id ~dst:from (MRevStatus { from = srv.id; inst; value })
    | MRevStatus { from; inst; value } -> (
        match Hashtbl.find_opt srv.revocations inst with
        | None -> ()
        | Some pending ->
            pending.seen.(from) <- true;
            (match (pending.found, value) with
            | None, Some _ -> pending.found <- value
            | _ -> ());
            let replies =
              Array.fold_left
                (fun acc b -> if b then acc + 1 else acc)
                0 pending.seen
            in
            if replies + 1 >= majority t then begin
              Hashtbl.remove srv.revocations inst;
              match pending.found with
              | Some cmd ->
                  (* Someone saw the owner's value: re-propose it under the
                     revoker's ownership so it can still commit. *)
                  Metrics.inc srv.pr.pr_revocations_value;
                  Span.mark t.spans ~trace:(revoke_trace inst) ~node:srv.id
                    ~phase:"revoke_value" ~now:(Engine.now t.engine);
                  ensure srv inst;
                  if slot srv inst = Unknown then set_value srv inst cmd;
                  Hashtbl.replace srv.acks inst (Array.make t.n false);
                  Metrics.add srv.pr.pr_appends (t.n - 1);
                  broadcast t srv (MAppend { from = srv.id; inst; cmd });
                  advance_frontiers t srv
              | None ->
                  (* Nobody in a majority saw it, and their [MRevoke]
                     promises block the owner from committing it later, so
                     the skip decision is final — it overrides any value
                     copy that straggles in. *)
                  Metrics.inc srv.pr.pr_revocations_skip;
                  Metrics.inc srv.pr.pr_slots_skipped;
                  Span.mark t.spans ~trace:(revoke_trace inst) ~node:srv.id
                    ~phase:"revoke_skip" ~now:(Engine.now t.engine);
                  Vec.set srv.slots inst Skip;
                  Vec.set srv.committed inst true;
                  broadcast t srv (MSkipForce { inst });
                  advance_frontiers t srv
            end)
    | MSkipForce { inst } ->
        ensure srv inst;
        (* The revocation's decision is final (see MRevStatus): even a
           slot we hold as Value becomes a skip — the promise quorum
           proves that value never reached a majority. *)
        Vec.set srv.slots inst Skip;
        Vec.set srv.committed inst true;
        advance_frontiers t srv
    | MCatchup { from } ->
        let slots = ref [] in
        Vec.iteri
          (fun inst s ->
            match s with
            | Unknown -> ()
            | Skip -> slots := (inst, true, None, is_committed srv inst) :: !slots
            | Value cmd ->
                slots := (inst, false, Some cmd, is_committed srv inst) :: !slots)
          srv.slots;
        send t ~src:srv.id ~dst:from (MState { slots = !slots })
    | MState { slots } ->
        List.iter
          (fun (inst, is_skip, cmd, committed) ->
            ensure srv inst;
            (match (slot srv inst, is_skip, cmd) with
            | Unknown, true, _ -> Vec.set srv.slots inst Skip
            | Unknown, false, Some cmd -> set_value srv inst cmd
            (* A committed snapshot slot overrides a local undecided one:
               we missed the deciding broadcast (force-skip or append). *)
            | Value _, true, _ when committed && not (is_committed srv inst)
              ->
                Vec.set srv.slots inst Skip
            | Skip, false, Some cmd when committed && not (is_committed srv inst)
              ->
                set_value srv inst cmd
            | _ -> ());
            if committed then Vec.set srv.committed inst true)
          slots;
        (* Our own unused turns inside the transferred region are dead:
           skip them and restart proposing after the region. *)
        while
          srv.next_own < Vec.length srv.slots
          && slot srv srv.next_own <> Unknown
        do
          srv.next_own <- srv.next_own + t.n
        done;
        advance_frontiers t srv;
        if srv.recovering then begin
          srv.recovering <- false;
          let queued = List.rev srv.buffered in
          srv.buffered <- [];
          List.iter (fun cmd -> start_own_slot t srv cmd) queued
        end
    | MAppendMulti { from; items } ->
        (* One CPU charge, one own-turn skip walk and one ack for the
           whole batch; bounded by the sender's batch_size. *)
        let k = (List.length items [@perf.allow "length-in-hot-path"]) in
        Cpu.exec srv.cpu ~cost_us:(max 1 (k * (p t).cpu_follower_op_us))
          (fun () ->
            if not srv.down then begin
              let held = ref [] in
              let max_inst = ref (-1) in
              List.iter
                (fun (inst, (cmd : Types.cmd)) ->
                  ensure srv inst;
                  if inst > !max_inst then max_inst := inst;
                  let refused =
                    from = owner t inst && Hashtbl.mem srv.promised inst
                  in
                  (match slot srv inst with
                  | Unknown when not refused -> set_value srv inst cmd
                  | _ -> ());
                  match slot srv inst with
                  | Value held_cmd when held_cmd.Types.id = cmd.Types.id ->
                      held := inst :: !held
                  | _ -> ())
                items;
              if !max_inst >= 0 then skip_own_turns t srv ~upto:!max_inst;
              if !held <> [] then begin
                Metrics.inc srv.pr.pr_acks;
                send t ~src:srv.id ~dst:from
                  (MAckMulti { from = srv.id; insts = List.rev !held })
              end;
              advance_frontiers t srv
            end)
    | MAckMulti { from; insts } ->
        let newly = ref [] in
        List.iter
          (fun inst ->
            match Hashtbl.find_opt srv.acks inst with
            | None -> ()
            | Some acked ->
                acked.(from) <- true;
                let count =
                  Array.fold_left
                    (fun acc b -> if b then acc + 1 else acc)
                    0 acked
                in
                if count + 1 >= majority t && not (is_committed srv inst)
                then begin
                  ensure srv inst;
                  Vec.set srv.committed inst true;
                  newly := inst :: !newly
                end)
          insts;
        if !newly <> [] then begin
          (* One commit broadcast and one frontier walk per acked batch. *)
          broadcast t srv (MCommitMulti { insts = List.rev !newly });
          advance_frontiers t srv
        end
    | MCommitMulti { insts } ->
        List.iter
          (fun inst ->
            ensure srv inst;
            Vec.set srv.committed inst true)
          insts;
        advance_frontiers t srv

(* Frontier watchdog: if the committed prefix stalls on a dead replica's
   slot, the lowest live replica revokes it with no-ops. *)
and watchdog t srv =
  if not srv.down then begin
    let stuck = srv.commit_frontier in
    Engine.schedule t.engine ~node:srv.id ~label:"watchdog"
      ~delay:t.config.revoke_timeout_us (fun () ->
        if
          (not srv.down)
          && srv.commit_frontier = stuck
          && stuck < Vec.length srv.slots
        then begin
          (* A stall usually means we missed a broadcast (append, skip or
             commit) while down or cut off: ask the peers first. *)
          Metrics.inc srv.pr.pr_catchups;
          broadcast t srv (MCatchup { from = srv.id });
          (match slot srv stuck with
          | Value cmd when owner t stuck = srv.id && not (is_committed srv stuck)
            ->
              (* Our own append lost its acks in transit: retransmit.
                 [MAck] replies dedupe through the per-sender flag array. *)
              if not (Hashtbl.mem srv.acks stuck) then
                Hashtbl.replace srv.acks stuck (Array.make t.n false);
              Metrics.inc srv.pr.pr_retransmits;
              Metrics.add srv.pr.pr_appends (t.n - 1);
              broadcast t srv (MAppend { from = srv.id; inst = stuck; cmd })
          | _ -> ());
          if owner t stuck <> srv.id && srv.id = lowest_live t then begin
            (* Poll the cluster about the blocking slot before deciding. *)
            if not (Hashtbl.mem srv.revocations stuck) then begin
              Metrics.inc srv.pr.pr_revocations_started;
              Span.mark t.spans ~trace:(revoke_trace stuck) ~node:srv.id
                ~phase:"revoke_start" ~now:(Engine.now t.engine);
              Hashtbl.replace srv.revocations stuck
                {
                  seen = Array.make t.n false;
                  found =
                    (match slot srv stuck with Value c -> Some c | _ -> None);
                }
            end;
            (* Re-broadcast even when a poll is already pending: the earlier
               round's messages may have been dropped, and [seen] dedupes
               the replies. *)
            broadcast t srv (MRevoke { from = srv.id; inst = stuck })
          end
        end;
        watchdog t srv)
  end
  else
    Engine.schedule t.engine ~node:srv.id ~label:"watchdog"
      ~delay:t.config.revoke_timeout_us (fun () -> watchdog t srv)

and lowest_live t =
  let rec find i = if i >= t.n || not t.servers.(i).down then i else find (i + 1) in
  find 0

(* Claim the next free own turn for [cmd] and set up its local state —
   everything but the broadcast, which batching may hold back. *)
and claim_own_slot t srv (cmd : Types.cmd) =
  (* Our turn may have been revoked (force-skipped) while we sat on it;
     proposing into a decided slot would overwrite the decision.  Advance
     to the first turn nobody has touched. *)
  if not t.config.bug_slot_reuse then
    while
      srv.next_own < Vec.length srv.slots
      && (slot srv srv.next_own <> Unknown || is_committed srv srv.next_own)
    do
      srv.next_own <- srv.next_own + t.n
    done;
  let inst = srv.next_own in
  srv.next_own <- inst + t.n;
  ensure srv inst;
  set_value srv inst cmd;
  Hashtbl.replace srv.acks inst (Array.make t.n false);
  srv.waiting <- (inst, cmd) :: srv.waiting;
  Span.mark t.spans ~trace:cmd.Types.id ~node:srv.id ~phase:"append"
    ~now:(Engine.now t.engine);
  inst

and start_own_slot t srv (cmd : Types.cmd) =
  let inst = claim_own_slot t srv cmd in
  Metrics.add srv.pr.pr_appends (t.n - 1);
  broadcast t srv (MAppend { from = srv.id; inst; cmd });
  if t.n = 1 then Vec.set srv.committed inst true;
  advance_frontiers t srv

(* Release the accumulated batch: one MAppendMulti broadcast carries
   every held (turn, command) pair. *)
and flush_appends t srv =
  let items = List.rev srv.pending_batch in
  Metrics.observe srv.pr.pr_batch_cmds srv.pending_count;
  srv.pending_batch <- [];
  srv.pending_count <- 0;
  Metrics.add srv.pr.pr_appends (t.n - 1);
  broadcast t srv (MAppendMulti { from = srv.id; items });
  if t.n = 1 then
    List.iter (fun (inst, _) -> Vec.set srv.committed inst true) items;
  advance_frontiers t srv

(* ---- construction and client interface ---- *)

let create ?(telemetry = Telemetry.disabled) config net =
  let engine = Net.engine net in
  let n = Net.size net in
  let servers =
    Array.init n (fun id ->
        let cpu = Cpu.create engine in
        Cpu.set_metrics cpu telemetry.Telemetry.metrics ~node:id;
        {
          id;
          slots = Vec.create ();
          committed = Vec.create ();
          next_own = id;
          known_frontier = 0;
          commit_frontier = 0;
          acks = Hashtbl.create 1024;
          revocations = Hashtbl.create 8;
          promised = Hashtbl.create 8;
          store = Hashtbl.create 1024;
          key_writes = Hashtbl.create 1024;
          applied = 0;
          waiting = [];
          recovering = false;
          buffered = [];
          pending_batch = [];
          pending_count = 0;
          flush_pending = false;
          down = false;
          cpu;
          rng = Rng.split (Engine.rng engine);
          pr = make_probes telemetry.Telemetry.metrics ~node:id;
        })
  in
  {
    config;
    net;
    engine;
    n;
    servers;
    completions = Hashtbl.create 4096;
    next_cmd_id = 0;
    cmd_id_stride = 1;
    wire = None;
    spans = telemetry.Telemetry.spans;
  }

let start t = Array.iter (fun srv -> watchdog t srv) t.servers

let submit_cmd t srv (cmd : Types.cmd) =
  Cpu.exec srv.cpu ~cost_us:(p t).cpu_leader_op_us (fun () ->
      if not srv.down then
        if srv.recovering then srv.buffered <- cmd :: srv.buffered
        else if (p t).batch_size <= 1 then start_own_slot t srv cmd
        else begin
          (* Batched: the turn is claimed now; only its broadcast is held
             back until the batch flushes. *)
          let inst = claim_own_slot t srv cmd in
          srv.pending_batch <- (inst, cmd) :: srv.pending_batch;
          srv.pending_count <- srv.pending_count + 1;
          if srv.pending_count >= (p t).batch_size then flush_appends t srv
          else if not srv.flush_pending then begin
            srv.flush_pending <- true;
            Engine.schedule t.engine ~node:srv.id ~label:"flush"
              ~delay:(max 1 (p t).batch_delay_us) (fun () ->
                srv.flush_pending <- false;
                if
                  (not srv.down) && (not srv.recovering)
                  && srv.pending_count > 0
                then flush_appends t srv)
          end
        end)

let submit_id t ~node op k =
  let id = t.next_cmd_id in
  t.next_cmd_id <- id + t.cmd_id_stride;
  Hashtbl.replace t.completions id k;
  let cmd =
    { Types.id; op; origin = node; submitted_us = Engine.now t.engine }
  in
  Span.mark t.spans ~trace:id ~node ~phase:"submit" ~now:(Engine.now t.engine);
  Net.send t.net ~src:node ~dst:node
    ~size:((p t).msg_header_bytes + Types.op_size op)
    ~info:(fun rename -> "Submit(" ^ Types.render_cmd ~rename cmd ^ ")")
    (fun () ->
      Span.mark t.spans ~trace:id ~node ~phase:"client_hop"
        ~now:(Engine.now t.engine);
      submit_cmd t t.servers.(node) cmd);
  id

let submit t ~node op k = ignore (submit_id t ~node op k)

(* ---- network-shell hooks ---- *)

let set_wire t f = t.wire <- f
let deliver t ~node msg = handle t t.servers.(node) msg

let set_cmd_ids t ~base ~stride =
  t.next_cmd_id <- base;
  t.cmd_id_stride <- stride

let commit_frontier t ~node = t.servers.(node).commit_frontier

let committed_ops t ~node =
  let srv = t.servers.(node) in
  List.filter_map
    (fun i ->
      match slot srv i with
      | Value cmd -> Some cmd.Types.op
      | Skip | Unknown -> None)
    (List.init srv.commit_frontier Fun.id)
let known_frontier t ~node = t.servers.(node).known_frontier
let applied_value t ~node ~key = Hashtbl.find_opt t.servers.(node).store key
let slot_count t ~node = Vec.length t.servers.(node).slots

let skipped_count t ~node =
  let srv = t.servers.(node) in
  let c = ref 0 in
  Vec.iteri (fun _ s -> if s = Skip then incr c) srv.slots;
  !c

let dump_slots t ~node =
  let srv = t.servers.(node) in
  let buf = Buffer.create 256 in
  Vec.iteri
    (fun i s ->
      if i > 0 then Buffer.add_char buf ' ';
      Buffer.add_string buf (string_of_int i);
      Buffer.add_char buf ':';
      (match s with
      | Value { op = Types.Put { write_id; _ }; _ } ->
          Buffer.add_string buf (Printf.sprintf "V(w%d)" write_id)
      | Value { op = Types.Get _; _ } -> Buffer.add_string buf "G"
      | Skip -> Buffer.add_string buf "S"
      | Unknown -> Buffer.add_string buf "U");
      if not (is_committed srv i) then Buffer.add_char buf '!')
    srv.slots;
  Buffer.contents buf

(* ---- model-checker inspection hooks ---- *)

let dump_state ?(rename = Fun.id) t ~node =
  let srv = t.servers.(node) in
  let permuted a =
    let b = Array.copy a in
    Array.iteri (fun i v -> b.(rename i) <- v) a;
    b
  in
  let buf = Buffer.create 256 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "no%d kf%d cf%d ap%d %s%s|" srv.next_own srv.known_frontier
    srv.commit_frontier srv.applied
    (if srv.down then "D" else "U")
    (if srv.recovering then "R" else "");
  add "%s" (dump_slots t ~node);
  let tbl name tbl render =
    let items = Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [] in
    add "|%s:%s" name
      (String.concat ";"
         (List.map render
            (List.sort (fun (a, _) (b, _) -> Int.compare a b) items)))
  in
  let mask a =
    String.concat "" (Array.to_list (Array.map (fun b -> if b then "1" else "0") a))
  in
  tbl "ak" srv.acks (fun (i, a) ->
      Printf.sprintf "%d=%s" i (mask (permuted a)));
  tbl "rv" srv.revocations (fun (i, r) ->
      Printf.sprintf "%d=%s/%s" i
        (mask (permuted r.seen))
        (Types.render_cmd_opt ~rename r.found));
  tbl "pm" srv.promised (fun (i, ()) -> string_of_int i);
  tbl "st" srv.store (fun (k, v) -> Printf.sprintf "%d=%d" k v);
  tbl "kw" srv.key_writes (fun (k, cell) ->
      Printf.sprintf "%d=[%s]" k
        (String.concat ","
           (List.map string_of_int (List.sort Int.compare !cell))));
  add "|wt:%s"
    (String.concat ";"
       (List.sort String.compare
          (List.map
             (fun (i, c) ->
               Printf.sprintf "%d:%s" i (Types.render_cmd ~rename c))
             srv.waiting)));
  add "|bf:%s"
    (String.concat ","
       (List.map (fun (c : Types.cmd) -> string_of_int c.id) srv.buffered));
  (* Batched runs only: the held batch is real protocol state the checker
     must distinguish.  Unbatched fingerprints stay byte-identical. *)
  if (p t).batch_size > 1 then
    add "|pb:%s"
      (String.concat ";"
         (List.rev_map
            (fun (i, (c : Types.cmd)) -> Printf.sprintf "%d:c%d" i c.id)
            srv.pending_batch));
  Buffer.contents buf

(* Frontiers, the applied prefix, the own-turn cursor and the number of
   committed slots only ever grow. *)
let mono_view t ~node =
  let srv = t.servers.(node) in
  let committed_count = ref 0 in
  Vec.iteri (fun _ b -> if b then incr committed_count) srv.committed;
  [|
    srv.known_frontier;
    srv.commit_frontier;
    srv.applied;
    srv.next_own;
    !committed_count;
  |]

let invariant_violation t =
  let violation = ref None in
  let fail fmt =
    Printf.ksprintf (fun s -> if !violation = None then violation := Some s) fmt
  in
  (* Committed-slot agreement (covers skip-soundness): once two replicas
     have a slot committed and decided, they must agree on Skip vs Value
     and on the value's identity.  A slot can be committed while still
     Unknown locally (the commit flag races ahead of the value), which is
     not a disagreement. *)
  Array.iter
    (fun a ->
      Array.iter
        (fun b ->
          if a.id < b.id then
            let upto = min (Vec.length a.slots) (Vec.length b.slots) - 1 in
            for i = 0 to upto do
              if is_committed a i && is_committed b i then
                match (slot a i, slot b i) with
                | Value ca, Value cb when ca.Types.id <> cb.Types.id ->
                    fail "slot-agreement: nodes %d,%d slot %d: %s vs %s" a.id
                      b.id i (Types.render_cmd ca) (Types.render_cmd cb)
                | Value c, Skip | Skip, Value c ->
                    fail
                      "skip-soundness: nodes %d,%d slot %d committed as both \
                       %s and Skip"
                      a.id b.id i (Types.render_cmd c)
                | _ -> ()
            done)
        t.servers)
    t.servers;
  (* No command may occupy two different committed slots anywhere. *)
  let placed = Hashtbl.create 64 in
  Array.iter
    (fun s ->
      Vec.iteri
        (fun i sl ->
          match sl with
          | Value cmd when is_committed s i -> (
              match Hashtbl.find_opt placed cmd.Types.id with
              | Some j when j <> i ->
                  fail "dup-command: %s committed at slots %d and %d"
                    (Types.render_cmd cmd) j i
              | _ -> Hashtbl.replace placed cmd.Types.id i)
          | _ -> ())
        s.slots)
    t.servers;
  !violation

let crash t ~node =
  t.servers.(node).down <- true;
  Net.set_node_down t.net node true

let restart t ~node =
  let srv = t.servers.(node) in
  srv.down <- false;
  Net.set_node_down t.net node false;
  (* A batch held across the crash is dropped: its claimed turns stay
     locally Value-and-uncommitted, and the frontier watchdog's own-append
     retransmission (or a peer's revocation) decides them. *)
  srv.pending_batch <- [];
  srv.pending_count <- 0;
  (* Re-learn decided slots (and our dead turns) from the peers before
     proposing again. *)
  srv.recovering <- true;
  broadcast t srv (MCatchup { from = node })
