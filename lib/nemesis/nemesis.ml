module Sim = Raftpax_sim
module Engine = Sim.Engine
module Net = Sim.Net
module Rng = Sim.Rng
module Topology = Sim.Topology
module Types = Raftpax_consensus.Types
module Lin_check = Raftpax_kvstore.Lin_check
module Telemetry = Raftpax_telemetry.Telemetry

type config = {
  protocol : Cluster.protocol;
  seed : int;
  chaos_steps : int;
  clients : int;
  read_pct : int;
  hot_pct : int;
  capture_messages : bool;
  debug_invariants : bool;
  actions : Schedule.action list;
  batch_size : int;
  batch_delay_us : int;
}

let config ?(chaos_steps = 30) ?(clients = 4) ?(read_pct = 50) ?(hot_pct = 30)
    ?(capture_messages = true) ?(debug_invariants = true)
    ?(actions = Schedule.default) ?(batch_size = 1) ?(batch_delay_us = 0)
    protocol ~seed =
  {
    protocol;
    seed;
    chaos_steps;
    clients;
    read_pct;
    hot_pct;
    capture_messages;
    debug_invariants;
    actions;
    batch_size;
    batch_delay_us;
  }

type report = {
  cfg : config;
  ok : bool;
  failures : string list;
  trace : Trace.t;
  ops_completed : int;
  reads_checked : int;
  violations : Lin_check.violation list;
  faults_injected : int;
  liveness_ok : bool;
  prefixes_agree : bool;
  lost_writes : int;
  telemetry : Telemetry.t;
}

(* The shared contended key is Mencius' hot key, so the run exercises its
   conflicting path; each client additionally owns a private key, which
   respects the commutativity contract (concurrent writes to a private
   key only arise from that client's own abandoned attempts). *)
let hot_key = Raftpax_consensus.Mencius.hot_key
let private_key client = 10 + client
let probe_key = 999

let step_interval_us = 1_000_000
let retry_timeout_us = 8_000_000
let settle_us = 25_000_000
let probe_window_us = 20_000_000
let poll_interval_us = 500_000

let pp_op ppf (op : Types.op) =
  match op with
  | Types.Put { key; write_id; _ } -> Fmt.pf ppf "put k=%d id=%d" key write_id
  | Types.Get { key } -> Fmt.pf ppf "get k=%d" key

let is_prefix ~of_:longer shorter =
  let rec go a b =
    match (a, b) with
    | [], _ -> true
    | _, [] -> false
    | x :: a, y :: b -> x = y && go a b
  in
  go shorter longer

let run cfg =
  let engine = Engine.create ~seed:(Int64.of_int cfg.seed) () in
  let nodes = List.mapi (fun i site -> { Net.id = i; site }) Topology.sites in
  let net = Net.create engine ~nodes in
  let telemetry =
    Telemetry.create ~tracing:true ~n:(List.length nodes) ()
  in
  Net.set_metrics net telemetry.Telemetry.metrics;
  let cluster =
    Cluster.make ~telemetry ~batch_size:cfg.batch_size
      ~batch_delay_us:cfg.batch_delay_us cfg.protocol net
  in
  let n = cluster.Cluster.n in
  let trace = Trace.create () in
  if cfg.capture_messages then
    Net.set_monitor net
      (Some
         (fun ~now ~src ~dst ~size ~dropped ->
           Trace.record trace ~now
             (Printf.sprintf "MSG %d->%d size=%d%s" src dst size
                (if dropped then " dropped" else ""))));
  let nemesis_rng = Rng.create (Int64.of_int ((cfg.seed * 1_000_003) + 17)) in
  let workload_rng = Rng.create (Int64.of_int ((cfg.seed * 7919) + 1)) in
  let ctx = Schedule.make_ctx engine net cluster ~rng:nemesis_rng ~trace in
  let chaos_end = cfg.chaos_steps * step_interval_us in
  let probe_start = chaos_end + settle_us in
  let final_end = probe_start + probe_window_us in

  (* ---- closed-loop clients ---- *)
  let events = ref [] in
  let ops_completed = ref 0 in
  let next_write_id = ref 0 in
  let fresh_write_id () =
    incr next_write_id;
    !next_write_id
  in
  let rec client_loop client rng () =
    if Engine.now engine < chaos_end then begin
      let key =
        if Rng.int rng 100 < cfg.hot_pct then hot_key else private_key client
      in
      let op =
        if Rng.int rng 100 < cfg.read_pct then Types.Get { key }
        else Types.Put { key; size = 8; write_id = fresh_write_id () }
      in
      attempt client rng op
    end
  and attempt client rng op =
    (* A retried write is a fresh write (new id): the abandoned attempt
       may still commit, but unacknowledged writes impose no constraint
       on the linearizability oracle. *)
    let node = Rng.int rng n in
    let started = Engine.now engine in
    let finished = ref false in
    Trace.record trace ~now:started
      (Fmt.str "OP submit client=%d node=%d %a" client node pp_op op);
    let timeout =
      Engine.schedule_cancellable ~kind:Engine.Exact engine
        ~delay:retry_timeout_us (fun () ->
          if not !finished then begin
            finished := true;
            if Engine.now engine < chaos_end then
              let op =
                match op with
                | Types.Get _ -> op
                | Types.Put { key; size; _ } ->
                    Types.Put { key; size; write_id = fresh_write_id () }
              in
              attempt client rng op
          end)
    in
    cluster.Cluster.submit ~node op (fun reply ->
        if not !finished then begin
          finished := true;
          Engine.cancel timeout;
          let now = Engine.now engine in
          incr ops_completed;
          (match op with
          | Types.Get { key } ->
              events :=
                Lin_check.Read { key; started_us = started; returned = reply.Types.value }
                :: !events;
              Trace.record trace ~now
                (Fmt.str "OP done client=%d %a -> %a" client pp_op op
                   Fmt.(option ~none:(any "none") int)
                   reply.Types.value)
          | Types.Put { key; write_id; _ } ->
              events :=
                Lin_check.Write_complete { write_id; key; at_us = now } :: !events;
              Trace.record trace ~now
                (Fmt.str "OP done client=%d %a" client pp_op op));
          client_loop client rng ()
        end)
  in
  for client = 0 to cfg.clients - 1 do
    let rng = Rng.split workload_rng in
    let jitter = Rng.int workload_rng 100_000 in
    Engine.schedule ~kind:Engine.Exact engine ~delay:jitter
      (client_loop client rng)
  done;

  (* ---- chaos steps, one per simulated second ---- *)
  for k = 1 to cfg.chaos_steps do
    Engine.schedule ~kind:Engine.Exact engine ~delay:(k * step_interval_us)
      (fun () -> Schedule.step ctx cfg.actions)
  done;

  (* ---- state-transition probe: poll digests, trace changes.  When
     [debug_invariants] is on (the default) the same poll also runs the
     runtime's cluster-wide invariant library as a continuous sanitizer:
     every chaos seed doubles as an invariant-checking run. *)
  let last_digest = Array.make n "" in
  let invariant_failures = ref [] in
  let rec poll () =
    let now = Engine.now engine in
    for node = 0 to n - 1 do
      let d = cluster.Cluster.digest ~node in
      if d <> last_digest.(node) then begin
        last_digest.(node) <- d;
        Trace.record trace ~now (Printf.sprintf "STATE node=%d %s" node d)
      end
    done;
    (if cfg.debug_invariants then
       match cluster.Cluster.invariant () with
       | None -> ()
       | Some v ->
           if not (List.mem v !invariant_failures) then begin
             invariant_failures := v :: !invariant_failures;
             Trace.record trace ~now (Printf.sprintf "INVARIANT %s" v)
           end);
    if now < final_end then
      Engine.schedule ~kind:Engine.Exact engine ~delay:poll_interval_us poll
  in
  poll ();

  Engine.run engine ~until:chaos_end;
  Schedule.heal ctx;
  Engine.run engine ~until:probe_start;

  (* ---- liveness probe: a fresh write must commit on the healed
     cluster; like a real client it retries, because a single submission
     can die with a stale leader. *)
  let liveness_ok = ref false in
  let attempts = ref 0 in
  let rec probe () =
    if (not !liveness_ok) && !attempts < 6 then begin
      incr attempts;
      let node =
        match cluster.Cluster.leader_hint () with
        | Some l -> l
        | None -> Rng.int nemesis_rng n
      in
      let op =
        Types.Put { key = probe_key; size = 8; write_id = fresh_write_id () }
      in
      Trace.record trace ~now:(Engine.now engine)
        (Fmt.str "PROBE node=%d %a" node pp_op op);
      cluster.Cluster.submit ~node op (fun _ ->
          if not !liveness_ok then begin
            liveness_ok := true;
            Trace.record trace ~now:(Engine.now engine) "PROBE ok"
          end);
      Engine.schedule ~kind:Engine.Exact engine ~delay:3_000_000 probe
    end
  in
  probe ();
  Engine.run engine ~until:final_end;

  (* ---- safety oracles ---- *)
  let orders = List.init n (fun node -> cluster.Cluster.committed_ops ~node) in
  let longest =
    List.fold_left
      (fun best o -> if List.length o > List.length best then o else best)
      [] orders
  in
  let prefixes_agree = List.for_all (is_prefix ~of_:longest) orders in
  let divergence_detail () =
    String.concat "; "
      (List.concat
         (List.mapi
            (fun node o ->
              if is_prefix ~of_:longest o then []
              else
                let rec first_diff i a b =
                  match (a, b) with
                  | x :: a, y :: b when x = y -> first_diff (i + 1) a b
                  | x :: _, y :: _ ->
                      Fmt.str "node %d pos %d: %a vs %a" node i pp_op x pp_op y
                  | _ :: _, [] ->
                      Fmt.str "node %d pos %d: op past longest order" node i
                  | [], _ -> Fmt.str "node %d: ?" node
                in
                [ first_diff 0 o longest ])
            orders))
  in
  let acked_writes =
    List.filter_map
      (function
        | Lin_check.Write_complete { write_id; _ } -> Some write_id
        | Lin_check.Read _ -> None)
      !events
  in
  let committed_ids =
    List.filter_map
      (function
        | Types.Put { write_id; _ } -> Some write_id | Types.Get _ -> None)
      longest
  in
  let lost_writes =
    List.length (List.filter (fun id -> not (List.mem id committed_ids)) acked_writes)
  in
  let lin = Lin_check.check ~committed_order:longest (List.rev !events) in
  let failures =
    List.concat
      [
        (if !liveness_ok then [] else [ "liveness: post-heal write never committed" ]);
        (if prefixes_agree then []
         else
           [
             "safety: committed prefixes diverge across replicas ("
             ^ divergence_detail () ^ ")";
           ]);
        (if lost_writes = 0 then []
         else [ Printf.sprintf "safety: %d acknowledged writes lost" lost_writes ]);
        List.rev_map
          (fun v -> Printf.sprintf "invariant: %s" v)
          !invariant_failures;
        List.map
          (fun v -> Fmt.str "linearizability: %a" Lin_check.pp_violation v)
          lin.Lin_check.violations;
      ]
  in
  if failures <> [] then
    for node = 0 to n - 1 do
      Trace.record trace ~now:(Engine.now engine)
        (Printf.sprintf "DUMP node=%d %s" node (cluster.Cluster.dump ~node))
    done;
  (* Metric snapshot lines close the trace: they are a pure function of
     the seeded run, so they are covered by the fingerprint determinism
     oracle like every other event. *)
  let snapshot_lines =
    Fmt.str "%a" Telemetry.pp_snapshot (Telemetry.snapshot telemetry)
    |> String.split_on_char '\n'
    |> List.filter (fun l -> String.trim l <> "")
  in
  List.iter
    (fun line ->
      Trace.record trace ~now:(Engine.now engine) ("METRIC " ^ line))
    snapshot_lines;
  {
    cfg;
    ok = failures = [];
    failures;
    trace;
    ops_completed = !ops_completed;
    reads_checked = lin.Lin_check.reads_checked;
    violations = lin.Lin_check.violations;
    faults_injected = ctx.Schedule.faults;
    liveness_ok = !liveness_ok;
    prefixes_agree;
    lost_writes;
    telemetry;
  }

let pp_report ppf r =
  Fmt.pf ppf "%-13s seed=%-6d %s: %d ops, %d reads checked, %d faults"
    (Cluster.protocol_name r.cfg.protocol)
    r.cfg.seed
    (if r.ok then "ok" else "FAIL")
    r.ops_completed r.reads_checked r.faults_injected;
  if not r.ok then begin
    Fmt.pf ppf "@.";
    List.iter (fun f -> Fmt.pf ppf "  %s@." f) r.failures;
    Fmt.pf ppf "--- telemetry snapshot of the failing seed ---@.";
    Fmt.pf ppf "%a@." Telemetry.pp_snapshot (Telemetry.snapshot r.telemetry);
    Fmt.pf ppf "--- trace tail (replay: same protocol + seed) ---@.";
    Trace.pp ~limit:60 ppf r.trace
  end
