(** Structured event trace of a nemesis run.

    Every fault injected, message sent, client operation and observed
    state transition is appended as one timestamped line.  Because the
    simulator is deterministic, the full trace is a pure function of
    [(protocol, workload, seed)]: re-running the same configuration must
    reproduce it byte-identically, which is what {!fingerprint} checks and
    what makes a dumped trace replayable for debugging. *)

type t

val create : unit -> t

val record : t -> now:int -> string -> unit
(** Append one event at simulated time [now] (µs). *)

val length : t -> int

val to_list : t -> string list
(** All events, in chronological (append) order. *)

val fingerprint : t -> string
(** Hex digest of the whole trace — equal iff the traces are
    byte-identical. *)

val pp : ?limit:int -> Format.formatter -> t -> unit
(** Print the trace; with [limit], only the last [limit] events (the
    window that usually explains a failure), preceded by an elision
    marker. *)
