(** Composable nemesis schedules.

    A schedule is a weighted bag of fault {!action}s.  Each chaos step the
    nemesis draws one ready action from the bag (seeded RNG) and fires it;
    actions that open a fault window (partitions, message chaos, clock
    skew) schedule their own healing, and {!heal} closes everything at the
    end of the chaos phase so the final convergence checks run on a clean
    cluster.

    Invariants the primitives maintain: at most a minority of replicas is
    crashed at once, and at most one partition / chaos window / skew
    window is open at a time — so every schedule keeps eventual liveness
    reachable once healed. *)

type ctx = {
  engine : Raftpax_sim.Engine.t;
  net : Raftpax_sim.Net.t;
  cluster : Cluster.t;
  rng : Raftpax_sim.Rng.t;  (** the nemesis' own seeded stream *)
  trace : Trace.t;
  down : bool array;
  mutable partition_active : bool;
  mutable chaos_active : bool;
  mutable skew_active : bool;
  mutable faults : int;  (** faults injected so far *)
  mutable partition_gen : int;
      (** per-run heal-window generation counters; see the implementation *)
  mutable chaos_gen : int;
  mutable skew_gen : int;
}

val make_ctx :
  Raftpax_sim.Engine.t ->
  Raftpax_sim.Net.t ->
  Cluster.t ->
  rng:Raftpax_sim.Rng.t ->
  trace:Trace.t ->
  ctx

type action = {
  name : string;
  weight : int;
  ready : ctx -> bool;
  fire : ctx -> unit;
}

val crash_random : action
(** Crash-stop a random up replica (durable state retained). *)

val restart_random : action
(** Restart a random crashed replica. *)

val crash_leader : action
(** Crash whichever replica the protocol currently calls leader. *)

val partition_symmetric : action
(** Cut a random minority side off in both directions for 2–6 s. *)

val partition_asymmetric : action
(** Cut one replica's outbound links only (it still hears the cluster)
    for 2–6 s. *)

val message_chaos : action
(** Open a 2–6 s window of random per-message extra delay, duplication,
    drops, and (half the time) FIFO-violating reordering. *)

val clock_skew : action
(** Warp every protocol timer by a random per-timer factor in
    [0.7×, 1.6×) for 2–6 s (network and harness time stay exact). *)

val default : action list
(** All of the above — the full adversary. *)

val crashes_only : action list
(** Crash/restart churn without network faults. *)

val step : ctx -> action list -> unit
(** Draw one ready action by weight and fire it (no-op if none ready). *)

val heal : ctx -> unit
(** Close every open fault window and restart every crashed replica. *)
