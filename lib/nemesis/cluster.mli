(** Protocol-generic cluster driver.

    Every runtime protocol is reduced to the operations a nemesis needs:
    submit a client op, crash/restart a replica, name the best submission
    target, expose the committed operation order (the universal safety
    oracle input) and a compact per-replica state digest for the trace.
    The nemesis, the chaos tests and the seed-sweep tool all drive
    protocols exclusively through this interface, so adding a protocol
    means adding one [make] arm — no test changes. *)

type protocol = Raft | Raft_star | Raft_pql | Mencius | Multipaxos

val all_protocols : protocol list
val protocol_name : protocol -> string

val protocol_of_name : string -> protocol option
(** Case-insensitive; accepts the {!protocol_name} spellings and the
    CLI spellings (["raft-star"], ["raft-pql"], ...). *)

type t = {
  protocol : protocol;
  n : int;  (** replica count *)
  fifo_required : bool;
      (** the protocol assumes FIFO channels (Mencius, per its paper), so
          a nemesis must not inject FIFO-violating reordering against it;
          Raft and MultiPaxos tolerate arbitrary reordering *)
  submit :
    node:int ->
    Raftpax_consensus.Types.op ->
    (Raftpax_consensus.Types.reply -> unit) ->
    unit;
  crash : node:int -> unit;
  restart : node:int -> unit;
  leader_hint : unit -> int option;
      (** preferred submission target, if the protocol has one ([None] for
          multi-leader protocols — submit anywhere) *)
  committed_ops : node:int -> Raftpax_consensus.Types.op list;
      (** the replica's committed prefix, in commit order — all replicas'
          lists must be prefixes of one another *)
  digest : node:int -> string;
      (** compact state summary; a change is a state transition worth
          tracing *)
  dump : node:int -> string;
      (** full ordering view (slot/log contents) for diagnosing a
          divergence — appended to the trace when a run fails *)
  state : rename:(int -> int) -> node:int -> string;
      (** canonical full-state rendering (the runtime's [dump_state]) —
          the model checker's fingerprint input.  [rename] maps node ids
          to canonical images for the checker's symmetry reduction;
          pass [Fun.id] for the plain rendering *)
  mono : node:int -> int array;
      (** the runtime's [mono_view]: components that must never decrease
          along any execution *)
  invariant : unit -> string option;
      (** the runtime's cluster-wide safety invariants; [None] = all hold.
          Used by the model checker at every state and by the nemesis
          sanitizer ([debug_invariants]) at every digest poll *)
  raft_peek : (node:int -> Raftpax_consensus.Raft.peek) option;
      (** structured refinement snapshot — Raft-family clusters only *)
}

val make :
  ?telemetry:Raftpax_telemetry.Telemetry.t ->
  ?batch_size:int ->
  ?batch_delay_us:int ->
  ?raft_config:Raftpax_consensus.Raft.config ->
  ?mencius_config:Raftpax_consensus.Mencius.config ->
  ?multipaxos_config:Raftpax_consensus.Multipaxos.config ->
  protocol ->
  Raftpax_sim.Net.t ->
  t
(** Create and start a cluster of the given protocol on the net's nodes
    (single-leader protocols bootstrap with node 0 elected).
    [?telemetry] is forwarded to the runtime's [create]; the per-protocol
    config overrides let the model checker inject mutation flags and
    election-scope configs (each applies only to its own protocol and
    defaults to the standard config).  [?batch_size] / [?batch_delay_us]
    arm leader-side command batching on whichever config is resolved; the
    default size 1 leaves the params untouched, reproducing the unbatched
    runtimes byte-for-byte. *)
