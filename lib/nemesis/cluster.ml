module C = Raftpax_consensus
module Types = C.Types
module Net = Raftpax_sim.Net

type protocol = Raft | Raft_star | Raft_pql | Mencius | Multipaxos

let all_protocols = [ Raft; Raft_star; Raft_pql; Mencius; Multipaxos ]

let protocol_name = function
  | Raft -> "Raft"
  | Raft_star -> "Raft*"
  | Raft_pql -> "Raft*-PQL"
  | Mencius -> "Raft*-Mencius"
  | Multipaxos -> "MultiPaxos"

let protocol_of_name s =
  match String.lowercase_ascii s with
  | "raft" -> Some Raft
  | "raft*" | "raft-star" -> Some Raft_star
  | "raft*-pql" | "raft-pql" | "pql" -> Some Raft_pql
  | "raft*-mencius" | "mencius" -> Some Mencius
  | "multipaxos" -> Some Multipaxos
  | _ -> None

type t = {
  protocol : protocol;
  n : int;
  fifo_required : bool;
  submit : node:int -> Types.op -> (Types.reply -> unit) -> unit;
  crash : node:int -> unit;
  restart : node:int -> unit;
  leader_hint : unit -> int option;
  committed_ops : node:int -> Types.op list;
  digest : node:int -> string;
  dump : node:int -> string;
  state : rename:(int -> int) -> node:int -> string;
  mono : node:int -> int array;
  invariant : unit -> string option;
  raft_peek : (node:int -> C.Raft.peek) option;
}

(* Mencius (per its paper) assumes FIFO channels: its skip protocol
   reads "every slot of mine below [upto] that you haven't seen a value
   for is dead", which is only sound if values can't arrive after the
   skip announcement.  Raft and MultiPaxos tolerate arbitrary reordering
   (prev-index/term checks, ballots). *)
let fifo_required = function
  | Mencius -> true
  | Raft | Raft_star | Raft_pql | Multipaxos -> false

let make ?telemetry ?(batch_size = 1) ?(batch_delay_us = 0) ?raft_config
    ?mencius_config ?multipaxos_config protocol net =
  let n = Net.size net in
  (* At size 1 the params are passed through untouched, so an unbatched
     cluster is byte-identical to one built before batching existed. *)
  let batched (p : Types.params) =
    if batch_size <= 1 then p else { p with Types.batch_size; batch_delay_us }
  in
  match protocol with
  | Raft | Raft_star | Raft_pql ->
      let cfg =
        match raft_config with
        | Some cfg -> cfg
        | None -> (
            match protocol with
            | Raft -> C.Raft.raft ~leader:0 ()
            | Raft_star -> C.Raft.raft_star ~leader:0 ()
            | _ -> C.Raft.raft_pql ~leader:0 ())
      in
      let cfg = { cfg with C.Raft.params = batched cfg.C.Raft.params } in
      let r = C.Raft.create ?telemetry cfg net in
      C.Raft.start r;
      {
        protocol;
        n;
        fifo_required = fifo_required protocol;
        submit = (fun ~node op k -> C.Raft.submit r ~node op k);
        crash = (fun ~node -> C.Raft.crash r ~node);
        restart = (fun ~node -> C.Raft.restart r ~node);
        leader_hint = (fun () -> C.Raft.leader_of r);
        committed_ops =
          (fun ~node ->
            let commit = C.Raft.commit_index r ~node in
            C.Raft.log_entries r ~node
            |> List.filteri (fun i _ -> i <= commit)
            |> List.filter_map (fun (e : Types.entry) ->
                   Option.map (fun (c : Types.cmd) -> c.Types.op) e.Types.cmd));
        digest =
          (fun ~node ->
            Printf.sprintf "term=%d commit=%d log=%d%s"
              (C.Raft.term_of r ~node)
              (C.Raft.commit_index r ~node)
              (C.Raft.log_length r ~node)
              (if C.Raft.leader_of r = Some node then " leader" else ""));
        dump =
          (fun ~node ->
            let commit = C.Raft.commit_index r ~node in
            String.concat " "
              (List.mapi
                 (fun i (e : Types.entry) ->
                   let body =
                     match e.Types.cmd with
                     | Some { Types.op = Types.Put { write_id; _ }; _ } ->
                         Printf.sprintf "V(w%d)" write_id
                     | Some { Types.op = Types.Get _; _ } -> "G"
                     | None -> "-"
                   in
                   Printf.sprintf "%d:%s%s" i body
                     (if i > commit then "!" else ""))
                 (C.Raft.log_entries r ~node)));
        state = (fun ~rename ~node -> C.Raft.dump_state ~rename r ~node);
        mono = (fun ~node -> C.Raft.mono_view r ~node);
        invariant = (fun () -> C.Raft.invariant_violation r);
        raft_peek = Some (fun ~node -> C.Raft.peek r ~node);
      }
  | Mencius ->
      let cfg =
        Option.value ~default:C.Mencius.default_config mencius_config
      in
      let cfg = { cfg with C.Mencius.params = batched cfg.C.Mencius.params } in
      let m = C.Mencius.create ?telemetry cfg net in
      C.Mencius.start m;
      {
        protocol;
        n;
        fifo_required = fifo_required protocol;
        submit = (fun ~node op k -> C.Mencius.submit m ~node op k);
        crash = (fun ~node -> C.Mencius.crash m ~node);
        restart = (fun ~node -> C.Mencius.restart m ~node);
        leader_hint = (fun () -> None);
        committed_ops = (fun ~node -> C.Mencius.committed_ops m ~node);
        digest =
          (fun ~node ->
            Printf.sprintf "commit=%d known=%d slots=%d skips=%d"
              (C.Mencius.commit_frontier m ~node)
              (C.Mencius.known_frontier m ~node)
              (C.Mencius.slot_count m ~node)
              (C.Mencius.skipped_count m ~node));
        dump = (fun ~node -> C.Mencius.dump_slots m ~node);
        state = (fun ~rename ~node -> C.Mencius.dump_state ~rename m ~node);
        mono = (fun ~node -> C.Mencius.mono_view m ~node);
        invariant = (fun () -> C.Mencius.invariant_violation m);
        raft_peek = None;
      }
  | Multipaxos ->
      let cfg =
        Option.value ~default:C.Multipaxos.default_config multipaxos_config
      in
      let cfg =
        { cfg with C.Multipaxos.params = batched cfg.C.Multipaxos.params }
      in
      let mp = C.Multipaxos.create ?telemetry ~leader:0 cfg net in
      C.Multipaxos.start mp;
      {
        protocol;
        n;
        fifo_required = fifo_required protocol;
        submit = (fun ~node op k -> C.Multipaxos.submit mp ~node op k);
        crash = (fun ~node -> C.Multipaxos.crash mp ~node);
        restart = (fun ~node -> C.Multipaxos.restart mp ~node);
        leader_hint = (fun () -> Some (C.Multipaxos.leader_of mp));
        committed_ops = (fun ~node -> C.Multipaxos.committed_ops mp ~node);
        digest =
          (fun ~node ->
            Printf.sprintf "ballot=%d chosen=%d executed=%d%s"
              (C.Multipaxos.ballot_of mp ~node)
              (C.Multipaxos.chosen_count mp ~node)
              (C.Multipaxos.executed_prefix mp ~node)
              (if C.Multipaxos.leader_of mp = node then " leader" else ""));
        dump =
          (fun ~node ->
            String.concat " "
              (List.mapi
                 (fun i (op : Types.op) ->
                   match op with
                   | Types.Put { write_id; _ } ->
                       Printf.sprintf "%d:V(w%d)" i write_id
                   | Types.Get _ -> Printf.sprintf "%d:G" i)
                 (C.Multipaxos.committed_ops mp ~node)));
        state = (fun ~rename ~node -> C.Multipaxos.dump_state ~rename mp ~node);
        mono = (fun ~node -> C.Multipaxos.mono_view mp ~node);
        invariant = (fun () -> C.Multipaxos.invariant_violation mp);
        raft_peek = None;
      }
