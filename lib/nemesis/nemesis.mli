(** The nemesis runner: one deterministic fault-injection run.

    A run is a pure function of [(protocol, workload, seed)]:

    + build a cluster of the protocol on the simulated WAN;
    + drive a closed-loop client workload (each client owns a private key
      and also contends on a shared hot key; reads and writes; retries
      with a fresh write id on timeout);
    + fire one fault per second from the schedule's weighted bag;
    + heal everything, let the cluster converge, probe liveness;
    + check safety: committed prefixes across replicas must be prefixes
      of one another, every acknowledged write must survive in the
      longest committed order, and every read must pass the
      {!Raftpax_kvstore.Lin_check} linearizability oracle.

    Everything observable is recorded in a {!Trace.t}; re-running the
    same config must reproduce it byte-identically (see
    {!Trace.fingerprint}), which makes any failure replayable from its
    seed alone. *)

type config = {
  protocol : Cluster.protocol;
  seed : int;
  chaos_steps : int;  (** one fault per simulated second *)
  clients : int;
  read_pct : int;  (** percentage of client ops that are reads *)
  hot_pct : int;  (** percentage of ops on the shared contended key *)
  capture_messages : bool;  (** record every message send in the trace *)
  debug_invariants : bool;
      (** run the runtime's cluster-wide invariant library ([Cluster.t]'s
          [invariant]) at every state poll — the model checker's safety
          oracles doubling as a continuous sanitizer; a violation is
          traced as an [INVARIANT] line and fails the run *)
  actions : Schedule.action list;
  batch_size : int;
      (** leader-side command batching on the cluster's protocol config;
          1 (the default) reproduces the unbatched runtimes
          byte-for-byte *)
  batch_delay_us : int;  (** batching flush timer; meaningless at size 1 *)
}

val config :
  ?chaos_steps:int ->
  ?clients:int ->
  ?read_pct:int ->
  ?hot_pct:int ->
  ?capture_messages:bool ->
  ?debug_invariants:bool ->
  ?actions:Schedule.action list ->
  ?batch_size:int ->
  ?batch_delay_us:int ->
  Cluster.protocol ->
  seed:int ->
  config
(** Defaults: 30 chaos steps, 4 clients, 50% reads, 30% hot-key ops,
    message capture on, invariant sanitizer on, {!Schedule.default}
    actions, batching off (size 1). *)

type report = {
  cfg : config;
  ok : bool;
  failures : string list;  (** human-readable reasons, empty iff [ok] *)
  trace : Trace.t;
  ops_completed : int;
  reads_checked : int;
  violations : Raftpax_kvstore.Lin_check.violation list;
  faults_injected : int;
  liveness_ok : bool;  (** a post-heal write committed *)
  prefixes_agree : bool;
  lost_writes : int;  (** acknowledged writes missing from the order *)
  telemetry : Raftpax_telemetry.Telemetry.t;
      (** the run's live metric registry and span tracer; its snapshot is
          also appended to the trace as [METRIC] lines, so it is covered
          by the fingerprint determinism oracle *)
}

val run : config -> report

val pp_report : Format.formatter -> report -> unit
(** One summary line; on failure also the reasons and the trace tail. *)
