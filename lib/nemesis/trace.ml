type t = { mutable rev_events : string list; mutable count : int }

let create () = { rev_events = []; count = 0 }

let record t ~now line =
  t.rev_events <- Printf.sprintf "%010d %s" now line :: t.rev_events;
  t.count <- t.count + 1

let length t = t.count
let to_list t = List.rev t.rev_events

let fingerprint t =
  Digest.to_hex (Digest.string (String.concat "\n" (to_list t)))

let pp ?limit ppf t =
  let events = to_list t in
  let events =
    match limit with
    | Some k when t.count > k ->
        Printf.sprintf "... (%d earlier events elided)" (t.count - k)
        :: (List.filteri (fun i _ -> i >= t.count - k) events)
    | _ -> events
  in
  List.iter (fun e -> Fmt.pf ppf "%s@." e) events
