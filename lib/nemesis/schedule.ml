module Sim = Raftpax_sim
module Engine = Sim.Engine
module Net = Sim.Net
module Rng = Sim.Rng

type ctx = {
  engine : Engine.t;
  net : Net.t;
  cluster : Cluster.t;
  rng : Rng.t;
  trace : Trace.t;
  down : bool array;
  mutable partition_active : bool;
  mutable chaos_active : bool;
  mutable skew_active : bool;
  mutable faults : int;
  mutable partition_gen : int;  (** heal-window generation counters *)
  mutable chaos_gen : int;
  mutable skew_gen : int;
}

let make_ctx engine net cluster ~rng ~trace =
  {
    engine;
    net;
    cluster;
    rng;
    trace;
    down = Array.make cluster.Cluster.n false;
    partition_active = false;
    chaos_active = false;
    skew_active = false;
    faults = 0;
    partition_gen = 0;
    chaos_gen = 0;
    skew_gen = 0;
  }

type action = {
  name : string;
  weight : int;
  ready : ctx -> bool;
  fire : ctx -> unit;
}

let fault ctx desc =
  ctx.faults <- ctx.faults + 1;
  Trace.record ctx.trace ~now:(Engine.now ctx.engine) ("FAULT " ^ desc)

let note ctx desc =
  Trace.record ctx.trace ~now:(Engine.now ctx.engine) desc

let down_count ctx =
  Array.fold_left (fun acc d -> if d then acc + 1 else acc) 0 ctx.down

(* Crashed replicas stay a strict minority so a majority can keep (or
   regain) progress. *)
let max_down ctx = (ctx.cluster.Cluster.n - 1) / 2

let up_nodes ctx =
  List.filter
    (fun i -> not ctx.down.(i))
    (List.init ctx.cluster.Cluster.n Fun.id)

let pick_list rng xs = List.nth xs (Rng.int rng (List.length xs))

let crash_node ctx node =
  ctx.down.(node) <- true;
  ctx.cluster.Cluster.crash ~node;
  fault ctx (Printf.sprintf "crash node=%d" node)

let restart_node ctx node =
  ctx.down.(node) <- false;
  ctx.cluster.Cluster.restart ~node;
  fault ctx (Printf.sprintf "restart node=%d" node)

let crash_random =
  {
    name = "crash";
    weight = 3;
    ready = (fun ctx -> down_count ctx < max_down ctx);
    fire = (fun ctx -> crash_node ctx (pick_list ctx.rng (up_nodes ctx)));
  }

let restart_random =
  {
    name = "restart";
    weight = 3;
    ready = (fun ctx -> down_count ctx > 0);
    fire =
      (fun ctx ->
        let downs =
          List.filter
            (fun i -> ctx.down.(i))
            (List.init ctx.cluster.Cluster.n Fun.id)
        in
        restart_node ctx (pick_list ctx.rng downs));
  }

let crash_leader =
  {
    name = "crash-leader";
    weight = 2;
    ready =
      (fun ctx ->
        down_count ctx < max_down ctx
        &&
        match ctx.cluster.Cluster.leader_hint () with
        | Some l -> not ctx.down.(l)
        | None -> false);
    fire =
      (fun ctx ->
        match ctx.cluster.Cluster.leader_hint () with
        | Some l when not ctx.down.(l) -> crash_node ctx l
        | _ -> ());
  }

(* Fault windows heal themselves [2s, 6s) later.  Per-run generation
   counters (in ctx, so replays start from zero) guard against a stale
   scheduled heal closing a window that {!heal} already closed and a
   later action reopened. *)
let window_us rng = 2_000_000 + Rng.int rng 4_000_000

let close_partition ctx gen () =
  if ctx.partition_active && ctx.partition_gen = gen then begin
    Net.set_partition ctx.net None;
    ctx.partition_active <- false;
    note ctx "HEAL partition"
  end

let open_partition ctx desc cut =
  ctx.partition_gen <- ctx.partition_gen + 1;
  Net.set_partition ctx.net (Some cut);
  ctx.partition_active <- true;
  let span = window_us ctx.rng in
  fault ctx (Printf.sprintf "%s for %dus" desc span);
  Engine.schedule ~kind:Engine.Exact ctx.engine ~delay:span
    (close_partition ctx ctx.partition_gen)

let partition_symmetric =
  {
    name = "partition-sym";
    weight = 2;
    ready = (fun ctx -> not ctx.partition_active);
    fire =
      (fun ctx ->
        let n = ctx.cluster.Cluster.n in
        (* a random minority side *)
        let side_size = 1 + Rng.int ctx.rng (max 1 ((n - 1) / 2)) in
        let order = Array.init n Fun.id in
        Rng.shuffle ctx.rng order;
        let side = Array.sub order 0 side_size in
        let in_side i = Array.exists (fun j -> j = i) side in
        let desc =
          Printf.sprintf "partition-sym side=[%s]"
            (String.concat ","
               (List.map string_of_int (Array.to_list side |> List.sort Int.compare)))
        in
        open_partition ctx desc (fun a b -> in_side a <> in_side b));
  }

let partition_asymmetric =
  {
    name = "partition-asym";
    weight = 2;
    ready = (fun ctx -> not ctx.partition_active);
    fire =
      (fun ctx ->
        let node = Rng.int ctx.rng ctx.cluster.Cluster.n in
        open_partition ctx
          (Printf.sprintf "partition-asym mute=%d" node)
          (fun a b -> a = node && b <> node));
  }

let message_chaos =
  {
    name = "message-chaos";
    weight = 2;
    ready = (fun ctx -> not ctx.chaos_active);
    fire =
      (fun ctx ->
        let chaos =
          {
            Net.delay_us = 5_000 + Rng.int ctx.rng 150_000;
            dup_probability = 0.05 +. (0.2 *. Rng.float ctx.rng 1.0);
            drop_probability = 0.1 *. Rng.float ctx.rng 1.0;
            (* FIFO-violating reorder only against protocols that don't
               assume FIFO channels (see {!Cluster.t.fifo_required}). *)
            reorder =
              Rng.bool ctx.rng 0.5
              && not ctx.cluster.Cluster.fifo_required;
          }
        in
        ctx.chaos_gen <- ctx.chaos_gen + 1;
        let gen = ctx.chaos_gen in
        Net.set_chaos ctx.net (Some chaos);
        ctx.chaos_active <- true;
        let span = window_us ctx.rng in
        fault ctx
          (Printf.sprintf
             "message-chaos delay<%dus dup=%.2f drop=%.2f reorder=%b for %dus"
             chaos.Net.delay_us chaos.Net.dup_probability
             chaos.Net.drop_probability chaos.Net.reorder span);
        Engine.schedule ~kind:Engine.Exact ctx.engine ~delay:span (fun () ->
            if ctx.chaos_active && ctx.chaos_gen = gen then begin
              Net.set_chaos ctx.net None;
              ctx.chaos_active <- false;
              note ctx "HEAL message-chaos"
            end));
  }

let clock_skew =
  {
    name = "clock-skew";
    weight = 1;
    ready = (fun ctx -> not ctx.skew_active);
    fire =
      (fun ctx ->
        (* A dedicated stream keeps the warp deterministic regardless of
           how many timers fire inside the window. *)
        let skew_rng = Rng.split ctx.rng in
        Engine.set_timer_skew ctx.engine
          (Some (fun d -> d * (700 + Rng.int skew_rng 900) / 1000));
        ctx.skew_gen <- ctx.skew_gen + 1;
        let gen = ctx.skew_gen in
        ctx.skew_active <- true;
        let span = window_us ctx.rng in
        fault ctx (Printf.sprintf "clock-skew 0.7x-1.6x for %dus" span);
        Engine.schedule ~kind:Engine.Exact ctx.engine ~delay:span (fun () ->
            if ctx.skew_active && ctx.skew_gen = gen then begin
              Engine.set_timer_skew ctx.engine None;
              ctx.skew_active <- false;
              note ctx "HEAL clock-skew"
            end));
  }

let default =
  [
    crash_random;
    restart_random;
    crash_leader;
    partition_symmetric;
    partition_asymmetric;
    message_chaos;
    clock_skew;
  ]

let crashes_only = [ crash_random; restart_random; crash_leader ]

let step ctx actions =
  let ready = List.filter (fun a -> a.ready ctx) actions in
  match ready with
  | [] -> ()
  | _ ->
      let total = List.fold_left (fun acc a -> acc + a.weight) 0 ready in
      let roll = Rng.int ctx.rng total in
      let rec pick acc = function
        | [] -> assert false
        | [ a ] -> a
        | a :: rest -> if roll < acc + a.weight then a else pick (acc + a.weight) rest
      in
      (pick 0 ready).fire ctx

let heal ctx =
  if ctx.partition_active then begin
    Net.set_partition ctx.net None;
    ctx.partition_active <- false
  end;
  if ctx.chaos_active then begin
    Net.set_chaos ctx.net None;
    ctx.chaos_active <- false
  end;
  if ctx.skew_active then begin
    Engine.set_timer_skew ctx.engine None;
    ctx.skew_active <- false
  end;
  for node = 0 to ctx.cluster.Cluster.n - 1 do
    if ctx.down.(node) then begin
      ctx.down.(node) <- false;
      ctx.cluster.Cluster.restart ~node
    end
  done;
  note ctx "HEAL all"
