type severity = Error | Warning

type t = {
  file : string;
  line : int;
  col : int;
  rule : string;
  severity : severity;
  message : string;
}

let severity_name = function Error -> "error" | Warning -> "warning"

let render f =
  Printf.sprintf "%s:%d:%d [%s] %s" f.file f.line f.col f.rule f.message

let key f = Printf.sprintf "%s:%d:%d:%s" f.file f.line f.col f.rule

let compare a b =
  let c = String.compare a.file b.file in
  if c <> 0 then c
  else
    let c = Int.compare a.line b.line in
    if c <> 0 then c
    else
      let c = Int.compare a.col b.col in
      if c <> 0 then c else String.compare a.rule b.rule
