type severity = Error | Warning

type t = {
  file : string;
  line : int;
  col : int;
  rule : string;
  severity : severity;
  message : string;
}

let severity_name = function Error -> "error" | Warning -> "warning"

let render f =
  Printf.sprintf "%s:%d:%d [%s] %s" f.file f.line f.col f.rule f.message

let key f = Printf.sprintf "%s:%d:%d:%s" f.file f.line f.col f.rule

let compare a b =
  let c = String.compare a.file b.file in
  if c <> 0 then c
  else
    let c = Int.compare a.line b.line in
    if c <> 0 then c
    else
      let c = Int.compare a.col b.col in
      if c <> 0 then c else String.compare a.rule b.rule

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json f =
  Printf.sprintf
    {|{"file":"%s","line":%d,"col":%d,"rule":"%s","severity":"%s","message":"%s"}|}
    (json_escape f.file) f.line f.col (json_escape f.rule)
    (severity_name f.severity)
    (json_escape f.message)

let render_json findings =
  match findings with
  | [] -> "[]"
  | fs -> "[\n" ^ String.concat ",\n" (List.map to_json fs) ^ "\n]"
