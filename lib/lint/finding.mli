(** A single lint finding: a rule violation at a source location. *)

type severity = Error | Warning

type t = {
  file : string;  (** path as given to the linter, '/'-normalized *)
  line : int;  (** 1-based *)
  col : int;  (** 0-based, matching compiler diagnostics *)
  rule : string;  (** rule id, e.g. ["unordered-iteration"] *)
  severity : severity;
  message : string;
}

val severity_name : severity -> string

val render : t -> string
(** [file:line:col [rule-id] message], the format CI greps for. *)

val key : t -> string
(** Stable identity used by the baseline file: [file:line:col:rule]. *)

val compare : t -> t -> int
(** Order by file, line, col, rule — a deterministic report order. *)

val to_json : t -> string
(** One finding as a JSON object (keys [file], [line], [col], [rule],
    [severity], [message]); strings escaped per RFC 8259. *)

val render_json : t list -> string
(** A findings list as a JSON array, one object per line — the
    [--json] output of the lint CLIs, stable enough for CI to diff. *)
