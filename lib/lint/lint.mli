(** detlint — determinism & protocol-discipline static analysis.

    An AST-driven pass over [.ml] sources (via compiler-libs' parser; no
    type information) enforcing the discipline the replay/fingerprint
    subsystems assume.  See DESIGN.md "Determinism discipline" for the
    rules' rationale; each rule's [summary] is the one-line version.

    Suppression: attach [[@lint.allow "rule-id"]] to an expression,
    [[@@lint.allow "rule-id"]] to a value binding, or a floating
    [[@@@lint.allow "rule-id"]] anywhere in a module to exempt the whole
    file.  Multiple ids may be given ([[@lint.allow "a" "b"]]); the id
    ["all"] matches every rule.  Grandfathered sites can instead be
    listed in a checked-in {!Baseline} file, which is expected to stay
    empty. *)

type rule = {
  id : string;
  severity : Finding.severity;
  summary : string;
  applies : string -> bool;  (** does the rule run on this (normalized) path? *)
}

val rules : rule list
(** All rules, in the order they are documented. *)

val normalize_path : string -> string
(** '\\' to '/', strip a leading ["./"]. *)

val has_segment : seg:string -> string -> bool
(** Does the normalized path contain [seg] as a whole '/'-separated
    segment?  Shared by the path-scoping predicates of all the lint
    passes. *)

val in_lib : string -> bool
val in_consensus : string -> bool

val everywhere : string -> bool
(** [applies] predicate for rules with no path scoping. *)

val contains_sub : string -> string -> bool
(** [contains_sub hay needle]: substring containment. *)

val ends_with : suffix:string -> string -> bool

val last : string list -> string
(** Last element, or [""] on an empty list. *)

val allows_of_attrs : Parsetree.attributes -> string list
(** Rule ids granted by [[@lint.allow ...]] attributes (any payload
    strings; extra strings such as human reasons pass through
    harmlessly). *)

val lint_string : filename:string -> string -> Finding.t list
(** Lint source text.  [filename] determines rule scoping (rules look
    for [lib/] and [lib/consensus] segments) and appears in findings.
    A syntax error yields a single [parse-error] finding. *)

val lint_file : string -> Finding.t list

val collect_files : string list -> string list
(** Expand files/directories into a sorted list of [.ml] files,
    skipping [_build], [.git] and other dot-directories. *)

val lint_paths : string list -> Finding.t list
(** [collect_files] then [lint_file] on each, findings sorted. *)
