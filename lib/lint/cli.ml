(* Shared flag surface for every lint binary.  A pass supplies its
   registry record; the driver below owns --baseline/--update-baseline/
   --rule/--list-rules/--json/-q and the stale-entry gate. *)

let run ~(pass : Registry.pass) () =
  let tool = pass.Registry.tool in
  let baseline_path = ref "" in
  let update_baseline = ref false in
  let only_rules = ref [] in
  let list_rules = ref false in
  let json = ref false in
  let quiet = ref false in
  let paths = ref [] in
  let spec =
    [
      ( "--baseline",
        Arg.Set_string baseline_path,
        "FILE grandfathered-findings file (missing file = empty)" );
      ( "--update-baseline",
        Arg.Set update_baseline,
        " rewrite the baseline to the current findings and exit 0" );
      ( "--rule",
        Arg.String (fun r -> only_rules := r :: !only_rules),
        "ID only report this rule (repeatable)" );
      ("--list-rules", Arg.Set list_rules, " print the rule table and exit");
      ( "--json",
        Arg.Set json,
        " print unsuppressed findings as a JSON array on stdout" );
      ("-q", Arg.Set quiet, " only print the summary line");
    ]
  in
  let usage = Printf.sprintf "%s [options] [paths...]" tool in
  Arg.parse spec (fun p -> paths := p :: !paths) usage;
  if !list_rules then begin
    List.iter
      (fun (r : Lint.rule) ->
        Printf.printf "%-24s %-7s %s\n" r.id
          (Finding.severity_name r.severity)
          r.summary)
      pass.Registry.rules;
    exit 0
  end;
  let paths =
    match List.rev !paths with [] -> pass.Registry.default_paths | ps -> ps
  in
  let findings = pass.Registry.lint_paths paths in
  let findings =
    match !only_rules with
    | [] -> findings
    | ids -> List.filter (fun (f : Finding.t) -> List.mem f.rule ids) findings
  in
  if !update_baseline then begin
    let path =
      if !baseline_path = "" then tool ^ ".baseline" else !baseline_path
    in
    Baseline.save ~tool path findings;
    Printf.printf "%s: wrote %d finding(s) to %s\n" tool
      (List.length findings) path;
    exit 0
  end;
  let baseline =
    if !baseline_path = "" then Baseline.empty else Baseline.load !baseline_path
  in
  let unsuppressed, grandfathered =
    List.partition (fun f -> not (Baseline.mem baseline f)) findings
  in
  let stale = Baseline.stale baseline findings in
  if !json then print_endline (Finding.render_json unsuppressed)
  else begin
    if not !quiet then
      List.iter (fun f -> print_endline (Finding.render f)) unsuppressed;
    List.iter
      (fun key -> Printf.printf "%s: stale baseline entry: %s\n" tool key)
      stale;
    Printf.printf "%s: %d file(s), %d finding(s) (%d grandfathered)\n" tool
      (List.length (pass.Registry.collect paths))
      (List.length unsuppressed)
      (List.length grandfathered)
  end;
  (* Stale entries gate too: the baseline may only shrink. *)
  exit (if unsuppressed = [] && stale = [] then 0 else 1)

let main tool = run ~pass:(Registry.find tool) ()
