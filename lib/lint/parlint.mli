(** parlint — cross-protocol parity & porting-discipline static
    analysis.

    The third pass on the compiler-libs AST driver.  Unlike {!Lint}
    (detlint) and {!Perflint}, which judge one file at a time, parlint
    parses the whole scanned corpus into a fact base and
    cross-references ASTs across files: the property it guards is the
    paper's porting discipline — the three runtimes are structurally
    parallel, so a message constructor, config knob, telemetry probe or
    mcheck scope present for one protocol and absent for the others is
    drift.  See DESIGN.md "Porting discipline" for the rationale.

    Rules: [wire-coverage], [knob-threading], [handler-parity],
    [probe-parity], [scenario-parity].  File roles are detected by path
    segments and basenames, so the same rules run over the real tree
    and over miniature fixture corpora; every rule self-gates on its
    anchor files being present in the scanned corpus.

    Suppression mirrors detlint ([[@lint.allow "rule-id" "reason"]]),
    and additionally attaches to constructor and record-label
    declarations — the natural anchors for parity findings.  The second
    payload string is the human justification. *)

val rules : Lint.rule list
(** All rules, in the order they are documented. *)

val rule_by_id : string -> Lint.rule option

val lint_sources : (string * string) list -> Finding.t list
(** Cross-reference a corpus given as [(filename, source)] pairs.
    Files that fail to parse yield a [parse-error] finding each and are
    excluded from the fact base. *)

val lint_string : filename:string -> string -> Finding.t list
(** Single-file corpus; cross-file rules mostly self-gate away. *)

val collect_files : string list -> string list
(** Like {!Lint.collect_files}, but also skips [lint_fixtures]
    directories: the broken fixture corpora deliberately violate every
    rule and must not pollute the real tree's fact base.  Explicitly
    given roots are never filtered. *)

val lint_paths : string list -> Finding.t list
(** [collect_files], then one {!lint_sources} run over the lot. *)
