(** Checked-in baseline of grandfathered findings.

    Each line is a {!Finding.key} ([file:line:col:rule]); blank lines and
    [#]-comments are ignored.  A finding whose key appears in the baseline
    is reported as grandfathered and does not gate.  The intended steady
    state is an empty baseline: new code fixes or [@lint.allow]-annotates
    its findings instead of baselining them. *)

type t

val empty : t
val load : string -> t
(** Missing file = empty baseline. *)

val mem : t -> Finding.t -> bool
val size : t -> int

val save : ?tool:string -> string -> Finding.t list -> unit
(** Write the keys of [findings] (sorted, deduplicated) as the new
    baseline, with a header comment naming [tool] (default
    ["detlint"]). *)

val stale : t -> Finding.t list -> string list
(** Baseline keys that no longer match any finding — candidates for
    deletion, reported so the baseline can only shrink. *)
