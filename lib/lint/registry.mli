(** The pass registry: one record per static-analysis pass (detlint,
    perflint, parlint), so binaries and [repro lint] iterate data
    instead of duplicating flag plumbing. *)

type pass = {
  tool : string;  (** binary name; also the default baseline stem *)
  default_paths : string list;
  rules : Lint.rule list;
  lint_paths : string list -> Finding.t list;
  collect : string list -> string list;  (** the pass's file collector *)
}

val passes : pass list

val find : string -> pass
(** Look a pass up by [tool] name.  @raise Not_found on an unknown name. *)
