(** perflint — hot-path cost & allocation static analysis.

    The cost-discipline sibling of {!Lint} (detlint): the same
    compiler-libs AST driver, but the rules target per-message and
    per-event code.  See DESIGN.md "Cost discipline" for the rationale;
    each rule's [summary] is the one-line version.

    Hot paths are declared rather than inferred: a [[@perf.hot]]
    attribute on a binding marks it (and nested bindings) hot, and a
    small built-in table marks the known dispatch spines (lib/consensus
    message handlers, the lib/sim engine, the lib/kvstore apply path)
    hot by name.  The allocation rule ([alloc-in-handler]) fires only
    inside explicitly attributed functions — it is too noisy for
    name-matched ones.

    Suppression mirrors detlint with its own namespace:
    [[@perf.allow "rule-id"]] on an expression, [[@@perf.allow ...]] on
    a binding, or a floating [[@@@perf.allow ...]] for the whole file;
    the id ["all"] matches every rule.  Grandfathered sites go in a
    {!Baseline} file (conventionally [perflint.baseline]). *)

val rules : Lint.rule list
(** All rules, in the order they are documented. *)

val lint_string : filename:string -> string -> Finding.t list
(** Lint source text.  [filename] determines rule scoping (rules run
    under [lib/]; default-hot name tables key off [consensus]/[sim]/
    [kvstore] segments) and appears in findings.  A syntax error yields
    a single [parse-error] finding. *)

val lint_file : string -> Finding.t list

val lint_paths : string list -> Finding.t list
(** {!Lint.collect_files} then [lint_file] on each, findings sorted. *)
