(** Shared command-line driver for the lint binaries.

    detlint and perflint expose the same interface — paths in, findings
    out, a baseline gate, [--json] for machine consumption — so the
    whole argument loop lives here and each binary is a one-call
    wrapper. *)

val run :
  tool:string ->
  default_paths:string list ->
  rules:Lint.rule list ->
  lint_paths:(string list -> Finding.t list) ->
  unit ->
  unit
(** Parse [Sys.argv], lint, report, and [exit] — 0 when every finding
    is baselined or there are none, 1 otherwise.  Flags: [--baseline]
    FILE, [--update-baseline], [--rule] ID (repeatable), [--list-rules],
    [--json], [-q]. *)
