(** Shared command-line driver for the lint binaries.

    Every pass exposes the same interface — paths in, findings out, a
    baseline gate, [--json] for machine consumption — so the whole
    argument loop lives here and each binary is a one-call wrapper
    around its {!Registry} record. *)

val run : pass:Registry.pass -> unit -> unit
(** Parse [Sys.argv], lint, report, and [exit] — 0 when every finding
    is baselined or there are none, 1 otherwise (stale baseline entries
    also gate).  Flags: [--baseline] FILE, [--update-baseline], [--rule]
    ID (repeatable), [--list-rules], [--json], [-q]. *)

val main : string -> unit
(** [main tool] looks the pass up in {!Registry.passes} and runs it:
    the whole body of a lint executable. *)
