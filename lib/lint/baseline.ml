module Sset = Set.Make (String)

type t = Sset.t

let empty = Sset.empty

let load path =
  if not (Sys.file_exists path) then Sset.empty
  else begin
    let ic = open_in path in
    let keys = ref Sset.empty in
    (try
       while true do
         let line = String.trim (input_line ic) in
         if line <> "" && line.[0] <> '#' then keys := Sset.add line !keys
       done
     with End_of_file -> ());
    close_in ic;
    !keys
  end

let mem t f = Sset.mem (Finding.key f) t
let size t = Sset.cardinal t

let save ?(tool = "detlint") path findings =
  let oc = open_out path in
  let attr = if tool = "perflint" then "perf.allow" else "lint.allow" in
  output_string oc
    (Printf.sprintf
       "# %s baseline: grandfathered findings, one Finding.key per line.\n\
        # Keep this empty; prefer [@%s \"rule-id\"] at the site.\n"
       tool attr);
  let keys =
    List.sort_uniq String.compare (List.map Finding.key findings)
  in
  List.iter (fun k -> output_string oc (k ^ "\n")) keys;
  close_out oc

let stale t findings =
  let live =
    List.fold_left (fun acc f -> Sset.add (Finding.key f) acc) Sset.empty
      findings
  in
  Sset.elements (Sset.diff t live)
