(* parlint: the cross-protocol parity pass.  detlint and perflint judge
   one file at a time; parlint parses the whole tree into a fact base
   and cross-references ASTs *across* files, because the property it
   guards is inherently global: the paper's porting discipline says the
   three runtimes are structurally parallel, so a message constructor,
   config knob, telemetry probe or mcheck scope that exists for one
   protocol and not the others is drift, not design.

   Like its siblings this is surface syntax only (compiler-libs
   Parsetree, no typing), so every judgement is containment-shaped and
   conservative: "constructor X appears in a pattern inside a binding
   whose name mentions the protocol".  Sites that are asymmetric on
   purpose carry [@lint.allow "rule-id" "reason"] — the second string
   is the human justification and is ignored by the checker. *)

open Parsetree
module SSet = Set.Make (String)

let r_wire = "wire-coverage"
let r_knob = "knob-threading"
let r_handler = "handler-parity"
let r_probe = "probe-parity"
let r_scenario = "scenario-parity"
let r_parse = "parse-error"

let rules : Lint.rule list =
  [
    {
      id = r_wire;
      severity = Finding.Error;
      summary =
        "every consensus msg constructor needs the full porting kit: an \
         encode and a decode case in lib/netcore, a QCheck generator and \
         a golden byte vector in test_netcore.ml";
      applies = Lint.everywhere;
    };
    {
      id = r_knob;
      severity = Finding.Error;
      summary =
        "every Types.params field must be threaded through all six config \
         surfaces: Harness.config, Shard.config + its JSON emitter, \
         Nemesis.config, and bench/main.ml";
      applies = Lint.everywhere;
    };
    {
      id = r_handler;
      severity = Finding.Error;
      summary =
        "family-shared message roles (replicate/ack/commit and their \
         batched *Multi variants) must exist and be dispatched in all \
         three runtimes";
      applies = Lint.everywhere;
    };
    {
      id = r_probe;
      severity = Finding.Error;
      summary =
        "a telemetry probe registered for a shared event class in one \
         runtime's make_probes must be registered in all three";
      applies = Lint.everywhere;
    };
    {
      id = r_scenario;
      severity = Finding.Error;
      summary =
        "every registered steady-*/crash-* mcheck scenario needs a \
         -batched variant, and every protocol must face the nemesis \
         chaos matrix";
      applies = Lint.everywhere;
    };
  ]

let rule_by_id id = List.find_opt (fun (r : Lint.rule) -> r.id = id) rules

(* ---- the fact base ---- *)

type decl_fact = { d_name : string; d_loc : Location.t; d_allows : string list }

type binding_fact = {
  bf_name : string;
  bf_loc : Location.t;
  bf_allows : string list;
  mutable bf_pat_ctors : SSet.t; (* constructor names matched in patterns *)
  mutable bf_ctors : SSet.t; (* constructor names built in expressions *)
  mutable bf_ctors_q : SSet.t; (* same, module-qualified as "Mod.Name" *)
  mutable bf_strings : SSet.t; (* string literals *)
  mutable bf_idents : SSet.t; (* identifiers and record labels *)
}

type file_fact = {
  ff_path : string;
  mutable ff_msg_ctors : decl_fact list; (* constructors of [type msg] *)
  mutable ff_msg_loc : Location.t option;
  mutable ff_msg_allows : string list;
  mutable ff_proto_ctors : decl_fact list; (* of [type protocol] *)
  mutable ff_params : decl_fact list; (* fields of [type params] *)
  mutable ff_bindings : binding_fact list;
  mutable ff_idents : SSet.t; (* whole-file union *)
  mutable ff_strings : SSet.t;
  mutable ff_ctors : SSet.t;
  mutable ff_pat_ctors : SSet.t;
  mutable ff_allows : string list; (* floating [@@@lint.allow] *)
  mutable ff_parse : Finding.t option;
}

let lid_parts (lid : Longident.t) = try Longident.flatten lid with _ -> []

let qualified parts =
  match List.rev parts with
  | name :: md :: _ -> Some (md ^ "." ^ name)
  | _ -> None

let binding_name pat =
  let rec go p =
    match p.ppat_desc with
    | Ppat_var v -> v.txt
    | Ppat_constraint (p, _) -> go p
    | _ -> "_"
  in
  go pat

(* One iterator collects everything reachable from a top-level binding,
   mirroring it into the file-level sets as it goes. *)
let collect_into (ff : file_fact) (bf : binding_fact) =
  let add_ident s =
    bf.bf_idents <- SSet.add s bf.bf_idents;
    ff.ff_idents <- SSet.add s ff.ff_idents
  in
  let add_ctor parts =
    (match List.rev parts with
    | name :: _ ->
        bf.bf_ctors <- SSet.add name bf.bf_ctors;
        ff.ff_ctors <- SSet.add name ff.ff_ctors
    | [] -> ());
    match qualified parts with
    | Some q ->
        bf.bf_ctors_q <- SSet.add q bf.bf_ctors_q;
        ff.ff_ctors <- SSet.add q ff.ff_ctors
    | None -> ()
  in
  let expr sub e =
    (match e.pexp_desc with
    | Pexp_construct (lid, _) -> add_ctor (lid_parts lid.txt)
    | Pexp_ident lid ->
        let parts = lid_parts lid.txt in
        add_ident (Lint.last parts);
        if List.length parts > 1 then add_ident (String.concat "." parts)
    | Pexp_field (_, lid) | Pexp_setfield (_, lid, _) ->
        add_ident (Lint.last (lid_parts lid.txt))
    | Pexp_record (fields, _) ->
        List.iter
          (fun (lid, _) -> add_ident (Lint.last (lid_parts lid.Location.txt)))
          fields
    | Pexp_constant (Pconst_string (s, _, _)) ->
        bf.bf_strings <- SSet.add s bf.bf_strings;
        ff.ff_strings <- SSet.add s ff.ff_strings
    | _ -> ());
    Ast_iterator.default_iterator.expr sub e
  in
  let pat sub p =
    (match p.ppat_desc with
    | Ppat_construct (lid, _) -> (
        (match List.rev (lid_parts lid.txt) with
        | name :: _ ->
            bf.bf_pat_ctors <- SSet.add name bf.bf_pat_ctors;
            ff.ff_pat_ctors <- SSet.add name ff.ff_pat_ctors
        | [] -> ());
        match qualified (lid_parts lid.txt) with
        | Some q -> bf.bf_pat_ctors <- SSet.add q bf.bf_pat_ctors
        | None -> ())
    | Ppat_record (fields, _) ->
        List.iter
          (fun (lid, _) -> add_ident (Lint.last (lid_parts lid.Location.txt)))
          fields
    | Ppat_var v -> add_ident v.txt
    | _ -> ());
    Ast_iterator.default_iterator.pat sub p
  in
  { Ast_iterator.default_iterator with expr; pat }

let record_type_decl (ff : file_fact) (td : type_declaration) =
  let decl_of_ctor (cd : constructor_declaration) =
    {
      d_name = cd.pcd_name.txt;
      d_loc = cd.pcd_loc;
      d_allows = Lint.allows_of_attrs cd.pcd_attributes;
    }
  in
  let decl_of_label (ld : label_declaration) =
    ff.ff_idents <- SSet.add ld.pld_name.txt ff.ff_idents;
    {
      d_name = ld.pld_name.txt;
      d_loc = ld.pld_loc;
      d_allows = Lint.allows_of_attrs ld.pld_attributes;
    }
  in
  (* Fact lists accumulate by cons and are reversed once at the end of
     [extract]. *)
  match (td.ptype_name.txt, td.ptype_kind) with
  | "msg", Ptype_variant cds ->
      List.iter
        (fun cd -> ff.ff_msg_ctors <- decl_of_ctor cd :: ff.ff_msg_ctors)
        cds;
      ff.ff_msg_loc <- Some td.ptype_loc;
      List.iter
        (fun a -> ff.ff_msg_allows <- a :: ff.ff_msg_allows)
        (Lint.allows_of_attrs td.ptype_attributes)
  | "protocol", Ptype_variant cds ->
      List.iter
        (fun cd -> ff.ff_proto_ctors <- decl_of_ctor cd :: ff.ff_proto_ctors)
        cds
  | "params", Ptype_record lds ->
      List.iter
        (fun ld -> ff.ff_params <- decl_of_label ld :: ff.ff_params)
        lds
  | _, Ptype_variant cds ->
      List.iter
        (fun (cd : constructor_declaration) ->
          ff.ff_idents <- SSet.add cd.pcd_name.txt ff.ff_idents)
        cds
  | _, Ptype_record lds -> ignore (List.map decl_of_label lds)
  | _ -> ()

let rec record_structure (ff : file_fact) (items : structure) =
  List.iter
    (fun item ->
      match item.pstr_desc with
      | Pstr_value (_, vbs) ->
          List.iter
            (fun vb ->
              let bf =
                {
                  bf_name = binding_name vb.pvb_pat;
                  bf_loc = vb.pvb_loc;
                  bf_allows = Lint.allows_of_attrs vb.pvb_attributes;
                  bf_pat_ctors = SSet.empty;
                  bf_ctors = SSet.empty;
                  bf_ctors_q = SSet.empty;
                  bf_strings = SSet.empty;
                  bf_idents = SSet.empty;
                }
              in
              let it = collect_into ff bf in
              it.pat it vb.pvb_pat;
              it.expr it vb.pvb_expr;
              ff.ff_bindings <- bf :: ff.ff_bindings)
            vbs
      | Pstr_type (_, tds) -> List.iter (record_type_decl ff) tds
      | Pstr_attribute a when a.attr_name.txt = "lint.allow" ->
          List.iter
            (fun al -> ff.ff_allows <- al :: ff.ff_allows)
            (Lint.allows_of_attrs [ a ])
      | Pstr_module { pmb_expr = { pmod_desc = Pmod_structure s; _ }; _ } ->
          record_structure ff s
      | _ -> ())
    items

let extract ~filename source =
  let file = Lint.normalize_path filename in
  let ff =
    {
      ff_path = file;
      ff_msg_ctors = [];
      ff_msg_loc = None;
      ff_msg_allows = [];
      ff_proto_ctors = [];
      ff_params = [];
      ff_bindings = [];
      ff_idents = SSet.empty;
      ff_strings = SSet.empty;
      ff_ctors = SSet.empty;
      ff_pat_ctors = SSet.empty;
      ff_allows = [];
      ff_parse = None;
    }
  in
  (match
     let lb = Lexing.from_string source in
     Location.init lb file;
     Parse.implementation lb
   with
  | structure -> record_structure ff structure
  | exception exn ->
      let line, col =
        match exn with
        | Syntaxerr.Error err ->
            let loc = Syntaxerr.location_of_error err in
            ( loc.loc_start.pos_lnum,
              loc.loc_start.pos_cnum - loc.loc_start.pos_bol )
        | _ -> (1, 0)
      in
      ff.ff_parse <-
        Some
          {
            Finding.file;
            line;
            col;
            rule = r_parse;
            severity = Finding.Error;
            message = "source does not parse: " ^ Printexc.to_string exn;
          });
  ff.ff_msg_ctors <- List.rev ff.ff_msg_ctors;
  ff.ff_msg_allows <- List.rev ff.ff_msg_allows;
  ff.ff_proto_ctors <- List.rev ff.ff_proto_ctors;
  ff.ff_params <- List.rev ff.ff_params;
  ff.ff_bindings <- List.rev ff.ff_bindings;
  ff.ff_allows <- List.rev ff.ff_allows;
  ff

(* ---- file roles ----

   Role detection is by path segment + basename, so the same rules run
   unchanged over the real tree and over a miniature fixture corpus
   (test/lint_fixtures/parlint_*/lib/consensus/raft.ml plays raft.ml).
   Every rule self-gates on its anchor files being present in the
   scanned corpus: linting bin/ alone finds nothing rather than
   claiming the whole wire layer is missing. *)

let base p = Filename.basename p

let proto_of_file p =
  if not (Lint.in_consensus p) then None
  else
    match base p with
    | "raft.ml" -> Some ("raft", "Raft")
    | "multipaxos.ml" -> Some ("multipaxos", "Multipaxos")
    | "mencius.ml" -> Some ("mencius", "Mencius")
    | _ -> None

let is_netcore p = Lint.in_lib p && Lint.has_segment ~seg:"netcore" p
let is_types p = Lint.in_consensus p && base p = "types.ml"

let is_harness p =
  Lint.in_lib p && Lint.has_segment ~seg:"kvstore" p && base p = "harness.ml"

let is_shard p =
  Lint.in_lib p && Lint.has_segment ~seg:"kvstore" p && base p = "shard.ml"

let is_nemesis_cfg p =
  Lint.in_lib p && Lint.has_segment ~seg:"nemesis" p && base p = "nemesis.ml"

let is_cluster p =
  Lint.in_lib p && Lint.has_segment ~seg:"nemesis" p && base p = "cluster.ml"

let is_bench p = Lint.has_segment ~seg:"bench" p && base p = "main.ml"

let is_scenario p =
  Lint.in_lib p && Lint.has_segment ~seg:"mcheck" p && base p = "scenario.ml"

let is_test_netcore p = base p = "test_netcore.ml"
let is_test_chaos p = base p = "test_chaos.ml"

(* ---- the rules ---- *)

let allowed rule allows = List.mem rule allows || List.mem "all" allows

let finding file (loc : Location.t) rule message =
  {
    Finding.file;
    line = loc.loc_start.pos_lnum;
    col = loc.loc_start.pos_cnum - loc.loc_start.pos_bol;
    rule;
    severity = Finding.Error;
    message;
  }

let finding_at file line rule message =
  { Finding.file; line; col = 0; rule; severity = Finding.Error; message }

let in_bindings files pred =
  List.exists (fun f -> List.exists pred f.ff_bindings) files

(* wire-coverage: each constructor of a runtime's [type msg] must be
   matched by an encode binding and built by a decode binding in
   lib/netcore (binding name mentions the protocol), generated by a
   gen_<proto>_msg binding and pinned module-qualified inside a
   golden* binding in test_netcore.ml. *)
let wire_findings facts out =
  let netcore = List.filter (fun f -> is_netcore f.ff_path) facts in
  let tests = List.filter (fun f -> is_test_netcore f.ff_path) facts in
  List.iter
    (fun pf ->
      match proto_of_file pf.ff_path with
      | None -> ()
      | Some (key, modname) ->
          List.iter
            (fun c ->
              let allows = c.d_allows @ pf.ff_msg_allows @ pf.ff_allows in
              if not (allowed r_wire allows) then begin
                let missing = ref [] in
                let need cond what = if not cond then missing := what :: !missing in
                if netcore <> [] then begin
                  need
                    (in_bindings netcore (fun b ->
                         Lint.contains_sub b.bf_name key
                         && SSet.mem c.d_name b.bf_pat_ctors))
                    "an encode case in lib/netcore";
                  need
                    (in_bindings netcore (fun b ->
                         Lint.contains_sub b.bf_name key
                         && SSet.mem c.d_name b.bf_ctors))
                    "a decode case in lib/netcore"
                end;
                if tests <> [] then begin
                  need
                    (in_bindings tests (fun b ->
                         Lint.contains_sub b.bf_name "gen"
                         && Lint.contains_sub b.bf_name key
                         && SSet.mem c.d_name b.bf_ctors))
                    "a QCheck generator case in test_netcore.ml";
                  need
                    (in_bindings tests (fun b ->
                         Lint.contains_sub b.bf_name "golden"
                         && SSet.mem (modname ^ "." ^ c.d_name) b.bf_ctors_q))
                    (Printf.sprintf
                       "a golden byte vector in test_netcore.ml (a golden* \
                        binding mentioning %s.%s)"
                       modname c.d_name)
                end;
                if !missing <> [] then
                  out
                    (finding pf.ff_path c.d_loc r_wire
                       (Printf.sprintf
                          "constructor %s.%s is missing %s: every wire \
                           message carries the full porting kit or an \
                           explicit [@lint.allow \"%s\" \"reason\"]"
                          modname c.d_name
                          (String.concat ", " (List.rev !missing))
                          r_wire))
              end)
            pf.ff_msg_ctors)
    facts

(* knob-threading: a Types.params field is either threaded through all
   six config surfaces (the drift PR 8 chased by hand) or carries a
   reason saying why it is an engine-model constant. *)
let knob_findings facts out =
  let surfaces =
    [
      ("Harness.config", is_harness, `Ident);
      ("Shard.config and its JSON emitter", is_shard, `Ident_and_string);
      ("Nemesis.config", is_nemesis_cfg, `Ident);
      ("a bench/main.ml flag or JSON key", is_bench, `Ident_or_string);
    ]
  in
  List.iter
    (fun tf ->
      if is_types tf.ff_path then
        List.iter
          (fun fld ->
            if not (allowed r_knob (fld.d_allows @ tf.ff_allows)) then begin
              let missing =
                List.filter_map
                  (fun (label, sel, mode) ->
                    match List.filter (fun f -> sel f.ff_path) facts with
                    | [] -> None (* surface not in the scanned corpus *)
                    | files ->
                        let ident f = SSet.mem fld.d_name f.ff_idents in
                        let str f = SSet.mem fld.d_name f.ff_strings in
                        let ok f =
                          match mode with
                          | `Ident -> ident f
                          | `Ident_and_string -> ident f && str f
                          | `Ident_or_string -> ident f || str f
                        in
                        if List.exists ok files then None else Some label)
                  surfaces
              in
              if missing <> [] then
                out
                  (finding tf.ff_path fld.d_loc r_knob
                     (Printf.sprintf
                        "params field %s is not threaded through %s: port \
                         the knob to every surface or annotate it \
                         [@lint.allow \"%s\" \"reason\"]"
                        fld.d_name
                        (String.concat ", " missing)
                        r_knob))
            end)
          tf.ff_params)
    facts

(* handler-parity: the Section-4 correspondence as a table.  Raft has no
   separate commit or batched message — commit piggybacks on Append's
   commit_index and batching rides Append's entries list — so its column
   repeats Append/Ack by design. *)
let families =
  [
    ("replicate", [ ("raft", "Append"); ("multipaxos", "Accept"); ("mencius", "MAppend") ]);
    ( "replicate-batched",
      [ ("raft", "Append"); ("multipaxos", "AcceptMulti"); ("mencius", "MAppendMulti") ] );
    ("ack", [ ("raft", "Ack"); ("multipaxos", "AcceptOk"); ("mencius", "MAck") ]);
    ( "ack-batched",
      [ ("raft", "Ack"); ("multipaxos", "AcceptOkMulti"); ("mencius", "MAckMulti") ] );
    ("commit", [ ("raft", "Append"); ("multipaxos", "Learn"); ("mencius", "MCommit") ]);
    ( "commit-batched",
      [ ("raft", "Append"); ("multipaxos", "LearnMulti"); ("mencius", "MCommitMulti") ] );
  ]

let handler_findings facts out =
  let trio =
    List.filter_map
      (fun f ->
        match proto_of_file f.ff_path with
        | Some (key, modname) -> Some (key, modname, f)
        | None -> None)
      facts
  in
  List.iter
    (fun (family, members) ->
      let member_of key = List.assoc_opt key members in
      let has (key, _, f) =
        match member_of key with
        | Some name -> List.exists (fun c -> c.d_name = name) f.ff_msg_ctors
        | None -> false
      in
      List.iter
        (fun ((key, modname, f) as prot) ->
          match member_of key with
          | None -> ()
          | Some name ->
              let others_have =
                List.exists (fun ((k, _, _) as o) -> k <> key && has o) trio
              in
              if (not (has prot)) && others_have then begin
                let msg_allows = f.ff_msg_allows @ f.ff_allows in
                if not (allowed r_handler msg_allows) then
                  out
                    (finding f.ff_path
                       (Option.value f.ff_msg_loc
                          ~default:Location.none)
                       r_handler
                       (Printf.sprintf
                          "message family '%s' has no %s member %s while \
                           its siblings carry theirs: port the message or \
                           annotate the msg type with [@@lint.allow \
                           \"%s\" \"reason\"]"
                          family modname name r_handler))
              end
              else if has prot then begin
                let c =
                  List.find (fun c -> c.d_name = name) f.ff_msg_ctors
                in
                if
                  (not (allowed r_handler (c.d_allows @ f.ff_allows)))
                  && not (SSet.mem name f.ff_pat_ctors)
                then
                  out
                    (finding f.ff_path c.d_loc r_handler
                       (Printf.sprintf
                          "family '%s' member %s.%s is declared but never \
                           matched in %s: the runtime cannot dispatch it"
                          family modname name (base f.ff_path)))
              end)
        trio)
    families

(* probe-parity: make_probes string literals, diffed across the trio via
   shared event classes.  Protocol-structural exemptions are inline with
   their reasons; an unclassified probe name registered by exactly two
   runtimes is flagged at the third (majority vote). *)
type probe_class = {
  pc_name : string;
  pc_aliases : string list; (* per-runtime spellings of the same event *)
  pc_exempt : (string * string) list; (* protocol key -> structural reason *)
}

let probe_classes =
  [
    { pc_name = "leader-change-started";
      pc_aliases = [ "elections"; "revocations_started" ];
      pc_exempt = [] };
    { pc_name = "leader-change-won";
      pc_aliases = [ "leader_wins"; "revocations_value"; "revocations_skip" ];
      pc_exempt = [] };
    { pc_name = "epoch-change";
      pc_aliases = [ "term_changes"; "ballot_changes" ];
      pc_exempt =
        [ ("mencius",
           "slots are positionally owned; revocation advances no term/ballot \
            counter") ] };
    { pc_name = "keepalive";
      pc_aliases = [ "heartbeats"; "skips_announced" ];
      pc_exempt =
        [ ("multipaxos",
           "the revocation watchdog reads the failure detector; the runtime \
            sends no keepalive traffic") ] };
    { pc_name = "replicate-sent";
      pc_aliases = [ "appends_sent"; "accepts_sent" ];
      pc_exempt = [] };
    { pc_name = "ack-sent"; pc_aliases = [ "acks_sent" ]; pc_exempt = [] };
    { pc_name = "commit"; pc_aliases = [ "commits" ]; pc_exempt = [] };
    { pc_name = "retransmit"; pc_aliases = [ "retransmits" ]; pc_exempt = [] };
    { pc_name = "forward";
      pc_aliases = [ "forwards" ];
      pc_exempt =
        [ ("mencius",
           "every replica leads its own slots; there is no leader to \
            redirect to") ] };
    { pc_name = "batch-flush";
      pc_aliases = [ "batch_flush_cmds" ];
      pc_exempt = [] };
  ]

let probe_findings facts out =
  let trio =
    List.filter_map
      (fun f ->
        match proto_of_file f.ff_path with
        | None -> None
        | Some (key, _) -> (
            match
              List.find_opt (fun b -> b.bf_name = "make_probes") f.ff_bindings
            with
            | Some b -> Some (key, f, b)
            | None -> None))
      facts
  in
  if List.length trio >= 2 then begin
    let registers aliases (_, _, b) =
      List.exists (fun a -> SSet.mem a b.bf_strings) aliases
    in
    let report (key, f, b) what detail =
      if not (allowed r_probe (b.bf_allows @ f.ff_allows)) then
        out
          (finding f.ff_path b.bf_loc r_probe
             (Printf.sprintf
                "%s runtime registers no probe for %s (%s): port the \
                 counter or annotate make_probes with [@lint.allow \
                 \"%s\" \"reason\"]"
                key what detail r_probe))
    in
    List.iter
      (fun pc ->
        match List.filter (registers pc.pc_aliases) trio with
        | [] -> () (* class unused anywhere: nothing to diff *)
        | _ :: _ ->
            List.iter
              (fun ((key, _, _) as prot) ->
                match List.assoc_opt key pc.pc_exempt with
                | Some _ -> ()
                | None ->
                    if not (registers pc.pc_aliases prot) then
                      report prot
                        (Printf.sprintf "shared event class '%s'" pc.pc_name)
                        ("aliases: " ^ String.concat "/" pc.pc_aliases))
              trio)
      probe_classes;
    (* Majority vote on names outside the class table. *)
    let classified =
      List.fold_left
        (fun acc pc -> List.fold_left (fun acc a -> SSet.add a acc) acc pc.pc_aliases)
        SSet.empty probe_classes
    in
    if List.length trio = 3 then begin
      let all_names =
        List.fold_left
          (fun acc (_, _, b) -> SSet.union acc b.bf_strings)
          SSet.empty trio
      in
      SSet.iter
        (fun name ->
          if not (SSet.mem name classified) then
            match List.partition (fun (_, _, b) -> SSet.mem name b.bf_strings) trio with
            | [ _; _ ], [ missing ] ->
                report missing
                  (Printf.sprintf "probe '%s'" name)
                  "registered by the other two runtimes"
            | _ -> ())
        all_names
    end
  end

(* scenario-parity: four obligations.  (a) every steady*/crash* binding
   the scenario registry references must also register its _batched
   variant; (b) Cluster.all_protocols must enumerate every constructor
   of its own protocol type; (c) the chaos test must iterate
   all_protocols (or name every constructor); (d) every Harness
   protocol must exist in the nemesis Cluster.protocol family. *)
let scenario_findings facts out =
  List.iter
    (fun sf ->
      if is_scenario sf.ff_path then
        match
          List.find_opt (fun b -> b.bf_name = "names") sf.ff_bindings
        with
        | None -> ()
        | Some names_b ->
            let refs = names_b.bf_idents in
            List.iter
              (fun b ->
                let is_family =
                  (String.starts_with ~prefix:"steady" b.bf_name
                  || String.starts_with ~prefix:"crash" b.bf_name)
                  && (not (Lint.ends_with ~suffix:"_batched" b.bf_name))
                  && not (Lint.ends_with ~suffix:"_off" b.bf_name)
                in
                if
                  is_family
                  && SSet.mem b.bf_name refs
                  && (not (SSet.mem (b.bf_name ^ "_batched") refs))
                  && not (allowed r_scenario (b.bf_allows @ sf.ff_allows))
                then
                  out
                    (finding sf.ff_path b.bf_loc r_scenario
                       (Printf.sprintf
                          "scenario family %s is registered without a \
                           %s_batched variant: batching must face every \
                           scope the unbatched protocols face"
                          b.bf_name b.bf_name)))
              sf.ff_bindings)
    facts;
  let clusters =
    List.filter (fun f -> is_cluster f.ff_path && f.ff_proto_ctors <> []) facts
  in
  List.iter
    (fun cf ->
      (match
         List.find_opt (fun b -> b.bf_name = "all_protocols") cf.ff_bindings
       with
      | None -> ()
      | Some ap ->
          List.iter
            (fun c ->
              if
                (not (SSet.mem c.d_name ap.bf_ctors))
                && not (allowed r_scenario (c.d_allows @ cf.ff_allows))
              then
                out
                  (finding cf.ff_path c.d_loc r_scenario
                     (Printf.sprintf
                        "protocol %s is missing from all_protocols: it \
                         never faces the chaos matrix" c.d_name)))
            cf.ff_proto_ctors);
      List.iter
        (fun tf ->
          if is_test_chaos tf.ff_path && not (allowed r_scenario tf.ff_allows)
          then begin
            let covered =
              SSet.mem "all_protocols" tf.ff_idents
              || List.for_all
                   (fun c -> SSet.mem c.d_name tf.ff_ctors)
                   cf.ff_proto_ctors
            in
            if not covered then
              out
                (finding_at tf.ff_path 1 r_scenario
                   "the chaos test iterates neither all_protocols nor \
                    every protocol constructor: part of the family dodges \
                    the nemesis matrix")
          end)
        facts)
    clusters;
  if clusters <> [] then begin
    let cluster_names =
      List.fold_left
        (fun acc cf ->
          List.fold_left
            (fun acc c -> SSet.add c.d_name acc)
            acc cf.ff_proto_ctors)
        SSet.empty clusters
    in
    List.iter
      (fun hf ->
        if is_harness hf.ff_path then
          List.iter
            (fun c ->
              if
                (not (SSet.mem c.d_name cluster_names))
                && not (allowed r_scenario (c.d_allows @ hf.ff_allows))
              then
                out
                  (finding hf.ff_path c.d_loc r_scenario
                     (Printf.sprintf
                        "harness protocol %s has no nemesis Cluster.protocol \
                         counterpart: it never faces the chaos matrix"
                        c.d_name)))
            hf.ff_proto_ctors)
      facts
  end

let analyze facts =
  let acc = ref [] in
  let out f = acc := f :: !acc in
  wire_findings facts out;
  knob_findings facts out;
  handler_findings facts out;
  probe_findings facts out;
  scenario_findings facts out;
  !acc

(* ---- entry points ---- *)

let lint_sources sources =
  let facts =
    List.map (fun (filename, source) -> extract ~filename source) sources
  in
  let parse_failures = List.filter_map (fun f -> f.ff_parse) facts in
  let parsed =
    List.filter (fun f -> Option.is_none f.ff_parse) facts
  in
  List.sort Finding.compare (parse_failures @ analyze parsed)

let lint_string ~filename source = lint_sources [ (filename, source) ]

let read_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let source = really_input_string ic len in
  close_in ic;
  source

(* Like Lint.collect_files, but also skips lint_fixtures corpora: the
   broken fixture trees deliberately violate every rule and must not
   pollute the real tree's fact base.  An explicitly given root is never
   filtered, so `parlint test/lint_fixtures/parlint_broken` still works. *)
let rec collect_into_skipping acc path =
  if Sys.is_directory path then
    Array.fold_left
      (fun acc entry ->
        if
          entry = "" || entry.[0] = '.' || entry = "_build"
          || entry = "lint_fixtures"
        then acc
        else collect_into_skipping acc (Filename.concat path entry))
      acc (Sys.readdir path)
  else if Filename.check_suffix path ".ml" then path :: acc
  else acc

let collect_files paths =
  List.sort String.compare
    (List.fold_left collect_into_skipping []
       (List.map Lint.normalize_path paths))

let lint_paths paths =
  lint_sources
    (List.map (fun p -> (p, read_file p)) (collect_files paths))
