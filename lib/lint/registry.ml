(* The pass registry: one record per static-analysis pass, so the bin
   entry points and `repro lint` iterate data instead of duplicating
   flag plumbing — adding a fourth pass is one record here plus a
   one-line executable. *)

type pass = {
  tool : string;
  default_paths : string list;
  rules : Lint.rule list;
  lint_paths : string list -> Finding.t list;
  collect : string list -> string list;
}

let passes =
  [
    {
      tool = "detlint";
      default_paths = [ "lib"; "bin"; "bench" ];
      rules = Lint.rules;
      lint_paths = Lint.lint_paths;
      collect = Lint.collect_files;
    };
    {
      tool = "perflint";
      default_paths = [ "lib" ];
      rules = Perflint.rules;
      lint_paths = Perflint.lint_paths;
      collect = Lint.collect_files;
    };
    {
      tool = "parlint";
      default_paths = [ "lib"; "bin"; "bench"; "test" ];
      rules = Parlint.rules;
      lint_paths = Parlint.lint_paths;
      collect = Parlint.collect_files;
    };
  ]

let find tool = List.find (fun p -> p.tool = tool) passes
