(* perflint: a hot-path cost & allocation pass over the surface syntax
   (Parsetree, via compiler-libs — no typing, so like detlint every
   judgement is syntactic and conservative).

   The invariant being enforced: per-message and per-event code must
   stay O(1)-ish.  Consensus codebases rot into accidental O(n²) one
   innocuous line at a time — a list accumulator rebuilt with [@] per
   vote, a [List.length] per dispatch, an assoc scan over growing state
   — and the simulator's throughput (and with it every figure sweep) is
   the sum of those lines.

   Hot paths are declared, not guessed: a [[@perf.hot]] attribute on a
   binding marks it (and everything defined inside it) hot, and a small
   per-library table ([default_hot]) marks the known dispatch spines —
   lib/consensus message handlers, the lib/sim engine/net drain, the
   lib/kvstore apply path — hot by name.  The quadratic-accumulate rule
   alone runs everywhere under lib/: rebuilding long-lived state with
   [@] is wrong at any temperature.

   Suppression mirrors detlint with its own attribute namespace:
   [[@perf.allow "rule-id"]] on an expression, [[@@perf.allow ...]] on a
   binding, or a floating [[@@@perf.allow ...]] for the file; the id
   ["all"] matches every rule.  Grandfathered sites go in
   [perflint.baseline] with the same stale-entry gating. *)

open Parsetree

let r_quad = "quadratic-accumulate"
let r_length = "length-in-hot-path"
let r_assoc = "assoc-scan"
let r_alloc = "alloc-in-handler"
let r_sort = "sort-in-loop"
let r_string = "string-build-in-hot-path"
let r_parse = "parse-error"

let in_lib path = Lint.has_segment ~seg:"lib" path

let rules : Lint.rule list =
  [
    {
      id = r_quad;
      severity = Finding.Error;
      summary =
        "accumulator rebuilt with list append (x := e @ !x / f <- e @ t.f): \
         O(n) per event is O(n\194\178) per run; push into a Vec or cons and \
         reverse once";
      applies = in_lib;
    };
    {
      id = r_length;
      severity = Finding.Error;
      summary =
        "List.length/List.nth in a hot path walks the spine per call; cache \
         the count (Net.size, a record field) or use an indexed structure";
      applies = in_lib;
    };
    {
      id = r_assoc;
      severity = Finding.Error;
      summary =
        "List.assoc/mem_assoc/find in a hot path scans linearly per event; \
         use a Hashtbl or an array keyed by node id";
      applies = in_lib;
    };
    {
      id = r_alloc;
      severity = Finding.Warning;
      summary =
        "allocation (List/Array building, @, closure, tuple) inside a \
         [@perf.hot] function: hoist it or thread a reusable buffer";
      applies = in_lib;
    };
    {
      id = r_sort;
      severity = Finding.Warning;
      summary =
        "sort inside a hot path or loop re-pays n log n per event; maintain \
         sorted order incrementally or hoist the sort";
      applies = in_lib;
    };
    {
      id = r_string;
      severity = Finding.Warning;
      summary =
        "string building (Printf/Format/^) in a hot path allocates per \
         event even when unread; wrap it in a lazy render closure (~info \
         pattern) or gate on the telemetry switch";
      applies = in_lib;
    };
  ]

let rule_by_id id = List.find_opt (fun (r : Lint.rule) -> r.id = id) rules

(* The known dispatch spines, hot without annotation.  Names are matched
   per library so an unrelated [run] elsewhere stays cold. *)
let default_hot path name =
  let seg s = Lint.has_segment ~seg:s path in
  if seg "consensus" then
    List.mem name
      [
        "handle";
        "accept_entries";
        "apply_committed";
        "advance_commit";
        "maybe_replicate";
        "send_batch";
        "append_cmd";
        (* batching flush points: run once per batch, but sit directly on
           the submit/commit spine, so per-call cost is per-event cost at
           batch size 1 *)
        "flush_batch";
        "flush_accepts";
        "flush_appends";
        "claim_own_slot";
      ]
  else if seg "sim" then
    List.mem name [ "run"; "send"; "deliver"; "execute"; "schedule" ]
  else if seg "kvstore" then List.mem name [ "apply"; "next_op" ]
  else false

(* ---- Parsetree helpers (shared shapes with lint.ml) ---- *)

let path_of_expr e =
  match e.pexp_desc with
  | Pexp_ident lid -> ( try Longident.flatten lid.txt with _ -> [])
  | _ -> []

let strip_stdlib = function
  | "Stdlib" :: (_ :: _ as rest) -> rest
  | p -> p

let last = function [] -> "" | p -> List.nth p (List.length p - 1)

let head_path e =
  match e.pexp_desc with
  | Pexp_apply (f, _) -> strip_stdlib (path_of_expr f)
  | _ -> strip_stdlib (path_of_expr e)

let const_string e =
  match e.pexp_desc with
  | Pexp_constant (Pconst_string (s, _, _)) -> Some s
  | _ -> None

let rec strings_of_expr e =
  match const_string e with
  | Some s -> [ s ]
  | None -> (
      match e.pexp_desc with
      | Pexp_tuple es -> List.concat_map strings_of_expr es
      | Pexp_apply (f, args) ->
          strings_of_expr f
          @ List.concat_map (fun (_, a) -> strings_of_expr a) args
      | _ -> [])

let allows_of_attrs (attrs : attributes) =
  List.concat_map
    (fun (a : attribute) ->
      if a.attr_name.txt <> "perf.allow" then []
      else
        match a.attr_payload with
        | PStr items ->
            List.concat_map
              (fun item ->
                match item.pstr_desc with
                | Pstr_eval (e, _) -> strings_of_expr e
                | _ -> [])
              items
        | _ -> [])
    attrs

let has_hot_attr (attrs : attributes) =
  List.exists (fun (a : attribute) -> a.attr_name.txt = "perf.hot") attrs

(* ---- per-file context ---- *)

type ctx = {
  file : string;
  mutable findings : Finding.t list;
  mutable allow_stack : string list list;
  mutable file_allows : string list list;  (* consed, one per attribute *)
  mutable hot_depth : int;  (* inside a hot function (attribute or table) *)
  mutable attr_hot_depth : int;  (* inside an explicitly [@perf.hot] one *)
  mutable loop_depth : int;  (* inside while/for *)
  mutable lazy_info_depth : int;  (* inside a closure passed as ~info *)
  mutable fun_spine : bool;
      (* current expr is the leading lambda chain of a let binding —
         a definition's own parameters, not a per-event closure *)
}

let suppressed ctx rule_id =
  let matches l = List.mem rule_id l || List.mem "all" l in
  List.exists matches ctx.file_allows || List.exists matches ctx.allow_stack

let report ctx rule_id ~(loc : Location.t) message =
  match rule_by_id rule_id with
  | Some r when r.applies ctx.file && not (suppressed ctx rule_id) ->
      let p = loc.loc_start in
      ctx.findings <-
        {
          Finding.file = ctx.file;
          line = p.pos_lnum;
          col = p.pos_cnum - p.pos_bol;
          rule = rule_id;
          severity = r.severity;
          message;
        }
        :: ctx.findings
  | _ -> ()

(* ---- rule 1: quadratic accumulate ---- *)

let is_append e =
  match head_path e with
  | [ "@" ] | [ "List"; "append" ] | [ "List"; "rev_append" ] -> true
  | _ -> false

let append_operands e =
  match e.pexp_desc with
  | Pexp_apply (_, [ (_, a); (_, b) ]) when is_append e -> Some (a, b)
  | _ -> None

let deref_of e =
  match e.pexp_desc with
  | Pexp_apply (f, [ (_, arg) ]) when last (path_of_expr f) = "!" -> (
      match arg.pexp_desc with
      | Pexp_ident { txt = Longident.Lident x; _ } -> Some x
      | _ -> None)
  | _ -> None

let field_name_of e =
  match e.pexp_desc with
  | Pexp_field (_, lid) -> Some (last (try Longident.flatten lid.txt with _ -> []))
  | _ -> None

let check_quad ctx e =
  match e.pexp_desc with
  (* x := e @ !x  (either operand) *)
  | Pexp_apply (f, [ (_, lhs); (_, rhs) ]) when last (path_of_expr f) = ":=" -> (
      match (lhs.pexp_desc, append_operands rhs) with
      | Pexp_ident { txt = Longident.Lident x; _ }, Some (a, b)
        when deref_of a = Some x || deref_of b = Some x ->
          report ctx r_quad ~loc:e.pexp_loc
            (Printf.sprintf
               "`%s' is rebuilt with @ on every update — O(n) per event, \
                O(n\194\178) per run; use a Vec (push/clear) or cons and \
                reverse at the use site"
               x)
      | _ -> ())
  (* t.f <- e @ t.f  (either operand) *)
  | Pexp_setfield (_, fld, rhs) -> (
      let fname = last (try Longident.flatten fld.txt with _ -> []) in
      match append_operands rhs with
      | Some (a, b)
        when field_name_of a = Some fname || field_name_of b = Some fname ->
          report ctx r_quad ~loc:e.pexp_loc
            (Printf.sprintf
               "field `%s' is rebuilt with @ on every update — O(n) per \
                event, O(n\194\178) per run; use a Vec (push/clear) or cons \
                and reverse at the use site"
               fname)
      | _ -> ())
  | _ -> ()

(* ---- rule 2: length in hot path ---- *)

(* [List.length (Net.nodes _)] gets the targeted hint even outside hot
   functions: the cluster size is a constant the net already caches. *)
let nodes_arg args =
  List.exists
    (fun (_, a) ->
      match a.pexp_desc with
      | Pexp_apply (f, _) -> (
          match strip_stdlib (path_of_expr f) with
          | [ "Net"; "nodes" ] | [ "nodes" ] -> true
          | _ -> false)
      | _ -> false)
    args

let check_length ctx e =
  match e.pexp_desc with
  | Pexp_apply (f, args) -> (
      match strip_stdlib (path_of_expr f) with
      | [ "List"; ("length" | "nth" as m) ] ->
          if m = "length" && nodes_arg args then
            report ctx r_length ~loc:e.pexp_loc
              "List.length (Net.nodes _) walks the node list per call: use \
               Net.size, which is cached at net construction"
          else if ctx.hot_depth > 0 then
            report ctx r_length ~loc:e.pexp_loc
              (Printf.sprintf
                 "List.%s in a hot path walks the list spine per event; \
                  cache the count or use an indexed structure (Vec, array)"
                 m)
      | _ -> ())
  | _ -> ()

(* ---- rule 3: assoc scan ---- *)

let check_assoc ctx e =
  if ctx.hot_depth > 0 then
    match e.pexp_desc with
    | Pexp_apply (f, _) -> (
        match strip_stdlib (path_of_expr f) with
        | [ "List";
            (( "assoc" | "assoc_opt" | "mem_assoc" | "remove_assoc" | "find"
             | "find_opt" | "mem" ) as m) ] ->
            report ctx r_assoc ~loc:e.pexp_loc
              (Printf.sprintf
                 "List.%s in a hot path scans linearly per event; use a \
                  Hashtbl or an array indexed by node/slot id"
                 m)
        | _ -> ())
    | _ -> ()

(* ---- rule 4: allocation in [@perf.hot] handlers ---- *)

let list_alloc_path p =
  match strip_stdlib p with
  | [ "List";
      (( "map" | "mapi" | "map2" | "init" | "filter" | "filter_map" | "rev"
       | "rev_map" | "concat" | "concat_map" | "flatten" | "append" | "split"
       | "combine" ) as m) ] ->
      Some ("List." ^ m)
  | [ "Array";
      (( "make" | "create_float" | "init" | "copy" | "append" | "of_list"
       | "to_list" | "sub" | "make_matrix" ) as m) ] ->
      Some ("Array." ^ m)
  | [ "@" ] -> Some "@"
  | _ -> None

let check_alloc ctx ~spine e =
  (* The ~info closure (and anything inside it) only runs when telemetry
     capture is on — its allocations are off the hot path by design. *)
  if ctx.attr_hot_depth > 0 && ctx.lazy_info_depth = 0 then
    match e.pexp_desc with
    | Pexp_apply (f, _) -> (
        match list_alloc_path (path_of_expr f) with
        | Some name ->
            report ctx r_alloc ~loc:e.pexp_loc
              (Printf.sprintf
                 "%s allocates per event in a [@perf.hot] function; hoist \
                  it, reuse a buffer, or iterate in place"
                 name)
        | None -> ())
    | Pexp_tuple _ ->
        report ctx r_alloc ~loc:e.pexp_loc
          "tuple construction allocates per event in a [@perf.hot] \
           function; pass components separately or reuse a record"
    | (Pexp_fun _ | Pexp_function _) when not spine ->
        report ctx r_alloc ~loc:e.pexp_loc
          "closure allocation per event in a [@perf.hot] function; hoist \
           the closure or take the environment as arguments"
    | _ -> ()

(* ---- rule 5: sort in loop / hot path ---- *)

let check_sort ctx e =
  if ctx.hot_depth > 0 || ctx.loop_depth > 0 then
    match e.pexp_desc with
    | Pexp_apply (f, _) -> (
        match strip_stdlib (path_of_expr f) with
        | [ ("List" | "Array");
            (( "sort" | "stable_sort" | "fast_sort" | "sort_uniq" ) as m) ] ->
            report ctx r_sort ~loc:e.pexp_loc
              (Printf.sprintf
                 "%s re-pays n log n per event inside a %s; maintain sorted \
                  order incrementally or hoist the sort"
                 m
                 (if ctx.loop_depth > 0 then "loop" else "hot path"))
        | _ -> ())
    | _ -> ()

(* ---- rule 6: string building in hot path ---- *)

let string_builder_path p =
  match strip_stdlib p with
  | ("Printf" | "Format" | "Fmt") :: _ :: _ -> true
  | [ "^" ] | [ "String"; "concat" ] -> true
  | _ -> false

let check_string ctx e =
  if ctx.hot_depth > 0 && ctx.lazy_info_depth = 0 then
    match e.pexp_desc with
    | Pexp_apply (f, _) when string_builder_path (path_of_expr f) ->
        report ctx r_string ~loc:e.pexp_loc
          (Printf.sprintf
             "`%s' builds a string per event in a hot path; defer it \
              behind a closure (the ~info pattern) or a telemetry guard"
             (String.concat "." (strip_stdlib (path_of_expr f))))
    | _ -> ()

(* ---- main traversal ---- *)

let binding_name vb =
  match vb.pvb_pat.ppat_desc with Ppat_var v -> v.txt | _ -> ""

let rec is_function e =
  match e.pexp_desc with
  | Pexp_fun _ | Pexp_function _ -> true
  | Pexp_newtype (_, body) | Pexp_constraint (body, _) -> is_function body
  | _ -> false

let main_iterator ctx =
  let super = Ast_iterator.default_iterator in
  let push allows = ctx.allow_stack <- allows :: ctx.allow_stack in
  let pop () = ctx.allow_stack <- List.tl ctx.allow_stack in
  {
    super with
    expr =
      (fun it e ->
        push (allows_of_attrs e.pexp_attributes);
        let spine = ctx.fun_spine in
        ctx.fun_spine <- false;
        check_quad ctx e;
        check_length ctx e;
        check_assoc ctx e;
        check_alloc ctx ~spine e;
        check_sort ctx e;
        check_string ctx e;
        (match e.pexp_desc with
        | (Pexp_fun _ | Pexp_function _ | Pexp_newtype _ | Pexp_constraint _)
          when spine ->
            (* Stay on the definition's lambda chain: its body's own
               outermost lambdas are still parameters, not per-event
               closures. *)
            ctx.fun_spine <- true;
            super.expr it e;
            ctx.fun_spine <- false
        | Pexp_apply (f, args) ->
            it.expr it f;
            List.iter
              (fun ((lbl : Asttypes.arg_label), a) ->
                match (lbl, a.pexp_desc) with
                (* A closure passed as ~info is the sanctioned lazy-render
                   pattern: only evaluated when capture is on. *)
                | Asttypes.Labelled "info", (Pexp_fun _ | Pexp_function _) ->
                    ctx.lazy_info_depth <- ctx.lazy_info_depth + 1;
                    it.expr it a;
                    ctx.lazy_info_depth <- ctx.lazy_info_depth - 1
                | _ -> it.expr it a)
              args
        | Pexp_while _ | Pexp_for _ ->
            ctx.loop_depth <- ctx.loop_depth + 1;
            super.expr it e;
            ctx.loop_depth <- ctx.loop_depth - 1
        | _ -> super.expr it e);
        pop ());
    value_binding =
      (fun it vb ->
        push (allows_of_attrs vb.pvb_attributes);
        let hot_attr = has_hot_attr vb.pvb_attributes in
        let hot =
          is_function vb.pvb_expr
          && (hot_attr || default_hot ctx.file (binding_name vb))
        in
        if hot then ctx.hot_depth <- ctx.hot_depth + 1;
        if hot && hot_attr then ctx.attr_hot_depth <- ctx.attr_hot_depth + 1;
        ctx.fun_spine <- true;
        super.value_binding it vb;
        ctx.fun_spine <- false;
        if hot && hot_attr then ctx.attr_hot_depth <- ctx.attr_hot_depth - 1;
        if hot then ctx.hot_depth <- ctx.hot_depth - 1;
        pop ());
    module_binding =
      (fun it mb ->
        push (allows_of_attrs mb.pmb_attributes);
        super.module_binding it mb;
        pop ());
    structure_item =
      (fun it item ->
        (match item.pstr_desc with
        | Pstr_attribute a when a.attr_name.txt = "perf.allow" ->
            ctx.file_allows <- allows_of_attrs [ a ] :: ctx.file_allows
        | _ -> ());
        super.structure_item it item);
  }

(* ---- entry points ---- *)

let lint_string ~filename source =
  let file = Lint.normalize_path filename in
  let ctx =
    {
      file;
      findings = [];
      allow_stack = [];
      file_allows = [];
      hot_depth = 0;
      attr_hot_depth = 0;
      loop_depth = 0;
      lazy_info_depth = 0;
      fun_spine = false;
    }
  in
  match
    let lb = Lexing.from_string source in
    Location.init lb file;
    Parse.implementation lb
  with
  | structure ->
      List.iter
        (fun item ->
          match item.pstr_desc with
          | Pstr_attribute a when a.attr_name.txt = "perf.allow" ->
              ctx.file_allows <- allows_of_attrs [ a ] :: ctx.file_allows
          | _ -> ())
        structure;
      let it = main_iterator ctx in
      it.structure it structure;
      List.sort Finding.compare ctx.findings
  | exception exn ->
      let line, col =
        match exn with
        | Syntaxerr.Error err ->
            let loc = Syntaxerr.location_of_error err in
            (loc.loc_start.pos_lnum, loc.loc_start.pos_cnum - loc.loc_start.pos_bol)
        | _ -> (1, 0)
      in
      [
        {
          Finding.file;
          line;
          col;
          rule = r_parse;
          severity = Finding.Error;
          message = "source does not parse: " ^ Printexc.to_string exn;
        };
      ]

let lint_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let source = really_input_string ic len in
  close_in ic;
  lint_string ~filename:path source

let lint_paths paths =
  Lint.collect_files paths
  |> List.concat_map lint_file
  |> List.sort Finding.compare
