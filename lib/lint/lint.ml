(* detlint: an AST pass over the surface syntax (Parsetree, via
   compiler-libs — no typing, so every judgement here is syntactic and
   deliberately conservative: when the analysis cannot prove a site
   harmless it flags it, and the site either gets fixed or carries an
   explicit [@lint.allow] with its justification).

   The invariant being enforced: the simulator and every protocol
   runtime are bit-deterministic under a seed.  nemesis trace replay,
   mcheck choice schedules, telemetry snapshots and the state
   fingerprints all compare bytes across runs, so one unordered
   Hashtbl.fold or one wall-clock read silently breaks all four. *)

open Parsetree

type rule = {
  id : string;
  severity : Finding.severity;
  summary : string;
  applies : string -> bool;
}

let normalize_path p =
  let p = String.map (fun c -> if c = '\\' then '/' else c) p in
  if String.length p >= 2 && String.sub p 0 2 = "./" then
    String.sub p 2 (String.length p - 2)
  else p

let has_segment ~seg path =
  let path = "/" ^ path in
  let needle = "/" ^ seg ^ "/" in
  let nl = String.length needle and pl = String.length path in
  let rec go i = i + nl <= pl && (String.sub path i nl = needle || go (i + 1)) in
  go 0

let in_lib path = has_segment ~seg:"lib" path
let in_consensus path = in_lib path && has_segment ~seg:"consensus" path
let everywhere _ = true

let r_forbidden = "forbidden-effects"
let r_unordered = "unordered-iteration"
let r_polycmp = "polymorphic-compare"
let r_wildcard = "wildcard-message-match"
let r_escaping = "escaping-mutable-state"
let r_parse = "parse-error"

let rules =
  [
    {
      id = r_forbidden;
      severity = Finding.Error;
      summary =
        "Random/Unix/Sys.time/Hashtbl.hash/Domain/Thread under lib/: the \
         sim clock and the seeded Rng are the only time and entropy \
         sources";
      applies = in_lib;
    };
    {
      id = r_unordered;
      severity = Finding.Error;
      summary =
        "Hashtbl.iter/fold/to_seq whose result is not provably \
         order-insensitive (sorted, set-collected, or a commutative \
         fold): iteration order is seed-dependent and breaks replay";
      applies = everywhere;
    };
    {
      id = r_polycmp;
      severity = Finding.Warning;
      summary =
        "bare polymorphic compare (or =/< on a function value): use a \
         monomorphic comparator (Int.compare, String.compare, a \
         dedicated one) — crash-proof and faster in hot sorts";
      applies = everywhere;
    };
    {
      id = r_wildcard;
      severity = Finding.Error;
      summary =
        "catch-all case in a protocol message/timeout dispatch in \
         lib/consensus: a newly added constructor must fail `dune build \
         @check`, not be silently dropped";
      applies = in_consensus;
    };
    {
      id = r_escaping;
      severity = Finding.Error;
      summary =
        "top-level mutable state in a lib/ module: it survives across \
         runs in one process and poisons replays unless it is on the \
         engine reset path";
      applies = in_lib;
    };
  ]

let rule_by_id id = List.find_opt (fun r -> r.id = id) rules

(* ---- small Parsetree helpers ---- *)

let path_of_expr e =
  match e.pexp_desc with
  | Pexp_ident lid -> ( try Longident.flatten lid.txt with _ -> [])
  | _ -> []

let strip_stdlib = function
  | "Stdlib" :: (_ :: _ as rest) -> rest
  | p -> p

let last = function [] -> "" | p -> List.nth p (List.length p - 1)

let parent_module p =
  match List.rev p with _ :: m :: _ -> m | _ -> ""

let contains_sub hay needle =
  let hl = String.length hay and nl = String.length needle in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  nl > 0 && go 0

let ends_with ~suffix s =
  let sl = String.length s and xl = String.length suffix in
  sl >= xl && String.sub s (sl - xl) xl = suffix

let const_string e =
  match e.pexp_desc with
  | Pexp_constant (Pconst_string (s, _, _)) -> Some s
  | _ -> None

(* ---- suppression ---- *)

let rec strings_of_expr e =
  match const_string e with
  | Some s -> [ s ]
  | None -> (
      match e.pexp_desc with
      | Pexp_tuple es -> List.concat_map strings_of_expr es
      | Pexp_apply (f, args) ->
          strings_of_expr f
          @ List.concat_map (fun (_, a) -> strings_of_expr a) args
      | _ -> [])

let allows_of_attrs (attrs : attributes) =
  List.concat_map
    (fun (a : attribute) ->
      if a.attr_name.txt <> "lint.allow" then []
      else
        match a.attr_payload with
        | PStr items ->
            List.concat_map
              (fun item ->
                match item.pstr_desc with
                | Pstr_eval (e, _) -> strings_of_expr e
                | _ -> [])
              items
        | _ -> [])
    attrs

(* ---- per-file context ---- *)

type ctx = {
  file : string;
  mutable findings : Finding.t list;
  mutable allow_stack : string list list;
  mutable file_allows : string list list;  (* consed, one per attribute *)
  mutable ancestors : expression list;  (* innermost first *)
  msg_constructors : (string, unit) Hashtbl.t;
  mutable compare_shadowed : bool;
}

let suppressed ctx rule_id =
  let matches l = List.mem rule_id l || List.mem "all" l in
  List.exists matches ctx.file_allows || List.exists matches ctx.allow_stack

let report ctx rule_id ~(loc : Location.t) message =
  match rule_by_id rule_id with
  | Some r when r.applies ctx.file && not (suppressed ctx rule_id) ->
      let p = loc.loc_start in
      ctx.findings <-
        {
          Finding.file = ctx.file;
          line = p.pos_lnum;
          col = p.pos_cnum - p.pos_bol;
          rule = rule_id;
          severity = r.severity;
          message;
        }
        :: ctx.findings
  | _ -> ()

(* ---- rule 1: forbidden effects ---- *)

let forbidden_effect path =
  match strip_stdlib path with
  | "Random" :: _ :: _ -> Some "Random is seed-invisible entropy; use the engine's Rng"
  | "Unix" :: _ :: _ -> Some "Unix reaches the wall clock/OS; use the sim Engine"
  | [ "Sys"; "time" ] -> Some "Sys.time is wall-clock; use Engine.now"
  | [ "Hashtbl"; "hash" ] | [ "Hashtbl"; "seeded_hash" ] ->
      Some "polymorphic hash on unordered data is layout-dependent"
  | "Domain" :: _ :: _ | "Thread" :: _ :: _ | "Mutex" :: _ :: _
  | "Condition" :: _ :: _ ->
      Some "real parallelism has no place under the deterministic sim"
  | _ -> None

let check_forbidden ctx e =
  match path_of_expr e with
  | [] -> ()
  | path -> (
      match forbidden_effect path with
      | Some why ->
          report ctx r_forbidden ~loc:e.pexp_loc
            (Printf.sprintf "forbidden effect `%s': %s"
               (String.concat "." path) why)
      | None -> ())

(* ---- rule 2: unordered iteration ---- *)

let hashtbl_iteration e =
  match e.pexp_desc with
  | Pexp_apply (f, args) -> (
      match strip_stdlib (path_of_expr f) with
      | [ "Hashtbl"; ("iter" | "fold" | "to_seq" | "to_seq_keys" | "to_seq_values" as m) ]
        ->
          Some (m, args)
      | _ -> None)
  | _ -> None

(* Heads that consume a collection order-insensitively.  Any identifier
   whose name mentions "sort" counts, so local helpers like [sorted_tbl]
   or [sorted_ints] sanction their argument. *)
let sort_sink_path p =
  let p = strip_stdlib p in
  let name = String.lowercase_ascii (last p) in
  let m = parent_module p in
  contains_sub name "sort"
  || ((ends_with ~suffix:"Set" m || ends_with ~suffix:"Map" m)
     && List.mem name [ "of_seq"; "of_list"; "add_seq" ])

let sort_sink_expr e =
  match e.pexp_desc with
  | Pexp_ident _ -> sort_sink_path (path_of_expr e)
  | Pexp_apply (f, _) -> sort_sink_path (path_of_expr f)
  | _ -> false

(* Order-preserving wrappers the analysis sees through while climbing
   toward a sink. *)
let transparent_path p =
  match strip_stdlib p with
  | [ "List"; ("of_seq" | "rev" | "map" | "rev_map" | "mapi" | "filter"
              | "filter_map" | "concat" | "concat_map" | "flatten" | "to_seq") ]
  | [ "Array"; ("of_seq" | "of_list" | "to_list" | "map") ]
  | [ "Seq"; ("map" | "filter" | "filter_map" | "memoize") ] ->
      true
  | _ -> false

let transparent_expr e =
  match e.pexp_desc with
  | Pexp_ident _ -> transparent_path (path_of_expr e)
  | Pexp_apply (f, _) -> transparent_path (path_of_expr f)
  | _ -> false

let commutative_heads =
  [ "+"; "+."; "*"; "*."; "max"; "min"; "land"; "lor"; "lxor"; "&&"; "||" ]

(* A fold function whose body is a commutative/associative combination of
   the accumulator (or the accumulator itself) is order-insensitive. *)
let rec fun_body e =
  match e.pexp_desc with
  | Pexp_fun (_, _, _, body) -> fun_body body
  | Pexp_newtype (_, body) -> fun_body body
  | _ -> e

let commutative_fold_fn fn =
  match fn.pexp_desc with
  | Pexp_fun _ -> (
      let body = fun_body fn in
      match body.pexp_desc with
      | Pexp_ident _ | Pexp_constant _ -> true
      | Pexp_apply (f, _) -> List.mem (last (path_of_expr f)) commutative_heads
      | _ -> false)
  | _ -> false

(* Does [body] apply a sort-ish sink to something mentioning variable
   [v]?  Used for the let-bound shape
   [let xs = Hashtbl.fold ... in ... List.sort cmp xs ...]. *)
let mentions_var v e =
  let found = ref false in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun it e ->
          (match e.pexp_desc with
          | Pexp_ident { txt = Longident.Lident x; _ } when x = v ->
              found := true
          | _ -> ());
          Ast_iterator.default_iterator.expr it e);
    }
  in
  it.expr it e;
  !found

let sorted_later v body =
  let found = ref false in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun it e ->
          (match e.pexp_desc with
          | Pexp_apply (f, args)
            when sort_sink_path (path_of_expr f)
                 && List.exists (fun (_, a) -> mentions_var v a) args ->
              found := true
          | _ -> ());
          Ast_iterator.default_iterator.expr it e);
    }
  in
  it.expr it body;
  !found

(* Climb from the iteration expression through its ancestors until the
   value provably reaches an order-insensitive consumer (sanctioned) or
   escapes analysis (flagged). *)
let rec climb child = function
  | [] -> false
  | anc :: rest -> (
      match anc.pexp_desc with
      | Pexp_apply (f, args) -> (
          if child == f then false
          else
            let head = last (strip_stdlib (path_of_expr f)) in
            match (head, args) with
            | "|>", [ (_, lhs); (_, rhs) ] when child == lhs ->
                sort_sink_expr rhs
                || (transparent_expr rhs && climb anc rest)
            | "@@", [ (_, lhs); (_, rhs) ] when child == rhs ->
                sort_sink_expr lhs
                || (transparent_expr lhs && climb anc rest)
            | _ ->
                sort_sink_path (path_of_expr f)
                || (transparent_path (path_of_expr f) && climb anc rest))
      | Pexp_let (_, vbs, body) -> (
          match
            List.find_opt (fun vb -> vb.pvb_expr == child) vbs
          with
          | Some vb -> (
              match vb.pvb_pat.ppat_desc with
              | Ppat_var v -> sorted_later v.txt body
              | _ -> false)
          | None -> child == body && climb anc rest)
      | Pexp_sequence (_, b) -> child == b && climb anc rest
      | Pexp_ifthenelse (cond, _, _) -> child != cond && climb anc rest
      | Pexp_constraint _ | Pexp_open _ -> climb anc rest
      | Pexp_match (scrutinee, _) | Pexp_try (scrutinee, _) ->
          child != scrutinee && climb anc rest
      | _ -> false)

let check_unordered ctx e =
  match hashtbl_iteration e with
  | None -> ()
  | Some (m, args) ->
      let sanctioned =
        match (m, args) with
        | "fold", (Asttypes.Nolabel, fn) :: _ when commutative_fold_fn fn ->
            true
        | "iter", _ -> false
        | _ -> climb e ctx.ancestors
      in
      if not sanctioned then
        report ctx r_unordered ~loc:e.pexp_loc
          (Printf.sprintf
             "Hashtbl.%s order is seed/layout-dependent; sort the result \
              (List.sort), fold commutatively, or collect into a set — \
              unordered iteration silently breaks fingerprints and replay"
             m)

(* ---- rule 3: polymorphic compare ---- *)

let check_polycmp ctx e =
  (match e.pexp_desc with
  | Pexp_ident { txt = Longident.Lident "compare"; _ }
    when not ctx.compare_shadowed ->
      report ctx r_polycmp ~loc:e.pexp_loc
        "bare polymorphic `compare': use Int.compare / String.compare / a \
         dedicated comparator (monomorphic is crash-proof on closures and \
         faster in hot sorts)"
  | Pexp_ident lid -> (
      match (try Longident.flatten lid.txt with _ -> []) with
      | [ "Stdlib"; "compare" ] | [ "Pervasives"; "compare" ] ->
          report ctx r_polycmp ~loc:e.pexp_loc
            "Stdlib.compare is polymorphic; use a monomorphic comparator"
      | _ -> ())
  | _ -> ());
  match e.pexp_desc with
  | Pexp_apply (f, args)
    when List.mem (last (path_of_expr f))
           [ "="; "<>"; "<"; ">"; "<="; ">="; "compare"; "min"; "max" ]
         && List.exists
              (fun (_, a) ->
                match a.pexp_desc with
                | Pexp_fun _ | Pexp_function _ -> true
                | _ -> false)
              args ->
      report ctx r_polycmp ~loc:e.pexp_loc
        "structural comparison applied to a function value raises at \
         runtime"
  | _ -> ()

(* ---- rule 4: wildcard message match ---- *)

let rec pattern_mentions ctx p =
  match p.ppat_desc with
  | Ppat_construct (lid, arg) ->
      Hashtbl.mem ctx.msg_constructors
        (last (try Longident.flatten lid.txt with _ -> []))
      || (match arg with
         | Some (_, inner) -> pattern_mentions ctx inner
         | None -> false)
  | Ppat_or (a, b) -> pattern_mentions ctx a || pattern_mentions ctx b
  | Ppat_alias (inner, _) | Ppat_constraint (inner, _) ->
      pattern_mentions ctx inner
  | Ppat_tuple ps -> List.exists (pattern_mentions ctx) ps
  | _ -> false

let rec catch_all p =
  match p.ppat_desc with
  | Ppat_any | Ppat_var _ -> true
  | Ppat_alias (inner, _) | Ppat_constraint (inner, _) -> catch_all inner
  | Ppat_or (a, b) -> catch_all a || catch_all b
  | _ -> false

let check_wildcard ctx e =
  let cases =
    match e.pexp_desc with
    | Pexp_match (_, cases) | Pexp_function cases -> cases
    | _ -> []
  in
  if
    cases <> []
    && Hashtbl.length ctx.msg_constructors > 0
    && List.exists (fun c -> pattern_mentions ctx c.pc_lhs) cases
  then
    List.iter
      (fun c ->
        if catch_all c.pc_lhs then
          let allows = allows_of_attrs c.pc_lhs.ppat_attributes in
          if not (List.mem r_wildcard allows || List.mem "all" allows) then
            report ctx r_wildcard ~loc:c.pc_lhs.ppat_loc
              "catch-all case in a message/timeout dispatch: enumerate the \
               constructors so a new message fails `dune build @check' \
               instead of being silently dropped")
      cases

(* ---- rule 5: escaping mutable state ---- *)

let mutable_creator path =
  match strip_stdlib path with
  | [ "ref" ] -> Some "ref"
  | [ ("Hashtbl" | "Queue" | "Buffer" | "Stack" | "Dynarray" | "Weak" | "Vec") as m;
      "create" ] ->
      Some (m ^ ".create")
  | [ "Atomic"; "make" ] -> Some "Atomic.make"
  | [ "Bytes"; ("create" | "make" as f) ] -> Some ("Bytes." ^ f)
  | [ "Array"; ("make" | "create" | "init" | "make_matrix" | "make_float" as f) ]
    ->
      Some ("Array." ^ f)
  | _ -> None

(* Scan a binding's RHS for a mutable-container allocation, skipping
   function bodies (those allocate per call, which is fine). *)
let find_mutable_creator e =
  let found = ref None in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun it e ->
          match e.pexp_desc with
          | Pexp_fun _ | Pexp_function _ | Pexp_lazy _ -> ()
          | Pexp_apply (f, _) -> (
              (match mutable_creator (path_of_expr f) with
              | Some name when !found = None -> found := Some (name, e.pexp_loc)
              | _ -> ());
              Ast_iterator.default_iterator.expr it e)
          | _ -> Ast_iterator.default_iterator.expr it e);
    }
  in
  it.expr it e;
  !found

let rec binds_var p =
  match p.ppat_desc with
  | Ppat_var _ | Ppat_alias _ -> true
  | Ppat_tuple ps -> List.exists binds_var ps
  | Ppat_constraint (inner, _) -> binds_var inner
  | _ -> false

let bound_name p =
  match p.ppat_desc with Ppat_var v -> v.txt | _ -> "_"

let check_escaping ctx vb =
  match vb.pvb_expr.pexp_desc with
  | Pexp_fun _ | Pexp_function _ | Pexp_newtype _ -> ()
  | _ ->
      if binds_var vb.pvb_pat then (
        match find_mutable_creator vb.pvb_expr with
        | Some (creator, _) ->
            report ctx r_escaping ~loc:vb.pvb_pat.ppat_loc
              (Printf.sprintf
                 "top-level mutable `%s' (%s) survives across runs and \
                  poisons replays; move it into per-run state or annotate \
                  the deliberate exception"
                 (bound_name vb.pvb_pat) creator)
        | None -> ())

(* ---- prepass: msg constructors & compare shadowing ---- *)

let msg_type_names = [ "msg"; "message"; "timeout"; "event" ]

let prepass ctx structure =
  let it =
    {
      Ast_iterator.default_iterator with
      type_declaration =
        (fun it td ->
          (if List.mem td.ptype_name.txt msg_type_names then
             match td.ptype_kind with
             | Ptype_variant ctors ->
                 List.iter
                   (fun cd -> Hashtbl.replace ctx.msg_constructors cd.pcd_name.txt ())
                   ctors
             | _ -> ());
          Ast_iterator.default_iterator.type_declaration it td);
      value_binding =
        (fun it vb ->
          (match vb.pvb_pat.ppat_desc with
          | Ppat_var { txt = "compare"; _ } -> ctx.compare_shadowed <- true
          | _ -> ());
          Ast_iterator.default_iterator.value_binding it vb);
    }
  in
  it.structure it structure

(* ---- main traversal ---- *)

let main_iterator ctx =
  let super = Ast_iterator.default_iterator in
  let push allows = ctx.allow_stack <- allows :: ctx.allow_stack in
  let pop () = ctx.allow_stack <- List.tl ctx.allow_stack in
  {
    super with
    expr =
      (fun it e ->
        push (allows_of_attrs e.pexp_attributes);
        check_forbidden ctx e;
        check_unordered ctx e;
        check_polycmp ctx e;
        check_wildcard ctx e;
        ctx.ancestors <- e :: ctx.ancestors;
        super.expr it e;
        ctx.ancestors <- List.tl ctx.ancestors;
        pop ());
    value_binding =
      (fun it vb ->
        push (allows_of_attrs vb.pvb_attributes);
        super.value_binding it vb;
        pop ());
    module_binding =
      (fun it mb ->
        push (allows_of_attrs mb.pmb_attributes);
        super.module_binding it mb;
        pop ());
    module_expr =
      (fun it me ->
        (match me.pmod_desc with
        | Pmod_ident lid -> (
            match
              forbidden_effect (try Longident.flatten lid.txt with _ -> [])
            with
            | Some _ -> ()
            | None -> (
                match strip_stdlib (try Longident.flatten lid.txt with _ -> []) with
                | [ ("Random" | "Unix" | "Domain" | "Thread" | "Mutex" | "Condition") as m ]
                  ->
                    report ctx r_forbidden ~loc:me.pmod_loc
                      (Printf.sprintf
                         "module %s aliased/opened: its effects are \
                          forbidden under lib/"
                         m)
                | _ -> ()))
        | _ -> ());
        super.module_expr it me);
    structure_item =
      (fun it item ->
        (match item.pstr_desc with
        | Pstr_attribute a ->
            if a.attr_name.txt = "lint.allow" then
              ctx.file_allows <- allows_of_attrs [ a ] :: ctx.file_allows
        | Pstr_value (_, vbs) ->
            List.iter
              (fun vb ->
                push (allows_of_attrs vb.pvb_attributes);
                check_escaping ctx vb;
                pop ())
              vbs
        | _ -> ());
        super.structure_item it item);
  }

(* ---- entry points ---- *)

let lint_string ~filename source =
  let file = normalize_path filename in
  let ctx =
    {
      file;
      findings = [];
      allow_stack = [];
      file_allows = [];
      ancestors = [];
      msg_constructors = Hashtbl.create 16;
      compare_shadowed = false;
    }
  in
  match
    let lb = Lexing.from_string source in
    Location.init lb file;
    Parse.implementation lb
  with
  | structure ->
      (* Floating [@@@lint.allow] anywhere in the file exempts the whole
         file, so collect those (and the prepass facts) before checking. *)
      List.iter
        (fun item ->
          match item.pstr_desc with
          | Pstr_attribute a when a.attr_name.txt = "lint.allow" ->
              ctx.file_allows <- allows_of_attrs [ a ] :: ctx.file_allows
          | _ -> ())
        structure;
      prepass ctx structure;
      let it = main_iterator ctx in
      it.structure it structure;
      List.sort Finding.compare ctx.findings
  | exception exn ->
      let line, col =
        match exn with
        | Syntaxerr.Error err ->
            let loc = Syntaxerr.location_of_error err in
            (loc.loc_start.pos_lnum, loc.loc_start.pos_cnum - loc.loc_start.pos_bol)
        | _ -> (1, 0)
      in
      [
        {
          Finding.file;
          line;
          col;
          rule = r_parse;
          severity = Finding.Error;
          message = "source does not parse: " ^ Printexc.to_string exn;
        };
      ]

let lint_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let source = really_input_string ic len in
  close_in ic;
  lint_string ~filename:path source

let rec collect_into acc path =
  if Sys.is_directory path then
    Array.fold_left
      (fun acc entry ->
        if entry = "" || entry.[0] = '.' || entry = "_build" then acc
        else collect_into acc (Filename.concat path entry))
      acc (Sys.readdir path)
  else if Filename.check_suffix path ".ml" then path :: acc
  else acc

let collect_files paths =
  List.sort String.compare
    (List.fold_left collect_into [] (List.map normalize_path paths))

let lint_paths paths =
  collect_files paths
  |> List.concat_map lint_file
  |> List.sort Finding.compare
