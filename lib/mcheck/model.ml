module Engine = Raftpax_sim.Engine
module Net = Raftpax_sim.Net
module Topology = Raftpax_sim.Topology
module C = Raftpax_consensus
module Types = C.Types
module Cluster = Raftpax_nemesis.Cluster
module Lin_check = Raftpax_kvstore.Lin_check

(* ---- choices ---- *)

type choice =
  | Deliver of int * int  (** pop and run the (src, dst) link's FIFO head *)
  | Fire of int * string * int
      (** fire the [k]-th live pending timer named (node, label) *)
  | Crash of int
  | Restart of int

let render_choice = function
  | Deliver (s, d) -> Printf.sprintf "d:%d>%d" s d
  | Fire (n, l, k) -> Printf.sprintf "t:%d:%s:%d" n l k
  | Crash n -> Printf.sprintf "c:%d" n
  | Restart n -> Printf.sprintf "r:%d" n

let render_schedule cs = String.concat " " (List.map render_choice cs)

let parse_choice s =
  match String.split_on_char ':' s with
  | [ "d"; link ] -> (
      match String.split_on_char '>' link with
      | [ a; b ] -> Some (Deliver (int_of_string a, int_of_string b))
      | _ -> None)
  | [ "t"; n; l; k ] -> Some (Fire (int_of_string n, l, int_of_string k))
  | [ "c"; n ] -> Some (Crash (int_of_string n))
  | [ "r"; n ] -> Some (Restart (int_of_string n))
  | _ -> None

let parse_schedule s =
  s |> String.split_on_char ' '
  |> List.filter (fun tok -> tok <> "")
  |> List.map (fun tok ->
         match parse_choice tok with
         | Some c -> c
         | None -> invalid_arg (Printf.sprintf "bad schedule token %S" tok))

(* ---- the world: one concrete execution under checker control ---- *)

type msg = { info : string; deliver : unit -> unit }

type t = {
  engine : Engine.t;
  net : Net.t;
  cluster : Cluster.t;
  n : int;
  queues : msg Queue.t array array;  (* [src].(dst), FIFO per link *)
  ops : Types.op array;
  targets : int array;
  mutable submitted : int;
  mutable acked : int;
  mutable oracle_failure : string option;
  last_acked_write : (int, int) Hashtbl.t;  (* key -> write_id *)
  mutable events : Lin_check.event list;  (* newest first *)
  fire_allowed : node:int -> label:string -> bool;
  mutable timers_fired : int;
  mutable crashes : int;
}

type scenario = {
  sc_name : string;
  sc_protocol : Cluster.protocol;
  sc_ops : Types.op list;
  sc_targets : int list;
  sc_nodes : int;
  sc_timer_budget : int;
  sc_crash_budget : int;
  sc_raft_config : C.Raft.config option;
  sc_mencius_config : C.Mencius.config option;
  sc_multipaxos_config : C.Multipaxos.config option;
  sc_fire_filter : (node:int -> label:string -> bool) option;
  sc_policy : (t -> choice option) option;
}

let ncmds w = Array.length w.ops

(* Submissions are driven closed-loop: command [i + 1] goes in only when
   command [i]'s reply arrives, so the goal "all commands acknowledged"
   is meaningful and the reachable space stays small.  The reply is also
   the read oracle's check point: a Get must observe at least the last
   write this serial client saw acknowledged for its key — the
   monotonic-read face of linearizability that the PQL lease path could
   break without the commit-wait. *)
let rec submit_next w =
  if w.submitted < ncmds w && w.oracle_failure = None then begin
    let i = w.submitted in
    w.submitted <- i + 1;
    let op = w.ops.(i) in
    let expected =
      match op with
      | Types.Get { key } -> Hashtbl.find_opt w.last_acked_write key
      | Types.Put _ -> None
    in
    let started_us = Engine.now w.engine in
    w.cluster.Cluster.submit ~node:w.targets.(i) op (fun reply ->
        (match op with
        | Types.Put { key; write_id; _ } ->
            w.events <-
              Lin_check.Write_complete
                { write_id; key; at_us = Engine.now w.engine }
              :: w.events
        | Types.Get { key } ->
            w.events <-
              Lin_check.Read { key; started_us; returned = reply.Types.value }
              :: w.events);
        (match (op, expected) with
        | Types.Put { key; write_id; _ }, _ ->
            Hashtbl.replace w.last_acked_write key write_id
        | Types.Get { key }, Some e -> (
            match reply.Types.value with
            | Some got when got >= e -> ()
            | got ->
                w.oracle_failure <-
                  Some
                    (Printf.sprintf
                       "stale read: Get k=%d returned %s, expected >= w%d" key
                       (match got with
                       | Some g -> Printf.sprintf "w%d" g
                       | None -> "nothing")
                       e))
        | Types.Get _, None -> ());
        w.acked <- w.acked + 1;
        submit_next w)
  end

let build sc =
  let engine = Engine.create ~seed:1L () in
  Engine.set_manual engine true;
  let nodes =
    List.init sc.sc_nodes (fun i ->
        { Net.id = i; site = Topology.site_of_index i })
  in
  let net = Net.create engine ~nodes in
  let n = List.length nodes in
  let queues = Array.init n (fun _ -> Array.init n (fun _ -> Queue.create ())) in
  Net.set_capture net
    (Some
       (fun ~src ~dst ~size:_ ~info deliver ->
         Queue.push { info; deliver } queues.(src).(dst)));
  let cluster =
    Cluster.make ?raft_config:sc.sc_raft_config
      ?mencius_config:sc.sc_mencius_config
      ?multipaxos_config:sc.sc_multipaxos_config sc.sc_protocol net
  in
  Engine.manual_drain engine;
  let w =
    {
      engine;
      net;
      cluster;
      n;
      queues;
      ops = Array.of_list sc.sc_ops;
      targets = Array.of_list sc.sc_targets;
      submitted = 0;
      acked = 0;
      oracle_failure = None;
      last_acked_write = Hashtbl.create 8;
      events = [];
      fire_allowed =
        (match sc.sc_fire_filter with
        | Some f -> f
        | None -> fun ~node:_ ~label:_ -> true);
      timers_fired = 0;
      crashes = 0;
    }
  in
  submit_next w;
  Engine.manual_drain engine;
  w

(* ---- enabled choices ---- *)

(* Pending timers grouped by (node, label): the k in [Fire (node, label,
   k)] indexes into the group in scheduling order, so the name is stable
   under replay even though engine sequence numbers are not part of any
   state the schedule mentions. *)
let pending_groups w =
  let groups = Hashtbl.create 8 in
  let order = ref [] in
  List.iter
    (fun ev ->
      let key = (Engine.event_node ev, Engine.event_label ev) in
      match Hashtbl.find_opt groups key with
      | Some l -> Hashtbl.replace groups key (l @ [ ev ])
      | None ->
          Hashtbl.add groups key [ ev ];
          order := key :: !order)
    (Engine.manual_pending w.engine);
  List.rev_map (fun key -> (key, Hashtbl.find groups key)) !order

let choices ?(timer_budget = 0) ?(crash_budget = 0) w =
  let deliveries = ref [] in
  for src = w.n - 1 downto 0 do
    for dst = w.n - 1 downto 0 do
      if not (Queue.is_empty w.queues.(src).(dst)) then
        deliveries := Deliver (src, dst) :: !deliveries
    done
  done;
  let fires =
    if w.timers_fired >= timer_budget then []
    else
      List.concat_map
        (fun ((node, label), evs) ->
          if node >= 0 && Net.node_down w.net node then []
          else if not (w.fire_allowed ~node ~label) then []
          else List.mapi (fun k _ -> Fire (node, label, k)) evs)
        (pending_groups w)
  in
  let crashes =
    if w.crashes >= crash_budget then []
    else
      List.filter_map
        (fun i -> if Net.node_down w.net i then None else Some (Crash i))
        (List.init w.n Fun.id)
  in
  let restarts =
    List.filter_map
      (fun i -> if Net.node_down w.net i then Some (Restart i) else None)
      (List.init w.n Fun.id)
  in
  !deliveries @ fires @ crashes @ restarts

exception Stuck of string

let apply w choice =
  (match choice with
  | Deliver (src, dst) ->
      let q = w.queues.(src).(dst) in
      if Queue.is_empty q then
        raise (Stuck (Printf.sprintf "empty link %d>%d" src dst));
      let m = Queue.pop q in
      (* A down destination loses the message: delivering into a crash is
         the drop transition, kept explicit so restart-before-delivery
         interleavings are still explored. *)
      if not (Net.node_down w.net dst) then m.deliver ()
  | Fire (node, label, k) -> (
      let group =
        List.assoc_opt (node, label) (pending_groups w) |> Option.value ~default:[]
      in
      match List.nth_opt group k with
      | None ->
          raise
            (Stuck (Printf.sprintf "no pending timer %d:%s:%d" node label k))
      | Some ev ->
          w.timers_fired <- w.timers_fired + 1;
          ignore (Engine.manual_fire w.engine ev))
  | Crash node ->
      if Net.node_down w.net node then
        raise (Stuck (Printf.sprintf "crash of down node %d" node));
      w.crashes <- w.crashes + 1;
      w.cluster.Cluster.crash ~node
  | Restart node ->
      if not (Net.node_down w.net node) then
        raise (Stuck (Printf.sprintf "restart of live node %d" node));
      w.cluster.Cluster.restart ~node);
  Engine.manual_drain w.engine

(* ---- state identity ---- *)

let fingerprint w =
  let buf = Buffer.create 1024 in
  for node = 0 to w.n - 1 do
    Buffer.add_string buf (w.cluster.Cluster.state ~node);
    Buffer.add_char buf '\n'
  done;
  for src = 0 to w.n - 1 do
    for dst = 0 to w.n - 1 do
      if not (Queue.is_empty w.queues.(src).(dst)) then begin
        Buffer.add_string buf (Printf.sprintf "q%d>%d:" src dst);
        Queue.iter
          (fun m ->
            Buffer.add_string buf m.info;
            Buffer.add_char buf ';')
          w.queues.(src).(dst);
        Buffer.add_char buf '\n'
      end
    done
  done;
  let timers =
    List.map
      (fun ev ->
        Printf.sprintf "%d:%s@%d" (Engine.event_node ev)
          (Engine.event_label ev) (Engine.event_time ev))
      (Engine.manual_pending w.engine)
    |> List.sort compare
  in
  Buffer.add_string buf (String.concat "," timers);
  for node = 0 to w.n - 1 do
    Buffer.add_char buf (if Net.node_down w.net node then 'D' else 'U')
  done;
  Buffer.add_string buf
    (Printf.sprintf "|clk%d|s%d|a%d|t%d|c%d" (Engine.now w.engine) w.submitted
       w.acked w.timers_fired w.crashes);
  Digest.to_hex (Digest.string (Buffer.contents buf))

let goal_reached w = w.acked = ncmds w

(* Per-key linearizability audit of the completed operations (see
   {!Raftpax_kvstore.Lin_check}): stronger than the inline oracle in
   that the id a read returned must also be a committed write.  The
   committed order is the longest committed prefix any replica has
   applied — every acknowledged operation has been applied by the
   replica that acknowledged it, and prefix agreement (checked
   separately by the invariant library) makes the longest list a
   superset of the others. *)
let lin_violation w =
  match w.events with
  | [] -> None
  | events -> (
      let committed = ref [] in
      for node = 0 to w.n - 1 do
        let ops = w.cluster.Cluster.committed_ops ~node in
        if List.length ops > List.length !committed then committed := ops
      done;
      let r =
        Lin_check.check ~committed_order:!committed (List.rev events)
      in
      match r.Lin_check.violations with
      | [] -> None
      | v :: _ -> Some (Fmt.str "lin: %a" Lin_check.pp_violation v))

(* First safety problem visible in the current state, if any: the
   client-side read oracle, then the runtime's own invariant library,
   then the linearizability audit. *)
let violation w =
  match w.oracle_failure with
  | Some v -> Some ("oracle: " ^ v)
  | None -> (
      match w.cluster.Cluster.invariant () with
      | Some v -> Some v
      | None -> lin_violation w)

let mono_views w = Array.init w.n (fun node -> w.cluster.Cluster.mono ~node)

let mono_regression ~before ~after =
  let bad = ref None in
  Array.iteri
    (fun node b ->
      let a = after.(node) in
      let common = min (Array.length a) (Array.length b) in
      for i = 0 to common - 1 do
        if !bad = None && a.(i) < b.(i) then
          bad :=
            Some
              (Printf.sprintf
                 "monotonicity: node %d component %d regressed %d -> %d" node
                 i b.(i) a.(i))
      done)
    before;
  !bad

let acked w = w.acked
let timers_fired w = w.timers_fired
let crashes w = w.crashes
let cluster w = w.cluster
let engine w = w.engine
let net w = w.net

let queue_info w ~src ~dst =
  Queue.fold (fun acc m -> m.info :: acc) [] w.queues.(src).(dst) |> List.rev

(* Human-readable rendering of what a choice did, for counterexample
   traces; must be called on the world state *before* the choice runs. *)
let describe w choice =
  match choice with
  | Deliver (src, dst) ->
      let head =
        match Queue.peek_opt w.queues.(src).(dst) with
        | Some m -> m.info
        | None -> "?"
      in
      let lost = if Net.node_down w.net dst then " (lost: dst down)" else "" in
      Printf.sprintf "deliver %d>%d %s%s" src dst head lost
  | Fire (node, label, _) -> Printf.sprintf "fire timer %s at node %d" label node
  | Crash node -> Printf.sprintf "crash node %d" node
  | Restart node -> Printf.sprintf "restart node %d" node
