module Core = Raftpax_core
module V = Core.Value
module State = Core.State
module Spec = Core.Spec
module Proto_config = Core.Proto_config
module C = Raftpax_consensus
module Cluster = Raftpax_nemesis.Cluster

(* Implementation-refines-spec at small scope: every transition of the
   Raft* runtime must project, through the paper's Figure-3 state
   mapping, to a legal sequence of Spec_multipaxos steps (or a stutter).

   The projection keeps the variables the runtime actually realizes —
   highestBallot (currentTerm), isLeader (role = Leader), logTail and
   logs (entries with their Raft* ballot field) — and abstracts the
   message soup (msgs1a/msgs1b/votes/proposedValues), which the runtime
   represents differently.  A runtime state therefore corresponds to a
   *set* of candidate spec states sharing its core projection, and the
   check is a forward simulation over candidate sets: a transition is
   discharged if some candidate can reach, in at most [max_hops] spec
   steps, a state whose core matches the runtime successor.

   Scope (see {!Scenario.refinement} and DESIGN.md): bootstrap leader,
   zero fault budgets.  Runtime elections are out of scope — the spec's
   Phase1b requires [bal > highestBallot], so the acceptor that raised
   its own ballot can never answer its own prepare, while
   [BecomeLeader] only accepts quorums containing the candidate; the
   runtime candidate, by contrast, votes for itself.  The spec-level
   Raft* => MultiPaxos refinement covers elections because both specs
   share that initiator-never-leads structure; at runtime the
   correspondence holds on the replication path, which is what this
   checker walks. *)

type failure = {
  f_schedule : Model.choice list;
  f_choice : Model.choice;
  f_core : string;  (** unreachable target projection *)
}

type result = {
  r_ok : bool;
  r_runtime_states : int;
  r_checked_transitions : int;
  r_spec_states_touched : int;
  r_failure : failure option;
}

(* ---- the core projection ---- *)

let value_of_cmd = function None -> 1 (* noop *) | Some id -> id + 2

let core_of_peeks (peeks : C.Raft.peek array) cfg =
  let buf = Buffer.create 256 in
  Array.iteri
    (fun a (pk : C.Raft.peek) ->
      Buffer.add_string buf
        (Printf.sprintf "a%d:hb%d,l%b,tail%d,[" a pk.C.Raft.pk_term
           pk.C.Raft.pk_is_leader
           (List.length pk.C.Raft.pk_log - 1));
      List.iteri
        (fun i (e : C.Raft.peek_entry) ->
          if i <= cfg.Proto_config.max_index then
            Buffer.add_string buf
              (Printf.sprintf "(%d,%d);" e.C.Raft.pe_ballot
                 (value_of_cmd e.C.Raft.pe_cmd)))
        pk.C.Raft.pk_log;
      Buffer.add_string buf "] ")
    peeks;
  Buffer.contents buf

let core_of_state cfg s =
  let buf = Buffer.create 256 in
  List.iter
    (fun a ->
      let hb = V.to_int (V.get (State.get s "highestBallot") (V.int a)) in
      let l = V.to_bool (V.get (State.get s "isLeader") (V.int a)) in
      let tail = V.to_int (V.get (State.get s "logTail") (V.int a)) in
      let log = V.get (State.get s "logs") (V.int a) in
      Buffer.add_string buf (Printf.sprintf "a%d:hb%d,l%b,tail%d,[" a hb l tail);
      List.iter
        (fun i ->
          match V.to_tuple (V.get log (V.int i)) with
          | [ b; v ] when V.to_int b >= 0 && i <= tail ->
              Buffer.add_string buf
                (Printf.sprintf "(%d,%s);" (V.to_int b) (V.to_string v))
          | _ -> ())
        (Proto_config.indexes cfg);
      Buffer.add_string buf "] ")
    (Proto_config.acceptor_ids cfg);
  Buffer.contents buf

let runtime_core cfg w =
  match (Model.cluster w).Cluster.raft_peek with
  | None -> invalid_arg "Refine: not a Raft-family cluster"
  | Some peek ->
      core_of_peeks
        (Array.init (Model.cluster w).Cluster.n (fun node -> peek ~node))
        cfg

(* ---- spec-side search ---- *)

module SSet = Set.Make (struct
  type t = State.t

  let compare = State.compare
end)

let state_key s =
  String.concat "|"
    (List.map (fun (v, x) -> v ^ "=" ^ V.to_string x) (State.to_list s))

(* All spec states within [max_hops] steps of [from] whose core matches
   [core]; intermediate states may project anywhere (the runtime batches
   several spec steps into one handler).  Memoized: the same candidate
   is asked about the same target over and over across runtime paths. *)
let reach_matching spec cfg ~memo ~touched ~max_hops ~core from =
  let key = (state_key from, core) in
  match Hashtbl.find_opt memo key with
  | Some r -> r
  | None ->
      let visited = Hashtbl.create 64 in
      let matches = ref SSet.empty in
      let frontier = Queue.create () in
      Hashtbl.replace visited (state_key from) ();
      Queue.push (from, 0) frontier;
      while not (Queue.is_empty frontier) do
        let s, d = Queue.pop frontier in
        incr touched;
        if core_of_state cfg s = core then matches := SSet.add s !matches;
        if d < max_hops then
          List.iter
            (fun (_, _, s') ->
              let k = state_key s' in
              if not (Hashtbl.mem visited k) then begin
                Hashtbl.replace visited k ();
                Queue.push (s', d + 1) frontier
              end)
            (Spec.successors spec s)
      done;
      Hashtbl.replace memo key !matches;
      !matches

(* ---- bootstrap ---- *)

(* The runtime boots with node 0 already elected at term 1 holding the
   noop entry; the spec must earn that state.  The discharge is the
   directed seven-step opening in which node 1 *initiates* the election
   node 0 wins (the only shape the spec allows — see the module
   comment): IncreaseHighestBallot(1), Phase1a(1), Phase1b(0),
   Phase1b(2), BecomeLeader(0, {0,2}), then Propose and Accept of the
   noop at index 0. *)
let bootstrap_steps =
  [
    ("IncreaseHighestBallot", "a=1,b=1");
    ("Phase1a", "a=1");
    ("Phase1b", "a=0,b=1");
    ("Phase1b", "a=2,b=1");
    ("BecomeLeader", "a=0,q=02");
    ("Propose", "a=0,i=0,v=1");
    ("Accept", "a=0,i=0,b=1,v=1");
  ]

let bootstrap spec init =
  List.fold_left
    (fun s (action, label) ->
      match
        List.find_opt
          (fun (a, l, _) -> a = action && l = label)
          (Spec.successors spec s)
      with
      | Some (_, _, s') -> s'
      | None ->
          invalid_arg
            (Printf.sprintf "Refine: bootstrap step %s(%s) not enabled" action
               label))
    init bootstrap_steps

(* ---- the product exploration ---- *)

let check ?(max_hops = 4) ?(max_states = 20_000) () =
  let sc = Scenario.refinement () in
  let ncmds = List.length sc.Model.sc_ops in
  let cfg =
    {
      Proto_config.acceptors = 3;
      values = 1 + ncmds;  (* noop plus one per command *)
      max_ballot = 1;
      max_index = ncmds;  (* noop at 0, one slot per command *)
    }
  in
  let spec = Core.Spec_multipaxos.spec cfg in
  let memo = Hashtbl.create 256 in
  let touched = ref 0 in
  let checked = ref 0 in
  let states = ref 0 in
  let failure = ref None in
  let w0 = Model.build sc in
  let core0 = runtime_core cfg w0 in
  let s0 = bootstrap spec (List.hd spec.Spec.init) in
  if core_of_state cfg s0 <> core0 then
    invalid_arg
      (Printf.sprintf
         "Refine: bootstrap projection mismatch@ spec=%s@ runtime=%s"
         (core_of_state cfg s0) core0);
  (* visited: runtime fingerprint -> candidate sets already explored
     there.  Candidate sets from different paths to the same runtime
     state must NOT be unioned (the simulation is per-path); instead a
     new set is skipped only when some explored set subsumes it. *)
  let visited : (string, SSet.t list) Hashtbl.t = Hashtbl.create 256 in
  let subsumed fp cands =
    match Hashtbl.find_opt visited fp with
    | None -> false
    | Some sets -> List.exists (fun s -> SSet.subset cands s) sets
  in
  let remember fp cands =
    let sets = Option.value ~default:[] (Hashtbl.find_opt visited fp) in
    Hashtbl.replace visited fp (cands :: sets)
  in
  let replay rev_suffix =
    let w = Model.build sc in
    List.iter (Model.apply w) (List.rev rev_suffix);
    w
  in
  let frontier = Queue.create () in
  remember (Model.fingerprint w0) (SSet.singleton s0);
  incr states;
  Queue.push ([], SSet.singleton s0) frontier;
  while !failure = None && not (Queue.is_empty frontier) && !states < max_states
  do
    let rev_suffix, cands = Queue.pop frontier in
    let w = replay rev_suffix in
    let cs = Model.choices w in
    List.iter
      (fun c ->
        if !failure = None then begin
          let w' = replay rev_suffix in
          Model.apply w' c;
          incr checked;
          let core' = runtime_core cfg w' in
          let cands' =
            SSet.fold
              (fun s acc ->
                SSet.union acc
                  (reach_matching spec cfg ~memo ~touched ~max_hops ~core:core'
                     s))
              cands SSet.empty
          in
          if SSet.is_empty cands' then
            failure :=
              Some
                {
                  f_schedule = List.rev (c :: rev_suffix);
                  f_choice = c;
                  f_core = core';
                }
          else begin
            let fp = Model.fingerprint w' in
            if not (subsumed fp cands') then begin
              remember fp cands';
              incr states;
              Queue.push (c :: rev_suffix, cands') frontier
            end
          end
        end)
      cs
  done;
  {
    r_ok = !failure = None;
    r_runtime_states = !states;
    r_checked_transitions = !checked;
    r_spec_states_touched = !touched;
    r_failure = !failure;
  }

let pp_result ppf r =
  match r.r_failure with
  | None ->
      Fmt.pf ppf
        "refinement ok: %d runtime states, %d transitions discharged, %d spec \
         states searched"
        r.r_runtime_states r.r_checked_transitions r.r_spec_states_touched
  | Some f ->
      Fmt.pf ppf
        "@[<v>refinement FAILS: no spec path matches the runtime \
         projection@,after: %s@,on: %s@,target core: %s@]"
        (Model.render_schedule f.f_schedule)
        (Model.render_choice f.f_choice) f.f_core
