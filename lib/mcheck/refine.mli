(** Implementation-refines-spec: the Raft* runtime against the paper's
    MultiPaxos TLA+ transcription ({!Raftpax_core.Spec_multipaxos}).

    Every transition of the {!Scenario.refinement} runtime scope must
    project — via the Figure-3 state mapping (currentTerm =>
    highestBallot, role = Leader => isLeader, log length =>
    logTail + 1, entries with their Raft* ballot => logs) — to a legal
    sequence of at most [max_hops] spec steps, or be a stutter (the
    projection unchanged).  Because the runtime and the spec represent
    in-flight messages differently, a runtime state is tracked against a
    {e set} of candidate spec states sharing its projection, and the
    check is a forward simulation over candidate sets (no unioning
    across distinct runtime paths; subsumed sets are pruned).

    The runtime's bootstrap (a pre-elected leader at term 1 holding the
    noop) is discharged by a directed spec opening in which another
    acceptor initiates the election the leader wins — the only shape the
    spec permits, since [Phase1b] requires [bal > highestBallot] and so
    the initiating acceptor can never answer its own prepare.  For the
    same reason runtime elections (where candidates vote for themselves)
    cannot be discharged at this level and stay out of scope; see
    DESIGN.md. *)

type failure = {
  f_schedule : Model.choice list;  (** shortest path to the bad transition *)
  f_choice : Model.choice;  (** the transition no spec path matches *)
  f_core : string;  (** the unreachable target projection *)
}

type result = {
  r_ok : bool;
  r_runtime_states : int;
  r_checked_transitions : int;
  r_spec_states_touched : int;  (** spec-side BFS work, cache misses only *)
  r_failure : failure option;
}

val check : ?max_hops:int -> ?max_states:int -> unit -> result
(** Exhaustive at the {!Scenario.refinement} scope; [max_hops] bounds
    how many spec steps one runtime transition may batch (default 4: a
    follower append discharges as Propose plus per-entry Accepts). *)

val pp_result : Format.formatter -> result -> unit
