(** The scenario library: small-scope checking configurations over the
    real runtimes.

    Clean scenarios ({!steady}, {!crash}) are explored exhaustively and
    must end with [complete = true], the goal reached and no violation.
    The mutation scenarios re-arm two bugs the fault-injection PR fixed
    (behind test-only config flags) and script the world into the
    triggering region with a policy prefix; the checker must detect the
    mutant — by invariant violation (Mencius slot reuse) or by goal
    unreachability under a complete search (MultiPaxos takeover). *)

val steady : Raftpax_nemesis.Cluster.protocol -> Model.scenario
(** Write then read the same key at two replicas; one timer fire, no
    crashes. *)

val crash : Raftpax_nemesis.Cluster.protocol -> Model.scenario
(** {!steady} plus one crash anywhere and a second timer fire. *)

val steady_sym : Raftpax_nemesis.Cluster.protocol -> Model.scenario
(** {!steady} with both commands at the bootstrap leader and
    [sc_symmetry = [1; 2]]: the followers are interchangeable, so the
    checker explores one representative per follower-swap orbit.  Only
    meaningful for the protocols in {!sym_protocols}. *)

val steady_sym_off : Raftpax_nemesis.Cluster.protocol -> Model.scenario
(** The same scope with the reduction disabled — the baseline for
    asserting the quotient shrinks the visited set with identical
    verdicts. *)

val batchify : Model.scenario -> Model.scenario
(** Arm leader-side command batching (batch size 2, 1 us flush delay) on
    a scope: the flush timer and batch accumulators join the choice set
    and fingerprint, and the checker must reach exactly the unbatched
    scope's verdicts — batching is non-mutating (paper Section 4). *)

val steady_batched : Raftpax_nemesis.Cluster.protocol -> Model.scenario

val steady_sym_batched : Raftpax_nemesis.Cluster.protocol -> Model.scenario
(** {!steady_sym} with batching armed; [batchify] keeps the batched ops
    routed through the bootstrap leader so the follower-swap quotient
    stays sound. *)

val crash_batched : Raftpax_nemesis.Cluster.protocol -> Model.scenario

val sym_protocols : Raftpax_nemesis.Cluster.protocol list
(** Protocols whose node ids are fully renamable (everything but
    Mencius, whose slot ownership is positional). *)

val mencius_slot_reuse : mutant:bool -> unit -> Model.scenario
(** Slot-reuse-after-revocation: the policy forces a revocation of
    node 2's slot 2 into a committed skip while node 2 still holds an
    unprocessed submission; the mutant then proposes into the decided
    slot.  Detection: committed-slot agreement violation. *)

val mp_takeover : mutant:bool -> unit -> Model.scenario
(** Restarted-leader livelock: the policy crash-restarts the bootstrap
    leader between two commands.  Detection: the all-acked goal becomes
    unreachable with the search still complete. *)

val refinement : unit -> Model.scenario
(** The Raft* runtime scope the {!Refine} checker walks (zero fault
    budgets, bootstrap leader). *)

val clean_protocols : Raftpax_nemesis.Cluster.protocol list

val by_name : string -> Model.scenario option
(** CLI lookup: ["steady-<protocol>"], ["steady-sym-<protocol>"],
    ["crash-<protocol>"], their ["-batched"] suffixed variants, the
    mutation scenarios and ["refine-raft-star"].  Scenario values hold
    single-use policy state — look up a fresh one per check. *)

val names : string list
