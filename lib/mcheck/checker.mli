(** Explicit-state exploration of a {!Model.scenario}: TLC-style BFS over
    every message-delivery / timer / crash interleaving at small scope.

    States are deduplicated by {!Model.fingerprint} — since link queues
    are per-link FIFOs, two delivery orders of independent messages reach
    the same fingerprint and the diamond collapses, which is the
    commutative-delivery pruning.  BFS order makes the first
    counterexample (and the first goal hit) shortest.

    Every explored transition is checked against the runtime's invariant
    library, the client read oracle and the per-node monotonicity views;
    the first failure stops the search with a schedule replayable by
    {!narrate} / the CLI's [--replay]. *)

type violation = {
  v_schedule : Model.choice list;  (** shortest failing schedule *)
  v_reason : string;
  v_trace : string list;  (** narrated replay of the schedule *)
}

type result = {
  r_scenario : string;
  r_states : int;  (** distinct states visited *)
  r_transitions : int;
  r_complete : bool;
      (** the frontier was exhausted within [max_states] / [max_depth]:
          together with the scenario budgets this makes "no violation"
          and "goal unreachable" exhaustive verdicts at scope *)
  r_goal_reached : bool;  (** some state acknowledged every command *)
  r_goal_schedule : Model.choice list option;  (** shortest such schedule *)
  r_prefix_len : int;  (** scripted policy prefix length *)
  r_violation : violation option;
}

val ok : result -> bool

val check : ?max_states:int -> ?max_depth:int -> Model.scenario -> result

val compute_prefix : Model.scenario -> Model.choice list
(** The scenario's scripted policy prefix, recorded once. *)

val replay :
  Model.scenario -> Model.choice list -> Model.choice list -> Model.t
(** [replay sc prefix rev_suffix]: fresh world with [prefix] then
    [List.rev rev_suffix] applied. *)

val narrate : Model.scenario -> Model.choice list -> string list
(** Re-execute a schedule on a fresh world, one descriptive line per
    choice plus any safety failure it surfaces. *)

val to_trace : Model.scenario -> Model.choice list -> Raftpax_nemesis.Trace.t
(** The same replay as a nemesis trace ([SCHED] lines, final
    [INVARIANT] line on failure) — the format the fault-injection
    tooling already knows how to diff and fingerprint. *)

val pp_result : Format.formatter -> result -> unit
