(** The model checker's transition system over the {e real} protocol
    runtimes.

    A world is one concrete execution held under checker control: the
    engine is in manual mode (timers are pending {e choices}, not a
    clock), the net is in capture mode (every send lands in a per-link
    FIFO whose head delivery is a choice), and a closed-loop client
    submits the scenario's commands one reply at a time.

    Because runtime state is mutable and closure-captured, a state is
    identified with the choice schedule that reaches it: exploring a
    successor rebuilds a fresh world and replays the prefix, which the
    deterministic simulator makes exact. *)

module Cluster = Raftpax_nemesis.Cluster

(** One atomic transition of the global system. *)
type choice =
  | Deliver of int * int
      (** run the (src, dst) link's FIFO head; if the destination is down
          the message is consumed and lost (the drop transition) *)
  | Fire of int * string * int
      (** fire the [k]-th pending timer named (node, label), advancing
          the virtual clock to its deadline *)
  | Crash of int
  | Restart of int

val render_choice : choice -> string
(** ["d:0>1"], ["t:0:watchdog:0"], ["c:2"], ["r:2"]. *)

val render_schedule : choice list -> string
val parse_choice : string -> choice option

val parse_schedule : string -> choice list
(** Inverse of {!render_schedule}; raises [Invalid_argument] on a bad
    token. *)

type t

(** A checking scenario: the protocol instance, its workload, the fault
    budgets bounding exploration, and an optional scripted policy that
    steers the world into an interesting region before exhaustive
    exploration starts (see {!Scenario}). *)
type scenario = {
  sc_name : string;
  sc_protocol : Cluster.protocol;
  sc_ops : Raftpax_consensus.Types.op list;
  sc_targets : int list;  (** submission node of each command, in order *)
  sc_nodes : int;
  sc_timer_budget : int;  (** max timer fires during exploration *)
  sc_crash_budget : int;  (** max crashes during exploration *)
  sc_raft_config : Raftpax_consensus.Raft.config option;
  sc_mencius_config : Raftpax_consensus.Mencius.config option;
  sc_multipaxos_config : Raftpax_consensus.Multipaxos.config option;
  sc_fire_filter : (node:int -> label:string -> bool) option;
      (** restricts which pending timers exploration may fire (policies
          are exempt).  [None] allows all.  Used to keep election
          cascades out of scopes that are about replication — one
          election fire opens a whole protocol's worth of extra
          interleavings. *)
  sc_policy : (t -> choice option) option;
      (** called repeatedly on a fresh world until it returns [None]; the
          produced choices become the recorded scripted prefix.  Single
          use — construct a fresh scenario per check. *)
  sc_symmetry : int list;
      (** node ids the scenario treats interchangeably: {!fingerprint}
          canonicalizes states under every permutation of these ids, so
          one representative per symmetry orbit is explored.  Sound only
          if the scenario itself cannot tell the listed nodes apart —
          submission targets, fire filters and policies must be invariant
          under the permutations (and the protocol must not bake node
          ids into non-renamable structure, which rules out Mencius slot
          ownership).  [[]] disables the reduction. *)
}

val build : scenario -> t
(** Fresh world at the initial state: cluster started, command 0
    submitted (its client hop is a queued message, so processing it is
    already a choice). *)

val choices : ?timer_budget:int -> ?crash_budget:int -> t -> choice list
(** Enabled choices, in deterministic order (deliveries, then timer
    fires, crashes, restarts).  Budgets are compared against the world's
    consumed counts, so pass the scenario budgets unchanged on every
    call. *)

exception Stuck of string
(** Raised by {!apply} when a choice is not enabled — schedules produced
    by the checker never trigger it; hand-edited ones can. *)

val apply : t -> choice -> unit
(** Run one choice and drain the resulting synchronous cascade (CPU
    completions, captured sends) back to quiescence. *)

val fingerprint : t -> string
(** Canonical digest of the global state: every replica's [dump_state],
    every link queue's message renderings, the pending-timer multiset,
    down flags, the clock and the client's progress counters.  With a
    nonempty [sc_symmetry] the digest is the minimum over the node-id
    permutation group, with every node-id-valued field (including
    MultiPaxos ballots, which encode proposer ids) renamed consistently
    — states equal up to a permutation of the symmetric nodes collapse
    to one visited-set key. *)

val goal_reached : t -> bool
(** Every scenario command acknowledged. *)

val violation : t -> string option
(** First safety failure visible in this state: the client read oracle,
    else the runtime's cluster-wide invariant library, else the
    {!Raftpax_kvstore.Lin_check} audit of the completed operations
    against the longest applied committed prefix. *)

val mono_views : t -> int array array
val mono_regression : before:int array array -> after:int array array -> string option
(** A per-node monotonicity witness (term/commit/frontier counters must
    never decrease): compares the common prefix pointwise. *)

val describe : t -> choice -> string
(** Render what [choice] would do, for counterexample traces.  Must be
    called before {!apply} (it names the queue head about to run). *)

val ncmds : t -> int
val acked : t -> int
val timers_fired : t -> int
val crashes : t -> int
val cluster : t -> Cluster.t
val engine : t -> Raftpax_sim.Engine.t
val net : t -> Raftpax_sim.Net.t
val queue_info : t -> src:int -> dst:int -> string list
(** Renderings of the messages queued on one link, head first. *)
