module Trace = Raftpax_nemesis.Trace

type violation = {
  v_schedule : Model.choice list;
  v_reason : string;
  v_trace : string list;
}

type result = {
  r_scenario : string;
  r_states : int;
  r_transitions : int;
  r_complete : bool;
  r_goal_reached : bool;
  r_goal_schedule : Model.choice list option;
  r_prefix_len : int;
  r_violation : violation option;
}

let ok r = r.r_violation = None

(* Rebuild a world and replay a schedule.  [rev_suffix] is the BFS
   frontier's reversed cons-list — prefixes share structure, so a
   frontier of thousands of states stays cheap. *)
let replay sc prefix rev_suffix =
  let w = Model.build sc in
  List.iter (Model.apply w) prefix;
  List.iter (Model.apply w) (List.rev rev_suffix);
  w

(* Narrated re-execution of a schedule, for counterexample reports and
   the CLI's --replay.  One line per choice: what ran, then any oracle
   state it produced. *)
let narrate sc schedule =
  let w = Model.build sc in
  let lines = ref [] in
  let note l = lines := l :: !lines in
  List.iter
    (fun c ->
      let what = Model.describe w c in
      Model.apply w c;
      note
        (Printf.sprintf "%-12s %s" (Model.render_choice c) what);
      match Model.violation w with
      | Some v -> note (Printf.sprintf "  !! %s" v)
      | None -> ())
    schedule;
  List.rev !lines

let to_trace sc schedule =
  let t = Trace.create () in
  let w = Model.build sc in
  List.iter
    (fun c ->
      let what = Model.describe w c in
      Model.apply w c;
      Trace.record t ~now:(Raftpax_sim.Engine.now (Model.engine w))
        (Printf.sprintf "SCHED %s %s" (Model.render_choice c) what))
    schedule;
  (match Model.violation w with
  | Some v ->
      Trace.record t ~now:(Raftpax_sim.Engine.now (Model.engine w))
        (Printf.sprintf "INVARIANT %s" v)
  | None -> ());
  t

(* The scripted prefix: run the scenario's policy to quiescence once,
   recording its choices.  Exploration budgets start counting after it,
   so a policy may spend faults freely to reach the interesting region. *)
let compute_prefix sc =
  match sc.Model.sc_policy with
  | None -> []
  | Some policy ->
      let w = Model.build sc in
      let rec go acc =
        match policy w with
        | Some c ->
            Model.apply w c;
            go (c :: acc)
        | None -> List.rev acc
      in
      go []

let check ?(max_states = 200_000) ?(max_depth = 60) sc =
  let prefix = compute_prefix sc in
  let w0 = replay sc prefix [] in
  (* Budgets count from the post-prefix baseline. *)
  let timer_budget = sc.Model.sc_timer_budget + Model.timers_fired w0 in
  let crash_budget = sc.Model.sc_crash_budget + Model.crashes w0 in
  let visited = Hashtbl.create 4096 in
  let frontier = Queue.create () in
  let states = ref 0 in
  let transitions = ref 0 in
  let complete = ref true in
  let goal_schedule = ref None in
  let violation = ref None in
  let record_violation rev_suffix reason =
    let schedule = prefix @ List.rev rev_suffix in
    violation :=
      Some { v_schedule = schedule; v_reason = reason; v_trace = narrate sc schedule }
  in
  (match Model.violation w0 with
  | Some v -> record_violation [] v
  | None -> ());
  Hashtbl.replace visited (Model.fingerprint w0) ();
  incr states;
  if Model.goal_reached w0 then goal_schedule := Some prefix
  else Queue.push ([], 0) frontier;
  while !violation = None && not (Queue.is_empty frontier) do
    let rev_suffix, depth = Queue.pop frontier in
    let w = replay sc prefix rev_suffix in
    let cs = Model.choices ~timer_budget ~crash_budget w in
    if depth >= max_depth && cs <> [] then complete := false
    else
      List.iter
        (fun c ->
          if !violation = None then begin
            let w' = replay sc prefix rev_suffix in
            let before = Model.mono_views w' in
            Model.apply w' c;
            incr transitions;
            let after = Model.mono_views w' in
            match
              match Model.violation w' with
              | Some v -> Some v
              | None -> Model.mono_regression ~before ~after
            with
            | Some v -> record_violation (c :: rev_suffix) v
            | None ->
                let fp = Model.fingerprint w' in
                if not (Hashtbl.mem visited fp) then begin
                  Hashtbl.replace visited fp ();
                  incr states;
                  if Model.goal_reached w' then begin
                    (* BFS order: the first goal hit is (one of) the
                       shortest.  Goal states are not expanded. *)
                    if !goal_schedule = None then
                      goal_schedule := Some (prefix @ List.rev (c :: rev_suffix))
                  end
                  else if !states >= max_states then complete := false
                  else Queue.push (c :: rev_suffix, depth + 1) frontier
                end
          end)
        cs
  done;
  if !violation <> None then complete := false;
  {
    r_scenario = sc.Model.sc_name;
    r_states = !states;
    r_transitions = !transitions;
    r_complete = !complete;
    r_goal_reached = !goal_schedule <> None;
    r_goal_schedule = !goal_schedule;
    r_prefix_len = List.length prefix;
    r_violation = !violation;
  }

let pp_result ppf r =
  match r.r_violation with
  | Some v ->
      Fmt.pf ppf
        "@[<v>%s: VIOLATION after %d states (%d transitions)@,reason: %s@,schedule: %s@,%a@]"
        r.r_scenario r.r_states r.r_transitions v.v_reason
        (Model.render_schedule v.v_schedule)
        Fmt.(list ~sep:cut string)
        v.v_trace
  | None ->
      Fmt.pf ppf "%s: ok states=%d transitions=%d complete=%b goal=%b%s"
        r.r_scenario r.r_states r.r_transitions r.r_complete r.r_goal_reached
        (match r.r_goal_schedule with
        | Some s ->
            Printf.sprintf " goal_depth=%d" (List.length s - r.r_prefix_len)
        | None -> "")
