module C = Raftpax_consensus
module Types = C.Types
module Net = Raftpax_sim.Net
module Cluster = Raftpax_nemesis.Cluster

let put key write_id = Types.Put { key; size = 8; write_id }
let get key = Types.Get { key }

(* Exploration needs path-independent timer deadlines: the election
   jitter draw advances a per-server RNG on every timer reset, so two
   interleavings reaching the same logical state would carry different
   pending deadlines and never merge in the visited set.  Collapsing the
   jitter window to a point makes the draw always return 0 without
   touching the runtime code. *)
let det_params =
  {
    Types.default_params with
    election_timeout_max_us = Types.default_params.election_timeout_min_us;
  }

let raft_config_for = function
  | Cluster.Raft -> Some { (C.Raft.raft ~leader:0 ()) with params = det_params }
  | Cluster.Raft_star ->
      Some { (C.Raft.raft_star ~leader:0 ()) with params = det_params }
  | Cluster.Raft_pql ->
      Some { (C.Raft.raft_pql ~leader:0 ()) with params = det_params }
  | Cluster.Mencius | Cluster.Multipaxos -> None

(* Steady (crash-free) Raft scopes are about the replication and read
   paths.  Firing an election timer there opens a full election's worth
   of extra interleavings (candidate, votes, possible new leader), and a
   lease fire opens the whole grant/renewal conversation; either
   multiplies the space a hundredfold.  Heartbeat fires stay in — they
   interleave retransmission with replication, which is the interesting
   steady-state timing.  The crash scenarios, which are about leader
   loss, allow every timer; so does nemesis, which covers the lease
   paths with the same invariant library as a sanitizer. *)
let steady_fire_filter = function
  | Cluster.Raft | Cluster.Raft_star | Cluster.Raft_pql ->
      Some (fun ~node:_ ~label -> label = "heartbeat")
  | Cluster.Mencius | Cluster.Multipaxos -> None

let base ?fire_filter ?(symmetry = []) name protocol ~ops ~targets
    ~timer_budget ~crash_budget =
  {
    Model.sc_name = name;
    sc_protocol = protocol;
    sc_ops = ops;
    sc_targets = targets;
    sc_nodes = 3;
    sc_timer_budget = timer_budget;
    sc_crash_budget = crash_budget;
    sc_raft_config = raft_config_for protocol;
    sc_mencius_config = None;
    sc_multipaxos_config = None;
    sc_fire_filter = fire_filter;
    sc_policy = None;
    sc_symmetry = symmetry;
  }

(* ---- policy helpers ---- *)

(* First nonempty link in (src, dst) order whose delivery the policy
   allows.  Policies steer by withholding links, never by inventing
   choices the model would not offer. *)
let next_delivery ?(blocked = fun ~src:_ ~dst:_ -> false) w =
  let n = (Model.cluster w).Cluster.n in
  let found = ref None in
  for src = n - 1 downto 0 do
    for dst = n - 1 downto 0 do
      if
        Model.queue_info w ~src ~dst <> []
        && not (blocked ~src ~dst)
      then found := Some (Model.Deliver (src, dst))
    done
  done;
  !found

let dump_has_token w ~node tok =
  let dump = (Model.cluster w).Cluster.dump ~node in
  List.mem tok (String.split_on_char ' ' dump)

(* ---- clean scenarios ---- *)

(* A write then a read of the same key, submitted at two different
   replicas: exercises replication, forwarding, commit, the reply path
   and (under PQL) the lease-grant and commit-waited local read.  One
   timer fire lets heartbeats / watchdogs / lease renewals interleave
   anywhere. *)
let steady protocol =
  let name =
    Printf.sprintf "steady-%s"
      (String.lowercase_ascii (Cluster.protocol_name protocol))
  in
  base ?fire_filter:(steady_fire_filter protocol) name protocol
    ~ops:[ put 11 1; get 11 ]
    ~targets:[ 0; 1 ] ~timer_budget:1 ~crash_budget:0

(* The symmetry variant routes the whole workload through the bootstrap
   leader, which makes the two followers indistinguishable: nothing in
   the scenario (targets, fire filter, budgets) mentions node 1 or 2
   individually, so states that differ only by swapping the followers'
   roles are one orbit and {!Model.fingerprint} collapses them.  Mencius
   is excluded — its slot ownership ([inst mod n]) bakes node ids into
   slot numbers, so no renaming of follower state can be faithful. *)
let steady_sym protocol =
  let name =
    Printf.sprintf "steady-sym-%s"
      (String.lowercase_ascii (Cluster.protocol_name protocol))
  in
  base
    ?fire_filter:(steady_fire_filter protocol)
    ~symmetry:[ 1; 2 ] name protocol
    ~ops:[ put 11 1; get 11 ]
    ~targets:[ 0; 0 ] ~timer_budget:1 ~crash_budget:0

(* Same scope with the reduction off, for the test that asserts the
   quotient shrinks the visited set without changing any verdict. *)
let steady_sym_off protocol =
  { (steady_sym protocol) with Model.sc_symmetry = [] }

let sym_protocols =
  [ Cluster.Raft; Cluster.Raft_star; Cluster.Raft_pql; Cluster.Multipaxos ]

(* The crash variant adds one crash anywhere plus restarts; with two
   timer fires an election can complete after a leader crash. *)
let crash protocol =
  let name =
    Printf.sprintf "crash-%s"
      (String.lowercase_ascii (Cluster.protocol_name protocol))
  in
  base name protocol
    ~ops:[ put 11 1; get 11 ]
    ~targets:[ 0; 1 ] ~timer_budget:2 ~crash_budget:1

(* ---- batched variants ---- *)

(* The same scopes with leader-side command batching armed (batch size 2,
   1 us flush delay): batching is the paper's Section-4 non-mutating
   optimization, so the checker must reach exactly the verdicts of the
   unbatched scope while the flush timer and the batch accumulators join
   the choice set and the state fingerprint.

   Batching only touches the write path, so the batched scopes replace
   the read with a second write — two puts submitted at two replicas —
   and steady scopes narrow the fire filter to the flush timers alone:
   heartbeat/watchdog/lease interleavings are the unbatched scopes' job,
   and admitting them under the larger budget multiplies the space
   without testing anything batching-specific.  The model submits ops
   sequentially (the next only after the previous ack), so every command
   is a lone size-2 batch that ships only when its flush timer fires:
   the timer budget grows by one fire per op.  Crash scopes admit the
   flush timers plus the protocol's failure-recovery timer (Raft's
   election, Mencius'/MultiPaxos' watchdog) so leader loss, recovery and
   batched replication interleave, and carry a single write — the
   crash/restart/recovery choices widen every search layer so much that
   a two-op goal sits beyond any sane state bound; one op still drives a
   crash into an armed accumulator and a flush after recovery.  They are
   bounded hunts, not exhaustive proofs.

   PQL is the exception in the crash scope: its quorum-lease handshake
   puts the write's ack several message rounds deeper than the other
   protocols', beyond what a blind bounded search reaches.  A policy
   prefix commits the batched write deterministically (greedy delivery,
   firing the flush timer when the batch is all that's left), then hands
   the post-commit state to exploration for the crash/recovery hunt. *)
let batchify sc =
  let batch (p : Types.params) = { p with batch_size = 2; batch_delay_us = 1 } in
  let protocol = sc.Model.sc_protocol in
  {
    sc with
    Model.sc_name = sc.Model.sc_name ^ "-batched";
    sc_ops =
      (if sc.Model.sc_crash_budget = 0 then [ put 11 1; put 12 2 ]
       else [ put 11 1 ]);
    sc_targets =
      (* Symmetry scopes route every op through the bootstrap leader:
         a target of 1 would distinguish the followers and break the
         orbit argument that makes the reduction sound. *)
      (if sc.Model.sc_crash_budget > 0 then [ 0 ]
       else if sc.Model.sc_symmetry <> [] then [ 0; 0 ]
       else [ 0; 1 ]);
    sc_timer_budget =
      (sc.Model.sc_timer_budget + if sc.Model.sc_crash_budget = 0 then 2 else 1);
    sc_raft_config =
      Option.map
        (fun (c : C.Raft.config) -> { c with params = batch c.params })
        sc.Model.sc_raft_config;
    sc_mencius_config =
      (match protocol with
      | Cluster.Mencius ->
          let c = C.Mencius.default_config in
          Some { c with params = batch c.C.Mencius.params }
      | _ -> sc.Model.sc_mencius_config);
    sc_multipaxos_config =
      (match protocol with
      | Cluster.Multipaxos ->
          let c = C.Multipaxos.default_config in
          Some { c with params = batch c.C.Multipaxos.params }
      | _ -> sc.Model.sc_multipaxos_config);
    sc_fire_filter =
      (if sc.Model.sc_crash_budget = 0 then
         Some (fun ~node:_ ~label -> label = "flush")
       else
         let recovery =
           match protocol with
           | Cluster.Raft | Cluster.Raft_star | Cluster.Raft_pql -> "election"
           | Cluster.Mencius | Cluster.Multipaxos -> "watchdog"
         in
         Some (fun ~node:_ ~label -> label = "flush" || label = recovery));
    sc_policy =
      (if sc.Model.sc_crash_budget > 0 && protocol = Cluster.Raft_pql then (
         (* Stop BEFORE the goal: a prefix that already acks the write
            would short-circuit the checker's exploration entirely.
            Drain the lease-establishment traffic, put the batched
            append on the wire, then hand over to the search. *)
         let fired = ref false in
         Some
           (fun w ->
             if !fired then None
             else
               match next_delivery w with
               | Some d -> Some d
               | None ->
                   fired := true;
                   Some (Model.Fire (0, "flush", 0))))
       else sc.Model.sc_policy);
  }

let steady_batched protocol = batchify (steady protocol)
let steady_sym_batched protocol = batchify (steady_sym protocol)
let crash_batched protocol = batchify (crash protocol)

(* ---- mutation smoke scenarios ---- *)

(* Mencius slot reuse after revocation (the PR-1 bug, re-armed by
   [bug_slot_reuse]).  The scripted policy steers into the triggering
   region: node 2's slot 2 gets revoked into a committed skip while
   node 2 still has a command waiting in its inbox.  Route:

   - A@0, B@1 commit normally; C@1 lands in slot 4 but its append to
     node 2 is withheld (the (1,2) link is blocked after the two
     messages B needed), so every commit frontier stalls at slot 2;
   - D's submission at node 2 is withheld entirely (the (2,2) link);
   - node 0's watchdog fires twice: the first arms the stall detector,
     the second starts a revocation of slot 2; nobody saw a value, so
     the majority answer forces slot 2 to a committed skip everywhere.

   Exploration then delivers D's submission: the clean runtime advances
   [next_own] past the decided slot and proposes D at slot 5; the mutant
   proposes D straight into the committed skip, and the committed-slot
   agreement invariant fails within one choice. *)
let mencius_slot_reuse ~mutant () =
  let delivered_12 = ref 0 in
  let fires = ref 0 in
  let blocked ~src ~dst =
    (src = 2 && dst = 2) || (src = 1 && dst = 2 && !delivered_12 >= 2)
  in
  let policy w =
    match next_delivery ~blocked w with
    | Some (Model.Deliver (1, 2) as d) ->
        incr delivered_12;
        Some d
    | Some d -> Some d
    | None ->
        if dump_has_token w ~node:2 "2:S" then None
        else if !fires < 6 then begin
          incr fires;
          Some (Model.Fire (0, "watchdog", 0))
        end
        else None
  in
  {
    (base
       (if mutant then "mencius-slot-reuse" else "mencius-slot-reuse-clean")
       Cluster.Mencius
       ~ops:[ put 11 1; put 12 2; put 13 3; put 14 4 ]
       ~targets:[ 0; 1; 1; 2 ] ~timer_budget:1 ~crash_budget:0)
    with
    sc_mencius_config =
      Some { C.Mencius.default_config with bug_slot_reuse = mutant };
    sc_policy = Some policy;
  }

(* MultiPaxos missing takeover from a restarted leader (the PR-1 bug,
   re-armed by [bug_no_takeover_after_restart]).  The policy commits one
   command, then crash-restarts the bootstrap leader, which comes back
   live but demoted — the cluster is leaderless with nobody down.  The
   second command, submitted at node 1, can only commit if node 0's
   watchdog notices the demoted leader and re-runs Phase 1.  The clean
   runtime reaches the all-acked goal; under the mutant the watchdog
   only reacts to a *down* leader, the forward loop collapses into a
   fingerprint cycle, and the goal is unreachable with [complete]
   still true — which is the detection. *)
let mp_takeover ~mutant () =
  let crashed = ref false in
  let policy w =
    if Model.acked w < 1 then next_delivery w
    else
      match next_delivery ~blocked:(fun ~src ~dst -> src = 1 && dst = 1) w with
      | Some d -> Some d
      | None ->
          if not !crashed then begin
            crashed := true;
            Some (Model.Crash 0)
          end
          else if Net.node_down (Model.net w) 0 then Some (Model.Restart 0)
          else None
  in
  {
    (base
       (if mutant then "mp-takeover" else "mp-takeover-clean")
       Cluster.Multipaxos
       ~ops:[ put 11 1; put 12 2 ]
       ~targets:[ 0; 1 ] ~timer_budget:2 ~crash_budget:0)
    with
    sc_multipaxos_config =
      Some
        {
          C.Multipaxos.default_config with
          bug_no_takeover_after_restart = mutant;
        };
    sc_policy = Some policy;
  }

(* ---- refinement scope ---- *)

(* The runtime exploration the refinement checker walks: Raft* with the
   bootstrap leader, two writes through both the direct and the
   forwarded path, and zero fault budgets — the scope where every
   runtime transition must project to legal Spec_multipaxos steps (see
   {!Refine} and DESIGN.md for why elections stay out of scope). *)
let refinement () =
  base "refine-raft-star" Cluster.Raft_star
    ~ops:[ put 11 1; put 12 2 ]
    ~targets:[ 0; 1 ] ~timer_budget:0 ~crash_budget:0

(* ---- registry ---- *)

let clean_protocols =
  [
    Cluster.Raft;
    Cluster.Raft_star;
    Cluster.Raft_pql;
    Cluster.Mencius;
    Cluster.Multipaxos;
  ]

let by_name name =
  let rec resolve s =
    match s with
    | "mencius-slot-reuse" -> Some (mencius_slot_reuse ~mutant:true ())
    | "mencius-slot-reuse-clean" -> Some (mencius_slot_reuse ~mutant:false ())
    | "mp-takeover" -> Some (mp_takeover ~mutant:true ())
    | "mp-takeover-clean" -> Some (mp_takeover ~mutant:false ())
    | "refine-raft-star" -> Some (refinement ())
    | s -> (
        let strip prefix =
          if String.length s > String.length prefix
             && String.sub s 0 (String.length prefix) = prefix
          then
            Some (String.sub s (String.length prefix)
                    (String.length s - String.length prefix))
          else None
        in
        let strip_suffix suffix =
          let n = String.length s and m = String.length suffix in
          if n > m && String.sub s (n - m) m = suffix then
            Some (String.sub s 0 (n - m))
          else None
        in
        (* "<steady|crash>-<proto>-batched": resolve the unbatched scope,
           then arm batching on it. *)
        match strip_suffix "-batched" with
        | Some inner
          when Option.is_some (strip "steady-") || Option.is_some (strip "crash-")
          ->
            Option.map batchify (resolve inner)
        | _ -> (
            match strip "steady-sym-" with
            | Some p -> (
                match Cluster.protocol_of_name p with
                | Some proto when List.mem proto sym_protocols ->
                    Some (steady_sym proto)
                | _ -> None)
            | None -> (
                match strip "steady-" with
                | Some p -> Option.map steady (Cluster.protocol_of_name p)
                | None -> (
                    match strip "crash-" with
                    | Some p -> Option.map crash (Cluster.protocol_of_name p)
                    | None -> None))))
  in
  resolve (String.lowercase_ascii name)

let names =
  List.map (fun p -> (steady p).Model.sc_name) clean_protocols
  @ List.map (fun p -> (steady_sym p).Model.sc_name) sym_protocols
  @ List.map (fun p -> (steady_batched p).Model.sc_name) clean_protocols
  @ List.map (fun p -> (steady_sym_batched p).Model.sc_name) sym_protocols
  @ List.map (fun p -> (crash p).Model.sc_name) clean_protocols
  @ List.map (fun p -> (crash_batched p).Model.sc_name) clean_protocols
  @ [
      "mencius-slot-reuse";
      "mencius-slot-reuse-clean";
      "mp-takeover";
      "mp-takeover-clean";
      "refine-raft-star";
    ]
