module V = Value
module C = Proto_config
module MP = Spec_multipaxos

(* ---- typed accessors ---- *)

let acc_get s var a = V.get (State.get s var) (V.int a)
let acc_put s var a v = State.set s var (V.put (State.get s var) (V.int a) v)
let hb s a = V.to_int (acc_get s "highestBallot" a)
let is_leader s a = V.to_bool (acc_get s "isLeader" a)
let log_tail s a = V.to_int (acc_get s "logTail" a)
let last_index s a = V.to_int (acc_get s "lastIndex" a)
let raftlog_at s a i = V.get (acc_get s "raftlogs" a) (V.int i)
let log_ballot_at s a i = V.to_int (V.get (acc_get s "logBallot" a) (V.int i))
let term_at s a i = V.to_int (List.nth (V.to_tuple (raftlog_at s a i)) 0)
let val_at s a i = List.nth (V.to_tuple (raftlog_at s a i)) 1
let votes_at s a i = V.get (acc_get s "votes" a) (V.int i)

let set_raftlog_at s a i e =
  acc_put s "raftlogs" a (V.put (acc_get s "raftlogs" a) (V.int i) e)

let set_log_ballot_at s a i b =
  acc_put s "logBallot" a (V.put (acc_get s "logBallot" a) (V.int i) (V.int b))

let add_vote s a i bv =
  let vi = V.set_add bv (votes_at s a i) in
  acc_put s "votes" a (V.put (acc_get s "votes" a) (V.int i) vi)

let bump s var a i =
  if i > V.to_int (acc_get s var a) then acc_put s var a (V.int i) else s

(* The derived Paxos-view log of acceptor [a]. *)
let derived_log cfg s a =
  V.fn
    (List.map
       (fun i -> (V.int i, MP.entry (log_ballot_at s a i) (val_at s a i)))
       (C.indexes cfg))

let last_term s a =
  let li = last_index s a in
  if li = -1 then -1 else term_at s a li

(* ---- spec ---- *)

let vars =
  [
    "highestBallot";
    "isLeader";
    "logTail";
    "lastIndex";
    "votes";
    "raftlogs";
    "logBallot";
    "proposedValues";
    "proposedEntries";
    "r1amsgs";
    "r1bmsgs";
  ]

let init cfg =
  let accs = C.acceptor_ids cfg in
  let per_acceptor v = V.fn (List.map (fun a -> (V.int a, v)) accs) in
  let per_index v = V.fn (List.map (fun i -> (V.int i, v)) (C.indexes cfg)) in
  State.of_list
    [
      ("highestBallot", per_acceptor (V.int 0));
      ("isLeader", per_acceptor V.ff);
      ("logTail", per_acceptor (V.int (-1)));
      ("lastIndex", per_acceptor (V.int (-1)));
      ("votes", per_acceptor (per_index (V.set [])));
      ("raftlogs", per_acceptor (per_index MP.empty_entry));
      ("logBallot", per_acceptor (per_index (V.int (-1))));
      ("proposedValues", V.set []);
      ("proposedEntries", V.set []);
      ("r1amsgs", V.set []);
      ("r1bmsgs", V.set []);
    ]

let increase_highest_ballot cfg =
  Action.make ~descr:"spontaneously adopt a higher term"
    "IncreaseHighestBallot" (fun s ->
      List.concat_map
        (fun a ->
          List.filter_map
            (fun b ->
              if b > hb s a then
                let s' = acc_put s "highestBallot" a (V.int b) in
                let s' = acc_put s' "isLeader" a V.ff in
                Some (Fmt.str "a=%d,b=%d" a b, s')
              else None)
            (C.ballots cfg))
        (C.acceptor_ids cfg))

let r1amsg s a =
  V.record
    [
      ("acc", V.int a);
      ("bal", V.int (hb s a));
      ("lastTerm", V.int (last_term s a));
      ("lastIndex", V.int (last_index s a));
    ]

let phase1a cfg =
  Action.make ~descr:"broadcast RequestVote at the current term" "Phase1a"
    (fun s ->
      List.filter_map
        (fun a ->
          if is_leader s a then None
          else
            let m = r1amsg s a in
            let msgs = State.get s "r1amsgs" in
            (* Re-sending is a legal (stuttering) step, as in the TLA. *)
            Some (Fmt.str "a=%d" a, State.set s "r1amsgs" (V.set_add m msgs)))
        (C.acceptor_ids cfg))

let up_to_date s a m =
  let m_last_term = V.to_int (V.field m "lastTerm") in
  let m_last_index = V.to_int (V.field m "lastIndex") in
  let li = last_index s a in
  li = -1
  || term_at s a li < m_last_term
  || (term_at s a li = m_last_term && li <= m_last_index)

let phase1b cfg =
  Action.make
    ~descr:"grant a vote to an up-to-date candidate, attaching the log"
    "Phase1b" (fun s ->
      List.concat_map
        (fun a ->
          List.filter_map
            (fun m ->
              let bal = V.to_int (V.field m "bal") in
              if bal > hb s a && up_to_date s a m then
                let s' = acc_put s "highestBallot" a (V.int bal) in
                let s' = acc_put s' "isLeader" a V.ff in
                let reply =
                  V.record
                    [
                      ("acc", V.int a);
                      ("bal", V.int bal);
                      ("log", derived_log cfg s a);
                      ("logTail", V.int (log_tail s a));
                    ]
                in
                let s' =
                  State.set s' "r1bmsgs"
                    (V.set_add reply (State.get s' "r1bmsgs"))
                in
                Some (Fmt.str "a=%d,b=%d" a bal, s')
              else None)
            (V.to_set (State.get s "r1amsgs")))
        (C.acceptor_ids cfg))

let quorum_replies s q bal =
  let msgs = V.to_set (State.get s "r1bmsgs") in
  let find a =
    List.find_opt
      (fun m ->
        V.to_int (V.field m "acc") = a && V.to_int (V.field m "bal") = bal)
      msgs
  in
  let rec collect = function
    | [] -> Some []
    | a :: rest -> (
        match find a with
        | Some m -> Option.map (fun ms -> m :: ms) (collect rest)
        | None -> None)
  in
  collect q

(* Raft*'s election: own entries up to lastIndex are kept; the slots after
   lastIndex are filled with the safe entries collected from the quorum's
   extra entries.  The adopted entry keeps the safe entry's ballot as both
   its ballot field and its term (see the .mli for why). *)
let become_leader cfg =
  Action.make ~descr:"collect votes and adopt safe extra entries"
    "BecomeLeader" (fun s ->
      List.concat_map
        (fun a ->
          if is_leader s a then []
          else
            let bal = hb s a in
            List.filter_map
              (fun q ->
                match quorum_replies s q bal with
                | None -> None
                | Some msgs ->
                    let logs_in_1b = List.map (fun m -> V.field m "log") msgs in
                    let tails =
                      List.map (fun m -> V.to_int (V.field m "logTail")) msgs
                    in
                    let i2 = List.fold_left max (-1) tails in
                    let li = last_index s a in
                    let s' =
                      List.fold_left
                        (fun s' i ->
                          if i > li && i <= i2 then begin
                            let e = MP.highest_ballot_entry logs_in_1b i in
                            match V.to_tuple e with
                            | [ b; v ] ->
                                let b = V.to_int b in
                                let s' = set_raftlog_at s' a i (MP.entry b v) in
                                set_log_ballot_at s' a i b
                            | _ -> s'
                          end
                          else s')
                        s (C.indexes cfg)
                    in
                    let s' = bump s' "logTail" a i2 in
                    let s' = acc_put s' "isLeader" a V.tt in
                    Some
                      ( Fmt.str "a=%d,q=%a" a Fmt.(list ~sep:(any "") int) q,
                        s' ))
              (C.quorums_containing cfg a))
        (C.acceptor_ids cfg))

(* Values the leader proposes when appending value [v] at index [i]: its
   whole log prefix re-proposed at its current term, plus the new value. *)
let proposal_values s a i v =
  List.init (i + 1) (fun j -> if j = i then v else val_at s a j)

let no_conflicting_proposal s i b v =
  V.set_for_all
    (fun pv ->
      match V.to_tuple pv with
      | [ i'; b'; v' ] ->
          not (V.to_int i' = i && V.to_int b' = b) || V.equal v' v
      | _ -> true)
    (State.get s "proposedValues")

let propose_entries cfg =
  Action.make
    ~descr:"leader appends a client value and broadcasts AppendEntries"
    "ProposeEntries" (fun s ->
      List.concat_map
        (fun a ->
          if not (is_leader s a) then []
          else
            let i = log_tail s a + 1 in
            if i > cfg.C.max_index then []
            else
              List.concat_map
                (fun v ->
                  let v = V.int v in
                  let values = proposal_values s a i v in
                  let conflict_free =
                    List.for_all2
                      (fun j vj -> no_conflicting_proposal s j (hb s a) vj)
                      (List.init (i + 1) Fun.id)
                      values
                  in
                  if not conflict_free then []
                  else
                    (* i1 = 0: full-log append; i1 = i: incremental append
                       exercising the prev-entry match. *)
                    List.filter_map
                      (fun i1 ->
                        let prev = i1 - 1 in
                        let prev_term =
                          if prev >= 0 then term_at s a prev else -1
                        in
                        let entries =
                          V.fn
                            (List.filter_map
                               (fun j ->
                                 if j >= i1 && j <= i then
                                   Some
                                     ( V.int j,
                                       if j = i then MP.entry (hb s a) v
                                       else raftlog_at s a j )
                                 else None)
                               (C.indexes cfg))
                        in
                        let pe =
                          V.record
                            [
                              ("term", V.int (hb s a));
                              ("prevLogTerm", V.int prev_term);
                              ("prevLogIndex", V.int prev);
                              ("lIndex", V.int i);
                              ("leaderId", V.int a);
                              ("entries", entries);
                            ]
                        in
                        let pes = State.get s "proposedEntries" in
                        (* Re-proposing is a legal (stuttering) step. *)
                        let s' =
                          State.set s "proposedEntries" (V.set_add pe pes)
                        in
                        let s' =
                          State.set s' "proposedValues"
                            (List.fold_left2
                               (fun pvs j vj ->
                                 V.set_add
                                   (V.tuple [ V.int j; V.int (hb s a); vj ])
                                   pvs)
                               (State.get s' "proposedValues")
                               (List.init (i + 1) Fun.id)
                               values)
                        in
                        Some (Fmt.str "a=%d,i1=%d,i=%d,v=%a" a i1 i V.pp v, s'))
                      (List.sort_uniq Int.compare [ 0; i ]))
                (C.value_ids cfg))
        (C.acceptor_ids cfg))

let accept_entries cfg =
  Action.make
    ~descr:
      "acceptor replicates an AppendEntries batch, rewriting entry ballots"
    "AcceptEntries" (fun s ->
      List.concat_map
        (fun a ->
          List.filter_map
            (fun pe ->
              let term = V.to_int (V.field pe "term") in
              let prev = V.to_int (V.field pe "prevLogIndex") in
              let prev_term = V.to_int (V.field pe "prevLogTerm") in
              let l_index = V.to_int (V.field pe "lIndex") in
              let entries = V.field pe "entries" in
              if
                term >= hb s a
                && l_index >= last_index s a (* Raft*: never shorten a log *)
                && (prev < 0 || term_at s a prev = prev_term)
              then begin
                let deposed = term > hb s a in
                let s' = acc_put s "highestBallot" a (V.int term) in
                (* Replicate entries prev+1 .. lIndex; each replicated entry
                   is re-accepted at the leader's term, so its ballot field
                   is rewritten and a matching vote is cast. *)
                let s' =
                  List.fold_left
                    (fun s' j ->
                      if j > prev && j <= l_index then
                        let e = V.get entries (V.int j) in
                        let v = List.nth (V.to_tuple e) 1 in
                        let s' = set_raftlog_at s' a j e in
                        let s' = set_log_ballot_at s' a j term in
                        add_vote s' a j (V.tuple [ V.int term; v ])
                      else s')
                    s' (C.indexes cfg)
                in
                let s' = bump s' "lastIndex" a l_index in
                let s' = bump s' "logTail" a l_index in
                let s' = if deposed then acc_put s' "isLeader" a V.ff else s' in
                Some (Fmt.str "a=%d,t=%d,l=%d" a term l_index, s')
              end
              else None)
            (V.to_set (State.get s "proposedEntries")))
        (C.acceptor_ids cfg))

let spec cfg =
  Spec.make ~name:"RaftStar" ~vars ~init:[ init cfg ]
    [
      increase_highest_ballot cfg;
      phase1a cfg;
      phase1b cfg;
      become_leader cfg;
      propose_entries cfg;
      accept_entries cfg;
    ]

(* ---- the Figure-3 refinement mapping ---- *)

let to_paxos cfg s =
  let accs = C.acceptor_ids cfg in
  let logs =
    V.fn (List.map (fun a -> (V.int a, derived_log cfg s a)) accs)
  in
  let msgs1a =
    V.set
      (List.map
         (fun m ->
           V.record [ ("acc", V.field m "acc"); ("bal", V.field m "bal") ])
         (V.to_set (State.get s "r1amsgs")))
  in
  State.of_list
    [
      ("highestBallot", State.get s "highestBallot");
      ("isLeader", State.get s "isLeader");
      ("logTail", State.get s "logTail");
      ("votes", State.get s "votes");
      ("proposedValues", State.get s "proposedValues");
      ("logs", logs);
      ("msgs1a", msgs1a);
      ("msgs1b", State.get s "r1bmsgs");
    ]

(* ---- invariants ---- *)

let inv_log_matching cfg s =
  List.for_all
    (fun x ->
      List.for_all
        (fun y ->
          List.for_all
            (fun i ->
              let tx = term_at s x i and ty = term_at s y i in
              if tx >= 0 && tx = ty then
                List.for_all
                  (fun j ->
                    j > i || V.equal (raftlog_at s x j) (raftlog_at s y j))
                  (C.indexes cfg)
              else true)
            (C.indexes cfg))
        (C.acceptor_ids cfg))
    (C.acceptor_ids cfg)

(* A committed (index, ballot, value) must appear in the log of any leader
   electable at a strictly higher ballot.  Same-ballot re-elections from
   stale vote replies are possible in this message-passing formulation
   (vote replies are not addressed to a candidate, as in the paper's TLA);
   they are harmless because the proposal-uniqueness guard pins the ballot's
   value, so — like Raft's own completeness property — the quantification
   is over higher terms only. *)
let inv_leader_completeness cfg s =
  let committed =
    List.concat_map
      (fun i ->
        List.concat_map
          (fun b ->
            List.filter_map
              (fun v ->
                let v = V.int v in
                (* [MP.chosen_at] only reads "votes", which Raft* shares. *)
                if MP.chosen_at cfg s ~idx:i ~bal:b v then Some (i, b, v)
                else None)
              (C.value_ids cfg))
          (C.ballots cfg))
      (C.indexes cfg)
  in
  committed = []
  ||
  let bl = become_leader cfg in
  List.for_all
    (fun (label, s') ->
      (* The elected leader is named in the label as "a=<id>,...". *)
      let leader = Scanf.sscanf label "a=%d" Fun.id in
      List.for_all
        (fun (i, b, v) ->
          hb s' leader <= b || V.equal (val_at s' leader i) v)
        committed)
    (bl.Action.enum s)

let invariants cfg =
  [
    ("LogMatching", inv_log_matching cfg);
    ("LeaderCompleteness", inv_leader_completeness cfg);
    ( "Mapped/OneValuePerBallot",
      fun s -> MP.inv_one_value_per_ballot cfg (to_paxos cfg s) );
    ("Mapped/Agreement", fun s -> MP.inv_agreement cfg (to_paxos cfg s));
    ("Mapped/LogsSafe", fun s -> MP.inv_logs_safe cfg (to_paxos cfg s));
  ]
