type t =
  | Int of int
  | Bool of bool
  | Str of string
  | Tuple of t list
  | Set of t list
  | Map of (t * t) list
  | Rec of (string * t) list

let type_rank = function
  | Int _ -> 0
  | Bool _ -> 1
  | Str _ -> 2
  | Tuple _ -> 3
  | Set _ -> 4
  | Map _ -> 5
  | Rec _ -> 6

let rec compare a b =
  match (a, b) with
  | Int x, Int y -> Int.compare x y
  | Bool x, Bool y -> Bool.compare x y
  | Str x, Str y -> String.compare x y
  | Tuple x, Tuple y -> compare_list x y
  | Set x, Set y -> compare_list x y
  | Map x, Map y -> compare_pairs x y
  | Rec x, Rec y -> compare_fields x y
  | _ -> Int.compare (type_rank a) (type_rank b)

and compare_list x y =
  match (x, y) with
  | [], [] -> 0
  | [], _ -> -1
  | _, [] -> 1
  | a :: x', b :: y' ->
      let c = compare a b in
      if c <> 0 then c else compare_list x' y'

and compare_pairs x y =
  match (x, y) with
  | [], [] -> 0
  | [], _ -> -1
  | _, [] -> 1
  | (ka, va) :: x', (kb, vb) :: y' ->
      let c = compare ka kb in
      if c <> 0 then c
      else
        let c = compare va vb in
        if c <> 0 then c else compare_pairs x' y'

and compare_fields x y =
  match (x, y) with
  | [], [] -> 0
  | [], _ -> -1
  | _, [] -> 1
  | (ka, va) :: x', (kb, vb) :: y' ->
      let c = String.compare ka kb in
      if c <> 0 then c
      else
        let c = compare va vb in
        if c <> 0 then c else compare_fields x' y'

let equal a b = compare a b = 0

let rec pp ppf v =
  match v with
  | Int n -> Fmt.int ppf n
  | Bool b -> Fmt.bool ppf b
  | Str s -> Fmt.string ppf s
  | Tuple vs -> Fmt.pf ppf "@[<h><%a>@]" Fmt.(list ~sep:comma pp) vs
  | Set vs -> Fmt.pf ppf "@[<h>{%a}@]" Fmt.(list ~sep:comma pp) vs
  | Map kvs -> Fmt.pf ppf "@[<h>[%a]@]" Fmt.(list ~sep:comma pp_binding) kvs
  | Rec fs -> Fmt.pf ppf "@[<h>(%a)@]" Fmt.(list ~sep:comma pp_field) fs

and pp_binding ppf (k, v) = Fmt.pf ppf "%a->%a" pp k pp v
and pp_field ppf (k, v) = Fmt.pf ppf "%s:%a" k pp v

let to_string v = Fmt.str "%a" pp v

let int n = Int n
let bool b = Bool b
let str s = Str s
let tuple vs = Tuple vs

let set vs = Set (List.sort_uniq compare vs)

let map_of kvs =
  let sorted = List.sort (fun (a, _) (b, _) -> compare a b) kvs in
  let rec check = function
    | (a, _) :: ((b, _) :: _ as rest) ->
        if equal a b then invalid_arg "Value.map_of: duplicate key"
        else check rest
    | _ -> ()
  in
  check sorted;
  Map sorted

let record fs =
  let sorted = List.sort (fun (a, _) (b, _) -> String.compare a b) fs in
  let rec check = function
    | (a, _) :: ((b, _) :: _ as rest) ->
        if String.equal a b then invalid_arg "Value.record: duplicate field"
        else check rest
    | _ -> ()
  in
  check sorted;
  Rec sorted

let type_error what v =
  invalid_arg (Fmt.str "Value: expected %s, got %a" what pp v)

let to_int = function Int n -> n | v -> type_error "int" v
let to_bool = function Bool b -> b | v -> type_error "bool" v
let to_str = function Str s -> s | v -> type_error "str" v
let to_tuple = function Tuple vs -> vs | v -> type_error "tuple" v
let to_set = function Set vs -> vs | v -> type_error "set" v
let to_map = function Map kvs -> kvs | v -> type_error "map" v
let to_rec = function Rec fs -> fs | v -> type_error "record" v

let set_mem x s = List.exists (equal x) (to_set s)
let set_add x s = set (x :: to_set s)
let set_union s1 s2 = set (to_set s1 @ to_set s2)
let set_card s = List.length (to_set s)
let set_subset s1 s2 = List.for_all (fun x -> set_mem x s2) (to_set s1)
let set_filter f s = Set (List.filter f (to_set s))
let set_exists f s = List.exists f (to_set s)
let set_for_all f s = List.for_all f (to_set s)

let subsets s =
  let elts = to_set s in
  let rec go = function
    | [] -> [ [] ]
    | x :: rest ->
        let subs = go rest in
        subs @ List.map (fun sub -> x :: sub) subs
  in
  List.map set (go elts)

let get m k =
  let rec find = function
    | [] -> raise Not_found
    | (k', v) :: rest -> (
        match compare k k' with
        | 0 -> v
        | c when c < 0 -> raise Not_found
        | _ -> find rest)
  in
  find (to_map m)

let get_opt m k = try Some (get m k) with Not_found -> None

let put m k v =
  let rec insert = function
    | [] -> [ (k, v) ]
    | ((k', _) as kv) :: rest -> (
        match compare k k' with
        | 0 -> (k, v) :: rest
        | c when c < 0 -> (k, v) :: kv :: rest
        | _ -> kv :: insert rest)
  in
  Map (insert (to_map m))

let keys m = List.map fst (to_map m)
let fn = map_of

let field r name =
  match List.assoc_opt name (to_rec r) with
  | Some v -> v
  | None -> raise Not_found

let with_field r name v =
  let fs = to_rec r in
  record ((name, v) :: List.remove_assoc name fs)

let nil = Str "NoVal"
let noop = Str "Noop"
let tt = Bool true
let ff = Bool false
