module V = Value
module C = Proto_config
module MP = Spec_multipaxos

let mid = { C.acceptors = 3; values = 2; max_ballot = 2; max_index = 1 }

(* ---- typed accessors (same layout as Spec_raft_star) ---- *)

let acc_get s var a = V.get (State.get s var) (V.int a)
let acc_put s var a v = State.set s var (V.put (State.get s var) (V.int a) v)
let hb s a = V.to_int (acc_get s "highestBallot" a)
let is_leader s a = V.to_bool (acc_get s "isLeader" a)
let last_index s a = V.to_int (acc_get s "lastIndex" a)
let raftlog_at s a i = V.get (acc_get s "raftlogs" a) (V.int i)
let term_at s a i = V.to_int (List.nth (V.to_tuple (raftlog_at s a i)) 0)

let set_raftlog_at s a i e =
  acc_put s "raftlogs" a (V.put (acc_get s "raftlogs" a) (V.int i) e)

let last_term s a =
  let li = last_index s a in
  if li = -1 then -1 else term_at s a li

let vars =
  [
    "highestBallot";
    "isLeader";
    "lastIndex";
    "raftlogs";
    "proposedEntries";
    "r1amsgs";
    "r1bmsgs";
  ]

let init cfg =
  let accs = C.acceptor_ids cfg in
  let per_acceptor v = V.fn (List.map (fun a -> (V.int a, v)) accs) in
  let per_index v = V.fn (List.map (fun i -> (V.int i, v)) (C.indexes cfg)) in
  State.of_list
    [
      ("highestBallot", per_acceptor (V.int 0));
      ("isLeader", per_acceptor V.ff);
      ("lastIndex", per_acceptor (V.int (-1)));
      ("raftlogs", per_acceptor (per_index MP.empty_entry));
      ("proposedEntries", V.set []);
      ("r1amsgs", V.set []);
      ("r1bmsgs", V.set []);
    ]

let increase_term cfg =
  Action.make ~descr:"spontaneously adopt a higher term" "IncreaseTerm"
    (fun s ->
      List.concat_map
        (fun a ->
          List.filter_map
            (fun b ->
              if b > hb s a then
                let s' = acc_put s "highestBallot" a (V.int b) in
                let s' = acc_put s' "isLeader" a V.ff in
                Some (Fmt.str "a=%d,b=%d" a b, s')
              else None)
            (C.ballots cfg))
        (C.acceptor_ids cfg))

let request_vote cfg =
  Action.make ~descr:"broadcast RequestVote at the current term" "RequestVote"
    (fun s ->
      List.filter_map
        (fun a ->
          if is_leader s a then None
          else
            let m =
              V.record
                [
                  ("acc", V.int a);
                  ("bal", V.int (hb s a));
                  ("lastTerm", V.int (last_term s a));
                  ("lastIndex", V.int (last_index s a));
                ]
            in
            let msgs = State.get s "r1amsgs" in
            if V.set_mem m msgs then None
            else
              Some (Fmt.str "a=%d" a, State.set s "r1amsgs" (V.set_add m msgs)))
        (C.acceptor_ids cfg))

let up_to_date s a m =
  let m_last_term = V.to_int (V.field m "lastTerm") in
  let m_last_index = V.to_int (V.field m "lastIndex") in
  let li = last_index s a in
  li = -1
  || term_at s a li < m_last_term
  || (term_at s a li = m_last_term && li <= m_last_index)

let raft_log cfg s a =
  V.fn
    (List.map (fun i -> (V.int i, raftlog_at s a i)) (C.indexes cfg))

let handle_vote cfg =
  Action.make ~descr:"grant a vote to an up-to-date candidate" "HandleVote"
    (fun s ->
      List.concat_map
        (fun a ->
          List.filter_map
            (fun m ->
              let bal = V.to_int (V.field m "bal") in
              if bal > hb s a && up_to_date s a m then
                let s' = acc_put s "highestBallot" a (V.int bal) in
                let s' = acc_put s' "isLeader" a V.ff in
                let reply =
                  V.record
                    [
                      ("acc", V.int a);
                      ("bal", V.int bal);
                      ("log", raft_log cfg s a);
                      ("logTail", V.int (last_index s a));
                    ]
                in
                let s' =
                  State.set s' "r1bmsgs"
                    (V.set_add reply (State.get s' "r1bmsgs"))
                in
                Some (Fmt.str "a=%d,b=%d" a bal, s')
              else None)
            (V.to_set (State.get s "r1amsgs")))
        (C.acceptor_ids cfg))

let quorum_replies s q bal =
  let msgs = V.to_set (State.get s "r1bmsgs") in
  let find a =
    List.find_opt
      (fun m ->
        V.to_int (V.field m "acc") = a && V.to_int (V.field m "bal") = bal)
      msgs
  in
  let rec collect = function
    | [] -> Some []
    | a :: rest -> (
        match find a with
        | Some m -> Option.map (fun ms -> m :: ms) (collect rest)
        | None -> None)
  in
  collect q

(* Vanilla: the elected leader keeps exactly its own log. *)
let become_leader cfg =
  Action.make ~descr:"collect a quorum of votes; keep own log" "BecomeLeader"
    (fun s ->
      List.concat_map
        (fun a ->
          if is_leader s a then []
          else
            let bal = hb s a in
            List.filter_map
              (fun q ->
                match quorum_replies s q bal with
                | None -> None
                | Some _ ->
                    Some
                      ( Fmt.str "a=%d,q=%a" a Fmt.(list ~sep:(any "") int) q,
                        acc_put s "isLeader" a V.tt ))
              (C.quorums_containing cfg a))
        (C.acceptor_ids cfg))

(* One value per (term, index) across all append messages — the stand-in
   for Raft's one-leader-per-term (see the .mli). *)
let no_conflicting_proposal s term i v =
  V.set_for_all
    (fun pe ->
      V.to_int (V.field pe "term") <> term
      ||
      match V.get_opt (V.field pe "entries") (V.int i) with
      | Some e ->
          V.to_int (List.nth (V.to_tuple e) 0) <> term
          || V.equal (List.nth (V.to_tuple e) 1) v
      | None -> true)
    (State.get s "proposedEntries")

let propose_entries cfg =
  Action.make ~descr:"leader appends a client value and broadcasts it"
    "ProposeEntries" (fun s ->
      List.concat_map
        (fun a ->
          if not (is_leader s a) then []
          else
            let i = last_index s a + 1 in
            if i > cfg.C.max_index then []
            else
              List.concat_map
                (fun v ->
                  let v = V.int v in
                  if not (no_conflicting_proposal s (hb s a) i v) then []
                  else
                    List.filter_map
                      (fun i1 ->
                        let prev = i1 - 1 in
                        let prev_term =
                          if prev >= 0 then term_at s a prev else -1
                        in
                        let entries =
                          V.fn
                            (List.filter_map
                               (fun j ->
                                 if j >= i1 && j <= i then
                                   Some
                                     ( V.int j,
                                       if j = i then MP.entry (hb s a) v
                                       else raftlog_at s a j )
                                 else None)
                               (C.indexes cfg))
                        in
                        let pe =
                          V.record
                            [
                              ("term", V.int (hb s a));
                              ("prevLogTerm", V.int prev_term);
                              ("prevLogIndex", V.int prev);
                              ("lIndex", V.int i);
                              ("leaderId", V.int a);
                              ("entries", entries);
                            ]
                        in
                        let pes = State.get s "proposedEntries" in
                        if V.set_mem pe pes then None
                        else
                          Some
                            ( Fmt.str "a=%d,i1=%d,i=%d,v=%a" a i1 i V.pp v,
                              State.set s "proposedEntries" (V.set_add pe pes)
                            ))
                      (List.sort_uniq Int.compare [ 0; i ]))
                (C.value_ids cfg))
        (C.acceptor_ids cfg))

(* Vanilla log reconciliation: append missing entries; on the first
   conflicting entry, erase it and everything after it, then take the
   leader's entries.  A consistent tail longer than the leader's batch is
   kept. *)
let accept_entries cfg =
  Action.make ~descr:"acceptor reconciles its log with the leader's batch"
    "AcceptEntries" (fun s ->
      List.concat_map
        (fun a ->
          List.filter_map
            (fun pe ->
              let term = V.to_int (V.field pe "term") in
              let prev = V.to_int (V.field pe "prevLogIndex") in
              let prev_term = V.to_int (V.field pe "prevLogTerm") in
              let l_index = V.to_int (V.field pe "lIndex") in
              let entries = V.field pe "entries" in
              if
                term >= hb s a
                && (prev < 0
                   || (prev <= last_index s a && term_at s a prev = prev_term))
              then begin
                let deposed = term > hb s a in
                let s' = acc_put s "highestBallot" a (V.int term) in
                (* Find the first index in prev+1 .. lIndex where the local
                   entry conflicts with (or is missing vs) the batch. *)
                let range = List.init (l_index - prev) (fun k -> prev + 1 + k) in
                let conflict =
                  List.find_opt
                    (fun j ->
                      j > last_index s a
                      || term_at s a j
                         <> V.to_int
                              (List.nth (V.to_tuple (V.get entries (V.int j))) 0))
                    range
                in
                match conflict with
                | None ->
                    (* Log already contains the batch; nothing to write. *)
                    let s' =
                      if deposed then acc_put s' "isLeader" a V.ff else s'
                    in
                    Some (Fmt.str "a=%d,t=%d,l=%d,noop" a term l_index, s')
                | Some j0 ->
                    let erase = j0 <= last_index s a in
                    let s' =
                      List.fold_left
                        (fun s' j ->
                          if j >= j0 && j <= l_index then
                            set_raftlog_at s' a j (V.get entries (V.int j))
                          else if erase && j > l_index then
                            (* the erase step: drop the conflicting tail *)
                            set_raftlog_at s' a j MP.empty_entry
                          else s')
                        s' (C.indexes cfg)
                    in
                    let s' =
                      acc_put s' "lastIndex" a
                        (V.int
                           (if erase then l_index
                            else max l_index (last_index s a)))
                    in
                    let s' =
                      if deposed then acc_put s' "isLeader" a V.ff else s'
                    in
                    Some (Fmt.str "a=%d,t=%d,l=%d" a term l_index, s')
              end
              else None)
            (V.to_set (State.get s "proposedEntries")))
        (C.acceptor_ids cfg))

let spec cfg =
  Spec.make ~name:"Raft" ~vars ~init:[ init cfg ]
    [
      increase_term cfg;
      request_vote cfg;
      handle_vote cfg;
      become_leader cfg;
      propose_entries cfg;
      accept_entries cfg;
    ]

(* ---- the attempted Figure-3 mapping ---- *)

let to_paxos cfg s =
  let accs = C.acceptor_ids cfg in
  let logs =
    V.fn (List.map (fun a -> (V.int a, raft_log cfg s a)) accs)
  in
  (* Votes and proposals derived from the only state vanilla Raft keeps:
     the current logs and the in-flight append messages. *)
  let votes =
    V.fn
      (List.map
         (fun a ->
           ( V.int a,
             V.fn
               (List.map
                  (fun i ->
                    let e = raftlog_at s a i in
                    let vs =
                      if V.to_int (List.nth (V.to_tuple e) 0) >= 0 then [ e ]
                      else []
                    in
                    (V.int i, V.set vs))
                  (C.indexes cfg)) ))
         accs)
  in
  let proposed =
    V.set
      (List.concat_map
         (fun pe ->
           let term = V.field pe "term" in
           List.filter_map
             (fun (i, e) ->
               match V.to_tuple e with
               | [ _; v ] when not (V.equal v V.nil) ->
                   Some (V.tuple [ i; term; v ])
               | _ -> None)
             (V.to_map (V.field pe "entries")))
         (V.to_set (State.get s "proposedEntries")))
  in
  let msgs1a =
    V.set
      (List.map
         (fun m ->
           V.record [ ("acc", V.field m "acc"); ("bal", V.field m "bal") ])
         (V.to_set (State.get s "r1amsgs")))
  in
  State.of_list
    [
      ("highestBallot", State.get s "highestBallot");
      ("isLeader", State.get s "isLeader");
      ("logTail", State.get s "lastIndex");
      ("votes", votes);
      ("proposedValues", proposed);
      ("logs", logs);
      ("msgs1a", msgs1a);
      ("msgs1b", State.get s "r1bmsgs");
    ]

let inv_log_matching cfg s =
  List.for_all
    (fun x ->
      List.for_all
        (fun y ->
          List.for_all
            (fun i ->
              let tx = term_at s x i and ty = term_at s y i in
              if tx >= 0 && tx = ty then
                List.for_all
                  (fun j ->
                    j > i || V.equal (raftlog_at s x j) (raftlog_at s y j))
                  (C.indexes cfg)
              else true)
            (C.indexes cfg))
        (C.acceptor_ids cfg))
    (C.acceptor_ids cfg)

let invariants cfg = [ ("LogMatching", inv_log_matching cfg) ]
