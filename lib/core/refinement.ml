module Smap = Map.Make (State)

type failure = {
  kind : [ `Init | `Transition ];
  b_state : State.t;
  b_action : string;
  b_label : string;
  b_state' : State.t;
  a_state : State.t;
  a_state' : State.t;
  b_trace : Explorer.step list;
}

type report = {
  checked_states : int;
  checked_transitions : int;
  stuttering : int;
  complete : bool;
  action_map : (string * (string * int) list) list;
}

type result = Refines of report | Fails of failure * report

type crumb = Root | Via of State.t * string * string

let rebuild_trace crumbs last =
  let rec go acc s =
    match Smap.find s crumbs with
    | Root -> { Explorer.action = "Init"; label = ""; state = s } :: acc
    | Via (prev, action, label) ->
        go ({ Explorer.action; label; state = s } :: acc) prev
  in
  go [] last

module Sset = Set.Make (State)

(* Which sequence of at most [max_hops] A actions (if any) drives
   [a_state] to [a_state']?  Returns the action names of a shortest such
   path.  [max_hops = 1] is the classic single-step obligation; larger
   values implement the paper's batched-step stuttering (Appendix C). *)
let implied_path (high : Spec.t) ~max_hops a_state a_state' =
  let exception Hit of string list in
  let visited = ref (Sset.singleton a_state) in
  let frontier = Queue.create () in
  Queue.add (a_state, []) frontier;
  try
    while not (Queue.is_empty frontier) do
      let s, rev_path = Queue.pop frontier in
      let hops = List.length rev_path in
      if hops < max_hops then
        List.iter
          (fun (action, _, s') ->
            if State.equal s' a_state' then raise (Hit (List.rev (action :: rev_path)));
            if hops + 1 < max_hops && not (Sset.mem s' !visited) then begin
              visited := Sset.add s' !visited;
              Queue.add (s', action :: rev_path) frontier
            end)
          (Spec.successors high s)
    done;
    None
  with Hit path -> Some path

let discharge ~high ~max_hops a a' =
  if State.equal a a' then Some [] else implied_path high ~max_hops a a'

let check ?(max_states = 1_000_000) ?(max_depth = max_int) ?(max_hops = 1)
    ~(low : Spec.t) ~(high : Spec.t) ~map () =
  let crumbs = ref Smap.empty in
  let queue = Queue.create () in
  let states = ref 0 in
  let transitions = ref 0 in
  let stuttering = ref 0 in
  let complete = ref true in
  let action_map : (string, (string, int) Hashtbl.t) Hashtbl.t =
    Hashtbl.create 16
  in
  let note_implication b_action a_action =
    let tbl =
      match Hashtbl.find_opt action_map b_action with
      | Some tbl -> tbl
      | None ->
          let tbl = Hashtbl.create 4 in
          Hashtbl.add action_map b_action tbl;
          tbl
    in
    Hashtbl.replace tbl a_action
      (1 + Option.value ~default:0 (Hashtbl.find_opt tbl a_action))
  in
  let report () =
    {
      checked_states = !states;
      checked_transitions = !transitions;
      stuttering = !stuttering;
      complete = !complete;
      action_map =
        Hashtbl.fold
          (fun b tbl acc ->
            ( b,
              List.of_seq (Hashtbl.to_seq tbl)
              |> List.sort (fun (a, _) (b, _) -> String.compare a b) )
            :: acc)
          action_map []
        |> List.sort (fun (a, _) (b, _) -> String.compare a b);
    }
  in
  let exception Failed of failure in
  let visit s crumb =
    if not (Smap.mem s !crumbs) then
      if !states >= max_states then complete := false
      else begin
        crumbs := Smap.add s crumb !crumbs;
        incr states;
        Queue.add (s, 0) queue
      end
  in
  let high_inits = high.init in
  try
    List.iter
      (fun s ->
        let a = map s in
        if not (List.exists (State.equal a) high_inits) then
          raise
            (Failed
               {
                 kind = `Init;
                 b_state = s;
                 b_action = "";
                 b_label = "";
                 b_state' = s;
                 a_state = a;
                 a_state' = a;
                 b_trace = [ { Explorer.action = "Init"; label = ""; state = s } ];
               });
        visit s Root)
      low.init;
    while not (Queue.is_empty queue) do
      let s, depth = Queue.pop queue in
      if depth >= max_depth then complete := false
      else
        let a_state = map s in
        List.iter
          (fun (b_action, b_label, s') ->
            incr transitions;
            let a_state' = map s' in
            if State.equal a_state a_state' then begin
              incr stuttering;
              note_implication b_action "(stutter)"
            end
            else begin
              match implied_path high ~max_hops a_state a_state' with
              | Some path -> note_implication b_action (String.concat "+" path)
              | None ->
                  raise
                    (Failed
                       {
                         kind = `Transition;
                         b_state = s;
                         b_action;
                         b_label;
                         b_state' = s';
                         a_state;
                         a_state';
                         b_trace = rebuild_trace !crumbs s;
                       })
            end;
            visit s' (Via (s, b_action, b_label)))
          (Spec.successors low s)
    done;
    Refines (report ())
  with Failed f -> Fails (f, report ())

let pp_report ppf r =
  let pp_entry ppf (b, als) =
    Fmt.pf ppf "%s => %a" b
      Fmt.(list ~sep:comma (fun ppf (a, n) -> Fmt.pf ppf "%s(%d)" a n))
      als
  in
  Fmt.pf ppf
    "@[<v>%d states, %d transitions (%d stuttering)%s@,action map:@,  %a@]"
    r.checked_states r.checked_transitions r.stuttering
    (if r.complete then "" else " (bounded)")
    Fmt.(list ~sep:(any "@,  ") pp_entry)
    r.action_map

let pp_result ppf = function
  | Refines r -> Fmt.pf ppf "@[<v>refines:@,%a@]" pp_report r
  | Fails (f, r) ->
      let what =
        match f.kind with
        | `Init -> "initial state has no image in high-level init"
        | `Transition -> "transition has no high-level counterpart"
      in
      Fmt.pf ppf
        "@[<v>refinement FAILS: %s@,\
         low action: %s(%s)@,\
         low state:@,  %a@,\
         low state':@,  %a@,\
         mapped state:@,  %a@,\
         mapped state':@,  %a@,\
         low trace (%d steps)@,\
         %a@]"
        what f.b_action f.b_label State.pp f.b_state State.pp f.b_state'
        State.pp f.a_state State.pp f.a_state'
        (List.length f.b_trace) pp_report r
