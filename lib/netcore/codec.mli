(** Pure binary encoding primitives for the wire format.

    Integers are zigzag LEB128 varints over OCaml's 63-bit pattern (at
    most 9 bytes, small magnitudes in one); strings are varint-length
    prefixed; options are a presence byte; lists a varint count.  No
    [Marshal]: the byte format is defined entirely here and in {!Wire},
    so it is stable, versionable and fuzzable. *)

type error = Truncated | Malformed of string

val error_to_string : error -> string

(** {1 Writing} *)

type writer

val writer : unit -> writer

val writer_sized : int -> writer
(** A writer with [n] bytes preallocated — for long-lived per-connection
    scratch buffers that are {!reset} between frames instead of
    reallocated. *)

val reset : writer -> unit
(** Empty the writer, keeping its internal storage for reuse. *)

val length : writer -> int
val blit : writer -> int -> bytes -> int -> int -> unit
val to_string : writer -> string
val put_byte : writer -> int -> unit
(** Low 8 bits, verbatim — used for tags and version bytes. *)

val put_uvarint : writer -> int -> unit
val put_int : writer -> int -> unit
val put_bool : writer -> bool -> unit
val put_string : writer -> string -> unit
val put_option : (writer -> 'a -> unit) -> writer -> 'a option -> unit
val put_list : (writer -> 'a -> unit) -> writer -> 'a list -> unit

(** {1 Reading}

    Readers raise an internal exception on truncated or malformed input;
    only {!decode} catches it, so combinators compose without threading
    results. *)

type reader

val reader : string -> reader
val u8 : reader -> int
val get_uvarint : reader -> int
val get_int : reader -> int
val get_bool : reader -> bool
val get_string : reader -> string
val get_option : (reader -> 'a) -> reader -> 'a option
val get_list : (reader -> 'a) -> reader -> 'a list
val at_end : reader -> bool

val malformed : string -> 'a
(** Raise the internal malformed-input exception (for {!Wire}'s tag
    dispatch); escapes only through {!decode}. *)

val decode : (reader -> 'a) -> string -> ('a, error) result
(** Run a parser over a whole string: trailing bytes are an error, so a
    frame either decodes exactly or is rejected. *)
