(** Canonical applied-state snapshots.

    [of_ops ops] renders a replica's committed operation sequence (in
    commit order, no-ops excluded) plus the final key→write_id image it
    produces.  Pure and deterministic: two replicas produce byte-identical
    snapshots iff they committed the same operations in the same order —
    the agreement oracle for the loopback demo and the sim-vs-net
    cross-check. *)

val of_ops : Raftpax_consensus.Types.op list -> string

val digest : string -> string
(** FNV-1a 64-bit hex of a snapshot, for compact log lines. *)
