(** Length-prefixed framing over a byte stream: 4-byte big-endian payload
    length, then the payload. *)

val max_frame : int
(** Hard upper bound on a payload (16 MB); a declared length at or above
    it is treated as stream corruption, not a pending big frame. *)

val encode : string -> string
(** Prefix a payload with its length.  @raise Invalid_argument if the
    payload is [max_frame] bytes or larger. *)

val encode_writer : Codec.writer -> string
(** [encode] of the writer's contents without materialising an
    intermediate payload string: the framed string is the only
    allocation.  Pair with {!Wire.encode_frame_into} and a per-connection
    scratch writer for an allocation-free send path (bar the queued
    frame itself). *)

type error = Frame_too_large of int

type reassembler
(** Per-connection accumulator turning arbitrary read-chunk boundaries
    back into whole frames. *)

val reassembler : unit -> reassembler

val feed : reassembler -> string -> (string list, error) result
(** Append a chunk; return every now-complete frame payload in arrival
    order.  An oversized declared length poisons the stream — the caller
    should drop the connection. *)

val buffered : reassembler -> int
(** Bytes currently held waiting for a frame to complete. *)
