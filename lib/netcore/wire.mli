(** Versioned binary wire format: every consensus protocol message plus
    the peer/client session frames the network shell speaks.

    Layout: [version byte | frame tag | fields]; a [Peer_msg] nests a
    protocol byte and a constructor tag.  Decoding rejects wrong
    versions, unknown tags, truncation and trailing bytes.  The codec is
    pure (detlint-checked) — sockets live entirely in [bin/]. *)

val version : int

type protocol_msg =
  | Raft_msg of Raftpax_consensus.Raft.msg
  | Mencius_msg of Raftpax_consensus.Mencius.msg
  | Multipaxos_msg of Raftpax_consensus.Multipaxos.msg

type frame =
  | Peer_hello of { node : int }
      (** first frame on a replica-to-replica connection: who is dialing *)
  | Peer_msg of { src : int; dst : int; msg : protocol_msg }
  | Client_hello  (** first frame on a client connection *)
  | Client_req of { req_id : int; op : Raftpax_consensus.Types.op }
  | Client_reply of { req_id : int; value : int option }
  | Snapshot_req
  | Snapshot_reply of { node : int; committed : int; snapshot : string }
      (** canonical applied-state snapshot (see {!Snapshot}) with the
          committed-op count it covers *)

val encode_frame : frame -> string

val encode_frame_into : Codec.writer -> frame -> unit
(** Reset [w] and encode the frame into it (version byte + body).
    Combined with {!Framing.encode_writer}, a long-lived scratch writer
    makes the send path allocate only the final framed string. *)

val decode_frame : string -> (frame, Codec.error) result
