(* Versioned binary encoding for every protocol message and the
   client/peer session frames.  One byte of version, one byte of frame
   tag, then tag-specific fields via Codec; protocol messages carry a
   protocol byte and a constructor tag.  New constructors append new tags
   (additive, existing encodings unchanged); changing an existing tag's
   layout means a version bump — the golden-vector test pins the
   format. *)

module Types = Raftpax_consensus.Types
module Raft = Raftpax_consensus.Raft
module Mencius = Raftpax_consensus.Mencius
module Multipaxos = Raftpax_consensus.Multipaxos
module C = Codec

let version = 1

type protocol_msg =
  | Raft_msg of Raft.msg
  | Mencius_msg of Mencius.msg
  | Multipaxos_msg of Multipaxos.msg

type frame =
  | Peer_hello of { node : int }
  | Peer_msg of { src : int; dst : int; msg : protocol_msg }
  | Client_hello
  | Client_req of { req_id : int; op : Types.op }
  | Client_reply of { req_id : int; value : int option }
  | Snapshot_req
  | Snapshot_reply of { node : int; committed : int; snapshot : string }

(* ---- Types.* ---- *)

let put_op w (op : Types.op) =
  match op with
  | Get { key } ->
      C.put_byte w 0;
      C.put_int w key
  | Put { key; size; write_id } ->
      C.put_byte w 1;
      C.put_int w key;
      C.put_int w size;
      C.put_int w write_id

let get_op r : Types.op =
  match C.u8 r with
  | 0 -> Get { key = C.get_int r }
  | 1 ->
      let key = C.get_int r in
      let size = C.get_int r in
      let write_id = C.get_int r in
      Put { key; size; write_id }
  | _ -> C.malformed "op tag"

let put_cmd w (c : Types.cmd) =
  C.put_int w c.id;
  put_op w c.op;
  C.put_int w c.origin;
  C.put_int w c.submitted_us

let get_cmd r : Types.cmd =
  let id = C.get_int r in
  let op = get_op r in
  let origin = C.get_int r in
  let submitted_us = C.get_int r in
  { id; op; origin; submitted_us }

let put_entry w (e : Types.entry) =
  C.put_int w e.term;
  C.put_option put_cmd w e.cmd

let get_entry r : Types.entry =
  let term = C.get_int r in
  let cmd = C.get_option get_cmd r in
  { term; cmd }

let put_reply w (rep : Types.reply) = C.put_option C.put_int w rep.value
let get_reply r : Types.reply = { value = C.get_option C.get_int r }

(* ---- Raft ---- *)

let put_raft w (m : Raft.msg) =
  match m with
  | RequestVote { term; cand; last_idx; last_term } ->
      C.put_byte w 0;
      C.put_int w term;
      C.put_int w cand;
      C.put_int w last_idx;
      C.put_int w last_term
  | Vote { term; from; granted; extras } ->
      C.put_byte w 1;
      C.put_int w term;
      C.put_int w from;
      C.put_bool w granted;
      C.put_list
        (fun w (idx, e, bal) ->
          C.put_int w idx;
          put_entry w e;
          C.put_int w bal)
        w extras
  | Append { term; leader; prev_idx; prev_term; entries; commit } ->
      C.put_byte w 2;
      C.put_int w term;
      C.put_int w leader;
      C.put_int w prev_idx;
      C.put_int w prev_term;
      C.put_list
        (fun w (e, bal) ->
          put_entry w e;
          C.put_int w bal)
        w entries;
      C.put_int w commit
  | Ack { term; from; success; match_idx; holders } ->
      C.put_byte w 3;
      C.put_int w term;
      C.put_int w from;
      C.put_bool w success;
      C.put_int w match_idx;
      C.put_list
        (fun w (holder, deadline) ->
          C.put_int w holder;
          C.put_int w deadline)
        w holders
  | Forward cmd ->
      C.put_byte w 4;
      put_cmd w cmd
  | Complete { cmd_id; reply } ->
      C.put_byte w 5;
      C.put_int w cmd_id;
      put_reply w reply
  | Grant { from; deadline; grantor_last } ->
      C.put_byte w 6;
      C.put_int w from;
      C.put_int w deadline;
      C.put_int w grantor_last
  | GrantConfirm { from; deadline } ->
      C.put_byte w 7;
      C.put_int w from;
      C.put_int w deadline

let get_raft r : Raft.msg =
  match C.u8 r with
  | 0 ->
      let term = C.get_int r in
      let cand = C.get_int r in
      let last_idx = C.get_int r in
      let last_term = C.get_int r in
      RequestVote { term; cand; last_idx; last_term }
  | 1 ->
      let term = C.get_int r in
      let from = C.get_int r in
      let granted = C.get_bool r in
      let extras =
        C.get_list
          (fun r ->
            let idx = C.get_int r in
            let e = get_entry r in
            let bal = C.get_int r in
            (idx, e, bal))
          r
      in
      Vote { term; from; granted; extras }
  | 2 ->
      let term = C.get_int r in
      let leader = C.get_int r in
      let prev_idx = C.get_int r in
      let prev_term = C.get_int r in
      let entries =
        C.get_list
          (fun r ->
            let e = get_entry r in
            let bal = C.get_int r in
            (e, bal))
          r
      in
      let commit = C.get_int r in
      Append { term; leader; prev_idx; prev_term; entries; commit }
  | 3 ->
      let term = C.get_int r in
      let from = C.get_int r in
      let success = C.get_bool r in
      let match_idx = C.get_int r in
      let holders =
        C.get_list
          (fun r ->
            let holder = C.get_int r in
            let deadline = C.get_int r in
            (holder, deadline))
          r
      in
      Ack { term; from; success; match_idx; holders }
  | 4 -> Forward (get_cmd r)
  | 5 ->
      let cmd_id = C.get_int r in
      let reply = get_reply r in
      Complete { cmd_id; reply }
  | 6 ->
      let from = C.get_int r in
      let deadline = C.get_int r in
      let grantor_last = C.get_int r in
      Grant { from; deadline; grantor_last }
  | 7 ->
      let from = C.get_int r in
      let deadline = C.get_int r in
      GrantConfirm { from; deadline }
  | _ -> C.malformed "raft tag"

(* ---- Mencius ---- *)

let put_mencius w (m : Mencius.msg) =
  match m with
  | MAppend { from; inst; cmd } ->
      C.put_byte w 0;
      C.put_int w from;
      C.put_int w inst;
      put_cmd w cmd
  | MAck { from; inst } ->
      C.put_byte w 1;
      C.put_int w from;
      C.put_int w inst
  | MSkip { from; first; upto } ->
      C.put_byte w 2;
      C.put_int w from;
      C.put_int w first;
      C.put_int w upto
  | MCommit { inst } ->
      C.put_byte w 3;
      C.put_int w inst
  | MRevoke { from; inst } ->
      C.put_byte w 4;
      C.put_int w from;
      C.put_int w inst
  | MRevStatus { from; inst; value } ->
      C.put_byte w 5;
      C.put_int w from;
      C.put_int w inst;
      C.put_option put_cmd w value
  | MSkipForce { inst } ->
      C.put_byte w 6;
      C.put_int w inst
  | MCatchup { from } ->
      C.put_byte w 7;
      C.put_int w from
  | MState { slots } ->
      C.put_byte w 8;
      C.put_list
        (fun w (inst, is_skip, value, committed) ->
          C.put_int w inst;
          C.put_bool w is_skip;
          C.put_option put_cmd w value;
          C.put_bool w committed)
        w slots
  | Complete { cmd_id; reply } ->
      C.put_byte w 9;
      C.put_int w cmd_id;
      put_reply w reply
  | MAppendMulti { from; items } ->
      C.put_byte w 10;
      C.put_int w from;
      C.put_list
        (fun w (inst, cmd) ->
          C.put_int w inst;
          put_cmd w cmd)
        w items
  | MAckMulti { from; insts } ->
      C.put_byte w 11;
      C.put_int w from;
      C.put_list C.put_int w insts
  | MCommitMulti { insts } ->
      C.put_byte w 12;
      C.put_list C.put_int w insts

let get_mencius r : Mencius.msg =
  match C.u8 r with
  | 0 ->
      let from = C.get_int r in
      let inst = C.get_int r in
      let cmd = get_cmd r in
      MAppend { from; inst; cmd }
  | 1 ->
      let from = C.get_int r in
      let inst = C.get_int r in
      MAck { from; inst }
  | 2 ->
      let from = C.get_int r in
      let first = C.get_int r in
      let upto = C.get_int r in
      MSkip { from; first; upto }
  | 3 -> MCommit { inst = C.get_int r }
  | 4 ->
      let from = C.get_int r in
      let inst = C.get_int r in
      MRevoke { from; inst }
  | 5 ->
      let from = C.get_int r in
      let inst = C.get_int r in
      let value = C.get_option get_cmd r in
      MRevStatus { from; inst; value }
  | 6 -> MSkipForce { inst = C.get_int r }
  | 7 -> MCatchup { from = C.get_int r }
  | 8 ->
      let slots =
        C.get_list
          (fun r ->
            let inst = C.get_int r in
            let is_skip = C.get_bool r in
            let value = C.get_option get_cmd r in
            let committed = C.get_bool r in
            (inst, is_skip, value, committed))
          r
      in
      MState { slots }
  | 9 ->
      let cmd_id = C.get_int r in
      let reply = get_reply r in
      Complete { cmd_id; reply }
  | 10 ->
      let from = C.get_int r in
      let items =
        C.get_list
          (fun r ->
            let inst = C.get_int r in
            let cmd = get_cmd r in
            (inst, cmd))
          r
      in
      MAppendMulti { from; items }
  | 11 ->
      let from = C.get_int r in
      let insts = C.get_list C.get_int r in
      MAckMulti { from; insts }
  | 12 -> MCommitMulti { insts = C.get_list C.get_int r }
  | _ -> C.malformed "mencius tag"

(* ---- MultiPaxos ---- *)

let put_multipaxos w (m : Multipaxos.msg) =
  match m with
  | Prepare { bal; from } ->
      C.put_byte w 0;
      C.put_int w bal;
      C.put_int w from
  | PrepareOk { bal; from; accepted } ->
      C.put_byte w 1;
      C.put_int w bal;
      C.put_int w from;
      C.put_list
        (fun w (inst, bal, value) ->
          C.put_int w inst;
          C.put_int w bal;
          C.put_option put_cmd w value)
        w accepted
  | Accept { bal; from; inst; cmd } ->
      C.put_byte w 2;
      C.put_int w bal;
      C.put_int w from;
      C.put_int w inst;
      C.put_option put_cmd w cmd
  | AcceptOk { bal; from; inst } ->
      C.put_byte w 3;
      C.put_int w bal;
      C.put_int w from;
      C.put_int w inst
  | Learn { inst; cmd } ->
      C.put_byte w 4;
      C.put_int w inst;
      C.put_option put_cmd w cmd
  | Forward cmd ->
      C.put_byte w 5;
      put_cmd w cmd
  | Complete { cmd_id; reply } ->
      C.put_byte w 6;
      C.put_int w cmd_id;
      put_reply w reply
  | AcceptMulti { bal; from; items } ->
      C.put_byte w 7;
      C.put_int w bal;
      C.put_int w from;
      C.put_list
        (fun w (inst, cmd) ->
          C.put_int w inst;
          C.put_option put_cmd w cmd)
        w items
  | AcceptOkMulti { bal; from; insts } ->
      C.put_byte w 8;
      C.put_int w bal;
      C.put_int w from;
      C.put_list C.put_int w insts
  | LearnMulti { items } ->
      C.put_byte w 9;
      C.put_list
        (fun w (inst, cmd) ->
          C.put_int w inst;
          C.put_option put_cmd w cmd)
        w items

let get_multipaxos r : Multipaxos.msg =
  match C.u8 r with
  | 0 ->
      let bal = C.get_int r in
      let from = C.get_int r in
      Prepare { bal; from }
  | 1 ->
      let bal = C.get_int r in
      let from = C.get_int r in
      let accepted =
        C.get_list
          (fun r ->
            let inst = C.get_int r in
            let bal = C.get_int r in
            let value = C.get_option get_cmd r in
            (inst, bal, value))
          r
      in
      PrepareOk { bal; from; accepted }
  | 2 ->
      let bal = C.get_int r in
      let from = C.get_int r in
      let inst = C.get_int r in
      let cmd = C.get_option get_cmd r in
      Accept { bal; from; inst; cmd }
  | 3 ->
      let bal = C.get_int r in
      let from = C.get_int r in
      let inst = C.get_int r in
      AcceptOk { bal; from; inst }
  | 4 ->
      let inst = C.get_int r in
      let cmd = C.get_option get_cmd r in
      Learn { inst; cmd }
  | 5 -> Forward (get_cmd r)
  | 6 ->
      let cmd_id = C.get_int r in
      let reply = get_reply r in
      Complete { cmd_id; reply }
  | 7 ->
      let bal = C.get_int r in
      let from = C.get_int r in
      let items =
        C.get_list
          (fun r ->
            let inst = C.get_int r in
            let cmd = C.get_option get_cmd r in
            (inst, cmd))
          r
      in
      AcceptMulti { bal; from; items }
  | 8 ->
      let bal = C.get_int r in
      let from = C.get_int r in
      let insts = C.get_list C.get_int r in
      AcceptOkMulti { bal; from; insts }
  | 9 ->
      let items =
        C.get_list
          (fun r ->
            let inst = C.get_int r in
            let cmd = C.get_option get_cmd r in
            (inst, cmd))
          r
      in
      LearnMulti { items }
  | _ -> C.malformed "multipaxos tag"

(* ---- protocol envelope ---- *)

let put_protocol_msg w = function
  | Raft_msg m ->
      C.put_byte w 0;
      put_raft w m
  | Mencius_msg m ->
      C.put_byte w 1;
      put_mencius w m
  | Multipaxos_msg m ->
      C.put_byte w 2;
      put_multipaxos w m

let get_protocol_msg r =
  match C.u8 r with
  | 0 -> Raft_msg (get_raft r)
  | 1 -> Mencius_msg (get_mencius r)
  | 2 -> Multipaxos_msg (get_multipaxos r)
  | _ -> C.malformed "protocol tag"

(* ---- frames ---- *)

let put_frame w = function
  | Peer_hello { node } ->
      C.put_byte w 0;
      C.put_int w node
  | Peer_msg { src; dst; msg } ->
      C.put_byte w 1;
      C.put_int w src;
      C.put_int w dst;
      put_protocol_msg w msg
  | Client_hello -> C.put_byte w 2
  | Client_req { req_id; op } ->
      C.put_byte w 3;
      C.put_int w req_id;
      put_op w op
  | Client_reply { req_id; value } ->
      C.put_byte w 4;
      C.put_int w req_id;
      C.put_option C.put_int w value
  | Snapshot_req -> C.put_byte w 5
  | Snapshot_reply { node; committed; snapshot } ->
      C.put_byte w 6;
      C.put_int w node;
      C.put_int w committed;
      C.put_string w snapshot

let get_frame r =
  match C.u8 r with
  | 0 -> Peer_hello { node = C.get_int r }
  | 1 ->
      let src = C.get_int r in
      let dst = C.get_int r in
      let msg = get_protocol_msg r in
      Peer_msg { src; dst; msg }
  | 2 -> Client_hello
  | 3 ->
      let req_id = C.get_int r in
      let op = get_op r in
      Client_req { req_id; op }
  | 4 ->
      let req_id = C.get_int r in
      let value = C.get_option C.get_int r in
      Client_reply { req_id; value }
  | 5 -> Snapshot_req
  | 6 ->
      let node = C.get_int r in
      let committed = C.get_int r in
      let snapshot = C.get_string r in
      Snapshot_reply { node; committed; snapshot }
  | _ -> C.malformed "frame tag"

let encode_frame_into w f =
  C.reset w;
  C.put_byte w version;
  put_frame w f

let encode_frame f =
  let w = C.writer () in
  encode_frame_into w f;
  C.to_string w

let decode_frame s =
  C.decode
    (fun r ->
      let v = C.u8 r in
      if v <> version then C.malformed "version";
      get_frame r)
    s
