(* Canonical applied-state snapshot: a replica's committed operation
   sequence rendered to a stable text form, followed by the key-value
   image that sequence produces.  Two replicas agree byte-for-byte iff
   they committed the same operations in the same order — the agreement
   oracle for the loopback demo and the sim-vs-net cross-check. *)

module Types = Raftpax_consensus.Types

let of_ops (ops : Types.op list) =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "raftpax-snapshot v1\n";
  Buffer.add_string buf (Printf.sprintf "ops %d\n" (List.length ops));
  List.iter
    (fun op ->
      Buffer.add_string buf (Types.render_op op);
      Buffer.add_char buf '\n')
    ops;
  (* Final store image: last write per key, dumped in sorted key order.
     Derived by replaying the op list, so it is deterministic — the local
     hashtable is only probed pointwise, never iterated. *)
  let store = Hashtbl.create 256 in
  let written =
    List.filter_map
      (function
        | Types.Put { key; write_id; _ } ->
            Hashtbl.replace store key write_id;
            Some key
        | Types.Get _ -> None)
      ops
  in
  Buffer.add_string buf "store\n";
  List.iter
    (fun key ->
      match Hashtbl.find_opt store key with
      | Some write_id ->
          Buffer.add_string buf (Printf.sprintf "%d=%d\n" key write_id);
          Hashtbl.remove store key
      | None -> ())
    (List.sort_uniq Int.compare written);
  Buffer.contents buf

(* FNV-1a 64-bit, for compact logging of snapshot identity. *)
let digest s =
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c ->
      h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) 0x100000001b3L)
    s;
  Printf.sprintf "%016Lx" !h
