(* Length-prefixed framing over a byte stream: 4-byte big-endian payload
   length, then the payload.  The reassembler turns arbitrary read(2)
   chunk boundaries back into whole frames. *)

let max_frame = 1 lsl 24

type error = Frame_too_large of int

exception Err of error

let encode payload =
  let n = String.length payload in
  if n >= max_frame then invalid_arg "Framing.encode: payload too large";
  let b = Bytes.create (4 + n) in
  Bytes.set b 0 (Char.chr ((n lsr 24) land 0xff));
  Bytes.set b 1 (Char.chr ((n lsr 16) land 0xff));
  Bytes.set b 2 (Char.chr ((n lsr 8) land 0xff));
  Bytes.set b 3 (Char.chr (n land 0xff));
  Bytes.blit_string payload 0 b 4 n;
  Bytes.unsafe_to_string b

(* Frame straight out of a scratch writer: one allocation (the framed
   string), no intermediate payload string. *)
let encode_writer w =
  let n = Codec.length w in
  if n >= max_frame then invalid_arg "Framing.encode_writer: payload too large";
  let b = Bytes.create (4 + n) in
  Bytes.set b 0 (Char.chr ((n lsr 24) land 0xff));
  Bytes.set b 1 (Char.chr ((n lsr 16) land 0xff));
  Bytes.set b 2 (Char.chr ((n lsr 8) land 0xff));
  Bytes.set b 3 (Char.chr (n land 0xff));
  Codec.blit w 0 b 4 n;
  Bytes.unsafe_to_string b

type reassembler = { mutable acc : string }

let reassembler () = { acc = "" }
let buffered t = String.length t.acc

let feed t chunk =
  t.acc <- (if String.length t.acc = 0 then chunk else t.acc ^ chunk);
  let rec pop acc frames =
    let len = String.length acc in
    if len < 4 then (acc, List.rev frames)
    else begin
      let n =
        (Char.code acc.[0] lsl 24)
        lor (Char.code acc.[1] lsl 16)
        lor (Char.code acc.[2] lsl 8)
        lor Char.code acc.[3]
      in
      if n >= max_frame then raise (Err (Frame_too_large n))
      else if len < 4 + n then (acc, List.rev frames)
      else pop (String.sub acc (4 + n) (len - 4 - n)) (String.sub acc 4 n :: frames)
    end
  in
  match pop t.acc [] with
  | rest, frames ->
      t.acc <- rest;
      Ok frames
  | exception Err e -> Error e
