(* Pure binary encoding primitives for the wire format: zigzag LEB128
   varints, length-prefixed strings, options and lists.  No Marshal, no
   effects — the format is fixed by this file alone, so it is stable
   across compiler versions and fuzzable from raw bytes. *)

type error = Truncated | Malformed of string

exception Err of error

let malformed what = raise (Err (Malformed what))

(* ---- writing ---- *)

type writer = Buffer.t

let writer () = Buffer.create 256
let writer_sized n = Buffer.create n
let reset = Buffer.clear
let length = Buffer.length
let blit = Buffer.blit
let to_string = Buffer.contents
let put_byte w v = Buffer.add_char w (Char.chr (v land 0xff))

(* Unsigned LEB128 over the int's 63-bit pattern (at most 9 bytes). *)
let put_uvarint w v =
  let v = ref v in
  let fin = ref false in
  while not !fin do
    let b = !v land 0x7f in
    v := !v lsr 7;
    if !v = 0 then begin
      put_byte w b;
      fin := true
    end
    else put_byte w (b lor 0x80)
  done

(* Zigzag maps small negatives to small codes: 0,-1,1,-2,... -> 0,1,2,3. *)
let put_int w v = put_uvarint w ((v lsl 1) lxor (v asr 62))
let put_bool w b = put_byte w (if b then 1 else 0)

let put_string w s =
  put_uvarint w (String.length s);
  Buffer.add_string w s

let put_option put w = function
  | None -> put_byte w 0
  | Some v ->
      put_byte w 1;
      put w v

let put_list put w xs =
  put_uvarint w (List.length xs);
  List.iter (put w) xs

(* ---- reading ---- *)

type reader = { data : string; mutable pos : int; limit : int }

let reader s = { data = s; pos = 0; limit = String.length s }

let u8 r =
  if r.pos >= r.limit then raise (Err Truncated)
  else begin
    let c = Char.code (String.unsafe_get r.data r.pos) in
    r.pos <- r.pos + 1;
    c
  end

let get_uvarint r =
  let acc = ref 0 in
  let shift = ref 0 in
  let fin = ref false in
  while not !fin do
    if !shift > 56 then malformed "varint too long";
    let b = u8 r in
    acc := !acc lor ((b land 0x7f) lsl !shift);
    shift := !shift + 7;
    if b land 0x80 = 0 then fin := true
  done;
  !acc

let get_int r =
  let u = get_uvarint r in
  (u lsr 1) lxor (-(u land 1))

let get_bool r =
  match u8 r with 0 -> false | 1 -> true | _ -> malformed "bool"

let get_string r =
  let n = get_uvarint r in
  if n < 0 || r.pos + n > r.limit then raise (Err Truncated);
  let s = String.sub r.data r.pos n in
  r.pos <- r.pos + n;
  s

let get_option get r =
  match u8 r with 0 -> None | 1 -> Some (get r) | _ -> malformed "option"

(* Bound list lengths well above anything the runtimes produce but far
   below anything that would let a corrupt length allocate unboundedly. *)
let max_list_len = 1_000_000

let get_list get r =
  let n = get_uvarint r in
  if n > max_list_len then malformed "list too long";
  let rec go k acc = if k = 0 then List.rev acc else go (k - 1) (get r :: acc) in
  go n []

let at_end r = r.pos >= r.limit

(* ---- entry point ---- *)

let decode f s =
  let r = reader s in
  match f r with
  | v -> if at_end r then Ok v else Error (Malformed "trailing bytes")
  | exception Err e -> Error e

let error_to_string = function
  | Truncated -> "truncated"
  | Malformed what -> "malformed " ^ what
