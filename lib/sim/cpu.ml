module Metrics = Raftpax_telemetry.Metrics

type probes = {
  busy : Metrics.counter;  (** cpu_busy_us: total µs of work executed *)
  queue : Metrics.histogram;  (** cpu_queue_us: wait before service starts *)
  ops : Metrics.counter;  (** cpu_ops: work items executed *)
}

type t = {
  engine : Engine.t;
  mutable free_at : int;
  mutable consumed : int;
  mutable probes : probes option;
}

let create engine = { engine; free_at = 0; consumed = 0; probes = None }

let set_metrics t m ~node =
  if Metrics.enabled m then
    t.probes <-
      Some
        {
          busy = Metrics.counter m "cpu_busy_us" ~node;
          queue = Metrics.histogram m "cpu_queue_us" ~node;
          ops = Metrics.counter m "cpu_ops" ~node;
        }

let exec t ~cost_us f =
  let now = Engine.now t.engine in
  let start = max now t.free_at in
  let finish = start + cost_us in
  t.free_at <- finish;
  t.consumed <- t.consumed + cost_us;
  (match t.probes with
  | Some p ->
      Metrics.add p.busy cost_us;
      Metrics.inc p.ops;
      Metrics.observe p.queue (start - now)
  | None -> ());
  (* Exact: [free_at] bookkeeping must match the firing time even while
     timer-skew fault injection is active. *)
  Engine.schedule ~kind:Engine.Exact t.engine ~delay:(finish - now) f

let busy_until t = t.free_at
let busy_us t = t.consumed

let utilisation t ~from_us ~until_us =
  let span = until_us - from_us in
  if span <= 0 then 0.0
  else min 1.0 (float_of_int t.consumed /. float_of_int span)
