type t = {
  mutable latencies : int array;  (** sample latencies, µs *)
  mutable times : int array;  (** completion times, µs *)
  mutable len : int;
  mutable sorted : int array option;
      (** cached sort of [latencies.(0..len-1)]; invalidated by {!record}
          (pp_summary alone takes three percentiles — sorting per call was
          3x the work) *)
}

let create () =
  { latencies = Array.make 1024 0; times = Array.make 1024 0; len = 0; sorted = None }

let record t ~latency_us ~at_us =
  if t.len = Array.length t.latencies then begin
    let grow a = Array.append a (Array.make (Array.length a) 0) in
    t.latencies <- grow t.latencies;
    t.times <- grow t.times
  end;
  t.latencies.(t.len) <- latency_us;
  t.times.(t.len) <- at_us;
  t.len <- t.len + 1;
  t.sorted <- None

let count t = t.len

let window t ~from_us ~until_us =
  let out = create () in
  for i = 0 to t.len - 1 do
    if t.times.(i) >= from_us && t.times.(i) < until_us then
      record out ~latency_us:t.latencies.(i) ~at_us:t.times.(i)
  done;
  out

let throughput_ops t ~from_us ~until_us =
  let w = window t ~from_us ~until_us in
  let span = float_of_int (until_us - from_us) /. 1_000_000.0 in
  if span <= 0.0 then 0.0 else float_of_int w.len /. span

let sorted_samples t =
  match t.sorted with
  | Some a -> a
  | None ->
      let a = Array.sub t.latencies 0 t.len in
      Array.sort Int.compare a;
      t.sorted <- Some a;
      a

let percentile_us t p =
  if t.len = 0 then 0
  else begin
    let a = sorted_samples t in
    let idx = int_of_float (p *. float_of_int (t.len - 1)) in
    a.(max 0 (min (t.len - 1) idx))
  end

let mean_us t =
  if t.len = 0 then 0.0
  else begin
    let sum = ref 0 in
    for i = 0 to t.len - 1 do
      sum := !sum + t.latencies.(i)
    done;
    float_of_int !sum /. float_of_int t.len
  end

let min_us t =
  let m = ref max_int in
  for i = 0 to t.len - 1 do
    if t.latencies.(i) < !m then m := t.latencies.(i)
  done;
  if t.len = 0 then 0 else !m

let max_us t =
  let m = ref 0 in
  for i = 0 to t.len - 1 do
    if t.latencies.(i) > !m then m := t.latencies.(i)
  done;
  !m

let merge ts =
  let out = create () in
  List.iter
    (fun t ->
      for i = 0 to t.len - 1 do
        record out ~latency_us:t.latencies.(i) ~at_us:t.times.(i)
      done)
    ts;
  out

let pp_summary ppf t =
  Fmt.pf ppf "n=%d p50=%.1fms p90=%.1fms p99=%.1fms" t.len
    (float_of_int (percentile_us t 0.50) /. 1000.0)
    (float_of_int (percentile_us t 0.90) /. 1000.0)
    (float_of_int (percentile_us t 0.99) /. 1000.0)
