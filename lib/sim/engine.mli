(** Discrete-event simulation core: a virtual clock and a time-ordered
    event heap.  Time is in integer microseconds.

    Events scheduled for the same instant fire in scheduling order
    (FIFO), which keeps runs deterministic. *)

type t

val create : ?seed:int64 -> unit -> t
val now : t -> int
(** Current virtual time, microseconds. *)

val rng : t -> Rng.t

type kind =
  | Timer  (** protocol timers — subject to clock-skew fault injection *)
  | Message  (** network deliveries — faulted by {!Net}, never skewed here *)
  | Exact  (** harness bookkeeping — never warped *)

val schedule :
  ?kind:kind ->
  ?node:int ->
  ?label:string ->
  t ->
  delay:int ->
  (unit -> unit) ->
  unit
(** Enqueue a callback [delay] µs from now ([delay >= 0]).  [kind]
    defaults to [Timer].  [node]/[label] are advisory identities used by
    the model checker's manual mode to name timer choices; they default
    to [-1]/[""] and are ignored in normal simulation. *)

type timer

val schedule_cancellable :
  ?kind:kind ->
  ?node:int ->
  ?label:string ->
  t ->
  delay:int ->
  (unit -> unit) ->
  timer

val cancel : timer -> unit
(** Cancelling an already-fired timer is a no-op. *)

val set_timer_skew : t -> (int -> int) option -> unit
(** Clock-skew fault injection: while set, every [Timer]-kind delay is
    passed through the hook before scheduling (clamped to [>= 0]).
    [Message] and [Exact] events are unaffected, so network semantics and
    the test harness keep exact time. *)

val run : t -> until:int -> unit
(** Process events in time order until the clock would pass [until] (µs)
    or no events remain. *)

val run_all : t -> unit
(** Drain every event (use only when the event set is known finite). *)

val pending : t -> int
(** Number of queued events (including cancelled-but-unpopped timers). *)

val events_executed : t -> int
(** Total events run so far (cancelled events are not counted) — the
    denominator-free half of the BENCH_engine events/sec metric. *)

val next_deadline : t -> int option
(** Virtual time of the earliest queued event, if any.  May name a
    cancelled event (waking early is harmless); used by the network
    shell to size its [select] timeout. *)

(** {1 Manual mode} — used by the {!Raftpax_mcheck} model checker.

    While manual mode is on, newly scheduled [Timer]-kind events are
    held in a pending set instead of the heap and only run when
    explicitly fired; [Message]/[Exact]-kind events go to a FIFO
    trampoline drained by {!manual_drain} (or automatically after a
    {!manual_fire}).  Firing a timer advances the clock to that timer's
    nominal deadline (never backwards), so elapsed-time guards inside
    the runtimes still observe time passing; everything else runs at the
    current clock. *)

val set_manual : t -> bool -> unit

val is_manual : t -> bool
(** Whether manual mode is on.  Runtimes that coalesce timer reschedules
    in simulation (e.g. a lazily re-armed election timer) must keep the
    one-event-per-reset shape under the model checker, where each held
    timer is an explicit choice. *)

val manual_pending : t -> timer list
(** Live (uncancelled, unfired) manually-held timers, in scheduling
    order. *)

val manual_fire : t -> timer -> bool
(** Fire one held timer: advance the clock to [max clock deadline], run
    it, then drain the trampoline.  Returns [false] if it was already
    cancelled. *)

val manual_drain : t -> unit

val event_seq : timer -> int
val event_node : timer -> int
val event_label : timer -> string
val event_time : timer -> int

(** {1 Milliseconds helpers} — the protocol code thinks in ms. *)

val ms : int -> int
val us_to_ms : int -> float
