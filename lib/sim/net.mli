(** Message transport over the simulated WAN.

    Delivery time combines: a serialisation delay on the sender's NIC
    (size / bandwidth, FIFO per sender — this is what saturates a leader's
    uplink in the 4 KB experiments), the one-way propagation latency of the
    site pair, and a small jitter.  Delivery is FIFO per (src, dst) link —
    the TCP-stream assumption real implementations (etcd) make.  Messages
    can be dropped by probability or cut by a partition predicate.

    The transport is payload-agnostic: the caller passes a closure that
    delivers the typed message, so the network needs no knowledge of
    protocol message types. *)

type t

type node = {
  id : int;
  site : Topology.site;
}

val create :
  ?drop_probability:float ->
  ?jitter_us:int ->
  Engine.t ->
  nodes:node list ->
  t

val engine : t -> Engine.t
val nodes : t -> node list

val size : t -> int
(** Cluster size, cached at creation — use this instead of recomputing
    [List.length (nodes t)] when sizing per-replica state. *)


val node_site : t -> int -> Topology.site

val set_partition : t -> (int -> int -> bool) option -> unit
(** [set_partition t (Some cut)]: messages from [a] to [b] are silently
    dropped whenever [cut a b] is true.  [None] heals. *)

(** {1 Fault injection hooks} *)

type chaos = {
  delay_us : int;  (** extra per-message delay, uniform in [0, delay_us) *)
  dup_probability : float;  (** chance a message is delivered twice *)
  drop_probability : float;  (** extra drop chance on top of the base *)
  reorder : bool;
      (** exempt chaotic messages from the per-link FIFO clamp, so a
          delayed message can overtake later ones on the same link *)
}

val set_chaos : t -> chaos option -> unit
(** While set, every message is subject to the chaos parameters; [None]
    restores clean TCP-like semantics.  All randomness is drawn from the
    net's seeded RNG, so runs stay deterministic. *)

type monitor = now:int -> src:int -> dst:int -> size:int -> dropped:bool -> unit

val set_monitor : t -> monitor option -> unit
(** Observation tap: called once per {!send} with the send-time fault
    decision ([dropped] covers probability drops, partition cuts and chaos
    drops; a mid-flight crash loss is not reported). *)

type capture =
  src:int ->
  dst:int ->
  size:int ->
  info:((int -> int) -> string) ->
  (unit -> unit) ->
  unit

val set_capture : t -> capture option -> unit
(** Model-checker interception: while set, {!send} hands every message
    (its delivery closure plus a payload renderer) to the hook instead
    of scheduling it, bypassing timing, chaos and probes.  The hook
    decides if/when to invoke the closure.  The renderer takes a node-id
    renaming so the checker can re-fingerprint captured messages under a
    symmetry permutation; pass [Fun.id] for the plain rendering.  A down
    sender is still silenced at send time; delivery-time down/partition
    checks become the checker's responsibility. *)

val set_metrics : t -> Raftpax_telemetry.Metrics.t -> unit
(** Attach per-node probes: [net_msgs_sent] / [net_msgs_dropped] /
    [net_bytes_sent] counters and the [net_queue_us] (uplink FIFO wait)
    and [net_flight_us] (departure-to-arrival) histograms, all keyed by
    the sending node.  A disabled registry attaches nothing. *)

val set_node_down : t -> int -> bool -> unit
(** A down node neither sends nor receives. *)

val node_down : t -> int -> bool

val send :
  ?info:((int -> int) -> string) ->
  t ->
  src:int ->
  dst:int ->
  size:int ->
  (unit -> unit) ->
  unit
(** [send t ~src ~dst ~size deliver] transmits a message of [size] bytes;
    [deliver] runs at the destination's delivery time unless the message is
    dropped.  Sending to self delivers after {!Topology.local_us}.
    [info] lazily renders the payload for the capture hook, under the
    node-id renaming it is given (protocols pass it down to their
    [render_msg ~rename]); it is never forced on the normal path. *)

(** {1 Introspection for tests and benches} *)

val sent_count : t -> int
val dropped_count : t -> int
val bytes_sent : t -> int -> int
(** Total bytes a node has put on the wire. *)
