(** The evaluation's geography: five AWS regions with the paper's WAN
    characteristics (Section 5: round-trips from 25 ms to 292 ms; m4.xlarge
    instances with 750 Mbit/s NICs, Oregon with the best network). *)

type site = Oregon | Ohio | Ireland | Canada | Seoul

val sites : site list
val site_index : site -> int
val site_of_index : int -> site
val site_name : site -> string

val rtt_ms : site -> site -> int
(** Round-trip time between sites in milliseconds (0 within a site). *)

val one_way_us : site -> site -> int
(** One-way latency in microseconds (rtt / 2); local delivery within a
    site costs {!local_us}. *)

val local_us : int
(** Client-to-colocated-server latency (one way). *)

val bandwidth_bytes_per_sec : site -> int
(** Effective NIC bandwidth of a server at this site. *)

val nearest_majority_rtt_ms : site -> int
(** RTT needed to assemble a majority (3 of 5) from this site: the 2nd
    smallest RTT to the other sites — what a leader at this site pays per
    commit round. *)

val ranked_by_nearest_majority : site list
(** The sites ordered by ascending {!nearest_majority_rtt_ms} (ties keep
    canonical site order) — the CD-Raft-style preference list a sharded
    deployment uses to place per-group leaders where a commit round is
    cheapest. *)
