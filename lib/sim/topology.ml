type site = Oregon | Ohio | Ireland | Canada | Seoul

let sites = [ Oregon; Ohio; Ireland; Canada; Seoul ]

let site_index = function
  | Oregon -> 0
  | Ohio -> 1
  | Ireland -> 2
  | Canada -> 3
  | Seoul -> 4

let site_of_index = function
  | 0 -> Oregon
  | 1 -> Ohio
  | 2 -> Ireland
  | 3 -> Canada
  | 4 -> Seoul
  | i -> invalid_arg (Printf.sprintf "Topology.site_of_index %d" i)

let site_name = function
  | Oregon -> "Oregon"
  | Ohio -> "Ohio"
  | Ireland -> "Ireland"
  | Canada -> "Canada"
  | Seoul -> "Seoul"

(* Measured-style AWS inter-region RTTs (ms), chosen to span the paper's
   25–292 ms range with Oregon best-connected and Seoul worst. *)
let rtt_table =
  (* Oregon Ohio Ireland Canada Seoul *)
  [|
    [| 0; 50; 130; 60; 125 |];
    (* Oregon *)
    [| 50; 0; 75; 25; 180 |];
    (* Ohio *)
    [| 130; 75; 0; 70; 292 |];
    (* Ireland *)
    [| 60; 25; 70; 0; 190 |];
    (* Canada *)
    [| 125; 180; 292; 190; 0 |];
    (* Seoul *)
  |]

let rtt_ms a b = rtt_table.(site_index a).(site_index b)
let local_us = 300
let one_way_us a b = if a = b then local_us else rtt_ms a b * 1000 / 2

(* 750 Mbit/s nominal; effective WAN throughput discounted, with Oregon the
   best-provisioned site and Seoul ~30% below it (Section 5.2 observes a
   30% gap between Raft-Oregon and Raft-Seoul when network-bound). *)
let bandwidth_bytes_per_sec = function
  | Oregon -> 93_750_000
  | Ohio -> 87_500_000
  | Ireland -> 81_250_000
  | Canada -> 87_500_000
  | Seoul -> 65_625_000

let nearest_majority_rtt_ms site =
  let others =
    sites
    |> List.filter (fun s -> s <> site)
    |> List.map (rtt_ms site)
    |> List.sort Int.compare
  in
  match others with _ :: second :: _ -> second | _ -> 0

let ranked_by_nearest_majority =
  (* stable sort: ties keep the canonical site order *)
  List.stable_sort
    (fun a b ->
      Int.compare (nearest_majority_rtt_ms a) (nearest_majority_rtt_ms b))
    sites
