(** Per-node CPU service model.

    Each node owns a single-server FIFO queue: work items occupy the CPU
    for a configured cost, so a node saturates at [1 / cost] items per
    second — this is what bounds leader throughput in the CPU-bound
    experiments (Fig. 9c, Fig. 10a).  Batching is modelled by charging one
    item for a batch where the protocol batches. *)

type t

val create : Engine.t -> t

val set_metrics : t -> Raftpax_telemetry.Metrics.t -> node:int -> unit
(** Attach probes: [cpu_busy_us] / [cpu_ops] counters and the
    [cpu_queue_us] histogram (how long work sat in the FIFO before the
    CPU picked it up — the leader-saturation signal).  A disabled
    registry attaches nothing. *)

val exec : t -> cost_us:int -> (unit -> unit) -> unit
(** Enqueue work: [f] runs once the CPU has spent [cost_us] on it, after
    all previously queued work. *)

val busy_until : t -> int
val busy_us : t -> int
(** Total µs of CPU consumed so far. *)

val utilisation : t -> from_us:int -> until_us:int -> float
(** Approximate utilisation over a window (consumed CPU / wall time,
    clamped to 1). *)
