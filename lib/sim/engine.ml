type kind = Timer | Message | Exact

type event = {
  time : int;
  seq : int;
  run : unit -> unit;
  mutable dead : bool;
  node : int;
  label : string;
}

(* Binary min-heap on (time, seq).

   Cancelled events are removed lazily — normally when their time comes —
   but a far-future cancelled timer (a client retry deadline, an election
   timer reset on every append) would otherwise sit in the array for its
   whole nominal delay.  At fig9 rates that grows the heap to the total
   op count and every push/pop sifts through a cold multi-thousand-entry
   array.  [maybe_sweep] compacts the dead entries away with an amortized
   O(1)-per-push bound, keeping the heap at live size. *)
module Heap = struct
  type t = {
    mutable a : event array;
    mutable len : int;
    mutable pushes_since_sweep : int;
  }

  let dummy =
    { time = 0; seq = 0; run = ignore; dead = true; node = -1; label = "" }
  let create () = { a = Array.make 256 dummy; len = 0; pushes_since_sweep = 0 }

  let less x y = x.time < y.time || (x.time = y.time && x.seq < y.seq)

  let sift_down h i =
    let i = ref i in
    let continue = ref true in
    while !continue do
      let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
      let smallest = ref !i in
      if l < h.len && less h.a.(l) h.a.(!smallest) then smallest := l;
      if r < h.len && less h.a.(r) h.a.(!smallest) then smallest := r;
      if !smallest <> !i then begin
        let tmp = h.a.(!smallest) in
        h.a.(!smallest) <- h.a.(!i);
        h.a.(!i) <- tmp;
        i := !smallest
      end
      else continue := false
    done

  (* Every [max 1024 len] pushes, count the dead entries; if they are at
     least a quarter of the heap, drop them and re-heapify (bottom-up,
     O(len)).  Scan and rebuild are both paid at most once per [len]
     pushes, so the amortized per-push cost is constant, and the result
     depends only on the heap contents — determinism is untouched. *)
  let maybe_sweep h =
    h.pushes_since_sweep <- h.pushes_since_sweep + 1;
    if h.pushes_since_sweep >= max 1024 h.len then begin
      h.pushes_since_sweep <- 0;
      let dead = ref 0 in
      for i = 0 to h.len - 1 do
        if h.a.(i).dead then incr dead
      done;
      if !dead * 4 >= h.len then begin
        let live = ref 0 in
        for i = 0 to h.len - 1 do
          if not h.a.(i).dead then begin
            h.a.(!live) <- h.a.(i);
            incr live
          end
        done;
        for i = !live to h.len - 1 do
          h.a.(i) <- dummy
        done;
        h.len <- !live;
        for i = (h.len / 2) - 1 downto 0 do
          sift_down h i
        done
      end
    end

  let push h e =
    maybe_sweep h;
    if h.len = Array.length h.a then begin
      let a' = Array.make (2 * h.len) dummy in
      Array.blit h.a 0 a' 0 h.len;
      h.a <- a'
    end;
    h.a.(h.len) <- e;
    h.len <- h.len + 1;
    let i = ref (h.len - 1) in
    while
      !i > 0
      &&
      let p = (!i - 1) / 2 in
      less h.a.(!i) h.a.(p)
    do
      let p = (!i - 1) / 2 in
      let tmp = h.a.(p) in
      h.a.(p) <- h.a.(!i);
      h.a.(!i) <- tmp;
      i := p
    done

  let pop h =
    if h.len = 0 then None
    else begin
      let top = h.a.(0) in
      h.len <- h.len - 1;
      h.a.(0) <- h.a.(h.len);
      h.a.(h.len) <- dummy;
      sift_down h 0;
      Some top
    end
end

type t = {
  heap : Heap.t;
  mutable clock : int;
  mutable next_seq : int;
  mutable executed : int;
  rng : Rng.t;
  mutable timer_skew : (int -> int) option;
  (* Manual (model-checking) mode: timers become explicitly fireable
     choices and message/exact events drain through a FIFO trampoline
     instead of the time-ordered heap.  The clock only advances when a
     timer fires (to that timer's nominal deadline), so wall-clock
     guards inside the runtimes still see time pass. *)
  mutable manual : bool;
  mutable manual_timers : event list;
  manual_queue : event Queue.t;
}

type timer = event

let create ?(seed = 42L) () =
  {
    heap = Heap.create ();
    clock = 0;
    next_seq = 0;
    executed = 0;
    rng = Rng.create seed;
    timer_skew = None;
    manual = false;
    manual_timers = [];
    manual_queue = Queue.create ();
  }

let now t = t.clock
let rng t = t.rng
let set_timer_skew t f = t.timer_skew <- f
let set_manual t b = t.manual <- b
let is_manual t = t.manual

let schedule_cancellable ?(kind = Timer) ?(node = -1) ?(label = "") t ~delay run
    =
  assert (delay >= 0);
  let delay =
    match (kind, t.timer_skew) with
    | Timer, Some warp -> max 0 (warp delay)
    | _ -> delay
  in
  let e =
    { time = t.clock + delay; seq = t.next_seq; run; dead = false; node; label }
  in
  t.next_seq <- t.next_seq + 1;
  if t.manual then begin
    match kind with
    | Timer -> t.manual_timers <- e :: t.manual_timers
    | Message | Exact -> Queue.add e t.manual_queue
  end
  else Heap.push t.heap e;
  e

let schedule ?kind ?node ?label t ~delay run =
  ignore (schedule_cancellable ?kind ?node ?label t ~delay run)

let cancel e = e.dead <- true

(* Drain the manual trampoline: message deliveries and cpu-exec
   continuations run to quiescence, in FIFO order.  Events enqueued
   while draining are processed in the same drain. *)
let manual_drain t =
  while not (Queue.is_empty t.manual_queue) do
    let e = Queue.pop t.manual_queue in
    if not e.dead then begin
      t.executed <- t.executed + 1;
      e.run ()
    end
  done

let manual_pending t =
  t.manual_timers <- List.filter (fun e -> not e.dead) t.manual_timers;
  List.sort (fun a b -> Int.compare a.seq b.seq) t.manual_timers

let manual_fire t e =
  if e.dead then false
  else begin
    t.manual_timers <- List.filter (fun e' -> e' != e) t.manual_timers;
    if e.time > t.clock then t.clock <- e.time;
    t.executed <- t.executed + 1;
    e.run ();
    manual_drain t;
    true
  end

let event_seq e = e.seq
let event_node e = e.node
let event_label e = e.label
let event_time e = e.time

let[@perf.hot] run t ~until =
  let continue = ref true in
  while !continue do
    match Heap.pop t.heap with
    | None -> continue := false
    | Some e when e.time > until ->
        (* Put it back conceptually: since we popped it, re-push. *)
        Heap.push t.heap e;
        continue := false
    | Some e ->
        t.clock <- e.time;
        if not e.dead then begin
          t.executed <- t.executed + 1;
          e.run ()
        end
  done;
  if t.clock < until then t.clock <- until

let run_all t =
  let continue = ref true in
  while !continue do
    match Heap.pop t.heap with
    | None -> continue := false
    | Some e ->
        t.clock <- e.time;
        if not e.dead then begin
          t.executed <- t.executed + 1;
          e.run ()
        end
  done

let pending t = t.heap.Heap.len
let events_executed t = t.executed

let next_deadline t =
  if t.heap.Heap.len = 0 then None else Some t.heap.Heap.a.(0).time
let ms x = x * 1000
let us_to_ms us = float_of_int us /. 1000.0
