module Metrics = Raftpax_telemetry.Metrics

type node = { id : int; site : Topology.site }

type chaos = {
  delay_us : int;
  dup_probability : float;
  drop_probability : float;
  reorder : bool;
}

type monitor = now:int -> src:int -> dst:int -> size:int -> dropped:bool -> unit

type capture =
  src:int ->
  dst:int ->
  size:int ->
  info:((int -> int) -> string) ->
  (unit -> unit) ->
  unit

type probes = {
  sent : Metrics.counter array;  (** net_msgs_sent, per src *)
  dropped_c : Metrics.counter array;  (** net_msgs_dropped, per src *)
  bytes : Metrics.counter array;  (** net_bytes_sent, per src *)
  queue : Metrics.histogram array;
      (** net_queue_us: wait for the FIFO uplink before transmission *)
  flight : Metrics.histogram array;
      (** net_flight_us: departure to arrival (propagation + jitter + chaos) *)
}

type t = {
  engine : Engine.t;
  nodes : node list;
  sites : Topology.site array;
  drop_probability : float;
  jitter_us : int;
  rng : Rng.t;
  mutable partition : (int -> int -> bool) option;
  mutable chaos : chaos option;
  mutable monitor : monitor option;
  mutable capture : capture option;
  mutable probes : probes option;
  down : bool array;
  (* FIFO NIC model: the time at which each node's uplink frees up. *)
  uplink_free_at : int array;
  (* TCP-like per-link ordering: the last scheduled arrival per (src,dst);
     a later message never overtakes an earlier one on the same link. *)
  link_last_arrival : int array array;
  bytes_out : int array;
  mutable sent : int;
  mutable dropped : int;
}

let create ?(drop_probability = 0.0) ?(jitter_us = 200) engine ~nodes =
  let n = List.length nodes in
  let sites = Array.make n Topology.Oregon in
  List.iter (fun node -> sites.(node.id) <- node.site) nodes;
  {
    engine;
    nodes;
    sites;
    drop_probability;
    jitter_us;
    rng = Rng.split (Engine.rng engine);
    partition = None;
    chaos = None;
    monitor = None;
    capture = None;
    probes = None;
    down = Array.make n false;
    uplink_free_at = Array.make n 0;
    link_last_arrival = Array.make_matrix n n 0;
    bytes_out = Array.make n 0;
    sent = 0;
    dropped = 0;
  }

let engine t = t.engine
let nodes t = t.nodes
let size t = Array.length t.sites
let node_site t id = t.sites.(id)
let set_partition t p = t.partition <- p
let set_chaos t c = t.chaos <- c
let set_monitor t m = t.monitor <- m
let set_capture t c = t.capture <- c

let set_metrics t m =
  if Metrics.enabled m then begin
    let n = Array.length t.sites in
    let per name f = Array.init n (fun node -> f m name ~node) in
    t.probes <-
      Some
        {
          sent = per "net_msgs_sent" Metrics.counter;
          dropped_c = per "net_msgs_dropped" Metrics.counter;
          bytes = per "net_bytes_sent" Metrics.counter;
          queue = per "net_queue_us" Metrics.histogram;
          flight = per "net_flight_us" Metrics.histogram;
        }
  end

let set_node_down t id b = t.down.(id) <- b
let node_down t id = t.down.(id)

let cut t src dst =
  match t.partition with Some p -> p src dst | None -> false

let send ?(info = fun _ -> "") t ~src ~dst ~size deliver =
  match t.capture with
  | Some hook ->
      (* Model-checker interception: every send becomes an explicit
         pending message under the checker's control; timing, chaos and
         probes are bypassed.  A down sender still silently loses the
         message at send time, mirroring the normal path below. *)
      if not t.down.(src) then hook ~src ~dst ~size ~info deliver
  | None ->
  if t.down.(src) then ()
  else begin
    t.sent <- t.sent + 1;
    t.bytes_out.(src) <- t.bytes_out.(src) + size;
    let now = Engine.now t.engine in
    (* Serialisation: the sender's NIC is FIFO; a message waits for the
       uplink then occupies it for size/bandwidth. *)
    let bw = Topology.bandwidth_bytes_per_sec t.sites.(src) in
    let tx_us = size * 1_000_000 / bw in
    let start = max now t.uplink_free_at.(src) in
    let departure = start + tx_us in
    t.uplink_free_at.(src) <- departure;
    let propagation = Topology.one_way_us t.sites.(src) t.sites.(dst) in
    let jitter = if t.jitter_us = 0 then 0 else Rng.int t.rng t.jitter_us in
    (* Chaos faults: an extra delay, an extra drop chance, a duplicate
       delivery, and (with [reorder]) an exemption from the per-link FIFO
       clamp so a delayed copy can overtake its successors.  Self-sends
       (the client-to-colocated-replica hop) are local calls, not WAN
       traffic, so chaos leaves them alone: duplicating one would model a
       duplicate client *submission*, which none of the protocols claim
       to dedupe. *)
    let extra, chaos_drop, duplicate, reorder =
      match t.chaos with
      | None -> (0, false, false, false)
      | Some _ when src = dst -> (0, false, false, false)
      | Some c ->
          let extra = if c.delay_us > 0 then Rng.int t.rng c.delay_us else 0 in
          let drop =
            c.drop_probability > 0.0 && Rng.bool t.rng c.drop_probability
          in
          let dup =
            c.dup_probability > 0.0 && Rng.bool t.rng c.dup_probability
          in
          (extra, drop, dup, c.reorder)
    in
    let base = departure + propagation + jitter + extra in
    let arrival =
      if reorder then base else max base t.link_last_arrival.(src).(dst)
    in
    if not reorder then t.link_last_arrival.(src).(dst) <- arrival;
    let dropped_at_send =
      Rng.bool t.rng t.drop_probability || cut t src dst || chaos_drop
    in
    (match t.monitor with
    | Some m -> m ~now ~src ~dst ~size ~dropped:dropped_at_send
    | None -> ());
    (match t.probes with
    | Some p ->
        Metrics.inc p.sent.(src);
        Metrics.add p.bytes.(src) size;
        Metrics.observe p.queue.(src) (start - now);
        if dropped_at_send then Metrics.inc p.dropped_c.(src)
        else Metrics.observe p.flight.(src) (arrival - departure)
    | None -> ());
    let deliver_at when_us =
      Engine.schedule ~kind:Engine.Message t.engine ~delay:(when_us - now)
        (fun () ->
          (* Faults are evaluated at delivery time as well, so a node that
             crashes (or a link that is cut) mid-flight loses the message. *)
          if t.down.(dst) || t.down.(src) || cut t src dst then begin
            t.dropped <- t.dropped + 1;
            match t.probes with
            | Some p -> Metrics.inc p.dropped_c.(src)
            | None -> ()
          end
          else deliver ())
    in
    if dropped_at_send then t.dropped <- t.dropped + 1
    else begin
      deliver_at arrival;
      if duplicate then
        (* The copy takes its own (unclamped) path, arriving a little
           later — or, relative to subsequent traffic, out of order. *)
        deliver_at (arrival + 1 + Rng.int t.rng 50_000)
    end
  end

let sent_count t = t.sent
let dropped_count t = t.dropped
let bytes_sent t id = t.bytes_out.(id)
