module Rng = Raftpax_sim.Rng
module Types = Raftpax_consensus.Types

type spec = {
  read_fraction : float;
  conflict_rate : float;
  value_size : int;
  records : int;
  clients_per_region : int;
}

let default =
  {
    read_fraction = 0.9;
    conflict_rate = 0.05;
    value_size = 8;
    records = 100_000;
    clients_per_region = 50;
  }

type t = {
  spec : spec;
  regions : int;
  rng : Rng.t;
  mutable next_write_id : int;
}

let hot_key = Raftpax_consensus.Mencius.hot_key

let create ~seed ~regions spec =
  { spec; regions; rng = Rng.create seed; next_write_id = 1 }

let spec t = t.spec

let pick_key t ~region =
  if Rng.bool t.rng t.spec.conflict_rate then hot_key
  else begin
    (* Keys 1 .. records, pre-partitioned evenly among the regions. *)
    let per_region = t.spec.records / t.regions in
    1 + (region * per_region) + Rng.int t.rng (max 1 per_region)
  end

let next_op t ~region =
  let key = pick_key t ~region in
  if Rng.bool t.rng t.spec.read_fraction then Types.Get { key }
  else begin
    let write_id = t.next_write_id in
    t.next_write_id <- write_id + 1;
    Types.Put { key; size = t.spec.value_size; write_id }
  end

let writes_issued t = t.next_write_id - 1

(* Key ownership for the sharded serving layer.  A pure function of the
   key alone — no RNG, no run state — so the partition is total (every
   key owned by exactly one group) and stable under reseeding.  The
   multiplicative mix spreads each region's contiguous key range across
   the groups instead of handing whole ranges to one group. *)
let group_of_key ~shards key =
  if shards <= 1 then 0
  else begin
    let h = (key * 0x9E3779B1) lxor (key lsr 16) in
    (h land max_int) mod shards
  end
