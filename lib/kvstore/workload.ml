module Rng = Raftpax_sim.Rng
module Types = Raftpax_consensus.Types

type key_dist = Uniform | Zipfian of float

type spec = {
  read_fraction : float;
  conflict_rate : float;
  value_size : int;
  records : int;
  clients_per_region : int;
  key_dist : key_dist;
}

let default =
  {
    read_fraction = 0.9;
    conflict_rate = 0.05;
    value_size = 8;
    records = 100_000;
    clients_per_region = 50;
    key_dist = Uniform;
  }

(* YCSB's zipfian generator (Gray et al.'s rejection-free form): draws a
   rank in [1, n] where rank r has probability proportional to 1/r^theta.
   zetan is precomputed once at workload creation. *)
type zipf = { zn : int; theta : float; alpha : float; zetan : float; eta : float }

let zeta n theta =
  let s = ref 0.0 in
  for i = 1 to n do
    s := !s +. (1.0 /. Float.pow (float_of_int i) theta)
  done;
  !s

let make_zipf ~n ~theta =
  let n = max 1 n in
  let zetan = zeta n theta in
  let zeta2 = zeta 2 theta in
  {
    zn = n;
    theta;
    alpha = 1.0 /. (1.0 -. theta);
    zetan;
    eta =
      (1.0 -. Float.pow (2.0 /. float_of_int n) (1.0 -. theta))
      /. (1.0 -. (zeta2 /. zetan));
  }

(* Rank in [1, z.zn], skewed toward 1. *)
let zipf_rank z rng =
  let u = Rng.float rng 1.0 in
  let uz = u *. z.zetan in
  if uz < 1.0 then 1
  else if uz < 1.0 +. Float.pow 0.5 z.theta then 2
  else begin
    let r =
      1
      + int_of_float
          (float_of_int z.zn *. Float.pow ((z.eta *. u) -. z.eta +. 1.0) z.alpha)
    in
    if r < 1 then 1 else if r > z.zn then z.zn else r
  end

type t = {
  spec : spec;
  regions : int;
  rng : Rng.t;
  zipf : zipf option;
  mutable next_write_id : int;
}

let hot_key = Raftpax_consensus.Mencius.hot_key

let create ~seed ~regions spec =
  let zipf =
    match spec.key_dist with
    | Uniform -> None
    | Zipfian theta ->
        Some (make_zipf ~n:(spec.records / max 1 regions) ~theta)
  in
  { spec; regions; rng = Rng.create seed; zipf; next_write_id = 1 }

let spec t = t.spec

let pick_key t ~region =
  if Rng.bool t.rng t.spec.conflict_rate then hot_key
  else begin
    (* Keys 1 .. records, pre-partitioned evenly among the regions. *)
    let per_region = t.spec.records / t.regions in
    match t.zipf with
    | None -> 1 + (region * per_region) + Rng.int t.rng (max 1 per_region)
    | Some z ->
        (* Rank 1 (most popular) maps to the region's first key. *)
        (region * per_region) + min (zipf_rank z t.rng) (max 1 per_region)
  end

let next_op t ~region =
  let key = pick_key t ~region in
  if Rng.bool t.rng t.spec.read_fraction then Types.Get { key }
  else begin
    let write_id = t.next_write_id in
    t.next_write_id <- write_id + 1;
    Types.Put { key; size = t.spec.value_size; write_id }
  end

let writes_issued t = t.next_write_id - 1

(* Key ownership for the sharded serving layer.  A pure function of the
   key alone — no RNG, no run state — so the partition is total (every
   key owned by exactly one group) and stable under reseeding.  The
   multiplicative mix spreads each region's contiguous key range across
   the groups instead of handing whole ranges to one group. *)
let group_of_key ~shards key =
  if shards <= 1 then 0
  else begin
    let h = (key * 0x9E3779B1) lxor (key lsr 16) in
    (h land max_int) mod shards
  end
