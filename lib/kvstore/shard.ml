module Sim = Raftpax_sim
module Engine = Sim.Engine
module Net = Sim.Net
module Topology = Sim.Topology
module Stats = Sim.Stats
module Types = Raftpax_consensus.Types
module Telemetry = Raftpax_telemetry.Telemetry
module Metrics = Raftpax_telemetry.Metrics
module Json = Raftpax_telemetry.Json

type placement = Fixed of Topology.site | Round_robin | Nearest_majority

let placement_name = function
  | Fixed site -> "fixed:" ^ String.lowercase_ascii (Topology.site_name site)
  | Round_robin -> "round-robin"
  | Nearest_majority -> "nearest-majority"

let leader_sites placement ~shards =
  let ranked = Array.of_list Topology.ranked_by_nearest_majority in
  let sites = Array.of_list Topology.sites in
  Array.init shards (fun g ->
      match placement with
      | Fixed site -> site
      | Round_robin -> sites.(g mod Array.length sites)
      | Nearest_majority -> ranked.(g mod Array.length ranked))

type config = {
  shards : int;
  protocols : Harness.protocol list;
  placement : placement;
  workload : Workload.spec;
  duration_s : int;
  warmup_s : int;
  cooldown_s : int;
  seed : int64;
  telemetry : bool;
  batch_size : int;
  batch_delay_us : int;
}

let config ?(protocols = [ Harness.Raft_star ]) ?(placement = Nearest_majority)
    ?(duration_s = 10) ?(warmup_s = 2) ?(cooldown_s = 2) ?(seed = 1L)
    ?(telemetry = false) ?(batch_size = 1) ?(batch_delay_us = 0) ~shards
    workload =
  if shards < 1 then invalid_arg "Shard.config: shards must be >= 1";
  if protocols = [] then invalid_arg "Shard.config: empty protocol list";
  {
    shards;
    protocols;
    placement;
    workload;
    duration_s;
    warmup_s;
    cooldown_s;
    seed;
    telemetry;
    batch_size;
    batch_delay_us;
  }

let group_protocol cfg g = List.nth cfg.protocols (g mod List.length cfg.protocols)

type group_result = {
  g_protocol : Harness.protocol;
  g_leader_site : Topology.site;
  g_ops : int;
  g_throughput_ops : float;
  g_read : Stats.t;
  g_write : Stats.t;
  g_retries : int;
  g_reads_checked : int;
  g_violations : int;
  g_committed : int;
  g_messages : int;
  g_telemetry : Telemetry.t option;
}

type result = {
  throughput_ops : float;
  retries : int;
  reads_checked : int;
  violations : int;
  messages : int;
  groups : group_result array;
}

(* One consensus group's live state during a run. *)
type group_run = {
  inst : Harness.instance;
  net : Net.t;
  tel : Telemetry.t option;
  leader : int;
  leader_site : Topology.site;
  protocol : Harness.protocol;
  read_stats : Stats.t;
  write_stats : Stats.t;
  mutable ops : int;
  mutable retries : int;
}

let retry_timeout_us = 20_000_000

let run cfg =
  let engine = Engine.create ~seed:cfg.seed () in
  let regions = List.length Topology.sites in
  let sites = leader_sites cfg.placement ~shards:cfg.shards in
  let mk g =
    let nodes = List.mapi (fun i site -> { Net.id = i; site }) Topology.sites in
    let net = Net.create engine ~nodes in
    let tel =
      if cfg.telemetry then Some (Telemetry.create ~n:regions ()) else None
    in
    (match tel with
    | Some tel -> Net.set_metrics net tel.Telemetry.metrics
    | None -> ());
    let leader = Topology.site_index sites.(g) in
    let inst =
      Harness.make_instance ?telemetry:tel ~batch_size:cfg.batch_size
        ~batch_delay_us:cfg.batch_delay_us (group_protocol cfg g) net ~leader
    in
    {
      inst;
      net;
      tel;
      leader;
      leader_site = sites.(g);
      protocol = group_protocol cfg g;
      read_stats = Stats.create ();
      write_stats = Stats.create ();
      ops = 0;
      retries = 0;
    }
  in
  (* Build groups in ascending order: creation draws on shared engine
     state, so the construction order is part of the deterministic run. *)
  let rec build g = if g = cfg.shards then [] else mk g :: build (g + 1) in
  let groups = Array.of_list (build 0) in
  let group_of_key key = Workload.group_of_key ~shards:cfg.shards key in
  let wl = Workload.create ~seed:cfg.seed ~regions cfg.workload in
  let events = ref [] in
  let end_us = cfg.duration_s * 1_000_000 in
  (* Closed-loop clients, one outstanding op each.  Every op is routed to
     its key's owning group and submitted at that group's replica in the
     client's own region; the protocol forwards to the group's leader. *)
  let rec client_loop region () =
    if Engine.now engine < end_us then begin
      let op = Workload.next_op wl ~region in
      attempt region op
    end
  and attempt region op =
    let g = groups.(group_of_key (Types.key_of op)) in
    let started = Engine.now engine in
    let finished = ref false in
    let timeout =
      Engine.schedule_cancellable engine ~delay:retry_timeout_us (fun () ->
          if not !finished then begin
            finished := true;
            g.retries <- g.retries + 1;
            if Engine.now engine < end_us then attempt region op
          end)
    in
    ignore
      (g.inst.Harness.submit ~node:region op (fun reply ->
           if not !finished then begin
             finished := true;
             Engine.cancel timeout;
             let now = Engine.now engine in
             let latency = now - started in
             g.ops <- g.ops + 1;
             (match op with
             | Types.Get { key } ->
                 Stats.record g.read_stats ~latency_us:latency ~at_us:now;
                 events :=
                   Lin_check.Read
                     { key; started_us = started; returned = reply.Types.value }
                   :: !events
             | Types.Put { write_id; key; _ } ->
                 Stats.record g.write_stats ~latency_us:latency ~at_us:now;
                 events :=
                   Lin_check.Write_complete { write_id; key; at_us = now }
                   :: !events);
             client_loop region ()
           end))
  in
  for region = 0 to regions - 1 do
    for _ = 1 to cfg.workload.Workload.clients_per_region do
      let jitter = Sim.Rng.int (Engine.rng engine) 100_000 in
      Engine.schedule engine ~delay:jitter (client_loop region)
    done
  done;
  Engine.run engine ~until:end_us;
  (* ---- per-group consistency oracles ---- *)
  let committed_orders =
    Array.map (fun g -> g.inst.Harness.committed_ops ~node:g.leader) groups
  in
  let checks =
    Lin_check.check_sharded ~committed_orders ~group_of_key
      (List.rev !events)
  in
  let from_us = cfg.warmup_s * 1_000_000 in
  let until_us = (cfg.duration_s - cfg.cooldown_s) * 1_000_000 in
  let group_results =
    Array.mapi
      (fun i g ->
        let stats = Stats.merge [ g.read_stats; g.write_stats ] in
        {
          g_protocol = g.protocol;
          g_leader_site = g.leader_site;
          g_ops = g.ops;
          g_throughput_ops = Stats.throughput_ops stats ~from_us ~until_us;
          g_read = g.read_stats;
          g_write = g.write_stats;
          g_retries = g.retries;
          g_reads_checked = checks.(i).Lin_check.reads_checked;
          g_violations = List.length checks.(i).Lin_check.violations;
          g_committed = List.length committed_orders.(i);
          g_messages = Net.sent_count g.net;
          g_telemetry = g.tel;
        })
      groups
  in
  let all =
    Stats.merge
      (Array.to_list groups
      |> List.concat_map (fun g -> [ g.read_stats; g.write_stats ]))
  in
  let sum f = Array.fold_left (fun acc g -> acc + f g) 0 group_results in
  {
    throughput_ops = Stats.throughput_ops all ~from_us ~until_us;
    retries = sum (fun g -> g.g_retries);
    reads_checked = sum (fun g -> g.g_reads_checked);
    violations = sum (fun g -> g.g_violations);
    messages = sum (fun g -> g.g_messages);
    groups = group_results;
  }

(* ---- canonical renderings ---- *)

let protocols_string cfg =
  String.concat "," (List.map Harness.protocol_name cfg.protocols)

let snapshot_string cfg r =
  let buf = Buffer.create 1024 in
  let add fmt = Fmt.kstr (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  add "shards=%d placement=%s protocols=%s seed=%Ld" cfg.shards
    (placement_name cfg.placement)
    (protocols_string cfg) cfg.seed;
  add "workload clients=%d reads=%.2f conflict=%.2f size=%d records=%d"
    cfg.workload.Workload.clients_per_region cfg.workload.Workload.read_fraction
    cfg.workload.Workload.conflict_rate cfg.workload.Workload.value_size
    cfg.workload.Workload.records;
  add "aggregate tput=%.3f retries=%d reads_checked=%d violations=%d messages=%d"
    r.throughput_ops r.retries r.reads_checked r.violations r.messages;
  Array.iteri
    (fun i g ->
      let stats = Stats.merge [ g.g_read; g.g_write ] in
      add
        "group %d: proto=%s leader=%s ops=%d committed=%d tput=%.3f p50=%d \
         p99=%d retries=%d reads_checked=%d violations=%d messages=%d"
        i
        (Harness.protocol_name g.g_protocol)
        (Topology.site_name g.g_leader_site)
        g.g_ops g.g_committed g.g_throughput_ops
        (Stats.percentile_us stats 0.50)
        (Stats.percentile_us stats 0.99)
        g.g_retries g.g_reads_checked g.g_violations g.g_messages)
    r.groups;
  Array.iteri
    (fun i g ->
      match g.g_telemetry with
      | None -> ()
      | Some tel ->
          add "group %d metrics:" i;
          Buffer.add_string buf (Telemetry.snapshot_string tel))
    r.groups;
  Buffer.contents buf

(* Pull the "counters"/"histograms" sub-objects out of a group's metric
   snapshot; Null when telemetry is off. *)
let telemetry_json tel =
  match tel with
  | None -> (Json.Null, Json.Null)
  | Some tel -> (
      match
        Metrics.snapshot_to_json (Metrics.snapshot tel.Telemetry.metrics)
      with
      | Json.Obj fields ->
          ( Option.value ~default:Json.Null (List.assoc_opt "counters" fields),
            Option.value ~default:Json.Null (List.assoc_opt "histograms" fields)
          )
      | _ -> (Json.Null, Json.Null))

(* Roll per-group counter objects ({name: [per-replica]}) up into one
   {name: total} object, summing over replicas and groups.  Assoc-list
   based on purpose: detlint forbids unordered hashtable iteration in
   lib/, and snapshot key sets are tiny. *)
let rollup_counters objs =
  let pairs =
    List.concat_map
      (function
        | Json.Obj fields ->
            List.map
              (fun (name, v) ->
                let total =
                  match v with
                  | Json.List xs ->
                      List.fold_left
                        (fun acc x ->
                          match x with Json.Int i -> acc + i | _ -> acc)
                        0 xs
                  | Json.Int i -> i
                  | _ -> 0
                in
                (name, total))
              fields
        | _ -> [])
      objs
  in
  let sorted =
    List.sort (fun (a, _) (b, _) -> String.compare a b) pairs
  in
  let rec merge = function
    | [] -> []
    | (name, v) :: rest ->
        let same, rest =
          List.partition (fun (m, _) -> String.equal m name) rest
        in
        ( name,
          Json.Int (List.fold_left (fun acc (_, x) -> acc + x) v same) )
        :: merge rest
  in
  Json.Obj (merge sorted)

let result_to_json cfg r =
  let group_json i g =
    let stats = Stats.merge [ g.g_read; g.g_write ] in
    let counters, histograms = telemetry_json g.g_telemetry in
    Json.Obj
      [
        ("group", Json.Int i);
        ("protocol", Json.String (Harness.protocol_name g.g_protocol));
        ("leader_site", Json.String (Topology.site_name g.g_leader_site));
        ("ops", Json.Int g.g_ops);
        ("committed", Json.Int g.g_committed);
        ("throughput_ops", Json.Float g.g_throughput_ops);
        ("p50_us", Json.Int (Stats.percentile_us stats 0.50));
        ("p90_us", Json.Int (Stats.percentile_us stats 0.90));
        ("p99_us", Json.Int (Stats.percentile_us stats 0.99));
        ("retries", Json.Int g.g_retries);
        ("reads_checked", Json.Int g.g_reads_checked);
        ("violations", Json.Int g.g_violations);
        ("messages", Json.Int g.g_messages);
        ("counters", counters);
        ("histograms", histograms);
      ]
  in
  let aggregate_counters =
    rollup_counters
      (Array.to_list r.groups
      |> List.map (fun g -> fst (telemetry_json g.g_telemetry)))
  in
  Json.Obj
    [
      ("shards", Json.Int cfg.shards);
      ("placement", Json.String (placement_name cfg.placement));
      ("protocols", Json.String (protocols_string cfg));
      ( "config",
        Json.Obj
          [
            ("clients_per_region", Json.Int cfg.workload.Workload.clients_per_region);
            ("read_fraction", Json.Float cfg.workload.Workload.read_fraction);
            ("conflict_rate", Json.Float cfg.workload.Workload.conflict_rate);
            ("value_size", Json.Int cfg.workload.Workload.value_size);
            ("records", Json.Int cfg.workload.Workload.records);
            ("duration_s", Json.Int cfg.duration_s);
            ("warmup_s", Json.Int cfg.warmup_s);
            ("cooldown_s", Json.Int cfg.cooldown_s);
            ("seed", Json.Int (Int64.to_int cfg.seed));
            ("batch_size", Json.Int cfg.batch_size);
            ("batch_delay_us", Json.Int cfg.batch_delay_us);
          ] );
      ("throughput_ops", Json.Float r.throughput_ops);
      ("retries", Json.Int r.retries);
      ("reads_checked", Json.Int r.reads_checked);
      ("violations", Json.Int r.violations);
      ("messages", Json.Int r.messages);
      ("aggregate_counters", aggregate_counters);
      ("groups", Json.List (Array.to_list r.groups |> List.mapi group_json));
    ]
