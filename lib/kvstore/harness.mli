(** Experiment harness reproducing the paper's Section-5 methodology:
    closed-loop clients per region, a measurement window with warm-up and
    cool-down trimmed, medians over several seeded trials. *)

type protocol =
  | Raft  (** vanilla Raft, log reads *)
  | Raft_star
  | Raft_ll  (** leader-lease reads *)
  | Raft_pql  (** quorum-lease reads *)
  | Mencius
  | Multipaxos

val protocol_name : protocol -> string

type config = {
  protocol : protocol;
  leader_site : Raftpax_sim.Topology.site;
      (** placement of the (initial) leader; ignored by Mencius *)
  workload : Workload.spec;
  duration_s : int;
  warmup_s : int;
  cooldown_s : int;
  seed : int64;
  telemetry : bool;  (** attach metric probes (counters / histograms) *)
  tracing : bool;
      (** additionally capture per-request span traces and the
          per-request latency records (implies telemetry) *)
  batch_size : int;
      (** leader-side command batching (see {!Raftpax_consensus.Types.params});
          1 (the default) reproduces the unbatched runtimes byte-for-byte *)
  batch_delay_us : int;  (** batching flush timer; meaningless at size 1 *)
}

val config :
  ?leader_site:Raftpax_sim.Topology.site ->
  ?duration_s:int ->
  ?warmup_s:int ->
  ?cooldown_s:int ->
  ?seed:int64 ->
  ?telemetry:bool ->
  ?tracing:bool ->
  ?batch_size:int ->
  ?batch_delay_us:int ->
  protocol ->
  Workload.spec ->
  config
(** Defaults: leader in Oregon, 10 s run with 2 s warm-up/cool-down
    (scaled down from the paper's 50 s / 10 s to keep simulation time
    reasonable; the steady-state estimates are unaffected), seed 1,
    telemetry and tracing off. *)

type request = {
  trace : int;  (** span trace id — the protocol command id *)
  region : int;  (** submitting client's region / replica *)
  is_read : bool;
  started_us : int;
  latency_us : int;
}

type result = {
  throughput_ops : float;  (** completed ops/s in the window *)
  read_leader : Raftpax_sim.Stats.t;  (** reads by leader-region clients *)
  read_follower : Raftpax_sim.Stats.t;
  write_leader : Raftpax_sim.Stats.t;
  write_follower : Raftpax_sim.Stats.t;
  retries : int;
  consistency_violations : int;
      (** reads that returned a value older than the latest write committed
          before the read began, or a never-written value *)
  messages : int;  (** total protocol messages on the wire *)
  bytes_by_node : int array;  (** egress bytes per replica *)
  telemetry : Raftpax_telemetry.Telemetry.t option;
      (** the run's metric registry and tracer, when enabled *)
  requests : request list;
      (** completed requests in completion order (tracing runs only) *)
  sim_events : int;
      (** engine events executed by the run — BENCH_engine's events/sec
          numerator (wall time is the caller's to measure) *)
  minor_words : float;
      (** minor-heap words allocated across the simulation loop
          ({!Gc.minor_words} delta; excludes the post-run lin check) *)
}

(** {1 Protocol instances}

    A running protocol reduced to what a serving layer needs; the
    sharded harness ({!Shard}) builds one per consensus group. *)

type instance = {
  submit :
    node:int ->
    Raftpax_consensus.Types.op ->
    (Raftpax_consensus.Types.reply -> unit) ->
    int;
      (** submit at a replica's colocated entry point; returns the
          command id (the span trace id) *)
  committed_ops : node:int -> Raftpax_consensus.Types.op list;
      (** the replica's committed command order — the lin-check oracle *)
}

val make_instance :
  ?telemetry:Raftpax_telemetry.Telemetry.t ->
  ?batch_size:int ->
  ?batch_delay_us:int ->
  protocol ->
  Raftpax_sim.Net.t ->
  leader:int ->
  instance
(** Create, start and reduce a protocol runtime over [net] with the
    initial leader at replica [leader] (ignored by Mencius, which has no
    distinguished leader).  [?batch_size] / [?batch_delay_us] (defaults
    1 / 0) override the protocol's batching knobs; size 1 leaves the
    default params untouched. *)

(** {1 Wired instances — the real-network runtime's entry point}

    The network shell ([bin/]) hosts one full runtime per process but
    keeps only the local replica live.  [w_set_wire] intercepts every
    cross-replica message before the simulated {!Raftpax_sim.Net} sees
    it, wrapped in the protocol-agnostic
    {!Raftpax_netcore.Wire.protocol_msg} envelope; the transport carries
    the encoded bytes and the receiving process injects them with
    [w_deliver].  [w_set_cmd_ids] partitions the command-id space across
    processes (process [i] of [n]: [base:i stride:n]) so leader-side
    dedup by id stays sound. *)

type wired = {
  w_instance : instance;
  w_set_wire :
    (src:int ->
    dst:int ->
    size:int ->
    Raftpax_netcore.Wire.protocol_msg ->
    unit)
    option ->
    unit;
  w_deliver : node:int -> Raftpax_netcore.Wire.protocol_msg -> unit;
      (** a message of the wrong protocol is silently dropped *)
  w_set_cmd_ids : base:int -> stride:int -> unit;
}

val make_wired :
  ?telemetry:Raftpax_telemetry.Telemetry.t ->
  ?batch_size:int ->
  ?batch_delay_us:int ->
  protocol ->
  Raftpax_sim.Net.t ->
  leader:int ->
  wired

val run : config -> result

val median_throughput : ?trials:int -> config -> float
(** Re-runs with distinct seeds and reports the median throughput (the
    paper reports the median of 5 trials). *)

val peak_throughput : ?clients:int list -> config -> float
(** Sweeps the client count and returns the best median throughput —
    "peak throughput" in Fig. 9c / 10a. *)
