(** Sharded multi-group serving layer (Multi-Raft style).

    The key space is hash-partitioned ({!Workload.group_of_key}) over M
    independent consensus groups, each running its own protocol runtime
    (any of the harness protocols; heterogeneous mixes are allowed) over
    its own replica set on the five WAN sites — all multiplexed onto one
    deterministic simulation engine so a sharded run is still a pure
    function of its seed.  A request enters at its client's site and is
    routed to the owning group's replica there, which forwards to that
    group's leader; per-group leaders are placed by a {!placement}
    policy (CD-Raft-style nearest-majority placement puts each group's
    leader where a commit round is cheapest). *)

type placement =
  | Fixed of Raftpax_sim.Topology.site
      (** every group's leader at one site — the unsharded baseline
          placement *)
  | Round_robin  (** group [g]'s leader at site [g mod 5] *)
  | Nearest_majority
      (** groups round-robin over the sites ranked by
          {!Raftpax_sim.Topology.nearest_majority_rtt_ms}, so leaders
          concentrate where majorities are cheapest while still
          spreading across sites (CD-Raft's placement objective) *)

val placement_name : placement -> string

val leader_sites : placement -> shards:int -> Raftpax_sim.Topology.site array
(** The per-group leader placement the policy induces. *)

type config = {
  shards : int;  (** number of consensus groups, >= 1 *)
  protocols : Harness.protocol list;
      (** cycled over groups: group [g] runs the [g mod length]-th entry;
          a singleton list is a homogeneous deployment *)
  placement : placement;
  workload : Workload.spec;
  duration_s : int;
  warmup_s : int;
  cooldown_s : int;
  seed : int64;
  telemetry : bool;  (** per-group metric registries *)
  batch_size : int;
      (** leader-side command batching applied to every group's protocol;
          1 (the default) reproduces the unbatched runtimes byte-for-byte *)
  batch_delay_us : int;  (** batching flush timer; meaningless at size 1 *)
}

val config :
  ?protocols:Harness.protocol list ->
  ?placement:placement ->
  ?duration_s:int ->
  ?warmup_s:int ->
  ?cooldown_s:int ->
  ?seed:int64 ->
  ?telemetry:bool ->
  ?batch_size:int ->
  ?batch_delay_us:int ->
  shards:int ->
  Workload.spec ->
  config
(** Defaults: homogeneous Raft*, nearest-majority placement, 10 s runs
    with 2 s warm-up/cool-down, seed 1, telemetry off.  Raises
    [Invalid_argument] on [shards < 1] or an empty protocol list. *)

val group_protocol : config -> int -> Harness.protocol

type group_result = {
  g_protocol : Harness.protocol;
  g_leader_site : Raftpax_sim.Topology.site;
  g_ops : int;  (** completed operations routed to this group *)
  g_throughput_ops : float;  (** completed ops/s inside the window *)
  g_read : Raftpax_sim.Stats.t;
  g_write : Raftpax_sim.Stats.t;
  g_retries : int;
  g_reads_checked : int;
  g_violations : int;
      (** per-group {!Lin_check} violations against the group's own
          committed order *)
  g_committed : int;  (** committed commands at the group's leader *)
  g_messages : int;  (** protocol messages on this group's wire *)
  g_telemetry : Raftpax_telemetry.Telemetry.t option;
}

type result = {
  throughput_ops : float;  (** aggregate completed ops/s in the window *)
  retries : int;
  reads_checked : int;
  violations : int;  (** total across groups — must be 0 *)
  messages : int;
  groups : group_result array;
}

val run : config -> result

val snapshot_string : config -> result -> string
(** Canonical single-string rendering of the aggregate numbers, the
    per-group table and (when telemetry is on) every group's metric
    snapshot — byte-identical across runs of the same config; the
    sharded determinism test's and [repro shard --replay]'s oracle. *)

val result_to_json : config -> result -> Raftpax_telemetry.Json.t
(** The [BENCH_shard.json] run schema: config, aggregate throughput and
    rolled-up counters (summed over groups and replicas), plus a
    per-group array with placement, latency percentiles and each group's
    own counters. *)
