(** The paper's YCSB-like workload (Section 5): closed-loop clients issue
    get/put back-to-back against 100K records.  With probability
    [conflict_rate] a client touches the popular record (the Mencius hot
    key); otherwise it draws uniformly from its own region's partition of
    the key space. *)

type key_dist =
  | Uniform  (** the paper's workload: uniform within the region partition *)
  | Zipfian of float
      (** YCSB-style zipfian skew with parameter theta in [0, 1) (YCSB
          default 0.99): rank-r key drawn with probability ∝ 1/r^theta
          within the region partition, rank 1 at the partition's first
          key.  Usable by both the sim and real-network harnesses. *)

type spec = {
  read_fraction : float;
  conflict_rate : float;
  value_size : int;  (** put payload bytes (paper: 8 B and 4 KB) *)
  records : int;  (** total key-space size (paper: 100K) *)
  clients_per_region : int;
  key_dist : key_dist;
}

val default : spec
(** 90% reads, 5% conflict, 8-byte values, 100K records, 50 clients per
    region — the Fig. 9 defaults. *)

type t

val create : seed:int64 -> regions:int -> spec -> t
val spec : t -> spec

val next_op : t -> region:int -> Raftpax_consensus.Types.op
(** Draws the next operation for a client in [region], assigning a fresh
    globally-unique write id to puts. *)

val hot_key : int
(** Equal to {!Raftpax_consensus.Mencius.hot_key}. *)

val writes_issued : t -> int

val group_of_key : shards:int -> int -> int
(** [group_of_key ~shards key] is the consensus group that owns [key] in
    a [shards]-group deployment: a pure multiplicative-hash partition in
    [0, shards), total over the key space and independent of any seed, so
    the same key always routes to the same group across runs. *)
