module Types = Raftpax_consensus.Types

type event =
  | Write_complete of { write_id : int; key : int; at_us : int }
  | Read of { key : int; started_us : int; returned : int option }

type violation = {
  v_key : int;
  v_returned : int option;
  v_expected_after : int;
  v_started_us : int;
}

type result = { reads_checked : int; violations : violation list }

let check ~committed_order events =
  (* position of each committed write in its key's order *)
  let position : (int * int, int) Hashtbl.t = Hashtbl.create 1024 in
  let by_position : (int * int, int) Hashtbl.t = Hashtbl.create 1024 in
  List.iteri
    (fun pos op ->
      match op with
      | Types.Put { key; write_id; _ } ->
          Hashtbl.replace position (key, write_id) pos;
          Hashtbl.replace by_position (key, pos) write_id
      | Types.Get _ -> ())
    committed_order;
  (* acknowledged writes per key, with completion times *)
  let acknowledged : (int, (int * int) list ref) Hashtbl.t = Hashtbl.create 256 in
  List.iter
    (function
      | Write_complete { write_id; key; at_us } ->
          let cell =
            match Hashtbl.find_opt acknowledged key with
            | Some cell -> cell
            | None ->
                let cell = ref [] in
                Hashtbl.replace acknowledged key cell;
                cell
          in
          cell := (write_id, at_us) :: !cell
      | Read _ -> ())
    events;
  let reads_checked = ref 0 in
  let violations = ref [] in
  List.iter
    (function
      | Write_complete _ -> ()
      | Read { key; started_us; returned } ->
          incr reads_checked;
          (* the freshest acknowledged-and-committed write before the read *)
          let floor_pos = ref (-1) in
          (match Hashtbl.find_opt acknowledged key with
          | None -> ()
          | Some cell ->
              List.iter
                (fun (write_id, done_us) ->
                  if done_us <= started_us then
                    match Hashtbl.find_opt position (key, write_id) with
                    | Some pos when pos > !floor_pos -> floor_pos := pos
                    | _ -> ())
                !cell);
          let ret_pos =
            match returned with
            | None -> -1
            | Some id -> (
                match Hashtbl.find_opt position (key, id) with
                | Some pos -> pos
                | None -> -2 (* returned a value that was never committed *))
          in
          if ret_pos = -2 || ret_pos < !floor_pos then
            violations :=
              {
                v_key = key;
                v_returned = returned;
                v_expected_after =
                  Option.value ~default:(-1)
                    (Hashtbl.find_opt by_position (key, !floor_pos));
                v_started_us = started_us;
              }
              :: !violations)
    events;
  { reads_checked = !reads_checked; violations = List.rev !violations }

let check_sharded ~committed_orders ~group_of_key events =
  (* Every event concerns exactly one key, every key is owned by exactly
     one group, and groups commit independently — so the sharded oracle
     is the per-group oracle over the per-group event slice. *)
  let shards = Array.length committed_orders in
  let slices = Array.make shards [] in
  List.iter
    (fun ev ->
      let key =
        match ev with
        | Write_complete { key; _ } -> key
        | Read { key; _ } -> key
      in
      let g = group_of_key key in
      slices.(g) <- ev :: slices.(g))
    events;
  Array.mapi
    (fun g order -> check ~committed_order:order (List.rev slices.(g)))
    committed_orders

let pp_violation ppf v =
  Fmt.pf ppf
    "read of key %d at t=%dus returned %a but write %d was already \
     acknowledged"
    v.v_key v.v_started_us
    Fmt.(option ~none:(any "nothing") int)
    v.v_returned v.v_expected_after
