module Sim = Raftpax_sim
module Engine = Sim.Engine
module Net = Sim.Net
module Topology = Sim.Topology
module Stats = Sim.Stats
module C = Raftpax_consensus
module Types = C.Types
module Telemetry = Raftpax_telemetry.Telemetry
module Wire = Raftpax_netcore.Wire

type protocol =
  | Raft
  | Raft_star
  | Raft_ll
      [@lint.allow
        "scenario-parity"
        "leader-lease local reads under the nemesis clock-skew adversary \
         need lease-aware linearizability accounting first; tracked on the \
         ROADMAP as the Raft-LL lease scope"]
  | Raft_pql
  | Mencius
  | Multipaxos

let protocol_name = function
  | Raft -> "Raft"
  | Raft_star -> "Raft*"
  | Raft_ll -> "Raft*-LL"
  | Raft_pql -> "Raft*-PQL"
  | Mencius -> "Raft*-Mencius"
  | Multipaxos -> "MultiPaxos"

type config = {
  protocol : protocol;
  leader_site : Topology.site;
  workload : Workload.spec;
  duration_s : int;
  warmup_s : int;
  cooldown_s : int;
  seed : int64;
  telemetry : bool;
  tracing : bool;
  batch_size : int;
  batch_delay_us : int;
}

let config ?(leader_site = Topology.Oregon) ?(duration_s = 10) ?(warmup_s = 2)
    ?(cooldown_s = 2) ?(seed = 1L) ?(telemetry = false) ?(tracing = false)
    ?(batch_size = 1) ?(batch_delay_us = 0) protocol workload =
  {
    protocol;
    leader_site;
    workload;
    duration_s;
    warmup_s;
    cooldown_s;
    seed;
    telemetry;
    tracing;
    batch_size;
    batch_delay_us;
  }

type request = {
  trace : int;
  region : int;
  is_read : bool;
  started_us : int;
  latency_us : int;
}

type result = {
  throughput_ops : float;
  read_leader : Stats.t;
  read_follower : Stats.t;
  write_leader : Stats.t;
  write_follower : Stats.t;
  retries : int;
  consistency_violations : int;
  messages : int;
  bytes_by_node : int array;
  telemetry : Telemetry.t option;
  requests : request list;
  sim_events : int;
  minor_words : float;
}

(* A protocol instance reduced to what the clients need.  [submit] returns
   the command id — the span trace id when tracing is on. *)
type instance = {
  submit : node:int -> Types.op -> (Types.reply -> unit) -> int;
  committed_ops : node:int -> Types.op list;
}

(* The network shell's view of a runtime: the client-facing [instance]
   plus the transport hooks — intercept outgoing cross-replica messages
   ([w_set_wire], wrapped in the protocol-agnostic
   {!Raftpax_netcore.Wire.protocol_msg} envelope), inject received ones
   ([w_deliver]), and partition the command-id space across processes
   ([w_set_cmd_ids]). *)
type wired = {
  w_instance : instance;
  w_set_wire :
    (src:int -> dst:int -> size:int -> Wire.protocol_msg -> unit) option ->
    unit;
  w_deliver : node:int -> Wire.protocol_msg -> unit;
  w_set_cmd_ids : base:int -> stride:int -> unit;
}

let make_wired ?telemetry ?(batch_size = 1) ?(batch_delay_us = 0) protocol net
    ~leader =
  (* batch_size = 1 leaves [p] untouched, so the default configs reach the
     runtimes byte-for-byte as before batching existed. *)
  let batched (p : Types.params) =
    if batch_size <= 1 then p else { p with batch_size; batch_delay_us }
  in
  match protocol with
  | Raft | Raft_star | Raft_ll | Raft_pql ->
      let cfg =
        match protocol with
        | Raft -> C.Raft.raft ~leader ()
        | Raft_star -> C.Raft.raft_star ~leader ()
        | Raft_ll -> C.Raft.raft_ll ~leader ()
        | Raft_pql -> C.Raft.raft_pql ~leader ()
        | _ -> assert false
      in
      let cfg = { cfg with C.Raft.params = batched cfg.C.Raft.params } in
      let t = C.Raft.create ?telemetry cfg net in
      C.Raft.start t;
      {
        w_instance =
          {
            submit = (fun ~node op k -> C.Raft.submit_id t ~node op k);
            committed_ops =
              (fun ~node ->
                let commit = C.Raft.commit_index t ~node in
                C.Raft.log_entries t ~node
                |> List.filteri (fun i _ -> i <= commit)
                |> List.filter_map (fun (e : Types.entry) ->
                       Option.map (fun (c : Types.cmd) -> c.op) e.cmd));
          };
        w_set_wire =
          (fun hook ->
            C.Raft.set_wire t
              (Option.map
                 (fun f ~src ~dst ~size m ->
                   f ~src ~dst ~size (Wire.Raft_msg m))
                 hook));
        w_deliver =
          (fun ~node m ->
            match m with
            | Wire.Raft_msg m -> C.Raft.deliver t ~node m
            | Wire.Mencius_msg _ | Wire.Multipaxos_msg _ -> ());
        w_set_cmd_ids =
          (fun ~base ~stride -> C.Raft.set_cmd_ids t ~base ~stride);
      }
  | Mencius ->
      let cfg = C.Mencius.default_config in
      let cfg = { cfg with C.Mencius.params = batched cfg.C.Mencius.params } in
      let t = C.Mencius.create ?telemetry cfg net in
      C.Mencius.start t;
      {
        w_instance =
          {
            submit = (fun ~node op k -> C.Mencius.submit_id t ~node op k);
            committed_ops = (fun ~node -> C.Mencius.committed_ops t ~node);
          };
        w_set_wire =
          (fun hook ->
            C.Mencius.set_wire t
              (Option.map
                 (fun f ~src ~dst ~size m ->
                   f ~src ~dst ~size (Wire.Mencius_msg m))
                 hook));
        w_deliver =
          (fun ~node m ->
            match m with
            | Wire.Mencius_msg m -> C.Mencius.deliver t ~node m
            | Wire.Raft_msg _ | Wire.Multipaxos_msg _ -> ());
        w_set_cmd_ids =
          (fun ~base ~stride -> C.Mencius.set_cmd_ids t ~base ~stride);
      }
  | Multipaxos ->
      let cfg = C.Multipaxos.default_config in
      let cfg =
        { cfg with C.Multipaxos.params = batched cfg.C.Multipaxos.params }
      in
      let t = C.Multipaxos.create ?telemetry ~leader cfg net in
      C.Multipaxos.start t;
      {
        w_instance =
          {
            submit = (fun ~node op k -> C.Multipaxos.submit_id t ~node op k);
            committed_ops = (fun ~node -> C.Multipaxos.committed_ops t ~node);
          };
        w_set_wire =
          (fun hook ->
            C.Multipaxos.set_wire t
              (Option.map
                 (fun f ~src ~dst ~size m ->
                   f ~src ~dst ~size (Wire.Multipaxos_msg m))
                 hook));
        w_deliver =
          (fun ~node m ->
            match m with
            | Wire.Multipaxos_msg m -> C.Multipaxos.deliver t ~node m
            | Wire.Raft_msg _ | Wire.Mencius_msg _ -> ());
        w_set_cmd_ids =
          (fun ~base ~stride -> C.Multipaxos.set_cmd_ids t ~base ~stride);
      }

let make_instance ?telemetry ?batch_size ?batch_delay_us protocol net ~leader =
  (make_wired ?telemetry ?batch_size ?batch_delay_us protocol net ~leader)
    .w_instance

let retry_timeout_us = 20_000_000

(* Closed-loop client state.  [gen] counts attempts so a completion
   arriving after the watchdog abandoned the attempt is ignored. *)
type client = {
  region : int;
  mutable cur_op : Types.op;
  mutable started_us : int;
  mutable gen : int;
  mutable waiting : bool;
  mutable wd_pending : bool;  (* a watchdog event is in the heap *)
  mutable trace : int;  (* command id of the current attempt *)
}

let run cfg =
  let engine = Engine.create ~seed:cfg.seed () in
  let nodes =
    List.mapi (fun i site -> { Net.id = i; site }) Topology.sites
  in
  let net = Net.create engine ~nodes in
  let regions = List.length Topology.sites in
  let leader = Topology.site_index cfg.leader_site in
  let tel =
    if cfg.telemetry || cfg.tracing then
      Some (Telemetry.create ~tracing:cfg.tracing ~n:regions ())
    else None
  in
  (match tel with
  | Some tel -> Net.set_metrics net tel.Telemetry.metrics
  | None -> ());
  let inst =
    make_instance ?telemetry:tel ~batch_size:cfg.batch_size
      ~batch_delay_us:cfg.batch_delay_us cfg.protocol net ~leader
  in
  let wl = Workload.create ~seed:cfg.seed ~regions cfg.workload in
  let read_leader = Stats.create ()
  and read_follower = Stats.create ()
  and write_leader = Stats.create ()
  and write_follower = Stats.create () in
  let retries = ref 0 in
  let events = ref [] in
  let requests = ref [] in
  let end_us = cfg.duration_s * 1_000_000 in
  (* Closed-loop clients: one outstanding op each, retry on timeout.

     The retry deadline is enforced by a single lazily re-armed watchdog
     per client rather than a cancellable timer per op: a per-op timer
     leaves one dead 20 s entry in the event heap per completed op, which
     grows the heap to the run's total op count and slows every heap
     operation.  The watchdog is armed at the current op's deadline; if
     the op at hand is younger when it fires, it re-arms at that op's
     exact deadline, so a stuck op still retries at precisely
     [started + retry_timeout_us] while a healthy client schedules only
     one event per 20 s of virtual time. *)
  let rec client_loop c () =
    if Engine.now engine < end_us then begin
      let op = Workload.next_op wl ~region:c.region in
      attempt c op
    end
  and arm_watchdog c =
    c.wd_pending <- true;
    let delay = c.started_us + retry_timeout_us - Engine.now engine in
    Engine.schedule engine ~delay (fun () -> watchdog_fire c)
  and watchdog_fire c =
    c.wd_pending <- false;
    if c.waiting then
      if Engine.now engine >= c.started_us + retry_timeout_us then begin
        (* Abandon the outstanding attempt (its late completion is
           ignored via the generation counter) and retry the same op. *)
        c.waiting <- false;
        incr retries;
        if Engine.now engine < end_us then attempt c c.cur_op
      end
      else arm_watchdog c
  and attempt c op =
    c.cur_op <- op;
    c.started_us <- Engine.now engine;
    c.gen <- c.gen + 1;
    c.waiting <- true;
    if not c.wd_pending then arm_watchdog c;
    let gen = c.gen in
    let started = c.started_us in
    let trace =
      inst.submit ~node:c.region op (fun reply ->
        if c.waiting && c.gen = gen then begin
          c.waiting <- false;
          let now = Engine.now engine in
          let latency = now - started in
          let at_leader = c.region = leader in
          if cfg.tracing then
            requests :=
              {
                trace = c.trace;
                region = c.region;
                is_read = (match op with Types.Get _ -> true | _ -> false);
                started_us = started;
                latency_us = latency;
              }
              :: !requests;
          (match op with
          | Types.Get { key } ->
              Stats.record
                (if at_leader then read_leader else read_follower)
                ~latency_us:latency ~at_us:now;
              events :=
                Lin_check.Read
                  { key; started_us = started; returned = reply.Types.value }
                :: !events
          | Types.Put { write_id; key; _ } ->
              Stats.record
                (if at_leader then write_leader else write_follower)
                ~latency_us:latency ~at_us:now;
              events :=
                Lin_check.Write_complete { write_id; key; at_us = now }
                :: !events);
          client_loop c ()
        end)
    in
    (* The completion callback only fires from scheduled events, after
       [submit] has returned the command id into the client record. *)
    c.trace <- trace
  in
  for region = 0 to regions - 1 do
    for _ = 1 to cfg.workload.Workload.clients_per_region do
      let c =
        {
          region;
          cur_op = Types.Get { key = 0 };
          started_us = 0;
          gen = 0;
          waiting = false;
          wd_pending = false;
          trace = -1;
        }
      in
      (* Stagger client start to avoid a synchronized burst. *)
      let jitter = Sim.Rng.int (Engine.rng engine) 100_000 in
      Engine.schedule engine ~delay:jitter (client_loop c)
    done
  done;
  let minor_before = Gc.minor_words () in
  Engine.run engine ~until:end_us;
  let minor_words = Gc.minor_words () -. minor_before in
  let sim_events = Engine.events_executed engine in
  (* ---- consistency check against the committed order ---- *)
  let committed_order = inst.committed_ops ~node:leader in
  let violations =
    if committed_order = [] then 0
    else (Lin_check.check ~committed_order !events).Lin_check.violations |> List.length
  in
  let from_us = cfg.warmup_s * 1_000_000 in
  let until_us = (cfg.duration_s - cfg.cooldown_s) * 1_000_000 in
  let all =
    Stats.merge [ read_leader; read_follower; write_leader; write_follower ]
  in
  {
    throughput_ops = Stats.throughput_ops all ~from_us ~until_us;
    read_leader;
    read_follower;
    write_leader;
    write_follower;
    retries = !retries;
    consistency_violations = violations;
    messages = Net.sent_count net;
    bytes_by_node = Array.init regions (fun n -> Net.bytes_sent net n);
    telemetry = tel;
    requests = List.rev !requests;
    sim_events;
    minor_words;
  }

let median_throughput ?(trials = 3) cfg =
  let xs =
    List.init trials (fun i ->
        (run { cfg with seed = Int64.add cfg.seed (Int64.of_int i) })
          .throughput_ops)
    |> List.sort Float.compare
  in
  List.nth xs (trials / 2)

let peak_throughput ?(clients = [ 50; 200; 800; 2000 ]) cfg =
  List.fold_left
    (fun best c ->
      let cfg =
        {
          cfg with
          workload = { cfg.workload with Workload.clients_per_region = c };
        }
      in
      max best (median_throughput ~trials:1 cfg))
    0.0 clients
