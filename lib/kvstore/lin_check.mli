(** Per-key linearizability checking for read results.

    The oracle is the committed operation order (one protocol-supplied
    list; all replicas apply the same order).  For each key, writes get
    positions in that order.  A read that started at time [t] must return
    a write at least as new as every write whose {e completion} the system
    acknowledged before [t] (an acknowledged write is committed, so its
    position lower-bounds what any linearizable read may see), and the
    returned id must be a committed write of that key (or none, if the key
    was never written).

    This is a sound partial check: it cannot produce false alarms, and it
    catches the failure modes that matter here — stale lease reads,
    reads served from an un-replicated log, lost committed writes. *)

type event =
  | Write_complete of { write_id : int; key : int; at_us : int }
      (** the client's completion callback fired at [at_us] *)
  | Read of { key : int; started_us : int; returned : int option }

type violation = {
  v_key : int;
  v_returned : int option;
  v_expected_after : int;  (** write_id the read should have seen *)
  v_started_us : int;
}

type result = { reads_checked : int; violations : violation list }

val check :
  committed_order:Raftpax_consensus.Types.op list -> event list -> result

val check_sharded :
  committed_orders:Raftpax_consensus.Types.op list array ->
  group_of_key:(int -> int) ->
  event list ->
  result array
(** Per-group oracles for a sharded run: slices the events by key
    ownership ([group_of_key]) and runs {!check} for each group against
    that group's own committed order ([committed_orders.(g)]).  Sound for
    the same reason the single-group check is — each key lives in exactly
    one group's state machine, so per-key linearizability is decided
    entirely by that group's order. *)

val pp_violation : Format.formatter -> violation -> unit
