lib/kvstore/harness.mli: Raftpax_sim Workload
