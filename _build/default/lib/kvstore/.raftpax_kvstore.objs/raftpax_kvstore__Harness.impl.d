lib/kvstore/harness.ml: Array Int64 Lin_check List Option Raftpax_consensus Raftpax_sim Workload
