lib/kvstore/lin_check.mli: Format Raftpax_consensus
