lib/kvstore/workload.ml: Raftpax_consensus Raftpax_sim
