lib/kvstore/workload.mli: Raftpax_consensus
