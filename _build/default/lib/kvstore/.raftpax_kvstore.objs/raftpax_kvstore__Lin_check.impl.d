lib/kvstore/lin_check.ml: Fmt Hashtbl List Option Raftpax_consensus
