lib/consensus/types.ml: List
