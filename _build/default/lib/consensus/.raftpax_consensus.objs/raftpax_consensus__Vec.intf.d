lib/consensus/vec.mli:
