lib/consensus/raft.ml: Array Hashtbl List Option Raftpax_sim Types Vec
