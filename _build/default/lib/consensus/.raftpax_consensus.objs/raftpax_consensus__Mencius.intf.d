lib/consensus/mencius.mli: Raftpax_sim Types
