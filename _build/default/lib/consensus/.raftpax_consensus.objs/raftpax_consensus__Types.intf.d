lib/consensus/types.mli:
