lib/consensus/mencius.ml: Array Fun Hashtbl List Raftpax_sim Types Vec
