lib/consensus/multipaxos.ml: Array Fun Hashtbl List Raftpax_sim Types Vec
