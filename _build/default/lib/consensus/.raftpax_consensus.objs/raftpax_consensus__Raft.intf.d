lib/consensus/raft.mli: Raftpax_sim Types
