lib/consensus/multipaxos.mli: Raftpax_sim Types
