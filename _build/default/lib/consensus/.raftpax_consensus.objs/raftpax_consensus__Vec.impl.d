lib/consensus/vec.ml: Array List
