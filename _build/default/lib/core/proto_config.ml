type t = {
  acceptors : int;
  values : int;
  max_ballot : int;
  max_index : int;
}

let tiny = { acceptors = 3; values = 1; max_ballot = 1; max_index = 0 }
let small = { acceptors = 3; values = 2; max_ballot = 1; max_index = 1 }

let range lo hi = List.init (max 0 (hi - lo + 1)) (fun i -> lo + i)
let acceptor_ids t = range 0 (t.acceptors - 1)
let value_ids t = range 1 t.values
let ballots t = range 0 t.max_ballot
let indexes t = range 0 t.max_index
let majority t = (t.acceptors / 2) + 1

(* All sorted subsets of [ids] of size exactly [k]. *)
let rec choose k ids =
  if k = 0 then [ [] ]
  else
    match ids with
    | [] -> []
    | x :: rest ->
        List.map (fun sub -> x :: sub) (choose (k - 1) rest) @ choose k rest

let quorums t = choose (majority t) (acceptor_ids t)
let quorums_containing t a = List.filter (List.mem a) (quorums t)
