module V = Value
module C = Proto_config

let default_leader = 0
let noop_value = V.int 1

(* ---- delta-state accessors ---- *)

let default_proposals d = State.get d "defaultProposals"

let add_default_proposal d i b v =
  State.set d "defaultProposals"
    (V.set_add (V.tuple [ V.int i; V.int b; v ]) (default_proposals d))

let proposed_by_default ?value d i =
  V.set_exists
    (fun p ->
      match V.to_tuple p with
      | [ i'; _; v' ] -> (
          V.to_int i' = i
          && match value with Some v -> V.equal v v' | None -> true)
      | _ -> false)
    (default_proposals d)

let is_default_proposal d i b v =
  V.set_mem (V.tuple [ V.int i; V.int b; v ]) (default_proposals d)

let skip_tag d ~acc ~idx =
  V.to_bool (V.get (V.get (State.get d "skipTags") (V.int acc)) (V.int idx))

let set_skip_tag d acc idx =
  let tags = State.get d "skipTags" in
  let row = V.get tags (V.int acc) in
  State.set d "skipTags" (V.put tags (V.int acc) (V.put row (V.int idx) V.tt))

let executable d ~acc =
  List.filter_map
    (fun e ->
      match V.to_tuple e with
      | [ i; v ] -> Some (V.to_int i, v)
      | _ -> None)
    (V.to_set (V.get (State.get d "executable") (V.int acc)))

let add_executable d acc i v =
  let ex = State.get d "executable" in
  let row = V.get ex (V.int acc) in
  State.set d "executable"
    (V.put ex (V.int acc) (V.set_add (V.tuple [ V.int i; v ]) row))

(* ---- the delta ---- *)

let delta_init cfg =
  let accs = C.acceptor_ids cfg in
  let per_acceptor v = V.fn (List.map (fun a -> (V.int a, v)) accs) in
  let per_index v = V.fn (List.map (fun i -> (V.int i, v)) (C.indexes cfg)) in
  State.of_list
    [
      ("defaultProposals", V.set []);
      ("skipTags", per_acceptor (per_index V.ff));
      ("executable", per_acceptor (V.set []));
    ]

(* Coordination guard on Propose: only the default leader may propose real
   values; nobody (the default leader included) reverses a decision it has
   already made for an instance. *)
let propose_clause cfg =
  ignore cfg;
  Delta.modified ~base:"Propose" ~reads:[ "highestBallot" ]
    ~guard:(fun ~a_view:_ ~d_state ~label ->
      let a = Label.get_int label "a" in
      let i = Label.get_int label "i" in
      let v = V.int (Label.get_int label "v") in
      if a <> default_leader then V.equal v noop_value
      else if V.equal v noop_value then
        (* Skip only turns not already used for a real value. *)
        not
          (V.set_exists
             (fun p ->
               match V.to_tuple p with
               | [ i'; _; v' ] ->
                   V.to_int i' = i && not (V.equal v' noop_value)
               | _ -> false)
             (default_proposals d_state))
      else not (proposed_by_default ~value:noop_value d_state i))
    (fun ~a_view ~a_view':_ ~d_state ~label ->
      let a = Label.get_int label "a" in
      if a <> default_leader then d_state
      else
        let i = Label.get_int label "i" in
        let v = V.int (Label.get_int label "v") in
        let b =
          V.to_int (V.get (State.get a_view "highestBallot") (V.int a))
        in
        add_default_proposal d_state i b v)

(* The skip-learning rule (B.5's Phase2b change): any log entry a server
   newly holds that is a default-leader no-op proposal becomes a tagged,
   executable skip.  Written as a pre/post diff so it applies unchanged to
   every subaction that makes servers accept entries — in Paxos that is
   [Accept] and [BecomeLeader]; after porting, Raft*'s batched
   [AcceptEntries] and its election, the multi-action case the paper warns
   hand-porting misses. *)
let learn_skips cfg ~a_view ~a_view' ~d_state =
  List.fold_left
    (fun d acc ->
      List.fold_left
        (fun d i ->
          let entry s =
            V.get (V.get (State.get s "logs") (V.int acc)) (V.int i)
          in
          let e' = entry a_view' in
          if V.equal (entry a_view) e' then d
          else
            match V.to_tuple e' with
            | [ b; v ]
              when V.equal v noop_value
                   && is_default_proposal d i (V.to_int b) v ->
                add_executable (set_skip_tag d acc i) acc i v
            | _ -> d)
        d (C.indexes cfg))
    d_state (C.acceptor_ids cfg)

let accept_clause cfg =
  Delta.modified ~base:"Accept" ~reads:[ "logs" ]
    (fun ~a_view ~a_view' ~d_state ~label:_ ->
      learn_skips cfg ~a_view ~a_view' ~d_state)

let become_leader_clause cfg =
  Delta.modified ~base:"BecomeLeader" ~reads:[ "logs" ]
    (fun ~a_view ~a_view' ~d_state ~label:_ ->
      learn_skips cfg ~a_view ~a_view' ~d_state)

let delta cfg =
  Delta.make ~name:"Mencius"
    ~delta_vars:[ "defaultProposals"; "skipTags"; "executable" ]
    ~delta_init:(delta_init cfg)
    [ propose_clause cfg; accept_clause cfg; become_leader_clause cfg ]

(* ---- invariants (on the optimized Paxos state) ---- *)

let log_val s acc i =
  match
    V.to_tuple (V.get (V.get (State.get s "logs") (V.int acc)) (V.int i))
  with
  | [ _; v ] -> v
  | _ -> V.nil

let inv_skip_sound cfg s =
  List.for_all
    (fun acc ->
      List.for_all
        (fun i ->
          (not (skip_tag s ~acc ~idx:i))
          || (V.equal (log_val s acc i) noop_value
             && proposed_by_default ~value:noop_value s i))
        (C.indexes cfg))
    (C.acceptor_ids cfg)

let inv_executable_safe cfg s =
  List.for_all
    (fun acc ->
      List.for_all
        (fun (i, v) ->
          V.equal v noop_value
          && List.for_all (V.equal noop_value)
               (Spec_multipaxos.chosen_values cfg s ~idx:i))
        (executable s ~acc))
    (C.acceptor_ids cfg)

let invariants cfg =
  [
    ("SkipSound", inv_skip_sound cfg);
    ("ExecutableSafe", inv_executable_safe cfg);
  ]
