module Smap = Map.Make (String)

type t = Value.t Smap.t

let empty = Smap.empty
let of_list l = Smap.of_seq (List.to_seq l)
let to_list s = Smap.bindings s

let get s name =
  match Smap.find_opt name s with
  | Some v -> v
  | None -> invalid_arg ("State.get: unbound variable " ^ name)

let get_opt s name = Smap.find_opt name s
let set s name v = Smap.add name v s
let mem s name = Smap.mem name s
let vars s = List.map fst (Smap.bindings s)

let restrict s names =
  List.fold_left
    (fun acc name ->
      match Smap.find_opt name s with
      | Some v -> Smap.add name v acc
      | None -> acc)
    Smap.empty names

let merge base overlay = Smap.union (fun _ _ v -> Some v) base overlay

let unchanged s s' names =
  List.for_all
    (fun name ->
      match (Smap.find_opt name s, Smap.find_opt name s') with
      | Some a, Some b -> Value.equal a b
      | None, None -> true
      | _ -> false)
    names

let compare = Smap.compare Value.compare
let equal a b = compare a b = 0

let pp ppf s =
  let pp_binding ppf (name, v) = Fmt.pf ppf "@[<h>%s = %a@]" name Value.pp v in
  Fmt.pf ppf "@[<v>%a@]" Fmt.(list ~sep:cut pp_binding) (Smap.bindings s)

let pp_diff ppf (s, s') =
  let changed =
    List.filter
      (fun (name, v') ->
        match Smap.find_opt name s with
        | Some v -> not (Value.equal v v')
        | None -> true)
      (Smap.bindings s')
  in
  let pp_binding ppf (name, v) = Fmt.pf ppf "@[<h>%s := %a@]" name Value.pp v in
  Fmt.pf ppf "@[<v>%a@]" Fmt.(list ~sep:cut pp_binding) changed
