module V = Value
module C = Proto_config

let apply_index d a = V.to_int (V.get (State.get d "applyIndexC") (V.int a))
let checkpoint_at d a = V.to_int (V.get (State.get d "checkpointAt") (V.int a))

let set_per_acceptor d var a v =
  State.set d var (V.put (State.get d var) (V.int a) v)

let log_entry_of_view a_view a i =
  V.get (V.get (State.get a_view "logs") (V.int a)) (V.int i)

let delta_init cfg =
  let accs = C.acceptor_ids cfg in
  let per_acceptor v = V.fn (List.map (fun a -> (V.int a, v)) accs) in
  State.of_list
    [
      ("applyIndexC", per_acceptor (V.int (-1)));
      ("checkpointAt", per_acceptor (V.int (-1)));
      ("checkpointVal", per_acceptor (V.fn []));
    ]

(* A replica applies the next instance once it is chosen — the checkpoint
   optimization's only interaction with the base protocol is this read of
   chosen-ness. *)
let apply_in_order cfg =
  Delta.added ~descr:"apply the next chosen instance in order" "ApplyInOrder"
    (fun ~a_view ~d_state ->
      List.filter_map
        (fun a ->
          let i = apply_index d_state a + 1 in
          if i > cfg.C.max_index then None
          else
            match V.to_tuple (log_entry_of_view a_view a i) with
            | [ b; v ] when V.to_int b >= 0 ->
                (* chosen-ness (at any ballot — the local entry may have
                   been re-accepted at a later one) is evaluated on the
                   base votes, which the view carries *)
                let s = State.merge a_view d_state in
                if
                  List.exists (V.equal v)
                    (Spec_multipaxos.chosen_values cfg s ~idx:i)
                then
                  Some
                    ( Fmt.str "a=%d,i=%d" a i,
                      set_per_acceptor d_state "applyIndexC" a (V.int i) )
                else None
            | _ -> None)
        (C.acceptor_ids cfg))

let take_checkpoint cfg =
  Delta.added ~descr:"snapshot the applied prefix and its last index"
    "TakeCheckpoint" (fun ~a_view ~d_state ->
      List.filter_map
        (fun a ->
          let applied = apply_index d_state a in
          if applied <= checkpoint_at d_state a then None
          else begin
            (* "checkpoint both system state and last applied instance id"
               — the state here is the applied prefix of values *)
            let prefix =
              V.fn
                (List.filter_map
                   (fun i ->
                     if i <= applied then
                       match V.to_tuple (log_entry_of_view a_view a i) with
                       | [ _; v ] -> Some (V.int i, v)
                       | _ -> None
                     else None)
                   (C.indexes cfg))
            in
            let d = set_per_acceptor d_state "checkpointAt" a (V.int applied) in
            let d = set_per_acceptor d "checkpointVal" a prefix in
            Some (Fmt.str "a=%d,upto=%d" a applied, d)
          end)
        (C.acceptor_ids cfg))

let delta cfg =
  Delta.make ~name:"Checkpoint"
    ~delta_vars:[ "applyIndexC"; "checkpointAt"; "checkpointVal" ]
    ~delta_init:(delta_init cfg)
    [ apply_in_order cfg; take_checkpoint cfg ]

(* ---- invariants (on the optimized Paxos state) ---- *)

let inv_checkpoint_behind_apply cfg s =
  List.for_all
    (fun a -> checkpoint_at s a <= apply_index s a)
    (C.acceptor_ids cfg)

let inv_applied_chosen cfg s =
  List.for_all
    (fun a ->
      List.for_all
        (fun i ->
          i > apply_index s a
          ||
          match V.to_tuple (log_entry_of_view s a i) with
          | [ b; v ] when V.to_int b >= 0 ->
              List.exists (V.equal v)
                (Spec_multipaxos.chosen_values cfg s ~idx:i)
          | _ -> false)
        (C.indexes cfg))
    (C.acceptor_ids cfg)

let inv_checkpoint_stable cfg s =
  List.for_all
    (fun a ->
      let upto = checkpoint_at s a in
      let snap = V.get (State.get s "checkpointVal") (V.int a) in
      List.for_all
        (fun i ->
          i > upto
          ||
          (* the snapshotted value is among the chosen values at i *)
          match V.get_opt snap (V.int i) with
          | Some v -> List.exists (V.equal v) (Spec_multipaxos.chosen_values cfg s ~idx:i)
          | None -> false)
        (C.indexes cfg))
    (C.acceptor_ids cfg)

let invariants cfg =
  [
    ("CheckpointBehindApply", inv_checkpoint_behind_apply cfg);
    ("AppliedChosen", inv_applied_chosen cfg);
    ("CheckpointStable", inv_checkpoint_stable cfg);
  ]
