(** The checkpointing optimization the paper uses as its motivating example
    for automatic porting (Section 2.2): a replica applies chosen instances
    in order and periodically checkpoints "system state + last applied
    instance id".  Under the refinement mapping, the instance id is the log
    index, so the ported Raft* optimization checkpoints the last applied
    log index — "without considering the precise semantics", exactly as the
    paper promises.

    Delta state (all new variables — trivially non-mutating):
    - [applyIndexC]  : acceptor -> last applied instance (in-order);
    - [checkpointAt] : acceptor -> instance id of the latest checkpoint;
    - [checkpointVal]: acceptor -> the checkpointed prefix (the "system
      state": the values of instances up to [checkpointAt]).

    Added subactions: [ApplyInOrder] (advance over chosen instances) and
    [TakeCheckpoint].  No base subaction is modified. *)

val delta : Proto_config.t -> Delta.t

val apply_index : State.t -> int -> int
val checkpoint_at : State.t -> int -> int

val inv_checkpoint_behind_apply : Proto_config.t -> State.t -> bool
val inv_applied_chosen : Proto_config.t -> State.t -> bool
(** Everything applied is chosen (reads base votes + delta vars, so it
    works on the optimized Paxos state). *)

val inv_checkpoint_stable : Proto_config.t -> State.t -> bool
(** The checkpointed prefix equals the chosen values it claims to
    snapshot. *)

val invariants : Proto_config.t -> (string * (State.t -> bool)) list
