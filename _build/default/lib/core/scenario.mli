(** Deterministic scenario driving for specs: pick a specific enabled
    transition by action name and label.  Used by tests and examples to
    steer a spec into an interesting corner (e.g. vanilla Raft's erase
    step) instead of waiting for breadth-first search to reach it. *)

val step : Spec.t -> State.t -> action:string -> label:string -> State.t
(** Applies the unique successor of [action] whose label starts with
    [label]; raises [Failure] (naming the candidates) when none or several
    match. *)

val run : Spec.t -> State.t -> (string * string) list -> State.t
(** Folds {!step} over a list of [(action, label)] picks. *)

val run_trace :
  Spec.t -> State.t -> (string * string) list -> (State.t * State.t) list
(** Like {!run} but returns every [(pre, post)] transition, in order. *)
