let clauses_for (delta : Delta.t) bases =
  List.filter_map
    (function
      | Delta.Modified { base; clause } when List.mem base bases ->
          Some (base, clause)
      | Delta.Modified _ | Delta.Added _ -> None)
    delta.items

(* Conjoin a list of extra clauses onto one base-transition.  [a_view] and
   [a_view'] are the base-protocol images of the pre/post states; updates are
   folded left-to-right over the delta state. *)
let conjoin clauses ~a_view ~a_view' ~d_state ~label =
  let enabled =
    List.for_all
      (fun (_, (c : Delta.clause)) -> c.extra_guard ~a_view ~d_state ~label)
      clauses
  in
  if not enabled then None
  else
    Some
      (List.fold_left
         (fun d (_, (c : Delta.clause)) ->
           let d' = c.extra_update ~a_view ~a_view' ~d_state:d ~label in
           State.merge d d')
         d_state clauses)

let lift_added ~frame_vars ~delta_vars ~view_of name descr enum =
  Action.make ~descr name (fun s ->
      let frame = State.restrict s frame_vars in
      let d_state = State.restrict s delta_vars in
      let a_view = view_of frame in
      List.map
        (fun (label, d') -> (label, State.merge frame d'))
        (enum ~a_view ~d_state))

let apply (delta : Delta.t) (a : Spec.t) : Spec.t =
  let a_vars = a.vars in
  let d_vars = delta.delta_vars in
  (match List.filter (fun v -> List.mem v a_vars) d_vars with
  | [] -> ()
  | clash ->
      invalid_arg
        (Fmt.str "Port.apply: delta vars clash with base vars: %a"
           Fmt.(list ~sep:comma string)
           clash));
  let lifted_actions =
    List.map
      (fun (act : Action.t) ->
        let clauses =
          clauses_for delta [ act.name ]
        in
        Action.make ~descr:act.descr act.name (fun s ->
            let a_view = State.restrict s a_vars in
            let d_state = State.restrict s d_vars in
            List.filter_map
              (fun (label, a_view') ->
                match clauses with
                | [] -> Some (label, State.merge a_view' d_state)
                | _ -> (
                    match conjoin clauses ~a_view ~a_view' ~d_state ~label with
                    | Some d' -> Some (label, State.merge a_view' d')
                    | None -> None))
              (act.enum a_view)))
      a.actions
  in
  let added_actions =
    List.filter_map
      (function
        | Delta.Added { name; descr; enum } ->
            Some
              (lift_added ~frame_vars:a_vars ~delta_vars:d_vars
                 ~view_of:(fun frame -> frame)
                 name descr enum)
        | Delta.Modified _ -> None)
      delta.items
  in
  Spec.make
    ~name:(a.name ^ "+" ^ delta.name)
    ~vars:(a_vars @ d_vars)
    ~init:(List.map (fun s -> State.merge s delta.delta_init) a.init)
    (lifted_actions @ added_actions)

let port (delta : Delta.t) ~(low : Spec.t) ~map ~implies
    ?(label_map = fun ~b_action:_ ~a_action:_ label -> label)
    ?name () : Spec.t =
  let b_vars = low.vars in
  let d_vars = delta.delta_vars in
  (match List.filter (fun v -> List.mem v b_vars) d_vars with
  | [] -> ()
  | clash ->
      invalid_arg
        (Fmt.str "Port.port: delta vars clash with low-level vars: %a"
           Fmt.(list ~sep:comma string)
           clash));
  (* Case 2 and Case 3: carry over every B subaction; conjoin the translated
     clauses of every modified A subaction it implies. *)
  let ported_actions =
    List.map
      (fun (act : Action.t) ->
        let clauses = clauses_for delta (implies act.name) in
        Action.make ~descr:act.descr act.name (fun s ->
            let b_view = State.restrict s b_vars in
            let d_state = State.restrict s d_vars in
            List.filter_map
              (fun (label, b_view') ->
                match clauses with
                | [] -> Some (label, State.merge b_view' d_state)
                | _ ->
                    let a_view = map b_view in
                    let a_view' = map b_view' in
                    let translate (base, clause) =
                      ( base,
                        {
                          clause with
                          Delta.extra_guard =
                            (fun ~a_view ~d_state ~label ->
                              clause.Delta.extra_guard ~a_view ~d_state
                                ~label:
                                  (label_map ~b_action:act.name ~a_action:base
                                     label));
                          extra_update =
                            (fun ~a_view ~a_view' ~d_state ~label ->
                              clause.Delta.extra_update ~a_view ~a_view'
                                ~d_state
                                ~label:
                                  (label_map ~b_action:act.name ~a_action:base
                                     label));
                        } )
                    in
                    let clauses = List.map translate clauses in
                    (match
                       conjoin clauses ~a_view ~a_view' ~d_state ~label
                     with
                    | Some d' -> Some (label, State.merge b_view' d')
                    | None -> None))
              (act.enum b_view)))
      low.actions
  in
  (* Case 1: added subactions, with Var_A reads substituted by f(Var_B). *)
  let added_actions =
    List.filter_map
      (function
        | Delta.Added { name; descr; enum } ->
            Some
              (lift_added ~frame_vars:b_vars ~delta_vars:d_vars ~view_of:map
                 name descr enum)
        | Delta.Modified _ -> None)
      delta.items
  in
  Spec.make
    ~name:(Option.value name ~default:(low.name ^ "+" ^ delta.name))
    ~vars:(b_vars @ d_vars)
    ~init:(List.map (fun s -> State.merge s delta.delta_init) low.init)
    (ported_actions @ added_actions)

let check_non_mutating ?max_states ~(base : Spec.t) ~(delta : Delta.t) () =
  let optimized = apply delta base in
  Refinement.check ?max_states ~low:optimized ~high:base
    ~map:(fun s -> State.restrict s base.vars)
    ()

let check_ported ?max_states ?max_hops ~(low : Spec.t) ~(high : Spec.t)
    ~(delta : Delta.t) ~map ~implies ?label_map () =
  let high_opt = apply delta high in
  let low_opt = port delta ~low ~map ~implies ?label_map () in
  let opt_map s =
    State.merge (map (State.restrict s low.vars)) (State.restrict s delta.delta_vars)
  in
  let refines_high_opt =
    Refinement.check ?max_states ?max_hops ~low:low_opt ~high:high_opt
      ~map:opt_map ()
  in
  let refines_low =
    Refinement.check ?max_states ?max_hops ~low:low_opt ~high:low
      ~map:(fun s -> State.restrict s low.vars)
      ()
  in
  (refines_high_opt, refines_low)
