type clause = {
  reads : string list;
  extra_guard : a_view:State.t -> d_state:State.t -> label:string -> bool;
  extra_update :
    a_view:State.t ->
    a_view':State.t ->
    d_state:State.t ->
    label:string ->
    State.t;
}

type item =
  | Added of {
      name : string;
      descr : string;
      enum : a_view:State.t -> d_state:State.t -> (string * State.t) list;
    }
  | Modified of { base : string; clause : clause }

type t = {
  name : string;
  delta_vars : string list;
  delta_init : State.t;
  items : item list;
}

let make ~name ~delta_vars ~delta_init items =
  let delta_vars = List.sort_uniq String.compare delta_vars in
  if State.vars delta_init <> delta_vars then
    invalid_arg
      (Fmt.str "Delta.make %s: delta_init must bind exactly the delta vars"
         name);
  { name; delta_vars; delta_init; items }

let added ?(descr = "") name enum = Added { name; descr; enum }

let modified ~base ?(reads = [])
    ?(guard = fun ~a_view:_ ~d_state:_ ~label:_ -> true) extra_update =
  Modified { base; clause = { reads; extra_guard = guard; extra_update } }

let modified_bases t =
  List.filter_map
    (function Modified { base; _ } -> Some base | Added _ -> None)
    t.items
  |> List.sort_uniq String.compare

let pp ppf t =
  let pp_item ppf = function
    | Added { name; descr; _ } ->
        if descr = "" then Fmt.pf ppf "added %s" name
        else Fmt.pf ppf "added %s  (* %s *)" name descr
    | Modified { base; clause } ->
        Fmt.pf ppf "modified %s (reads %a)" base
          Fmt.(list ~sep:comma string)
          clause.reads
  in
  Fmt.pf ppf "@[<v>delta %s@,new vars: %a@,%a@]" t.name
    Fmt.(list ~sep:comma string)
    t.delta_vars
    Fmt.(list ~sep:cut pp_item)
    t.items
