(** Finite-instance parameters for the protocol specifications.

    TLC-style model checking needs finite domains; these bounds pick how
    many acceptors, distinct client values, ballots/terms and log positions
    a spec instance ranges over.

    Quorums are enumerated as the {e minimal majorities} (subsets of exactly
    [(n / 2) + 1] acceptors).  Both the Paxos-side and Raft-side specs use
    the same enumeration, so the refinement checker compares like with
    like; any majority contains a minimal one, so chosen-ness predicates
    are unaffected. *)

type t = {
  acceptors : int;  (** number of servers; ids are [0 .. acceptors-1] *)
  values : int;  (** distinct proposable values; ids are [1 .. values] *)
  max_ballot : int;  (** ballots/terms range over [0 .. max_ballot] *)
  max_index : int;  (** log positions range over [0 .. max_index] *)
}

val tiny : t
(** 3 acceptors, 1 value, ballots 0–1, a single log slot — the smallest
    instance that still exercises quorum intersection. *)

val small : t
(** 3 acceptors, 2 values, ballots 0–1, two log slots. *)

val acceptor_ids : t -> int list
val value_ids : t -> int list
val ballots : t -> int list
val indexes : t -> int list

val quorums : t -> int list list
(** All minimal majorities, each sorted ascending. *)

val quorums_containing : t -> int -> int list list
val majority : t -> int
(** [f + 1], i.e. [(acceptors / 2) + 1]. *)
