let parse label =
  if label = "" then []
  else
    String.split_on_char ',' label
    |> List.filter_map (fun kv ->
           match String.index_opt kv '=' with
           | Some eq ->
               Some
                 ( String.sub kv 0 eq,
                   String.sub kv (eq + 1) (String.length kv - eq - 1) )
           | None -> None)

let get label key =
  match List.assoc_opt key (parse label) with
  | Some v -> v
  | None -> raise Not_found

let get_int label key = int_of_string (get label key)
let get_opt label key = List.assoc_opt key (parse label)

let keep keys label =
  parse label
  |> List.filter (fun (k, _) -> List.mem k keys)
  |> List.map (fun (k, v) -> k ^ "=" ^ v)
  |> String.concat ","
