(** Executable transcription of the paper's Appendix B.1 MultiPaxos TLA+
    specification.

    State variables (names as in the TLA+ module):
    - [highestBallot] : acceptor -> ballot
    - [isLeader]      : acceptor -> bool (TLA's phase1Succeeded)
    - [logTail]       : acceptor -> index or -1
    - [votes]         : acceptor -> index -> set of (ballot, value)
    - [proposedValues]: set of (index, ballot, value)
    - [logs]          : acceptor -> index -> (ballot or -1, value or NoVal)
    - [msgs1a]        : set of {acc; bal}
    - [msgs1b]        : set of {acc; bal; log; logTail}

    Subactions: [IncreaseHighestBallot], [Phase1a], [Phase1b],
    [BecomeLeader], [Propose], [Accept]. *)

val spec : ?name:string -> ?phase1_quorums:int list list -> Proto_config.t -> Spec.t
(** [phase1_quorums] overrides the leader-election quorum enumeration
    (defaults to the minimal majorities) — the hook {!Spec_flexipaxos}
    uses to model Flexible Paxos's relaxed Phase-1 quorums. *)

(** {1 State inspection helpers} (shared with the Raft-side specs and
    invariants) *)

val entry : int -> Value.t -> Value.t
(** [(ballot, value)] pair. *)

val empty_entry : Value.t
(** [(-1, NoVal)]. *)

val highest_ballot_entry : Value.t list -> int -> Value.t
(** TLA's [GetHighestBallotEntry]: among the logs carried by 1b messages,
    the entry at the given index with the highest ballot ([empty_entry]
    when none carries a value there). *)

val voted_for : State.t -> acc:int -> idx:int -> bal:int -> Value.t -> bool
val chosen_at : Proto_config.t -> State.t -> idx:int -> bal:int -> Value.t -> bool

val chosen_at_q :
  int list list -> State.t -> idx:int -> bal:int -> Value.t -> bool
(** Like {!chosen_at}, over an explicit (Phase-2) quorum system. *)

val chosen_values : Proto_config.t -> State.t -> idx:int -> Value.t list
(** Values chosen at an index under any ballot. *)

(** {1 Invariants} *)

val inv_one_value_per_ballot : Proto_config.t -> State.t -> bool
(** Two acceptors never vote for different values at the same (index,
    ballot). *)

val inv_agreement : Proto_config.t -> State.t -> bool
(** At most one value is chosen per index. *)

val inv_logs_safe : Proto_config.t -> State.t -> bool
(** Every accepted log entry is SafeAt its ballot (TLA's [LogsSafe]). *)

val invariants : Proto_config.t -> (string * (State.t -> bool)) list
