(** Coordinated Paxos — the per-instance-group core of Mencius (Mao et
    al.), the paper's Appendix B.5 — expressed as a {b non-mutating
    optimization delta} over {!Spec_multipaxos}.

    One coordinated-Paxos group has a single {e default leader} who alone
    may propose real values; every other server may propose only no-op
    ("skip my turn").  The payoff is the skip rule: as soon as a server
    {e accepts} a no-op proposed by the default leader it may mark the
    instance executable without waiting for the commit quorum — only the
    default leader could have proposed a real value there, and it has
    forfeited its turn.  Full Mencius is the round-robin composition of
    such groups, one per replica (built at runtime in [lib/consensus]; the
    spec checks one group, exactly as the paper's B.5 does).

    Delta state:
    - [defaultProposals]: the (index, ballot, value) proposals made by the
      default leader.  The paper's B.5 instead widens the base
      [proposedValues] tuples with a [default] flag — a base-variable
      mutation that contradicts its own non-mutating claim; tracking the
      same information in a parallel delta variable is equivalent and
      genuinely non-mutating (see DESIGN.md "Deviations").
    - [skipTags]: per server, per index — learned "this slot is a skip";
    - [executable]: per server, the (index, value) pairs executable ahead
      of commit.

    Modified subactions: [Propose] (coordination guard + default-proposal
    tracking), [Accept] (learn skips: B.5's Phase2b change), and
    [BecomeLeader] (adopt skip tags along with safe entries: B.5's
    Phase1b/Phase1Succeed changes).  When this delta is ported to Raft*,
    the [Accept] clause lands on [AcceptEntries] — which batches several
    Paxos accepts — and the [BecomeLeader] clause on Raft*'s election;
    this is the paper's warning case where a hand port that only patches
    one of the implied actions would be wrong. *)

val default_leader : int
(** Server 0 is the group's default leader. *)

val noop_value : Value.t
(** Value id 1 is designated as the group's no-op (the delta only
    interprets it; the base protocol treats it as an ordinary value). *)

val delta : Proto_config.t -> Delta.t

val skip_tag : State.t -> acc:int -> idx:int -> bool
val executable : State.t -> acc:int -> (int * Value.t) list

val inv_skip_sound : Proto_config.t -> State.t -> bool
(** A skip tag implies the tagged entry is a default-leader no-op. *)

val inv_executable_safe : Proto_config.t -> State.t -> bool
(** Executable-before-commit is safe: if any server marked (i, noop)
    executable, no value other than noop is ever chosen at i.  Evaluated
    on the optimized Paxos state (base votes + delta vars). *)

val invariants : Proto_config.t -> (string * (State.t -> bool)) list
