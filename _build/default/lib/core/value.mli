(** The universe of values manipulated by executable TLA-style
    specifications.

    Values are immutable and kept in a canonical form: sets are sorted and
    deduplicated, finite maps are sorted by key.  This makes structural
    comparison a total order on the whole universe, which the explorer uses
    to deduplicate states. *)

type t =
  | Int of int
  | Bool of bool
  | Str of string
  | Tuple of t list
  | Set of t list  (** canonical: strictly ascending *)
  | Map of (t * t) list  (** finite map, canonical: keys strictly ascending *)
  | Rec of (string * t) list  (** record, canonical: fields strictly ascending *)

val compare : t -> t -> int
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string

(** {1 Constructors} *)

val int : int -> t
val bool : bool -> t
val str : string -> t
val tuple : t list -> t

val set : t list -> t
(** Builds a canonical set (sorts, dedups). *)

val map_of : (t * t) list -> t
(** Builds a canonical finite map; raises [Invalid_argument] on duplicate
    keys. *)

val record : (string * t) list -> t
(** Builds a canonical record; raises [Invalid_argument] on duplicate
    fields. *)

(** {1 Destructors} — raise [Invalid_argument] on a type mismatch, which in a
    specification indicates a bug in the spec itself. *)

val to_int : t -> int
val to_bool : t -> bool
val to_str : t -> string
val to_tuple : t -> t list
val to_set : t -> t list
val to_map : t -> (t * t) list
val to_rec : t -> (string * t) list

(** {1 Set operations} *)

val set_mem : t -> t -> bool
(** [set_mem x s] tests membership of [x] in set [s]. *)

val set_add : t -> t -> t
val set_union : t -> t -> t
val set_card : t -> int
val set_subset : t -> t -> bool
(** [set_subset s1 s2] is true iff every element of [s1] is in [s2]. *)

val set_filter : (t -> bool) -> t -> t
val set_exists : (t -> bool) -> t -> bool
val set_for_all : (t -> bool) -> t -> bool
val subsets : t -> t list
(** All subsets of a set, as set values.  Exponential: only use on the small
    finite instances the explorer works with. *)

(** {1 Finite-map operations} *)

val get : t -> t -> t
(** [get m k] looks up key [k]; raises [Not_found] if absent. *)

val get_opt : t -> t -> t option
val put : t -> t -> t -> t
(** [put m k v] is [m] with [k] bound to [v] (replacing any previous
    binding). *)

val keys : t -> t list
val fn : (t * t) list -> t
(** Alias of {!map_of} for building TLA-style functions. *)

(** {1 Record operations} *)

val field : t -> string -> t
(** [field r name]: record field access; raises [Not_found] if absent. *)

val with_field : t -> string -> t -> t

(** {1 Common constants} *)

val nil : t
(** Distinguished "no value" marker ([Str "NoVal"]), used where the paper's
    specs use [NoVal]. *)

val noop : t
(** Distinguished no-op command marker ([Str "Noop"]), used by Mencius. *)

val tt : t
val ff : t
