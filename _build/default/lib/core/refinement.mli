(** Refinement-mapping checker (Abadi & Lamport).

    [B] refines [A] under a state mapping [f : State_B -> State_A] when
    every initial state of [B] maps to an initial state of [A], and every
    transition [s -> s'] of [B] maps either to a stuttering step
    ([f s = f s']) or to some transition [f s -> f s'] allowed by [A]'s
    next-state relation.

    The checker explores [B]'s reachable state space (bounded) and
    discharges each transition against [A] by enumerating [A]'s successors
    of [f s].  This is exactly the obligation in the paper's Section 4.1:
    [b_i => a_j \/ f(Var'_B) = f(Var_B)].

    The paper's Appendix C additionally maps one batched Raft* step to a
    {e sequence} of Paxos steps (e.g. [AppendEntries] implies a run of
    [Phase2a]s; [BecomeLeader] implies [Phase1Succeed] followed by implicit
    propose/accepts).  [max_hops] enables this: a low-level transition is
    discharged if [f s'] is reachable from [f s] in at most [max_hops]
    high-level steps.  [max_hops = 1] (the default) is the classic
    single-step refinement obligation. *)

type failure = {
  kind : [ `Init | `Transition ];
  b_state : State.t;
  b_action : string;  (** "" for an init failure *)
  b_label : string;
  b_state' : State.t;  (** = [b_state] for an init failure *)
  a_state : State.t;
  a_state' : State.t;
  b_trace : Explorer.step list;  (** shortest path in B to [b_state] *)
}

type report = {
  checked_states : int;
  checked_transitions : int;
  stuttering : int;  (** transitions discharged as stuttering steps *)
  complete : bool;
  (* For each B action, how often it implied each A action path (actions
     joined by "+") — this is the machine-checked version of the paper's
     Figure 3 function mapping. *)
  action_map : (string * (string * int) list) list;
}

type result = Refines of report | Fails of failure * report

val discharge :
  high:Spec.t -> max_hops:int -> State.t -> State.t -> string list option
(** [discharge ~high ~max_hops a a'] asks whether the (already mapped)
    high-level transition [a -> a'] is allowed: returns the action names of
    a shortest path of at most [max_hops] high-level steps from [a] to
    [a'], or [None].  [Some []] means a stuttering step.  Used by tests to
    exhibit a single offending transition. *)

val check :
  ?max_states:int ->
  ?max_depth:int ->
  ?max_hops:int ->
  low:Spec.t ->
  high:Spec.t ->
  map:(State.t -> State.t) ->
  unit ->
  result

val pp_result : Format.formatter -> result -> unit
