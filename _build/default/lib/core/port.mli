(** The porting method of Section 4.3.

    Given a base protocol [A], a non-mutating optimization [Δ] (so that
    [A^Δ = apply Δ A]), a refining protocol [B ⇒ A] with state mapping
    [f : Var_B -> Var_A], and the action correspondence [implies] (which B
    subactions imply which A subactions — the paper's Figure 3), {!port}
    derives [B^Δ]:

    - {b Case 1}: each added subaction of [Δ] becomes an added subaction of
      [B^Δ] with [Var_A] reads substituted by [f(Var_B)];
    - {b Case 2}: each B subaction that implies only unchanged A subactions
      (or stuttering) is carried over unchanged;
    - {b Case 3}: each B subaction [b_j] that implies a modified A subaction
      [a_i] gets the extra clauses of [a_i^Δ], with [Var_A = f(Var_B)] and
      parameters translated by [label_map].

    Because one B subaction may imply several A subactions (e.g. Raft*'s
    [AppendEntries] implies both [Phase2a] and [Phase2b]), {e all} clauses
    of {e all} implied modified subactions are conjoined — the exact hazard
    the paper says hand-porting gets wrong. *)

val apply : Delta.t -> Spec.t -> Spec.t
(** [apply delta a] builds [A^Δ] over variables [Var_A ∪ Var_Δ]. *)

val port :
  Delta.t ->
  low:Spec.t ->
  map:(State.t -> State.t) ->
  implies:(string -> string list) ->
  ?label_map:(b_action:string -> a_action:string -> string -> string) ->
  ?name:string ->
  unit ->
  Spec.t
(** [port delta ~low ~map ~implies ()] builds [B^Δ].  [implies b] lists the
    names of the A subactions that B subaction [b] may imply ([[]] for
    pure-stutter subactions).  [label_map] is the parameter mapping
    [f_args]; it defaults to the identity. *)

val check_non_mutating :
  ?max_states:int -> base:Spec.t -> delta:Delta.t -> unit -> Refinement.result
(** Semantic verification that [apply delta base] refines [base] under the
    identity-on-[Var_A] projection — the defining property of a
    non-mutating optimization (Section 4.2). *)

val check_ported :
  ?max_states:int ->
  ?max_hops:int ->
  low:Spec.t ->
  high:Spec.t ->
  delta:Delta.t ->
  map:(State.t -> State.t) ->
  implies:(string -> string list) ->
  ?label_map:(b_action:string -> a_action:string -> string -> string) ->
  unit ->
  Refinement.result * Refinement.result
(** The two correctness obligations of Figure 5 for the generated [B^Δ]:
    (1) [B^Δ] refines [A^Δ] (the optimization's invariants are preserved)
    and (2) [B^Δ] refines [B] (the base protocol's invariants are
    preserved). *)
