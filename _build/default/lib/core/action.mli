(** A TLA-style subaction: a named, possibly parameterised next-state
    relation.

    Enabling conditions and next-state assignments are folded into [enum],
    which enumerates every successor state reachable from a given state by
    this subaction, together with a label recording the parameter
    instantiation (e.g. ["a=1,b=2"]).  An action that is not enabled in a
    state simply enumerates no successors. *)

type t = {
  name : string;
  descr : string;  (** one-line human description, used when printing specs *)
  enum : State.t -> (string * State.t) list;
}

val make : ?descr:string -> string -> (State.t -> (string * State.t) list) -> t

val simple : ?descr:string -> string -> (State.t -> State.t option) -> t
(** An unparameterised action: at most one successor, labelled [""]. *)

val rename : string -> t -> t

val guard : (string -> State.t -> State.t -> bool) -> t -> t
(** [guard p a] restricts [a] to the successors [(label, s')] for which
    [p label s s'] holds. *)

val pp : Format.formatter -> t -> unit
