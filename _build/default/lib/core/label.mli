(** Action labels encode parameter instantiations as ["k1=v1,k2=v2,..."].
    This module parses them, so optimization clauses can read parameters
    and porting can implement the paper's parameter mapping [f_args]
    (Section 4.3) by re-writing labels between protocols. *)

val parse : string -> (string * string) list
val get : string -> string -> string
(** [get label key]; raises [Not_found]. *)

val get_int : string -> string -> int
val get_opt : string -> string -> string option

val keep : string list -> string -> string
(** [keep keys label] drops every parameter not named in [keys], preserving
    order — the usual shape of [f_args] between a protocol and its
    refinement (e.g. Raft*'s ["a=1,i1=0,i=0,v=2"] maps to Paxos's
    ["a=1,i=0,v=2"]). *)
