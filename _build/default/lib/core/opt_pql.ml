module V = Value
module C = Proto_config

type params = { lease_duration : int; max_timer : int }

let default_params = { lease_duration = 1; max_timer = 1 }

let is_read v = V.to_int v mod 2 = 0

(* ---- delta-state accessors ---- *)

let timer d = V.to_int (State.get d "timer")

let lease_deadline d p q =
  V.to_int (V.get (V.get (State.get d "leases") (V.int p)) (V.int q))

let set_lease d p q deadline =
  let leases = State.get d "leases" in
  let row = V.get leases (V.int p) in
  State.set d "leases"
    (V.put leases (V.int p) (V.put row (V.int q) (V.int deadline)))

let apply_index d a = V.to_int (V.get (State.get d "applyIndex") (V.int a))

let set_apply_index d a i =
  State.set d "applyIndex" (V.put (State.get d "applyIndex") (V.int a) (V.int i))

let holds_lease d ~grantor ~holder = lease_deadline d grantor holder >= timer d

let lease_is_active cfg s p =
  List.exists
    (fun q -> List.for_all (fun a -> holds_lease s ~grantor:a ~holder:p) q)
    (C.quorums cfg)

let granted_lease_holders cfg s q =
  List.filter
    (fun p -> List.exists (fun a -> holds_lease s ~grantor:a ~holder:p) q)
    (C.acceptor_ids cfg)

let active_lease_holders cfg s =
  List.filter (lease_is_active cfg s) (C.acceptor_ids cfg)

(* [s] carries both the base "votes" and the delta lease state — true of
   the optimized Paxos state and of the optimized Raft* state alike. *)
let can_commit_at cfg s ~idx ~bal v =
  List.exists
    (fun q ->
      List.for_all (fun a -> Spec_multipaxos.voted_for s ~acc:a ~idx ~bal v) q
      && List.for_all
           (fun p -> Spec_multipaxos.voted_for s ~acc:p ~idx ~bal v)
           (granted_lease_holders cfg s q))
    (C.quorums cfg)

(* ---- the delta ---- *)

let delta_init cfg =
  let accs = C.acceptor_ids cfg in
  let per_acceptor v = V.fn (List.map (fun a -> (V.int a, v)) accs) in
  State.of_list
    [
      ("timer", V.int 0);
      (* -1 = never granted; the paper's B.3 initialises deadlines to 0,
         which (at timer 0) makes every replica an initial lease holder —
         harmless for LeaseInv but clearly unintended. *)
      ("leases", per_acceptor (per_acceptor (V.int (-1))));
      ("applyIndex", per_acceptor (V.int (-1)));
    ]

let grant_lease cfg params =
  Delta.added ~descr:"a replica grants (or renews) a lease to a peer"
    "GrantLease" (fun ~a_view:_ ~d_state ->
      List.concat_map
        (fun p ->
          List.filter_map
            (fun q ->
              let deadline = timer d_state + params.lease_duration in
              if lease_deadline d_state p q = deadline then None
              else
                Some (Fmt.str "p=%d,q=%d" p q, set_lease d_state p q deadline))
            (C.acceptor_ids cfg))
        (C.acceptor_ids cfg))

let update_timer params =
  Delta.added ~descr:"the global lease clock advances" "UpdateTimer"
    (fun ~a_view:_ ~d_state ->
      let t = timer d_state in
      if t >= params.max_timer then []
      else [ (Fmt.str "t=%d" (t + 1), State.set d_state "timer" (V.int (t + 1))) ])

let log_entry_of_view a_view a i =
  V.get (V.get (State.get a_view "logs") (V.int a)) (V.int i)

let apply cfg =
  Delta.added
    ~descr:"apply the next committable entry (waits for lease holders)"
    "Apply" (fun ~a_view ~d_state ->
      (* The commit test reads votes from the base view and leases from the
         delta state; stitch them together for [can_commit_at]. *)
      let s = State.merge a_view d_state in
      List.filter_map
        (fun a ->
          let i = apply_index d_state a + 1 in
          if i > cfg.C.max_index then None
          else
            match V.to_tuple (log_entry_of_view a_view a i) with
            | [ b; v ] when V.to_int b >= 0 ->
                if can_commit_at cfg s ~idx:i ~bal:(V.to_int b) v then
                  Some (Fmt.str "a=%d,i=%d" a i, set_apply_index d_state a i)
                else None
            | _ -> None)
        (C.acceptor_ids cfg))

let read_at_local cfg =
  Delta.added
    ~descr:"serve a strongly-consistent read locally under a quorum lease"
    "ReadAtLocal" (fun ~a_view ~d_state ->
      let s = State.merge a_view d_state in
      List.filter_map
        (fun a ->
          let tail =
            V.to_int (V.get (State.get a_view "logTail") (V.int a))
          in
          if lease_is_active cfg s a && tail = apply_index d_state a then
            (* Local reads change no state: a legal stuttering step. *)
            Some (Fmt.str "a=%d" a, d_state)
          else None)
        (C.acceptor_ids cfg))

let propose_clause cfg =
  Delta.modified ~base:"Propose" ~reads:[]
    ~guard:(fun ~a_view ~d_state ~label ->
      let a = Label.get_int label "a" in
      let v = V.int (Label.get_int label "v") in
      let s = State.merge a_view d_state in
      is_read v || not (lease_is_active cfg s a))
    (fun ~a_view:_ ~a_view':_ ~d_state ~label:_ -> d_state)

let delta ?(params = default_params) cfg =
  Delta.make ~name:"PQL"
    ~delta_vars:[ "timer"; "leases"; "applyIndex" ]
    ~delta_init:(delta_init cfg)
    [
      grant_lease cfg params;
      update_timer params;
      apply cfg;
      read_at_local cfg;
      propose_clause cfg;
    ]

(* ---- invariants ---- *)

let inv_lease cfg s =
  List.for_all
    (fun i ->
      List.for_all
        (fun b ->
          List.for_all
            (fun vid ->
              let v = V.int vid in
              if can_commit_at cfg s ~idx:i ~bal:b v then
                Spec_multipaxos.chosen_at cfg s ~idx:i ~bal:b v
                && List.for_all
                     (fun p -> Spec_multipaxos.voted_for s ~acc:p ~idx:i ~bal:b v)
                     (active_lease_holders cfg s)
              else true)
            (C.value_ids cfg))
        (C.ballots cfg))
    (C.indexes cfg)

(* applyIndex only ever points at committable entries, so two replicas that
   both applied index i applied the same value. *)
let inv_applied_agreement cfg s =
  List.for_all
    (fun i ->
      let applied =
        List.filter_map
          (fun a ->
            if apply_index s a >= i then
              match V.to_tuple (log_entry_of_view s a i) with
              | [ _; v ] -> Some v
              | _ -> None
            else None)
          (C.acceptor_ids cfg)
      in
      match applied with
      | [] -> true
      | v :: rest -> List.for_all (V.equal v) rest)
    (C.indexes cfg)

let invariants cfg =
  [
    ("LeaseInv", inv_lease cfg);
    ("AppliedAgreement", inv_applied_agreement cfg);
  ]
