(** A specification state: a finite assignment of {!Value.t} to named state
    variables.  States compare structurally, so they can be used directly as
    keys in the explorer's visited set. *)

type t

val empty : t
val of_list : (string * Value.t) list -> t
val to_list : t -> (string * Value.t) list

val get : t -> string -> Value.t
(** Raises [Invalid_argument] naming the variable when it is unbound — an
    unbound read is always a specification bug. *)

val get_opt : t -> string -> Value.t option
val set : t -> string -> Value.t -> t
val mem : t -> string -> bool
val vars : t -> string list

val restrict : t -> string list -> t
(** [restrict s vars] keeps only the bindings for [vars] (missing variables
    are ignored). *)

val merge : t -> t -> t
(** [merge base overlay]: bindings of [overlay] win. *)

val unchanged : t -> t -> string list -> bool
(** [unchanged s s' vars] is true iff every variable of [vars] has equal
    values in [s] and [s']. *)

val compare : t -> t -> int
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val pp_diff : Format.formatter -> t * t -> unit
(** Prints only the variables whose value changed between the two states. *)
