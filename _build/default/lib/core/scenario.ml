let starts_with ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let step spec state ~action ~label =
  let a = Spec.find_action spec action in
  match
    List.filter (fun (l, _) -> starts_with ~prefix:label l) (a.Action.enum state)
  with
  | [ (_, s') ] -> s'
  | [] ->
      let enabled = List.map fst (a.Action.enum state) in
      failwith
        (Fmt.str "Scenario.step: %s(%s) not enabled; enabled labels: %a" action
           label
           Fmt.(list ~sep:comma string)
           enabled)
  | matches ->
      failwith
        (Fmt.str "Scenario.step: %s(%s) ambiguous: %a" action label
           Fmt.(list ~sep:comma string)
           (List.map fst matches))

let run spec state picks =
  List.fold_left
    (fun s (action, label) -> step spec s ~action ~label)
    state picks

let run_trace spec state picks =
  let _, rev =
    List.fold_left
      (fun (s, acc) (action, label) ->
        let s' = step spec s ~action ~label in
        (s', (s, s') :: acc))
      (state, []) picks
  in
  List.rev rev
