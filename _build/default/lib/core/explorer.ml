module Smap = Map.Make (State)

type step = { action : string; label : string; state : State.t }

type stats = {
  states : int;
  transitions : int;
  depth : int;
  complete : bool;
}

type result =
  | Pass of stats
  | Violation of { invariant : string; trace : step list; stats : stats }
  | Deadlock of { trace : step list; stats : stats }

(* Predecessor map entry: how we first reached a state. *)
type crumb = Root | Via of State.t * string * string

let rebuild_trace crumbs last =
  let rec go acc s =
    match Smap.find s crumbs with
    | Root -> { action = "Init"; label = ""; state = s } :: acc
    | Via (prev, action, label) -> go ({ action; label; state = s } :: acc) prev
  in
  go [] last

let violated invariants s =
  List.find_opt (fun (_, p) -> not (p s)) invariants

let check ?(max_states = 1_000_000) ?(max_depth = max_int)
    ?(check_deadlock = false) ~invariants (spec : Spec.t) =
  let crumbs = ref Smap.empty in
  let queue = Queue.create () in
  let states = ref 0 in
  let transitions = ref 0 in
  let depth_reached = ref 0 in
  let complete = ref true in
  let stats () =
    {
      states = !states;
      transitions = !transitions;
      depth = !depth_reached;
      complete = !complete;
    }
  in
  let exception Found of result in
  let visit s crumb depth =
    if not (Smap.mem s !crumbs) then begin
      if !states >= max_states then complete := false
      else begin
        crumbs := Smap.add s crumb !crumbs;
        incr states;
        if depth > !depth_reached then depth_reached := depth;
        (match violated invariants s with
        | Some (name, _) ->
            raise
              (Found
                 (Violation
                    {
                      invariant = name;
                      trace = rebuild_trace !crumbs s;
                      stats = stats ();
                    }))
        | None -> ());
        Queue.add (s, depth) queue
      end
    end
  in
  try
    List.iter (fun s -> visit s Root 0) spec.init;
    while not (Queue.is_empty queue) do
      let s, depth = Queue.pop queue in
      if depth >= max_depth then complete := false
      else begin
        let succs = Spec.successors spec s in
        transitions := !transitions + List.length succs;
        if check_deadlock && succs = [] then
          raise
            (Found (Deadlock { trace = rebuild_trace !crumbs s; stats = stats () }));
        List.iter
          (fun (action, label, s') ->
            if not (Spec.well_formed_transition spec s') then
              invalid_arg
                (Fmt.str "Explorer: action %s of %s produced ill-formed state"
                   action spec.name);
            visit s' (Via (s, action, label)) (depth + 1))
          succs
      end
    done;
    Pass (stats ())
  with Found r -> r

let reachable ?(max_states = 1_000_000) ?(max_depth = max_int) (spec : Spec.t)
    =
  let acc = ref [] in
  let record s =
    acc := s :: !acc;
    true
  in
  let result =
    check ~max_states ~max_depth ~invariants:[ ("collect", record) ] spec
  in
  let stats =
    match result with
    | Pass s -> s
    | Violation { stats; _ } | Deadlock { stats; _ } -> stats
  in
  (List.rev !acc, stats)

let pp_step ppf { action; label; state } =
  if label = "" then Fmt.pf ppf "@[<v2>%s:@,%a@]" action State.pp state
  else Fmt.pf ppf "@[<v2>%s(%s):@,%a@]" action label State.pp state

let pp_trace ppf steps =
  Fmt.pf ppf "@[<v>%a@]" Fmt.(list ~sep:cut pp_step) steps

let pp_stats ppf { states; transitions; depth; complete } =
  Fmt.pf ppf "%d states, %d transitions, depth %d%s" states transitions depth
    (if complete then "" else " (bounded)")

let pp_result ppf = function
  | Pass stats -> Fmt.pf ppf "pass: %a" pp_stats stats
  | Violation { invariant; trace; stats } ->
      Fmt.pf ppf "@[<v>invariant %s violated (%a):@,%a@]" invariant pp_stats
        stats pp_trace trace
  | Deadlock { trace; stats } ->
      Fmt.pf ppf "@[<v>deadlock (%a):@,%a@]" pp_stats stats pp_trace trace
