(** Paxos Quorum Lease (Moraru et al.), the paper's Appendix B.3, expressed
    as a {b non-mutating optimization delta} over {!Spec_multipaxos}.

    New state: a global [timer] (the paper's simple-lease abstraction of
    the distributed lease protocol), a [leases] matrix ([leases[p][q]] is
    the deadline of the lease p granted to q), and [applyIndex] per
    replica.

    Added subactions: [GrantLease], [UpdateTimer], [Apply] (a replica may
    apply an entry only once it is {e committable}: chosen by a quorum all
    of whose granted lease holders have also voted), and [ReadAtLocal] (a
    no-op transition enabled exactly when a local read is legal).

    Modified subaction: [Propose] gains B.3's enabling clause
    [v.type = "read" \/ ~LeaseIsActive(a)].  Value types follow B.3's
    assumption: we designate odd value ids as writes and even ids as
    reads.

    [Port.apply (delta cfg) (Spec_multipaxos.spec cfg)] is the PQL spec;
    [Port.port] of the same delta onto {!Spec_raft_star} is the paper's
    Raft*-PQL (Appendix B.4), derived automatically. *)

type params = {
  lease_duration : int;
  max_timer : int;  (** timer ranges over [0 .. max_timer] *)
}

val default_params : params
(** duration 1, timer bound 1 — smallest instance where leases can be
    granted, become active, and expire. *)

val delta : ?params:params -> Proto_config.t -> Delta.t

val is_read : Value.t -> bool
(** B.3's value typing: even value ids are reads. *)

val lease_is_active : Proto_config.t -> State.t -> int -> bool
(** [lease_is_active cfg s p]: does [p] hold unexpired leases from a
    quorum?  Reads only the delta variables. *)

val can_commit_at :
  Proto_config.t -> State.t -> idx:int -> bal:int -> Value.t -> bool
(** B.3's [CanCommitAt]: chosen by a quorum whose granted lease holders
    have all voted.  Reads base votes plus the delta lease state, so it
    accepts either the optimized Paxos state or the optimized Raft* state
    mapped through {!Spec_raft_star.to_paxos}. *)

val inv_lease : Proto_config.t -> State.t -> bool
(** B.3's [LeaseInv]: every committable entry is chosen and known to
    (voted for by) every replica currently holding an active lease — the
    property that makes local reads linearizable. *)

val invariants : Proto_config.t -> (string * (State.t -> bool)) list
