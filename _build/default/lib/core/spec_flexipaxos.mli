(** Flexible Paxos (Howard, Malkhi, Spiegelman), one of the paper's
    Figure-6 non-mutating relatives of Paxos.

    FPaxos relaxes the majority rule: Phase-1 quorums ([q1]) and Phase-2
    quorums ([q2]) may differ in size, as long as every pair intersects
    ([q1 + q2 > n]).  The paper observes that {e Paxos refines Flexible
    Paxos but not the other way around}: a majority-quorum run is one of
    FPaxos's allowed runs, while an FPaxos run using, say, a singleton
    Phase-2 quorum is not a Paxos run.

    This module instantiates {!Spec_multipaxos} with size-[q1] Phase-1
    quorums and evaluates chosen-ness over size-[q2] quorums.  The tests
    machine-check:
    - safety (Agreement w.r.t. [q2]-chosen-ness) holds whenever
      [q1 + q2 > acceptors];
    - the explorer {e finds the agreement violation} when the intersection
      requirement is dropped (the FPaxos impossibility direction);
    - MultiPaxos refines FPaxos under the identity mapping, and the
      converse direction fails. *)

type t = {
  base : Proto_config.t;
  q1 : int;  (** Phase-1 quorum size *)
  q2 : int;  (** Phase-2 quorum size *)
}

val make : Proto_config.t -> q1:int -> q2:int -> t
val intersecting : t -> bool
(** [q1 + q2 > acceptors]. *)

val phase1_quorums : t -> int list list
val phase2_quorums : t -> int list list

val spec : t -> Spec.t

val chosen_at : t -> State.t -> idx:int -> bal:int -> Value.t -> bool
val inv_agreement : t -> State.t -> bool
(** At most one value is [q2]-chosen per index. *)

val invariants : t -> (string * (State.t -> bool)) list
