(** Vanilla Raft, as a state-machine spec in the same message-passing style
    as {!Spec_raft_star} — used for the paper's Section 3 negative result:
    Raft itself does {e not} refine MultiPaxos under the Figure-3 mapping.

    The two vanilla behaviours that break the mapping (the paper's "two
    reasons"):
    - an acceptor whose log conflicts with the leader's {b erases} the
      conflicting suffix — mapped to Paxos, an accepted value disappears,
      which no Paxos action allows;
    - a leader replicates previously-uncommitted entries {b without
      rewriting their term}, so the per-entry "ballot" (term) of an
      accepted value is not refreshed the way Paxos's Accept refreshes it,
      and elected leaders keep their own log instead of adopting quorum-safe
      values.

    So that the message sets stay mappable, vote replies still carry the
    replier's log (as in Raft star), but [BecomeLeader] {b ignores} it — the
    protocol difference under test is the log handling, not the message
    format.  A proposal-uniqueness guard (one value per (term, index))
    stands in for Raft's one-leader-per-term property, which this
    unaddressed-votes formulation cannot express; without it even
    LogMatching would fail for the wrong reason. *)

val spec : Proto_config.t -> Spec.t

val to_paxos : Proto_config.t -> State.t -> State.t
(** The natural analogue of the Figure-3 mapping, with [entry.term] playing
    the accepted-ballot role (the only candidate vanilla Raft offers). *)

val mid : Proto_config.t
(** 3 acceptors, 2 values, ballots 0–2, two log slots: the smallest
    instance on which the erase behaviour is reachable (it needs two
    different elected terms proposing different values). *)

val inv_log_matching : Proto_config.t -> State.t -> bool

val invariants : Proto_config.t -> (string * (State.t -> bool)) list
