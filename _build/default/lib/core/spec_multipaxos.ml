module V = Value
module C = Proto_config

let entry bal v = V.tuple [ V.int bal; v ]
let empty_entry = entry (-1) V.nil

(* ---- typed accessors over the raw state ---- *)

let acc_get s var a = V.get (State.get s var) (V.int a)
let acc_put s var a v = State.set s var (V.put (State.get s var) (V.int a) v)
let hb s a = V.to_int (acc_get s "highestBallot" a)
let is_leader s a = V.to_bool (acc_get s "isLeader" a)
let log_tail s a = V.to_int (acc_get s "logTail" a)
let log_of s a = acc_get s "logs" a
let log_at s a i = V.get (log_of s a) (V.int i)
let votes_at s a i = V.get (acc_get s "votes" a) (V.int i)

let set_log_at s a i e =
  acc_put s "logs" a (V.put (log_of s a) (V.int i) e)

let add_vote s a i bv =
  let vi = V.set_add bv (votes_at s a i) in
  acc_put s "votes" a (V.put (acc_get s "votes" a) (V.int i) vi)

let bump_log_tail s a i =
  if i > log_tail s a then acc_put s "logTail" a (V.int i) else s

let voted_for s ~acc ~idx ~bal v =
  V.set_mem (V.tuple [ V.int bal; v ]) (votes_at s acc idx)

let chosen_at_q quorums s ~idx ~bal v =
  List.exists
    (fun q -> List.for_all (fun a -> voted_for s ~acc:a ~idx ~bal v) q)
    quorums

let chosen_at cfg s ~idx ~bal v = chosen_at_q (C.quorums cfg) s ~idx ~bal v

let chosen_values cfg s ~idx =
  List.filter
    (fun v -> List.exists (fun b -> chosen_at cfg s ~idx ~bal:b v) (C.ballots cfg))
    (List.map V.int (C.value_ids cfg))

(* ---- the safe-entry computation shared with the Raft-side specs ---- *)

(* TLA's GetHighestBallotEntry: among the (ballot, value) entries the 1b
   messages carry at index [i], the one with the highest ballot.  Ties can
   only disagree when OneValuePerBallot is broken, so any max works. *)
let highest_ballot_entry logs_in_1b i =
  List.fold_left
    (fun best log ->
      let e = V.get log (V.int i) in
      let bal e = V.to_int (List.nth (V.to_tuple e) 0) in
      if bal e > bal best then e else best)
    empty_entry logs_in_1b

(* ---- spec construction ---- *)

let msg1a acc bal = V.record [ ("acc", V.int acc); ("bal", V.int bal) ]

let msg1b acc bal log tail =
  V.record
    [ ("acc", V.int acc); ("bal", V.int bal); ("log", log); ("logTail", tail) ]

let vars =
  [
    "highestBallot";
    "isLeader";
    "logTail";
    "votes";
    "proposedValues";
    "logs";
    "msgs1a";
    "msgs1b";
  ]

let init cfg =
  let accs = C.acceptor_ids cfg in
  let per_acceptor v = V.fn (List.map (fun a -> (V.int a, v)) accs) in
  let per_index v = V.fn (List.map (fun i -> (V.int i, v)) (C.indexes cfg)) in
  State.of_list
    [
      ("highestBallot", per_acceptor (V.int 0));
      ("isLeader", per_acceptor V.ff);
      ("logTail", per_acceptor (V.int (-1)));
      ("votes", per_acceptor (per_index (V.set [])));
      ("proposedValues", V.set []);
      ("logs", per_acceptor (per_index empty_entry));
      ("msgs1a", V.set []);
      ("msgs1b", V.set []);
    ]

let increase_highest_ballot cfg =
  Action.make ~descr:"spontaneously adopt a higher ballot"
    "IncreaseHighestBallot" (fun s ->
      List.concat_map
        (fun a ->
          List.filter_map
            (fun b ->
              if b > hb s a then
                let s' = acc_put s "highestBallot" a (V.int b) in
                let s' = acc_put s' "isLeader" a V.ff in
                Some (Fmt.str "a=%d,b=%d" a b, s')
              else None)
            (C.ballots cfg))
        (C.acceptor_ids cfg))

let phase1a cfg =
  Action.make ~descr:"broadcast prepare at the current ballot" "Phase1a"
    (fun s ->
      List.filter_map
        (fun a ->
          if is_leader s a then None
          else
            let m = msg1a a (hb s a) in
            let msgs = State.get s "msgs1a" in
            (* Re-sending is a legal (stuttering) step, as in the TLA. *)
            Some (Fmt.str "a=%d" a, State.set s "msgs1a" (V.set_add m msgs)))
        (C.acceptor_ids cfg))

let phase1b cfg =
  Action.make ~descr:"answer a prepare carrying a higher ballot" "Phase1b"
    (fun s ->
      List.concat_map
        (fun a ->
          List.filter_map
            (fun m ->
              let bal = V.to_int (V.field m "bal") in
              if bal > hb s a then
                let s' = acc_put s "highestBallot" a (V.int bal) in
                let s' = acc_put s' "isLeader" a V.ff in
                let reply = msg1b a bal (log_of s a) (V.int (log_tail s a)) in
                let s' =
                  State.set s' "msgs1b"
                    (V.set_add reply (State.get s' "msgs1b"))
                in
                Some (Fmt.str "a=%d,b=%d" a bal, s')
              else None)
            (V.to_set (State.get s "msgs1a")))
        (C.acceptor_ids cfg))

(* Collect, for quorum [q], one 1b message per member at ballot [bal];
   None when some member has not answered at that ballot. *)
let quorum_replies s q bal =
  let msgs = V.to_set (State.get s "msgs1b") in
  let find a =
    List.find_opt
      (fun m ->
        V.to_int (V.field m "acc") = a && V.to_int (V.field m "bal") = bal)
      msgs
  in
  let rec collect = function
    | [] -> Some []
    | a :: rest -> (
        match find a with
        | Some m -> Option.map (fun ms -> m :: ms) (collect rest)
        | None -> None)
  in
  collect q

let become_leader ?phase1_quorums cfg =
  let quorums_containing a =
    match phase1_quorums with
    | Some qs -> List.filter (List.mem a) qs
    | None -> C.quorums_containing cfg a
  in
  Action.make
    ~descr:"adopt safe entries from a quorum of 1b replies and lead"
    "BecomeLeader" (fun s ->
      List.concat_map
        (fun a ->
          if is_leader s a then []
          else
            let bal = hb s a in
            List.filter_map
              (fun q ->
                match quorum_replies s q bal with
                | None -> None
                | Some msgs ->
                    let logs_in_1b = List.map (fun m -> V.field m "log") msgs in
                    let tails =
                      List.map (fun m -> V.to_int (V.field m "logTail")) msgs
                    in
                    let i2 = List.fold_left max (-1) tails in
                    let s' =
                      List.fold_left
                        (fun s' i ->
                          if i <= i2 then
                            set_log_at s' a i (highest_ballot_entry logs_in_1b i)
                          else s')
                        s (C.indexes cfg)
                    in
                    let s' = bump_log_tail s' a i2 in
                    let s' = acc_put s' "isLeader" a V.tt in
                    Some
                      ( Fmt.str "a=%d,q=%a" a
                          Fmt.(list ~sep:(any "") int)
                          q,
                        s' ))
              (quorums_containing a))
        (C.acceptor_ids cfg))

(* The paper's B.1 Propose lacks any uniqueness guard, which lets a leader
   propose two different values for the same (index, ballot) and breaks
   OneValuePerBallot (our explorer finds the counterexample with >= 2
   values).  Figure 1's pseudocode intends one value per instance per
   ballot, so we add the guard; see DESIGN.md "Deviations". *)
let no_conflicting_proposal s i b v =
  V.set_for_all
    (fun pv ->
      match V.to_tuple pv with
      | [ i'; b'; v' ] ->
          not (V.to_int i' = i && V.to_int b' = b) || V.equal v' v
      | _ -> true)
    (State.get s "proposedValues")

let propose cfg =
  Action.make ~descr:"leader proposes a value for an instance" "Propose"
    (fun s ->
      List.concat_map
        (fun a ->
          if not (is_leader s a) then []
          else
            List.concat_map
              (fun i ->
                List.filter_map
                  (fun v ->
                    let v = V.int v in
                    let cur = List.nth (V.to_tuple (log_at s a i)) 1 in
                    if
                      (V.equal cur v || V.equal cur V.nil)
                      && no_conflicting_proposal s i (hb s a) v
                    then
                      let pv = V.tuple [ V.int i; V.int (hb s a); v ] in
                      let pvs = State.get s "proposedValues" in
                      (* Re-proposing is a legal (stuttering) step; deltas
                         may still attach state changes to it. *)
                      Some
                        ( Fmt.str "a=%d,i=%d,v=%a" a i V.pp v,
                          State.set s "proposedValues" (V.set_add pv pvs) )
                    else None)
                  (C.value_ids cfg))
              (C.indexes cfg))
        (C.acceptor_ids cfg))

let accept cfg =
  Action.make ~descr:"acceptor votes for a proposed value" "Accept" (fun s ->
      List.concat_map
        (fun a ->
          List.filter_map
            (fun pv ->
              match V.to_tuple pv with
              | [ i; b; v ] ->
                  let i = V.to_int i and b = V.to_int b in
                  if b >= hb s a then
                    let deposed = b > hb s a in
                    let s' = acc_put s "highestBallot" a (V.int b) in
                    let s' = add_vote s' a i (V.tuple [ V.int b; v ]) in
                    let s' = set_log_at s' a i (entry b v) in
                    let s' = bump_log_tail s' a i in
                    let s' =
                      if deposed then acc_put s' "isLeader" a V.ff else s'
                    in
                    Some (Fmt.str "a=%d,i=%d,b=%d,v=%a" a i b V.pp v, s')
                  else None
              | _ -> None)
            (V.to_set (State.get s "proposedValues")))
        (C.acceptor_ids cfg))

let spec ?name ?phase1_quorums cfg =
  Spec.make
    ~name:(Option.value name ~default:"MultiPaxos")
    ~vars ~init:[ init cfg ]
    [
      increase_highest_ballot cfg;
      phase1a cfg;
      phase1b cfg;
      become_leader ?phase1_quorums cfg;
      propose cfg;
      accept cfg;
    ]

(* ---- invariants ---- *)

let inv_one_value_per_ballot cfg s =
  List.for_all
    (fun i ->
      List.for_all
        (fun b ->
          let voted =
            List.concat_map
              (fun a ->
                List.filter_map
                  (fun bv ->
                    match V.to_tuple bv with
                    | [ b'; v ] when V.to_int b' = b -> Some v
                    | _ -> None)
                  (V.to_set (votes_at s a i)))
              (C.acceptor_ids cfg)
          in
          match voted with
          | [] -> true
          | v :: rest -> List.for_all (V.equal v) rest)
        (C.ballots cfg))
    (C.indexes cfg)

let inv_agreement cfg s =
  List.for_all
    (fun i -> List.length (chosen_values cfg s ~idx:i) <= 1)
    (C.indexes cfg)

(* SafeAt(i, b, v): for every smaller ballot c, no other value can be or
   become chosen at c: some quorum where each member either voted for v at
   c, or has moved past c without voting at c. *)
let inv_logs_safe cfg s =
  let did_not_vote_at a i c =
    V.set_for_all
      (fun bv -> V.to_int (List.nth (V.to_tuple bv) 0) <> c)
      (votes_at s a i)
  in
  let cannot_vote_at a i c = hb s a > c && did_not_vote_at a i c in
  let none_other_choosable i c v =
    List.exists
      (fun q ->
        List.for_all
          (fun a -> voted_for s ~acc:a ~idx:i ~bal:c v || cannot_vote_at a i c)
          q)
      (C.quorums cfg)
  in
  let safe_at i b v =
    List.for_all
      (fun c -> if c < b then none_other_choosable i c v else true)
      (C.ballots cfg)
  in
  List.for_all
    (fun a ->
      List.for_all
        (fun i ->
          match V.to_tuple (log_at s a i) with
          | [ b; v ] when V.to_int b >= 0 -> safe_at i (V.to_int b) v
          | _ -> true)
        (C.indexes cfg))
    (C.acceptor_ids cfg)

let invariants cfg =
  [
    ("OneValuePerBallot", inv_one_value_per_ballot cfg);
    ("Agreement", inv_agreement cfg);
    ("LogsSafe", inv_logs_safe cfg);
  ]
