type t = {
  name : string;
  descr : string;
  enum : State.t -> (string * State.t) list;
}

let make ?(descr = "") name enum = { name; descr; enum }

let simple ?descr name step =
  make ?descr name (fun s ->
      match step s with Some s' -> [ ("", s') ] | None -> [])

let rename name a = { a with name }

let guard p a =
  {
    a with
    enum =
      (fun s -> List.filter (fun (label, s') -> p label s s') (a.enum s));
  }

let pp ppf a =
  if a.descr = "" then Fmt.string ppf a.name
  else Fmt.pf ppf "%s  (* %s *)" a.name a.descr
