module V = Value

let keys = 3
let values = 2

let key_ids = List.init keys Fun.id
let value_ids = List.init values (fun v -> v + 1)

(* ---- Figure 4a: the key-value store A ---- *)

let table_get s k = V.get (State.get s "table") (V.int k)
let table_put s k v = State.set s "table" (V.put (State.get s "table") (V.int k) v)

let kv_store =
  let put =
    Action.make ~descr:"table'[k] = {v}" "Put" (fun s ->
        List.concat_map
          (fun k ->
            List.map
              (fun v ->
                ( Fmt.str "k=%d,v=%d" k v,
                  table_put s k (V.set [ V.int v ]) ))
              value_ids)
          key_ids)
  in
  let get =
    Action.make ~descr:"output' = table[k]" "Get" (fun s ->
        List.map
          (fun k -> (Fmt.str "k=%d" k, State.set s "output" (table_get s k)))
          key_ids)
  in
  Spec.make ~name:"KVStore" ~vars:[ "table"; "output" ]
    ~init:
      [
        State.of_list
          [
            ("table", V.fn (List.map (fun k -> (V.int k, V.set [])) key_ids));
            ("output", V.set []);
          ];
      ]
    [ put; get ]

(* ---- Figure 4b: the log-structured protocol B ---- *)

let log_get s i = V.get (State.get s "logs") (V.int i)
let log_put s i v = State.set s "logs" (V.put (State.get s "logs") (V.int i) v)

let log_store =
  let write =
    Action.make ~descr:"contiguous log append" "Write" (fun s ->
        List.concat_map
          (fun i ->
            let contiguous =
              i = 0 || not (V.equal (log_get s (i - 1)) (V.set []))
            in
            if not contiguous then []
            else
              List.map
                (fun v ->
                  ( Fmt.str "i=%d,v=%d" i v,
                    log_put s i (V.set [ V.int v ]) ))
                value_ids)
          key_ids)
  in
  let read =
    Action.make ~descr:"output' = logs[i]" "Read" (fun s ->
        List.map
          (fun i -> (Fmt.str "i=%d" i, State.set s "output" (log_get s i)))
          key_ids)
  in
  Spec.make ~name:"LogStore" ~vars:[ "logs"; "output" ]
    ~init:
      [
        State.of_list
          [
            ("logs", V.fn (List.map (fun i -> (V.int i, V.set [])) key_ids));
            ("output", V.set []);
          ];
      ]
    [ write; read ]

(* ---- the refinement mapping: log position i = table key i ---- *)

let log_to_kv s =
  State.of_list
    [ ("table", State.get s "logs"); ("output", State.get s "output") ]

(* Note: merely permuting the keys would NOT be broken — the KV store is
   symmetric under key permutation and the checker accepts it.  This map
   instead ties [output] to [logs[0]], so a Write to position 0 changes
   two mapped variables at once, which no single KV subaction can do. *)
let broken_map s =
  State.of_list
    [ ("table", State.get s "logs"); ("output", log_get s 0) ]

(* ---- Figure 4c: the size-counter optimization Δ ---- *)

let size_delta =
  Delta.make ~name:"SizeCounter" ~delta_vars:[ "size" ]
    ~delta_init:(State.of_list [ ("size", V.int 0) ])
    [
      Delta.modified ~base:"Put" ~reads:[ "table" ]
        ~guard:(fun ~a_view ~d_state:_ ~label ->
          (* Figure 4c: only first writes are counted (table[k] = {}). *)
          let k = Label.get_int label "k" in
          V.equal (table_get a_view k) (V.set []))
        (fun ~a_view:_ ~a_view':_ ~d_state ~label:_ ->
          State.set d_state "size"
            (V.int (V.to_int (State.get d_state "size") + 1)));
    ]

let implies = function
  | "Write" -> [ "Put" ]
  | "Read" -> [ "Get" ]
  | _ -> []

let label_map ~b_action:_ ~a_action:_ label =
  (* f_args: B's log index i is A's key k. *)
  match Label.get_opt label "i" with
  | Some i -> (
      "k=" ^ i
      ^ match Label.get_opt label "v" with Some v -> ",v=" ^ v | None -> "")
  | None -> label
