type t = {
  name : string;
  vars : string list;
  init : State.t list;
  actions : Action.t list;
}

let make ~name ~vars ~init actions =
  let vars = List.sort_uniq String.compare vars in
  List.iter
    (fun s ->
      let bound = State.vars s in
      if bound <> vars then
        invalid_arg
          (Fmt.str "Spec.make %s: init state binds [%a], declared [%a]" name
             Fmt.(list ~sep:comma string)
             bound
             Fmt.(list ~sep:comma string)
             vars))
    init;
  { name; vars; init; actions }

let find_action spec name =
  match List.find_opt (fun (a : Action.t) -> a.name = name) spec.actions with
  | Some a -> a
  | None -> raise Not_found

let successors spec s =
  List.concat_map
    (fun (a : Action.t) ->
      List.map (fun (label, s') -> (a.name, label, s')) (a.enum s))
    spec.actions

let well_formed_transition spec s = State.vars s = spec.vars

let pp ppf spec =
  Fmt.pf ppf "@[<v>spec %s@,vars: %a@,init states: %d@,actions:@,  %a@]"
    spec.name
    Fmt.(list ~sep:comma string)
    spec.vars (List.length spec.init)
    Fmt.(list ~sep:(any "@,  ") Action.pp)
    spec.actions
