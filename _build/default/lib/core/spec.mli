(** An executable TLA-style specification: a set of state variables, a set
    of initial states, and a next-state relation given as a disjunction of
    subactions. *)

type t = {
  name : string;
  vars : string list;  (** the declared state variables *)
  init : State.t list;
  actions : Action.t list;
}

val make :
  name:string -> vars:string list -> init:State.t list -> Action.t list -> t
(** Checks that every initial state binds exactly the declared variables. *)

val find_action : t -> string -> Action.t
(** Raises [Not_found]. *)

val successors : t -> State.t -> (string * string * State.t) list
(** All [(action, label, state')] transitions enabled in a state. *)

val well_formed_transition : t -> State.t -> bool
(** True iff the state binds exactly the declared variables; used as a
    sanity check on action outputs during exploration. *)

val pp : Format.formatter -> t -> unit
