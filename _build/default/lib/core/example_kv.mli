(** The paper's Figure-4 running example, used throughout Section 4:

    - {b A}: a key-value store with [Put(k, v)] and [Get(k)];
    - {b B}: a protocol that stores values in an append-only log (a [Write]
      must extend the log contiguously), refining A under the mapping that
      sends log position [i] to hash-table key [i];
    - {b AΔ}: the non-mutating optimization that adds a [size] counter to
      Put (Figure 4c);
    - {b BΔ}: derived automatically by {!Port.port} — Figure 4d.

    Domains are finite ([keys], [values]) so every claim is checked
    exhaustively by the explorer. *)

val keys : int
val values : int

val kv_store : Spec.t
(** Figure 4a: protocol A. *)

val log_store : Spec.t
(** Figure 4b: protocol B. *)

val log_to_kv : State.t -> State.t
(** The refinement mapping [f] from B's state to A's. *)

val broken_map : State.t -> State.t
(** A deliberately wrong mapping (ties [output] to the first log slot),
    used to check that the refinement checker rejects bad mappings. *)

val size_delta : Delta.t
(** Figure 4c's optimization Δ: a [size] counter incremented by [Put],
    guarded so only first writes count (Figure 4c requires
    [table[k] = {}]). *)

val implies : string -> string list
(** The action correspondence: [Write ⇒ Put], [Read ⇒ Get]. *)

val label_map : b_action:string -> a_action:string -> string -> string
(** The parameter mapping [f_args]: B's [i] parameter is A's [k]. *)
