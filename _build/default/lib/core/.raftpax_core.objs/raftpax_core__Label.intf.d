lib/core/label.mli:
