lib/core/spec_flexipaxos.ml: Fmt List Proto_config Spec_multipaxos Value
