lib/core/scenario.ml: Action Fmt List Spec String
