lib/core/opt_mencius.mli: Delta Proto_config State Value
