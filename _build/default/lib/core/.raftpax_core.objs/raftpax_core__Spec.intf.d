lib/core/spec.mli: Action Format State
