lib/core/delta.ml: Fmt List State String
