lib/core/spec_raft_star.mli: Proto_config Spec State
