lib/core/opt_pql.mli: Delta Proto_config State Value
