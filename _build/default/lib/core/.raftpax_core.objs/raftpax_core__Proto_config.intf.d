lib/core/proto_config.mli:
