lib/core/opt_checkpoint.ml: Delta Fmt List Proto_config Spec_multipaxos State Value
