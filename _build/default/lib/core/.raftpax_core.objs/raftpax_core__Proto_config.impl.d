lib/core/proto_config.ml: List
