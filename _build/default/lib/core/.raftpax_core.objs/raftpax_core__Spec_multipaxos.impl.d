lib/core/spec_multipaxos.ml: Action Fmt List Option Proto_config Spec State Value
