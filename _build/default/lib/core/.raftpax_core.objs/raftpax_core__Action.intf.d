lib/core/action.mli: Format State
