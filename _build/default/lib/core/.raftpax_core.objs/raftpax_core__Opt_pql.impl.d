lib/core/opt_pql.ml: Delta Fmt Label List Proto_config Spec_multipaxos State Value
