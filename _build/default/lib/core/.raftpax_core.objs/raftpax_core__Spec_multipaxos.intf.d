lib/core/spec_multipaxos.mli: Proto_config Spec State Value
