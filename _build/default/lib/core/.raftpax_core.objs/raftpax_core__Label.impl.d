lib/core/label.ml: List String
