lib/core/explorer.mli: Format Spec State
