lib/core/action.ml: Fmt List State
