lib/core/refinement.ml: Explorer Fmt Hashtbl List Map Option Queue Set Spec State String
