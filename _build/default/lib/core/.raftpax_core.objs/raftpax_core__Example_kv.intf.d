lib/core/example_kv.mli: Delta Spec State
