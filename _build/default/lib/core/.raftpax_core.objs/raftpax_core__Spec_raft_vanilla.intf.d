lib/core/spec_raft_vanilla.mli: Proto_config Spec State
