lib/core/value.ml: Fmt List Stdlib String
