lib/core/opt_checkpoint.mli: Delta Proto_config State
