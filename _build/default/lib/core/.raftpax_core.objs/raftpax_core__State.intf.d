lib/core/state.mli: Format Value
