lib/core/example_kv.ml: Action Delta Fmt Fun Label List Spec State Value
