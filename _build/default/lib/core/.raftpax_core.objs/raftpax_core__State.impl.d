lib/core/state.ml: Fmt List Map String Value
