lib/core/spec_raft_star.ml: Action Fmt Fun List Option Proto_config Scanf Spec Spec_multipaxos State Value
