lib/core/refinement.mli: Explorer Format Spec State
