lib/core/spec_flexipaxos.mli: Proto_config Spec State Value
