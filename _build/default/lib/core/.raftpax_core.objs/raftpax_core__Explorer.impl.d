lib/core/explorer.ml: Fmt List Map Queue Spec State
