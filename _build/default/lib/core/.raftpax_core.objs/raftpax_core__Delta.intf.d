lib/core/delta.mli: Format State
