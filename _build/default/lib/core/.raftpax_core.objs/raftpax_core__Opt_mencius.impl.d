lib/core/opt_mencius.ml: Delta Label List Proto_config Spec_multipaxos State Value
