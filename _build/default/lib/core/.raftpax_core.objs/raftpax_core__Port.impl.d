lib/core/port.ml: Action Delta Fmt List Option Refinement Spec State
