lib/core/port.mli: Delta Refinement Spec State
