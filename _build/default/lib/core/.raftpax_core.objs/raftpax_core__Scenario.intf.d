lib/core/scenario.mli: Spec State
