lib/core/spec_raft_vanilla.ml: Action Fmt List Option Proto_config Spec Spec_multipaxos State Value
