lib/core/spec.ml: Action Fmt List State String
