(** Executable transcription of the paper's Appendix B.2 Raft* TLA+
    specification.

    Raft* is Raft plus the paper's two changes (Section 3): a per-entry
    ballot field rewritten on every append, and vote replies that carry the
    replier's extra entries so the new leader can adopt safe values; an
    acceptor rejects appends that would shorten its log.

    State variables:
    - [highestBallot], [isLeader], [logTail], [votes], [proposedValues]:
      as in {!Spec_multipaxos} (same names — the refinement mapping is the
      identity on them);
    - [lastIndex]  : acceptor -> own Raft log end (or -1);
    - [raftlogs]   : acceptor -> index -> (term, value) — the Raft log;
    - [logBallot]  : acceptor -> index -> ballot — Raft*'s ballot field;
    - [proposedEntries] : set of append messages;
    - [r1amsgs], [r1bmsgs] : RequestVote / RequestVoteOK messages.

    The Paxos view of a log entry is [(logBallot[a][i], raftlogs[a][i].val)]
    (the paper's derived [logs]); {!to_paxos} is the Figure-3 refinement
    mapping.

    Deviations from the paper's TLA+ text, each needed to make the spec
    check (documented in DESIGN.md):
    - [Phase1b]'s up-to-date test uses [lastIndex[a] /= -1] where the paper
      prints [= -1] twice (an obvious typo);
    - [ProposeEntries] guards proposal uniqueness per (index, ballot), like
      our fixed MultiPaxos [Propose];
    - [ProposeEntries] also records the {e new} value in [proposedValues]
      (the paper's comprehension only picks values already in [raftlogs]);
    - [BecomeLeader] stores the safe entry's ballot as the adopted entry's
      term (the paper's TLA stores [-1], which breaks prev-term matching
      and log matching; the pseudocode stores [currentTerm], which breaks
      the single-step mapping to Paxos [BecomeLeader]);
    - [AcceptEntries] rewrites ballots and adds votes for the replicated
      range [prev+1 .. lIndex] (following the Figure-2 pseudocode; the TLA
      rewrites ballots from 0 but adds no matching votes, which breaks the
      mapped Accept steps). *)

val spec : Proto_config.t -> Spec.t

val to_paxos : Proto_config.t -> State.t -> State.t
(** The refinement mapping of Figure 3 / Appendix C: identity on the shared
    variables, derived [(ballot, value)] view of the logs, projection of
    the RequestVote messages onto prepare messages, and dropping
    [lastIndex] and [proposedEntries]. *)

(** {1 Invariants} *)

val inv_log_matching : Proto_config.t -> State.t -> bool
(** Raft's Log Matching property on [raftlogs]: same (index, term) implies
    identical prefixes. *)

val inv_leader_completeness : Proto_config.t -> State.t -> bool
(** Entries replicated as identical [(term, value)] on a quorum survive
    into the log of any leader electable from this state. *)

val invariants : Proto_config.t -> (string * (State.t -> bool)) list
(** The Raft*-specific invariants plus the MultiPaxos invariants evaluated
    on the mapped state. *)
