module V = Value
module C = Proto_config

type t = { base : Proto_config.t; q1 : int; q2 : int }

let make base ~q1 ~q2 =
  if q1 <= 0 || q2 <= 0 || q1 > base.C.acceptors || q2 > base.C.acceptors then
    invalid_arg "Spec_flexipaxos.make: quorum sizes out of range";
  { base; q1; q2 }

let intersecting t = t.q1 + t.q2 > t.base.C.acceptors

let rec choose k ids =
  if k = 0 then [ [] ]
  else
    match ids with
    | [] -> []
    | x :: rest ->
        List.map (fun sub -> x :: sub) (choose (k - 1) rest) @ choose k rest

let phase1_quorums t = choose t.q1 (C.acceptor_ids t.base)
let phase2_quorums t = choose t.q2 (C.acceptor_ids t.base)

let spec t =
  Spec_multipaxos.spec
    ~name:(Fmt.str "FPaxos(q1=%d,q2=%d)" t.q1 t.q2)
    ~phase1_quorums:(phase1_quorums t) t.base

let chosen_at t s ~idx ~bal v =
  Spec_multipaxos.chosen_at_q (phase2_quorums t) s ~idx ~bal v

let inv_agreement t s =
  List.for_all
    (fun i ->
      let chosen =
        List.filter
          (fun v ->
            List.exists
              (fun b -> chosen_at t s ~idx:i ~bal:b (V.int v))
              (C.ballots t.base))
          (C.value_ids t.base)
      in
      List.length chosen <= 1)
    (C.indexes t.base)

let invariants t = [ ("FlexAgreement", inv_agreement t) ]
