(** Bounded breadth-first model checker, in the style of TLC.

    Explores the reachable state space of a {!Spec.t} from its initial
    states up to configurable bounds, checking a set of named invariants on
    every reached state.  On a violation it reconstructs the shortest
    counterexample trace. *)

type step = { action : string; label : string; state : State.t }

type stats = {
  states : int;  (** distinct states reached *)
  transitions : int;  (** transitions examined *)
  depth : int;  (** BFS depth reached *)
  complete : bool;  (** false when a bound cut exploration short *)
}

type result =
  | Pass of stats
  | Violation of {
      invariant : string;
      trace : step list;  (** initial state first; its action is ["Init"] *)
      stats : stats;
    }
  | Deadlock of { trace : step list; stats : stats }

val check :
  ?max_states:int ->
  ?max_depth:int ->
  ?check_deadlock:bool ->
  invariants:(string * (State.t -> bool)) list ->
  Spec.t ->
  result
(** Defaults: [max_states = 1_000_000], [max_depth = max_int],
    [check_deadlock = false].  Deadlock means a reachable state with no
    enabled action, which most of the paper's specs permit legitimately
    (e.g. all messages consumed), hence the default. *)

val reachable :
  ?max_states:int -> ?max_depth:int -> Spec.t -> State.t list * stats
(** All reachable states, for spot-checking properties that are not
    per-state invariants. *)

val pp_trace : Format.formatter -> step list -> unit
val pp_result : Format.formatter -> result -> unit
