(** Non-mutating optimizations, represented as the paper's Section 4.2
    difference between [A^Δ] and [A].

    A delta owns a set of new state variables ([delta_vars]) and consists of
    items that are either:

    - {b added} subactions — brand-new subactions that may read the base
      protocol's variables but only write the delta variables; or
    - {b modified} subactions — extra conjunctive clauses attached to an
      existing base subaction; the extra clauses may read base variables and
      parameters but only write delta variables.

    Base subactions not mentioned by any item are {b unchanged}.

    The representation makes the non-mutating restriction hold {e by
    construction}: an added subaction's [enum] and a clause's [update]
    return a state binding only delta variables, so the base variables
    cannot be written.  {!Port.check_non_mutating} additionally verifies
    this semantically on explored states (guarding against a delta that
    smuggles base variables into its output). *)

type clause = {
  reads : string list;
      (** the base-protocol variables the clause reads, for documentation
          and for the porting report *)
  extra_guard : a_view:State.t -> d_state:State.t -> label:string -> bool;
      (** extra enabling condition; [a_view] is the base-protocol state (for
          a ported clause: the refinement image [f(Var_B)]), [label] is the
          (parameter-mapped) action label *)
  extra_update :
    a_view:State.t ->
    a_view':State.t ->
    d_state:State.t ->
    label:string ->
    State.t;
      (** next value of the delta variables; must bind exactly the delta
          variables *)
}

type item =
  | Added of {
      name : string;
      descr : string;
      enum : a_view:State.t -> d_state:State.t -> (string * State.t) list;
          (** successors of the delta variables only *)
    }
  | Modified of { base : string; clause : clause }

type t = {
  name : string;
  delta_vars : string list;
  delta_init : State.t;
  items : item list;
}

val make :
  name:string -> delta_vars:string list -> delta_init:State.t -> item list -> t
(** Checks that [delta_init] binds exactly [delta_vars]. *)

val added : ?descr:string ->
  string ->
  (a_view:State.t -> d_state:State.t -> (string * State.t) list) ->
  item

val modified :
  base:string ->
  ?reads:string list ->
  ?guard:(a_view:State.t -> d_state:State.t -> label:string -> bool) ->
  (a_view:State.t ->
  a_view':State.t ->
  d_state:State.t ->
  label:string ->
  State.t) ->
  item
(** [guard] defaults to always-enabled. *)

val modified_bases : t -> string list
val pp : Format.formatter -> t -> unit
