(** Latency and throughput accounting for experiments.

    Latency samples are kept raw (µs) and summarised by percentile;
    throughput is computed from the count of samples inside the
    measurement window, which lets the harness trim warm-up and cool-down
    as the paper does (50 s runs, 10 s trims). *)

type t

val create : unit -> t

val record : t -> latency_us:int -> at_us:int -> unit
val count : t -> int

val window : t -> from_us:int -> until_us:int -> t
(** Samples whose completion time falls in the window. *)

val throughput_ops : t -> from_us:int -> until_us:int -> float
(** Completed operations per second inside the window. *)

val percentile_us : t -> float -> int
(** [percentile_us t 0.90]; 0 when empty. *)

val mean_us : t -> float
val min_us : t -> int
val max_us : t -> int

val merge : t list -> t

val pp_summary : Format.formatter -> t -> unit
(** "p50/p90/p99 in ms" one-liner. *)
