(** Discrete-event simulation core: a virtual clock and a time-ordered
    event heap.  Time is in integer microseconds.

    Events scheduled for the same instant fire in scheduling order
    (FIFO), which keeps runs deterministic. *)

type t

val create : ?seed:int64 -> unit -> t
val now : t -> int
(** Current virtual time, microseconds. *)

val rng : t -> Rng.t

val schedule : t -> delay:int -> (unit -> unit) -> unit
(** Enqueue a callback [delay] µs from now ([delay >= 0]). *)

type timer
val schedule_cancellable : t -> delay:int -> (unit -> unit) -> timer
val cancel : timer -> unit
(** Cancelling an already-fired timer is a no-op. *)

val run : t -> until:int -> unit
(** Process events in time order until the clock would pass [until] (µs)
    or no events remain. *)

val run_all : t -> unit
(** Drain every event (use only when the event set is known finite). *)

val pending : t -> int
(** Number of queued events (including cancelled-but-unpopped timers). *)

(** {1 Milliseconds helpers} — the protocol code thinks in ms. *)

val ms : int -> int
val us_to_ms : int -> float
