(** Deterministic pseudo-random numbers (SplitMix64).

    Every simulation source of randomness goes through an explicit [Rng.t]
    seeded by the experiment, so runs replay bit-for-bit — the property the
    test suite relies on. *)

type t

val create : int64 -> t
val split : t -> t
(** A statistically independent stream; used to give each node its own
    stream so adding randomness in one node does not perturb another. *)

val int : t -> int -> int
(** [int t n] is uniform in [0, n). Requires [n > 0]. *)

val float : t -> float -> float
(** [float t x] is uniform in [0, x). *)

val bool : t -> float -> bool
(** [bool t p] is true with probability [p]. *)

val exponential : t -> mean:float -> float
(** Exponentially distributed with the given mean. *)

val shuffle : t -> 'a array -> unit
