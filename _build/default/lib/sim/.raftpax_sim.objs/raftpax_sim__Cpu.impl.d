lib/sim/cpu.ml: Engine
