lib/sim/net.ml: Array Engine List Rng Topology
