lib/sim/rng.mli:
