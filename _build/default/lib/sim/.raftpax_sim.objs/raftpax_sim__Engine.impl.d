lib/sim/engine.ml: Array Rng
