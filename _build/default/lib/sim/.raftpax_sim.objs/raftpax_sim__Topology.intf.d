lib/sim/topology.mli:
