type node = { id : int; site : Topology.site }

type t = {
  engine : Engine.t;
  nodes : node list;
  sites : Topology.site array;
  drop_probability : float;
  jitter_us : int;
  rng : Rng.t;
  mutable partition : (int -> int -> bool) option;
  down : bool array;
  (* FIFO NIC model: the time at which each node's uplink frees up. *)
  uplink_free_at : int array;
  (* TCP-like per-link ordering: the last scheduled arrival per (src,dst);
     a later message never overtakes an earlier one on the same link. *)
  link_last_arrival : int array array;
  bytes_out : int array;
  mutable sent : int;
  mutable dropped : int;
}

let create ?(drop_probability = 0.0) ?(jitter_us = 200) engine ~nodes =
  let n = List.length nodes in
  let sites = Array.make n Topology.Oregon in
  List.iter (fun node -> sites.(node.id) <- node.site) nodes;
  {
    engine;
    nodes;
    sites;
    drop_probability;
    jitter_us;
    rng = Rng.split (Engine.rng engine);
    partition = None;
    down = Array.make n false;
    uplink_free_at = Array.make n 0;
    link_last_arrival = Array.make_matrix n n 0;
    bytes_out = Array.make n 0;
    sent = 0;
    dropped = 0;
  }

let engine t = t.engine
let nodes t = t.nodes
let node_site t id = t.sites.(id)
let set_partition t p = t.partition <- p
let set_node_down t id b = t.down.(id) <- b
let node_down t id = t.down.(id)

let cut t src dst =
  match t.partition with Some p -> p src dst | None -> false

let send t ~src ~dst ~size deliver =
  if t.down.(src) then ()
  else begin
    t.sent <- t.sent + 1;
    t.bytes_out.(src) <- t.bytes_out.(src) + size;
    let now = Engine.now t.engine in
    (* Serialisation: the sender's NIC is FIFO; a message waits for the
       uplink then occupies it for size/bandwidth. *)
    let bw = Topology.bandwidth_bytes_per_sec t.sites.(src) in
    let tx_us = size * 1_000_000 / bw in
    let start = max now t.uplink_free_at.(src) in
    let departure = start + tx_us in
    t.uplink_free_at.(src) <- departure;
    let propagation = Topology.one_way_us t.sites.(src) t.sites.(dst) in
    let jitter = if t.jitter_us = 0 then 0 else Rng.int t.rng t.jitter_us in
    let arrival =
      max (departure + propagation + jitter) t.link_last_arrival.(src).(dst)
    in
    t.link_last_arrival.(src).(dst) <- arrival;
    if
      Rng.bool t.rng t.drop_probability
      || cut t src dst
    then t.dropped <- t.dropped + 1
    else
      Engine.schedule t.engine ~delay:(arrival - now) (fun () ->
          (* Faults are evaluated at delivery time as well, so a node that
             crashes (or a link that is cut) mid-flight loses the message. *)
          if t.down.(dst) || t.down.(src) || cut t src dst then
            t.dropped <- t.dropped + 1
          else deliver ())
  end

let sent_count t = t.sent
let dropped_count t = t.dropped
let bytes_sent t id = t.bytes_out.(id)
