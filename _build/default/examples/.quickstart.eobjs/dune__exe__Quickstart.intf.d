examples/quickstart.mli:
