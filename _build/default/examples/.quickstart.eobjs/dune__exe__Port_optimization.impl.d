examples/port_optimization.ml: Delta Example_kv Fmt Label List Opt_mencius Opt_pql Port Proto_config Raftpax_core Refinement Spec Spec_multipaxos Spec_raft_star
