examples/local_reads.ml: Fmt List Raft Raftpax_consensus Raftpax_sim Types
