examples/geo_replication.mli:
