examples/geo_replication.ml: Fmt Harness Raftpax_kvstore Raftpax_sim Workload
