examples/quickstart.ml: Fmt List Raft Raftpax_consensus Raftpax_sim Types
