examples/local_reads.mli:
