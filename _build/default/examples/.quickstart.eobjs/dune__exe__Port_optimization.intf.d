examples/port_optimization.mli:
