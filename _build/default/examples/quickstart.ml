(* Quickstart: bring up a 5-region Raft* cluster on the simulated WAN,
   replicate a few operations, survive a leader crash.

     dune exec examples/quickstart.exe *)

module Sim = Raftpax_sim
open Raftpax_consensus

let ms engine = Sim.Engine.now engine / 1000

let () =
  (* One replica per AWS region, with the paper's WAN latency matrix. *)
  let engine = Sim.Engine.create ~seed:42L () in
  let nodes =
    List.mapi (fun i site -> { Sim.Net.id = i; site }) Sim.Topology.sites
  in
  let net = Sim.Net.create engine ~nodes in

  (* A Raft* cluster with the leader bootstrapped in Oregon (node 0). *)
  let cluster = Raft.create (Raft.raft_star ~leader:0 ()) net in
  Raft.start cluster;

  Fmt.pr "--- replicating three writes from different regions ---@.";
  List.iter
    (fun (node, key, id) ->
      let t0 = Sim.Engine.now engine in
      Raft.submit cluster ~node (Types.Put { key; size = 8; write_id = id })
        (fun _ ->
          Fmt.pr "write %d (submitted at %s) committed in %d ms@." id
            (Sim.Topology.site_name (Sim.Net.node_site net node))
            ((Sim.Engine.now engine - t0) / 1000)))
    [ (0, 1, 100); (2, 2, 200); (4, 3, 300) ];
  Sim.Engine.run engine ~until:2_000_000;

  Fmt.pr "--- reading back through the leader ---@.";
  Raft.submit cluster ~node:1 (Types.Get { key = 2 }) (fun r ->
      Fmt.pr "get(2) = %a at t=%dms@." Fmt.(option int) r.Types.value (ms engine));
  Sim.Engine.run engine ~until:3_000_000;

  Fmt.pr "--- crashing the leader; the cluster re-elects and keeps going ---@.";
  Raft.crash cluster ~node:0;
  Sim.Engine.run engine ~until:12_000_000;
  (match Raft.leader_of cluster with
  | Some l ->
      Fmt.pr "new leader: %s (term %d)@."
        (Sim.Topology.site_name (Sim.Net.node_site net l))
        (Raft.term_of cluster ~node:l)
  | None -> Fmt.pr "no leader yet@.");
  Raft.submit cluster ~node:3 (Types.Put { key = 9; size = 8; write_id = 900 })
    (fun _ -> Fmt.pr "post-failover write committed at t=%dms@." (ms engine));
  Sim.Engine.run engine ~until:20_000_000;

  Fmt.pr "--- every replica applied the same state ---@.";
  List.iter
    (fun node ->
      Fmt.pr "%-8s key1=%a key2=%a key3=%a key9=%a@."
        (Sim.Topology.site_name (Sim.Net.node_site net node))
        Fmt.(option int)
        (Raft.applied_value cluster ~node ~key:1)
        Fmt.(option int)
        (Raft.applied_value cluster ~node ~key:2)
        Fmt.(option int)
        (Raft.applied_value cluster ~node ~key:3)
        Fmt.(option int)
        (Raft.applied_value cluster ~node ~key:9))
    [ 1; 2; 3; 4 ]
