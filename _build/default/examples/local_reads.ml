(* Paxos Quorum Leases ported to Raft*: any replica holding leases from a
   quorum serves strongly-consistent reads locally.  This example shows
   (1) millisecond local reads at every region, (2) reads correctly
   waiting for a concurrent conflicting write, and (3) writes stalling on
   a crashed lease holder until its lease expires.

     dune exec examples/local_reads.exe *)

module Sim = Raftpax_sim
open Raftpax_consensus

let () =
  let engine = Sim.Engine.create ~seed:1L () in
  let nodes =
    List.mapi (fun i site -> { Sim.Net.id = i; site }) Sim.Topology.sites
  in
  let net = Sim.Net.create engine ~nodes in
  let cluster = Raft.create (Raft.raft_pql ~leader:0 ()) net in
  Raft.start cluster;

  (* seed a record and let leases establish *)
  Raft.submit cluster ~node:0 (Types.Put { key = 7; size = 8; write_id = 1 })
    (fun _ -> ());
  Sim.Engine.run engine ~until:2_000_000;

  Fmt.pr "--- local reads at every region ---@.";
  List.iteri
    (fun node site ->
      let t0 = Sim.Engine.now engine in
      Raft.submit cluster ~node (Types.Get { key = 7 }) (fun r ->
          Fmt.pr "%-8s read -> %a in %.1f ms (lease active: %b)@."
            (Sim.Topology.site_name site)
            Fmt.(option int)
            r.Types.value
            (float_of_int (Sim.Engine.now engine - t0) /. 1000.0)
            (Raft.lease_active cluster ~node)))
    Sim.Topology.sites;
  Sim.Engine.run engine ~until:3_000_000;

  Fmt.pr "--- a read behind a conflicting write waits for the commit ---@.";
  let t0 = Sim.Engine.now engine in
  Raft.submit cluster ~node:0 (Types.Put { key = 7; size = 8; write_id = 2 })
    (fun _ ->
      Fmt.pr "write 2 committed after %.1f ms@."
        (float_of_int (Sim.Engine.now engine - t0) /. 1000.0));
  (* Ohio sees the append ~25ms later; read it immediately after *)
  Sim.Engine.schedule engine ~delay:30_000 (fun () ->
      let t1 = Sim.Engine.now engine in
      Raft.submit cluster ~node:1 (Types.Get { key = 7 }) (fun r ->
          Fmt.pr "Ohio read -> %a after %.1f ms (waited for the commit)@."
            Fmt.(option int)
            r.Types.value
            (float_of_int (Sim.Engine.now engine - t1) /. 1000.0)));
  Sim.Engine.run engine ~until:5_000_000;

  Fmt.pr "--- a crashed lease holder blocks writes until expiry (2s) ---@.";
  Raft.crash cluster ~node:4;
  let t0 = Sim.Engine.now engine in
  Raft.submit cluster ~node:0 (Types.Put { key = 7; size = 8; write_id = 3 })
    (fun _ ->
      Fmt.pr "write 3 committed after %.1f ms (Seoul's lease had to lapse)@."
        (float_of_int (Sim.Engine.now engine - t0) /. 1000.0));
  Sim.Engine.run engine ~until:12_000_000
