(* The porting method of Section 4, end to end on the paper's Figure-4
   running example, then on the real case studies:

   1. A    = a key-value store;      B  = a log store refining A;
   2. AΔ   = A + a size counter (a non-mutating optimization);
   3. BΔ   = derived automatically by the porting engine (Figure 4d);
   4. machine-check the Figure-5 obligations: BΔ ⇒ AΔ and BΔ ⇒ B;
   5. do the same for PQL and Mencius over MultiPaxos/Raft* (bounded).

     dune exec examples/port_optimization.exe *)

open Raftpax_core

let report name = function
  | Refinement.Refines r ->
      Fmt.pr "  %-22s refines (%d states, %d transitions, %d stuttering)@."
        name r.checked_states r.checked_transitions r.stuttering
  | Refinement.Fails (f, _) ->
      Fmt.pr "  %-22s FAILS at %s(%s)@." name f.b_action f.b_label

let () =
  Fmt.pr "=== Figure 4: the running example ===@.";
  Fmt.pr "%a@.@." Spec.pp Example_kv.kv_store;
  Fmt.pr "%a@.@." Spec.pp Example_kv.log_store;
  Fmt.pr "The optimization Δ:@.%a@.@." Delta.pp Example_kv.size_delta;

  (* A^Δ by applying the delta; B^Δ by porting it through the mapping. *)
  let kv_opt = Port.apply Example_kv.size_delta Example_kv.kv_store in
  let log_opt =
    Port.port Example_kv.size_delta ~low:Example_kv.log_store
      ~map:Example_kv.log_to_kv ~implies:Example_kv.implies
      ~label_map:Example_kv.label_map ()
  in
  Fmt.pr "Generated A^Δ:@.%a@.@." Spec.pp kv_opt;
  Fmt.pr "Generated B^Δ (the ported optimization, Figure 4d):@.%a@.@." Spec.pp
    log_opt;

  Fmt.pr "Checking the Figure-5 refinement square:@.";
  report "Δ is non-mutating"
    (Port.check_non_mutating ~base:Example_kv.kv_store
       ~delta:Example_kv.size_delta ());
  let r1, r2 =
    Port.check_ported ~low:Example_kv.log_store ~high:Example_kv.kv_store
      ~delta:Example_kv.size_delta ~map:Example_kv.log_to_kv
      ~implies:Example_kv.implies ~label_map:Example_kv.label_map ()
  in
  report "B^Δ => A^Δ" r1;
  report "B^Δ => B" r2;

  Fmt.pr "@.=== The real thing: Raft* => MultiPaxos (tiny instance) ===@.";
  let cfg = Proto_config.tiny in
  let mp = Spec_multipaxos.spec cfg in
  let rs = Spec_raft_star.spec cfg in
  (match
     Refinement.check ~max_states:20_000 ~max_hops:4 ~low:rs ~high:mp
       ~map:(Spec_raft_star.to_paxos cfg) ()
   with
  | Refinement.Refines r ->
      Fmt.pr "  Raft* refines MultiPaxos; the machine-checked Figure 3:@.";
      List.iter
        (fun (b, paths) ->
          Fmt.pr "    %-22s => %a@." b
            Fmt.(list ~sep:comma string)
            (List.map fst paths))
        r.action_map
  | Refinement.Fails (f, _) -> Fmt.pr "  FAILS at %s?!@." f.b_action);

  let implies = function
    | "IncreaseHighestBallot" -> [ "IncreaseHighestBallot" ]
    | "Phase1a" -> [ "Phase1a" ]
    | "Phase1b" -> [ "Phase1b" ]
    | "BecomeLeader" -> [ "BecomeLeader" ]
    | "ProposeEntries" -> [ "Propose" ]
    | "AcceptEntries" -> [ "Accept" ]
    | _ -> []
  in
  let label_map ~b_action ~a_action:_ label =
    match b_action with
    | "ProposeEntries" -> Label.keep [ "a"; "i"; "v" ] label
    | _ -> label
  in
  Fmt.pr "@.=== Case study 1: Paxos Quorum Lease -> Raft*-PQL ===@.";
  Fmt.pr "%a@." Delta.pp (Opt_pql.delta cfg);
  let r1, r2 =
    Port.check_ported ~max_states:6_000 ~max_hops:4 ~low:rs ~high:mp
      ~delta:(Opt_pql.delta cfg) ~map:(Spec_raft_star.to_paxos cfg) ~implies
      ~label_map ()
  in
  report "Raft*-PQL => PQL" r1;
  report "Raft*-PQL => Raft*" r2;

  Fmt.pr "@.=== Case study 2: Mencius -> Raft*-Mencius ===@.";
  Fmt.pr "%a@." Delta.pp (Opt_mencius.delta cfg);
  let r1, r2 =
    Port.check_ported ~max_states:6_000 ~max_hops:4 ~low:rs ~high:mp
      ~delta:(Opt_mencius.delta cfg) ~map:(Spec_raft_star.to_paxos cfg)
      ~implies ~label_map ()
  in
  report "Raft*-Mencius => Mencius" r1;
  report "Raft*-Mencius => Raft*" r2;
  Fmt.pr "@.(all checks are bounded-exhaustive on the tiny finite instance)@."
