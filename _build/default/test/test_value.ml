open Raftpax_core
module V = Value

let check_val = Alcotest.testable V.pp V.equal

(* ---- generators for property tests ---- *)

let rec value_gen depth =
  let open QCheck.Gen in
  if depth = 0 then
    oneof [ map V.int (int_range (-5) 5); map V.bool bool; return V.nil ]
  else
    frequency
      [
        (3, map V.int (int_range (-5) 5));
        (1, map V.bool bool);
        (1, map V.set (list_size (int_bound 4) (value_gen (depth - 1))));
        (1, map V.tuple (list_size (int_bound 3) (value_gen (depth - 1))));
      ]

let value_arb = QCheck.make ~print:V.to_string (value_gen 2)

(* ---- unit tests ---- *)

let test_set_canonical () =
  let s = V.set [ V.int 3; V.int 1; V.int 3; V.int 2 ] in
  Alcotest.(check check_val)
    "sorted and deduped"
    (V.set [ V.int 1; V.int 2; V.int 3 ])
    s;
  Alcotest.(check int) "card" 3 (V.set_card s)

let test_set_ops () =
  let s = V.set [ V.int 1; V.int 2 ] in
  Alcotest.(check bool) "mem" true (V.set_mem (V.int 1) s);
  Alcotest.(check bool) "not mem" false (V.set_mem (V.int 9) s);
  let s' = V.set_add (V.int 5) s in
  Alcotest.(check bool) "added" true (V.set_mem (V.int 5) s');
  Alcotest.(check bool) "subset" true (V.set_subset s s');
  Alcotest.(check bool) "not subset" false (V.set_subset s' s);
  Alcotest.(check check_val)
    "union"
    (V.set [ V.int 1; V.int 2; V.int 5 ])
    (V.set_union s (V.set [ V.int 5; V.int 2 ]))

let test_subsets () =
  let s = V.set [ V.int 1; V.int 2; V.int 3 ] in
  Alcotest.(check int) "2^3 subsets" 8 (List.length (V.subsets s));
  List.iter
    (fun sub -> Alcotest.(check bool) "subset of s" true (V.set_subset sub s))
    (V.subsets s)

let test_map_ops () =
  let m = V.fn [ (V.int 1, V.str "a"); (V.int 2, V.str "b") ] in
  Alcotest.(check check_val) "get" (V.str "a") (V.get m (V.int 1));
  Alcotest.(check (option check_val)) "get_opt absent" None (V.get_opt m (V.int 9));
  let m' = V.put m (V.int 1) (V.str "z") in
  Alcotest.(check check_val) "updated" (V.str "z") (V.get m' (V.int 1));
  let m'' = V.put m (V.int 3) (V.str "c") in
  Alcotest.(check int) "inserted key count" 3 (List.length (V.keys m''))

let test_map_duplicate_rejected () =
  Alcotest.check_raises "duplicate key"
    (Invalid_argument "Value.map_of: duplicate key") (fun () ->
      ignore (V.map_of [ (V.int 1, V.int 2); (V.int 1, V.int 3) ]))

let test_record () =
  let r = V.record [ ("b", V.int 2); ("a", V.int 1) ] in
  Alcotest.(check check_val) "field" (V.int 1) (V.field r "a");
  let r' = V.with_field r "a" (V.int 9) in
  Alcotest.(check check_val) "with_field" (V.int 9) (V.field r' "a");
  Alcotest.(check check_val) "other kept" (V.int 2) (V.field r' "b")

let test_compare_total_order () =
  (* different constructors are comparable without exceptions *)
  let vs = [ V.int 0; V.bool true; V.str "x"; V.tuple []; V.set []; V.fn [] ] in
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          let c1 = V.compare a b and c2 = V.compare b a in
          Alcotest.(check bool) "antisymmetric" true (Stdlib.compare c1 (-c2) = 0 || (c1 = 0 && c2 = 0)))
        vs)
    vs

(* ---- properties ---- *)

let prop_set_idempotent =
  QCheck.Test.make ~name:"set_add is idempotent" ~count:200
    QCheck.(pair value_arb (small_list value_arb))
    (fun (x, xs) ->
      let s = V.set xs in
      V.equal (V.set_add x (V.set_add x s)) (V.set_add x s))

let prop_set_mem_after_add =
  QCheck.Test.make ~name:"added element is a member" ~count:200
    QCheck.(pair value_arb (small_list value_arb))
    (fun (x, xs) -> V.set_mem x (V.set_add x (V.set xs)))

let prop_union_commutative =
  QCheck.Test.make ~name:"union commutes" ~count:200
    QCheck.(pair (small_list value_arb) (small_list value_arb))
    (fun (xs, ys) ->
      V.equal (V.set_union (V.set xs) (V.set ys)) (V.set_union (V.set ys) (V.set xs)))

let prop_put_get =
  QCheck.Test.make ~name:"put then get" ~count:200
    QCheck.(triple value_arb value_arb (small_list (pair value_arb value_arb)))
    (fun (k, v, kvs) ->
      (* build map keeping first binding per key *)
      let m =
        List.fold_left (fun m (k, v) -> V.put m k v) (V.fn []) kvs
      in
      V.equal (V.get (V.put m k v) k) v)

let prop_compare_reflexive =
  QCheck.Test.make ~name:"compare reflexive" ~count:200 value_arb (fun v ->
      V.compare v v = 0)

let () =
  Alcotest.run "value"
    [
      ( "sets",
        [
          Alcotest.test_case "canonical" `Quick test_set_canonical;
          Alcotest.test_case "ops" `Quick test_set_ops;
          Alcotest.test_case "subsets" `Quick test_subsets;
        ] );
      ( "maps",
        [
          Alcotest.test_case "ops" `Quick test_map_ops;
          Alcotest.test_case "duplicates" `Quick test_map_duplicate_rejected;
        ] );
      ("records", [ Alcotest.test_case "fields" `Quick test_record ]);
      ( "ordering",
        [ Alcotest.test_case "total order" `Quick test_compare_total_order ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_set_idempotent;
            prop_set_mem_after_add;
            prop_union_commutative;
            prop_put_get;
            prop_compare_reflexive;
          ] );
    ]
