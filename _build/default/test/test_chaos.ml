(* Chaos testing: random crash/restart/partition churn against the Raft
   family, then heal and check convergence — committed prefixes agree
   across replicas, the cluster still serves requests, and no read ever
   went stale. *)

module Sim = Raftpax_sim
module Engine = Sim.Engine
module Net = Sim.Net
module Topology = Sim.Topology
open Raftpax_consensus

type cluster = {
  engine : Engine.t;
  net : Net.t;
  raft : Raft.t;
  mutable down : int list;
  mutable completed_writes : int list;
  mutable next_id : int;
}

let mk config seed =
  let engine = Engine.create ~seed () in
  let nodes = List.mapi (fun i site -> { Net.id = i; site }) Topology.sites in
  let net = Net.create engine ~nodes in
  let raft = Raft.create config net in
  Raft.start raft;
  {
    engine;
    net;
    raft;
    down = [];
    completed_writes = [];
    next_id = 1;
  }

(* one random chaos step *)
let step rng c =
  match Sim.Rng.int rng 10 with
  | 0 | 1 when List.length c.down < 2 ->
      (* crash a random up node *)
      let up =
        List.filter (fun n -> not (List.mem n c.down)) [ 0; 1; 2; 3; 4 ]
      in
      let victim = List.nth up (Sim.Rng.int rng (List.length up)) in
      Raft.crash c.raft ~node:victim;
      c.down <- victim :: c.down
  | 2 when c.down <> [] ->
      (* restart a down node *)
      let node = List.hd c.down in
      c.down <- List.tl c.down;
      Raft.restart c.raft ~node
  | 3 when c.down = [] ->
      (* brief asymmetric partition *)
      let cut = Sim.Rng.int rng 5 in
      Net.set_partition c.net (Some (fun a b -> a = cut || b = cut));
      Engine.schedule c.engine ~delay:2_000_000 (fun () ->
          Net.set_partition c.net None)
  | _ ->
      (* submit a write at a random up node *)
      let up =
        List.filter (fun n -> not (List.mem n c.down)) [ 0; 1; 2; 3; 4 ]
      in
      if up <> [] then begin
        let node = List.nth up (Sim.Rng.int rng (List.length up)) in
        let id = c.next_id in
        c.next_id <- id + 1;
        Raft.submit c.raft ~node
          (Types.Put { key = 1 + (id mod 7); size = 8; write_id = id })
          (fun _ -> c.completed_writes <- id :: c.completed_writes)
      end

let committed_prefixes_agree c =
  let upto =
    List.fold_left
      (fun acc n -> min acc (Raft.commit_index c.raft ~node:n))
      max_int [ 0; 1; 2; 3; 4 ]
  in
  let prefix n =
    Raft.log_entries c.raft ~node:n |> List.filteri (fun i _ -> i <= upto)
  in
  let reference = prefix 0 in
  List.for_all (fun n -> prefix n = reference) [ 1; 2; 3; 4 ]

let run_chaos config seed =
  let c = mk config (Int64.of_int seed) in
  let rng = Sim.Rng.create (Int64.of_int (seed * 7 + 1)) in
  (* 60 chaos steps spread over 60 simulated seconds *)
  for k = 0 to 59 do
    Engine.schedule c.engine ~delay:(k * 1_000_000) (fun () -> step rng c)
  done;
  Engine.run c.engine ~until:60_000_000;
  (* heal everything and settle *)
  Net.set_partition c.net None;
  List.iter (fun node -> Raft.restart c.raft ~node) c.down;
  c.down <- [];
  Engine.run c.engine ~until:90_000_000;
  (* liveness: a fresh write commits.  A single submission can be lost to
     a stale leader that has not yet learned it was deposed, so the probe
     retries like a real client would. *)
  let ok = ref false in
  let attempt = ref 0 in
  let rec probe () =
    if (not !ok) && !attempt < 5 then begin
      incr attempt;
      (match Raft.leader_of c.raft with
      | Some l ->
          Raft.submit c.raft ~node:l
            (Types.Put { key = 99; size = 8; write_id = 999_000 + !attempt })
            (fun _ -> ok := true)
      | None -> ());
      Engine.schedule c.engine ~delay:4_000_000 probe
    end
  in
  probe ();
  Engine.run c.engine ~until:110_000_000;
  (* safety: committed prefixes agree; every completed write survives in
     the (current) leader's committed log *)
  let log_ids =
    match Raft.leader_of c.raft with
    | Some l ->
        Raft.log_entries c.raft ~node:l
        |> List.filteri (fun i _ -> i <= Raft.commit_index c.raft ~node:l)
        |> List.filter_map (fun (e : Types.entry) ->
               match e.cmd with
               | Some { op = Types.Put { write_id; _ }; _ } -> Some write_id
               | _ -> None)
    | None -> []
  in
  let durable =
    List.for_all (fun id -> List.mem id log_ids) c.completed_writes
  in
  !ok && committed_prefixes_agree c && durable

let chaos_prop name config =
  QCheck.Test.make ~name ~count:8
    QCheck.(int_range 1 10_000)
    (fun seed -> run_chaos config seed)

let mencius_chaos =
  QCheck.Test.make ~name:"mencius survives churn" ~count:5
    QCheck.(int_range 1 10_000)
    (fun seed ->
      let engine = Engine.create ~seed:(Int64.of_int seed) () in
      let nodes =
        List.mapi (fun i site -> { Net.id = i; site }) Topology.sites
      in
      let net = Net.create engine ~nodes in
      let t = Mencius.create Mencius.default_config net in
      Mencius.start t;
      let rng = Sim.Rng.create (Int64.of_int (seed + 13)) in
      let completed = ref 0 and submitted = ref 0 in
      let victim = Sim.Rng.int rng 5 in
      (* crash one node mid-run, restart later, keep submitting elsewhere *)
      Engine.schedule engine ~delay:5_000_000 (fun () ->
          Mencius.crash t ~node:victim);
      Engine.schedule engine ~delay:25_000_000 (fun () ->
          Mencius.restart t ~node:victim);
      for k = 0 to 39 do
        Engine.schedule engine ~delay:(k * 1_000_000) (fun () ->
            let node = Sim.Rng.int rng 5 in
            if node <> victim || Engine.now engine >= 30_000_000 then begin
              incr submitted;
              Mencius.submit t ~node
                (Types.Put { key = 1 + (k mod 5); size = 8; write_id = 1000 + k })
                (fun _ -> incr completed)
            end)
      done;
      Engine.run engine ~until:90_000_000;
      (* every submitted op to a live node completes; frontiers agree *)
      !completed = !submitted
      && List.for_all
           (fun n ->
             Mencius.commit_frontier t ~node:n
             = Mencius.commit_frontier t ~node:0)
           [ 1; 2; 3; 4 ])

let () =
  Alcotest.run "chaos"
    [
      ( "raft-family",
        List.map QCheck_alcotest.to_alcotest
          [
            chaos_prop "raft survives churn" (Raft.raft ~leader:0 ());
            chaos_prop "raft* survives churn" (Raft.raft_star ~leader:0 ());
            chaos_prop "raft*-pql survives churn" (Raft.raft_pql ~leader:0 ());
          ] );
      ("mencius", List.map QCheck_alcotest.to_alcotest [ mencius_chaos ]);
    ]
