open Raftpax_core
module V = Value
module C = Proto_config

let tiny = C.tiny

let test_invariants_exhaustive () =
  match
    Explorer.check ~max_states:50_000
      ~invariants:(Spec_raft_star.invariants tiny)
      (Spec_raft_star.spec tiny)
  with
  | Explorer.Pass stats ->
      Alcotest.(check bool) "complete" true stats.complete
  | r -> Alcotest.failf "%a" Explorer.pp_result r

let test_invariants_small_bounded () =
  let cfg = C.small in
  match
    Explorer.check ~max_states:20_000
      ~invariants:
        [
          ("LogMatching", Spec_raft_star.inv_log_matching cfg);
          ("LeaderCompleteness", Spec_raft_star.inv_leader_completeness cfg);
        ]
      (Spec_raft_star.spec cfg)
  with
  | Explorer.Pass _ -> ()
  | r -> Alcotest.failf "%a" Explorer.pp_result r

(* ---- scenario-level behaviour ---- *)

let drive ?(cfg = tiny) picks =
  let spec = Spec_raft_star.spec cfg in
  (spec, Scenario.run spec (List.hd spec.Spec.init) picks)

let election =
  [
    ("IncreaseHighestBallot", "a=0,b=1");
    ("Phase1a", "a=0");
    ("Phase1b", "a=1,b=1");
    ("Phase1b", "a=2,b=1");
    ("BecomeLeader", "a=1,q=12");
  ]

let test_leader_elected () =
  let _, s = drive election in
  Alcotest.(check bool) "node 1 leads" true
    (V.to_bool (V.get (State.get s "isLeader") (V.int 1)));
  Alcotest.(check bool) "node 2 does not" false
    (V.to_bool (V.get (State.get s "isLeader") (V.int 2)))

let test_replication_updates_ballots () =
  let _, s =
    drive
      (election
      @ [
          ("ProposeEntries", "a=1,i1=0,i=0,v=1");
          ("AcceptEntries", "a=2,t=1,l=0");
        ])
  in
  let log_ballot = V.get (V.get (State.get s "logBallot") (V.int 2)) (V.int 0) in
  Alcotest.(check int) "ballot rewritten to term" 1 (V.to_int log_ballot);
  let raftlog = V.get (V.get (State.get s "raftlogs") (V.int 2)) (V.int 0) in
  Alcotest.(check bool) "value replicated" true
    (V.equal raftlog (Spec_multipaxos.entry 1 (V.int 1)))

let test_mapped_state_is_paxos_like () =
  let _, s =
    drive
      (election
      @ [
          ("ProposeEntries", "a=1,i1=0,i=0,v=1");
          ("AcceptEntries", "a=1,t=1,l=0");
          ("AcceptEntries", "a=2,t=1,l=0");
        ])
  in
  let a = Spec_raft_star.to_paxos tiny s in
  Alcotest.(check (list string))
    "paxos variables"
    [
      "highestBallot";
      "isLeader";
      "logTail";
      "logs";
      "msgs1a";
      "msgs1b";
      "proposedValues";
      "votes";
    ]
    (State.vars a);
  (* the derived state satisfies the MultiPaxos invariants *)
  List.iter
    (fun (name, inv) -> Alcotest.(check bool) name true (inv a))
    (Spec_multipaxos.invariants tiny);
  Alcotest.(check bool) "value chosen in mapped state" true
    (Spec_multipaxos.chosen_at tiny a ~idx:0 ~bal:1 (V.int 1))

(* The Raft* extras mechanism, on the same drives as the vanilla erase
   counterexample: the new leader is elected on a vote from a peer with a
   longer log and must ADOPT the extra entry instead of later erasing it.
   This is exactly the difference Section 3 introduces. *)
let extras_cfg = { C.acceptors = 3; values = 1; max_ballot = 2; max_index = 2 }

let extras_scenario () =
  let cfg = extras_cfg in
  let spec = Spec_raft_star.spec cfg in
  let s =
    Scenario.run spec (List.hd spec.Spec.init)
      [
        ("IncreaseHighestBallot", "a=0,b=1");
        ("Phase1a", "a=0");
        ("Phase1b", "a=1,b=1");
        ("Phase1b", "a=2,b=1");
        ("BecomeLeader", "a=1,q=12");
        ("ProposeEntries", "a=1,i1=0,i=0,v=1");
        ("AcceptEntries", "a=1,t=1,l=0");
        ("ProposeEntries", "a=1,i1=1,i=1,v=1");
        ("AcceptEntries", "a=1,t=1,l=1");
        ("ProposeEntries", "a=1,i1=2,i=2,v=1");
        ("AcceptEntries", "a=2,t=1,l=0");
        ("AcceptEntries", "a=2,t=1,l=1");
        ("AcceptEntries", "a=2,t=1,l=2");
        ("AcceptEntries", "a=0,t=1,l=0");
        ("IncreaseHighestBallot", "a=2,b=2");
        ("Phase1a", "a=2");
        ("Phase1b", "a=0,b=2");
        ("Phase1b", "a=1,b=2");
        ("BecomeLeader", "a=0,q=01");
      ]
  in
  (spec, s)

let test_vote_reply_carries_extras () =
  let cfg = extras_cfg in
  let _, s = extras_scenario () in
  (* Leader 0 had one entry of its own but adopted voter 1's entry at
     index 1 (with its original ballot). *)
  let log_tail = V.to_int (V.get (State.get s "logTail") (V.int 0)) in
  Alcotest.(check int) "leader extended to the adopted entry" 1 log_tail;
  let adopted = V.get (V.get (State.get s "raftlogs") (V.int 0)) (V.int 1) in
  Alcotest.(check bool) "adopted value with original ballot" true
    (V.equal adopted (Spec_multipaxos.entry 1 (V.int 1)));
  (* ... and the state still maps into legal MultiPaxos territory. *)
  let a = Spec_raft_star.to_paxos cfg s in
  List.iter
    (fun (name, inv) -> Alcotest.(check bool) name true (inv a))
    (Spec_multipaxos.invariants cfg)

let test_no_erase_after_adoption () =
  (* Continuing the scenario: the new leader's append to node 2 must not
     shorten node 2's log (contrast with the vanilla erase). *)
  let spec, s = extras_scenario () in
  let s = Scenario.step spec s ~action:"ProposeEntries" ~label:"a=0,i1=0,i=2,v=1" in
  let s = Scenario.step spec s ~action:"AcceptEntries" ~label:"a=2,t=2,l=2" in
  let entry_at i =
    V.get (V.get (State.get s "raftlogs") (V.int 2)) (V.int i)
  in
  List.iter
    (fun i ->
      Alcotest.(check bool)
        (Fmt.str "node 2 keeps a value at %d" i)
        false
        (V.equal (entry_at i) Spec_multipaxos.empty_entry))
    [ 0; 1; 2 ]

let test_rejects_stale_append () =
  (* An acceptor that moved to a higher ballot rejects older appends:
     AcceptEntries at t=1 is disabled after IncreaseHighestBallot to 2. *)
  let cfg = { tiny with C.max_ballot = 2 } in
  let spec = Spec_raft_star.spec cfg in
  let s =
    Scenario.run spec (List.hd spec.Spec.init)
      (election
      @ [
          ("ProposeEntries", "a=1,i1=0,i=0,v=1");
          ("IncreaseHighestBallot", "a=2,b=2");
        ])
  in
  let accepts = (Spec.find_action spec "AcceptEntries").Action.enum s in
  Alcotest.(check bool) "no accept at node 2" true
    (List.for_all (fun (l, _) -> not (String.length l >= 4 && String.sub l 0 4 = "a=2,")) accepts)

let test_up_to_date_restriction () =
  (* A voter whose log is ahead refuses a RequestVote from a shorter log
     (Raft's election restriction): node 2 holds entries 0..2; a ballot-2
     prepare from node 1 (entries 0..1) is granted by empty node 0 but not
     by node 2. *)
  let cfg = extras_cfg in
  let spec = Spec_raft_star.spec cfg in
  let s =
    Scenario.run spec (List.hd spec.Spec.init)
      [
        ("IncreaseHighestBallot", "a=0,b=1");
        ("Phase1a", "a=0");
        ("Phase1b", "a=1,b=1");
        ("Phase1b", "a=2,b=1");
        ("BecomeLeader", "a=1,q=12");
        ("ProposeEntries", "a=1,i1=0,i=0,v=1");
        ("AcceptEntries", "a=1,t=1,l=0");
        ("ProposeEntries", "a=1,i1=1,i=1,v=1");
        ("AcceptEntries", "a=1,t=1,l=1");
        ("ProposeEntries", "a=1,i1=2,i=2,v=1");
        ("AcceptEntries", "a=2,t=1,l=0");
        ("AcceptEntries", "a=2,t=1,l=1");
        ("AcceptEntries", "a=2,t=1,l=2");
        ("IncreaseHighestBallot", "a=1,b=2");
        ("Phase1a", "a=1");
      ]
  in
  let grants = (Spec.find_action spec "Phase1b").Action.enum s in
  let granted_by a =
    List.exists
      (fun (l, _) -> String.length l >= 4 && String.sub l 0 4 = Fmt.str "a=%d," a)
      grants
  in
  Alcotest.(check bool) "empty node 0 grants" true (granted_by 0);
  Alcotest.(check bool) "ahead node 2 refuses" false (granted_by 2)

let () =
  Alcotest.run "specs_raft"
    [
      ( "model-checking",
        [
          Alcotest.test_case "tiny exhaustive" `Slow test_invariants_exhaustive;
          Alcotest.test_case "small bounded" `Slow test_invariants_small_bounded;
        ] );
      ( "scenarios",
        [
          Alcotest.test_case "leader elected" `Quick test_leader_elected;
          Alcotest.test_case "ballot rewrite" `Quick test_replication_updates_ballots;
          Alcotest.test_case "mapped state" `Quick test_mapped_state_is_paxos_like;
          Alcotest.test_case "vote extras adopted" `Quick test_vote_reply_carries_extras;
          Alcotest.test_case "no erase after adoption" `Quick test_no_erase_after_adoption;
          Alcotest.test_case "stale append rejected" `Quick test_rejects_stale_append;
          Alcotest.test_case "up-to-date restriction" `Quick test_up_to_date_restriction;
        ] );
    ]
