open Raftpax_core
module V = Value
module C = Proto_config

(* ---- Figure 4: the log store refines the KV store ---- *)

let test_log_refines_kv () =
  match
    Refinement.check ~low:Example_kv.log_store ~high:Example_kv.kv_store
      ~map:Example_kv.log_to_kv ()
  with
  | Refinement.Refines report ->
      Alcotest.(check bool) "complete" true report.complete;
      (* Write implies Put, Read implies Get (the paper's example). *)
      let implied b =
        List.assoc b report.action_map |> List.map fst
      in
      (* same-value overwrites are legal stuttering steps, so Write maps to
         Put and sometimes to a stutter *)
      Alcotest.(check bool) "Write => Put" true (List.mem "Put" (implied "Write"));
      Alcotest.(check bool) "Read => Get" true (List.mem "Get" (implied "Read"))
  | Refinement.Fails (f, _) ->
      Alcotest.failf "unexpected failure at %s(%s)" f.b_action f.b_label

let test_broken_mapping_rejected () =
  match
    Refinement.check ~low:Example_kv.log_store ~high:Example_kv.kv_store
      ~map:Example_kv.broken_map ()
  with
  | Refinement.Refines _ -> Alcotest.fail "broken mapping accepted"
  | Refinement.Fails (f, _) ->
      Alcotest.(check string) "fails on a Write" "Write" f.b_action

let test_kv_does_not_refine_log () =
  (* The other direction must fail: Put at a non-contiguous key has no
     counterpart in the log protocol. *)
  match
    Refinement.check ~low:Example_kv.kv_store ~high:Example_kv.log_store
      ~map:(fun s ->
        State.of_list
          [ ("logs", State.get s "table"); ("output", State.get s "output") ])
      ()
  with
  | Refinement.Refines _ -> Alcotest.fail "KV store should not refine the log"
  | Refinement.Fails (f, _) -> Alcotest.(check string) "fails on Put" "Put" f.b_action

(* ---- multi-hop discharge ---- *)

let test_multi_hop () =
  (* A "skipper" that adds 2 refines a unit-step counter only with
     max_hops >= 2. *)
  let counter limit step name =
    let incr =
      Action.make "Incr" (fun s ->
          let x = V.to_int (State.get s "x") in
          if x + step <= limit then
            [ ("", State.set s "x" (V.int (x + step))) ]
          else [])
    in
    Spec.make ~name ~vars:[ "x" ]
      ~init:[ State.of_list [ ("x", V.int 0) ] ]
      [ incr ]
  in
  let low = counter 8 2 "by2" and high = counter 8 1 "by1" in
  (match Refinement.check ~max_hops:1 ~low ~high ~map:Fun.id () with
  | Refinement.Fails _ -> ()
  | Refinement.Refines _ -> Alcotest.fail "single hop should fail");
  match Refinement.check ~max_hops:2 ~low ~high ~map:Fun.id () with
  | Refinement.Refines report ->
      Alcotest.(check (list (pair string int)))
        "two-hop path" [ ("Incr+Incr", 4) ]
        (List.assoc "Incr" report.action_map)
  | Refinement.Fails (f, _) -> Alcotest.failf "2 hops failed at %s" f.b_action

let test_discharge () =
  let high = Example_kv.kv_store in
  let init = List.hd high.Spec.init in
  let s1 = Scenario.step high init ~action:"Put" ~label:"k=0,v=1" in
  (match Refinement.discharge ~high ~max_hops:1 init s1 with
  | Some [ "Put" ] -> ()
  | _ -> Alcotest.fail "expected a one-step Put discharge");
  (match Refinement.discharge ~high ~max_hops:3 init init with
  | Some [] -> ()
  | _ -> Alcotest.fail "expected a stutter");
  (* an unreachable target: table cleared *)
  let impossible = State.set s1 "table" (State.get init "table") in
  let impossible = State.set impossible "output" (V.set [ V.int 1; V.int 2 ]) in
  match Refinement.discharge ~high ~max_hops:3 s1 impossible with
  | None -> ()
  | Some path ->
      Alcotest.failf "unexpected path %s" (String.concat "+" path)

(* ---- the headline result: Raft* refines MultiPaxos (tiny instance) ---- *)

let test_raft_star_refines_multipaxos () =
  let cfg = C.tiny in
  match
    Refinement.check ~max_states:20_000 ~max_hops:4
      ~low:(Spec_raft_star.spec cfg) ~high:(Spec_multipaxos.spec cfg)
      ~map:(Spec_raft_star.to_paxos cfg) ()
  with
  | Refinement.Refines report ->
      (* The machine-checked Figure 3: each Raft* action implies the right
         MultiPaxos action. *)
      let implies b a =
        match List.assoc_opt b report.action_map with
        | Some pairs -> List.mem_assoc a pairs
        | None -> false
      in
      Alcotest.(check bool) "BecomeLeader => BecomeLeader" true
        (implies "BecomeLeader" "BecomeLeader");
      Alcotest.(check bool) "Phase1b => Phase1b" true (implies "Phase1b" "Phase1b");
      Alcotest.(check bool) "AcceptEntries => Accept" true
        (implies "AcceptEntries" "Accept");
      Alcotest.(check bool) "ProposeEntries => Propose" true
        (implies "ProposeEntries" "Propose")
  | Refinement.Fails (f, _) ->
      Alcotest.failf "Raft* should refine MultiPaxos; failed at %s(%s)"
        f.b_action f.b_label

(* ---- the negative result: vanilla Raft's erase step has no Paxos
   counterpart (Section 3's "why Raft cannot be mapped directly") ---- *)

let erase_scenario_cfg =
  { C.acceptors = 3; values = 1; max_ballot = 2; max_index = 2 }

let erase_scenario () =
  let cfg = erase_scenario_cfg in
  let rv = Spec_raft_vanilla.spec cfg in
  let init = List.hd rv.Spec.init in
  let s =
    Scenario.run rv init
      [
        ("IncreaseTerm", "a=0,b=1");
        ("RequestVote", "a=0");
        ("HandleVote", "a=1,b=1");
        ("HandleVote", "a=2,b=1");
        ("BecomeLeader", "a=1,q=12");
        ("ProposeEntries", "a=1,i1=0,i=0,v=1");
        ("AcceptEntries", "a=1,t=1,l=0");
        ("ProposeEntries", "a=1,i1=1,i=1,v=1");
        ("AcceptEntries", "a=1,t=1,l=1");
        ("ProposeEntries", "a=1,i1=2,i=2,v=1");
        ("AcceptEntries", "a=2,t=1,l=0");
        ("AcceptEntries", "a=2,t=1,l=1");
        ("AcceptEntries", "a=2,t=1,l=2");
        ("AcceptEntries", "a=0,t=1,l=0");
        ("IncreaseTerm", "a=2,b=2");
        ("RequestVote", "a=2");
        ("HandleVote", "a=0,b=2");
        ("HandleVote", "a=1,b=2");
        ("BecomeLeader", "a=0,q=01");
        ("ProposeEntries", "a=0,i1=0,i=1,v=1");
      ]
  in
  let s' = Scenario.step rv s ~action:"AcceptEntries" ~label:"a=2,t=2,l=1" in
  (rv, s, s')

let test_vanilla_erase_has_no_counterpart () =
  let cfg = erase_scenario_cfg in
  let _, s, s' = erase_scenario () in
  let mp = Spec_multipaxos.spec cfg in
  let a = Spec_raft_vanilla.to_paxos cfg s in
  let a' = Spec_raft_vanilla.to_paxos cfg s' in
  (* follower 2's accepted value at index 2 vanishes under the mapping *)
  let entry st acc i = V.get (V.get (State.get st "logs") (V.int acc)) (V.int i) in
  Alcotest.(check bool) "had a value" false
    (V.equal (entry a 2 2) Spec_multipaxos.empty_entry);
  Alcotest.(check bool) "erased" true
    (V.equal (entry a' 2 2) Spec_multipaxos.empty_entry);
  match Refinement.discharge ~high:mp ~max_hops:8 a a' with
  | None -> ()
  | Some path ->
      Alcotest.failf "erase step unexpectedly discharged via %s"
        (String.concat "+" path)

let test_vanilla_keeps_log_matching () =
  (* The same scenario does not break vanilla Raft's own invariant. *)
  let cfg = erase_scenario_cfg in
  let rv, s, s' = erase_scenario () in
  ignore rv;
  Alcotest.(check bool) "log matching before" true
    (Spec_raft_vanilla.inv_log_matching cfg s);
  Alcotest.(check bool) "log matching after" true
    (Spec_raft_vanilla.inv_log_matching cfg s')

let () =
  Alcotest.run "refinement"
    [
      ( "figure-4",
        [
          Alcotest.test_case "log refines kv" `Quick test_log_refines_kv;
          Alcotest.test_case "broken map rejected" `Quick test_broken_mapping_rejected;
          Alcotest.test_case "reverse direction fails" `Quick test_kv_does_not_refine_log;
        ] );
      ( "multi-hop",
        [
          Alcotest.test_case "hops" `Quick test_multi_hop;
          Alcotest.test_case "discharge" `Quick test_discharge;
        ] );
      ( "raft-star",
        [
          Alcotest.test_case "refines MultiPaxos (tiny)" `Slow
            test_raft_star_refines_multipaxos;
        ] );
      ( "vanilla-raft",
        [
          Alcotest.test_case "erase has no counterpart" `Quick
            test_vanilla_erase_has_no_counterpart;
          Alcotest.test_case "log matching survives" `Quick
            test_vanilla_keeps_log_matching;
        ] );
    ]
