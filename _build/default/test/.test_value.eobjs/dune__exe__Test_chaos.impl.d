test/test_chaos.ml: Alcotest Int64 List Mencius QCheck QCheck_alcotest Raft Raftpax_consensus Raftpax_sim Types
