test/test_raft_runtime.mli:
