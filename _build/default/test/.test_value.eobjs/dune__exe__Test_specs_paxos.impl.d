test/test_specs_paxos.ml: Action Alcotest Explorer Fmt List Proto_config Raftpax_core Scenario Spec Spec_multipaxos State Value
