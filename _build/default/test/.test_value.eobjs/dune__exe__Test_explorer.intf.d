test/test_explorer.mli:
