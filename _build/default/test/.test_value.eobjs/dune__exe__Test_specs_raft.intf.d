test/test_specs_raft.mli:
