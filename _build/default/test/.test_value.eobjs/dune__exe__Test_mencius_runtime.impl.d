test/test_mencius_runtime.ml: Alcotest Array Fmt Harness Int64 List Mencius Option QCheck QCheck_alcotest Raftpax_consensus Raftpax_kvstore Raftpax_sim Types Workload
