test/test_specs_flexipaxos.ml: Alcotest Explorer Fun List Proto_config Raftpax_core Refinement Spec_flexipaxos Spec_multipaxos Value
