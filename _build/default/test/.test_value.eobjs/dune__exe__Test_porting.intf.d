test/test_porting.mli:
