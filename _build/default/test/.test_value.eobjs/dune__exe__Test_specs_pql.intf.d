test/test_specs_pql.mli:
