test/test_opt_checkpoint.ml: Action Alcotest Explorer List Opt_checkpoint Port Proto_config Raftpax_core Refinement Scenario Spec Spec_multipaxos Spec_raft_star State String Value
