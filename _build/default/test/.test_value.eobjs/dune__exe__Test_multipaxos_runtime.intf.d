test/test_multipaxos_runtime.mli:
