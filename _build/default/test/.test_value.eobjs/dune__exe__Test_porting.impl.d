test/test_porting.ml: Action Alcotest Delta Example_kv Label List Opt_mencius Opt_pql Port Proto_config Raftpax_core Refinement Scenario Spec Spec_multipaxos Spec_raft_star State String Value
