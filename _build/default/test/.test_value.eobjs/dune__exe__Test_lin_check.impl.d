test/test_lin_check.ml: Alcotest Fmt Lin_check List Raftpax_consensus Raftpax_kvstore String
