test/test_specs_paxos.mli:
