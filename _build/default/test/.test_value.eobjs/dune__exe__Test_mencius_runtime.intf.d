test/test_mencius_runtime.mli:
