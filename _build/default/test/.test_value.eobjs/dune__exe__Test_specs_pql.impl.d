test/test_specs_pql.ml: Action Alcotest Explorer List Opt_pql Port Proto_config Raftpax_core Scenario Spec Spec_multipaxos Value
