test/test_specs_flexipaxos.mli:
