test/test_state.ml: Alcotest List QCheck QCheck_alcotest Raftpax_core State Value
