test/test_value.ml: Alcotest List QCheck QCheck_alcotest Raftpax_core Stdlib Value
