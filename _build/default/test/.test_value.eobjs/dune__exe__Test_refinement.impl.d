test/test_refinement.ml: Action Alcotest Example_kv Fun List Proto_config Raftpax_core Refinement Scenario Spec Spec_multipaxos Spec_raft_star Spec_raft_vanilla State String Value
