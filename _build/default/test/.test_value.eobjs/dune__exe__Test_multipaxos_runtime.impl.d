test/test_multipaxos_runtime.ml: Alcotest Fmt List Multipaxos Raftpax_consensus Raftpax_sim Types
