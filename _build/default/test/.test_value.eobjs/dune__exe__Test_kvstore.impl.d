test/test_kvstore.ml: Alcotest Fmt Harness List Raftpax_consensus Raftpax_kvstore Raftpax_sim Workload
