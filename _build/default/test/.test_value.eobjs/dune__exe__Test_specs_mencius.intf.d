test/test_specs_mencius.mli:
