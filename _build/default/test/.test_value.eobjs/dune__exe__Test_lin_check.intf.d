test/test_lin_check.mli:
