test/test_vec.ml: Alcotest List QCheck QCheck_alcotest Raftpax_consensus Vec
