test/test_raft_runtime.ml: Alcotest Array Fmt Harness Int64 List Option QCheck QCheck_alcotest Raft Raftpax_consensus Raftpax_kvstore Raftpax_sim Types Workload
