test/test_explorer.ml: Action Alcotest Explorer Fmt List Raftpax_core Scenario Spec State Value
