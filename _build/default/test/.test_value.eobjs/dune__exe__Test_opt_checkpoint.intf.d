test/test_opt_checkpoint.mli:
