test/test_specs_mencius.ml: Action Alcotest Explorer Fmt Label List Opt_mencius Port Proto_config Raftpax_core Scenario Spec Spec_multipaxos String Value
