test/test_specs_raft.ml: Action Alcotest Explorer Fmt List Proto_config Raftpax_core Scenario Spec Spec_multipaxos Spec_raft_star State String Value
