open Raftpax_core
module V = Value
module C = Proto_config

let tiny = C.tiny

let test_invariants_exhaustive () =
  match
    Explorer.check ~max_states:50_000
      ~invariants:(Spec_multipaxos.invariants tiny)
      (Spec_multipaxos.spec tiny)
  with
  | Explorer.Pass stats ->
      Alcotest.(check bool) "complete" true stats.complete;
      Alcotest.(check bool) "nontrivial" true (stats.states > 1000)
  | r -> Alcotest.failf "%a" Explorer.pp_result r

let test_invariants_small_bounded () =
  match
    Explorer.check ~max_states:15_000
      ~invariants:
        [
          ("OneValuePerBallot", Spec_multipaxos.inv_one_value_per_ballot C.small);
          ("Agreement", Spec_multipaxos.inv_agreement C.small);
        ]
      (Spec_multipaxos.spec C.small)
  with
  | Explorer.Pass _ -> ()
  | r -> Alcotest.failf "%a" Explorer.pp_result r

(* Regression for the hole we found in the paper's B.1 Propose: without the
   proposal-uniqueness guard, a leader can propose two different values for
   the same (index, ballot) and break OneValuePerBallot.  We reconstruct
   the unguarded action and check the explorer finds the violation. *)
let test_unguarded_propose_breaks_safety () =
  let cfg = C.small in
  let spec = Spec_multipaxos.spec cfg in
  let unguarded_propose =
    Action.make "ProposeUnguarded" (fun s ->
        List.concat_map
          (fun a ->
            let leading =
              V.to_bool (V.get (State.get s "isLeader") (V.int a))
            in
            if not leading then []
            else
              let bal = V.to_int (V.get (State.get s "highestBallot") (V.int a)) in
              List.concat_map
                (fun i ->
                  List.map
                    (fun v ->
                      let pv = V.tuple [ V.int i; V.int bal; V.int v ] in
                      ( Fmt.str "a=%d,i=%d,v=%d" a i v,
                        State.set s "proposedValues"
                          (V.set_add pv (State.get s "proposedValues")) ))
                    (C.value_ids cfg))
                (C.indexes cfg))
          (C.acceptor_ids cfg))
  in
  let buggy =
    Spec.make ~name:"MultiPaxosUnguarded" ~vars:spec.Spec.vars
      ~init:spec.Spec.init
      (unguarded_propose
      :: List.filter (fun (a : Action.t) -> a.name <> "Propose") spec.Spec.actions)
  in
  match
    Explorer.check ~max_states:200_000
      ~invariants:
        [ ("OneValuePerBallot", Spec_multipaxos.inv_one_value_per_ballot cfg) ]
      buggy
  with
  | Explorer.Violation { invariant = "OneValuePerBallot"; _ } -> ()
  | r -> Alcotest.failf "expected the B.1 bug to reproduce, got %a" Explorer.pp_result r

(* ---- helper-level unit tests on hand-built states ---- *)

let drive picks =
  let spec = Spec_multipaxos.spec tiny in
  Scenario.run spec (List.hd spec.Spec.init) picks

let election =
  [
    ("IncreaseHighestBallot", "a=0,b=1");
    ("Phase1a", "a=0");
    ("Phase1b", "a=1,b=1");
    ("Phase1b", "a=2,b=1");
    ("BecomeLeader", "a=1,q=12");
  ]

let test_chosen_after_quorum () =
  let s =
    drive
      (election
      @ [
          ("Propose", "a=1,i=0,v=1");
          ("Accept", "a=1,i=0,b=1,v=1");
          ("Accept", "a=2,i=0,b=1,v=1");
        ])
  in
  Alcotest.(check bool) "chosen at quorum" true
    (Spec_multipaxos.chosen_at tiny s ~idx:0 ~bal:1 (V.int 1));
  Alcotest.(check (list (of_pp V.pp))) "chosen values" [ V.int 1 ]
    (Spec_multipaxos.chosen_values tiny s ~idx:0)

let test_not_chosen_below_quorum () =
  let s =
    drive (election @ [ ("Propose", "a=1,i=0,v=1"); ("Accept", "a=1,i=0,b=1,v=1") ])
  in
  Alcotest.(check bool) "one vote is not chosen" false
    (Spec_multipaxos.chosen_at tiny s ~idx:0 ~bal:1 (V.int 1))

let test_voted_for () =
  let s =
    drive (election @ [ ("Propose", "a=1,i=0,v=1"); ("Accept", "a=2,i=0,b=1,v=1") ])
  in
  Alcotest.(check bool) "acceptor 2 voted" true
    (Spec_multipaxos.voted_for s ~acc:2 ~idx:0 ~bal:1 (V.int 1));
  Alcotest.(check bool) "acceptor 0 did not" false
    (Spec_multipaxos.voted_for s ~acc:0 ~idx:0 ~bal:1 (V.int 1))

let test_highest_ballot_entry () =
  let log bal v =
    V.fn [ (V.int 0, Spec_multipaxos.entry bal (V.int v)) ]
  in
  let best = Spec_multipaxos.highest_ballot_entry [ log 0 1; log 1 2 ] 0 in
  Alcotest.(check bool) "picks higher ballot" true
    (V.equal best (Spec_multipaxos.entry 1 (V.int 2)));
  let none = Spec_multipaxos.highest_ballot_entry [] 0 in
  Alcotest.(check bool) "empty is empty_entry" true
    (V.equal none Spec_multipaxos.empty_entry)

let test_stale_leader_cannot_overwrite () =
  (* After a value is chosen at ballot 1, any later-ballot leader must
     adopt it: explore forward from a chosen state and assert Agreement. *)
  let s =
    drive
      (election
      @ [
          ("Propose", "a=1,i=0,v=1");
          ("Accept", "a=1,i=0,b=1,v=1");
          ("Accept", "a=2,i=0,b=1,v=1");
        ])
  in
  let spec = Spec_multipaxos.spec tiny in
  let from_chosen = Spec.make ~name:"fc" ~vars:spec.Spec.vars ~init:[ s ] spec.Spec.actions in
  match
    Explorer.check ~max_states:30_000
      ~invariants:[ ("Agreement", Spec_multipaxos.inv_agreement tiny) ]
      from_chosen
  with
  | Explorer.Pass _ -> ()
  | r -> Alcotest.failf "%a" Explorer.pp_result r

let () =
  Alcotest.run "specs_paxos"
    [
      ( "model-checking",
        [
          Alcotest.test_case "tiny exhaustive" `Slow test_invariants_exhaustive;
          Alcotest.test_case "small bounded" `Slow test_invariants_small_bounded;
          Alcotest.test_case "B.1 Propose bug reproduces" `Slow
            test_unguarded_propose_breaks_safety;
        ] );
      ( "scenarios",
        [
          Alcotest.test_case "chosen after quorum" `Quick test_chosen_after_quorum;
          Alcotest.test_case "not chosen below quorum" `Quick test_not_chosen_below_quorum;
          Alcotest.test_case "voted_for" `Quick test_voted_for;
          Alcotest.test_case "highest ballot entry" `Quick test_highest_ballot_entry;
          Alcotest.test_case "chosen values stable" `Slow test_stale_leader_cannot_overwrite;
        ] );
    ]
