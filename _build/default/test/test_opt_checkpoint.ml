open Raftpax_core
module V = Value
module C = Proto_config

let tiny = C.tiny
let delta = Opt_checkpoint.delta tiny
let spec = Port.apply delta (Spec_multipaxos.spec tiny)
let init = List.hd spec.Spec.init

let election =
  [
    ("IncreaseHighestBallot", "a=0,b=1");
    ("Phase1a", "a=0");
    ("Phase1b", "a=1,b=1");
    ("Phase1b", "a=2,b=1");
    ("BecomeLeader", "a=1,q=12");
  ]

let choose_value =
  election
  @ [
      ("Propose", "a=1,i=0,v=1");
      ("Accept", "a=1,i=0,b=1,v=1");
      ("Accept", "a=2,i=0,b=1,v=1");
    ]

let test_non_mutating () =
  match
    Port.check_non_mutating ~max_states:10_000
      ~base:(Spec_multipaxos.spec tiny) ~delta ()
  with
  | Refinement.Refines _ -> ()
  | Refinement.Fails (f, _) ->
      Alcotest.failf "checkpoint delta must be non-mutating; fails at %s" f.b_action

let test_apply_requires_chosen () =
  let s = Scenario.run spec init election in
  let applies = (Spec.find_action spec "ApplyInOrder").Action.enum s in
  Alcotest.(check (list string)) "nothing chosen, nothing applies" []
    (List.map fst applies);
  let s = Scenario.run spec s (List.filteri (fun i _ -> i >= 5) choose_value) in
  ignore s

let test_apply_then_checkpoint () =
  let s = Scenario.run spec init choose_value in
  (* acceptor 2 applies the chosen instance, then checkpoints it *)
  let s = Scenario.step spec s ~action:"ApplyInOrder" ~label:"a=2,i=0" in
  Alcotest.(check int) "applied" 0 (Opt_checkpoint.apply_index s 2);
  Alcotest.(check int) "not checkpointed yet" (-1) (Opt_checkpoint.checkpoint_at s 2);
  let s = Scenario.step spec s ~action:"TakeCheckpoint" ~label:"a=2,upto=0" in
  Alcotest.(check int) "checkpointed" 0 (Opt_checkpoint.checkpoint_at s 2);
  let snap = V.get (State.get s "checkpointVal") (V.int 2) in
  Alcotest.(check bool) "snapshot holds the chosen value" true
    (V.equal (V.get snap (V.int 0)) (V.int 1))

let test_checkpoint_needs_progress () =
  let s = Scenario.run spec init choose_value in
  let s = Scenario.step spec s ~action:"ApplyInOrder" ~label:"a=2,i=0" in
  let s = Scenario.step spec s ~action:"TakeCheckpoint" ~label:"a=2,upto=0" in
  (* a second checkpoint without further applies is disabled *)
  let cps = (Spec.find_action spec "TakeCheckpoint").Action.enum s in
  Alcotest.(check bool) "no redundant checkpoint" true
    (List.for_all (fun (l, _) -> not (String.length l > 3 && String.sub l 0 4 = "a=2,")) cps)

let test_invariants_bounded () =
  match
    Explorer.check ~max_states:40_000
      ~invariants:(Opt_checkpoint.invariants tiny @ Spec_multipaxos.invariants tiny)
      spec
  with
  | Explorer.Pass _ -> ()
  | r -> Alcotest.failf "%a" Explorer.pp_result r

(* The paper's Section-2.2 payoff: port the checkpoint optimization to
   Raft* automatically; the applied "instance id" becomes the log index
   with no manual reasoning, and the Figure-5 obligations hold. *)
let raft_implies = function
  | "IncreaseHighestBallot" -> [ "IncreaseHighestBallot" ]
  | "Phase1a" -> [ "Phase1a" ]
  | "Phase1b" -> [ "Phase1b" ]
  | "BecomeLeader" -> [ "BecomeLeader" ]
  | "ProposeEntries" -> [ "Propose" ]
  | "AcceptEntries" -> [ "Accept" ]
  | _ -> []

let test_ported_to_raft_star () =
  let r1, r2 =
    Port.check_ported ~max_states:8_000 ~max_hops:4
      ~low:(Spec_raft_star.spec tiny) ~high:(Spec_multipaxos.spec tiny) ~delta
      ~map:(Spec_raft_star.to_paxos tiny) ~implies:raft_implies ()
  in
  (match r1 with
  | Refinement.Refines _ -> ()
  | Refinement.Fails (f, _) ->
      Alcotest.failf "Raft*-checkpoint => checkpoint fails at %s" f.b_action);
  match r2 with
  | Refinement.Refines _ -> ()
  | Refinement.Fails (f, _) ->
      Alcotest.failf "Raft*-checkpoint => Raft* fails at %s" f.b_action

let test_ported_checkpoint_uses_log_index () =
  (* drive the generated Raft*-checkpoint spec and watch the checkpoint
     record a log index *)
  let low =
    Port.port delta ~low:(Spec_raft_star.spec tiny)
      ~map:(Spec_raft_star.to_paxos tiny) ~implies:raft_implies ()
  in
  let s =
    Scenario.run low (List.hd low.Spec.init)
      [
        ("IncreaseHighestBallot", "a=0,b=1");
        ("Phase1a", "a=0");
        ("Phase1b", "a=1,b=1");
        ("Phase1b", "a=2,b=1");
        ("BecomeLeader", "a=1,q=12");
        ("ProposeEntries", "a=1,i1=0,i=0,v=1");
        ("AcceptEntries", "a=1,t=1,l=0");
        ("AcceptEntries", "a=2,t=1,l=0");
        ("ApplyInOrder", "a=2,i=0");
        ("TakeCheckpoint", "a=2,upto=0");
      ]
  in
  Alcotest.(check int) "checkpointed log index 0" 0 (Opt_checkpoint.checkpoint_at s 2)

let () =
  Alcotest.run "opt_checkpoint"
    [
      ( "paxos-side",
        [
          Alcotest.test_case "non-mutating" `Quick test_non_mutating;
          Alcotest.test_case "apply needs chosen" `Quick test_apply_requires_chosen;
          Alcotest.test_case "apply then checkpoint" `Quick test_apply_then_checkpoint;
          Alcotest.test_case "no redundant checkpoints" `Quick test_checkpoint_needs_progress;
          Alcotest.test_case "invariants (bounded)" `Slow test_invariants_bounded;
        ] );
      ( "ported",
        [
          Alcotest.test_case "figure-5 obligations" `Slow test_ported_to_raft_star;
          Alcotest.test_case "instance id becomes log index" `Quick
            test_ported_checkpoint_uses_log_index;
        ] );
    ]
