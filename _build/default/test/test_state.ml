open Raftpax_core
module V = Value

let check_state = Alcotest.testable State.pp State.equal

let s0 =
  State.of_list [ ("x", V.int 1); ("y", V.bool true); ("z", V.set []) ]

let test_get_set () =
  Alcotest.(check bool) "get x" true (V.equal (State.get s0 "x") (V.int 1));
  let s1 = State.set s0 "x" (V.int 9) in
  Alcotest.(check bool) "set x" true (V.equal (State.get s1 "x") (V.int 9));
  Alcotest.(check bool) "s0 unchanged" true (V.equal (State.get s0 "x") (V.int 1))

let test_unbound () =
  Alcotest.check_raises "unbound read"
    (Invalid_argument "State.get: unbound variable nope") (fun () ->
      ignore (State.get s0 "nope"))

let test_vars () =
  Alcotest.(check (list string)) "vars sorted" [ "x"; "y"; "z" ] (State.vars s0)

let test_restrict () =
  let r = State.restrict s0 [ "x"; "z"; "missing" ] in
  Alcotest.(check (list string)) "restricted" [ "x"; "z" ] (State.vars r)

let test_merge () =
  let overlay = State.of_list [ ("x", V.int 42); ("w", V.int 7) ] in
  let m = State.merge s0 overlay in
  Alcotest.(check bool) "overlay wins" true (V.equal (State.get m "x") (V.int 42));
  Alcotest.(check bool) "base kept" true (V.equal (State.get m "y") V.tt);
  Alcotest.(check bool) "overlay added" true (V.equal (State.get m "w") (V.int 7))

let test_unchanged () =
  let s1 = State.set s0 "x" (V.int 2) in
  Alcotest.(check bool) "x changed" false (State.unchanged s0 s1 [ "x" ]);
  Alcotest.(check bool) "y unchanged" true (State.unchanged s0 s1 [ "y"; "z" ])

let test_compare () =
  Alcotest.(check check_state) "round trip" s0 (State.of_list (State.to_list s0));
  let s1 = State.set s0 "x" (V.int 2) in
  Alcotest.(check bool) "different" false (State.equal s0 s1)

(* restrict-then-merge with the complement reconstructs the state *)
let prop_restrict_merge =
  QCheck.Test.make ~name:"restrict/merge partition" ~count:100
    QCheck.(small_list (pair (string_of_size (QCheck.Gen.return 3)) small_int))
    (fun kvs ->
      let kvs = List.sort_uniq (fun (a, _) (b, _) -> compare a b) kvs in
      let s = State.of_list (List.map (fun (k, v) -> (k, V.int v)) kvs) in
      let names = State.vars s in
      let half = List.filteri (fun i _ -> i mod 2 = 0) names in
      let other = List.filteri (fun i _ -> i mod 2 = 1) names in
      State.equal s (State.merge (State.restrict s half) (State.restrict s other)))

let () =
  Alcotest.run "state"
    [
      ( "basics",
        [
          Alcotest.test_case "get/set" `Quick test_get_set;
          Alcotest.test_case "unbound" `Quick test_unbound;
          Alcotest.test_case "vars" `Quick test_vars;
          Alcotest.test_case "restrict" `Quick test_restrict;
          Alcotest.test_case "merge" `Quick test_merge;
          Alcotest.test_case "unchanged" `Quick test_unchanged;
          Alcotest.test_case "compare" `Quick test_compare;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest [ prop_restrict_merge ] );
    ]
