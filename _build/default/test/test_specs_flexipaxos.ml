open Raftpax_core
module V = Value
module C = Proto_config

(* 3 acceptors, 2 values, 2 ballots, one slot: big enough for the
   FPaxos intersection argument to have teeth. *)
let base = { C.acceptors = 3; values = 2; max_ballot = 2; max_index = 0 }

let test_make_validates () =
  match Spec_flexipaxos.make base ~q1:0 ~q2:2 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "q1=0 accepted"

let test_intersecting () =
  Alcotest.(check bool) "3+1>3" true
    (Spec_flexipaxos.intersecting (Spec_flexipaxos.make base ~q1:3 ~q2:1));
  Alcotest.(check bool) "2+1=3" false
    (Spec_flexipaxos.intersecting (Spec_flexipaxos.make base ~q1:2 ~q2:1))

let test_quorum_enumeration () =
  let t = Spec_flexipaxos.make base ~q1:2 ~q2:1 in
  Alcotest.(check int) "3 choose 2" 3 (List.length (Spec_flexipaxos.phase1_quorums t));
  Alcotest.(check int) "3 choose 1" 3 (List.length (Spec_flexipaxos.phase2_quorums t))

(* Safety holds when quorums intersect — even with a tiny Phase-2 quorum,
   because Phase 1 then contacts everyone. *)
let test_safe_when_intersecting () =
  let t = Spec_flexipaxos.make base ~q1:3 ~q2:1 in
  match
    Explorer.check ~max_states:120_000
      ~invariants:(Spec_flexipaxos.invariants t)
      (Spec_flexipaxos.spec t)
  with
  | Explorer.Pass _ -> ()
  | r -> Alcotest.failf "%a" Explorer.pp_result r

(* ... and the explorer finds the agreement violation when they do not
   (q1 = 2, q2 = 1 on three acceptors): the FPaxos impossibility
   direction, machine-exhibited. *)
let test_unsafe_without_intersection () =
  let t = Spec_flexipaxos.make base ~q1:2 ~q2:1 in
  Alcotest.(check bool) "not intersecting" false (Spec_flexipaxos.intersecting t);
  match
    Explorer.check ~max_states:400_000
      ~invariants:(Spec_flexipaxos.invariants t)
      (Spec_flexipaxos.spec t)
  with
  | Explorer.Violation { invariant = "FlexAgreement"; trace; _ } ->
      Alcotest.(check bool) "nontrivial trace" true (List.length trace > 5)
  | r -> Alcotest.failf "expected a violation, got %a" Explorer.pp_result r

(* The paper's Figure-6 arrow: Paxos refines Flexible Paxos (a majority
   run is an FPaxos run) under the identity mapping. *)
let test_paxos_refines_fpaxos () =
  let majority = (base.C.acceptors / 2) + 1 in
  let t = Spec_flexipaxos.make base ~q1:majority ~q2:majority in
  match
    Refinement.check ~max_states:30_000 ~low:(Spec_multipaxos.spec base)
      ~high:(Spec_flexipaxos.spec t) ~map:Fun.id ()
  with
  | Refinement.Refines _ -> ()
  | Refinement.Fails (f, _) ->
      Alcotest.failf "Paxos should refine FPaxos; fails at %s" f.b_action

(* ... but not the other way around: an FPaxos run electing a leader with
   a full Phase-1 quorum of size 3 has BecomeLeader transitions Paxos
   (which only offers majority-sized quorums) cannot mirror when the
   adopted log differs; conversely, with q1 below the majority, FPaxos
   elects leaders Paxos cannot.  We check the q1 = 2-but-different-shape
   case: q1 = 1. *)
let test_fpaxos_does_not_refine_paxos () =
  let t = Spec_flexipaxos.make base ~q1:1 ~q2:3 in
  match
    Refinement.check ~max_states:60_000 ~low:(Spec_flexipaxos.spec t)
      ~high:(Spec_multipaxos.spec base) ~map:Fun.id ()
  with
  | Refinement.Refines _ ->
      Alcotest.fail "FPaxos(q1=1) should not refine majority Paxos"
  | Refinement.Fails (f, _) ->
      Alcotest.(check string) "fails on the election" "BecomeLeader" f.b_action

let () =
  Alcotest.run "specs_flexipaxos"
    [
      ( "structure",
        [
          Alcotest.test_case "validation" `Quick test_make_validates;
          Alcotest.test_case "intersection" `Quick test_intersecting;
          Alcotest.test_case "enumeration" `Quick test_quorum_enumeration;
        ] );
      ( "model-checking",
        [
          Alcotest.test_case "safe when intersecting" `Slow test_safe_when_intersecting;
          Alcotest.test_case "unsafe without intersection" `Slow
            test_unsafe_without_intersection;
        ] );
      ( "figure-6",
        [
          Alcotest.test_case "Paxos => FPaxos" `Slow test_paxos_refines_fpaxos;
          Alcotest.test_case "FPaxos =/=> Paxos" `Slow test_fpaxos_does_not_refine_paxos;
        ] );
    ]
