open Raftpax_core
module V = Value

(* A bounded counter: increment by 1 or 2, never past [limit]. *)
let counter_spec limit =
  let incr_by k =
    Action.make (Fmt.str "Incr%d" k) (fun s ->
        let x = V.to_int (State.get s "x") in
        if x + k <= limit then
          [ (Fmt.str "x=%d" (x + k), State.set s "x" (V.int (x + k))) ]
        else [])
  in
  Spec.make ~name:"counter" ~vars:[ "x" ]
    ~init:[ State.of_list [ ("x", V.int 0) ] ]
    [ incr_by 1; incr_by 2 ]

let test_exhaustive () =
  match
    Explorer.check ~invariants:[ ("le", fun s -> V.to_int (State.get s "x") <= 10) ]
      (counter_spec 10)
  with
  | Explorer.Pass stats ->
      Alcotest.(check int) "11 states" 11 stats.states;
      Alcotest.(check bool) "complete" true stats.complete
  | r -> Alcotest.failf "expected pass, got %a" Explorer.pp_result r

let test_violation_shortest_trace () =
  (* x never reaches 7 — false, and the shortest path uses Incr2. *)
  match
    Explorer.check
      ~invariants:[ ("never7", fun s -> V.to_int (State.get s "x") <> 7) ]
      (counter_spec 10)
  with
  | Explorer.Violation { invariant; trace; _ } ->
      Alcotest.(check string) "which invariant" "never7" invariant;
      (* init + 4 steps: 0 -2-> 2 -2-> 4 -2-> 6 -1-> 7 is depth 4 *)
      Alcotest.(check int) "shortest trace" 5 (List.length trace)
  | r -> Alcotest.failf "expected violation, got %a" Explorer.pp_result r

let test_max_states_bounds () =
  match Explorer.check ~max_states:3 ~invariants:[] (counter_spec 100) with
  | Explorer.Pass stats ->
      Alcotest.(check int) "bounded states" 3 stats.states;
      Alcotest.(check bool) "incomplete" false stats.complete
  | r -> Alcotest.failf "expected bounded pass, got %a" Explorer.pp_result r

let test_deadlock_detection () =
  match
    Explorer.check ~check_deadlock:true ~invariants:[] (counter_spec 3)
  with
  | Explorer.Deadlock { trace; _ } ->
      (* the counter sticks at 2 (can't add 2) ... actually at 3 or 2 *)
      let final = (List.nth trace (List.length trace - 1)).Explorer.state in
      let x = V.to_int (State.get final "x") in
      Alcotest.(check bool) "stuck near limit" true (x = 2 || x = 3)
  | r -> Alcotest.failf "expected deadlock, got %a" Explorer.pp_result r

let test_deadlock_ignored_by_default () =
  match Explorer.check ~invariants:[] (counter_spec 3) with
  | Explorer.Pass _ -> ()
  | r -> Alcotest.failf "expected pass, got %a" Explorer.pp_result r

let test_reachable () =
  let states, stats = Explorer.reachable (counter_spec 5) in
  Alcotest.(check int) "6 states" 6 (List.length states);
  Alcotest.(check int) "stats agree" 6 stats.states

let test_ill_formed_action_rejected () =
  let bad =
    Spec.make ~name:"bad" ~vars:[ "x" ]
      ~init:[ State.of_list [ ("x", V.int 0) ] ]
      [
        Action.simple "Oops" (fun s ->
            Some (State.set s "rogue" (V.int 1)));
      ]
  in
  Alcotest.check_raises "ill-formed state detected"
    (Invalid_argument "Explorer: action Oops of bad produced ill-formed state")
    (fun () -> ignore (Explorer.check ~invariants:[] bad))

let test_scenario_driving () =
  let spec = counter_spec 10 in
  let s =
    Scenario.run spec (List.hd spec.Spec.init)
      [ ("Incr2", ""); ("Incr2", ""); ("Incr1", "") ]
  in
  Alcotest.(check int) "reached 5" 5 (V.to_int (State.get s "x"))

let test_scenario_bad_pick () =
  let spec = counter_spec 2 in
  let s = Scenario.run spec (List.hd spec.Spec.init) [ ("Incr2", "") ] in
  (* Incr2 is disabled at x=2 *)
  match Scenario.step spec s ~action:"Incr2" ~label:"" with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "expected Failure on disabled action"

let () =
  Alcotest.run "explorer"
    [
      ( "check",
        [
          Alcotest.test_case "exhaustive pass" `Quick test_exhaustive;
          Alcotest.test_case "shortest violation" `Quick test_violation_shortest_trace;
          Alcotest.test_case "max_states" `Quick test_max_states_bounds;
          Alcotest.test_case "deadlock found" `Quick test_deadlock_detection;
          Alcotest.test_case "deadlock off by default" `Quick test_deadlock_ignored_by_default;
          Alcotest.test_case "reachable" `Quick test_reachable;
          Alcotest.test_case "ill-formed action" `Quick test_ill_formed_action_rejected;
        ] );
      ( "scenario",
        [
          Alcotest.test_case "driving" `Quick test_scenario_driving;
          Alcotest.test_case "bad pick" `Quick test_scenario_bad_pick;
        ] );
    ]
