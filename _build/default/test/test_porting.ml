open Raftpax_core
module V = Value
module C = Proto_config

(* ---- Label / parameter-mapping helpers ---- *)

let test_label_parse () =
  Alcotest.(check (list (pair string string)))
    "parse"
    [ ("a", "1"); ("i1", "0"); ("v", "2") ]
    (Label.parse "a=1,i1=0,v=2");
  Alcotest.(check int) "get_int" 2 (Label.get_int "a=1,v=2" "v");
  Alcotest.(check (option string)) "absent" None (Label.get_opt "a=1" "z");
  Alcotest.(check string) "keep" "a=1,v=2" (Label.keep [ "a"; "v" ] "a=1,i1=0,v=2");
  Alcotest.(check (list (pair string string))) "empty" [] (Label.parse "")

(* ---- Figure 4: applying Δ to A gives AΔ ---- *)

let kv_opt = Port.apply Example_kv.size_delta Example_kv.kv_store

let size_of s = V.to_int (State.get s "size")

let test_apply_adds_size () =
  let init = List.hd kv_opt.Spec.init in
  Alcotest.(check int) "initial size" 0 (size_of init);
  let s1 = Scenario.step kv_opt init ~action:"Put" ~label:"k=0,v=1" in
  Alcotest.(check int) "first write counted" 1 (size_of s1);
  (* overwriting key 0 is filtered by the Figure-4c guard (table[k] = {}) *)
  let puts = (Spec.find_action kv_opt "Put").Action.enum s1 in
  Alcotest.(check bool) "no second write to key 0" true
    (List.for_all (fun (l, _) -> not (String.length l >= 3 && String.sub l 0 3 = "k=0")) puts);
  let s2 = Scenario.step kv_opt s1 ~action:"Put" ~label:"k=1,v=2" in
  Alcotest.(check int) "second key counted" 2 (size_of s2);
  (* Get does not touch size *)
  let s3 = Scenario.step kv_opt s2 ~action:"Get" ~label:"k=1" in
  Alcotest.(check int) "get leaves size" 2 (size_of s3)

let test_apply_is_non_mutating () =
  match
    Port.check_non_mutating ~base:Example_kv.kv_store
      ~delta:Example_kv.size_delta ()
  with
  | Refinement.Refines report ->
      Alcotest.(check bool) "complete" true report.complete
  | Refinement.Fails (f, _) ->
      Alcotest.failf "size counter should be non-mutating; fails at %s" f.b_action

(* A deliberately mutating "optimization" must be rejected. *)
let test_mutating_delta_detected () =
  let evil =
    Delta.make ~name:"Evil" ~delta_vars:[ "size" ]
      ~delta_init:(State.of_list [ ("size", V.int 0) ])
      [
        Delta.added "Smash" (fun ~a_view:_ ~d_state ->
            (* tries to sneak a base variable into its output *)
            [ ("", State.set d_state "output" (V.set [ V.int 1 ])) ]);
      ]
  in
  match Port.check_non_mutating ~base:Example_kv.kv_store ~delta:evil () with
  | Refinement.Refines _ -> Alcotest.fail "mutating delta accepted"
  | Refinement.Fails (f, _) -> Alcotest.(check string) "caught" "Smash" f.b_action

(* ---- Figure 4d: porting Δ from A to B ---- *)

let log_opt =
  Port.port Example_kv.size_delta ~low:Example_kv.log_store
    ~map:Example_kv.log_to_kv ~implies:Example_kv.implies
    ~label_map:Example_kv.label_map ()

let test_ported_spec_shape () =
  Alcotest.(check bool) "has size var" true (List.mem "size" log_opt.Spec.vars);
  Alcotest.(check bool) "keeps logs var" true (List.mem "logs" log_opt.Spec.vars)

let test_ported_counts_writes () =
  let init = List.hd log_opt.Spec.init in
  let s1 = Scenario.step log_opt init ~action:"Write" ~label:"i=0,v=1" in
  Alcotest.(check int) "counted" 1 (size_of s1);
  let s2 = Scenario.step log_opt s1 ~action:"Write" ~label:"i=1,v=1" in
  Alcotest.(check int) "counted again" 2 (size_of s2);
  (* non-contiguous writes are still forbidden (B's own guard survives) *)
  let writes = (Spec.find_action log_opt "Write").Action.enum init in
  Alcotest.(check bool) "only i=0 enabled initially" true
    (List.for_all (fun (l, _) -> String.sub l 0 3 = "i=0") writes)

let test_figure5_obligations () =
  let r1, r2 =
    Port.check_ported ~low:Example_kv.log_store ~high:Example_kv.kv_store
      ~delta:Example_kv.size_delta ~map:Example_kv.log_to_kv
      ~implies:Example_kv.implies ~label_map:Example_kv.label_map ()
  in
  (match r1 with
  | Refinement.Refines _ -> ()
  | Refinement.Fails (f, _) ->
      Alcotest.failf "BΔ must refine AΔ; fails at %s(%s)" f.b_action f.b_label);
  match r2 with
  | Refinement.Refines _ -> ()
  | Refinement.Fails (f, _) ->
      Alcotest.failf "BΔ must refine B; fails at %s(%s)" f.b_action f.b_label

(* ---- the real ports: PQL and Mencius onto Raft* (bounded checks) ---- *)

let raft_implies = function
  | "IncreaseHighestBallot" -> [ "IncreaseHighestBallot" ]
  | "Phase1a" -> [ "Phase1a" ]
  | "Phase1b" -> [ "Phase1b" ]
  | "BecomeLeader" -> [ "BecomeLeader" ]
  | "ProposeEntries" -> [ "Propose" ]
  | "AcceptEntries" -> [ "Accept" ]
  | _ -> []

let raft_label_map ~b_action ~a_action:_ label =
  match b_action with
  | "ProposeEntries" -> Label.keep [ "a"; "i"; "v" ] label
  | _ -> label

let check_port_pair name (r1, r2) =
  (match r1 with
  | Refinement.Refines _ -> ()
  | Refinement.Fails (f, _) ->
      Alcotest.failf "%s: BΔ => AΔ fails at %s(%s)" name f.b_action f.b_label);
  match r2 with
  | Refinement.Refines _ -> ()
  | Refinement.Fails (f, _) ->
      Alcotest.failf "%s: BΔ => B fails at %s(%s)" name f.b_action f.b_label

let test_pql_port () =
  let cfg = C.tiny in
  check_port_pair "PQL"
    (Port.check_ported ~max_states:8_000 ~max_hops:4
       ~low:(Spec_raft_star.spec cfg) ~high:(Spec_multipaxos.spec cfg)
       ~delta:(Opt_pql.delta cfg) ~map:(Spec_raft_star.to_paxos cfg)
       ~implies:raft_implies ~label_map:raft_label_map ())

let test_pql_non_mutating () =
  let cfg = C.tiny in
  match
    Port.check_non_mutating ~max_states:8_000
      ~base:(Spec_multipaxos.spec cfg) ~delta:(Opt_pql.delta cfg) ()
  with
  | Refinement.Refines _ -> ()
  | Refinement.Fails (f, _) ->
      Alcotest.failf "PQL must be non-mutating; fails at %s" f.b_action

let test_mencius_port () =
  let cfg = C.tiny in
  check_port_pair "Mencius"
    (Port.check_ported ~max_states:8_000 ~max_hops:4
       ~low:(Spec_raft_star.spec cfg) ~high:(Spec_multipaxos.spec cfg)
       ~delta:(Opt_mencius.delta cfg) ~map:(Spec_raft_star.to_paxos cfg)
       ~implies:raft_implies ~label_map:raft_label_map ())

let test_mencius_non_mutating () =
  let cfg = C.tiny in
  match
    Port.check_non_mutating ~max_states:8_000
      ~base:(Spec_multipaxos.spec cfg) ~delta:(Opt_mencius.delta cfg) ()
  with
  | Refinement.Refines _ -> ()
  | Refinement.Fails (f, _) ->
      Alcotest.failf "Mencius must be non-mutating; fails at %s" f.b_action

(* delta vars must not clash with protocol vars *)
let test_var_clash_rejected () =
  let clash =
    Delta.make ~name:"Clash" ~delta_vars:[ "table" ]
      ~delta_init:(State.of_list [ ("table", V.int 0) ])
      []
  in
  match Port.apply clash Example_kv.kv_store with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "clashing delta accepted"

let () =
  Alcotest.run "porting"
    [
      ("labels", [ Alcotest.test_case "parse/keep" `Quick test_label_parse ]);
      ( "figure-4",
        [
          Alcotest.test_case "apply adds size" `Quick test_apply_adds_size;
          Alcotest.test_case "non-mutating" `Quick test_apply_is_non_mutating;
          Alcotest.test_case "mutating detected" `Quick test_mutating_delta_detected;
          Alcotest.test_case "ported shape" `Quick test_ported_spec_shape;
          Alcotest.test_case "ported counts" `Quick test_ported_counts_writes;
          Alcotest.test_case "figure-5 obligations" `Quick test_figure5_obligations;
          Alcotest.test_case "var clash" `Quick test_var_clash_rejected;
        ] );
      ( "case-studies",
        [
          Alcotest.test_case "PQL non-mutating" `Slow test_pql_non_mutating;
          Alcotest.test_case "PQL ported (bounded)" `Slow test_pql_port;
          Alcotest.test_case "Mencius non-mutating" `Slow test_mencius_non_mutating;
          Alcotest.test_case "Mencius ported (bounded)" `Slow test_mencius_port;
        ] );
    ]
