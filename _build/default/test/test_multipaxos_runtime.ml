module Sim = Raftpax_sim
module Engine = Sim.Engine
module Net = Sim.Net
module Topology = Sim.Topology
open Raftpax_consensus

let mk ?(seed = 42L) ?(leader = 0) () =
  let engine = Engine.create ~seed () in
  let nodes = List.mapi (fun i site -> { Net.id = i; site }) Topology.sites in
  let net = Net.create engine ~nodes in
  let t = Multipaxos.create ~leader Multipaxos.default_config net in
  Multipaxos.start t;
  (engine, net, t)

let put ?(key = 1) write_id = Types.Put { key; size = 8; write_id }
let run_ms engine ms = Engine.run engine ~until:(Engine.now engine + (ms * 1000))

let test_steady_state_commit () =
  let engine, _, t = mk () in
  let ok = ref 0 in
  for i = 1 to 10 do
    Multipaxos.submit t ~node:(i mod 5) (put ~key:i i) (fun _ -> incr ok)
  done;
  run_ms engine 3000;
  Alcotest.(check int) "all complete" 10 !ok;
  for node = 0 to 4 do
    Alcotest.(check int)
      (Fmt.str "node %d executed all" node)
      10
      (Multipaxos.executed_prefix t ~node)
  done

let test_read_sees_write () =
  let engine, _, t = mk () in
  let seen = ref None in
  Multipaxos.submit t ~node:0 (put ~key:3 33) (fun _ -> ());
  run_ms engine 1000;
  Multipaxos.submit t ~node:2 (Types.Get { key = 3 }) (fun r -> seen := r.Types.value);
  run_ms engine 1000;
  Alcotest.(check (option int)) "read result" (Some 33) !seen

let test_leader_latency_one_round () =
  let engine, _, t = mk () in
  let lat = ref 0 in
  let t0 = Engine.now engine in
  Multipaxos.submit t ~node:0 (put 1) (fun _ -> lat := Engine.now engine - t0);
  run_ms engine 2000;
  (* single phase-2 round at the leader: ~majority RTT *)
  Alcotest.(check bool)
    (Fmt.str "one wan round (%dus)" !lat)
    true
    (!lat > 55_000 && !lat < 90_000)

let test_failover () =
  let engine, _, t = mk () in
  Multipaxos.submit t ~node:0 (put 1) (fun _ -> ());
  run_ms engine 1000;
  Multipaxos.crash t ~node:0;
  run_ms engine 10_000;
  Alcotest.(check bool) "new leader" true (Multipaxos.leader_of t <> 0);
  let ok = ref false in
  let l = Multipaxos.leader_of t in
  Multipaxos.submit t ~node:l (put ~key:2 2) (fun _ -> ok := true);
  run_ms engine 5000;
  Alcotest.(check bool) "progress after failover" true !ok

let test_new_leader_preserves_chosen () =
  let engine, _, t = mk () in
  Multipaxos.submit t ~node:0 (put ~key:8 88) (fun _ -> ());
  run_ms engine 2000;
  Multipaxos.crash t ~node:0;
  run_ms engine 15_000;
  (* after takeover (which re-proposes adopted values), the chosen value
     survives on the new leader *)
  let l = Multipaxos.leader_of t in
  run_ms engine 5000;
  Alcotest.(check (option int)) "value survives" (Some 88)
    (Multipaxos.applied_value t ~node:l ~key:8)

let test_ballots_unique_per_server () =
  (* ballots are round * n + id, so two servers can never collide *)
  let engine, _, t = mk () in
  run_ms engine 100;
  let b0 = Multipaxos.ballot_of t ~node:0 in
  Alcotest.(check int) "bootstrap ballot" 5 b0;
  Multipaxos.crash t ~node:0;
  run_ms engine 10_000;
  let b1 = Multipaxos.ballot_of t ~node:1 in
  Alcotest.(check bool) "takeover ballot higher and distinct" true
    (b1 > b0 && b1 mod 5 = 1)

let test_chosen_counts_propagate () =
  let engine, _, t = mk () in
  for i = 1 to 5 do
    Multipaxos.submit t ~node:0 (put ~key:i i) (fun _ -> ())
  done;
  run_ms engine 3000;
  for node = 0 to 4 do
    Alcotest.(check int)
      (Fmt.str "node %d chose 5" node)
      5
      (Multipaxos.chosen_count t ~node)
  done

let () =
  Alcotest.run "multipaxos_runtime"
    [
      ( "steady-state",
        [
          Alcotest.test_case "commit+execute" `Quick test_steady_state_commit;
          Alcotest.test_case "read" `Quick test_read_sees_write;
          Alcotest.test_case "one-round latency" `Quick test_leader_latency_one_round;
          Alcotest.test_case "learn propagation" `Quick test_chosen_counts_propagate;
        ] );
      ( "failover",
        [
          Alcotest.test_case "takeover" `Quick test_failover;
          Alcotest.test_case "chosen preserved" `Quick test_new_leader_preserves_chosen;
          Alcotest.test_case "ballot uniqueness" `Quick test_ballots_unique_per_server;
        ] );
    ]
