module Sim = Raftpax_sim
open Raftpax_kvstore
module Types = Raftpax_consensus.Types

let spec_with ?(read_fraction = 0.9) ?(conflict_rate = 0.05) () =
  { Workload.default with read_fraction; conflict_rate; records = 1000 }

let draw n spec =
  let wl = Workload.create ~seed:9L ~regions:5 spec in
  List.init n (fun i -> Workload.next_op wl ~region:(i mod 5))

let test_read_fraction () =
  let ops = draw 5000 (spec_with ~read_fraction:0.7 ()) in
  let reads = List.length (List.filter Types.is_read ops) in
  let frac = float_of_int reads /. 5000.0 in
  Alcotest.(check bool) (Fmt.str "≈0.7 (%.2f)" frac) true
    (frac > 0.65 && frac < 0.75)

let test_conflict_rate () =
  let ops = draw 5000 (spec_with ~conflict_rate:0.3 ()) in
  let hot =
    List.length (List.filter (fun op -> Types.key_of op = Workload.hot_key) ops)
  in
  let frac = float_of_int hot /. 5000.0 in
  Alcotest.(check bool) (Fmt.str "≈0.3 (%.2f)" frac) true
    (frac > 0.25 && frac < 0.35)

let test_region_partitioning () =
  let spec = spec_with ~conflict_rate:0.0 () in
  let wl = Workload.create ~seed:4L ~regions:5 spec in
  let per_region = spec.Workload.records / 5 in
  for region = 0 to 4 do
    for _ = 1 to 200 do
      let key = Types.key_of (Workload.next_op wl ~region) in
      let lo = 1 + (region * per_region) and hi = (region + 1) * per_region in
      Alcotest.(check bool)
        (Fmt.str "key %d in region %d partition" key region)
        true
        (key >= lo && key <= hi)
    done
  done

let test_write_ids_unique () =
  let ops = draw 2000 (spec_with ~read_fraction:0.0 ()) in
  let ids =
    List.filter_map
      (function Types.Put { write_id; _ } -> Some write_id | Types.Get _ -> None)
      ops
  in
  Alcotest.(check int) "all unique" (List.length ids)
    (List.length (List.sort_uniq compare ids))

let test_value_size_respected () =
  let spec = { (spec_with ~read_fraction:0.0 ()) with Workload.value_size = 4096 } in
  let ops = draw 100 spec in
  List.iter
    (function
      | Types.Put { size; _ } -> Alcotest.(check int) "4KB" 4096 size
      | Types.Get _ -> ())
    ops

(* ---- harness ---- *)

let quick_cfg proto =
  Harness.config ~duration_s:4 ~warmup_s:1 ~cooldown_s:1 proto
    {
      Workload.default with
      Workload.clients_per_region = 5;
      records = 500;
    }

let test_harness_runs_all_protocols () =
  List.iter
    (fun proto ->
      let r = Harness.run (quick_cfg proto) in
      Alcotest.(check bool)
        (Harness.protocol_name proto ^ " made progress")
        true
        (r.Harness.throughput_ops > 10.0);
      Alcotest.(check int)
        (Harness.protocol_name proto ^ " consistent")
        0 r.Harness.consistency_violations)
    [
      Harness.Raft;
      Harness.Raft_star;
      Harness.Raft_ll;
      Harness.Raft_pql;
      Harness.Mencius;
      Harness.Multipaxos;
    ]

let test_harness_deterministic () =
  let r1 = Harness.run (quick_cfg Harness.Raft_star) in
  let r2 = Harness.run (quick_cfg Harness.Raft_star) in
  Alcotest.(check (float 0.0001)) "same seed, same throughput"
    r1.Harness.throughput_ops r2.Harness.throughput_ops

let test_harness_seed_changes_run () =
  let cfg = quick_cfg Harness.Raft_star in
  let r1 = Harness.run cfg in
  let r2 = Harness.run { cfg with Harness.seed = 77L } in
  Alcotest.(check bool) "different seeds differ" true
    (r1.Harness.throughput_ops <> r2.Harness.throughput_ops)

let test_pql_beats_raft_on_reads () =
  let r_raft = Harness.run (quick_cfg Harness.Raft) in
  let r_pql = Harness.run (quick_cfg Harness.Raft_pql) in
  let p90 t = Sim.Stats.percentile_us t 0.90 in
  Alcotest.(check bool) "follower reads much faster under PQL" true
    (p90 r_pql.Harness.read_follower * 10 < p90 r_raft.Harness.read_follower)

let test_median_throughput () =
  let cfg = quick_cfg Harness.Raft_star in
  let m = Harness.median_throughput ~trials:3 cfg in
  Alcotest.(check bool) "median positive" true (m > 10.0)

let () =
  Alcotest.run "kvstore"
    [
      ( "workload",
        [
          Alcotest.test_case "read fraction" `Quick test_read_fraction;
          Alcotest.test_case "conflict rate" `Quick test_conflict_rate;
          Alcotest.test_case "region partition" `Quick test_region_partitioning;
          Alcotest.test_case "unique write ids" `Quick test_write_ids_unique;
          Alcotest.test_case "value size" `Quick test_value_size_respected;
        ] );
      ( "harness",
        [
          Alcotest.test_case "all protocols" `Slow test_harness_runs_all_protocols;
          Alcotest.test_case "deterministic" `Quick test_harness_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick test_harness_seed_changes_run;
          Alcotest.test_case "pql read advantage" `Slow test_pql_beats_raft_on_reads;
          Alcotest.test_case "median" `Slow test_median_throughput;
        ] );
    ]
