open Raftpax_core
module V = Value
module C = Proto_config

let tiny = C.tiny

(* one real value + the designated no-op; instance 0 only *)
let cfg = C.small
let coor () = Port.apply (Opt_mencius.delta cfg) (Spec_multipaxos.spec cfg)

let test_invariants_exhaustive () =
  match
    Explorer.check ~max_states:120_000
      ~invariants:
        (Opt_mencius.invariants cfg @ Spec_multipaxos.invariants cfg)
      (coor ())
  with
  | Explorer.Pass stats ->
      Alcotest.(check bool) "substantial coverage" true (stats.states > 50_000)
  | r -> Alcotest.failf "%a" Explorer.pp_result r

let spec = coor ()
let init = List.hd spec.Spec.init

let election leader =
  [
    ("IncreaseHighestBallot", Fmt.str "a=%d,b=1" ((leader + 1) mod 3));
    ("Phase1a", Fmt.str "a=%d" ((leader + 1) mod 3));
    ("Phase1b", Fmt.str "a=%d,b=1" leader);
    ( "Phase1b",
      Fmt.str "a=%d,b=1" ((leader + 2) mod 3) );
    ("BecomeLeader", Fmt.str "a=%d,q=" leader);
  ]

let test_default_leader_proposes_values () =
  let s = Scenario.run spec init (election Opt_mencius.default_leader) in
  let proposals = (Spec.find_action spec "Propose").Action.enum s in
  (* default leader (node 0) may propose both the real value 2 and noop 1 *)
  Alcotest.(check bool) "real value allowed" true
    (List.exists (fun (l, _) -> l = "a=0,i=0,v=2") proposals)

let test_non_default_proposes_only_noop () =
  let s = Scenario.run spec init (election 1) in
  let proposals = (Spec.find_action spec "Propose").Action.enum s in
  let by_node_1 = List.filter (fun (l, _) -> String.sub l 0 4 = "a=1,") proposals in
  Alcotest.(check bool) "node 1 proposes something" true (by_node_1 <> []);
  Alcotest.(check bool) "only the noop" true
    (List.for_all
       (fun (l, _) -> Label.get_int l "v" = V.to_int Opt_mencius.noop_value)
       by_node_1)

let test_skip_learned_on_accept () =
  let s =
    Scenario.run spec init
      (election Opt_mencius.default_leader
      @ [ ("Propose", "a=0,i=0,v=1") (* default leader skips its turn *) ])
  in
  let s = Scenario.step spec s ~action:"Accept" ~label:"a=1,i=0,b=1,v=1" in
  Alcotest.(check bool) "acceptor 1 learned the skip" true
    (Opt_mencius.skip_tag s ~acc:1 ~idx:0);
  Alcotest.(check (list (pair int (of_pp V.pp))))
    "executable ahead of commit"
    [ (0, Opt_mencius.noop_value) ]
    (Opt_mencius.executable s ~acc:1);
  (* one accept is not a quorum: the slot is executable before chosen *)
  Alcotest.(check bool) "not yet chosen" false
    (Spec_multipaxos.chosen_at cfg s ~idx:0 ~bal:1 Opt_mencius.noop_value)

let test_real_value_not_skip () =
  let s =
    Scenario.run spec init
      (election Opt_mencius.default_leader @ [ ("Propose", "a=0,i=0,v=2") ])
  in
  let s = Scenario.step spec s ~action:"Accept" ~label:"a=1,i=0,b=1,v=2" in
  Alcotest.(check bool) "no skip tag for a real value" false
    (Opt_mencius.skip_tag s ~acc:1 ~idx:0);
  Alcotest.(check (list (pair int (of_pp V.pp))))
    "nothing executable early" [] (Opt_mencius.executable s ~acc:1)

let test_default_cannot_unskip () =
  (* once the default leader proposed noop at i, it cannot propose a real
     value there any more *)
  let s =
    Scenario.run spec init
      (election Opt_mencius.default_leader @ [ ("Propose", "a=0,i=0,v=1") ])
  in
  let proposals = (Spec.find_action spec "Propose").Action.enum s in
  Alcotest.(check bool) "real value at 0 now disabled" true
    (List.for_all (fun (l, _) -> l <> "a=0,i=0,v=2") proposals)

let test_default_cannot_skip_used_turn () =
  let s =
    Scenario.run spec init
      (election Opt_mencius.default_leader @ [ ("Propose", "a=0,i=0,v=2") ])
  in
  let proposals = (Spec.find_action spec "Propose").Action.enum s in
  Alcotest.(check bool) "noop at 0 now disabled for the default leader" true
    (List.for_all (fun (l, _) -> l <> "a=0,i=0,v=1") proposals)

let test_skip_propagates_through_election () =
  (* an acceptor that learned a skip hands it to the next leader *)
  let s =
    Scenario.run spec init
      (election Opt_mencius.default_leader
      @ [
          ("Propose", "a=0,i=0,v=1");
          ("Accept", "a=1,i=0,b=1,v=1");
        ])
  in
  Alcotest.(check bool) "tag at voter" true (Opt_mencius.skip_tag s ~acc:1 ~idx:0);
  Alcotest.(check bool) "no tag at node 2 yet" false
    (Opt_mencius.skip_tag s ~acc:2 ~idx:0)

let test_tiny_still_safe () =
  (* smallest instance, full exploration with the base invariants *)
  let spec = Port.apply (Opt_mencius.delta tiny) (Spec_multipaxos.spec tiny) in
  match
    Explorer.check ~max_states:50_000
      ~invariants:(Opt_mencius.invariants tiny @ Spec_multipaxos.invariants tiny)
      spec
  with
  | Explorer.Pass stats -> Alcotest.(check bool) "complete" true stats.complete
  | r -> Alcotest.failf "%a" Explorer.pp_result r

let () =
  Alcotest.run "specs_mencius"
    [
      ( "model-checking",
        [
          Alcotest.test_case "small exhaustive" `Slow test_invariants_exhaustive;
          Alcotest.test_case "tiny exhaustive" `Slow test_tiny_still_safe;
        ] );
      ( "coordination",
        [
          Alcotest.test_case "default proposes values" `Quick test_default_leader_proposes_values;
          Alcotest.test_case "others propose noop" `Quick test_non_default_proposes_only_noop;
          Alcotest.test_case "skip learned on accept" `Quick test_skip_learned_on_accept;
          Alcotest.test_case "real value not skipped" `Quick test_real_value_not_skip;
          Alcotest.test_case "no unskip" `Quick test_default_cannot_unskip;
          Alcotest.test_case "no late skip" `Quick test_default_cannot_skip_used_turn;
          Alcotest.test_case "skip propagation" `Quick test_skip_propagates_through_election;
        ] );
    ]
