open Raftpax_core
module V = Value
module C = Proto_config

let tiny = C.tiny
let pql () = Port.apply (Opt_pql.delta tiny) (Spec_multipaxos.spec tiny)

let test_spec_shape () =
  let spec = pql () in
  Alcotest.(check bool) "timer var" true (List.mem "timer" spec.Spec.vars);
  Alcotest.(check bool) "leases var" true (List.mem "leases" spec.Spec.vars);
  let names = List.map (fun (a : Action.t) -> a.name) spec.Spec.actions in
  List.iter
    (fun n -> Alcotest.(check bool) n true (List.mem n names))
    [ "GrantLease"; "UpdateTimer"; "Apply"; "ReadAtLocal"; "Propose"; "Accept" ]

let test_lease_inv_bounded () =
  match
    Explorer.check ~max_states:40_000
      ~invariants:(Opt_pql.invariants tiny)
      (pql ())
  with
  | Explorer.Pass _ -> ()
  | r -> Alcotest.failf "%a" Explorer.pp_result r

let test_base_invariants_survive () =
  (* non-mutation means the MultiPaxos invariants keep holding on the
     optimized protocol *)
  match
    Explorer.check ~max_states:25_000
      ~invariants:
        [
          ("OneValuePerBallot", Spec_multipaxos.inv_one_value_per_ballot tiny);
          ("Agreement", Spec_multipaxos.inv_agreement tiny);
        ]
      (pql ())
  with
  | Explorer.Pass _ -> ()
  | r -> Alcotest.failf "%a" Explorer.pp_result r

(* ---- lease-state helpers on hand-built states ---- *)

let spec = pql ()
let init = List.hd spec.Spec.init

let test_initially_no_lease () =
  Alcotest.(check bool) "no active lease at init" false
    (Opt_pql.lease_is_active tiny init 0)

let test_lease_becomes_active () =
  let s =
    Scenario.run spec init
      [ ("GrantLease", "p=1,q=0"); ("GrantLease", "p=2,q=0") ]
  in
  (* grants from 1 and 2 plus the self-grant form a quorum for node 0 *)
  Alcotest.(check bool) "active" true (Opt_pql.lease_is_active tiny s 0);
  Alcotest.(check bool) "only node 0" false (Opt_pql.lease_is_active tiny s 1)

let test_lease_expires () =
  let s =
    Scenario.run spec init
      [
        ("GrantLease", "p=1,q=0");
        ("GrantLease", "p=2,q=0");
        ("UpdateTimer", "t=1");
      ]
  in
  (* duration 1, granted at t=0 => deadline 1 >= timer 1: still active *)
  Alcotest.(check bool) "active at deadline" true
    (Opt_pql.lease_is_active tiny s 0);
  (* push time past the deadline via renewals elsewhere? timer bound is 1
     in default params, so instead re-grant later and compare deadlines *)
  let s2 = Scenario.run spec s [ ("GrantLease", "p=1,q=2") ] in
  Alcotest.(check bool) "other grants don't help node 1" false
    (Opt_pql.lease_is_active tiny s2 1)

let election =
  [
    ("IncreaseHighestBallot", "a=0,b=1");
    ("Phase1a", "a=0");
    ("Phase1b", "a=1,b=1");
    ("Phase1b", "a=2,b=1");
    ("BecomeLeader", "a=1,q=12");
  ]

let test_commit_needs_lease_holders () =
  (* value voted by a quorum {1,2}; node 0 holds a lease granted by 1:
     CanCommitAt must ask for node 0's vote as well *)
  let s =
    Scenario.run spec init
      (election
      @ [
          ("GrantLease", "p=1,q=0");
          ("Propose", "a=1,i=0,v=1");
          ("Accept", "a=1,i=0,b=1,v=1");
          ("Accept", "a=2,i=0,b=1,v=1");
        ])
  in
  Alcotest.(check bool) "chosen by the quorum" true
    (Spec_multipaxos.chosen_at tiny s ~idx:0 ~bal:1 (V.int 1));
  Alcotest.(check bool) "but not committable yet" false
    (Opt_pql.can_commit_at tiny s ~idx:0 ~bal:1 (V.int 1));
  let s = Scenario.step spec s ~action:"Accept" ~label:"a=0,i=0,b=1,v=1" in
  Alcotest.(check bool) "committable once the holder voted" true
    (Opt_pql.can_commit_at tiny s ~idx:0 ~bal:1 (V.int 1))

let test_apply_waits_for_commitability () =
  let s =
    Scenario.run spec init
      (election
      @ [
          ("GrantLease", "p=1,q=0");
          ("Propose", "a=1,i=0,v=1");
          ("Accept", "a=1,i=0,b=1,v=1");
          ("Accept", "a=2,i=0,b=1,v=1");
        ])
  in
  let applies = (Spec.find_action spec "Apply").Action.enum s in
  Alcotest.(check (list string)) "apply disabled" [] (List.map fst applies);
  let s = Scenario.step spec s ~action:"Accept" ~label:"a=0,i=0,b=1,v=1" in
  let applies = (Spec.find_action spec "Apply").Action.enum s in
  Alcotest.(check bool) "apply enabled after holder ack" true
    (List.length applies > 0)

let test_local_read_requires_lease_and_apply () =
  let s =
    Scenario.run spec init
      (election
      @ [
          ("Propose", "a=1,i=0,v=1");
          ("Accept", "a=1,i=0,b=1,v=1");
          ("Accept", "a=2,i=0,b=1,v=1");
          ("Accept", "a=0,i=0,b=1,v=1");
          ("GrantLease", "p=1,q=0");
          ("GrantLease", "p=2,q=0");
        ])
  in
  (* node 0 has an active lease but a pending unapplied write *)
  let reads = (Spec.find_action spec "ReadAtLocal").Action.enum s in
  Alcotest.(check bool) "node 0 cannot read yet" true
    (List.for_all (fun (l, _) -> l <> "a=0") reads);
  let s = Scenario.step spec s ~action:"Apply" ~label:"a=0,i=0" in
  let reads = (Spec.find_action spec "ReadAtLocal").Action.enum s in
  Alcotest.(check bool) "node 0 reads after apply" true
    (List.exists (fun (l, _) -> l = "a=0") reads)

let test_is_read_typing () =
  Alcotest.(check bool) "even is read" true (Opt_pql.is_read (V.int 2));
  Alcotest.(check bool) "odd is write" false (Opt_pql.is_read (V.int 1))

let () =
  Alcotest.run "specs_pql"
    [
      ( "model-checking",
        [
          Alcotest.test_case "shape" `Quick test_spec_shape;
          Alcotest.test_case "LeaseInv (bounded)" `Slow test_lease_inv_bounded;
          Alcotest.test_case "base invariants survive" `Slow test_base_invariants_survive;
        ] );
      ( "lease-mechanics",
        [
          Alcotest.test_case "inactive at init" `Quick test_initially_no_lease;
          Alcotest.test_case "quorum of grants" `Quick test_lease_becomes_active;
          Alcotest.test_case "deadlines" `Quick test_lease_expires;
          Alcotest.test_case "commit needs holders" `Quick test_commit_needs_lease_holders;
          Alcotest.test_case "apply gated" `Quick test_apply_waits_for_commitability;
          Alcotest.test_case "local read gated" `Quick test_local_read_requires_lease_and_apply;
          Alcotest.test_case "value typing" `Quick test_is_read_typing;
        ] );
    ]
