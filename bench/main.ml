(* Benchmark harness: regenerates every figure of the paper's Section 5
   evaluation on the simulated WAN, plus Bechamel micro-benchmarks and the
   ablations called out in DESIGN.md.

     dune exec bench/main.exe            -- everything (quick settings)
     dune exec bench/main.exe fig9a      -- one figure
     dune exec bench/main.exe all full   -- longer runs / wider sweeps

   Absolute numbers are simulator-scale; EXPERIMENTS.md records the
   paper-vs-measured comparison of the *shapes*. *)

module Sim = Raftpax_sim
module Stats = Sim.Stats
module Topology = Sim.Topology
module Tel = Raftpax_telemetry
module Json = Tel.Json
module Metrics = Tel.Metrics
open Raftpax_kvstore
module H = Harness
module W = Workload

let quick = ref true

let duration () = if !quick then 6 else 30
let trim () = if !quick then 1 else 3

(* Global batching knobs ([--batch N] / [--batch-delay US]): applied to
   every figure run unless the figure overrides them per-row (fig_engine
   runs both settings itself).  Defaults reproduce the unbatched
   runtimes byte-for-byte. *)
let batch_size_flag = ref 1
let batch_delay_flag = ref 0

(* The batched benchmark rows' setting (fig_engine, the million-user
   shard run): a flush delay well under the WAN RTT so latency is
   unaffected, a size cap large enough that the flush timer (not the
   cap) is what usually fires. *)
let engine_batch = (16, 2_000)

let run_cfg ?leader_site ?(clients = 50) ?(read_fraction = 0.9)
    ?(conflict_rate = 0.05) ?(value_size = 8) ?batch_size ?batch_delay_us proto
    =
  let batch_size = Option.value batch_size ~default:!batch_size_flag in
  let batch_delay_us = Option.value batch_delay_us ~default:!batch_delay_flag in
  H.config ?leader_site ~duration_s:(duration ()) ~warmup_s:(trim ())
    ~cooldown_s:(trim ()) ~telemetry:true ~batch_size ~batch_delay_us proto
    {
      W.read_fraction;
      conflict_rate;
      value_size;
      records = 100_000;
      clients_per_region = clients;
      key_dist = W.Uniform;
    }

(* ---- machine-readable artifacts ----

   Every harness run a figure performs is recorded and dumped as
   BENCH_<figure>.json under [--out DIR], so plotting and regression
   tooling can consume the numbers without scraping stdout.  The schema
   is stable: {figure, mode, runs: [{protocol, config, throughput_ops,
   p50_us, p90_us, p99_us, retries, messages, counters, histograms}]},
   with counters/histograms keyed by probe name, one value per replica
   (from the telemetry snapshot). *)

let out_dir = ref "bench_output"
let recorded : Json.t list ref = ref []

let json_of_run (cfg : H.config) (r : H.result) =
  let stats =
    Stats.merge
      [ r.H.read_leader; r.H.read_follower; r.H.write_leader; r.H.write_follower ]
  in
  let counters, histograms =
    match r.H.telemetry with
    | Some tel -> (
        match Metrics.snapshot_to_json (Metrics.snapshot tel.Tel.Telemetry.metrics) with
        | Json.Obj fields ->
            ( Option.value ~default:Json.Null (List.assoc_opt "counters" fields),
              Option.value ~default:Json.Null (List.assoc_opt "histograms" fields) )
        | _ -> (Json.Null, Json.Null))
    | None -> (Json.Null, Json.Null)
  in
  Json.Obj
    [
      ("protocol", Json.String (H.protocol_name cfg.H.protocol));
      ( "config",
        Json.Obj
          [
            ("clients_per_region", Json.Int cfg.H.workload.W.clients_per_region);
            ("read_fraction", Json.Float cfg.H.workload.W.read_fraction);
            ("conflict_rate", Json.Float cfg.H.workload.W.conflict_rate);
            ("value_size", Json.Int cfg.H.workload.W.value_size);
            ("duration_s", Json.Int cfg.H.duration_s);
            ("warmup_s", Json.Int cfg.H.warmup_s);
            ("cooldown_s", Json.Int cfg.H.cooldown_s);
            ("leader_site", Json.String (Topology.site_name cfg.H.leader_site));
            ("seed", Json.Int (Int64.to_int cfg.H.seed));
            ("batch_size", Json.Int cfg.H.batch_size);
            ("batch_delay_us", Json.Int cfg.H.batch_delay_us);
          ] );
      ("throughput_ops", Json.Float r.H.throughput_ops);
      ("p50_us", Json.Int (Stats.percentile_us stats 0.50));
      ("p90_us", Json.Int (Stats.percentile_us stats 0.90));
      ("p99_us", Json.Int (Stats.percentile_us stats 0.99));
      ("retries", Json.Int r.H.retries);
      ("messages", Json.Int r.H.messages);
      ("counters", counters);
      ("histograms", histograms);
    ]

let run_recorded cfg =
  let r = H.run cfg in
  recorded := json_of_run cfg r :: !recorded;
  r

let write_artifact ~figure runs =
  if not (Sys.file_exists !out_dir) then Unix.mkdir !out_dir 0o755;
  let path = Filename.concat !out_dir ("BENCH_" ^ figure ^ ".json") in
  let doc =
    Json.Obj
      [
        ("figure", Json.String figure);
        ("mode", Json.String (if !quick then "quick" else "full"));
        ("runs", Json.List (List.rev runs));
      ]
  in
  let oc = open_out path in
  output_string oc (Fmt.str "%a@." Json.pp doc);
  close_out oc;
  Fmt.pr "   [wrote %s]@." path

let pp_ms ppf us = Fmt.pf ppf "%7.1f" (float_of_int us /. 1000.0)

let pp_lat_row name stats =
  Fmt.pr "  %-14s p50=%ams p90=%ams p99=%ams (n=%d)@." name pp_ms
    (Stats.percentile_us stats 0.50)
    pp_ms
    (Stats.percentile_us stats 0.90)
    pp_ms
    (Stats.percentile_us stats 0.99)
    (Stats.count stats)

let fig9_systems = [ H.Raft_pql; H.Raft_ll; H.Raft; H.Raft_star ]

(* ---- Figure 9a/9b: read and write latency, leader vs followers ---- *)

let fig9_latency ~which () =
  Fmt.pr "== Figure 9%s: %s latency (90%% read, 5%% conflict, 50 clients/region) ==@."
    (if which = `Read then "a" else "b")
    (if which = `Read then "read" else "write");
  List.iter
    (fun proto ->
      let r = run_recorded (run_cfg proto) in
      let leader, follower =
        match which with
        | `Read -> (r.H.read_leader, r.H.read_follower)
        | `Write -> (r.H.write_leader, r.H.write_follower)
      in
      Fmt.pr "%s@." (H.protocol_name proto);
      pp_lat_row "leader" leader;
      pp_lat_row "followers" follower;
      assert (r.H.consistency_violations = 0))
    fig9_systems

(* ---- Figure 9c: peak throughput vs read percentage ---- *)

let fig9c () =
  Fmt.pr "== Figure 9c: peak throughput (ops/s) vs read percentage ==@.";
  let client_sweep = if !quick then [ 100; 400 ] else [ 100; 400; 1200; 3000 ] in
  Fmt.pr "%-14s %10s %10s %10s@." "system" "50%" "90%" "99%";
  let raft_star_90 = ref 0.0 and pql_90 = ref 0.0 in
  List.iter
    (fun proto ->
      (* same sweep H.peak_throughput performs, but through run_recorded
         so every point lands in the JSON artifact *)
      let peak read_fraction =
        List.fold_left
          (fun best clients ->
            let r =
              run_recorded
                (run_cfg ~clients ~read_fraction ~conflict_rate:0.05 proto)
            in
            max best r.H.throughput_ops)
          0.0 client_sweep
      in
      let p50 = peak 0.50 and p90 = peak 0.90 and p99 = peak 0.99 in
      if proto = H.Raft_star then raft_star_90 := p90;
      if proto = H.Raft_pql then pql_90 := p90;
      Fmt.pr "%-14s %10.0f %10.0f %10.0f@." (H.protocol_name proto) p50 p90 p99)
    fig9_systems;
  if !raft_star_90 > 0.0 then
    Fmt.pr "PQL speedup over Raft* at 90%% reads: %.2fx (paper: 1.6x)@."
      (!pql_90 /. !raft_star_90)

(* ---- Figure 9d: PQL speedup over Raft* vs conflict rate ---- *)

let fig9d () =
  Fmt.pr "== Figure 9d: Raft*-PQL throughput speedup over Raft* vs conflict rate ==@.";
  let clients = if !quick then 200 else 1200 in
  List.iter
    (fun conflict ->
      let tput proto =
        (run_recorded (run_cfg ~clients ~conflict_rate:conflict proto))
          .H.throughput_ops
      in
      let pql = tput H.Raft_pql and star = tput H.Raft_star in
      Fmt.pr "  conflict %3.0f%%: speedup %+.0f%%@." (conflict *. 100.0)
        ((pql -. star) /. star *. 100.0))
    [ 0.0; 0.1; 0.2; 0.3; 0.4; 0.5 ]

(* ---- Figure 10: Mencius ---- *)

type m_sys = {
  name : string;
  proto : H.protocol;
  leader : Topology.site;
  conflict : float;
}

let fig10_systems =
  [
    { name = "Raft*-M-100%"; proto = H.Mencius; leader = Topology.Oregon; conflict = 1.0 };
    { name = "Raft*-M-0%"; proto = H.Mencius; leader = Topology.Oregon; conflict = 0.0 };
    { name = "Raft-Oregon"; proto = H.Raft; leader = Topology.Oregon; conflict = 0.0 };
    { name = "Raft*-Oregon"; proto = H.Raft_star; leader = Topology.Oregon; conflict = 0.0 };
    { name = "Raft-Seoul"; proto = H.Raft; leader = Topology.Seoul; conflict = 0.0 };
  ]

let fig10_throughput ~value_size ~label () =
  Fmt.pr "== Figure 10%s: throughput (ops/s) vs clients/region, %s values, 100%% writes ==@."
    label
    (if value_size = 8 then "8B" else "4KB");
  let sweeps =
    if value_size = 8 then
      if !quick then [ 10; 50; 200; 600 ] else [ 10; 50; 200; 800; 2500 ]
    else if !quick then [ 5; 20; 80; 200 ]
    else [ 5; 20; 80; 250; 800 ]
  in
  Fmt.pr "%-14s" "system";
  List.iter (fun c -> Fmt.pr " %8d" c) sweeps;
  Fmt.pr "@.";
  List.iter
    (fun sys ->
      Fmt.pr "%-14s" sys.name;
      List.iter
        (fun clients ->
          let r =
            run_recorded
              (run_cfg ~leader_site:sys.leader ~clients ~read_fraction:0.0
                 ~conflict_rate:sys.conflict ~value_size sys.proto)
          in
          Fmt.pr " %8.0f" r.H.throughput_ops)
        sweeps;
      Fmt.pr "@.")
    fig10_systems

let fig10_latency ~value_size ~label () =
  Fmt.pr "== Figure 10%s: latency, %s values, 100%% writes, 50 clients/region ==@."
    label
    (if value_size = 8 then "8B" else "4KB");
  List.iter
    (fun sys ->
      let r =
        run_recorded
          (run_cfg ~leader_site:sys.leader ~clients:50 ~read_fraction:0.0
             ~conflict_rate:sys.conflict ~value_size sys.proto)
      in
      Fmt.pr "%s@." sys.name;
      pp_lat_row "leader" r.H.write_leader;
      pp_lat_row "followers" r.H.write_follower)
    fig10_systems

(* ---- sharded serving: aggregate throughput scaling (ours) ---- *)

(* The sweep the million-user trajectory tracks: M consensus groups over
   the hash-partitioned store, leaders placed nearest-majority, under a
   write-heavy 4 KB load that saturates a single group's leader uplink —
   so aggregate throughput must scale with the group count.  [--shards M]
   restricts the sweep to one group count. *)

let shards_override = ref None

let fig_shard () =
  let group_counts =
    match !shards_override with
    | Some m -> [ m ]
    | None -> if !quick then [ 1; 2; 4 ] else [ 1; 2; 4; 8 ]
  in
  let client_sweep = if !quick then [ 100; 400 ] else [ 100; 400; 1200 ] in
  let wl clients =
    {
      W.read_fraction = 0.0;
      conflict_rate = 0.0;
      value_size = 4096;
      records = 100_000;
      clients_per_region = clients;
      key_dist = W.Uniform;
    }
  in
  let shard_run ?(protocols = [ H.Raft_star ]) m clients =
    let cfg =
      Shard.config ~protocols ~duration_s:(duration ()) ~warmup_s:(trim ())
        ~cooldown_s:(trim ()) ~telemetry:true ~shards:m (wl clients)
    in
    let r = Shard.run cfg in
    recorded := Shard.result_to_json cfg r :: !recorded;
    assert (r.Shard.violations = 0);
    r
  in
  Fmt.pr
    "== Sharded serving: aggregate throughput (ops/s) vs group count, 4KB \
     writes, nearest-majority leaders ==@.";
  Fmt.pr "%-8s" "groups";
  List.iter (fun c -> Fmt.pr " %8dc" c) client_sweep;
  Fmt.pr "@.";
  let peak_by_groups =
    List.map
      (fun m ->
        Fmt.pr "%-8d" m;
        let tputs =
          List.map
            (fun clients ->
              let r = shard_run m clients in
              Fmt.pr " %9.0f" r.Shard.throughput_ops;
              r.Shard.throughput_ops)
            client_sweep
        in
        Fmt.pr "@.";
        (m, List.fold_left max 0.0 tputs))
      group_counts
  in
  (match peak_by_groups with
  | (m0, t0) :: rest when rest <> [] ->
      Fmt.pr "scaling vs %d group(s):" m0;
      List.iter
        (fun (m, t) -> Fmt.pr " %dx groups=%.2fx tput" (m / m0) (t /. t0))
        rest;
      Fmt.pr "@.";
      (* the acceptance gate: aggregate peak throughput must increase
         monotonically with the group count *)
      let rec monotonic = function
        | (_, a) :: ((_, b) :: _ as rest) -> a < b && monotonic rest
        | _ -> true
      in
      assert (monotonic peak_by_groups)
  | _ -> ());
  (* one heterogeneous deployment at the widest sweep point: mixed
     protocol groups must serve the same routed load *)
  let m = List.fold_left max 1 group_counts in
  let r =
    shard_run ~protocols:[ H.Raft_star; H.Mencius; H.Multipaxos ] m
      (List.hd client_sweep)
  in
  Fmt.pr "heterogeneous mix (%d groups, Raft*/Mencius/MultiPaxos): %.0f ops/s@."
    m r.Shard.throughput_ops;
  (* ---- the million-user variant: 8 consensus groups over a 1M-record
     keyspace, 2000 closed-loop clients (400/region over 5 regions),
     command batching on.  Small values and a short quick-mode duration
     keep it inside CI; full mode stretches the run, not the shape. *)
  let mu_duration = if !quick then 3 else duration () in
  let mu_clients = 400 in
  let mu_shards = max 8 (match !shards_override with Some m -> m | None -> 8) in
  let mu_wl =
    {
      W.read_fraction = 0.9;
      conflict_rate = 0.0;
      value_size = 8;
      records = 1_000_000;
      clients_per_region = mu_clients;
      key_dist = W.Uniform;
    }
  in
  let mu_cfg =
    Shard.config ~protocols:[ H.Raft_star ] ~duration_s:mu_duration ~warmup_s:1
      ~cooldown_s:1 ~telemetry:true ~batch_size:(fst engine_batch)
      ~batch_delay_us:(snd engine_batch) ~shards:mu_shards mu_wl
  in
  let t0 = Unix.gettimeofday () in
  let r = Shard.run mu_cfg in
  let wall = Unix.gettimeofday () -. t0 in
  recorded := Shard.result_to_json mu_cfg r :: !recorded;
  assert (r.Shard.violations = 0);
  Fmt.pr
    "million-user: %d groups, %d clients, 1M records, batch=%d: %.0f ops/s \
     (%.1fs wall)@."
    mu_shards
    (mu_clients * List.length Topology.sites)
    (fst engine_batch) r.Shard.throughput_ops wall

(* ---- network cost table (ours): egress distribution per protocol ---- *)

let netcost () =
  Fmt.pr "== Network cost (ours): egress MB per replica, 100%% writes, 8B, 50 clients/region ==@.";
  Fmt.pr "%-14s %9s" "system" "msgs";
  List.iter
    (fun site -> Fmt.pr " %8s" (Topology.site_name site))
    Topology.sites;
  Fmt.pr "@.";
  List.iter
    (fun proto ->
      let r = run_recorded (run_cfg ~read_fraction:0.0 ~conflict_rate:0.0 proto) in
      Fmt.pr "%-14s %9d" (H.protocol_name proto) r.H.messages;
      Array.iter
        (fun bytes -> Fmt.pr " %8.1f" (float_of_int bytes /. 1_000_000.0))
        r.H.bytes_by_node;
      Fmt.pr "@.")
    [ H.Raft; H.Raft_pql; H.Mencius; H.Multipaxos ];
  Fmt.pr "   (single-leader systems concentrate egress at the leader;@.";
  Fmt.pr "    Mencius spreads it across the five sites)@."

(* ---- ablations (DESIGN.md) ---- *)

let ablation_lease_duration () =
  Fmt.pr "== Ablation: PQL lease duration: post-crash write stall ==@.";
  Fmt.pr "   (paper parameters: 2s duration, 0.5s renewal; a crashed lease@.";
  Fmt.pr "    holder blocks commits until its last lease expires)@.";
  List.iter
    (fun (duration_ms, renew_ms) ->
      let params =
        {
          Raftpax_consensus.Types.default_params with
          lease_duration_us = duration_ms * 1000;
          lease_renew_us = renew_ms * 1000;
        }
      in
      let engine = Sim.Engine.create ~seed:5L () in
      let nodes =
        List.mapi (fun i site -> { Sim.Net.id = i; site }) Topology.sites
      in
      let net = Sim.Net.create engine ~nodes in
      let cfg = { (Raftpax_consensus.Raft.raft_pql ~leader:0 ()) with params } in
      let t = Raftpax_consensus.Raft.create cfg net in
      Raftpax_consensus.Raft.start t;
      (* steady state, then crash Seoul (a lease holder) and immediately
         issue a write: it stalls until Seoul's lease lapses *)
      Raftpax_consensus.Raft.submit t ~node:0
        (Raftpax_consensus.Types.Put { key = 1; size = 8; write_id = 1 })
        (fun _ -> ());
      Sim.Engine.run engine ~until:3_000_000;
      Raftpax_consensus.Raft.crash t ~node:4;
      let stall = ref 0 in
      let t0 = Sim.Engine.now engine in
      Raftpax_consensus.Raft.submit t ~node:0
        (Raftpax_consensus.Types.Put { key = 1; size = 8; write_id = 2 })
        (fun _ -> stall := Sim.Engine.now engine - t0);
      Sim.Engine.run engine ~until:(3_000_000 + (duration_ms * 1000) + 5_000_000);
      Fmt.pr "  lease %5dms renew %5dms: post-crash write stall %ams@."
        duration_ms renew_ms pp_ms !stall)
    [ (500, 125); (2000, 500); (8000, 2000) ]

let ablation_pipeline_window () =
  Fmt.pr "== Ablation: replication pipeline window (leader write latency) ==@.";
  List.iter
    (fun window ->
      let params =
        { Raftpax_consensus.Types.default_params with pipeline_window = window }
      in
      let engine = Sim.Engine.create ~seed:6L () in
      let nodes =
        List.mapi (fun i site -> { Sim.Net.id = i; site }) Topology.sites
      in
      let net = Sim.Net.create engine ~nodes in
      let cfg = { (Raftpax_consensus.Raft.raft_star ~leader:0 ()) with params } in
      let t = Raftpax_consensus.Raft.create cfg net in
      Raftpax_consensus.Raft.start t;
      let lat = Stats.create () in
      let rec client i =
        if Sim.Engine.now engine < 5_000_000 then begin
          let t0 = Sim.Engine.now engine in
          Raftpax_consensus.Raft.submit t ~node:0
            (Raftpax_consensus.Types.Put { key = i; size = 8; write_id = i })
            (fun _ ->
              Stats.record lat
                ~latency_us:(Sim.Engine.now engine - t0)
                ~at_us:(Sim.Engine.now engine);
              client (i + 1))
        end
      in
      for _ = 1 to 10 do
        client 1
      done;
      Sim.Engine.run engine ~until:5_000_000;
      Fmt.pr "  window %2d: leader write p50 %ams p90 %ams@." window pp_ms
        (Stats.percentile_us lat 0.50)
        pp_ms
        (Stats.percentile_us lat 0.90))
    [ 1; 2; 8 ]

(* ---- Bechamel micro-benchmarks ---- *)

let micro () =
  let open Bechamel in
  let open Raftpax_core in
  let cfg_tiny = Proto_config.tiny in
  let mp = Spec_multipaxos.spec cfg_tiny in
  let rs = Spec_raft_star.spec cfg_tiny in
  let mp_init = List.hd mp.Spec.init in
  let mapped = Spec_raft_star.to_paxos cfg_tiny (List.hd rs.Spec.init) in
  let wl = W.create ~seed:3L ~regions:5 W.default in
  let tests =
    [
      Test.make ~name:"spec/multipaxos-successors"
        (Staged.stage (fun () -> ignore (Spec.successors mp mp_init)));
      Test.make ~name:"spec/raft-star-mapping"
        (Staged.stage (fun () ->
             ignore (Spec_raft_star.to_paxos cfg_tiny (List.hd rs.Spec.init))));
      Test.make ~name:"refinement/discharge-stutter"
        (Staged.stage (fun () ->
             ignore (Refinement.discharge ~high:mp ~max_hops:1 mapped mapped)));
      Test.make ~name:"workload/next-op"
        (Staged.stage (fun () -> ignore (W.next_op wl ~region:2)));
      Test.make ~name:"sim/engine-event"
        (Staged.stage (fun () ->
             let e = Sim.Engine.create () in
             Sim.Engine.schedule e ~delay:1 ignore;
             Sim.Engine.run_all e));
    ]
  in
  let benchmark test =
    let ols =
      Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
    in
    let instance = Toolkit.Instance.monotonic_clock in
    let cfg =
      Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.25) ~kde:None ()
    in
    let raw = Benchmark.all cfg [ instance ] (Test.make_grouped ~name:"g" [ test ]) in
    let results = Analyze.all ols instance raw in
    Hashtbl.fold (fun name result acc -> (name, result) :: acc) results []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
    |> List.iter (fun (name, result) ->
           match Analyze.OLS.estimates result with
           | Some [ est ] -> Fmt.pr "  %-32s %12.1f ns/run@." name est
           | _ -> Fmt.pr "  %-32s (no estimate)@." name)
  in
  Fmt.pr "== Micro-benchmarks (Bechamel, monotonic clock) ==@.";
  List.iter benchmark tests

(* ---- engine: simulator hot-path microbenchmark ----

   Measures the cost of the simulation machinery itself on the fig9 hot
   path (closed-loop clients over the WAN sim, telemetry on): engine
   events executed per wall-clock second and minor-heap words allocated
   per completed op.  This is the perf gate for the engine/runtime
   data-structure work — protocol figures measure the protocol, this one
   measures the harness.  The floor is deliberately well below the
   committed baseline (slowest row ~700k events/s, Raft* ~1.05M after
   the Vec/Net.size hot-path fixes; batching only raises those) so only
   a real regression — e.g. reintroducing a quadratic accumulator —
   trips it, not CI noise. *)

let engine_events_floor = 300_000.0

let fig_engine () =
  Fmt.pr "== engine: sim hot-path microbenchmark (fig9 workload, 50 clients/region) ==@.";
  Fmt.pr "%-14s %6s %12s %8s %14s %9s %10s %10s@." "system" "batch"
    "sim_events" "wall_s" "events/s" "ops" "wall_ops/s" "minorw/op";
  (* (protocol, batch_size, wall-clock ops/s) per row, for the speedup
     summary: batching is the perf optimization under test, so the
     interesting ratio is ops completed per wall second at equal
     simulated duration. *)
  let rows = ref [] in
  List.iter
    (fun proto ->
      List.iter
        (fun (batch_size, batch_delay_us) ->
          let cfg = run_cfg ~batch_size ~batch_delay_us proto in
          (* Start each row from the same GC state so minor-words/op is
             comparable across rows and runs. *)
          Gc.full_major ();
          let t0 = Unix.gettimeofday () in
          let r = H.run cfg in
          let wall = Unix.gettimeofday () -. t0 in
          let stats =
            Stats.merge
              [
                r.H.read_leader;
                r.H.read_follower;
                r.H.write_leader;
                r.H.write_follower;
              ]
          in
          let ops = Stats.count stats in
          let events_per_sec = float_of_int r.H.sim_events /. wall in
          let wall_ops_per_sec = float_of_int ops /. wall in
          let words_per_op = r.H.minor_words /. float_of_int (max 1 ops) in
          Fmt.pr "%-14s %6d %12d %8.2f %14.0f %9d %10.0f %10.0f@."
            (H.protocol_name proto) batch_size r.H.sim_events wall
            events_per_sec ops wall_ops_per_sec words_per_op;
          assert (r.H.consistency_violations = 0);
          (* sanity floor: a hot-path regression fails loudly in CI *)
          assert (events_per_sec >= engine_events_floor);
          rows := (proto, batch_size, wall_ops_per_sec) :: !rows;
          recorded :=
            Json.Obj
              [
                ("protocol", Json.String (H.protocol_name proto));
                ( "config",
                  Json.Obj
                    [
                      ( "clients_per_region",
                        Json.Int cfg.H.workload.W.clients_per_region );
                      ("read_fraction", Json.Float cfg.H.workload.W.read_fraction);
                      ("duration_s", Json.Int cfg.H.duration_s);
                      ("seed", Json.Int (Int64.to_int cfg.H.seed));
                      ("batch_size", Json.Int batch_size);
                      ("batch_delay_us", Json.Int batch_delay_us);
                    ] );
                ("sim_events", Json.Int r.H.sim_events);
                ("wall_s", Json.Float wall);
                ("events_per_sec", Json.Float events_per_sec);
                ("ops", Json.Int ops);
                ("throughput_ops", Json.Float r.H.throughput_ops);
                ("wall_ops_per_sec", Json.Float wall_ops_per_sec);
                ("minor_words_per_op", Json.Float words_per_op);
                ("events_floor", Json.Float engine_events_floor);
              ]
            :: !recorded)
        [ (1, 0); engine_batch ])
    [ H.Raft_star; H.Raft_pql; H.Multipaxos; H.Mencius ];
  List.iter
    (fun proto ->
      let find b =
        List.find_opt (fun (p, s, _) -> p = proto && s = b) !rows
      in
      match (find 1, find (fst engine_batch)) with
      | Some (_, _, base), Some (_, _, batched) when base > 0.0 ->
          Fmt.pr "  %-14s batching speedup: %.2fx wall ops/s@."
            (H.protocol_name proto) (batched /. base)
      | _ -> ())
    [ H.Raft_star; H.Raft_pql; H.Multipaxos; H.Mencius ]

(* ---- net: wall-clock throughput/latency over the real runtime ----

   Unlike every figure above, this one leaves the simulator: each run
   spawns a 3-node loopback cluster of server.exe processes and drives
   closed-loop clients over real TCP sockets.  Numbers are wall-clock
   ops/s and microseconds, so they measure the transport shell and the
   kernel loopback path, not the simulated WAN. *)

module Driver = Raftpax_netshell.Driver

let fig_net () =
  Fmt.pr "== net: real-network loopback throughput/latency ==@.";
  let protocols =
    if !quick then [ "raft"; "multipaxos" ]
    else [ "raft"; "raft-star"; "raft-ll"; "raft-pql"; "mencius"; "multipaxos" ]
  in
  let client_sweep = if !quick then [ 1; 4 ] else [ 1; 4; 16 ] in
  let duration_s = if !quick then 2.0 else 10.0 in
  let n = 3 in
  List.iter
    (fun protocol_name ->
      List.iter
        (fun clients_per_node ->
          let b =
            Driver.bench_run ~protocol_name ~n ~clients_per_node ~duration_s
              ~seed:7
          in
          Fmt.pr "%-12s clients=%2d %9.1f ops/s  p50=%ams p99=%ams retries=%d@."
            protocol_name (clients_per_node * n) b.Driver.b_throughput_ops
            pp_ms b.Driver.b_p50_us pp_ms b.Driver.b_p99_us b.Driver.b_retries;
          recorded :=
            Json.Obj
              [
                ("protocol", Json.String b.Driver.b_protocol);
                ( "config",
                  Json.Obj
                    [
                      ("nodes", Json.Int b.Driver.b_nodes);
                      ("clients_per_node", Json.Int b.Driver.b_clients);
                      ("duration_s", Json.Float duration_s);
                      ("seed", Json.Int 7);
                    ] );
                ("completed", Json.Int b.Driver.b_completed);
                ("retries", Json.Int b.Driver.b_retries);
                ("throughput_ops", Json.Float b.Driver.b_throughput_ops);
                ("p50_us", Json.Int b.Driver.b_p50_us);
                ("p99_us", Json.Int b.Driver.b_p99_us);
              ]
            :: !recorded)
        client_sweep)
    protocols

(* ---- driver ---- *)

let figures =
  [
    ("fig9a", fun () -> fig9_latency ~which:`Read ());
    ("fig9b", fun () -> fig9_latency ~which:`Write ());
    ("fig9c", fig9c);
    ("fig9d", fig9d);
    ("fig10a", fun () -> fig10_throughput ~value_size:8 ~label:"a" ());
    ("fig10b", fun () -> fig10_throughput ~value_size:4096 ~label:"b" ());
    ("fig10c", fun () -> fig10_latency ~value_size:8 ~label:"c" ());
    ("fig10d", fun () -> fig10_latency ~value_size:4096 ~label:"d" ());
    ("shard", fig_shard);
    ("engine", fig_engine);
    ("netcost", netcost);
    ("net", fig_net);
    ("ablation-lease", ablation_lease_duration);
    ("ablation-pipeline", ablation_pipeline_window);
    ("micro", micro);
  ]

(* "9a" is accepted as shorthand for "fig9a", etc. *)
let normalize target =
  if List.mem_assoc target figures then Some target
  else if List.mem_assoc ("fig" ^ target) figures then Some ("fig" ^ target)
  else None

let strip_trailing_slash dir =
  let n = String.length dir in
  if n > 1 && dir.[n - 1] = '/' then String.sub dir 0 (n - 1) else dir

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let rec take_out acc = function
    | [] -> List.rev acc
    | "--out" :: dir :: rest ->
        out_dir := strip_trailing_slash dir;
        take_out acc rest
    | a :: rest when String.length a > 6 && String.sub a 0 6 = "--out=" ->
        out_dir := strip_trailing_slash (String.sub a 6 (String.length a - 6));
        take_out acc rest
    | "--shards" :: m :: rest ->
        shards_override := int_of_string_opt m;
        take_out acc rest
    | a :: rest when String.length a > 9 && String.sub a 0 9 = "--shards=" ->
        shards_override :=
          int_of_string_opt (String.sub a 9 (String.length a - 9));
        take_out acc rest
    | "--batch" :: n :: rest ->
        (match int_of_string_opt n with
        | Some n when n >= 1 -> batch_size_flag := n
        | _ -> ());
        take_out acc rest
    | a :: rest when String.length a > 8 && String.sub a 0 8 = "--batch=" ->
        (match int_of_string_opt (String.sub a 8 (String.length a - 8)) with
        | Some n when n >= 1 -> batch_size_flag := n
        | _ -> ());
        take_out acc rest
    | "--batch-delay" :: us :: rest ->
        (match int_of_string_opt us with
        | Some us when us >= 0 -> batch_delay_flag := us
        | _ -> ());
        take_out acc rest
    | a :: rest
      when String.length a > 14 && String.sub a 0 14 = "--batch-delay=" ->
        (match int_of_string_opt (String.sub a 14 (String.length a - 14)) with
        | Some us when us >= 0 -> batch_delay_flag := us
        | _ -> ());
        take_out acc rest
    | a :: rest -> take_out (a :: acc) rest
  in
  let args = take_out [] args in
  if List.mem "full" args then quick := false;
  let targets = List.filter (fun a -> a <> "full") args in
  let targets = if targets = [] || targets = [ "all" ] then List.map fst figures else targets in
  List.iter
    (fun target ->
      match normalize target with
      | Some target ->
          let f = List.assoc target figures in
          recorded := [];
          let t0 = Unix.gettimeofday () in
          f ();
          if !recorded <> [] then write_artifact ~figure:target !recorded;
          Fmt.pr "   [%s took %.1fs wall]@.@." target (Unix.gettimeofday () -. t0)
      | None ->
          (* Mirror repro's unknown-subcommand gate: a typo'd figure name
             must fail the invocation, not silently run nothing. *)
          Fmt.epr "bench: unknown figure '%s'@." target;
          Fmt.epr
            "usage: main.exe [figure ...] [full] [--out DIR] [--shards M] \
             [--batch N] [--batch-delay US]@.";
          Fmt.epr "figures: %a@."
            Fmt.(list ~sep:sp string)
            (List.map fst figures @ [ "all" ]);
          exit 2)
    targets
