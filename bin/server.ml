(* Replica server for the real-network runtime: hosts one protocol
   runtime over TCP and prints READY once listening.  Spawned by the
   loopback demo/bench driver, or by hand:

     server.exe --me 0 --protocol raft --port 4100 \
       --peers 127.0.0.1:4100,127.0.0.1:4101,127.0.0.1:4102 *)

module Shell = Raftpax_netshell.Shell

let () =
  let me = ref 0 in
  let port = ref 0 in
  let peers = ref "" in
  let protocol = ref "raft" in
  let seed = ref 1 in
  let spec =
    [
      ("--me", Arg.Set_int me, "ID  this replica's id");
      ("--port", Arg.Set_int port, "PORT  listen port");
      ( "--peers",
        Arg.Set_string peers,
        "LIST  comma-separated host:port for every replica, in id order" );
      ( "--protocol",
        Arg.Set_string protocol,
        "NAME  raft|raft-star|raft-ll|raft-pql|mencius|multipaxos" );
      ("--seed", Arg.Set_int seed, "N  engine seed");
    ]
  in
  let usage =
    "server.exe --me I --protocol NAME --port P --peers H:P,H:P,..."
  in
  Arg.parse spec (fun a -> raise (Arg.Bad ("unexpected argument " ^ a))) usage;
  let parse_peer s =
    match String.split_on_char ':' s with
    | [ host; p ] -> (host, int_of_string p)
    | _ -> failwith ("bad peer address " ^ s)
  in
  let peers =
    Array.of_list (List.map parse_peer (String.split_on_char ',' !peers))
  in
  match Shell.protocol_of_string !protocol with
  | None ->
      prerr_endline ("server.exe: unknown protocol " ^ !protocol);
      exit 2
  | Some protocol ->
      Shell.run ~me:!me ~protocol ~port:!port ~peers
        ~seed:(Int64.of_int !seed)
