(* Minimal interactive client for a running replica:

     netclient.exe HOST:PORT get KEY
     netclient.exe HOST:PORT put KEY WRITE_ID
     netclient.exe HOST:PORT snapshot *)

module Transport = Raftpax_netshell.Transport
module Wire = Raftpax_netcore.Wire
module Snapshot = Raftpax_netcore.Snapshot
module Types = Raftpax_consensus.Types

let usage () =
  prerr_endline "usage: netclient.exe HOST:PORT (get KEY | put KEY WRITE_ID | snapshot)";
  exit 2

let await_reply c ~timeout_s =
  let deadline = Unix.gettimeofday () +. timeout_s in
  let result = ref None in
  while !result = None && Unix.gettimeofday () < deadline && Transport.alive c do
    Transport.flush c;
    (match Unix.select [ Transport.fd c ] [] [] 0.1 with
    | [], _, _ -> ()
    | _ -> (
        match Transport.recv c with
        | [] -> ()
        | f :: _ -> result := Some f)
    | exception Unix.Unix_error (EINTR, _, _) -> ())
  done;
  !result

let () =
  let argv = Sys.argv in
  if Array.length argv < 3 then usage ();
  let host, port =
    match String.split_on_char ':' argv.(1) with
    | [ h; p ] -> (h, int_of_string p)
    | _ -> usage ()
  in
  let fd = Unix.socket PF_INET SOCK_STREAM 0 in
  Unix.connect fd (ADDR_INET (Unix.inet_addr_of_string host, port));
  let c = Transport.of_fd fd in
  Transport.send c Wire.Client_hello;
  let req =
    match (argv.(2), Array.length argv) with
    | "get", 4 ->
        Wire.Client_req { req_id = 0; op = Types.Get { key = int_of_string argv.(3) } }
    | "put", 5 ->
        Wire.Client_req
          {
            req_id = 0;
            op =
              Types.Put
                {
                  key = int_of_string argv.(3);
                  size = 8;
                  write_id = int_of_string argv.(4);
                };
          }
    | "snapshot", 3 -> Wire.Snapshot_req
    | _ -> usage ()
  in
  Transport.send c req;
  (match await_reply c ~timeout_s:10.0 with
  | Some (Wire.Client_reply { value; _ }) ->
      print_endline
        (match value with None -> "ok" | Some v -> "ok value=" ^ string_of_int v)
  | Some (Wire.Snapshot_reply { node; committed; snapshot }) ->
      Printf.printf "node=%d committed=%d digest=%s\n" node committed
        (Snapshot.digest snapshot)
  | Some _ | None ->
      prerr_endline "no reply within 10s";
      exit 1);
  Transport.close c
