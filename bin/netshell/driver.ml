(* Drives a loopback multi-process cluster: spawns one server.exe per
   replica on 127.0.0.1, runs closed-loop clients over real sockets, and
   implements the three entry points the CLI and bench expose — the
   convergence demo, the sim-vs-net cross-check, and the wall-clock
   benchmark. *)

module Engine = Raftpax_sim.Engine
module Net = Raftpax_sim.Net
module Harness = Raftpax_kvstore.Harness
module Workload = Raftpax_kvstore.Workload
module Wire = Raftpax_netcore.Wire
module Snapshot = Raftpax_netcore.Snapshot
module Types = Raftpax_consensus.Types

(* ---- locating server.exe ---- *)

let server_exe () =
  match Sys.getenv_opt "RAFTPAX_SERVER_EXE" with
  | Some p -> p
  | None ->
      let dir = Filename.dirname Sys.executable_name in
      let candidates =
        [
          Filename.concat dir "server.exe";
          Filename.concat dir (Filename.concat ".." (Filename.concat "bin" "server.exe"));
        ]
      in
      let rec pick = function
        | [] -> failwith "server.exe not found (set RAFTPAX_SERVER_EXE)"
        | c :: rest -> if Sys.file_exists c then c else pick rest
      in
      pick candidates

(* ---- cluster lifecycle ---- *)

type cluster = {
  n : int;
  endpoints : (string * int) array;
  pids : int array;
  stdouts : Unix.file_descr array;
}

let free_ports k =
  (* Bind-to-0 probes; closed before the servers bind.  Loopback CI is
     quiet enough that the race window does not bite in practice. *)
  let fds =
    Array.init k (fun _ ->
        let fd = Unix.socket PF_INET SOCK_STREAM 0 in
        Unix.setsockopt fd Unix.SO_REUSEADDR true;
        Unix.bind fd (ADDR_INET (Unix.inet_addr_of_string "127.0.0.1", 0));
        fd)
  in
  let ports = Array.map Transport.bound_port fds in
  Array.iter Unix.close fds;
  ports

let wait_ready fd ~timeout_s =
  let deadline = Unix.gettimeofday () +. timeout_s in
  let buf = Bytes.create 256 in
  let acc = Buffer.create 64 in
  let rec loop () =
    if String.length (Buffer.contents acc) > 0 && String.contains (Buffer.contents acc) '\n'
    then true
    else begin
      let remaining = deadline -. Unix.gettimeofday () in
      if remaining <= 0.0 then false
      else
        match Unix.select [ fd ] [] [] remaining with
        | [], _, _ -> false
        | _ -> (
            match Unix.read fd buf 0 256 with
            | 0 -> false
            | n ->
                Buffer.add_subbytes acc buf 0 n;
                loop ())
    end
  in
  loop ()

let spawn_cluster ~protocol_name ~n ~seed =
  let exe = server_exe () in
  let ports = free_ports n in
  let endpoints = Array.map (fun p -> ("127.0.0.1", p)) ports in
  let peers =
    String.concat ","
      (Array.to_list (Array.map (fun p -> "127.0.0.1:" ^ string_of_int p) ports))
  in
  let pids = Array.make n 0 in
  let stdouts = Array.make n Unix.stdin in
  for i = 0 to n - 1 do
    let r, w = Unix.pipe () in
    let args =
      [|
        exe;
        "--me"; string_of_int i;
        "--protocol"; protocol_name;
        "--port"; string_of_int ports.(i);
        "--peers"; peers;
        "--seed"; string_of_int (seed + i);
      |]
    in
    let pid = Unix.create_process exe args Unix.stdin w Unix.stderr in
    Unix.close w;
    pids.(i) <- pid;
    stdouts.(i) <- r
  done;
  let cl = { n; endpoints; pids; stdouts } in
  let ok = Array.for_all (fun fd -> wait_ready fd ~timeout_s:10.0) stdouts in
  if not ok then failwith "cluster did not report READY within 10s";
  cl

let kill_cluster cl =
  Array.iter
    (fun pid -> try Unix.kill pid Sys.sigterm with Unix.Unix_error _ -> ())
    cl.pids;
  Array.iter
    (fun pid ->
      try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ())
    cl.pids;
  Array.iter
    (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
    cl.stdouts

(* ---- client connections ---- *)

let connect (host, port) =
  let fd = Unix.socket PF_INET SOCK_STREAM 0 in
  Unix.connect fd (ADDR_INET (Unix.inet_addr_of_string host, port));
  let c = Transport.of_fd fd in
  Transport.send c Wire.Client_hello;
  c

(* ---- closed-loop client run ---- *)

type stop = Ops of int | Duration of float

type run_result = {
  completed : int;
  retries : int;
  latencies_us : int list;  (** completed-op latencies, newest first *)
  elapsed_s : float;
  ops_in_order : Types.op list;  (** completion order *)
}

let retry_after_s = 5.0

type client = {
  cl_node : int;
  mutable outstanding : (int * Types.op * float) option;
      (** req_id, op, started (wall seconds) *)
}

let run_clients ~endpoints ~clients_per_node ?total_clients ~spec ~workload_seed
    ~stop () =
  let n = Array.length endpoints in
  let conns = Array.map connect endpoints in
  let wl = Workload.create ~seed:workload_seed ~regions:n spec in
  let num_clients =
    match total_clients with Some k -> k | None -> n * clients_per_node
  in
  let clients =
    Array.init num_clients (fun i -> { cl_node = i mod n; outstanding = None })
  in
  let req_owner = Hashtbl.create 1024 in
  let next_req = ref 0 in
  let completed = ref 0 in
  let retries = ref 0 in
  let latencies = ref [] in
  let ops_done = ref [] in
  let t0 = Unix.gettimeofday () in
  let stopped now =
    match stop with
    | Ops k -> !completed >= k
    | Duration s -> now -. t0 >= s
  in
  let submit c op =
    let id = !next_req in
    incr next_req;
    Hashtbl.replace req_owner id c;
    c.outstanding <- Some (id, op, Unix.gettimeofday ());
    Transport.send conns.(c.cl_node) (Wire.Client_req { req_id = id; op })
  in
  let issue_fresh now =
    Array.iter
      (fun c ->
        if c.outstanding = None && not (stopped now) then
          submit c (Workload.next_op wl ~region:c.cl_node))
      clients
  in
  let handle_frame = function
    | Wire.Client_reply { req_id; value = _ } -> (
        match Hashtbl.find_opt req_owner req_id with
        | None -> ()
        | Some c -> (
            Hashtbl.remove req_owner req_id;
            match c.outstanding with
            | Some (id, op, started) when id = req_id ->
                c.outstanding <- None;
                incr completed;
                let lat_us =
                  int_of_float ((Unix.gettimeofday () -. started) *. 1e6)
                in
                latencies := lat_us :: !latencies;
                ops_done := op :: !ops_done
            | _ -> () (* stale reply for a retried request *)))
    | _ -> ()
  in
  let finished () =
    let now = Unix.gettimeofday () in
    match stop with
    | Ops _ -> stopped now
    | Duration _ -> stopped now
  in
  while not (finished ()) do
    let now = Unix.gettimeofday () in
    issue_fresh now;
    (* Retry stragglers under a fresh request id. *)
    Array.iter
      (fun c ->
        match c.outstanding with
        | Some (id, op, started) when now -. started > retry_after_s ->
            Hashtbl.remove req_owner id;
            incr retries;
            submit c op
        | _ -> ())
      clients;
    let fds = Array.to_list (Array.map Transport.fd conns) in
    let writes =
      List.filter_map
        (fun c -> if Transport.pending_out c then Some (Transport.fd c) else None)
        (Array.to_list conns)
    in
    (match Unix.select fds writes [] 0.05 with
    | rd, wr, _ ->
        Array.iter
          (fun c ->
            if List.memq (Transport.fd c) wr then Transport.flush c;
            if List.memq (Transport.fd c) rd then
              List.iter handle_frame (Transport.recv c))
          conns
    | exception Unix.Unix_error (EINTR, _, _) -> ());
    if Array.exists (fun c -> not (Transport.alive c)) conns then
      failwith "lost connection to a server"
  done;
  let elapsed = Unix.gettimeofday () -. t0 in
  Array.iter Transport.close conns;
  {
    completed = !completed;
    retries = !retries;
    latencies_us = !latencies;
    elapsed_s = elapsed;
    ops_in_order = List.rev !ops_done;
  }

(* ---- snapshots ---- *)

let fetch_snapshot endpoint ~timeout_s =
  let c = connect endpoint in
  Transport.send c Wire.Snapshot_req;
  let deadline = Unix.gettimeofday () +. timeout_s in
  let result = ref None in
  while !result = None && Unix.gettimeofday () < deadline && Transport.alive c do
    (match Unix.select [ Transport.fd c ] [] [] 0.1 with
    | [], _, _ -> ()
    | _ ->
        List.iter
          (function
            | Wire.Snapshot_reply { node; committed; snapshot } ->
                result := Some (node, committed, snapshot)
            | _ -> ())
          (Transport.recv c)
    | exception Unix.Unix_error (EINTR, _, _) -> ());
    Transport.flush c
  done;
  Transport.close c;
  !result

let snapshot_all cl ~timeout_s =
  Array.map (fun ep -> fetch_snapshot ep ~timeout_s) cl.endpoints

(* Poll until every replica reports the same snapshot covering at least
   [min_ops] committed operations. *)
let await_agreement cl ~min_ops ~timeout_s =
  let deadline = Unix.gettimeofday () +. timeout_s in
  let rec loop last =
    let snaps = snapshot_all cl ~timeout_s:5.0 in
    let all =
      Array.for_all (fun s -> s <> None) snaps
    in
    if all then begin
      let snaps = Array.map Option.get snaps in
      let _, c0, s0 = snaps.(0) in
      let agreed =
        c0 >= min_ops
        && Array.for_all (fun (_, c, s) -> c = c0 && String.equal s s0) snaps
      in
      if agreed then Some snaps
      else if Unix.gettimeofday () > deadline then last
      else begin
        Unix.sleepf 0.25;
        loop (Some snaps)
      end
    end
    else if Unix.gettimeofday () > deadline then last
    else begin
      Unix.sleepf 0.25;
      loop last
    end
  in
  loop None

(* ---- entry points ---- *)

type demo_result = {
  d_ok : bool;
  d_completed : int;
  d_retries : int;
  d_throughput : float;
  d_snapshots : (int * int * string) array;  (** node, committed, snapshot *)
}

let quick_spec clients_per_node =
  {
    Workload.read_fraction = 0.5;
    conflict_rate = 0.05;
    value_size = 8;
    records = 1_000;
    clients_per_region = clients_per_node;
    key_dist = Workload.Uniform;
  }

let demo ~protocol_name ~n ~ops ~clients_per_node ~seed =
  let cl = spawn_cluster ~protocol_name ~n ~seed in
  Fun.protect
    ~finally:(fun () -> kill_cluster cl)
    (fun () ->
      let r =
        run_clients ~endpoints:cl.endpoints ~clients_per_node
          ~spec:(quick_spec clients_per_node)
          ~workload_seed:(Int64.of_int seed) ~stop:(Ops ops) ()
      in
      (* Reads served from a lease (LL/PQL) never enter the log, so the
         count gate is on completed writes — those commit everywhere. *)
      let puts =
        List.length
          (List.filter
             (function Types.Put _ -> true | Types.Get _ -> false)
             r.ops_in_order)
      in
      let snaps = await_agreement cl ~min_ops:puts ~timeout_s:30.0 in
      match snaps with
      | Some snaps ->
          let _, c0, s0 = snaps.(0) in
          let agreed =
            c0 >= puts
            && Array.for_all
                 (fun (_, c, s) -> c = c0 && String.equal s s0)
                 snaps
          in
          {
            d_ok = agreed && r.completed >= ops;
            d_completed = r.completed;
            d_retries = r.retries;
            d_throughput = float_of_int r.completed /. r.elapsed_s;
            d_snapshots = snaps;
          }
      | None ->
          {
            d_ok = false;
            d_completed = r.completed;
            d_retries = r.retries;
            d_throughput = float_of_int r.completed /. r.elapsed_s;
            d_snapshots = [||];
          })

(* Feed one recorded command stream through the simulated harness and
   return the leader's canonical snapshot. *)
let sim_replay ~protocol ~n ~ops_in_order ~seed =
  let engine = Engine.create ~seed:(Int64.of_int seed) () in
  let net = Net.create engine ~nodes:(Shell.nodes_for n) in
  let inst = Harness.make_instance protocol net ~leader:0 in
  List.iter
    (fun op ->
      let arrived = ref false in
      ignore (inst.Harness.submit ~node:0 op (fun _ -> arrived := true));
      let guard = ref 0 in
      while (not !arrived) && !guard < 10_000 do
        Engine.run engine ~until:(Engine.now engine + 10_000);
        incr guard
      done;
      if not !arrived then failwith "sim replay: op did not complete")
    ops_in_order;
  Snapshot.of_ops (inst.Harness.committed_ops ~node:0)

type crosscheck_result = {
  c_ok : bool;
  c_ops : int;
  c_net_digest : string;
  c_sim_digest : string;
}

let crosscheck ~protocol_name ~n ~ops ~seed =
  let protocol =
    match Shell.protocol_of_string protocol_name with
    | Some p -> p
    | None -> invalid_arg ("unknown protocol " ^ protocol_name)
  in
  let cl = spawn_cluster ~protocol_name ~n ~seed in
  let net_run =
    Fun.protect
      ~finally:(fun () -> kill_cluster cl)
      (fun () ->
        (* One sequential client: completion order = submission order =
           commit order, so the same stream replayed in the simulator
           must produce the identical snapshot.  Write-only, because a
           leased read (LL/PQL) commits in neither harness while a
           logged read commits in both — whether a given read takes the
           lease path depends on timing, which wall-clock and sim don't
           share. *)
        let r =
          run_clients ~endpoints:cl.endpoints ~clients_per_node:1
            ~total_clients:1
            ~spec:{ (quick_spec 1) with clients_per_region = 1; read_fraction = 0.0 }
            ~workload_seed:(Int64.of_int seed) ~stop:(Ops ops) ()
        in
        if r.retries > 0 then failwith "crosscheck: retries on loopback";
        let snaps = await_agreement cl ~min_ops:r.completed ~timeout_s:30.0 in
        (r, snaps))
  in
  let r, snaps = net_run in
  match snaps with
  | None -> { c_ok = false; c_ops = r.completed; c_net_digest = "-"; c_sim_digest = "-" }
  | Some snaps ->
      let _, _, net_snap = snaps.(0) in
      let sim_snap = sim_replay ~protocol ~n ~ops_in_order:r.ops_in_order ~seed in
      if not (String.equal net_snap sim_snap) then begin
        (* Leave the two snapshots on disk for diffing. *)
        let dump name s =
          let oc = open_out (Filename.concat (Filename.get_temp_dir_name ()) name) in
          output_string oc s;
          close_out oc
        in
        dump "raftpax_crosscheck_net.txt" net_snap;
        dump "raftpax_crosscheck_sim.txt" sim_snap
      end;
      {
        c_ok = String.equal net_snap sim_snap;
        c_ops = r.completed;
        c_net_digest = Snapshot.digest net_snap;
        c_sim_digest = Snapshot.digest sim_snap;
      }

(* ---- wall-clock bench ---- *)

type bench_run = {
  b_protocol : string;
  b_clients : int;  (** per node *)
  b_nodes : int;
  b_completed : int;
  b_retries : int;
  b_throughput_ops : float;
  b_p50_us : int;
  b_p99_us : int;
}

let percentile sorted p =
  match Array.length sorted with
  | 0 -> 0
  | len ->
      let idx = int_of_float (p *. float_of_int (len - 1)) in
      sorted.(max 0 (min (len - 1) idx))

let bench_run ~protocol_name ~n ~clients_per_node ~duration_s ~seed =
  let cl = spawn_cluster ~protocol_name ~n ~seed in
  Fun.protect
    ~finally:(fun () -> kill_cluster cl)
    (fun () ->
      let r =
        run_clients ~endpoints:cl.endpoints ~clients_per_node
          ~spec:(quick_spec clients_per_node)
          ~workload_seed:(Int64.of_int seed)
          ~stop:(Duration duration_s) ()
      in
      let lats = Array.of_list r.latencies_us in
      Array.sort Int.compare lats;
      {
        b_protocol = protocol_name;
        b_clients = clients_per_node;
        b_nodes = n;
        b_completed = r.completed;
        b_retries = r.retries;
        b_throughput_ops = float_of_int r.completed /. r.elapsed_s;
        b_p50_us = percentile lats 0.50;
        b_p99_us = percentile lats 0.99;
      })
