(* Nonblocking framed TCP transport: connections with buffered writes,
   frame reassembly on reads, and reconnecting outbound peer links with
   capped exponential backoff.  This is the effectful half of the
   real-network runtime — the pure codec lives in lib/netcore, everything
   that touches a socket lives here under bin/. *)

module Framing = Raftpax_netcore.Framing
module Wire = Raftpax_netcore.Wire
module Codec = Raftpax_netcore.Codec

(* A connection never buffers more than this; past it, whole frames are
   dropped.  Consensus tolerates loss — every runtime retransmits — so
   shedding load beats unbounded memory under backpressure. *)
let max_buffered = 4 * 1024 * 1024
let read_chunk = 65536

type conn = {
  fd : Unix.file_descr;
  reasm : Framing.reassembler;
  outq : string Queue.t;
  scratch : Codec.writer;
      (** per-connection frame-encoding buffer, reset between sends so
          encoding stops allocating per message *)
  mutable out_head_off : int;  (** written prefix of the queue head *)
  mutable out_bytes : int;
  mutable alive : bool;
}

let of_fd fd =
  Unix.set_nonblock fd;
  (try Unix.setsockopt fd Unix.TCP_NODELAY true
   with Unix.Unix_error _ -> () (* not a TCP socket, e.g. a test pipe *));
  {
    fd;
    reasm = Framing.reassembler ();
    outq = Queue.create ();
    scratch = Codec.writer_sized 4096;
    out_head_off = 0;
    out_bytes = 0;
    alive = true;
  }

let alive c = c.alive
let fd c = c.fd
let pending_out c = c.out_bytes > 0

let close c =
  if c.alive then begin
    c.alive <- false;
    try Unix.close c.fd with Unix.Unix_error _ -> ()
  end

let flush c =
  if c.alive then begin
    try
      while not (Queue.is_empty c.outq) do
        let head = Queue.peek c.outq in
        let off = c.out_head_off in
        let n = Unix.write_substring c.fd head off (String.length head - off) in
        c.out_bytes <- c.out_bytes - n;
        if off + n >= String.length head then begin
          ignore (Queue.pop c.outq);
          c.out_head_off <- 0
        end
        else begin
          c.out_head_off <- off + n;
          raise Exit (* kernel buffer full; wait for writability *)
        end
      done
    with
    | Exit -> ()
    | Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) -> ()
    | Unix.Unix_error _ -> close c
  end

let send c frame =
  if c.alive then begin
    Wire.encode_frame_into c.scratch frame;
    let payload = Framing.encode_writer c.scratch in
    if c.out_bytes + String.length payload <= max_buffered then begin
      Queue.add payload c.outq;
      c.out_bytes <- c.out_bytes + String.length payload
    end;
    (* else: drop the frame — the protocols retransmit *)
    flush c
  end

(* Read until EAGAIN; returns decoded frames in arrival order.  A frame
   that fails to decode, or an oversized length prefix, poisons the
   stream and drops the connection. *)
let recv c =
  if not c.alive then []
  else begin
    let buf = Bytes.create read_chunk in
    let frames = ref [] in
    let continue = ref true in
    (try
       while !continue do
         let n = Unix.read c.fd buf 0 read_chunk in
         if n = 0 then begin
           close c;
           continue := false
         end
         else
           match Framing.feed c.reasm (Bytes.sub_string buf 0 n) with
           | Ok payloads -> frames := List.rev_append payloads !frames
           | Error (Framing.Frame_too_large _) ->
               close c;
               continue := false
       done
     with
    | Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) -> ()
    | Unix.Unix_error _ -> close c);
    let payloads = List.rev !frames in
    let decoded =
      List.filter_map
        (fun p ->
          match Wire.decode_frame p with
          | Ok f -> Some f
          | Error _ ->
              close c;
              None)
        payloads
    in
    decoded
  end

(* ---- listening ---- *)

let listen_on ?(host = "127.0.0.1") port =
  let fd = Unix.socket PF_INET SOCK_STREAM 0 in
  Unix.setsockopt fd Unix.SO_REUSEADDR true;
  Unix.bind fd (ADDR_INET (Unix.inet_addr_of_string host, port));
  Unix.listen fd 64;
  Unix.set_nonblock fd;
  fd

let bound_port fd =
  match Unix.getsockname fd with
  | ADDR_INET (_, p) -> p
  | ADDR_UNIX _ -> invalid_arg "bound_port"

let accept listen_fd =
  match Unix.accept listen_fd with
  | fd, _ -> Some (of_fd fd)
  | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) -> None
  | exception Unix.Unix_error _ -> None

(* ---- reconnecting outbound links ---- *)

type link_state = Down | Dialing of Unix.file_descr | Up of conn

type link = {
  host : string;
  l_port : int;
  hello : Wire.frame;  (** re-sent first on every (re)connect *)
  mutable state : link_state;
  mutable backoff_ms : int;
  mutable next_attempt_us : int;
  pending : string Queue.t;
      (** encoded frames queued while the link is down, flushed after the
          hello on (re)connect; without this, messages sent during the
          initial dial — e.g. a Raft Forward, which is never retransmitted —
          would be lost *)
  mutable pending_bytes : int;
  l_scratch : Codec.writer;
      (** frame-encoding buffer for sends while the link is down *)
}

let backoff_min_ms = 50
let backoff_max_ms = 2_000

let link ~host ~port ~hello =
  {
    host;
    l_port = port;
    hello;
    state = Down;
    backoff_ms = backoff_min_ms;
    next_attempt_us = 0;
    pending = Queue.create ();
    pending_bytes = 0;
    l_scratch = Codec.writer_sized 4096;
  }

let link_up l ~now_us fd =
  let c = of_fd fd in
  l.state <- Up c;
  l.backoff_ms <- backoff_min_ms;
  ignore now_us;
  send c l.hello;
  while not (Queue.is_empty l.pending) do
    let payload = Queue.pop l.pending in
    l.pending_bytes <- l.pending_bytes - String.length payload;
    if c.out_bytes + String.length payload <= max_buffered then begin
      Queue.add payload c.outq;
      c.out_bytes <- c.out_bytes + String.length payload
    end
  done;
  flush c

let link_down l ~now_us =
  (match l.state with
  | Up c -> close c
  | Dialing fd -> ( try Unix.close fd with Unix.Unix_error _ -> ())
  | Down -> ());
  l.state <- Down;
  l.next_attempt_us <- now_us + (l.backoff_ms * 1000);
  l.backoff_ms <- min backoff_max_ms (l.backoff_ms * 2)

(* Advance the link state machine: start a dial when due, detect a died
   connection.  Call once per event-loop iteration. *)
let link_poll l ~now_us =
  match l.state with
  | Up c -> if not c.alive then link_down l ~now_us
  | Dialing _ -> ()
  | Down ->
      if now_us >= l.next_attempt_us then begin
        let fd = Unix.socket PF_INET SOCK_STREAM 0 in
        Unix.set_nonblock fd;
        match
          Unix.connect fd
            (ADDR_INET (Unix.inet_addr_of_string l.host, l.l_port))
        with
        | () -> link_up l ~now_us fd
        | exception Unix.Unix_error (EINPROGRESS, _, _) ->
            l.state <- Dialing fd
        | exception Unix.Unix_error _ ->
            (try Unix.close fd with Unix.Unix_error _ -> ());
            l.state <- Down;
            l.next_attempt_us <- now_us + (l.backoff_ms * 1000);
            l.backoff_ms <- min backoff_max_ms (l.backoff_ms * 2)
      end

(* After select reports the dialing fd writable: resolve the connect. *)
let link_dial_done l ~now_us =
  match l.state with
  | Dialing fd -> (
      match Unix.getsockopt_error fd with
      | None -> link_up l ~now_us fd
      | Some _ ->
          (try Unix.close fd with Unix.Unix_error _ -> ());
          l.state <- Down;
          l.next_attempt_us <- now_us + (l.backoff_ms * 1000);
          l.backoff_ms <- min backoff_max_ms (l.backoff_ms * 2))
  | Up _ | Down -> ()

let link_send l frame =
  match l.state with
  | Up c -> send c frame
  | Dialing _ | Down ->
      Wire.encode_frame_into l.l_scratch frame;
      let payload = Framing.encode_writer l.l_scratch in
      if l.pending_bytes + String.length payload <= max_buffered then begin
        Queue.add payload l.pending;
        l.pending_bytes <- l.pending_bytes + String.length payload
      end
(* past the cap the frame is dropped — the protocols retransmit *)

let link_conn l = match l.state with Up c -> Some c | _ -> None
let link_dialing_fd l = match l.state with Dialing fd -> Some fd | _ -> None
