(* The server process: one unchanged protocol runtime hosted over real
   TCP sockets.

   The process constructs the full n-replica runtime (exactly as the
   simulator does) but only replica [me] is live here.  Every
   cross-replica send is intercepted by the wire hook; messages from the
   local replica go out over per-peer links, messages from the dormant
   replicas (whose real instances run in the other processes) are
   dropped at the wire.  The dormant replicas receive nothing, so they
   stay inert — their timers fire into the void.  Inbound [Peer_msg]
   frames are injected into replica [me]'s handler.

   Sim time is mapped to wall-clock: the engine's virtual microsecond
   clock is advanced to "microseconds since process start" on every
   event-loop iteration, so the runtimes' timers (heartbeats, election
   timeouts, leases) fire in real time; the select timeout is sized from
   the engine's next deadline.

   Known limitation: MultiPaxos/Mencius failure detection reads the
   simulator's omniscient down-flags, which no process can observe for a
   remote peer, so their takeover/revocation paths do not engage over
   the network (Raft's message-driven elections work unchanged).  A real
   failure detector is the documented follow-on. *)

module Engine = Raftpax_sim.Engine
module Net = Raftpax_sim.Net
module Topology = Raftpax_sim.Topology
module Harness = Raftpax_kvstore.Harness
module Wire = Raftpax_netcore.Wire
module Snapshot = Raftpax_netcore.Snapshot
module Types = Raftpax_consensus.Types

let protocols =
  [
    ("raft", Harness.Raft);
    ("raft-star", Harness.Raft_star);
    ("raft-ll", Harness.Raft_ll);
    ("raft-pql", Harness.Raft_pql);
    ("mencius", Harness.Mencius);
    ("multipaxos", Harness.Multipaxos);
  ]

let protocol_of_string s = List.assoc_opt (String.lowercase_ascii s) protocols

(* One site per replica, cycling through the topology — only used for
   the simulated self-send hop; cross-replica latency is the real
   network's. *)
let nodes_for n =
  let sites = Array.of_list Topology.sites in
  List.init n (fun i -> { Net.id = i; site = sites.(i mod Array.length sites) })

type client_session = { conn : Transport.conn }

let run ~me ~protocol ~port ~peers ~seed =
  let n = Array.length peers in
  if me < 0 || me >= n then invalid_arg "Shell.run: me out of range";
  let engine = Engine.create ~seed () in
  let net = Net.create engine ~nodes:(nodes_for n) in
  let wired = Harness.make_wired protocol net ~leader:0 in
  wired.Harness.w_set_cmd_ids ~base:me ~stride:n;
  let t0 = Unix.gettimeofday () in
  let wall_us () = int_of_float ((Unix.gettimeofday () -. t0) *. 1e6) in
  let links =
    Array.init n (fun j ->
        if j = me then None
        else begin
          let host, pport = peers.(j) in
          Some
            (Transport.link ~host ~port:pport
               ~hello:(Wire.Peer_hello { node = me }))
        end)
  in
  wired.Harness.w_set_wire
    (Some
       (fun ~src ~dst ~size:_ msg ->
         (* Only the live replica's traffic reaches the wire; dormant
            replicas' output vanishes here. *)
         if src = me && dst <> me && dst >= 0 && dst < n then
           match links.(dst) with
           | Some l -> Transport.link_send l (Wire.Peer_msg { src; dst; msg })
           | None -> ()));
  let listen_fd = Transport.listen_on port in
  (* Unclassified inbound connections: the first frame tells us whether
     the dialer is a peer replica or a client. *)
  let pending = ref [] in
  let peer_ins = ref [] in
  let clients = ref [] in
  let handle_client_frame (cs : client_session) = function
    | Wire.Client_req { req_id; op } ->
        ignore
          (wired.Harness.w_instance.Harness.submit ~node:me op (fun reply ->
               Transport.send cs.conn
                 (Wire.Client_reply { req_id; value = reply.Types.value })))
    | Wire.Snapshot_req ->
        let ops = wired.Harness.w_instance.Harness.committed_ops ~node:me in
        Transport.send cs.conn
          (Wire.Snapshot_reply
             {
               node = me;
               committed = List.length ops;
               snapshot = Snapshot.of_ops ops;
             })
    | Wire.Client_hello -> ()
    | Wire.Peer_hello _ | Wire.Peer_msg _ | Wire.Client_reply _
    | Wire.Snapshot_reply _ ->
        Transport.close cs.conn
  in
  let handle_peer_frame conn = function
    | Wire.Peer_msg { src = _; dst; msg } ->
        if dst = me then wired.Harness.w_deliver ~node:me msg
    | Wire.Peer_hello _ -> ()
    | _ -> Transport.close conn
  in
  let classify conn frames =
    match frames with
    | [] -> ()
    | first :: rest -> (
        match first with
        | Wire.Peer_hello _ ->
            peer_ins := conn :: !peer_ins;
            List.iter (handle_peer_frame conn) rest
        | Wire.Client_hello ->
            let cs = { conn } in
            clients := cs :: !clients;
            List.iter (handle_client_frame cs) rest
        | _ -> Transport.close conn)
  in
  print_string "READY\n";
  flush stdout;
  (* ---- event loop ---- *)
  let running = ref true in
  Sys.set_signal Sys.sigterm (Signal_handle (fun _ -> running := false));
  Sys.set_signal Sys.sigint (Signal_handle (fun _ -> running := false));
  Sys.set_signal Sys.sigpipe Signal_ignore;
  while !running do
    let now = wall_us () in
    (* Fire every due timer/self-send at its virtual deadline. *)
    Engine.run engine ~until:now;
    Array.iter
      (function Some l -> Transport.link_poll l ~now_us:now | None -> ())
      links;
    let live_conns =
      List.filter Transport.alive
        (!peer_ins @ !pending
        @ List.map (fun cs -> cs.conn) !clients
        @ List.filter_map
            (fun l -> Option.bind l Transport.link_conn)
            (Array.to_list links))
    in
    let reads = listen_fd :: List.map Transport.fd live_conns in
    let writes =
      List.filter_map
        (fun l ->
          match l with
          | None -> None
          | Some l -> (
              match Transport.link_dialing_fd l with
              | Some fd -> Some fd
              | None ->
                  Option.bind (Transport.link_conn l) (fun c ->
                      if Transport.pending_out c then Some (Transport.fd c)
                      else None)))
        (Array.to_list links)
      @ List.filter_map
          (fun c ->
            if Transport.pending_out c then Some (Transport.fd c) else None)
          live_conns
    in
    let timeout =
      match Engine.next_deadline engine with
      | Some d -> Float.max 0.0005 (Float.min 0.05 (float_of_int (d - now) /. 1e6))
      | None -> 0.05
    in
    let rd, wr, _ =
      try Unix.select reads writes [] timeout
      with Unix.Unix_error (EINTR, _, _) -> ([], [], [])
    in
    let now = wall_us () in
    Engine.run engine ~until:now;
    (* Accept new connections. *)
    if List.memq listen_fd rd then begin
      let continue = ref true in
      while !continue do
        match Transport.accept listen_fd with
        | Some conn -> pending := conn :: !pending
        | None -> continue := false
      done
    end;
    (* Resolve in-flight dials; flush writable connections. *)
    Array.iter
      (function
        | Some l -> (
            (match Transport.link_dialing_fd l with
            | Some fd when List.memq fd wr -> Transport.link_dial_done l ~now_us:now
            | _ -> ());
            match Transport.link_conn l with
            | Some c when List.memq (Transport.fd c) wr -> Transport.flush c
            | _ -> ())
        | None -> ())
      links;
    List.iter
      (fun c -> if List.memq (Transport.fd c) wr then Transport.flush c)
      live_conns;
    (* Read: classified connections dispatch; pending ones classify. *)
    let readable c = Transport.alive c && List.memq (Transport.fd c) rd in
    List.iter
      (fun c -> if readable c then List.iter (handle_peer_frame c) (Transport.recv c))
      !peer_ins;
    List.iter
      (fun cs ->
        if readable cs.conn then
          List.iter (handle_client_frame cs) (Transport.recv cs.conn))
      !clients;
    let pend = !pending in
    pending := [];
    List.iter
      (fun c ->
        if readable c then classify c (Transport.recv c)
        else if Transport.alive c then pending := c :: !pending)
      pend;
    (* Drop dead connections. *)
    peer_ins := List.filter Transport.alive !peer_ins;
    clients := List.filter (fun cs -> Transport.alive cs.conn) !clients;
    pending := List.filter Transport.alive !pending
  done;
  (try Unix.close listen_fd with Unix.Unix_error _ -> ())
