(* raftpax — command-line front end.

   Subcommands:
     check       model-check a spec's invariants
     refine      check a refinement mapping
     port        run the porting pipeline and its Figure-5 obligations
     simulate    run a protocol under the YCSB-like workload
     trace       per-request span waterfalls from a traced run
     shard       sharded multi-group run with per-group lin oracles
     nemesis     deterministic fault-injection sweep
     mcheck      explicit-state model checking of the real runtimes
     topology    print the WAN model
     lint        static analysis: detlint + perflint + parlint
     net         real-network loopback demo / sim-vs-net cross-check *)

open Cmdliner
open Raftpax_core
module Sim = Raftpax_sim
module KV = Raftpax_kvstore
module Nem = Raftpax_nemesis
module MC = Raftpax_mcheck
module Tel = Raftpax_telemetry
module Lint = Raftpax_lint

(* ---- shared arguments ---- *)

let cfg_of ~acceptors ~values ~ballots ~indexes =
  {
    Proto_config.acceptors;
    values;
    max_ballot = ballots;
    max_index = indexes;
  }

let acceptors =
  Arg.(value & opt int 3 & info [ "acceptors" ] ~doc:"Number of acceptors.")

let values = Arg.(value & opt int 1 & info [ "values" ] ~doc:"Distinct values.")
let ballots = Arg.(value & opt int 1 & info [ "ballots" ] ~doc:"Max ballot.")
let indexes = Arg.(value & opt int 0 & info [ "indexes" ] ~doc:"Max log index.")

let max_states =
  Arg.(
    value
    & opt int 200_000
    & info [ "max-states" ] ~doc:"Bound on explored states.")

let spec_arg names =
  Arg.(
    required
    & pos 0 (some (enum names)) None
    & info [] ~docv:"SPEC" ~doc:"Which specification.")

(* ---- check ---- *)

let specs cfg =
  [
    ("multipaxos", (Spec_multipaxos.spec cfg, Spec_multipaxos.invariants cfg));
    ("raft-star", (Spec_raft_star.spec cfg, Spec_raft_star.invariants cfg));
    ("raft", (Spec_raft_vanilla.spec cfg, Spec_raft_vanilla.invariants cfg));
    ( "pql",
      ( Port.apply (Opt_pql.delta cfg) (Spec_multipaxos.spec cfg),
        Opt_pql.invariants cfg @ Spec_multipaxos.invariants cfg ) );
    ( "mencius",
      ( Port.apply (Opt_mencius.delta cfg) (Spec_multipaxos.spec cfg),
        Opt_mencius.invariants cfg @ Spec_multipaxos.invariants cfg ) );
  ]

let run_check which acceptors values ballots indexes max_states =
  let cfg = cfg_of ~acceptors ~values ~ballots ~indexes in
  let spec, invariants = List.assoc which (specs cfg) in
  Fmt.pr "checking %s on %d acceptors, %d values, ballots<=%d, indexes<=%d@."
    which acceptors values ballots indexes;
  let r = Explorer.check ~max_states ~invariants spec in
  Fmt.pr "%a@." Explorer.pp_result r;
  match r with Explorer.Pass _ -> 0 | _ -> 1

let check_cmd =
  let which =
    spec_arg
      [
        ("multipaxos", "multipaxos");
        ("raft-star", "raft-star");
        ("raft", "raft");
        ("pql", "pql");
        ("mencius", "mencius");
      ]
  in
  Cmd.v
    (Cmd.info "check" ~doc:"Model-check a protocol spec's invariants.")
    Term.(
      const run_check $ which $ acceptors $ values $ ballots $ indexes
      $ max_states)

(* ---- refine ---- *)

let run_refine which acceptors values ballots indexes max_states =
  let cfg = cfg_of ~acceptors ~values ~ballots ~indexes in
  let low, high, map =
    match which with
    | `Raft_star_paxos ->
        (Spec_raft_star.spec cfg, Spec_multipaxos.spec cfg, Spec_raft_star.to_paxos cfg)
    | `Raft_paxos ->
        ( Spec_raft_vanilla.spec cfg,
          Spec_multipaxos.spec cfg,
          Spec_raft_vanilla.to_paxos cfg )
    | `Log_kv -> (Example_kv.log_store, Example_kv.kv_store, Example_kv.log_to_kv)
  in
  let r = Refinement.check ~max_states ~max_hops:4 ~low ~high ~map () in
  Fmt.pr "%a@." Refinement.pp_result r;
  match r with Refinement.Refines _ -> 0 | _ -> 1

let refine_cmd =
  let which =
    spec_arg
      [
        ("raft-star=>paxos", `Raft_star_paxos);
        ("raft=>paxos", `Raft_paxos);
        ("log=>kv", `Log_kv);
      ]
  in
  Cmd.v
    (Cmd.info "refine"
       ~doc:
         "Check a refinement mapping (raft=>paxos is expected to fail — the \
          paper's negative result; deepen bounds to find the erase \
          counterexample).")
    Term.(
      const run_refine $ which $ acceptors $ values $ ballots $ indexes
      $ max_states)

(* ---- port ---- *)

let raft_implies = function
  | "IncreaseHighestBallot" -> [ "IncreaseHighestBallot" ]
  | "Phase1a" -> [ "Phase1a" ]
  | "Phase1b" -> [ "Phase1b" ]
  | "BecomeLeader" -> [ "BecomeLeader" ]
  | "ProposeEntries" -> [ "Propose" ]
  | "AcceptEntries" -> [ "Accept" ]
  | _ -> []

let raft_label_map ~b_action ~a_action:_ label =
  match b_action with
  | "ProposeEntries" -> Label.keep [ "a"; "i"; "v" ] label
  | _ -> label

let run_port which acceptors values ballots indexes max_states =
  let cfg = cfg_of ~acceptors ~values ~ballots ~indexes in
  let delta =
    match which with `Pql -> Opt_pql.delta cfg | `Mencius -> Opt_mencius.delta cfg
  in
  let mp = Spec_multipaxos.spec cfg in
  let rs = Spec_raft_star.spec cfg in
  Fmt.pr "delta:@.%a@.@." Delta.pp delta;
  Fmt.pr "1. non-mutating classification:@.";
  (match Port.check_non_mutating ~max_states ~base:mp ~delta () with
  | Refinement.Refines r -> Fmt.pr "   ok (%d states)@." r.checked_states
  | Refinement.Fails (f, _) -> Fmt.pr "   FAILS at %s@." f.b_action);
  Fmt.pr "2. porting to Raft* and checking the Figure-5 obligations:@.";
  let r1, r2 =
    Port.check_ported ~max_states ~max_hops:4 ~low:rs ~high:mp ~delta
      ~map:(Spec_raft_star.to_paxos cfg) ~implies:raft_implies
      ~label_map:raft_label_map ()
  in
  let show name = function
    | Refinement.Refines r -> Fmt.pr "   %s: ok (%d states)@." name r.checked_states
    | Refinement.Fails (f, _) -> Fmt.pr "   %s: FAILS at %s(%s)@." name f.b_action f.b_label
  in
  show "B^D => A^D" r1;
  show "B^D => B  " r2;
  match (r1, r2) with Refinement.Refines _, Refinement.Refines _ -> 0 | _ -> 1

let port_cmd =
  let which = spec_arg [ ("pql", `Pql); ("mencius", `Mencius) ] in
  Cmd.v
    (Cmd.info "port" ~doc:"Port an optimization from MultiPaxos to Raft*.")
    Term.(
      const run_port $ which $ acceptors $ values $ ballots $ indexes
      $ max_states)

(* ---- simulate ---- *)

let run_simulate proto duration clients read_pct conflict_pct size leader_site =
  let workload =
    {
      KV.Workload.read_fraction = float_of_int read_pct /. 100.0;
      conflict_rate = float_of_int conflict_pct /. 100.0;
      value_size = size;
      records = 100_000;
      clients_per_region = clients;
      key_dist = KV.Workload.Uniform;
    }
  in
  let leader_site =
    List.find
      (fun s -> String.lowercase_ascii (Sim.Topology.site_name s) = leader_site)
      Sim.Topology.sites
  in
  let cfg =
    KV.Harness.config ~leader_site ~duration_s:duration proto workload
  in
  let r = KV.Harness.run cfg in
  Fmt.pr "%s: %.0f ops/s@." (KV.Harness.protocol_name proto) r.KV.Harness.throughput_ops;
  Fmt.pr "  reads  (leader region):    %a@." Sim.Stats.pp_summary r.KV.Harness.read_leader;
  Fmt.pr "  reads  (follower regions): %a@." Sim.Stats.pp_summary r.KV.Harness.read_follower;
  Fmt.pr "  writes (leader region):    %a@." Sim.Stats.pp_summary r.KV.Harness.write_leader;
  Fmt.pr "  writes (follower regions): %a@." Sim.Stats.pp_summary r.KV.Harness.write_follower;
  Fmt.pr "  retries: %d, consistency violations: %d@." r.KV.Harness.retries
    r.KV.Harness.consistency_violations;
  if r.KV.Harness.consistency_violations = 0 then 0 else 1

let simulate_cmd =
  let proto =
    spec_arg
      [
        ("raft", KV.Harness.Raft);
        ("raft-star", KV.Harness.Raft_star);
        ("raft-ll", KV.Harness.Raft_ll);
        ("raft-pql", KV.Harness.Raft_pql);
        ("mencius", KV.Harness.Mencius);
        ("multipaxos", KV.Harness.Multipaxos);
      ]
  in
  let duration =
    Arg.(value & opt int 10 & info [ "duration" ] ~doc:"Seconds of simulated time.")
  in
  let clients =
    Arg.(value & opt int 50 & info [ "clients" ] ~doc:"Clients per region.")
  in
  let read_pct = Arg.(value & opt int 90 & info [ "reads" ] ~doc:"Read percentage.") in
  let conflict_pct =
    Arg.(value & opt int 5 & info [ "conflict" ] ~doc:"Conflict percentage.")
  in
  let size = Arg.(value & opt int 8 & info [ "size" ] ~doc:"Value bytes.") in
  let leader =
    Arg.(value & opt string "oregon" & info [ "leader" ] ~doc:"Leader site.")
  in
  Cmd.v
    (Cmd.info "simulate" ~doc:"Run a protocol on the simulated WAN.")
    Term.(
      const run_simulate $ proto $ duration $ clients $ read_pct $ conflict_pct
      $ size $ leader)

(* ---- trace ---- *)

let harness_protocols =
  [
    ("raft", KV.Harness.Raft);
    ("raft-star", KV.Harness.Raft_star);
    ("raft-ll", KV.Harness.Raft_ll);
    ("raft-pql", KV.Harness.Raft_pql);
    ("mencius", KV.Harness.Mencius);
    ("multipaxos", KV.Harness.Multipaxos);
  ]

let run_trace proto seed requests read_pct =
  let workload =
    {
      KV.Workload.read_fraction = float_of_int read_pct /. 100.0;
      conflict_rate = 0.05;
      value_size = 8;
      records = 100_000;
      clients_per_region = 1;
      key_dist = KV.Workload.Uniform;
    }
  in
  let cfg =
    KV.Harness.config ~duration_s:3 ~warmup_s:0 ~cooldown_s:0
      ~seed:(Int64.of_int seed) ~tracing:true proto workload
  in
  let r = KV.Harness.run cfg in
  match r.KV.Harness.telemetry with
  | None ->
      Fmt.epr "internal error: tracing run returned no telemetry@.";
      1
  | Some tel ->
      let spans = tel.Tel.Telemetry.spans in
      let reqs = r.KV.Harness.requests in
      if reqs = [] || Tel.Span.trace_count spans = 0 then begin
        Fmt.epr "no spans recorded — tracing is broken@.";
        1
      end
      else begin
        let shown = List.filteri (fun i _ -> i < requests) reqs in
        let mismatches = ref 0 in
        List.iter
          (fun (req : KV.Harness.request) ->
            let total = Tel.Span.total_us spans ~trace:req.KV.Harness.trace in
            Fmt.pr "@[<v>request %d: %s from region %d, latency %d us@."
              req.KV.Harness.trace
              (if req.KV.Harness.is_read then "read" else "write")
              req.KV.Harness.region req.KV.Harness.latency_us;
            Fmt.pr "%a@]@." (fun ppf () ->
                Tel.Span.pp_waterfall ppf spans ~trace:req.KV.Harness.trace) ();
            if total <> req.KV.Harness.latency_us then begin
              incr mismatches;
              Fmt.pr "  MISMATCH: phase sum %d us <> recorded latency %d us@."
                total req.KV.Harness.latency_us
            end)
          shown;
        Fmt.pr
          "%d requests completed, %d traced spans; %d of %d shown waterfalls \
           sum exactly to their recorded latency@."
          (List.length reqs)
          (Tel.Span.trace_count spans)
          (List.length shown - !mismatches)
          (List.length shown);
        if !mismatches = 0 then 0 else 1
      end

let trace_cmd =
  let proto =
    Arg.(
      value
      & opt (enum harness_protocols) KV.Harness.Raft_pql
      & info [ "protocol" ]
          ~doc:"Protocol to trace (raft, raft-star, raft-ll, raft-pql, \
                mencius, multipaxos).")
  in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Simulation seed.") in
  let requests =
    Arg.(
      value & opt int 8
      & info [ "requests" ] ~doc:"Number of request waterfalls to print.")
  in
  let read_pct =
    Arg.(value & opt int 50 & info [ "reads" ] ~doc:"Read percentage.")
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Run a short traced simulation and print per-request span \
          waterfalls (submit, client hop, append/accept, quorum commit, \
          reply; lease waits and local reads as their own phases).  \
          Verifies that each waterfall's phase durations sum exactly to \
          the request's recorded end-to-end latency; fails if no spans \
          were recorded.")
    Term.(const run_trace $ proto $ seed $ requests $ read_pct)

(* ---- shard ---- *)

let parse_protocols s =
  String.split_on_char ',' s
  |> List.map String.trim
  |> List.filter (fun s -> s <> "")
  |> List.map (fun name ->
         match List.assoc_opt (String.lowercase_ascii name) harness_protocols with
         | Some p -> p
         | None ->
             Fmt.epr "unknown protocol %S (try %s)@." name
               (String.concat ", " (List.map fst harness_protocols));
             exit 2)

let parse_placement s =
  match String.lowercase_ascii s with
  | "round-robin" | "rr" -> KV.Shard.Round_robin
  | "nearest" | "nearest-majority" -> KV.Shard.Nearest_majority
  | site -> (
      match
        List.find_opt
          (fun x -> String.lowercase_ascii (Sim.Topology.site_name x) = site)
          Sim.Topology.sites
      with
      | Some x -> KV.Shard.Fixed x
      | None ->
          Fmt.epr
            "unknown placement %S (try round-robin, nearest-majority, or a \
             site name)@."
            s;
          exit 2)

let run_shard shards protocols placement seed duration clients read_pct
    conflict_pct size replay =
  let workload =
    {
      KV.Workload.read_fraction = float_of_int read_pct /. 100.0;
      conflict_rate = float_of_int conflict_pct /. 100.0;
      value_size = size;
      records = 100_000;
      clients_per_region = clients;
      key_dist = KV.Workload.Uniform;
    }
  in
  let trim = max 0 (min 2 (duration / 3)) in
  let cfg =
    KV.Shard.config
      ~protocols:(parse_protocols protocols)
      ~placement:(parse_placement placement) ~duration_s:duration
      ~warmup_s:trim ~cooldown_s:trim ~seed:(Int64.of_int seed)
      ~telemetry:true ~shards workload
  in
  let r = KV.Shard.run cfg in
  Fmt.pr "%d group(s), placement %s, seed %d: aggregate %.0f ops/s@." shards
    (KV.Shard.placement_name cfg.KV.Shard.placement)
    seed r.KV.Shard.throughput_ops;
  Fmt.pr "%-5s %-14s %-8s %8s %9s %9s %7s %7s %8s %4s@." "group" "protocol"
    "leader" "ops" "committed" "tput" "p50ms" "p99ms" "retries" "viol";
  Array.iteri
    (fun i (g : KV.Shard.group_result) ->
      let stats = Sim.Stats.merge [ g.KV.Shard.g_read; g.KV.Shard.g_write ] in
      Fmt.pr "%-5d %-14s %-8s %8d %9d %9.0f %7.1f %7.1f %8d %4d@." i
        (KV.Harness.protocol_name g.KV.Shard.g_protocol)
        (Sim.Topology.site_name g.KV.Shard.g_leader_site)
        g.KV.Shard.g_ops g.KV.Shard.g_committed g.KV.Shard.g_throughput_ops
        (float_of_int (Sim.Stats.percentile_us stats 0.50) /. 1000.0)
        (float_of_int (Sim.Stats.percentile_us stats 0.99) /. 1000.0)
        g.KV.Shard.g_retries g.KV.Shard.g_violations)
    r.KV.Shard.groups;
  Fmt.pr "retries %d, reads checked %d, lin violations %d@." r.KV.Shard.retries
    r.KV.Shard.reads_checked r.KV.Shard.violations;
  let replay_ok =
    if not replay then true
    else begin
      let r2 = KV.Shard.run cfg in
      let a = KV.Shard.snapshot_string cfg r
      and b = KV.Shard.snapshot_string cfg r2 in
      if String.equal a b then begin
        Fmt.pr "replay: snapshot byte-identical (%d bytes)@." (String.length a);
        true
      end
      else begin
        Fmt.pr "replay: MISMATCH — sharded run is not deterministic@.";
        false
      end
    end
  in
  if r.KV.Shard.violations = 0 && replay_ok then 0 else 1

let shard_cmd =
  let shards =
    Arg.(value & opt int 2 & info [ "shards" ] ~doc:"Number of consensus groups.")
  in
  let protocols =
    Arg.(
      value
      & opt string "raft-star"
      & info [ "protocols" ]
          ~doc:
            "Comma-separated protocol list, cycled over groups (e.g. \
             raft,mencius,multipaxos for a heterogeneous mix).")
  in
  let placement =
    Arg.(
      value
      & opt string "nearest-majority"
      & info [ "placement" ]
          ~doc:
            "Leader placement: round-robin, nearest-majority, or a site \
             name for fixed placement.")
  in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Simulation seed.") in
  let duration =
    Arg.(value & opt int 6 & info [ "duration" ] ~doc:"Seconds of simulated time.")
  in
  let clients =
    Arg.(value & opt int 50 & info [ "clients" ] ~doc:"Clients per region.")
  in
  let read_pct = Arg.(value & opt int 90 & info [ "reads" ] ~doc:"Read percentage.") in
  let conflict_pct =
    Arg.(value & opt int 5 & info [ "conflict" ] ~doc:"Conflict percentage.")
  in
  let size = Arg.(value & opt int 8 & info [ "size" ] ~doc:"Value bytes.") in
  let replay =
    Arg.(
      value & flag
      & info [ "replay" ]
          ~doc:
            "Run the same config twice and require byte-identical canonical \
             snapshots (the sharded determinism gate).")
  in
  Cmd.v
    (Cmd.info "shard"
       ~doc:
         "Seeded sharded run: M consensus groups (heterogeneous protocol \
          mixes allowed) over a hash-partitioned key space, per-group \
          leader placement, cross-shard client routing, per-group \
          linearizability oracles.")
    Term.(
      const run_shard $ shards $ protocols $ placement $ seed $ duration
      $ clients $ read_pct $ conflict_pct $ size $ replay)

(* ---- nemesis ---- *)

let run_nemesis proto_name seed seeds chaos_steps clients dump_trace =
  let protocols =
    if String.lowercase_ascii proto_name = "all" then Nem.Cluster.all_protocols
    else
      match Nem.Cluster.protocol_of_name proto_name with
      | Some p -> [ p ]
      | None ->
          Fmt.epr "unknown protocol %S (try raft, raft-star, raft-pql, \
                   mencius, multipaxos, all)@." proto_name;
          exit 2
  in
  let failed = ref 0 in
  List.iter
    (fun protocol ->
      for s = seed to seed + seeds - 1 do
        let cfg = Nem.Nemesis.config protocol ~seed:s ~chaos_steps ~clients in
        let r = Nem.Nemesis.run cfg in
        Fmt.pr "%a@." Nem.Nemesis.pp_report r;
        if not r.Nem.Nemesis.ok then incr failed;
        if dump_trace then
          List.iter print_endline (Nem.Trace.to_list r.Nem.Nemesis.trace)
      done)
    protocols;
  if !failed = 0 then 0
  else begin
    Fmt.pr "%d failing runs — rerun with the printed seed to replay@." !failed;
    1
  end

let nemesis_cmd =
  let proto =
    Arg.(
      value
      & pos 0 string "all"
      & info [] ~docv:"PROTOCOL"
          ~doc:"Protocol to torture (raft, raft-star, raft-pql, mencius, \
                multipaxos, or all).")
  in
  let seed =
    Arg.(value & opt int 1000 & info [ "seed" ] ~doc:"First seed of the sweep.")
  in
  let seeds =
    Arg.(value & opt int 20 & info [ "seeds" ] ~doc:"Number of seeds to run.")
  in
  let chaos_steps =
    Arg.(
      value
      & opt int 30
      & info [ "steps" ] ~doc:"Chaos steps (one fault action per simulated second).")
  in
  let clients =
    Arg.(value & opt int 4 & info [ "clients" ] ~doc:"Closed-loop clients.")
  in
  let dump_trace =
    Arg.(
      value & flag
      & info [ "trace" ] ~doc:"Print the full event trace of every run.")
  in
  Cmd.v
    (Cmd.info "nemesis"
       ~doc:
         "Deterministic fault-injection sweep: crash/partition/delay/skew \
          schedules driven by a seed, checked against prefix-agreement and \
          linearizability oracles.  A run is a pure function of (protocol, \
          seed), so any failure replays exactly from its printed seed.")
    Term.(
      const run_nemesis $ proto $ seed $ seeds $ chaos_steps $ clients
      $ dump_trace)

(* ---- mcheck ---- *)

(* What each scenario is supposed to produce.  Clean scenarios must be
   explored to completion with the goal reached and nothing flagged; the
   Mencius mutant must be caught by an invariant violation; the
   MultiPaxos mutant is a liveness bug, so its signature is the goal
   being unreachable under a still-complete search. *)
let mcheck_verdict (r : MC.Checker.result) =
  match r.MC.Checker.r_scenario with
  | "mencius-slot-reuse" ->
      if r.MC.Checker.r_violation <> None then Ok "mutant detected (violation)"
      else Error "mutant NOT detected: expected an invariant violation"
  | "mp-takeover" ->
      if r.MC.Checker.r_violation <> None then
        Error "unexpected safety violation (expected goal-unreachable)"
      else if r.MC.Checker.r_goal_reached then
        Error "mutant NOT detected: goal still reachable"
      else if not r.MC.Checker.r_complete then
        Error "inconclusive: goal unreached but search incomplete"
      else Ok "mutant detected (goal unreachable, search complete)"
  | name when String.length name > 6 && String.sub name 0 6 = "crash-" ->
      (* Crash scopes admit elections, so they never exhaust within a
         sane bound; they are bounded hunts — every visited state still
         passes the invariant library. *)
      if not (MC.Checker.ok r) then Error "unexpected violation"
      else if not r.MC.Checker.r_goal_reached then Error "goal not reached"
      else Ok "bounded exploration, goal reached, no violation"
  | _ ->
      if not (MC.Checker.ok r) then Error "unexpected violation"
      else if not r.MC.Checker.r_goal_reached then Error "goal not reached"
      else if not r.MC.Checker.r_complete then Error "search incomplete"
      else Ok "exhaustive, goal reached, no violation"

let mcheck_scenarios_of_name name =
  match String.lowercase_ascii name with
  | "all" ->
      (* Everything that terminates exhaustively at default bounds: the
         steady scopes plus the mutation pairs.  Crash scopes run by
         name — they are bounded hunts, not exhaustive proofs. *)
      List.filter
        (fun n ->
          n <> "refine-raft-star"
          && not (String.length n > 6 && String.sub n 0 6 = "crash-"))
        MC.Scenario.names
  | "clean" ->
      List.filter
        (fun n ->
          String.length n > 7 && String.sub n 0 7 = "steady-")
        MC.Scenario.names
  | "mutants" ->
      [
        "mencius-slot-reuse"; "mencius-slot-reuse-clean"; "mp-takeover";
        "mp-takeover-clean";
      ]
  | n -> [ n ]

let run_mcheck name max_states max_depth replay refine =
  if refine || String.lowercase_ascii name = "refine-raft-star" then begin
    let r = MC.Refine.check () in
    Fmt.pr "%a@." MC.Refine.pp_result r;
    if r.MC.Refine.r_ok then 0 else 1
  end
  else
    match replay with
    | Some sched -> (
        match MC.Scenario.by_name name with
        | None ->
            Fmt.epr "unknown scenario %S@." name;
            exit 2
        | Some sc -> (
            let schedule = MC.Model.parse_schedule sched in
            try
              List.iter print_endline (MC.Checker.narrate sc schedule);
              0
            with MC.Model.Stuck why ->
              Fmt.epr "schedule not replayable on %s: %s@." name why;
              2))
    | None ->
        let names = mcheck_scenarios_of_name name in
        let failed = ref 0 in
        List.iter
          (fun n ->
            match MC.Scenario.by_name n with
            | None ->
                Fmt.epr
                  "unknown scenario %S (try one of: %s; or all, clean, \
                   mutants)@."
                  n
                  (String.concat ", " MC.Scenario.names);
                exit 2
            | Some sc ->
                let r = MC.Checker.check ~max_states ~max_depth sc in
                Fmt.pr "%a@." MC.Checker.pp_result r;
                (match mcheck_verdict r with
                | Ok msg -> Fmt.pr "  PASS: %s@." msg
                | Error msg ->
                    incr failed;
                    Fmt.pr "  FAIL: %s@." msg))
          names;
        if !failed = 0 then 0 else 1

let mcheck_cmd =
  let scenario =
    Arg.(
      value
      & pos 0 string "all"
      & info [] ~docv:"SCENARIO"
          ~doc:
            "Scenario name (steady-<protocol>, crash-<protocol>, \
             mencius-slot-reuse[-clean], mp-takeover[-clean], \
             refine-raft-star) or a group: all, clean, mutants.")
  in
  let max_depth =
    Arg.(
      value
      & opt int 60
      & info [ "max-depth" ] ~doc:"Bound on schedule length past the prefix.")
  in
  let replay =
    Arg.(
      value
      & opt (some string) None
      & info [ "replay" ] ~docv:"SCHEDULE"
          ~doc:
            "Narrate a schedule (space-separated choice tokens as printed in \
             counterexamples) against the named scenario instead of checking.")
  in
  let refine =
    Arg.(
      value & flag
      & info [ "refine" ]
          ~doc:"Run the implementation-refines-spec check (Raft* against the \
                MultiPaxos spec) instead of invariant checking.")
  in
  Cmd.v
    (Cmd.info "mcheck"
       ~doc:
         "Explicit-state model checking of the real protocol runtimes: \
          explore every message-delivery/timeout/crash interleaving at small \
          scope, check safety invariants at every state, and replay minimal \
          counterexample schedules.")
    Term.(
      const run_mcheck $ scenario $ max_states $ max_depth $ replay $ refine)

(* ---- topology ---- *)

let run_topology () =
  Fmt.pr "%-9s" "";
  List.iter (fun s -> Fmt.pr "%9s" (Sim.Topology.site_name s)) Sim.Topology.sites;
  Fmt.pr "@.";
  List.iter
    (fun a ->
      Fmt.pr "%-9s" (Sim.Topology.site_name a);
      List.iter (fun b -> Fmt.pr "%9d" (Sim.Topology.rtt_ms a b)) Sim.Topology.sites;
      Fmt.pr "@.")
    Sim.Topology.sites;
  Fmt.pr "RTT in ms; bandwidth per site: ";
  List.iter
    (fun s ->
      Fmt.pr "%s=%dMB/s "
        (Sim.Topology.site_name s)
        (Sim.Topology.bandwidth_bytes_per_sec s / 1_000_000))
    Sim.Topology.sites;
  Fmt.pr "@.";
  0

let topology_cmd =
  Cmd.v
    (Cmd.info "topology" ~doc:"Print the WAN model.")
    Term.(const run_topology $ const ())

(* ---- lint ---- *)

let run_lint paths baseline perf_baseline par_baseline list_rules json =
  if list_rules then begin
    List.iter
      (fun (p : Lint.Registry.pass) ->
        Fmt.pr "%s:@." p.tool;
        List.iter
          (fun (r : Lint.Lint.rule) ->
            Fmt.pr "  %-26s %-7s %s@." r.id
              (Lint.Finding.severity_name r.severity)
              r.summary)
          p.rules)
      Lint.Registry.passes;
    0
  end
  else begin
    (* All three passes run from the registry.  With no explicit paths
       each pass scans its own default tree (perflint only judges lib/,
       parlint also reads test/); explicit paths apply to every pass. *)
    let baseline_for tool =
      match tool with
      | "detlint" -> baseline
      | "perflint" -> perf_baseline
      | "parlint" -> par_baseline
      | _ -> None
    in
    let results =
      List.map
        (fun (p : Lint.Registry.pass) ->
          let roots = match paths with [] -> p.default_paths | _ -> paths in
          let findings = p.lint_paths roots in
          let bl =
            match baseline_for p.tool with
            | None -> Lint.Baseline.empty
            | Some path -> Lint.Baseline.load path
          in
          let unsuppressed =
            List.filter (fun f -> not (Lint.Baseline.mem bl f)) findings
          in
          let grandfathered =
            List.length findings - List.length unsuppressed
          in
          let stale = Lint.Baseline.stale bl findings in
          let files = List.length (p.collect roots) in
          (p.tool, files, unsuppressed, grandfathered, stale))
        Lint.Registry.passes
    in
    let unsuppressed =
      List.sort Lint.Finding.compare
        (List.concat_map (fun (_, _, u, _, _) -> u) results)
    in
    if json then print_endline (Lint.Finding.render_json unsuppressed)
    else begin
      List.iter (fun f -> print_endline (Lint.Finding.render f)) unsuppressed;
      List.iter
        (fun (tool, files, u, grandfathered, stale) ->
          List.iter
            (fun key -> Fmt.pr "%s: stale baseline entry: %s@." tool key)
            stale;
          Fmt.pr "%s: %d file(s), %d finding(s) (%d grandfathered)@." tool
            files (List.length u) grandfathered)
        results
    end;
    let any_stale =
      List.exists (fun (_, _, _, _, stale) -> stale <> []) results
    in
    match (unsuppressed, any_stale) with [], false -> 0 | _ -> 1
  end

let lint_cmd =
  let paths =
    Arg.(
      value & pos_all string []
      & info [] ~docv:"PATH"
          ~doc:
            "Files or directories to lint.  Default: each pass's own tree \
             (detlint: lib bin bench; perflint: lib; parlint: lib bin bench \
             test).")
  in
  let baseline =
    Arg.(
      value
      & opt (some string) None
      & info [ "baseline" ] ~doc:"Grandfathered detlint findings file.")
  in
  let perf_baseline =
    Arg.(
      value
      & opt (some string) None
      & info [ "perf-baseline" ] ~doc:"Grandfathered perflint findings file.")
  in
  let par_baseline =
    Arg.(
      value
      & opt (some string) None
      & info [ "par-baseline" ] ~doc:"Grandfathered parlint findings file.")
  in
  let list_rules =
    Arg.(
      value & flag & info [ "list-rules" ] ~doc:"Print every pass's rule table.")
  in
  let json =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:
            "Print the merged unsuppressed findings of all passes as one \
             sorted JSON array on stdout.")
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:
         "Static analysis over the OCaml sources: the determinism & \
          protocol-discipline pass (detlint), the hot-path cost pass \
          (perflint) and the cross-protocol parity pass (parlint), \
          combined.  Exits 0 when every pass is clean; exits 1 if any pass \
          reports an unsuppressed finding or a stale baseline entry."
       ~exits:
         [
           Cmd.Exit.info 0 ~doc:"every pass clean";
           Cmd.Exit.info 1
             ~doc:"unsuppressed findings or stale baseline entries";
         ])
    Term.(
      const run_lint $ paths $ baseline $ perf_baseline $ par_baseline
      $ list_rules $ json)

(* ---- net: the real-network runtime ---- *)

let net_cmd =
  let mode =
    Arg.(
      value
      & pos 0 (enum [ ("demo", `Demo); ("crosscheck", `Crosscheck) ]) `Demo
      & info [] ~docv:"MODE" ~doc:"$(b,demo) or $(b,crosscheck).")
  in
  let protocol =
    Arg.(
      value
      & opt string "raft"
      & info [ "protocol" ]
          ~doc:"raft|raft-star|raft-ll|raft-pql|mencius|multipaxos.")
  in
  let nodes = Arg.(value & opt int 3 & info [ "nodes" ] ~doc:"Cluster size.") in
  let ops =
    Arg.(value & opt int 1000 & info [ "ops" ] ~doc:"Committed-op target.")
  in
  let clients =
    Arg.(
      value & opt int 4 & info [ "clients" ] ~doc:"Closed-loop clients per node.")
  in
  let seed = Arg.(value & opt int 7 & info [ "seed" ] ~doc:"Run seed.") in
  let run mode protocol nodes ops clients seed =
    let module Driver = Raftpax_netshell.Driver in
    match mode with
    | `Demo ->
        let r =
          Driver.demo ~protocol_name:protocol ~n:nodes ~ops
            ~clients_per_node:clients ~seed
        in
        Fmt.pr "net demo: %s %d-node loopback cluster@." protocol nodes;
        Fmt.pr "  completed=%d retries=%d throughput=%.1f ops/s@." r.d_completed
          r.d_retries r.d_throughput;
        Array.iter
          (fun (node, committed, snap) ->
            Fmt.pr "  node %d: committed=%d snapshot=%s@." node committed
              (Raftpax_netcore.Snapshot.digest snap))
          r.d_snapshots;
        if r.d_ok then begin
          Fmt.pr "  all replicas agree: byte-identical snapshots@.";
          0
        end
        else begin
          Fmt.pr "  FAILED: snapshot disagreement or op target missed@.";
          1
        end
    | `Crosscheck ->
        let r = Driver.crosscheck ~protocol_name:protocol ~n:nodes ~ops ~seed in
        Fmt.pr "net crosscheck: %s %d-node, %d sequential ops@." protocol nodes
          r.c_ops;
        Fmt.pr "  net snapshot %s / sim snapshot %s@." r.c_net_digest
          r.c_sim_digest;
        if r.c_ok then begin
          Fmt.pr "  identical applied state@.";
          0
        end
        else begin
          Fmt.pr "  FAILED: sim and net applied states differ@.";
          1
        end
  in
  Cmd.v
    (Cmd.info "net"
       ~doc:
         "Real-network runtime: spawn a loopback multi-process cluster over \
          TCP and verify replica convergence (demo), or feed one command \
          stream through both the simulator and the network and assert \
          identical applied state (crosscheck).")
    Term.(const run $ mode $ protocol $ nodes $ ops $ clients $ seed)

let subcommand_names =
  [
    "check"; "refine"; "port"; "simulate"; "trace"; "shard"; "nemesis";
    "mcheck"; "topology"; "lint"; "net";
  ]

let () =
  (* Friendlier than cmdliner's default for a mistyped subcommand: one
     usage line enumerating every subcommand, exit 2. *)
  (if Array.length Sys.argv > 1 then begin
     let first = Sys.argv.(1) in
     if
       String.length first > 0
       && (not (Char.equal first.[0] '-'))
       && not (List.mem first subcommand_names)
     then begin
       Fmt.epr "raftpax: unknown subcommand '%s'@." first;
       Fmt.epr "usage: repro <%s> [OPTION]...@."
         (String.concat "|" subcommand_names);
       exit 2
     end
   end);
  let default = Term.(ret (const (`Help (`Pager, None)))) in
  let info =
    Cmd.info "raftpax" ~version:"1.0.0"
      ~doc:
        "Paxos/Raft refinement mapping, automatic optimization porting, and \
         the paper's geo-replication evaluation."
  in
  exit
    (Cmd.eval'
       (Cmd.group ~default info
          [
            check_cmd;
            refine_cmd;
            port_cmd;
            simulate_cmd;
            trace_cmd;
            shard_cmd;
            nemesis_cmd;
            mcheck_cmd;
            topology_cmd;
            lint_cmd;
            net_cmd;
          ]))
