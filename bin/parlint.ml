(* parlint CLI — the cross-protocol parity & porting-discipline lint
   (see also `repro lint`).

   Usage: parlint [options] [paths...]
   Parses every .ml under the given files/directories (default:
   lib bin bench test, skipping lint_fixtures corpora) into one fact
   base, cross-references the ASTs, and exits 1 on any unsuppressed
   parity finding. *)

let () = Raftpax_lint.Cli.main "parlint"
