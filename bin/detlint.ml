(* detlint CLI — the determinism-discipline lint (see also `repro lint`).

   Usage: detlint [options] [paths...]
   Lints every .ml under the given files/directories (default:
   lib bin bench) and exits 1 on any unsuppressed finding. *)

let () = Raftpax_lint.Cli.main "detlint"
