(* detlint CLI — the raw binary CI runs (see also `repro lint`).

   Usage: detlint [options] [paths...]
   Lints every .ml under the given files/directories (default:
   lib bin bench) and exits 1 on any unsuppressed finding. *)

let () =
  Raftpax_lint.Cli.run ~tool:"detlint"
    ~default_paths:[ "lib"; "bin"; "bench" ]
    ~rules:Raftpax_lint.Lint.rules ~lint_paths:Raftpax_lint.Lint.lint_paths ()
