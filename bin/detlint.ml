(* detlint CLI — the raw binary CI runs (see also `repro lint`).

   Usage: detlint [options] [paths...]
   Lints every .ml under the given files/directories (default:
   lib bin bench) and exits 1 on any unsuppressed finding. *)

module Lint = Raftpax_lint.Lint
module Finding = Raftpax_lint.Finding
module Baseline = Raftpax_lint.Baseline

let () =
  let baseline_path = ref "" in
  let update_baseline = ref false in
  let only_rules = ref [] in
  let list_rules = ref false in
  let quiet = ref false in
  let paths = ref [] in
  let spec =
    [
      ( "--baseline",
        Arg.Set_string baseline_path,
        "FILE grandfathered-findings file (missing file = empty)" );
      ( "--update-baseline",
        Arg.Set update_baseline,
        " rewrite the baseline to the current findings and exit 0" );
      ( "--rule",
        Arg.String (fun r -> only_rules := r :: !only_rules),
        "ID only report this rule (repeatable)" );
      ("--list-rules", Arg.Set list_rules, " print the rule table and exit");
      ("-q", Arg.Set quiet, " only print the summary line");
    ]
  in
  let usage =
    "detlint [options] [paths...]  — determinism & protocol-discipline lint"
  in
  Arg.parse spec (fun p -> paths := p :: !paths) usage;
  if !list_rules then begin
    List.iter
      (fun (r : Lint.rule) ->
        Printf.printf "%-24s %-7s %s\n" r.id
          (Finding.severity_name r.severity)
          r.summary)
      Lint.rules;
    exit 0
  end;
  let paths =
    match List.rev !paths with [] -> [ "lib"; "bin"; "bench" ] | ps -> ps
  in
  let findings = Lint.lint_paths paths in
  let findings =
    match !only_rules with
    | [] -> findings
    | ids -> List.filter (fun (f : Finding.t) -> List.mem f.rule ids) findings
  in
  if !update_baseline then begin
    let path =
      if !baseline_path = "" then "detlint.baseline" else !baseline_path
    in
    Baseline.save path findings;
    Printf.printf "detlint: wrote %d finding(s) to %s\n" (List.length findings)
      path;
    exit 0
  end;
  let baseline =
    if !baseline_path = "" then Baseline.empty else Baseline.load !baseline_path
  in
  let unsuppressed, grandfathered =
    List.partition (fun f -> not (Baseline.mem baseline f)) findings
  in
  if not !quiet then
    List.iter (fun f -> print_endline (Finding.render f)) unsuppressed;
  List.iter
    (fun key -> Printf.printf "detlint: stale baseline entry: %s\n" key)
    (Baseline.stale baseline findings);
  Printf.printf "detlint: %d file(s), %d finding(s) (%d grandfathered)\n"
    (List.length (Lint.collect_files paths))
    (List.length unsuppressed)
    (List.length grandfathered);
  exit (if unsuppressed = [] then 0 else 1)
