(* perflint CLI — the hot-path cost & allocation lint (see also
   `repro lint`).

   Usage: perflint [options] [paths...]
   Lints every .ml under the given files/directories (default: lib)
   and exits 1 on any unsuppressed finding. *)

let () = Raftpax_lint.Cli.main "perflint"
