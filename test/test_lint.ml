(* Tests for the detlint static-analysis pass (lib/lint).

   Each fixture under lint_fixtures/ is linted with a synthetic filename
   that puts the rule under test in scope (rules are path-scoped, e.g.
   wildcard-message-match only runs under lib/consensus/).  Fixtures pair
   positive sites with suppressed negatives, so these tests pin both the
   detection and every suppression mechanism. *)

module Lint = Raftpax_lint.Lint
module Finding = Raftpax_lint.Finding
module Baseline = Raftpax_lint.Baseline

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* dune runtest runs in _build/default/test (where glob_files mirrors the
   corpus); dune exec from the repo root sees the source copy instead. *)
let fixture_dir =
  if Sys.file_exists "lint_fixtures" then "lint_fixtures"
  else Filename.concat "test" "lint_fixtures"

let lint_fixture ~filename name =
  Lint.lint_string ~filename (read_file (Filename.concat fixture_dir name))

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.equal (String.sub s i n) sub || go (i + 1)) in
  n = 0 || go 0

let count rule findings =
  List.length (List.filter (fun f -> String.equal f.Finding.rule rule) findings)

let check_rule_count ~rule ~expect findings =
  Alcotest.(check int)
    (Printf.sprintf "%s findings" rule)
    expect (count rule findings)

(* --- one fixture per rule: positives fire, suppressed sites don't --- *)

let test_forbidden () =
  let fs = lint_fixture ~filename:"lib/fx_forbidden.ml" "forbidden_effects.ml" in
  check_rule_count ~rule:"forbidden-effects" ~expect:4 fs;
  let mentions sub =
    List.exists
      (fun f ->
        String.equal f.Finding.rule "forbidden-effects"
        && contains ~sub f.Finding.message)
      fs
  in
  List.iter
    (fun m -> Alcotest.(check bool) ("mentions " ^ m) true (mentions m))
    [ "Random"; "Unix"; "Sys.time"; "Hashtbl.hash" ]

let test_forbidden_scoping () =
  (* The rule is scoped to lib/: the same source under bin/ is clean. *)
  let fs = lint_fixture ~filename:"bin/fx_forbidden.ml" "forbidden_effects.ml" in
  check_rule_count ~rule:"forbidden-effects" ~expect:0 fs

let test_unordered () =
  let fs = lint_fixture ~filename:"lib/fx_unordered.ml" "unordered_iteration.ml" in
  check_rule_count ~rule:"unordered-iteration" ~expect:2 fs

let test_polycmp () =
  let fs = lint_fixture ~filename:"lib/fx_polycmp.ml" "polymorphic_compare.ml" in
  check_rule_count ~rule:"polymorphic-compare" ~expect:3 fs

let test_polycmp_shadowed () =
  (* A local [compare] binding sanctions bare [compare] file-wide. *)
  let src = "let compare a b = Int.compare a b\nlet f xs = List.sort compare xs\n" in
  let fs = Lint.lint_string ~filename:"lib/shadow.ml" src in
  check_rule_count ~rule:"polymorphic-compare" ~expect:0 fs

let test_wildcard () =
  let fs =
    lint_fixture ~filename:"lib/consensus/fx_wildcard.ml" "wildcard_match.ml"
  in
  check_rule_count ~rule:"wildcard-message-match" ~expect:2 fs

let test_wildcard_scoping () =
  (* Outside lib/consensus/ the dispatch rule is silent. *)
  let fs = lint_fixture ~filename:"lib/fx_wildcard.ml" "wildcard_match.ml" in
  check_rule_count ~rule:"wildcard-message-match" ~expect:0 fs

let test_socket_effects () =
  (* The wire codec layer (lib/netcore) must stay socket-free. *)
  let fs = lint_fixture ~filename:"lib/netcore/fx_socket.ml" "socket_effects.ml" in
  check_rule_count ~rule:"forbidden-effects" ~expect:3 fs

let test_socket_effects_bin () =
  (* The same effects are sanctioned in the transport shell under bin/. *)
  let fs =
    lint_fixture ~filename:"bin/netshell/fx_socket.ml" "socket_effects.ml"
  in
  check_rule_count ~rule:"forbidden-effects" ~expect:0 fs

let test_escaping () =
  let fs = lint_fixture ~filename:"lib/fx_escaping.ml" "escaping_state.ml" in
  check_rule_count ~rule:"escaping-mutable-state" ~expect:3 fs

(* --- suppression mechanisms not already exercised by the fixtures --- *)

let test_file_level_allow () =
  let fs = lint_fixture ~filename:"lib/fx_allow.ml" "file_level_allow.ml" in
  Alcotest.(check int) "whole file silenced" 0 (List.length fs)

let test_allow_all () =
  let hit = "let f () = Random.int 3\n" in
  let suppressed = "let f () = (Random.int 3 [@lint.allow \"all\"])\n" in
  check_rule_count ~rule:"forbidden-effects" ~expect:1
    (Lint.lint_string ~filename:"lib/a.ml" hit);
  check_rule_count ~rule:"forbidden-effects" ~expect:0
    (Lint.lint_string ~filename:"lib/a.ml" suppressed)

let test_parse_error () =
  let fs = Lint.lint_string ~filename:"lib/broken.ml" "let let = in" in
  check_rule_count ~rule:"parse-error" ~expect:1 fs;
  Alcotest.(check int) "only the parse error" 1 (List.length fs)

(* --- rule registry and finding plumbing --- *)

let test_rule_registry () =
  let ids = List.sort String.compare (List.map (fun r -> r.Lint.id) Lint.rules) in
  Alcotest.(check (list string))
    "rule ids"
    (List.sort String.compare
       [
         "forbidden-effects";
         "unordered-iteration";
         "polymorphic-compare";
         "wildcard-message-match";
         "escaping-mutable-state";
       ])
    ids

let test_render_format () =
  match Lint.lint_string ~filename:"lib/a.ml" "let f () = Random.int 3\n" with
  | [ f ] ->
      Alcotest.(check string)
        "finding key" "lib/a.ml:1:11:forbidden-effects" (Finding.key f);
      Alcotest.(check bool)
        "render prefix" true
        (contains ~sub:"lib/a.ml:1:11 [forbidden-effects]" (Finding.render f))
  | fs -> Alcotest.failf "expected exactly one finding, got %d" (List.length fs)

let test_baseline_roundtrip () =
  let findings = lint_fixture ~filename:"lib/fx_escaping.ml" "escaping_state.ml" in
  Alcotest.(check int) "fixture findings" 3 (List.length findings);
  let path = "detlint_test.baseline.tmp" in
  Baseline.save path findings;
  let b = Baseline.load path in
  Alcotest.(check int) "size" 3 (Baseline.size b);
  List.iter
    (fun f -> Alcotest.(check bool) "mem" true (Baseline.mem b f))
    findings;
  (match findings with
  | keep :: dropped ->
      Alcotest.(check int)
        "stale entries" (List.length dropped)
        (List.length (Baseline.stale b [ keep ]))
  | [] -> ());
  Sys.remove path;
  Alcotest.(check int) "missing file = empty" 0 (Baseline.size (Baseline.load path))

(* --- the tree itself must be clean --- *)

let test_clean_tree () =
  (* Tests run in _build/default/test; the library and executable sources
     are mirrored next door.  If a sandboxed runner hides them, the @lint
     alias still gates the real tree. *)
  let dirs =
    List.filter
      (fun d -> Sys.file_exists d && Sys.is_directory d)
      [ "../lib"; "../bin" ]
  in
  if dirs <> [] then begin
    let findings = Lint.lint_paths dirs in
    Alcotest.(check string)
      "no findings in the tree" ""
      (String.concat "\n" (List.map Finding.render findings))
  end

let rec ml_files dir =
  Array.to_list (Sys.readdir dir)
  |> List.concat_map (fun e ->
         let p = Filename.concat dir e in
         if Sys.is_directory p then ml_files p
         else if Filename.check_suffix p ".ml" || Filename.check_suffix p ".mli"
         then [ p ]
         else [])

let test_netcore_pure () =
  (* The shipped codec layer is lint-clean, and no source under lib/
     anywhere so much as names the Unix module — every socket, clock and
     select lives in bin/ (the netshell transport, and repro/bench). *)
  if Sys.file_exists "../lib/netcore" && Sys.is_directory "../lib/netcore"
  then begin
    let findings = Lint.lint_paths [ "../lib/netcore" ] in
    Alcotest.(check string)
      "netcore lint-clean" ""
      (String.concat "\n" (List.map Finding.render findings));
    List.iter
      (fun f ->
        Alcotest.(check bool)
          (f ^ " is Unix-free") false
          (contains ~sub:"Unix." (read_file f)))
      (ml_files "../lib")
  end

let () =
  Alcotest.run "lint"
    [
      ( "rules",
        [
          Alcotest.test_case "forbidden-effects" `Quick test_forbidden;
          Alcotest.test_case "forbidden-effects scoping" `Quick
            test_forbidden_scoping;
          Alcotest.test_case "unordered-iteration" `Quick test_unordered;
          Alcotest.test_case "polymorphic-compare" `Quick test_polycmp;
          Alcotest.test_case "polymorphic-compare shadowed" `Quick
            test_polycmp_shadowed;
          Alcotest.test_case "wildcard-message-match" `Quick test_wildcard;
          Alcotest.test_case "wildcard-message-match scoping" `Quick
            test_wildcard_scoping;
          Alcotest.test_case "escaping-mutable-state" `Quick test_escaping;
          Alcotest.test_case "socket effects in lib/netcore" `Quick
            test_socket_effects;
          Alcotest.test_case "socket effects sanctioned in bin/" `Quick
            test_socket_effects_bin;
        ] );
      ( "suppression",
        [
          Alcotest.test_case "file-level allow" `Quick test_file_level_allow;
          Alcotest.test_case "allow all" `Quick test_allow_all;
          Alcotest.test_case "parse error" `Quick test_parse_error;
        ] );
      ( "plumbing",
        [
          Alcotest.test_case "rule registry" `Quick test_rule_registry;
          Alcotest.test_case "render format" `Quick test_render_format;
          Alcotest.test_case "baseline roundtrip" `Quick test_baseline_roundtrip;
        ] );
      ( "tree",
        [
          Alcotest.test_case "clean tree" `Quick test_clean_tree;
          Alcotest.test_case "netcore pure, Unix confined to bin" `Quick
            test_netcore_pure;
        ] );
    ]
