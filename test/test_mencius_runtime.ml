module Sim = Raftpax_sim
module Engine = Sim.Engine
module Net = Sim.Net
module Topology = Sim.Topology
open Raftpax_consensus

let mk ?(seed = 42L) () =
  let engine = Engine.create ~seed () in
  let nodes = List.mapi (fun i site -> { Net.id = i; site }) Topology.sites in
  let net = Net.create engine ~nodes in
  let t = Mencius.create Mencius.default_config net in
  Mencius.start t;
  (engine, net, t)

let put ?(key = 10) write_id = Types.Put { key; size = 8; write_id }
let hot write_id = Types.Put { key = Mencius.hot_key; size = 8; write_id }

let run_ms engine ms = Engine.run engine ~until:(Engine.now engine + (ms * 1000))

let test_no_forwarding_local_commit () =
  let engine, _, t = mk () in
  let lat = Array.make 5 0 in
  let t0 = Engine.now engine in
  for node = 0 to 4 do
    Mencius.submit t ~node (put ~key:(10 + node) (100 + node)) (fun _ ->
        lat.(node) <- Engine.now engine - t0)
  done;
  run_ms engine 3000;
  (* Every replica commits at roughly its own majority RTT — no 2-RTT
     forwarding penalty anywhere. *)
  Array.iteri
    (fun node l ->
      let bound =
        (Topology.nearest_majority_rtt_ms (Topology.site_of_index node) * 1000)
        + 80_000
      in
      Alcotest.(check bool)
        (Fmt.str "node %d commits at ~own RTT (%dus <= %dus)" node l bound)
        true
        (l > 0 && l <= bound))
    lat

let test_slot_ownership_round_robin () =
  let engine, _, t = mk () in
  for node = 0 to 4 do
    Mencius.submit t ~node (put ~key:(20 + node) (200 + node)) (fun _ -> ())
  done;
  run_ms engine 3000;
  (* all 5 writes committed; everyone agrees on all keys *)
  for node = 0 to 4 do
    for k = 0 to 4 do
      Alcotest.(check (option int))
        (Fmt.str "node %d key %d" node (20 + k))
        (Some (200 + k))
        (Mencius.applied_value t ~node ~key:(20 + k))
    done
  done

let test_skips_fill_gaps () =
  let engine, _, t = mk () in
  (* only node 3 submits: everyone else's interleaved slots get skipped *)
  for i = 1 to 4 do
    Mencius.submit t ~node:3 (put ~key:(30 + i) (300 + i)) (fun _ -> ())
  done;
  run_ms engine 3000;
  Alcotest.(check bool) "skips recorded" true (Mencius.skipped_count t ~node:0 > 0);
  for node = 0 to 4 do
    Alcotest.(check (option int))
      (Fmt.str "node %d sees the last write" node)
      (Some 304)
      (Mencius.applied_value t ~node ~key:34)
  done

let test_conflicting_slower_than_commutative () =
  let run conflicting =
    let engine, _, t = mk () in
    (* background traffic from every region so ordering actually binds *)
    for node = 0 to 4 do
      Mencius.submit t ~node (put ~key:(40 + node) (400 + node)) (fun _ -> ())
    done;
    let lat = ref 0 in
    let t0 = Engine.now engine in
    let op = if conflicting then hot 999 else put ~key:77 999 in
    Mencius.submit t ~node:0 op (fun _ -> lat := Engine.now engine - t0);
    run_ms engine 5000;
    !lat
  in
  let hot_lat = run true and cold_lat = run false in
  Alcotest.(check bool)
    (Fmt.str "conflicting (%dus) >= commutative (%dus)" hot_lat cold_lat)
    true (hot_lat >= cold_lat)

let test_hot_key_total_order () =
  let engine, _, t = mk () in
  let last = ref [] in
  for i = 1 to 10 do
    Mencius.submit t ~node:(i mod 5) (hot (500 + i)) (fun _ -> ())
  done;
  run_ms engine 5000;
  for node = 0 to 4 do
    last := Mencius.applied_value t ~node ~key:Mencius.hot_key :: !last
  done;
  (* all replicas agree on the final hot-key value *)
  (match !last with
  | v :: rest -> List.iter (fun v' -> Alcotest.(check (option int)) "agree" v v') rest
  | [] -> Alcotest.fail "no replicas");
  Alcotest.(check bool) "some write won" true (Option.is_some (List.hd !last))

let test_crash_revocation () =
  let engine, _, t = mk () in
  Mencius.submit t ~node:4 (put ~key:90 900) (fun _ -> ());
  run_ms engine 2000;
  Mencius.crash t ~node:4;
  let ok = ref 0 in
  for i = 1 to 8 do
    Mencius.submit t ~node:(i mod 4) (hot (900 + i)) (fun _ -> incr ok)
  done;
  run_ms engine 30_000;
  Alcotest.(check int) "conflicting writes complete despite the dead owner" 8 !ok

let test_restart_rejoins () =
  let engine, _, t = mk () in
  Mencius.crash t ~node:2;
  for i = 1 to 4 do
    Mencius.submit t ~node:(if i mod 5 = 2 then 0 else i mod 5) (put ~key:(50 + i) (600 + i))
      (fun _ -> ())
  done;
  run_ms engine 20_000;
  Mencius.restart t ~node:2;
  let ok = ref false in
  Mencius.submit t ~node:2 (put ~key:60 700) (fun _ -> ok := true);
  run_ms engine 30_000;
  Alcotest.(check bool) "restarted node serves again" true !ok

let test_frontiers_monotone_and_equal_eventually () =
  let engine, _, t = mk () in
  for i = 1 to 20 do
    Mencius.submit t ~node:(i mod 5) (put ~key:i (700 + i)) (fun _ -> ())
  done;
  run_ms engine 5000;
  let f0 = Mencius.commit_frontier t ~node:0 in
  Alcotest.(check bool) "frontier advanced" true (f0 > 0);
  for node = 1 to 4 do
    Alcotest.(check int)
      (Fmt.str "node %d frontier" node)
      f0
      (Mencius.commit_frontier t ~node)
  done

let prop_mencius_consistency =
  QCheck.Test.make ~name:"harness finds no stale reads (mencius)" ~count:4
    QCheck.(int_range 1 1000)
    (fun seed ->
      let open Raftpax_kvstore in
      let wl =
        {
          Workload.read_fraction = 0.5;
          conflict_rate = 0.5;
          value_size = 8;
          records = 50;
          clients_per_region = 3;
          key_dist = Workload.Uniform;
        }
      in
      let cfg =
        Harness.config ~duration_s:4 ~warmup_s:1 ~cooldown_s:1
          ~seed:(Int64.of_int seed) Harness.Mencius wl
      in
      let r = Harness.run cfg in
      (* no committed-order oracle for Mencius in the harness, but the
         closed loop must terminate without retries *)
      r.Harness.retries = 0)

let () =
  Alcotest.run "mencius_runtime"
    [
      ( "steady-state",
        [
          Alcotest.test_case "local commit" `Quick test_no_forwarding_local_commit;
          Alcotest.test_case "round robin" `Quick test_slot_ownership_round_robin;
          Alcotest.test_case "skips" `Quick test_skips_fill_gaps;
          Alcotest.test_case "conflict ordering" `Quick test_conflicting_slower_than_commutative;
          Alcotest.test_case "hot key order" `Quick test_hot_key_total_order;
          Alcotest.test_case "frontiers" `Quick test_frontiers_monotone_and_equal_eventually;
        ] );
      ( "failures",
        [
          Alcotest.test_case "revocation" `Quick test_crash_revocation;
          Alcotest.test_case "restart" `Quick test_restart_rejoins;
        ] );
      ( "consistency",
        List.map QCheck_alcotest.to_alcotest [ prop_mencius_consistency ] );
    ]
