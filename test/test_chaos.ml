(* The nemesis matrix: every protocol faces the same seeded adversary
   (crashes, leader-targeted crashes, partitions, message chaos, clock
   skew), and every run must pass the same oracles — replica prefixes
   agree, acknowledged writes survive, reads are linearizable, and the
   healed cluster commits a fresh write.  A companion test replays a
   seed and demands a byte-identical trace. *)

open Raftpax_nemesis

let seeds = List.init 20 (fun i -> 1000 + i)

let check_report (r : Nemesis.report) =
  if not r.ok then
    Alcotest.failf "%a" Nemesis.pp_report r;
  Alcotest.(check bool) "prefixes agree" true r.prefixes_agree;
  Alcotest.(check int) "no lost writes" 0 r.lost_writes;
  Alcotest.(check int) "no lin violations" 0 (List.length r.violations);
  Alcotest.(check bool) "liveness after heal" true r.liveness_ok

let matrix_case protocol () =
  let total_ops = ref 0 and total_reads = ref 0 and total_faults = ref 0 in
  List.iter
    (fun seed ->
      let r = Nemesis.run (Nemesis.config protocol ~seed) in
      check_report r;
      total_ops := !total_ops + r.ops_completed;
      total_reads := !total_reads + r.reads_checked;
      total_faults := !total_faults + r.faults_injected)
    seeds;
  (* The matrix must actually exercise the system: plenty of completed
     ops, checked reads, and injected faults across the seed bank. *)
  Alcotest.(check bool) "ops completed" true (!total_ops > 20 * List.length seeds);
  Alcotest.(check bool) "reads checked" true (!total_reads > 5 * List.length seeds);
  Alcotest.(check bool) "faults injected" true (!total_faults >= 10 * List.length seeds)

(* The same adversary against batched replication: leader-side batching
   (engine-bench knobs: size 16, 2 ms flush) must not cost a single
   safety verdict anywhere in the matrix.  With 4 closed-loop clients
   batches rarely fill, so the flush timer path — the delicate one,
   where commands sit in the accumulator while crashes land — carries
   most commands. *)
let batched_matrix_case protocol () =
  let total_ops = ref 0 and total_faults = ref 0 in
  List.iter
    (fun seed ->
      let r =
        Nemesis.run
          (Nemesis.config protocol ~seed ~batch_size:16 ~batch_delay_us:2_000)
      in
      check_report r;
      total_ops := !total_ops + r.ops_completed;
      total_faults := !total_faults + r.faults_injected)
    seeds;
  Alcotest.(check bool) "ops completed" true (!total_ops > 20 * List.length seeds);
  Alcotest.(check bool) "faults injected" true
    (!total_faults >= 10 * List.length seeds)

let crashes_only_case protocol () =
  let cfg =
    Nemesis.config protocol ~seed:77 ~chaos_steps:20
      ~actions:Schedule.crashes_only
  in
  check_report (Nemesis.run cfg)

(* Re-running a config must reproduce the identical trace: the trace
   captures faults, client ops, state transitions, and (in this mode)
   every message send, so fingerprint equality means the whole execution
   replayed byte-for-byte. *)
let determinism_case protocol () =
  let cfg = Nemesis.config protocol ~seed:42 ~chaos_steps:10 in
  let a = Nemesis.run cfg and b = Nemesis.run cfg in
  Alcotest.(check string)
    "trace fingerprints equal"
    (Trace.fingerprint a.Nemesis.trace)
    (Trace.fingerprint b.Nemesis.trace);
  Alcotest.(check (list string))
    "traces line-identical"
    (Trace.to_list a.Nemesis.trace)
    (Trace.to_list b.Nemesis.trace);
  Alcotest.(check bool) "trace non-trivial" true (Trace.length a.Nemesis.trace > 100)

let seed_sensitivity_case () =
  (* Different seeds must produce different executions — otherwise the
     seed bank is 20 copies of one run. *)
  let run seed =
    Trace.fingerprint
      (Nemesis.run (Nemesis.config Cluster.Raft ~seed ~chaos_steps:10)).Nemesis.trace
  in
  Alcotest.(check bool) "seeds diverge" true (run 1 <> run 2)

let protocol_cases name case =
  List.map
    (fun p ->
      Alcotest.test_case
        (Printf.sprintf "%s %s" (Cluster.protocol_name p) name)
        `Slow (case p))
    Cluster.all_protocols

let () =
  Alcotest.run "chaos"
    [
      ("nemesis-matrix", protocol_cases "20-seed matrix" matrix_case);
      ( "nemesis-matrix-batched",
        protocol_cases "20-seed batched matrix" batched_matrix_case );
      ("crashes-only", protocol_cases "crash churn" crashes_only_case);
      ("determinism", protocol_cases "seed replay" determinism_case);
      ( "seed-bank",
        [ Alcotest.test_case "seeds diverge" `Quick seed_sensitivity_case ] );
    ]
