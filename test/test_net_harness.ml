(* End-to-end smoke for the real-network runtime: spawns a genuine
   3-node loopback cluster of server.exe processes, drives it over TCP,
   and gates on byte-identical applied-state snapshots.  Kept small —
   the CI net-smoke job runs the 1000-op version; this pins that the
   machinery works at all under `dune runtest`. *)

module Driver = Raftpax_netshell.Driver

let test_loopback_demo () =
  let r =
    Driver.demo ~protocol_name:"raft" ~n:3 ~ops:60 ~clients_per_node:2 ~seed:11
  in
  Alcotest.(check bool) "demo converged with identical snapshots" true
    r.Driver.d_ok;
  Alcotest.(check bool) "completed >= 60" true (r.Driver.d_completed >= 60);
  Alcotest.(check int) "three snapshots" 3 (Array.length r.Driver.d_snapshots)

let test_crosscheck () =
  let r = Driver.crosscheck ~protocol_name:"multipaxos" ~n:3 ~ops:30 ~seed:5 in
  Alcotest.(check bool)
    (Printf.sprintf "net %s = sim %s" r.Driver.c_net_digest r.Driver.c_sim_digest)
    true r.Driver.c_ok

(* ---- repro CLI contract ---- *)

let repro_exe =
  Filename.concat (Filename.dirname Sys.executable_name) "../bin/repro.exe"

let run_capture args =
  let err = Filename.temp_file "repro_test" ".err" in
  let cmd =
    Printf.sprintf "%s %s 2>%s" (Filename.quote repro_exe) args
      (Filename.quote err)
  in
  let code =
    match Sys.command cmd with
    | c -> c
  in
  let ic = open_in_bin err in
  let s =
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  Sys.remove err;
  (code, s)

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i =
    i + n <= m && (String.equal (String.sub s i n) sub || go (i + 1))
  in
  n = 0 || go 0

let test_unknown_subcommand () =
  let code, err = run_capture "frobnicate" in
  Alcotest.(check int) "exit code" 2 code;
  Alcotest.(check bool) "names the typo" true
    (contains ~sub:"unknown subcommand 'frobnicate'" err);
  (* the usage line must enumerate every real subcommand, including net *)
  List.iter
    (fun sub ->
      Alcotest.(check bool) ("usage lists " ^ sub) true (contains ~sub err))
    [
      "check"; "refine"; "port"; "simulate"; "trace"; "shard"; "nemesis";
      "mcheck"; "topology"; "lint"; "net";
    ]

let () =
  Alcotest.run "net_harness"
    [
      ( "loopback",
        [
          Alcotest.test_case "3-node raft demo" `Quick test_loopback_demo;
          Alcotest.test_case "multipaxos sim-vs-net crosscheck" `Quick
            test_crosscheck;
        ] );
      ( "cli",
        [
          Alcotest.test_case "unknown subcommand fails loudly" `Quick
            test_unknown_subcommand;
        ] );
    ]
