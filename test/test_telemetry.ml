(* Telemetry oracles:

   - determinism: the same (protocol, seed) must produce a byte-identical
     span dump and metric snapshot, both through the kvstore harness and
     through a full nemesis run (whose trace fingerprint now covers the
     METRIC lines);
   - histogram accuracy: the log-bucketed quantile is within the
     documented bucket error of the exact value;
   - disabled telemetry is free: marking spans and bumping counters on
     the disabled registry allocates nothing;
   - waterfalls account for everything: per request, the sum of phase
     durations (= last mark - first mark) equals the recorded latency;
   - probes cover every replica: a telemetry run leaves non-zero
     protocol counters on all five nodes. *)

module Tel = Raftpax_telemetry
module Telemetry = Tel.Telemetry
module Metrics = Tel.Metrics
module Span = Tel.Span
module H = Raftpax_kvstore.Harness
module W = Raftpax_kvstore.Workload
module N = Raftpax_nemesis

let workload =
  {
    W.read_fraction = 0.5;
    conflict_rate = 0.1;
    value_size = 8;
    records = 1000;
    clients_per_region = 2;
    key_dist = W.Uniform;
  }

let traced_run proto seed =
  H.run
    (H.config ~duration_s:2 ~warmup_s:0 ~cooldown_s:0 ~seed ~tracing:true proto
       workload)

let telemetry_of (r : H.result) =
  match r.H.telemetry with
  | Some tel -> tel
  | None -> Alcotest.fail "tracing run returned no telemetry"

(* ---- determinism ---- *)

let test_harness_determinism () =
  List.iter
    (fun proto ->
      let a = telemetry_of (traced_run proto 7L) in
      let b = telemetry_of (traced_run proto 7L) in
      Alcotest.(check string)
        (H.protocol_name proto ^ " metric snapshot")
        (Telemetry.snapshot_string a)
        (Telemetry.snapshot_string b);
      Alcotest.(check string)
        (H.protocol_name proto ^ " span dump")
        (Span.dump a.Telemetry.spans)
        (Span.dump b.Telemetry.spans))
    [ H.Raft_pql; H.Mencius; H.Multipaxos ]

let test_nemesis_determinism () =
  let cfg = N.Nemesis.config ~chaos_steps:5 ~clients:2 N.Cluster.Raft ~seed:11 in
  let a = N.Nemesis.run cfg in
  let b = N.Nemesis.run cfg in
  Alcotest.(check string)
    "trace fingerprint (covers METRIC lines)"
    (N.Trace.fingerprint a.N.Nemesis.trace)
    (N.Trace.fingerprint b.N.Nemesis.trace);
  Alcotest.(check string)
    "metric snapshot"
    (Telemetry.snapshot_string a.N.Nemesis.telemetry)
    (Telemetry.snapshot_string b.N.Nemesis.telemetry)

(* ---- histogram accuracy ---- *)

let test_histogram_quantiles () =
  let m = Metrics.create ~n:1 in
  let h = Metrics.histogram m "lat" ~node:0 in
  (* 1..1000 uniformly: exact p-quantile of the sample is about 1000p *)
  for v = 1 to 1000 do
    Metrics.observe h v
  done;
  Alcotest.(check int) "count" 1000 (Metrics.hist_count h);
  Alcotest.(check int) "sum" 500_500 (Metrics.hist_sum h);
  List.iter
    (fun p ->
      let exact = int_of_float (ceil (p *. 1000.0)) in
      let q = Metrics.quantile h p in
      if q < exact then
        Alcotest.failf "quantile %.2f: %d below exact %d" p q exact;
      if q > 2 * max 1 exact then
        Alcotest.failf "quantile %.2f: %d beyond bucket error of exact %d" p q
          exact)
    [ 0.50; 0.90; 0.99 ]

(* ---- disabled telemetry allocates nothing ---- *)

let test_disabled_zero_alloc () =
  let spans = Span.disabled in
  let m = Metrics.disabled in
  let c = Metrics.counter m "noop" ~node:0 in
  let h = Metrics.histogram m "noop_h" ~node:0 in
  (* warm up so any one-time boxing is out of the measured window *)
  Span.mark spans ~trace:0 ~node:0 ~phase:"p" ~now:0;
  Metrics.inc c;
  Metrics.observe h 1;
  let w0 = Gc.minor_words () in
  for i = 1 to 10_000 do
    Span.mark spans ~trace:i ~node:0 ~phase:"p" ~now:i;
    Metrics.inc c;
    Metrics.observe h i
  done;
  let delta = Gc.minor_words () -. w0 in
  (* a handful of words come from boxing the Gc counters themselves; real
     per-mark allocation would cost tens of thousands of words *)
  if delta > 100.0 then
    Alcotest.failf "disabled telemetry allocated %.0f minor words" delta

(* ---- waterfalls account for the full latency ---- *)

let test_waterfall_sums () =
  List.iter
    (fun proto ->
      let r = traced_run proto 3L in
      let tel = telemetry_of r in
      if r.H.requests = [] then
        Alcotest.failf "%s: no requests traced" (H.protocol_name proto);
      List.iter
        (fun (req : H.request) ->
          let total = Span.total_us tel.Telemetry.spans ~trace:req.H.trace in
          if total <> req.H.latency_us then
            Alcotest.failf "%s: trace %d phase sum %dus <> latency %dus"
              (H.protocol_name proto) req.H.trace total req.H.latency_us)
        r.H.requests)
    [ H.Raft_pql; H.Raft; H.Mencius; H.Multipaxos ]

(* ---- every replica shows protocol activity ---- *)

let test_counters_all_nodes () =
  let r = traced_run H.Raft_pql 1L in
  let tel = telemetry_of r in
  let m = tel.Telemetry.metrics in
  for node = 0 to 4 do
    if Metrics.counter_value m "commits" ~node = 0 then
      Alcotest.failf "node %d: commits counter is zero" node
  done;
  Alcotest.(check bool)
    "appends flow" true
    (Metrics.counter_value m "appends_sent" ~node:0 > 0
    || Metrics.counter_value m "appends_sent" ~node:1 > 0)

let () =
  Alcotest.run "telemetry"
    [
      ( "determinism",
        [
          Alcotest.test_case "harness same-seed" `Quick test_harness_determinism;
          Alcotest.test_case "nemesis same-seed" `Quick test_nemesis_determinism;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "histogram quantiles" `Quick test_histogram_quantiles;
          Alcotest.test_case "disabled zero-alloc" `Quick test_disabled_zero_alloc;
          Alcotest.test_case "counters on all nodes" `Quick test_counters_all_nodes;
        ] );
      ( "spans",
        [ Alcotest.test_case "waterfall sums" `Quick test_waterfall_sums ] );
    ]
