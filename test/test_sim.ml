module Sim = Raftpax_sim
module Engine = Sim.Engine
module Net = Sim.Net
module Topology = Sim.Topology
module Stats = Sim.Stats
module Rng = Sim.Rng
module Cpu = Sim.Cpu

(* ---- engine ---- *)

let test_event_ordering () =
  let e = Engine.create () in
  let order = ref [] in
  Engine.schedule e ~delay:30 (fun () -> order := 3 :: !order);
  Engine.schedule e ~delay:10 (fun () -> order := 1 :: !order);
  Engine.schedule e ~delay:20 (fun () -> order := 2 :: !order);
  Engine.run_all e;
  Alcotest.(check (list int)) "time order" [ 1; 2; 3 ] (List.rev !order);
  Alcotest.(check int) "clock at last event" 30 (Engine.now e)

let test_fifo_same_instant () =
  let e = Engine.create () in
  let order = ref [] in
  List.iter
    (fun i -> Engine.schedule e ~delay:5 (fun () -> order := i :: !order))
    [ 1; 2; 3; 4 ];
  Engine.run_all e;
  Alcotest.(check (list int)) "FIFO at same time" [ 1; 2; 3; 4 ] (List.rev !order)

let test_run_until () =
  let e = Engine.create () in
  let fired = ref 0 in
  Engine.schedule e ~delay:100 (fun () -> incr fired);
  Engine.schedule e ~delay:200 (fun () -> incr fired);
  Engine.run e ~until:150;
  Alcotest.(check int) "only first" 1 !fired;
  Alcotest.(check int) "clock moved to until" 150 (Engine.now e);
  Engine.run e ~until:300;
  Alcotest.(check int) "second fired" 2 !fired

let test_cancellation () =
  let e = Engine.create () in
  let fired = ref false in
  let timer = Engine.schedule_cancellable e ~delay:10 (fun () -> fired := true) in
  Engine.cancel timer;
  Engine.run_all e;
  Alcotest.(check bool) "cancelled" false !fired

let test_nested_scheduling () =
  let e = Engine.create () in
  let log = ref [] in
  Engine.schedule e ~delay:10 (fun () ->
      log := Engine.now e :: !log;
      Engine.schedule e ~delay:5 (fun () -> log := Engine.now e :: !log));
  Engine.run_all e;
  Alcotest.(check (list int)) "nested times" [ 10; 15 ] (List.rev !log)

(* ---- rng ---- *)

let test_rng_deterministic () =
  let a = Rng.create 7L and b = Rng.create 7L in
  let xs = List.init 50 (fun _ -> Rng.int a 1000) in
  let ys = List.init 50 (fun _ -> Rng.int b 1000) in
  Alcotest.(check (list int)) "same seed, same stream" xs ys

let test_rng_bounds () =
  let r = Rng.create 3L in
  for _ = 1 to 1000 do
    let x = Rng.int r 17 in
    Alcotest.(check bool) "in range" true (x >= 0 && x < 17)
  done

let test_rng_split_independent () =
  let r = Rng.create 5L in
  let a = Rng.split r and b = Rng.split r in
  let xs = List.init 20 (fun _ -> Rng.int a 1_000_000) in
  let ys = List.init 20 (fun _ -> Rng.int b 1_000_000) in
  Alcotest.(check bool) "different streams" true (xs <> ys)

let prop_rng_float_range =
  QCheck.Test.make ~name:"float in [0,x)" ~count:200
    QCheck.(pair small_int (float_range 0.001 100.0))
    (fun (seed, x) ->
      let r = Rng.create (Int64.of_int seed) in
      let v = Rng.float r x in
      v >= 0.0 && v < x)

(* ---- topology ---- *)

let test_topology_symmetric () =
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          Alcotest.(check int) "symmetric rtt" (Topology.rtt_ms a b)
            (Topology.rtt_ms b a))
        Topology.sites)
    Topology.sites

let test_topology_paper_range () =
  let rtts =
    List.concat_map
      (fun a ->
        List.filter_map
          (fun b -> if a = b then None else Some (Topology.rtt_ms a b))
          Topology.sites)
      Topology.sites
  in
  Alcotest.(check int) "min 25ms (paper)" 25 (List.fold_left min max_int rtts);
  Alcotest.(check int) "max 292ms (paper)" 292 (List.fold_left max 0 rtts)

let test_nearest_majority () =
  (* Oregon's two nearest peers are Ohio (50) and Canada (60). *)
  Alcotest.(check int) "oregon majority rtt" 60
    (Topology.nearest_majority_rtt_ms Topology.Oregon);
  Alcotest.(check bool) "seoul is worse" true
    (Topology.nearest_majority_rtt_ms Topology.Seoul
    > Topology.nearest_majority_rtt_ms Topology.Oregon)

(* ---- network ---- *)

let mk_net ?drop_probability ?(jitter_us = 0) () =
  let e = Engine.create () in
  let nodes = List.mapi (fun i site -> { Net.id = i; site }) Topology.sites in
  (e, Net.create ?drop_probability ~jitter_us e ~nodes)

let test_net_latency () =
  let e, net = mk_net () in
  let arrival = ref 0 in
  Net.send net ~src:0 ~dst:1 ~size:100 (fun () -> arrival := Engine.now e);
  Engine.run_all e;
  (* one way Oregon->Ohio = 25ms + tx time (~1us for 100B) *)
  Alcotest.(check bool) "about 25ms" true (!arrival >= 25_000 && !arrival < 26_000)

let test_net_local_delivery () =
  let e, net = mk_net () in
  let arrival = ref 0 in
  Net.send net ~src:2 ~dst:2 ~size:10 (fun () -> arrival := Engine.now e);
  Engine.run_all e;
  Alcotest.(check bool) "local is sub-ms" true (!arrival < 1_000)

let test_net_bandwidth_serialisation () =
  (* two 1MB messages on the same uplink: the second waits for the first's
     transmission *)
  let e, net = mk_net () in
  let t1 = ref 0 and t2 = ref 0 in
  let mb = 1_000_000 in
  Net.send net ~src:0 ~dst:1 ~size:mb (fun () -> t1 := Engine.now e);
  Net.send net ~src:0 ~dst:1 ~size:mb (fun () -> t2 := Engine.now e);
  Engine.run_all e;
  let tx = mb * 1_000_000 / Topology.bandwidth_bytes_per_sec Topology.Oregon in
  Alcotest.(check bool) "second delayed by ~tx time" true (!t2 - !t1 >= tx - 100);
  Alcotest.(check int) "bytes accounted" (2 * mb) (Net.bytes_sent net 0)

let test_net_drop_all () =
  let e, net = mk_net ~drop_probability:1.0 () in
  let got = ref false in
  Net.send net ~src:0 ~dst:1 ~size:10 (fun () -> got := true);
  Engine.run_all e;
  Alcotest.(check bool) "dropped" false !got;
  Alcotest.(check int) "counted" 1 (Net.dropped_count net)

let test_net_partition () =
  let e, net = mk_net () in
  Net.set_partition net (Some (fun a b -> (a < 2 && b >= 2) || (b < 2 && a >= 2)));
  let got_cut = ref false and got_ok = ref false in
  Net.send net ~src:0 ~dst:3 ~size:10 (fun () -> got_cut := true);
  Net.send net ~src:0 ~dst:1 ~size:10 (fun () -> got_ok := true);
  Engine.run_all e;
  Alcotest.(check bool) "cut link dropped" false !got_cut;
  Alcotest.(check bool) "same side ok" true !got_ok;
  Net.set_partition net None;
  let healed = ref false in
  Net.send net ~src:0 ~dst:3 ~size:10 (fun () -> healed := true);
  Engine.run_all e;
  Alcotest.(check bool) "healed" true !healed

let test_net_down_node () =
  let e, net = mk_net () in
  Net.set_node_down net 1 true;
  let got = ref false in
  Net.send net ~src:0 ~dst:1 ~size:10 (fun () -> got := true);
  Net.send net ~src:1 ~dst:0 ~size:10 (fun () -> got := true);
  Engine.run_all e;
  Alcotest.(check bool) "down node isolated" false !got

let test_net_crash_in_flight () =
  let e, net = mk_net () in
  let got = ref false in
  Net.send net ~src:0 ~dst:4 ~size:10 (fun () -> got := true);
  (* crash the destination before the ~62ms delivery *)
  Engine.schedule e ~delay:10_000 (fun () -> Net.set_node_down net 4 true);
  Engine.run_all e;
  Alcotest.(check bool) "message lost mid-flight" false !got

(* ---- cpu ---- *)

let test_cpu_queueing () =
  let e = Engine.create () in
  let cpu = Cpu.create e in
  let t1 = ref 0 and t2 = ref 0 in
  Cpu.exec cpu ~cost_us:100 (fun () -> t1 := Engine.now e);
  Cpu.exec cpu ~cost_us:50 (fun () -> t2 := Engine.now e);
  Engine.run_all e;
  Alcotest.(check int) "first done at 100" 100 !t1;
  Alcotest.(check int) "second queued behind" 150 !t2;
  Alcotest.(check int) "consumed" 150 (Cpu.busy_us cpu)

let test_cpu_idle_gap () =
  let e = Engine.create () in
  let cpu = Cpu.create e in
  let t = ref 0 in
  Cpu.exec cpu ~cost_us:10 ignore;
  Engine.schedule e ~delay:1000 (fun () ->
      Cpu.exec cpu ~cost_us:10 (fun () -> t := Engine.now e));
  Engine.run_all e;
  Alcotest.(check int) "no queueing after idle" 1010 !t

(* ---- stats ---- *)

let test_stats_percentiles () =
  let s = Stats.create () in
  for i = 1 to 100 do
    Stats.record s ~latency_us:(i * 1000) ~at_us:(i * 10_000)
  done;
  Alcotest.(check int) "p50" 50_000 (Stats.percentile_us s 0.50);
  Alcotest.(check int) "p99" 99_000 (Stats.percentile_us s 0.99);
  Alcotest.(check int) "min" 1000 (Stats.min_us s);
  Alcotest.(check int) "max" 100_000 (Stats.max_us s)

(* the sorted-sample cache must be invalidated by record: a percentile
   read between records must not freeze the distribution *)
let test_stats_cache_invalidation () =
  let s = Stats.create () in
  for i = 1 to 10 do
    Stats.record s ~latency_us:(i * 1000) ~at_us:(i * 10_000)
  done;
  Alcotest.(check int) "p50 before" 5_000 (Stats.percentile_us s 0.50);
  for i = 1 to 90 do
    Stats.record s ~latency_us:100_000 ~at_us:((10 + i) * 10_000)
  done;
  Alcotest.(check int) "p50 after more samples" 100_000
    (Stats.percentile_us s 0.50);
  Alcotest.(check int) "max after more samples" 100_000 (Stats.max_us s)

let test_stats_window_throughput () =
  let s = Stats.create () in
  for i = 1 to 100 do
    Stats.record s ~latency_us:1000 ~at_us:(i * 10_000)
  done;
  (* 50 samples in [250ms..750ms) => 50 / 0.5s = 100 ops/s *)
  let tput = Stats.throughput_ops s ~from_us:250_000 ~until_us:750_000 in
  Alcotest.(check (float 1.0)) "windowed" 100.0 tput

let test_stats_merge () =
  let a = Stats.create () and b = Stats.create () in
  Stats.record a ~latency_us:10 ~at_us:0;
  Stats.record b ~latency_us:20 ~at_us:0;
  let m = Stats.merge [ a; b ] in
  Alcotest.(check int) "merged count" 2 (Stats.count m)

let test_stats_empty () =
  let s = Stats.create () in
  Alcotest.(check int) "empty percentile" 0 (Stats.percentile_us s 0.9);
  Alcotest.(check (float 0.01)) "empty mean" 0.0 (Stats.mean_us s)

(* determinism of a whole network run *)
let test_network_determinism () =
  let run () =
    let e = Engine.create ~seed:11L () in
    let nodes = List.mapi (fun i site -> { Net.id = i; site }) Topology.sites in
    let net = Net.create ~jitter_us:500 e ~nodes in
    let trace = ref [] in
    for i = 0 to 19 do
      Net.send net ~src:(i mod 5) ~dst:((i + 1) mod 5) ~size:100 (fun () ->
          trace := Engine.now e :: !trace)
    done;
    Engine.run_all e;
    !trace
  in
  Alcotest.(check (list int)) "replayable" (run ()) (run ())

let () =
  Alcotest.run "sim"
    [
      ( "engine",
        [
          Alcotest.test_case "ordering" `Quick test_event_ordering;
          Alcotest.test_case "fifo ties" `Quick test_fifo_same_instant;
          Alcotest.test_case "run until" `Quick test_run_until;
          Alcotest.test_case "cancellation" `Quick test_cancellation;
          Alcotest.test_case "nested" `Quick test_nested_scheduling;
        ] );
      ( "rng",
        Alcotest.test_case "deterministic" `Quick test_rng_deterministic
        :: Alcotest.test_case "bounds" `Quick test_rng_bounds
        :: Alcotest.test_case "split" `Quick test_rng_split_independent
        :: List.map QCheck_alcotest.to_alcotest [ prop_rng_float_range ] );
      ( "topology",
        [
          Alcotest.test_case "symmetric" `Quick test_topology_symmetric;
          Alcotest.test_case "paper range" `Quick test_topology_paper_range;
          Alcotest.test_case "nearest majority" `Quick test_nearest_majority;
        ] );
      ( "net",
        [
          Alcotest.test_case "latency" `Quick test_net_latency;
          Alcotest.test_case "local" `Quick test_net_local_delivery;
          Alcotest.test_case "bandwidth" `Quick test_net_bandwidth_serialisation;
          Alcotest.test_case "drops" `Quick test_net_drop_all;
          Alcotest.test_case "partition" `Quick test_net_partition;
          Alcotest.test_case "down node" `Quick test_net_down_node;
          Alcotest.test_case "crash in flight" `Quick test_net_crash_in_flight;
        ] );
      ( "cpu",
        [
          Alcotest.test_case "queueing" `Quick test_cpu_queueing;
          Alcotest.test_case "idle gap" `Quick test_cpu_idle_gap;
        ] );
      ( "stats",
        [
          Alcotest.test_case "percentiles" `Quick test_stats_percentiles;
          Alcotest.test_case "cache invalidation" `Quick
            test_stats_cache_invalidation;
          Alcotest.test_case "window" `Quick test_stats_window_throughput;
          Alcotest.test_case "merge" `Quick test_stats_merge;
          Alcotest.test_case "empty" `Quick test_stats_empty;
        ] );
      ( "determinism",
        [ Alcotest.test_case "replay" `Quick test_network_determinism ] );
    ]
