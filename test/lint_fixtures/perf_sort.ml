(* perflint fixture: sort-in-loop.  2 positives — one in a [@perf.hot]
   function, one inside a for loop in a cold function. *)

let[@perf.hot] frontier xs = List.sort Int.compare xs

let busy xs n =
  for _ = 1 to n do
    Array.sort Int.compare xs
  done

let cold xs = List.sort Int.compare xs

let[@perf.hot] frontier_allowed xs =
  (List.sort Int.compare xs [@perf.allow "sort-in-loop"])
