(* detlint fixture: a floating [@@@lint.allow] silences the named rules
   for the whole file.  Expected hits: 0 when linted as lib/fx_allow.ml. *)

[@@@lint.allow "forbidden-effects" "escaping-mutable-state"]

let silenced_random () = Random.int 6
let silenced_state = ref 0
