(* perflint fixture: string-build-in-hot-path.  3 positives (sprintf,
   String.concat, ^) in [@perf.hot] functions.  A builder inside a
   closure passed as ~info is the sanctioned lazy-render pattern and
   stays silent, as do the cold copy and the suppressed site. *)

let[@perf.hot] log_event st = Printf.sprintf "state %d" st
let[@perf.hot] join xs = String.concat "," xs
let[@perf.hot] cat a b = a ^ b

let[@perf.hot] traced send st =
  send ~info:(fun () -> Printf.sprintf "state %d" st) ()

let cold st = Printf.sprintf "%d" st

let[@perf.hot] log_allowed st =
  (Printf.sprintf "%d" st [@perf.allow "string-build-in-hot-path"])
