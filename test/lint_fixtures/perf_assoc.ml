(* perflint fixture: assoc-scan.  3 positives in [@perf.hot] functions;
   the cold copy and the suppressed site stay silent. *)

let[@perf.hot] lookup tbl k = List.assoc k tbl
let[@perf.hot] holds tbl k = List.mem_assoc k tbl
let[@perf.hot] scan xs p = List.find_opt p xs
let cold tbl k = List.assoc k tbl

let[@perf.hot] lookup_allowed tbl k =
  (List.assoc k tbl [@perf.allow "assoc-scan"])
