(* detlint fixture: socket effects leaking into the codec layer.
   Linted as lib/netcore/fx_socket.ml the forbidden-effects rule fires on
   every Unix touch — the wire codec must stay pure; the same source under
   bin/netshell/ is clean, because the transport shell is where sockets
   belong.  Expected hits under lib/: 3. *)

let bad_socket () = Unix.socket PF_INET SOCK_STREAM 0
let bad_select fds = Unix.select fds [] [] 0.1
let bad_clock () = Unix.gettimeofday ()

(* Suppressed at the expression: must NOT be reported. *)
let ok_suppressed () = (Unix.getpid () [@lint.allow "forbidden-effects"])
