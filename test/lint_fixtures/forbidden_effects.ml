(* detlint fixture: forbidden-effects.
   Linted with the synthetic filename lib/fx_forbidden.ml so the
   lib/-scoped rule applies.  Expected hits: 4. *)

let bad_random () = Random.int 6
let bad_unix () = Unix.gettimeofday ()
let bad_sys_time () = Sys.time ()
let bad_hash x = Hashtbl.hash x

(* Suppressed at the expression: must NOT be reported. *)
let ok_suppressed () = (Random.bits () [@lint.allow "forbidden-effects"])

(* Sys.* other than Sys.time is allowed. *)
let ok_sys_argv () = Array.length Sys.argv
