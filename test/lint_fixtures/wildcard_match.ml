(* detlint fixture: wildcard-message-match.
   Linted as lib/consensus/fx_wildcard.ml (the rule only applies under
   lib/consensus/).  Expected hits: 2. *)

type msg = Ping of int | Pong of int | Stop

(* Positive: catch-all in a dispatch that names msg constructors. *)
let bad_dispatch m = match m with Ping n -> n | _ -> 0

(* Positive: or-pattern ending in a wildcard. *)
let bad_function = function Ping n -> n | Pong _ | _ -> 0

(* Negative: exhaustive dispatch. *)
let ok_exhaustive m = match m with Ping n -> n | Pong n -> n | Stop -> 0

(* Negative: match not over the message type. *)
let ok_unrelated x = match x with Some v -> v | None -> 0

(* Suppressed on the catch-all pattern: must NOT be reported. *)
let ok_suppressed m =
  match m with Ping n -> n | (_ [@lint.allow "wildcard-message-match"]) -> 1
