(* detlint fixture: unordered-iteration.
   Linted as lib/fx_unordered.ml.  Expected hits: 2. *)

(* Positive: iteration order leaks straight into output. *)
let bad_iter tbl = Hashtbl.iter (fun k v -> Printf.printf "%d %d\n" k v) tbl

(* Positive: folded list escapes without a sort. *)
let bad_fold tbl = Hashtbl.fold (fun k _ acc -> k :: acc) tbl []

(* Negative: commutative accumulation is order-insensitive. *)
let ok_sum tbl = Hashtbl.fold (fun _ v acc -> v + acc) tbl 0

(* Negative: result flows directly into a sort. *)
let ok_direct tbl = List.sort Int.compare (Hashtbl.fold (fun k _ a -> k :: a) tbl [])

(* Negative: result is piped into a sort. *)
let ok_pipe tbl = Hashtbl.fold (fun k _ a -> k :: a) tbl [] |> List.sort Int.compare

(* Negative: bound then sorted before use. *)
let ok_sorted tbl =
  let keys = Hashtbl.fold (fun k _ acc -> k :: acc) tbl [] in
  List.sort Int.compare keys

(* Suppressed at the expression: must NOT be reported. *)
let ok_suppressed tbl =
  (Hashtbl.iter (fun _ _ -> ()) tbl) [@lint.allow "unordered-iteration"]
