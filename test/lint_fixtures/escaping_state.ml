(* detlint fixture: escaping-mutable-state.
   Linted as lib/fx_escaping.ml.  Expected hits: 3. *)

let bad_cache = Hashtbl.create 16
let bad_counter = ref 0
let bad_buf = Buffer.create 80

(* Negative: allocation happens per call, not at module init. *)
let ok_per_call () = Hashtbl.create 16

(* Negative: immutable top-level values are fine. *)
let ok_const = 42
let ok_list = [ 1; 2; 3 ]

(* Suppressed on the binding: must NOT be reported. *)
let ok_suppressed = Hashtbl.create 1 [@@lint.allow "escaping-mutable-state"]
