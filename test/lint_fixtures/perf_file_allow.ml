[@@@perf.allow "all"]

(* perflint fixture: a floating file-level allow silences every rule for
   the whole compilation unit. *)

let gathered = ref []
let absorb extras = gathered := extras @ !gathered
let[@perf.hot] tally xs = List.length xs
let[@perf.hot] lookup tbl k = List.assoc k tbl
let[@perf.hot] log_event st = Printf.sprintf "state %d" st
