(* detlint fixture: polymorphic-compare.
   Linted as lib/fx_polycmp.ml.  Expected hits: 3.
   NOTE: do not bind any value named [compare] in this file -- a local
   shadowing definition sanctions bare [compare] file-wide. *)

let bad_sort xs = List.sort compare xs
let bad_stdlib xs = List.sort Stdlib.compare xs

(* Structural (=) applied to a literal function. *)
let bad_fn_eq f = f = fun x -> x

(* Negative: monomorphic comparator. *)
let ok_int xs = List.sort Int.compare xs

(* Negative: (=) on ordinary operands is fine. *)
let ok_eq a b = a = b

(* Suppressed at the expression: must NOT be reported. *)
let ok_suppressed xs = (List.sort compare xs [@lint.allow "polymorphic-compare"])
