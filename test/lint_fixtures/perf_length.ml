(* perflint fixture: length-in-hot-path.
   Under lib/consensus/ the [handle] binding is hot by name, so the
   expected count is 3 there and 2 elsewhere under lib/; the Net.nodes
   special case fires anywhere under lib/.  Cold code never fires. *)

let cold xs = List.length xs

let[@perf.hot] tally xs = List.length xs

let handle _st xs = List.nth xs 0

let cluster_size net = List.length (Net.nodes net)

let[@perf.hot] tally_allowed xs =
  (List.length xs [@perf.allow "length-in-hot-path"])
