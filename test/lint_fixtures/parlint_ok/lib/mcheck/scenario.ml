let steady p = "steady-" ^ p
let steady_batched p = steady p ^ "-batched"

let crash p = "crash-" ^ p
[@@lint.allow "scenario-parity" "crash scopes not batched in this miniature"]

let names = [ steady "raft"; steady_batched "raft"; crash "raft" ]
