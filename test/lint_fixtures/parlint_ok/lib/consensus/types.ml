(* parlint_ok miniature: one threaded knob, one suppressed constant. *)
type params = {
  batch_size : int;
  cpu_model_us : int; [@lint.allow "knob-threading" "engine model constant"]
}
