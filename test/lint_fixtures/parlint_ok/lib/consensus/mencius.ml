(* The msg type carries a handler-parity allow: this miniature has no
   MCommitMulti (commit-batched rides MAppendMulti here), and the
   make_probes binding carries a probe-parity allow for the missing
   commit counter — both are the suppressed-fixture half of those
   rules. *)
type msg =
  | MAppend of { from : int }
  | MAck of { from : int }
  | MCommit of { inst : int }
  | MAppendMulti of { from : int }
  | MAckMulti of { from : int }
[@@lint.allow "handler-parity" "commit-batched piggybacks on MAppendMulti"]

let handle m =
  match m with
  | MAppend _ -> 1
  | MAck _ -> 2
  | MCommit _ -> 3
  | MAppendMulti _ -> 4
  | MAckMulti _ -> 5

let make_probes c =
  ignore (c "revocations_started");
  ignore (c "revocations_value");
  ignore (c "appends_sent");
  ignore (c "acks_sent");
  ignore (c "skips_announced");
  ignore (c "retransmits");
  ignore (c "batch_flush_cmds")
[@@lint.allow "probe-parity" "no commit counter in the miniature runtime"]
