type msg =
  | Append of { term : int }
  | Ack of { from : int }
  | Internal [@lint.allow "wire-coverage" "never crosses the wire"]

let handle m = match m with Append _ -> 1 | Ack _ -> 2 | Internal -> 3

let make_probes c =
  ignore (c "elections");
  ignore (c "leader_wins");
  ignore (c "term_changes");
  ignore (c "heartbeats");
  ignore (c "appends_sent");
  ignore (c "acks_sent");
  ignore (c "commits");
  ignore (c "retransmits");
  ignore (c "forwards");
  ignore (c "batch_flush_cmds")
