type protocol = Raft | Multipaxos

let all_protocols = [ Raft; Multipaxos ]
let protocol_name = function Raft -> "raft" | Multipaxos -> "multipaxos"
