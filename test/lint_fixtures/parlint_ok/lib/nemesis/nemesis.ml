type config = { batch_size : int }
