type protocol =
  | Raft
  | Multipaxos
  | Raft_ll
      [@lint.allow "scenario-parity" "no chaos coverage for leases yet"]

type config = { batch_size : int }
