type config = { batch_size : int }

let to_json cfg = [ ("batch_size", cfg.batch_size) ]
