let () = print_string "batch_size"
