let gen_raft_msg = [ Raft.Append { term = 1 }; Raft.Ack { from = 0 } ]

let gen_multipaxos_msg =
  [
    Multipaxos.Accept { bal = 1 };
    Multipaxos.AcceptOk { bal = 1 };
    Multipaxos.Learn { inst = 1 };
    Multipaxos.AcceptMulti { bal = 1 };
    Multipaxos.AcceptOkMulti { bal = 1 };
    Multipaxos.LearnMulti { insts = [ 1 ] };
  ]

let gen_mencius_msg =
  [
    Mencius.MAppend { from = 1 };
    Mencius.MAck { from = 1 };
    Mencius.MCommit { inst = 1 };
    Mencius.MAppendMulti { from = 1 };
    Mencius.MAckMulti { from = 1 };
  ]

let golden_table =
  [
    ("raft-append", `M (Raft.Append { term = 1 }), "00");
    ("raft-ack", `M (Raft.Ack { from = 0 }), "01");
    ("mp-accept", `M (Multipaxos.Accept { bal = 1 }), "02");
    ("mp-accept-ok", `M (Multipaxos.AcceptOk { bal = 1 }), "03");
    ("mp-learn", `M (Multipaxos.Learn { inst = 1 }), "04");
    ("mp-accept-multi", `M (Multipaxos.AcceptMulti { bal = 1 }), "05");
    ("mp-accept-ok-multi", `M (Multipaxos.AcceptOkMulti { bal = 1 }), "06");
    ("mp-learn-multi", `M (Multipaxos.LearnMulti { insts = [] }), "07");
    ("mencius-mappend", `M (Mencius.MAppend { from = 1 }), "08");
    ("mencius-mack", `M (Mencius.MAck { from = 1 }), "09");
    ("mencius-mcommit", `M (Mencius.MCommit { inst = 1 }), "0a");
    ("mencius-mappend-multi", `M (Mencius.MAppendMulti { from = 1 }), "0b");
    ("mencius-mack-multi", `M (Mencius.MAckMulti { from = 1 }), "0c");
  ]
