let () =
  List.iter (fun p -> ignore (Cluster.protocol_name p)) Cluster.all_protocols
