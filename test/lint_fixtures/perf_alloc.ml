(* perflint fixture: alloc-in-handler.  The rule fires only inside
   explicitly [@perf.hot]-attributed functions: [broadcast] yields three
   findings (List.map, the anonymous closure, the tuple).  A name-hot
   [handle] (under lib/consensus/) and a cold copy stay silent, as does
   the suppressed site. *)

let[@perf.hot] broadcast peers msg = List.map (fun p -> (p, msg)) peers

let handle peers msg = List.map (fun p -> (p, msg)) peers

let cold peers msg = List.map (fun p -> (p, msg)) peers

let[@perf.hot] broadcast_allowed peers =
  (List.map (fun p -> p) peers [@perf.allow "alloc-in-handler"])
