(* perflint fixture: quadratic-accumulate.
   3 positives (ref-append both directions, field-append), then the
   sanctioned cons form and both suppression spellings. *)

let gathered = ref []
let absorb extras = gathered := extras @ !gathered
let absorb_tail extras = gathered := !gathered @ extras

type t = { mutable acc : int list }

let note t x = t.acc <- [ x ] @ t.acc
let note_ok t x = t.acc <- x :: t.acc

let absorb_allowed extras =
  ((gathered := extras @ !gathered) [@perf.allow "quadratic-accumulate"])

let[@perf.allow "quadratic-accumulate"] note_allowed t x =
  t.acc <- [ x ] @ t.acc
