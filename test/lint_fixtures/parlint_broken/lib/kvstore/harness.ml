(* Raft_ll has no counterpart in cluster.ml and no allow —
   scenario-parity must fire. *)
type protocol = Raft | Multipaxos | Raft_ll
type config = { batch_size : int }
