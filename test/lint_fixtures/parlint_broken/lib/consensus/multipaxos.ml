(* Two deliberate faults: handle never dispatches LearnMulti
   (handler-parity declared-but-never-matched) and make_probes drops
   "elections" (probe-parity: leader-change-started is registered by
   the other two protocols). *)
type msg =
  | Accept of { bal : int }
  | AcceptOk of { bal : int }
  | Learn of { inst : int }
  | AcceptMulti of { bal : int }
  | AcceptOkMulti of { bal : int }
  | LearnMulti of { insts : int list }

let handle m =
  match m with
  | Accept _ -> 1
  | AcceptOk _ -> 2
  | Learn _ -> 3
  | AcceptMulti _ -> 4
  | AcceptOkMulti _ -> 5
  | _ -> 0

let make_probes c =
  ignore (c "leader_wins");
  ignore (c "ballot_changes");
  ignore (c "accepts_sent");
  ignore (c "acks_sent");
  ignore (c "commits");
  ignore (c "retransmits");
  ignore (c "forwards");
  ignore (c "batch_flush_cmds")
