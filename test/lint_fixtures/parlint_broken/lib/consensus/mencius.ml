(* Deliberate fault: MAckMulti is missing from the msg type with no
   allow, while multipaxos has AcceptOkMulti — handler-parity
   missing-member must fire on the ack-batched family. *)
type msg =
  | MAppend of { from : int }
  | MAck of { from : int }
  | MCommit of { inst : int }
  | MAppendMulti of { from : int }
  | MCommitMulti of { insts : int list }

let handle m =
  match m with
  | MAppend _ -> 1
  | MAck _ -> 2
  | MCommit _ -> 3
  | MAppendMulti _ -> 4
  | MCommitMulti _ -> 5

let make_probes c =
  ignore (c "elections");
  ignore (c "revocations_value");
  ignore (c "appends_sent");
  ignore (c "acks_sent");
  ignore (c "commits");
  ignore (c "skips_announced");
  ignore (c "retransmits");
  ignore (c "forwards");
  ignore (c "batch_flush_cmds")
