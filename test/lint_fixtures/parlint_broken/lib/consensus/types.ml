(* parlint_broken miniature: new_knob is declared but never threaded. *)
type params = {
  batch_size : int;
  new_knob : int;
  cpu_model_us : int; [@lint.allow "knob-threading" "engine model constant"]
}
