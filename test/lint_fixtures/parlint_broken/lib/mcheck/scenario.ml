(* crash has no batched variant and no allow — scenario-parity must
   fire on the crash binding. *)
let steady p = "steady-" ^ p
let steady_batched p = steady p ^ "-batched"
let crash p = "crash-" ^ p
let names = [ steady "raft"; steady_batched "raft"; crash "raft" ]
