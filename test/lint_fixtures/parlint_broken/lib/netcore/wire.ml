(* Probe deliberately has no wire coverage. *)
let put_raft w m = match m with Append _ -> w 0 | Ack _ -> w 1 | _ -> w 9
let get_raft r = if r = 0 then Append { term = 0 } else Ack { from = 0 }

let put_multipaxos w m =
  match m with
  | Accept _ -> w 0
  | AcceptOk _ -> w 1
  | Learn _ -> w 2
  | AcceptMulti _ -> w 3
  | AcceptOkMulti _ -> w 4
  | LearnMulti _ -> w 5

let get_multipaxos r =
  match r with
  | 0 -> Accept { bal = 0 }
  | 1 -> AcceptOk { bal = 0 }
  | 2 -> Learn { inst = 0 }
  | 3 -> AcceptMulti { bal = 0 }
  | 4 -> AcceptOkMulti { bal = 0 }
  | _ -> LearnMulti { insts = [] }

let put_mencius w m =
  match m with
  | MAppend _ -> w 0
  | MAck _ -> w 1
  | MCommit _ -> w 2
  | MAppendMulti _ -> w 3
  | MCommitMulti _ -> w 4

let get_mencius r =
  match r with
  | 0 -> MAppend { from = 0 }
  | 1 -> MAck { from = 0 }
  | 2 -> MCommit { inst = 0 }
  | 3 -> MAppendMulti { from = 0 }
  | _ -> MCommitMulti { insts = [] }
