open Raftpax_core
module V = Value

let check_state = Alcotest.testable State.pp State.equal

let s0 =
  State.of_list [ ("x", V.int 1); ("y", V.bool true); ("z", V.set []) ]

let test_get_set () =
  Alcotest.(check bool) "get x" true (V.equal (State.get s0 "x") (V.int 1));
  let s1 = State.set s0 "x" (V.int 9) in
  Alcotest.(check bool) "set x" true (V.equal (State.get s1 "x") (V.int 9));
  Alcotest.(check bool) "s0 unchanged" true (V.equal (State.get s0 "x") (V.int 1))

let test_unbound () =
  Alcotest.check_raises "unbound read"
    (Invalid_argument "State.get: unbound variable nope") (fun () ->
      ignore (State.get s0 "nope"))

let test_vars () =
  Alcotest.(check (list string)) "vars sorted" [ "x"; "y"; "z" ] (State.vars s0)

let test_restrict () =
  let r = State.restrict s0 [ "x"; "z"; "missing" ] in
  Alcotest.(check (list string)) "restricted" [ "x"; "z" ] (State.vars r)

let test_merge () =
  let overlay = State.of_list [ ("x", V.int 42); ("w", V.int 7) ] in
  let m = State.merge s0 overlay in
  Alcotest.(check bool) "overlay wins" true (V.equal (State.get m "x") (V.int 42));
  Alcotest.(check bool) "base kept" true (V.equal (State.get m "y") V.tt);
  Alcotest.(check bool) "overlay added" true (V.equal (State.get m "w") (V.int 7))

let test_unchanged () =
  let s1 = State.set s0 "x" (V.int 2) in
  Alcotest.(check bool) "x changed" false (State.unchanged s0 s1 [ "x" ]);
  Alcotest.(check bool) "y unchanged" true (State.unchanged s0 s1 [ "y"; "z" ])

let test_compare () =
  Alcotest.(check check_state) "round trip" s0 (State.of_list (State.to_list s0));
  let s1 = State.set s0 "x" (V.int 2) in
  Alcotest.(check bool) "different" false (State.equal s0 s1)

(* restrict-then-merge with the complement reconstructs the state *)
let prop_restrict_merge =
  QCheck.Test.make ~name:"restrict/merge partition" ~count:100
    QCheck.(small_list (pair (string_of_size (QCheck.Gen.return 3)) small_int))
    (fun kvs ->
      let kvs = List.sort_uniq (fun (a, _) (b, _) -> compare a b) kvs in
      let s = State.of_list (List.map (fun (k, v) -> (k, V.int v)) kvs) in
      let names = State.vars s in
      let half = List.filteri (fun i _ -> i mod 2 = 0) names in
      let other = List.filteri (fun i _ -> i mod 2 = 1) names in
      State.equal s (State.merge (State.restrict s half) (State.restrict s other)))

(* Model-based property: a random sequence of [set]s must agree with a
   plain association-list model on get/mem/vars, and never disturb
   earlier snapshots (persistence). *)
let short_name = QCheck.Gen.(map (String.make 1) (char_range 'a' 'f'))

let prop_set_sequence_model =
  QCheck.Test.make ~name:"random set sequence matches assoc model" ~count:200
    QCheck.(
      make
        ~print:(fun ops ->
          String.concat "; "
            (List.map (fun (k, v) -> Printf.sprintf "%s:=%d" k v) ops))
        Gen.(list_size (int_bound 30) (pair short_name small_int)))
    (fun ops ->
      let snapshot_before = ref State.empty in
      let final =
        List.fold_left
          (fun s (k, v) ->
            snapshot_before := s;
            State.set s k (V.int v))
          State.empty ops
      in
      let model =
        List.fold_left
          (fun m (k, v) -> (k, v) :: List.remove_assoc k m)
          [] ops
      in
      List.for_all
        (fun (k, v) ->
          State.mem final k && V.equal (State.get final k) (V.int v))
        model
      && State.vars final
         = List.sort compare (List.map fst model)
      && (* persistence: the snapshot taken before the last set is not
            mutated by it *)
      match List.rev ops with
      | [] -> true
      | (k, _) :: _ -> (
          match State.get_opt !snapshot_before k with
          | None -> not (State.mem !snapshot_before k)
          | Some v -> V.equal (State.get !snapshot_before k) v))

let prop_merge_keeps_disjoint_base =
  QCheck.Test.make ~name:"merge leaves non-overlay vars unchanged" ~count:200
    QCheck.(
      pair
        (small_list (pair (string_of_size (Gen.return 2)) small_int))
        (small_list (pair (string_of_size (Gen.return 2)) small_int)))
    (fun (base_kvs, overlay_kvs) ->
      let mk kvs = State.of_list (List.map (fun (k, v) -> (k, V.int v)) kvs) in
      let base = mk base_kvs and overlay = mk overlay_kvs in
      let m = State.merge base overlay in
      let untouched =
        List.filter (fun v -> not (State.mem overlay v)) (State.vars base)
      in
      State.unchanged base m untouched
      && List.for_all
           (fun v -> V.equal (State.get m v) (State.get overlay v))
           (State.vars overlay))

let prop_restrict_idempotent =
  QCheck.Test.make ~name:"restrict is idempotent" ~count:200
    QCheck.(
      pair
        (small_list (pair (string_of_size (Gen.return 2)) small_int))
        (small_list (string_of_size (Gen.return 2))))
    (fun (kvs, keep) ->
      let s = State.of_list (List.map (fun (k, v) -> (k, V.int v)) kvs) in
      let once = State.restrict s keep in
      State.equal once (State.restrict once keep))

let () =
  Alcotest.run "state"
    [
      ( "basics",
        [
          Alcotest.test_case "get/set" `Quick test_get_set;
          Alcotest.test_case "unbound" `Quick test_unbound;
          Alcotest.test_case "vars" `Quick test_vars;
          Alcotest.test_case "restrict" `Quick test_restrict;
          Alcotest.test_case "merge" `Quick test_merge;
          Alcotest.test_case "unchanged" `Quick test_unchanged;
          Alcotest.test_case "compare" `Quick test_compare;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_restrict_merge;
            prop_set_sequence_model;
            prop_merge_keeps_disjoint_base;
            prop_restrict_idempotent;
          ] );
    ]
