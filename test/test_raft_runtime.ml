module Sim = Raftpax_sim
module Engine = Sim.Engine
module Net = Sim.Net
module Topology = Sim.Topology
open Raftpax_consensus

let mk ?(seed = 42L) config =
  let engine = Engine.create ~seed () in
  let nodes = List.mapi (fun i site -> { Net.id = i; site }) Topology.sites in
  let net = Net.create engine ~nodes in
  let t = Raft.create config net in
  Raft.start t;
  (engine, net, t)

let put ?(key = 1) ?(size = 8) write_id = Types.Put { key; size; write_id }

let run_and_wait engine ~ms = Engine.run engine ~until:(Engine.now engine + (ms * 1000))

(* ---- replication and commit ---- *)

let test_commit_reaches_all () =
  let engine, _, t = mk (Raft.raft_star ~leader:0 ()) in
  let ok = ref 0 in
  for i = 1 to 10 do
    Raft.submit t ~node:(i mod 5) (put ~key:i i) (fun _ -> incr ok)
  done;
  run_and_wait engine ~ms:3000;
  Alcotest.(check int) "all committed" 10 !ok;
  for node = 0 to 4 do
    for key = 1 to 10 do
      Alcotest.(check (option int))
        (Fmt.str "node %d key %d" node key)
        (Some key)
        (Raft.applied_value t ~node ~key)
    done
  done

let test_latency_shape () =
  let engine, _, t = mk (Raft.raft_star ~leader:0 ()) in
  let leader_lat = ref 0 and seoul_lat = ref 0 in
  let t0 = Engine.now engine in
  Raft.submit t ~node:0 (put 1) (fun _ -> leader_lat := Engine.now engine - t0);
  Raft.submit t ~node:4 (put 2) (fun _ -> seoul_lat := Engine.now engine - t0);
  run_and_wait engine ~ms:2000;
  (* Oregon leader commits in ~1 majority RTT (60ms); Seoul pays the
     forwarding trip on top. *)
  Alcotest.(check bool) "leader ~60-100ms" true
    (!leader_lat > 55_000 && !leader_lat < 110_000);
  Alcotest.(check bool) "seoul slower than leader" true (!seoul_lat > !leader_lat)

let test_read_returns_latest_write () =
  let engine, _, t = mk (Raft.raft ~leader:0 ()) in
  let seen = ref None in
  Raft.submit t ~node:0 (put ~key:7 41) (fun _ -> ());
  run_and_wait engine ~ms:1000;
  Raft.submit t ~node:0 (put ~key:7 42) (fun _ -> ());
  run_and_wait engine ~ms:1000;
  Raft.submit t ~node:3 (Types.Get { key = 7 }) (fun r -> seen := r.Types.value);
  run_and_wait engine ~ms:1000;
  Alcotest.(check (option int)) "latest write" (Some 42) !seen

(* ---- elections ---- *)

let test_election_from_cold_start () =
  let engine, _, t = mk (Raft.raft_star ()) in
  run_and_wait engine ~ms:8000;
  match Raft.leader_of t with
  | Some l ->
      Alcotest.(check bool) "a leader exists" true (l >= 0 && l < 5);
      let ok = ref false in
      Raft.submit t ~node:2 (put 1) (fun _ -> ok := true);
      run_and_wait engine ~ms:3000;
      Alcotest.(check bool) "cluster serves requests" true !ok
  | None -> Alcotest.fail "no leader elected"

let test_leader_crash_failover () =
  let engine, _, t = mk (Raft.raft_star ~leader:0 ()) in
  let ok = ref false in
  Raft.submit t ~node:1 (put 1) (fun _ -> ok := true);
  run_and_wait engine ~ms:2000;
  Alcotest.(check bool) "initial op" true !ok;
  Raft.crash t ~node:0;
  run_and_wait engine ~ms:10_000;
  (match Raft.leader_of t with
  | Some l -> Alcotest.(check bool) "new leader is not 0" true (l <> 0)
  | None -> Alcotest.fail "no new leader");
  let ok2 = ref false in
  let new_leader = Option.get (Raft.leader_of t) in
  Raft.submit t ~node:new_leader (put ~key:2 2) (fun _ -> ok2 := true);
  run_and_wait engine ~ms:3000;
  Alcotest.(check bool) "progress after failover" true !ok2

let test_crashed_node_catches_up () =
  let engine, _, t = mk (Raft.raft_star ~leader:0 ()) in
  Raft.crash t ~node:4;
  for i = 1 to 5 do
    Raft.submit t ~node:0 (put ~key:i i) (fun _ -> ())
  done;
  run_and_wait engine ~ms:3000;
  Alcotest.(check (option int)) "node 4 behind" None (Raft.applied_value t ~node:4 ~key:3);
  Raft.restart t ~node:4;
  run_and_wait engine ~ms:3000;
  for i = 1 to 5 do
    Alcotest.(check (option int))
      (Fmt.str "caught up on %d" i)
      (Some i)
      (Raft.applied_value t ~node:4 ~key:i)
  done

let test_minority_partition_stalls_then_recovers () =
  let engine, net, t = mk (Raft.raft_star ~leader:0 ()) in
  (* leader plus one follower cut off: no quorum on the leader side *)
  Net.set_partition net
    (Some (fun a b -> (a <= 1 && b >= 2) || (b <= 1 && a >= 2)));
  let ok = ref false in
  Raft.submit t ~node:0 (put 1) (fun _ -> ok := true);
  run_and_wait engine ~ms:4000;
  Alcotest.(check bool) "no commit without quorum" false !ok;
  (* the majority side elects its own leader meanwhile *)
  run_and_wait engine ~ms:8000;
  (match Raft.leader_of t with
  | Some l -> Alcotest.(check bool) "majority-side leader" true (l >= 2)
  | None -> Alcotest.fail "majority side should have elected");
  Net.set_partition net None;
  run_and_wait engine ~ms:15_000;
  (* The in-flight op was submitted to a deposed leader: Raft may lose it
     (clients retry in practice).  A fresh op must commit, and the old
     leader must have stepped down. *)
  let ok2 = ref false in
  Raft.submit t ~node:0 (put ~key:2 2) (fun _ -> ok2 := true);
  run_and_wait engine ~ms:10_000;
  Alcotest.(check bool) "fresh op commits after heal" true !ok2;
  Alcotest.(check (option int)) "applied cluster-wide" (Some 2)
    (Raft.applied_value t ~node:4 ~key:2)

let test_terms_monotonic () =
  let engine, _, t = mk (Raft.raft_star ~leader:0 ()) in
  let before = Raft.term_of t ~node:0 in
  Raft.crash t ~node:0;
  run_and_wait engine ~ms:10_000;
  Raft.restart t ~node:0;
  run_and_wait engine ~ms:5000;
  Alcotest.(check bool) "term advanced" true (Raft.term_of t ~node:0 > before)

(* ---- log convergence across flavors ---- *)

let logs_converge t =
  let reference = Raft.log_entries t ~node:0 in
  let commit = Raft.commit_index t ~node:0 in
  List.for_all
    (fun node ->
      let log = Raft.log_entries t ~node in
      let prefix l = List.filteri (fun i _ -> i <= commit) l in
      prefix log = prefix reference)
    [ 1; 2; 3; 4 ]

let test_log_convergence_vanilla_and_star () =
  List.iter
    (fun config ->
      let engine, _, t = mk config in
      for i = 1 to 20 do
        Raft.submit t ~node:(i mod 5) (put ~key:i i) (fun _ -> ())
      done;
      run_and_wait engine ~ms:1000;
      Raft.crash t ~node:0;
      run_and_wait engine ~ms:10_000;
      for i = 21 to 30 do
        Raft.submit t ~node:(i mod 4 + 1) (put ~key:i i) (fun _ -> ())
      done;
      run_and_wait engine ~ms:10_000;
      Raft.restart t ~node:0;
      run_and_wait engine ~ms:10_000;
      Alcotest.(check bool) "committed prefixes equal" true (logs_converge t))
    [ Raft.raft ~leader:0 (); Raft.raft_star ~leader:0 () ]

(* ---- leases ---- *)

let test_ll_reads_local_at_leader_only () =
  let engine, _, t = mk (Raft.raft_ll ~leader:0 ()) in
  (* warm the lease *)
  Raft.submit t ~node:0 (put 1) (fun _ -> ());
  run_and_wait engine ~ms:1000;
  let t0 = Engine.now engine in
  let leader_read = ref 0 and follower_read = ref 0 in
  Raft.submit t ~node:0 (Types.Get { key = 1 }) (fun _ ->
      leader_read := Engine.now engine - t0);
  Raft.submit t ~node:1 (Types.Get { key = 1 }) (fun _ ->
      follower_read := Engine.now engine - t0);
  run_and_wait engine ~ms:2000;
  Alcotest.(check bool) "leader read is local (<5ms)" true (!leader_read < 5_000);
  Alcotest.(check bool) "follower read pays the WAN" true (!follower_read > 40_000)

let test_pql_reads_local_everywhere () =
  let engine, _, t = mk (Raft.raft_pql ~leader:0 ()) in
  Raft.submit t ~node:0 (put 1) (fun _ -> ());
  run_and_wait engine ~ms:2000;
  List.iter
    (fun node ->
      Alcotest.(check bool)
        (Fmt.str "lease active at %d" node)
        true
        (Raft.lease_active t ~node))
    [ 0; 1; 2; 3; 4 ];
  let lat = Array.make 5 0 in
  let t0 = Engine.now engine in
  for node = 0 to 4 do
    Raft.submit t ~node (Types.Get { key = 1 }) (fun _ ->
        lat.(node) <- Engine.now engine - t0)
  done;
  run_and_wait engine ~ms:2000;
  Array.iteri
    (fun node l ->
      Alcotest.(check bool) (Fmt.str "node %d local read" node) true (l < 5_000))
    lat

let test_pql_read_waits_for_conflicting_write () =
  let engine, _, t = mk (Raft.raft_pql ~leader:0 ()) in
  Raft.submit t ~node:0 (put ~key:5 1) (fun _ -> ());
  run_and_wait engine ~ms:2000;
  (* now issue a write and, immediately after the follower has seen the
     append but before commit, a local read on the same key *)
  let read_value = ref None and read_done_at = ref 0 in
  let write_done_at = ref 0 in
  let t0 = Engine.now engine in
  Raft.submit t ~node:0 (put ~key:5 2) (fun _ ->
      write_done_at := Engine.now engine - t0);
  (* Ohio (node 1) sees the append after ~25ms; read at 30ms *)
  Engine.schedule engine ~delay:30_000 (fun () ->
      Raft.submit t ~node:1 (Types.Get { key = 5 }) (fun r ->
          read_value := r.Types.value;
          read_done_at := Engine.now engine - t0));
  run_and_wait engine ~ms:3000;
  Alcotest.(check (option int)) "read sees the new write" (Some 2) !read_value;
  Alcotest.(check bool) "read waited for the commit" true (!read_done_at > 35_000)

let test_pql_write_waits_for_all_holders () =
  let engine, _, t = mk (Raft.raft_pql ~leader:0 ()) in
  run_and_wait engine ~ms:1000;
  let star_lat = ref 0 and pql_lat = ref 0 in
  let t0 = Engine.now engine in
  Raft.submit t ~node:0 (put 1) (fun _ -> pql_lat := Engine.now engine - t0);
  run_and_wait engine ~ms:2000;
  let engine2, _, t2 = mk (Raft.raft_star ~leader:0 ()) in
  let t1 = Engine.now engine2 in
  Raft.submit t2 ~node:0 (put 1) (fun _ -> star_lat := Engine.now engine2 - t1);
  run_and_wait engine2 ~ms:2000;
  Alcotest.(check bool)
    (Fmt.str "pql write (%dus) slower than raft* (%dus)" !pql_lat !star_lat)
    true (!pql_lat > !star_lat)

let test_pql_lease_expiry_unblocks_writes () =
  let engine, _, t = mk (Raft.raft_pql ~leader:0 ()) in
  run_and_wait engine ~ms:1000;
  (* Seoul dies holding leases: writes must stall until its lease expires
     (2s), then commit with the majority. *)
  Raft.crash t ~node:4;
  let done_at = ref 0 in
  let t0 = Engine.now engine in
  Raft.submit t ~node:0 (put 1) (fun _ -> done_at := Engine.now engine - t0);
  run_and_wait engine ~ms:8000;
  Alcotest.(check bool) "write eventually commits" true (!done_at > 0);
  Alcotest.(check bool)
    (Fmt.str "waited for lease expiry (%dms)" (!done_at / 1000))
    true
    (!done_at > 500_000)

(* ---- consistency across random schedules (property) ---- *)

let prop_no_stale_reads =
  QCheck.Test.make ~name:"harness finds no stale reads" ~count:6
    QCheck.(int_range 1 1000)
    (fun seed ->
      let open Raftpax_kvstore in
      let wl =
        {
          Workload.read_fraction = 0.7;
          conflict_rate = 0.3;
          value_size = 8;
          records = 100;
          clients_per_region = 4;
          key_dist = Workload.Uniform;
        }
      in
      let cfg =
        Harness.config ~duration_s:4 ~warmup_s:1 ~cooldown_s:1
          ~seed:(Int64.of_int seed) Harness.Raft_pql wl
      in
      let r = Harness.run cfg in
      r.Harness.consistency_violations = 0)

let () =
  Alcotest.run "raft_runtime"
    [
      ( "replication",
        [
          Alcotest.test_case "commit reaches all" `Quick test_commit_reaches_all;
          Alcotest.test_case "latency shape" `Quick test_latency_shape;
          Alcotest.test_case "read latest" `Quick test_read_returns_latest_write;
        ] );
      ( "elections",
        [
          Alcotest.test_case "cold start" `Quick test_election_from_cold_start;
          Alcotest.test_case "leader crash" `Quick test_leader_crash_failover;
          Alcotest.test_case "catch up" `Quick test_crashed_node_catches_up;
          Alcotest.test_case "partition" `Quick test_minority_partition_stalls_then_recovers;
          Alcotest.test_case "terms monotonic" `Quick test_terms_monotonic;
          Alcotest.test_case "log convergence" `Quick test_log_convergence_vanilla_and_star;
        ] );
      ( "leases",
        [
          Alcotest.test_case "LL local at leader" `Quick test_ll_reads_local_at_leader_only;
          Alcotest.test_case "PQL local everywhere" `Quick test_pql_reads_local_everywhere;
          Alcotest.test_case "PQL read waits" `Quick test_pql_read_waits_for_conflicting_write;
          Alcotest.test_case "PQL write waits" `Quick test_pql_write_waits_for_all_holders;
          Alcotest.test_case "PQL lease expiry" `Quick test_pql_lease_expiry_unblocks_writes;
        ] );
      ( "consistency",
        List.map QCheck_alcotest.to_alcotest [ prop_no_stale_reads ] );
    ]
