(* Tests for lib/netcore: codec primitives, wire roundtrips covering
   every message constructor of every protocol, rejection of truncated
   and corrupted input, framing reassembly across arbitrary chunk
   boundaries, and snapshot canonicality.  A golden byte vector pins the
   format: if encoding changes, the pin must be bumped consciously
   together with [Wire.version]. *)

module Codec = Raftpax_netcore.Codec
module Wire = Raftpax_netcore.Wire
module Framing = Raftpax_netcore.Framing
module Snapshot = Raftpax_netcore.Snapshot
module Types = Raftpax_consensus.Types
module Raft = Raftpax_consensus.Raft
module Mencius = Raftpax_consensus.Mencius
module Multipaxos = Raftpax_consensus.Multipaxos

(* ---- generators ---- *)

open QCheck

let gen_op =
  Gen.(
    oneof
      [
        map (fun key -> Types.Get { key }) (int_bound 10_000);
        map3
          (fun key size write_id -> Types.Put { key; size; write_id })
          (int_bound 10_000) (int_bound 4096) (int_bound 1_000_000);
      ])

let gen_cmd =
  Gen.(
    map2
      (fun (id, origin) (op, submitted_us) ->
        { Types.id; op; origin; submitted_us })
      (pair (int_bound 1_000_000) (int_bound 8))
      (pair gen_op (int_bound 100_000_000)))

let gen_entry =
  Gen.(
    map2
      (fun term cmd -> { Types.term; cmd })
      (int_bound 50) (option gen_cmd))

let gen_reply = Gen.(map (fun value -> { Types.value }) (option small_nat))

let gen_raft_msg =
  Gen.(
    oneof
      [
        map
          (fun (term, cand, last_idx, last_term) ->
            Raft.RequestVote { term; cand; last_idx; last_term })
          (quad (int_bound 50) (int_bound 8) (int_bound 1000) (int_bound 50));
        map
          (fun ((term, from, granted), extras) ->
            Raft.Vote { term; from; granted; extras })
          (pair
             (triple (int_bound 50) (int_bound 8) bool)
             (small_list (triple (int_bound 1000) gen_entry (int_bound 50))));
        map
          (fun ((term, leader, prev_idx), (prev_term, entries, commit)) ->
            Raft.Append { term; leader; prev_idx; prev_term; entries; commit })
          (pair
             (triple (int_bound 50) (int_bound 8) (int_bound 1000))
             (triple (int_bound 50)
                (small_list (pair gen_entry (int_bound 50)))
                (int_bound 1000)));
        map
          (fun ((term, from, success), (match_idx, holders)) ->
            Raft.Ack { term; from; success; match_idx; holders })
          (pair
             (triple (int_bound 50) (int_bound 8) bool)
             (pair (int_bound 1000)
                (small_list (pair (int_bound 8) (int_bound 100_000_000)))));
        map (fun c -> Raft.Forward c) gen_cmd;
        map2
          (fun cmd_id reply -> Raft.Complete { cmd_id; reply })
          (int_bound 1_000_000) gen_reply;
        map
          (fun (from, deadline, grantor_last) ->
            Raft.Grant { from; deadline; grantor_last })
          (triple (int_bound 8) (int_bound 100_000_000) (int_bound 1000));
        map2
          (fun from deadline -> Raft.GrantConfirm { from; deadline })
          (int_bound 8) (int_bound 100_000_000);
      ])

let gen_mencius_msg =
  Gen.(
    oneof
      [
        map
          (fun (from, inst, cmd) -> Mencius.MAppend { from; inst; cmd })
          (triple (int_bound 8) (int_bound 1000) gen_cmd);
        map2 (fun from inst -> Mencius.MAck { from; inst }) (int_bound 8)
          (int_bound 1000);
        map
          (fun (from, first, upto) -> Mencius.MSkip { from; first; upto })
          (triple (int_bound 8) (int_bound 1000) (int_bound 1000));
        map (fun inst -> Mencius.MCommit { inst }) (int_bound 1000);
        map2 (fun from inst -> Mencius.MRevoke { from; inst }) (int_bound 8)
          (int_bound 1000);
        map
          (fun (from, inst, value) -> Mencius.MRevStatus { from; inst; value })
          (triple (int_bound 8) (int_bound 1000) (option gen_cmd));
        map (fun inst -> Mencius.MSkipForce { inst }) (int_bound 1000);
        map (fun from -> Mencius.MCatchup { from }) (int_bound 8);
        map
          (fun slots -> Mencius.MState { slots })
          (small_list
             (quad (int_bound 1000) bool (option gen_cmd) bool));
        map2
          (fun cmd_id reply -> Mencius.Complete { cmd_id; reply })
          (int_bound 1_000_000) gen_reply;
        map2
          (fun from items -> Mencius.MAppendMulti { from; items })
          (int_bound 8)
          (small_list (pair (int_bound 1000) gen_cmd));
        map2
          (fun from insts -> Mencius.MAckMulti { from; insts })
          (int_bound 8)
          (small_list (int_bound 1000));
        map
          (fun insts -> Mencius.MCommitMulti { insts })
          (small_list (int_bound 1000));
      ])

let gen_multipaxos_msg =
  Gen.(
    oneof
      [
        map2 (fun bal from -> Multipaxos.Prepare { bal; from }) (int_bound 50)
          (int_bound 8);
        map
          (fun (bal, from, accepted) ->
            Multipaxos.PrepareOk { bal; from; accepted })
          (triple (int_bound 50) (int_bound 8)
             (small_list (triple (int_bound 1000) (int_bound 50) (option gen_cmd))));
        map
          (fun ((bal, from), (inst, cmd)) ->
            Multipaxos.Accept { bal; from; inst; cmd })
          (pair (pair (int_bound 50) (int_bound 8))
             (pair (int_bound 1000) (option gen_cmd)));
        map
          (fun (bal, from, inst) -> Multipaxos.AcceptOk { bal; from; inst })
          (triple (int_bound 50) (int_bound 8) (int_bound 1000));
        map2
          (fun inst cmd -> Multipaxos.Learn { inst; cmd })
          (int_bound 1000) (option gen_cmd);
        map (fun c -> Multipaxos.Forward c) gen_cmd;
        map2
          (fun cmd_id reply -> Multipaxos.Complete { cmd_id; reply })
          (int_bound 1_000_000) gen_reply;
        map
          (fun (bal, from, items) -> Multipaxos.AcceptMulti { bal; from; items })
          (triple (int_bound 50) (int_bound 8)
             (small_list (pair (int_bound 1000) (option gen_cmd))));
        map
          (fun (bal, from, insts) ->
            Multipaxos.AcceptOkMulti { bal; from; insts })
          (triple (int_bound 50) (int_bound 8) (small_list (int_bound 1000)));
        map
          (fun items -> Multipaxos.LearnMulti { items })
          (small_list (pair (int_bound 1000) (option gen_cmd)));
      ])

let gen_protocol_msg =
  Gen.(
    oneof
      [
        map (fun m -> Wire.Raft_msg m) gen_raft_msg;
        map (fun m -> Wire.Mencius_msg m) gen_mencius_msg;
        map (fun m -> Wire.Multipaxos_msg m) gen_multipaxos_msg;
      ])

let gen_frame =
  Gen.(
    oneof
      [
        map (fun node -> Wire.Peer_hello { node }) (int_bound 8);
        map
          (fun (src, dst, msg) -> Wire.Peer_msg { src; dst; msg })
          (triple (int_bound 8) (int_bound 8) gen_protocol_msg);
        return Wire.Client_hello;
        map2
          (fun req_id op -> Wire.Client_req { req_id; op })
          (int_bound 1_000_000) gen_op;
        map2
          (fun req_id value -> Wire.Client_reply { req_id; value })
          (int_bound 1_000_000) (option small_nat);
        return Wire.Snapshot_req;
        map
          (fun (node, committed, snapshot) ->
            Wire.Snapshot_reply { node; committed; snapshot })
          (triple (int_bound 8) (int_bound 100_000) (small_string ~gen:Gen.char));
      ])

let arb_frame = make ~print:(fun _ -> "<frame>") gen_frame

(* ---- codec primitives ---- *)

let int_roundtrip =
  Test.make ~name:"codec int zigzag roundtrip" ~count:500 int (fun v ->
      let w = Codec.writer () in
      Codec.put_int w v;
      Codec.decode Codec.get_int (Codec.to_string w) = Ok v)

let test_int_extremes () =
  List.iter
    (fun v ->
      let w = Codec.writer () in
      Codec.put_int w v;
      Alcotest.(check bool)
        (Printf.sprintf "roundtrip %d" v)
        true
        (Codec.decode Codec.get_int (Codec.to_string w) = Ok v))
    [ 0; 1; -1; 63; -64; max_int; min_int; 1 lsl 40; -(1 lsl 40) ]

let string_roundtrip =
  Test.make ~name:"codec string roundtrip" ~count:200
    (string_gen Gen.char)
    (fun s ->
      let w = Codec.writer () in
      Codec.put_string w s;
      Codec.decode Codec.get_string (Codec.to_string w) = Ok s)

let test_trailing_rejected () =
  let w = Codec.writer () in
  Codec.put_int w 42;
  let s = Codec.to_string w ^ "\x00" in
  Alcotest.(check bool)
    "trailing byte rejected" true
    (match Codec.decode Codec.get_int s with Error _ -> true | Ok _ -> false)

(* ---- wire roundtrips and rejection ---- *)

let frame_roundtrip =
  Test.make ~name:"wire frame roundtrip" ~count:500 arb_frame (fun f ->
      Wire.decode_frame (Wire.encode_frame f) = Ok f)

let frame_truncation =
  (* Every strict prefix of a valid encoding must be rejected, never
     silently decoded as something shorter. *)
  Test.make ~name:"wire strict prefixes rejected" ~count:100 arb_frame
    (fun f ->
      let s = Wire.encode_frame f in
      let ok = ref true in
      for len = 0 to String.length s - 1 do
        match Wire.decode_frame (String.sub s 0 len) with
        | Ok _ -> ok := false
        | Error _ -> ()
      done;
      !ok)

let test_bad_version () =
  let s = Wire.encode_frame Wire.Client_hello in
  let b = Bytes.of_string s in
  Bytes.set b 0 (Char.chr (Wire.version + 1));
  Alcotest.(check bool)
    "wrong version rejected" true
    (match Wire.decode_frame (Bytes.to_string b) with
    | Error _ -> true
    | Ok _ -> false);
  Alcotest.(check bool)
    "garbage rejected" true
    (match Wire.decode_frame "\xff\xfe\xfd\xfc" with
    | Error _ -> true
    | Ok _ -> false)

(* ---- golden vector ----

   Pins the byte format of a representative nested frame.  A change here
   is a wire-format break: bump [Wire.version] and regenerate. *)

let golden_frame =
  Wire.Peer_msg
    {
      src = 1;
      dst = 2;
      msg =
        Wire.Raft_msg
          (Raft.Append
             {
               term = 3;
               leader = 1;
               prev_idx = 7;
               prev_term = 2;
               entries =
                 [
                   ( {
                       Types.term = 3;
                       cmd =
                         Some
                           {
                             Types.id = 41;
                             op = Types.Put { key = 5; size = 8; write_id = 9 };
                             origin = 1;
                             submitted_us = 1500;
                           };
                     },
                     3 );
                 ];
               commit = 6;
             });
    }

let golden_hex = "01010204000206020e0401060152010a101202b817060c"

let hex_of s =
  String.concat "" (List.map (Printf.sprintf "%02x") (List.map Char.code (List.of_seq (String.to_seq s))))

let test_golden () =
  Alcotest.(check string)
    "golden bytes" golden_hex
    (hex_of (Wire.encode_frame golden_frame));
  Alcotest.(check bool)
    "golden decodes" true
    (Wire.decode_frame (Wire.encode_frame golden_frame) = Ok golden_frame)

(* A second pin for the batched replication path: an [AcceptMulti]
   carrying a two-command flush.  The Multi constructors were appended
   to each protocol's tag space, so this vector changing — or the
   original one above — is a format break. *)
let golden_batched_frame =
  Wire.Peer_msg
    {
      src = 0;
      dst = 2;
      msg =
        Wire.Multipaxos_msg
          (Multipaxos.AcceptMulti
             {
               bal = 4;
               from = 0;
               items =
                 [
                   ( 11,
                     Some
                       {
                         Types.id = 7;
                         op = Types.Put { key = 5; size = 8; write_id = 3 };
                         origin = 0;
                         submitted_us = 900;
                       } );
                   (12, None);
                 ];
             });
    }

let golden_batched_hex = "01010004020708000216010e010a100600880e1800"

let test_golden_batched () =
  Alcotest.(check string)
    "batched golden bytes" golden_batched_hex
    (hex_of (Wire.encode_frame golden_batched_frame));
  Alcotest.(check bool)
    "batched golden decodes" true
    (Wire.decode_frame (Wire.encode_frame golden_batched_frame)
    = Ok golden_batched_frame)

(* ---- the golden family ----

   The two pins above cover one nested Append and one AcceptMulti;
   parlint's wire-coverage rule demands the rest of the family too:
   every msg constructor of every protocol pinned to bytes, each with a
   small representative value.  Any hex changing here is a wire-format
   break — bump [Wire.version] and regenerate the table by running this
   binary with GOLDEN_REGEN=1, which prints the rows and exits. *)

let sample_cmd =
  {
    Types.id = 7;
    op = Types.Put { key = 5; size = 8; write_id = 3 };
    origin = 1;
    submitted_us = 900;
  }

let sample_get =
  { Types.id = 8; op = Types.Get { key = 5 }; origin = 2; submitted_us = 901 }

let sample_entry = { Types.term = 2; cmd = Some sample_cmd }
let sample_reply = { Types.value = Some 4 }

let golden_family : (string * Wire.protocol_msg * string) list =
  [
    ( "raft-request-vote",
      Wire.Raft_msg
        (Raft.RequestVote { term = 3; cand = 1; last_idx = 7; last_term = 2 }),
      "01010204000006020e04" );
    ( "raft-vote",
      Wire.Raft_msg
        (Raft.Vote
           {
             term = 3;
             from = 1;
             granted = true;
             extras = [ (5, sample_entry, 2) ];
           }),
      "010102040001060201010a04010e010a100602880e04" );
    ( "raft-ack",
      Wire.Raft_msg
        (Raft.Ack
           {
             term = 3;
             from = 2;
             success = true;
             match_idx = 7;
             holders = [ (1, 900) ];
           }),
      "0101020400030604010e0102880e" );
    ("raft-forward", Wire.Raft_msg (Raft.Forward sample_cmd), "0101020400040e010a100602880e");
    ( "raft-complete",
      Wire.Raft_msg (Raft.Complete { cmd_id = 7; reply = sample_reply }),
      "0101020400050e0108" );
    ( "raft-grant",
      Wire.Raft_msg (Raft.Grant { from = 0; deadline = 5_000; grantor_last = 7 }),
      "01010204000600904e0e" );
    ( "raft-grant-confirm",
      Wire.Raft_msg (Raft.GrantConfirm { from = 1; deadline = 5_000 }),
      "01010204000702904e" );
    ( "mencius-mappend",
      Wire.Mencius_msg (Mencius.MAppend { from = 1; inst = 4; cmd = sample_cmd }),
      "01010204010002080e010a100602880e" );
    ("mencius-mack", Wire.Mencius_msg (Mencius.MAck { from = 2; inst = 4 }), "0101020401010408");
    ( "mencius-mskip",
      Wire.Mencius_msg (Mencius.MSkip { from = 1; first = 4; upto = 7 }),
      "01010204010202080e" );
    ("mencius-mcommit", Wire.Mencius_msg (Mencius.MCommit { inst = 4 }), "01010204010308");
    ( "mencius-mrevoke",
      Wire.Mencius_msg (Mencius.MRevoke { from = 0; inst = 5 }),
      "010102040104000a" );
    ( "mencius-mrevstatus",
      Wire.Mencius_msg
        (Mencius.MRevStatus { from = 2; inst = 5; value = Some sample_cmd }),
      "010102040105040a010e010a100602880e" );
    ( "mencius-mskipforce",
      Wire.Mencius_msg (Mencius.MSkipForce { inst = 5 }),
      "0101020401060a" );
    ("mencius-mcatchup", Wire.Mencius_msg (Mencius.MCatchup { from = 2 }), "01010204010704");
    ( "mencius-mstate",
      Wire.Mencius_msg
        (Mencius.MState
           {
             slots =
               [ (4, true, Some sample_cmd, false); (5, false, None, true) ];
           }),
      "010102040108020801010e010a100602880e000a000001" );
    ( "mencius-mappend-multi",
      Wire.Mencius_msg
        (Mencius.MAppendMulti
           { from = 1; items = [ (4, sample_cmd); (5, sample_get) ] }),
      "01010204010a0202080e010a100602880e0a10000a048a0e" );
    ( "mencius-mack-multi",
      Wire.Mencius_msg (Mencius.MAckMulti { from = 2; insts = [ 4; 5 ] }),
      "01010204010b0402080a" );
    ( "mencius-mcommit-multi",
      Wire.Mencius_msg (Mencius.MCommitMulti { insts = [ 4; 5 ] }),
      "01010204010c02080a" );
    ( "mencius-complete",
      Wire.Mencius_msg (Mencius.Complete { cmd_id = 7; reply = sample_reply }),
      "0101020401090e0108" );
    ( "multipaxos-prepare",
      Wire.Multipaxos_msg (Multipaxos.Prepare { bal = 3; from = 1 }),
      "0101020402000602" );
    ( "multipaxos-prepare-ok",
      Wire.Multipaxos_msg
        (Multipaxos.PrepareOk
           { bal = 3; from = 1; accepted = [ (4, 2, Some sample_cmd) ] }),
      "0101020402010602010804010e010a100602880e" );
    ( "multipaxos-accept",
      Wire.Multipaxos_msg
        (Multipaxos.Accept { bal = 3; from = 1; inst = 4; cmd = Some sample_cmd }),
      "010102040202060208010e010a100602880e" );
    ( "multipaxos-accept-ok",
      Wire.Multipaxos_msg (Multipaxos.AcceptOk { bal = 3; from = 2; inst = 4 }),
      "010102040203060408" );
    ( "multipaxos-learn",
      Wire.Multipaxos_msg (Multipaxos.Learn { inst = 4; cmd = Some sample_cmd }),
      "01010204020408010e010a100602880e" );
    ( "multipaxos-forward",
      Wire.Multipaxos_msg (Multipaxos.Forward sample_get),
      "01010204020510000a048a0e" );
    ( "multipaxos-complete",
      Wire.Multipaxos_msg
        (Multipaxos.Complete { cmd_id = 8; reply = sample_reply }),
      "010102040206100108" );
    ( "multipaxos-accept-ok-multi",
      Wire.Multipaxos_msg
        (Multipaxos.AcceptOkMulti { bal = 3; from = 2; insts = [ 4; 5 ] }),
      "010102040208060402080a" );
    ( "multipaxos-learn-multi",
      Wire.Multipaxos_msg
        (Multipaxos.LearnMulti { items = [ (4, Some sample_cmd); (5, None) ] }),
      "0101020402090208010e010a100602880e0a00" );
  ]

let frame_of_family msg = Wire.Peer_msg { src = 1; dst = 2; msg }

let test_golden_family () =
  List.iter
    (fun (name, msg, hex) ->
      let frame = frame_of_family msg in
      Alcotest.(check string)
        (name ^ " bytes") hex
        (hex_of (Wire.encode_frame frame));
      Alcotest.(check bool)
        (name ^ " decodes") true
        (Wire.decode_frame (Wire.encode_frame frame) = Ok frame))
    golden_family

(* The single-allocation send path must be byte-equivalent to the
   allocating one: encoding into a reused writer then framing it with
   [Framing.encode_writer] yields the same stream as [Framing.encode
   (Wire.encode_frame f)] — for every frame, reusing one writer across
   the whole sequence. *)
let writer_equivalence =
  Test.make ~name:"encode_writer equals encode o encode_frame" ~count:200
    (QCheck.make (Gen.small_list gen_frame))
    (fun frames ->
      let scratch = Codec.writer_sized 64 in
      List.for_all
        (fun f ->
          Wire.encode_frame_into scratch f;
          String.equal
            (Framing.encode_writer scratch)
            (Framing.encode (Wire.encode_frame f)))
        frames)

(* ---- framing ---- *)

let framing_chunks =
  (* Concatenate several framed payloads, split the byte stream at
     arbitrary boundaries, and check the reassembler returns exactly the
     original payloads in order. *)
  Test.make ~name:"framing reassembly at arbitrary boundaries" ~count:200
    (pair (small_list (string_gen Gen.char)) (list_of_size (Gen.int_bound 20) small_nat))
    (fun (payloads, cuts) ->
      let stream = String.concat "" (List.map Framing.encode payloads) in
      let n = String.length stream in
      let cuts = List.sort_uniq Int.compare (List.filter (fun c -> c > 0 && c < n) cuts) in
      let chunks =
        let rec go start = function
          | [] -> if start < n then [ String.sub stream start (n - start) ] else []
          | c :: rest -> String.sub stream start (c - start) :: go c rest
        in
        go 0 cuts
      in
      let r = Framing.reassembler () in
      let got =
        List.concat_map
          (fun chunk ->
            match Framing.feed r chunk with
            | Ok fs -> fs
            | Error (Framing.Frame_too_large _) -> [])
          chunks
      in
      got = payloads && Framing.buffered r = 0)

let test_frame_too_large () =
  let b = Bytes.create 4 in
  Bytes.set_int32_be b 0 (Int32.of_int Framing.max_frame);
  let r = Framing.reassembler () in
  Alcotest.(check bool)
    "oversized length poisons the stream" true
    (match Framing.feed r (Bytes.to_string b) with
    | Error (Framing.Frame_too_large _) -> true
    | Ok _ -> false)

(* ---- snapshots ---- *)

let test_snapshot_canonical () =
  let put key write_id = Types.Put { key; size = 8; write_id } in
  let ops = [ put 3 1; put 1 2; put 3 3 ] in
  let a = Snapshot.of_ops ops and b = Snapshot.of_ops ops in
  Alcotest.(check string) "deterministic" a b;
  Alcotest.(check bool)
    "order-sensitive" true
    (not (String.equal a (Snapshot.of_ops [ put 1 2; put 3 1; put 3 3 ])));
  (* final image: key 3 keeps the last write in commit order *)
  Alcotest.(check bool) "last write wins" true
    (let rec contains_sub s sub i =
       i + String.length sub <= String.length s
       && (String.equal (String.sub s i (String.length sub)) sub
          || contains_sub s sub (i + 1))
     in
     contains_sub a "3=3" 0);
  Alcotest.(check string)
    "digest stable" (Snapshot.digest a) (Snapshot.digest b)

(* GOLDEN_REGEN=1 prints the golden_family rows (name and current hex)
   and exits, for conscious regeneration after a format break. *)
let () =
  match Sys.getenv_opt "GOLDEN_REGEN" with
  | None -> ()
  | Some _ ->
      List.iter
        (fun (name, msg, _) ->
          Printf.printf "%s %s\n" name
            (hex_of (Wire.encode_frame (frame_of_family msg))))
        golden_family;
      exit 0

let () =
  Alcotest.run "netcore"
    [
      ( "codec",
        [
          QCheck_alcotest.to_alcotest int_roundtrip;
          QCheck_alcotest.to_alcotest string_roundtrip;
          Alcotest.test_case "int extremes" `Quick test_int_extremes;
          Alcotest.test_case "trailing bytes rejected" `Quick
            test_trailing_rejected;
        ] );
      ( "wire",
        [
          QCheck_alcotest.to_alcotest frame_roundtrip;
          QCheck_alcotest.to_alcotest frame_truncation;
          Alcotest.test_case "version and garbage rejected" `Quick
            test_bad_version;
          Alcotest.test_case "golden byte vector" `Quick test_golden;
          Alcotest.test_case "batched golden byte vector" `Quick
            test_golden_batched;
          Alcotest.test_case "golden family (every constructor)" `Quick
            test_golden_family;
          QCheck_alcotest.to_alcotest writer_equivalence;
        ] );
      ( "framing",
        [
          QCheck_alcotest.to_alcotest framing_chunks;
          Alcotest.test_case "frame too large" `Quick test_frame_too_large;
        ] );
      ( "snapshot",
        [ Alcotest.test_case "canonical form" `Quick test_snapshot_canonical ] );
    ]
