open Raftpax_kvstore
module Types = Raftpax_consensus.Types

let put key write_id = Types.Put { key; size = 8; write_id }

let order = [ put 1 10; put 2 20; put 1 11; put 1 12 ]

let wc write_id key at_us = Lin_check.Write_complete { write_id; key; at_us }
let rd key started_us returned = Lin_check.Read { key; started_us; returned }

let check events = Lin_check.check ~committed_order:order events

let test_fresh_read_ok () =
  let r = check [ wc 10 1 100; rd 1 200 (Some 10) ] in
  Alcotest.(check int) "checked" 1 r.Lin_check.reads_checked;
  Alcotest.(check int) "no violations" 0 (List.length r.Lin_check.violations)

let test_newer_than_required_ok () =
  (* returning a newer (committed) write than the acknowledged floor is
     fine — the read linearizes later *)
  let r = check [ wc 10 1 100; rd 1 200 (Some 12) ] in
  Alcotest.(check int) "no violations" 0 (List.length r.Lin_check.violations)

let test_stale_read_flagged () =
  let r = check [ wc 10 1 100; wc 11 1 150; rd 1 200 (Some 10) ] in
  Alcotest.(check int) "stale flagged" 1 (List.length r.Lin_check.violations);
  let v = List.hd r.Lin_check.violations in
  Alcotest.(check int) "expected write" 11 v.Lin_check.v_expected_after

let test_phantom_value_flagged () =
  (* a value that was never committed *)
  let r = check [ rd 1 50 (Some 999) ] in
  Alcotest.(check int) "phantom flagged" 1 (List.length r.Lin_check.violations)

let test_none_after_write_flagged () =
  let r = check [ wc 10 1 100; rd 1 200 None ] in
  Alcotest.(check int) "missing write flagged" 1 (List.length r.Lin_check.violations)

let test_none_before_any_write_ok () =
  let r = check [ rd 7 50 None ] in
  Alcotest.(check int) "empty key ok" 0 (List.length r.Lin_check.violations)

let test_concurrent_write_not_required () =
  (* write completes after the read started: the read may miss it *)
  let r = check [ wc 10 1 300; rd 1 200 None ] in
  Alcotest.(check int) "concurrent ok" 0 (List.length r.Lin_check.violations)

let test_per_key_isolation () =
  (* a write on key 2 does not constrain reads of key 1 *)
  let r = check [ wc 20 2 100; rd 1 200 None ] in
  Alcotest.(check int) "keys independent" 0 (List.length r.Lin_check.violations)

let test_order_beats_completion_time () =
  (* completion times can invert the log order across origins; the log
     order is authoritative: seeing write 12 (later in log) is fine even
     if write 11 completed later in wall time *)
  let r = check [ wc 12 1 100; wc 11 1 150; rd 1 200 (Some 12) ] in
  Alcotest.(check int) "log order respected" 0 (List.length r.Lin_check.violations)

let test_concurrent_window_overlap () =
  (* two writes whose submission windows overlap: w11 completes at 150,
     w12 at 180.  A read inside both windows (started 120) may return
     either or nothing; a read after both completions must be at least as
     new as the later one in the log. *)
  let events t ret =
    [ wc 11 1 150; wc 12 1 180; rd 1 t ret ]
  in
  List.iter
    (fun ret ->
      let r = check (events 120 ret) in
      Alcotest.(check int) "overlap read unconstrained" 0
        (List.length r.Lin_check.violations))
    [ None; Some 11; Some 12 ];
  let r = check (events 200 (Some 12)) in
  Alcotest.(check int) "post-overlap fresh ok" 0 (List.length r.Lin_check.violations);
  let r = check (events 200 (Some 11)) in
  Alcotest.(check int) "post-overlap stale flagged" 1
    (List.length r.Lin_check.violations)

let test_duplicate_write_ids () =
  (* an at-least-once protocol can append the same client op twice; the
     oracle must not produce a false alarm: the later occurrence is the
     one that sticks in the applied state. *)
  let dup_order = [ put 1 10; put 1 11; put 1 10 ] in
  let check events = Lin_check.check ~committed_order:dup_order events in
  let r = check [ wc 10 1 100; wc 11 1 150; rd 1 200 (Some 10) ] in
  Alcotest.(check int) "dup id resolves to latest position" 0
    (List.length r.Lin_check.violations);
  (* and the duplicate really is authoritative: w11 is now stale *)
  let r = check [ wc 10 1 100; wc 11 1 150; rd 1 200 (Some 11) ] in
  Alcotest.(check int) "older id behind the dup flagged" 1
    (List.length r.Lin_check.violations)

let test_non_linearizable_history_rejected () =
  (* a classic non-linearizable interleaving: client A's write is
     acknowledged, client B then reads the older value, while a third
     read sees a value that never committed at all *)
  let events =
    [
      wc 10 1 100;
      rd 1 120 (Some 10);
      wc 11 1 140;
      rd 1 160 (Some 10) (* stale: w11 acked at 140 *);
      rd 1 180 (Some 77) (* phantom: 77 never committed *);
      rd 1 200 (Some 12) (* fresh again *);
    ]
  in
  let r = check events in
  Alcotest.(check int) "all reads checked" 4 r.Lin_check.reads_checked;
  Alcotest.(check int) "both bad reads flagged" 2
    (List.length r.Lin_check.violations)

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let test_pp_violation () =
  let r = check [ wc 10 1 100; rd 1 200 (Some 10); wc 11 1 150; rd 1 300 (Some 10) ] in
  List.iter
    (fun v ->
      let s = Fmt.str "%a" Lin_check.pp_violation v in
      Alcotest.(check bool) "message mentions the key" true
        (contains s "key 1"))
    r.Lin_check.violations

let () =
  Alcotest.run "lin_check"
    [
      ( "oracle",
        [
          Alcotest.test_case "fresh read" `Quick test_fresh_read_ok;
          Alcotest.test_case "newer ok" `Quick test_newer_than_required_ok;
          Alcotest.test_case "stale flagged" `Quick test_stale_read_flagged;
          Alcotest.test_case "phantom flagged" `Quick test_phantom_value_flagged;
          Alcotest.test_case "missing flagged" `Quick test_none_after_write_flagged;
          Alcotest.test_case "empty key" `Quick test_none_before_any_write_ok;
          Alcotest.test_case "concurrent" `Quick test_concurrent_write_not_required;
          Alcotest.test_case "per key" `Quick test_per_key_isolation;
          Alcotest.test_case "order wins" `Quick test_order_beats_completion_time;
          Alcotest.test_case "overlap window" `Quick test_concurrent_window_overlap;
          Alcotest.test_case "duplicate ids" `Quick test_duplicate_write_ids;
          Alcotest.test_case "non-lin history" `Quick
            test_non_linearizable_history_rejected;
          Alcotest.test_case "printing" `Quick test_pp_violation;
        ] );
    ]
