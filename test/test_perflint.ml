(* Tests for the perflint cost-discipline pass (lib/lint/perflint).

   Mirrors test_lint.ml: each fixture under lint_fixtures/ pairs positive
   sites with cold copies and suppressed negatives, linted under a
   synthetic filename that chooses the path scope (hot-by-name tables key
   off lib/consensus, lib/sim, lib/kvstore). *)

module Perflint = Raftpax_lint.Perflint
module Lint = Raftpax_lint.Lint
module Finding = Raftpax_lint.Finding
module Baseline = Raftpax_lint.Baseline

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let fixture_dir =
  if Sys.file_exists "lint_fixtures" then "lint_fixtures"
  else Filename.concat "test" "lint_fixtures"

let lint_fixture ~filename name =
  Perflint.lint_string ~filename (read_file (Filename.concat fixture_dir name))

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i =
    i + n <= m && (String.equal (String.sub s i n) sub || go (i + 1))
  in
  n = 0 || go 0

let count rule findings =
  List.length
    (List.filter (fun f -> String.equal f.Finding.rule rule) findings)

let check_rule_count ~rule ~expect findings =
  Alcotest.(check int)
    (Printf.sprintf "%s findings" rule)
    expect (count rule findings)

(* --- one fixture per rule --- *)

let test_quadratic () =
  let fs = lint_fixture ~filename:"lib/fx_quad.ml" "perf_quadratic.ml" in
  check_rule_count ~rule:"quadratic-accumulate" ~expect:3 fs

let test_quadratic_scoping () =
  (* The rule is scoped to lib/: the same source elsewhere is clean. *)
  let fs = lint_fixture ~filename:"tools/fx_quad.ml" "perf_quadratic.ml" in
  check_rule_count ~rule:"quadratic-accumulate" ~expect:0 fs

let test_length_consensus () =
  (* Under lib/consensus/, [handle] is hot by name: the [@perf.hot]
     site, the List.nth in handle, and the Net.nodes special case. *)
  let fs = lint_fixture ~filename:"lib/consensus/fx_len.ml" "perf_length.ml" in
  check_rule_count ~rule:"length-in-hot-path" ~expect:3 fs

let test_length_elsewhere () =
  (* Outside the consensus tree [handle] is cold; only the attributed
     function and the Net.nodes hint remain. *)
  let fs = lint_fixture ~filename:"lib/fx_len.ml" "perf_length.ml" in
  check_rule_count ~rule:"length-in-hot-path" ~expect:2 fs;
  Alcotest.(check bool)
    "Net.size hint" true
    (List.exists
       (fun f -> contains ~sub:"Net.size" f.Finding.message)
       fs)

let test_assoc () =
  let fs = lint_fixture ~filename:"lib/fx_assoc.ml" "perf_assoc.ml" in
  check_rule_count ~rule:"assoc-scan" ~expect:3 fs

let test_alloc () =
  (* Even under lib/consensus/ (where [handle] is hot by name), the
     allocation rule fires only inside [@perf.hot]-attributed functions:
     List.map, the anonymous closure, and the tuple in [broadcast]. *)
  let fs = lint_fixture ~filename:"lib/consensus/fx_alloc.ml" "perf_alloc.ml" in
  check_rule_count ~rule:"alloc-in-handler" ~expect:3 fs

let test_sort () =
  let fs = lint_fixture ~filename:"lib/fx_sort.ml" "perf_sort.ml" in
  check_rule_count ~rule:"sort-in-loop" ~expect:2 fs

let test_string () =
  (* The builder inside the ~info closure (the sanctioned lazy-render
     pattern) must stay silent — for the string rule and the alloc
     rule both. *)
  let fs = lint_fixture ~filename:"lib/fx_str.ml" "perf_string.ml" in
  check_rule_count ~rule:"string-build-in-hot-path" ~expect:3 fs;
  check_rule_count ~rule:"alloc-in-handler" ~expect:0 fs

(* --- suppression and plumbing --- *)

let test_file_level_allow () =
  let fs = lint_fixture ~filename:"lib/fx_allow.ml" "perf_file_allow.ml" in
  Alcotest.(check int) "whole file silenced" 0 (List.length fs)

let test_allow_all () =
  let hit = "let x = ref []\nlet f e = x := e @ !x\n" in
  let suppressed =
    "let x = ref []\nlet f e = ((x := e @ !x) [@perf.allow \"all\"])\n"
  in
  check_rule_count ~rule:"quadratic-accumulate" ~expect:1
    (Perflint.lint_string ~filename:"lib/a.ml" hit);
  check_rule_count ~rule:"quadratic-accumulate" ~expect:0
    (Perflint.lint_string ~filename:"lib/a.ml" suppressed)

let test_parse_error () =
  let fs = Perflint.lint_string ~filename:"lib/broken.ml" "let let = in" in
  check_rule_count ~rule:"parse-error" ~expect:1 fs;
  Alcotest.(check int) "only the parse error" 1 (List.length fs)

let test_rule_registry () =
  let ids =
    List.sort String.compare (List.map (fun r -> r.Lint.id) Perflint.rules)
  in
  Alcotest.(check (list string))
    "rule ids"
    (List.sort String.compare
       [
         "quadratic-accumulate";
         "length-in-hot-path";
         "assoc-scan";
         "alloc-in-handler";
         "sort-in-loop";
         "string-build-in-hot-path";
       ])
    ids

let test_json_render () =
  (match Perflint.lint_string ~filename:"lib/a.ml"
           "let x = ref []\nlet f e = x := e @ !x\n"
   with
  | [ f ] ->
      let j = Finding.to_json f in
      List.iter
        (fun sub ->
          Alcotest.(check bool) ("json has " ^ sub) true (contains ~sub j))
        [
          {|"file":"lib/a.ml"|};
          {|"line":2|};
          {|"rule":"quadratic-accumulate"|};
          {|"severity":"error"|};
        ]
  | fs -> Alcotest.failf "expected exactly one finding, got %d" (List.length fs));
  Alcotest.(check string) "empty array" "[]" (Finding.render_json []);
  (* Escaping: a message with quotes and newlines must stay one JSON
     string. *)
  let f =
    {
      Finding.file = "lib/a.ml";
      line = 1;
      col = 0;
      rule = "r";
      severity = Finding.Warning;
      message = "say \"hi\"\nand \\ more";
    }
  in
  Alcotest.(check bool)
    "escaped" true
    (contains ~sub:{|say \"hi\"\nand \\ more|} (Finding.to_json f))

let test_baseline_tool_header () =
  let path = "perflint_test.baseline.tmp" in
  Baseline.save ~tool:"perflint" path [];
  let header = read_file path in
  Sys.remove path;
  Alcotest.(check bool) "names the tool" true (contains ~sub:"perflint" header);
  Alcotest.(check bool)
    "points at perf.allow" true
    (contains ~sub:"perf.allow" header)

(* --- the tree itself must be clean --- *)

let test_clean_tree () =
  if Sys.file_exists "../lib" && Sys.is_directory "../lib" then begin
    let findings = Perflint.lint_paths [ "../lib" ] in
    Alcotest.(check string)
      "no perflint findings in lib/" ""
      (String.concat "\n" (List.map Finding.render findings))
  end

let () =
  Alcotest.run "perflint"
    [
      ( "rules",
        [
          Alcotest.test_case "quadratic-accumulate" `Quick test_quadratic;
          Alcotest.test_case "quadratic-accumulate scoping" `Quick
            test_quadratic_scoping;
          Alcotest.test_case "length-in-hot-path (consensus)" `Quick
            test_length_consensus;
          Alcotest.test_case "length-in-hot-path (elsewhere)" `Quick
            test_length_elsewhere;
          Alcotest.test_case "assoc-scan" `Quick test_assoc;
          Alcotest.test_case "alloc-in-handler" `Quick test_alloc;
          Alcotest.test_case "sort-in-loop" `Quick test_sort;
          Alcotest.test_case "string-build-in-hot-path" `Quick test_string;
        ] );
      ( "suppression",
        [
          Alcotest.test_case "file-level allow" `Quick test_file_level_allow;
          Alcotest.test_case "allow all" `Quick test_allow_all;
          Alcotest.test_case "parse error" `Quick test_parse_error;
        ] );
      ( "plumbing",
        [
          Alcotest.test_case "rule registry" `Quick test_rule_registry;
          Alcotest.test_case "json render" `Quick test_json_render;
          Alcotest.test_case "baseline tool header" `Quick
            test_baseline_tool_header;
        ] );
      ( "tree",
        [ Alcotest.test_case "clean tree" `Quick test_clean_tree ] );
    ]
