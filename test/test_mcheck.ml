(* The model checker against the real runtimes: clean scenarios must be
   explored to completion with the goal reached and nothing flagged; the
   two re-armed PR-1 mutants must be detected — the Mencius slot reuse
   by an invariant violation with a replayable schedule, the MultiPaxos
   missing takeover by the goal becoming unreachable under a
   still-complete search.  A determinism case re-narrates a
   counterexample schedule and demands identical output. *)

module MC = Raftpax_mcheck
module Cluster = Raftpax_nemesis.Cluster

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let scenario name =
  match MC.Scenario.by_name name with
  | Some sc -> sc
  | None -> Alcotest.failf "unknown scenario %s" name

let check ?(max_states = 2_000_000) name =
  MC.Checker.check ~max_states (scenario name)

let assert_clean (r : MC.Checker.result) =
  (match r.r_violation with
  | Some v -> Alcotest.failf "%s: unexpected violation: %s" r.r_scenario v.v_reason
  | None -> ());
  Alcotest.(check bool) "complete" true r.r_complete;
  Alcotest.(check bool) "goal reached" true r.r_goal_reached

let steady_case proto () = assert_clean (check ("steady-" ^ proto))

(* A one-command Raft* scope small enough for the quick suite; the full
   two-command steady space runs in the slow suite and in CI. *)
let raft_star_tiny_case () =
  let sc =
    {
      (MC.Scenario.steady Cluster.Raft_star) with
      MC.Model.sc_name = "raft-star-tiny";
      sc_ops = [ Raftpax_consensus.Types.Put { key = 11; size = 8; write_id = 1 } ];
      sc_targets = [ 0 ];
    }
  in
  let r = MC.Checker.check ~max_states:2_000_000 sc in
  assert_clean r;
  Alcotest.(check bool) "explored more than a handful" true (r.r_states > 50)

let mencius_mutant_case () =
  let r = check "mencius-slot-reuse" in
  match r.r_violation with
  | None -> Alcotest.fail "mutant not detected"
  | Some v ->
      Alcotest.(check bool) "non-empty schedule" true (v.v_schedule <> []);
      Alcotest.(check bool)
        "invariant names the reused slot" true
        (contains v.v_reason "slot")

and mencius_clean_case () = assert_clean (check "mencius-slot-reuse-clean")

let mp_mutant_case () =
  let r = check "mp-takeover" in
  (match r.r_violation with
  | Some v -> Alcotest.failf "unexpected violation: %s" v.v_reason
  | None -> ());
  Alcotest.(check bool) "goal unreachable" false r.r_goal_reached;
  Alcotest.(check bool) "search complete" true r.r_complete

and mp_clean_case () = assert_clean (check "mp-takeover-clean")

(* The counterexample schedule is a complete reproduction recipe: a
   fresh world narrates it to the same trace, and the final state shows
   the same violation. *)
let replay_determinism_case () =
  let r = check "mencius-slot-reuse" in
  match r.r_violation with
  | None -> Alcotest.fail "mutant not detected"
  | Some v ->
      let n1 = MC.Checker.narrate (scenario "mencius-slot-reuse") v.v_schedule in
      let n2 = MC.Checker.narrate (scenario "mencius-slot-reuse") v.v_schedule in
      Alcotest.(check (list string)) "narrations agree" n1 n2;
      Alcotest.(check bool) "trace matches stored" true (n1 = v.v_trace);
      let w = MC.Model.build (scenario "mencius-slot-reuse") in
      List.iter (MC.Model.apply w) v.v_schedule;
      Alcotest.(check bool)
        "violation reproduces" true
        (MC.Model.violation w <> None)

let schedule_roundtrip_case () =
  let r = check "mencius-slot-reuse" in
  match r.r_violation with
  | None -> Alcotest.fail "mutant not detected"
  | Some v ->
      let rendered = MC.Model.render_schedule v.v_schedule in
      Alcotest.(check bool)
        "parses back" true
        (MC.Model.parse_schedule rendered = v.v_schedule)

(* Node-id symmetry reduction: on a scope where the two followers are
   interchangeable, quotienting by the follower swap must shrink the
   visited set strictly — and must not change any verdict.  The clean
   run's counts come from the identical scenario with [sc_symmetry]
   emptied, so the two searches differ only in the fingerprint. *)
let symmetry_case proto () =
  let on = MC.Checker.check ~max_states:2_000_000 (MC.Scenario.steady_sym proto) in
  let off =
    MC.Checker.check ~max_states:2_000_000 (MC.Scenario.steady_sym_off proto)
  in
  assert_clean on;
  assert_clean off;
  Alcotest.(check bool)
    (Printf.sprintf "visited shrank (%d sym vs %d plain)" on.r_states
       off.r_states)
    true
    (on.r_states < off.r_states);
  Alcotest.(check bool) "verdicts agree" true
    (on.r_goal_reached = off.r_goal_reached
    && on.r_complete = off.r_complete)

(* The batched symmetry scope: [batchify] must preserve follower
   interchangeability (it re-routes the batched ops through the
   bootstrap leader), so the quotient still shrinks the batched space
   strictly and changes no verdict. *)
let symmetry_batched_case proto () =
  let scope = MC.Scenario.steady_sym_batched proto in
  let on = MC.Checker.check ~max_states:2_000_000 scope in
  let off =
    MC.Checker.check ~max_states:2_000_000
      { scope with MC.Model.sc_symmetry = [] }
  in
  assert_clean on;
  assert_clean off;
  Alcotest.(check bool)
    (Printf.sprintf "visited shrank (%d sym vs %d plain)" on.r_states
       off.r_states)
    true
    (on.r_states < off.r_states);
  Alcotest.(check bool) "verdicts agree" true
    (on.r_goal_reached = off.r_goal_reached
    && on.r_complete = off.r_complete)

(* Batching is non-mutating (paper Section 4): arming leader-side
   batching on a clean scope must leave the verdicts untouched —
   exhaustive search, goal reached, nothing flagged — with the flush
   timer and batch accumulators now part of the choice set and the
   fingerprints, so the claim holds over every interleaving of flush
   against delivery and not just one schedule. *)
let steady_batched_case proto () =
  assert_clean
    (MC.Checker.check ~max_states:2_000_000 (MC.Scenario.steady_batched proto))

(* Full verdict equivalence on the one protocol whose plain steady
   space is quick-suite cheap: the batched scope must reach exactly the
   unbatched scope's verdict triple. *)
let batched_equivalence_case () =
  let plain =
    MC.Checker.check ~max_states:2_000_000 (MC.Scenario.steady Cluster.Multipaxos)
  in
  let batched =
    MC.Checker.check ~max_states:2_000_000
      (MC.Scenario.steady_batched Cluster.Multipaxos)
  in
  assert_clean plain;
  assert_clean batched;
  Alcotest.(check bool) "verdict triples agree" true
    (plain.r_goal_reached = batched.r_goal_reached
    && plain.r_complete = batched.r_complete
    && (plain.r_violation = None) = (batched.r_violation = None))

(* Crash scopes are bounded hunts — the crash choice widens every BFS
   layer past exhaustibility — so the batched fault scope must commit
   its batch and flag nothing across the explored region; completeness
   is not demanded. *)
let crash_batched_case proto () =
  let r =
    MC.Checker.check ~max_states:60_000 (MC.Scenario.crash_batched proto)
  in
  (match r.r_violation with
  | Some v ->
      Alcotest.failf "%s: unexpected violation: %s" r.r_scenario v.v_reason
  | None -> ());
  Alcotest.(check bool) "goal reached" true r.r_goal_reached

let refinement_case () =
  let r = MC.Refine.check () in
  (match r.r_failure with
  | Some f ->
      Alcotest.failf "refinement fails on %s after %s"
        (MC.Model.render_choice f.f_choice)
        (MC.Model.render_schedule f.f_schedule)
  | None -> ());
  Alcotest.(check bool) "walked the runtime space" true (r.r_runtime_states > 100)

(* The invariant library doubles as a sanitizer inside nemesis runs. *)
let nemesis_sanitizer_case () =
  let open Raftpax_nemesis in
  List.iter
    (fun protocol ->
      let cfg = Nemesis.config protocol ~seed:4242 ~chaos_steps:10 in
      let r = Nemesis.run cfg in
      if not r.Nemesis.ok then Alcotest.failf "%a" Nemesis.pp_report r)
    [ Cluster.Raft_star; Cluster.Mencius; Cluster.Multipaxos ]

let () =
  Alcotest.run "mcheck"
    [
      ( "clean",
        [
          Alcotest.test_case "raft-star tiny exhaustive" `Quick
            raft_star_tiny_case;
          Alcotest.test_case "steady multipaxos exhaustive" `Quick
            (steady_case "multipaxos");
          Alcotest.test_case "steady raft-star exhaustive" `Slow
            (steady_case "raft-star");
          Alcotest.test_case "steady mencius exhaustive" `Slow
            (steady_case "mencius");
        ] );
      ( "symmetry",
        [
          Alcotest.test_case "raft follower-swap quotient" `Quick
            (symmetry_case Cluster.Raft);
          Alcotest.test_case "multipaxos follower-swap quotient" `Quick
            (symmetry_case Cluster.Multipaxos);
          Alcotest.test_case "raft-star follower-swap quotient" `Slow
            (symmetry_case Cluster.Raft_star);
          Alcotest.test_case "raft-pql follower-swap quotient" `Slow
            (symmetry_case Cluster.Raft_pql);
          Alcotest.test_case "multipaxos batched follower-swap quotient"
            `Quick
            (symmetry_batched_case Cluster.Multipaxos);
          Alcotest.test_case "raft batched follower-swap quotient" `Slow
            (symmetry_batched_case Cluster.Raft);
        ] );
      ( "mutants",
        [
          Alcotest.test_case "mencius slot reuse detected" `Quick
            mencius_mutant_case;
          Alcotest.test_case "mencius clean passes" `Quick mencius_clean_case;
          Alcotest.test_case "mp takeover detected" `Quick mp_mutant_case;
          Alcotest.test_case "mp clean passes" `Quick mp_clean_case;
        ] );
      ( "counterexamples",
        [
          Alcotest.test_case "replay determinism" `Quick replay_determinism_case;
          Alcotest.test_case "schedule round-trips" `Quick
            schedule_roundtrip_case;
        ] );
      ( "batching",
        [
          Alcotest.test_case "batched steady raft exhaustive" `Quick
            (steady_batched_case Cluster.Raft);
          Alcotest.test_case "batched steady multipaxos exhaustive" `Quick
            (steady_batched_case Cluster.Multipaxos);
          Alcotest.test_case "batched steady mencius exhaustive" `Quick
            (steady_batched_case Cluster.Mencius);
          Alcotest.test_case "batched steady raft-pql exhaustive" `Slow
            (steady_batched_case Cluster.Raft_pql);
          Alcotest.test_case "batched vs plain multipaxos verdicts" `Quick
            batched_equivalence_case;
          Alcotest.test_case "batched crash multipaxos hunt" `Slow
            (crash_batched_case Cluster.Multipaxos);
        ] );
      ( "refinement",
        [ Alcotest.test_case "raft-star refines multipaxos" `Slow refinement_case ] );
      ( "sanitizer",
        [ Alcotest.test_case "nemesis debug invariants" `Quick nemesis_sanitizer_case ] );
    ]
