open Raftpax_consensus

let test_push_get () =
  let v = Vec.create () in
  Alcotest.(check int) "empty" 0 (Vec.length v);
  for i = 0 to 99 do
    Vec.push v (i * 2)
  done;
  Alcotest.(check int) "length" 100 (Vec.length v);
  Alcotest.(check int) "get" 84 (Vec.get v 42);
  Alcotest.(check (option int)) "last" (Some 198) (Vec.last v)

let test_set () =
  let v = Vec.create () in
  Vec.push v 1;
  Vec.push v 2;
  Vec.set v 0 9;
  Alcotest.(check (list int)) "after set" [ 9; 2 ] (Vec.to_list v)

let test_truncate () =
  let v = Vec.create () in
  List.iter (Vec.push v) [ 1; 2; 3; 4; 5 ];
  Vec.truncate v 2;
  Alcotest.(check (list int)) "truncated" [ 1; 2 ] (Vec.to_list v);
  Vec.truncate v 10;
  Alcotest.(check int) "longer truncate is a no-op" 2 (Vec.length v);
  Vec.push v 7;
  Alcotest.(check (list int)) "push after truncate" [ 1; 2; 7 ] (Vec.to_list v)

let test_bounds () =
  let v = Vec.create () in
  Vec.push v 1;
  Alcotest.check_raises "get out of bounds" (Invalid_argument "Vec.get")
    (fun () -> ignore (Vec.get v 1));
  Alcotest.check_raises "set out of bounds" (Invalid_argument "Vec.set")
    (fun () -> Vec.set v (-1) 0)

let test_iteri () =
  let v = Vec.create () in
  List.iter (Vec.push v) [ 10; 20; 30 ];
  let acc = ref [] in
  Vec.iteri (fun i x -> acc := (i, x) :: !acc) v;
  Alcotest.(check (list (pair int int)))
    "indexed" [ (0, 10); (1, 20); (2, 30) ] (List.rev !acc)

let prop_push_list_roundtrip =
  QCheck.Test.make ~name:"push/to_list roundtrip" ~count:200
    QCheck.(small_list int)
    (fun xs ->
      let v = Vec.create () in
      List.iter (Vec.push v) xs;
      Vec.to_list v = xs)

let prop_truncate_prefix =
  QCheck.Test.make ~name:"truncate keeps a prefix" ~count:200
    QCheck.(pair (small_list int) small_nat)
    (fun (xs, n) ->
      let v = Vec.create () in
      List.iter (Vec.push v) xs;
      Vec.truncate v n;
      Vec.to_list v = List.filteri (fun i _ -> i < n) xs)

(* Model-based property: a random sequence of push/set/truncate ops applied
   to both the Vec and a plain-list model must agree at every step. *)
type vop = Push of int | Set of int * int | Truncate of int

let vop_gen =
  QCheck.Gen.(
    oneof
      [
        map (fun x -> Push x) small_int;
        map2 (fun i x -> Set (i, x)) small_nat small_int;
        map (fun n -> Truncate n) small_nat;
      ])

let pp_vop = function
  | Push x -> Printf.sprintf "push %d" x
  | Set (i, x) -> Printf.sprintf "set %d %d" i x
  | Truncate n -> Printf.sprintf "truncate %d" n

let prop_model_agreement =
  QCheck.Test.make ~name:"random op sequence matches list model" ~count:300
    QCheck.(
      make
        ~print:(fun ops -> String.concat "; " (List.map pp_vop ops))
        Gen.(list_size (int_bound 40) vop_gen))
    (fun ops ->
      let v = Vec.create () in
      let model = ref [] in
      List.for_all
        (fun op ->
          (match op with
          | Push x ->
              Vec.push v x;
              model := !model @ [ x ]
          | Set (i, x) when i < List.length !model ->
              Vec.set v i x;
              model := List.mapi (fun j y -> if j = i then x else y) !model
          | Set (_, _) -> () (* out of bounds: model untouched, Vec rejects *)
          | Truncate n ->
              Vec.truncate v n;
              model := List.filteri (fun j _ -> j < n) !model);
          Vec.to_list v = !model
          && Vec.length v = List.length !model
          && Vec.last v
             = (match List.rev !model with [] -> None | x :: _ -> Some x))
        ops)

let prop_set_out_of_bounds_rejected =
  QCheck.Test.make ~name:"set past the end always raises" ~count:100
    QCheck.(pair (small_list int) small_nat)
    (fun (xs, extra) ->
      let v = Vec.create () in
      List.iter (Vec.push v) xs;
      match Vec.set v (List.length xs + extra) 0 with
      | () -> false
      | exception Invalid_argument _ -> true)

let () =
  Alcotest.run "vec"
    [
      ( "vec",
        [
          Alcotest.test_case "push/get" `Quick test_push_get;
          Alcotest.test_case "set" `Quick test_set;
          Alcotest.test_case "truncate" `Quick test_truncate;
          Alcotest.test_case "bounds" `Quick test_bounds;
          Alcotest.test_case "iteri" `Quick test_iteri;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_push_list_roundtrip;
            prop_truncate_prefix;
            prop_model_agreement;
            prop_set_out_of_bounds_rejected;
          ] );
    ]
