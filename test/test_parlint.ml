(* Tests for the parlint cross-protocol parity pass (lib/lint/parlint).

   Unlike test_lint.ml / test_perflint.ml, the fixtures are whole
   miniature corpora: lint_fixtures/parlint_ok is a clean tree carrying
   one suppressed site per rule, and lint_fixtures/parlint_broken is the
   same tree with one deliberate parity violation per rule (two for the
   two-obligation rules).  File roles are detected by path segment, so
   the corpora exercise exactly the code paths the real tree does. *)

module Parlint = Raftpax_lint.Parlint
module Lint = Raftpax_lint.Lint
module Finding = Raftpax_lint.Finding
module Baseline = Raftpax_lint.Baseline

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let fixture_dir =
  if Sys.file_exists "lint_fixtures" then "lint_fixtures"
  else Filename.concat "test" "lint_fixtures"

let corpus name = Parlint.lint_paths [ Filename.concat fixture_dir name ]

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i =
    i + n <= m && (String.equal (String.sub s i n) sub || go (i + 1))
  in
  n = 0 || go 0

let count rule findings =
  List.length
    (List.filter (fun f -> String.equal f.Finding.rule rule) findings)

let check_rule_count ~rule ~expect findings =
  Alcotest.(check int)
    (Printf.sprintf "%s findings" rule)
    expect (count rule findings)

let check_mentions ~sub findings =
  Alcotest.(check bool)
    (Printf.sprintf "a finding mentions %s" sub)
    true
    (List.exists (fun f -> contains ~sub f.Finding.message) findings)

(* --- the two corpora --- *)

let test_ok_corpus () =
  (* Every rule has a violating site in this corpus too — each one
     carries a reasoned [@lint.allow], so a clean run asserts that
     suppression works on every attachment point the pass reads. *)
  let fs = corpus "parlint_ok" in
  Alcotest.(check string)
    "ok corpus is clean" ""
    (String.concat "\n" (List.map Finding.render fs))

let broken = lazy (corpus "parlint_broken")

let test_broken_total () =
  Alcotest.(check int) "total findings" 7 (List.length (Lazy.force broken))

let test_broken_wire () =
  let fs = Lazy.force broken in
  check_rule_count ~rule:"wire-coverage" ~expect:1 fs;
  (* Probe is covered nowhere: the one finding lists all four missing
     facets of the porting kit. *)
  check_mentions ~sub:"Raft.Probe" fs;
  check_mentions ~sub:"encode" fs;
  check_mentions ~sub:"golden" fs

let test_broken_knob () =
  let fs = Lazy.force broken in
  check_rule_count ~rule:"knob-threading" ~expect:1 fs;
  check_mentions ~sub:"new_knob" fs

let test_broken_handler () =
  let fs = Lazy.force broken in
  (* Two shapes: a family member missing from one protocol's msg type,
     and a declared member the runtime never dispatches. *)
  check_rule_count ~rule:"handler-parity" ~expect:2 fs;
  check_mentions ~sub:"MAckMulti" fs;
  check_mentions ~sub:"LearnMulti" fs;
  check_mentions ~sub:"never matched" fs

let test_broken_probe () =
  let fs = Lazy.force broken in
  check_rule_count ~rule:"probe-parity" ~expect:1 fs;
  check_mentions ~sub:"leader-change-started" fs

let test_broken_scenario () =
  let fs = Lazy.force broken in
  (* Two obligations: every scenario family batched, every harness
     protocol facing the chaos matrix. *)
  check_rule_count ~rule:"scenario-parity" ~expect:2 fs;
  check_mentions ~sub:"crash_batched" fs;
  check_mentions ~sub:"Raft_ll" fs

(* --- self-gating, parse errors, plumbing --- *)

let test_self_gate () =
  (* A lone consensus file is not a corpus: every cross-file rule
     self-gates on its anchor files being present, so even the broken
     raft.ml is silent on its own. *)
  let src =
    read_file
      (Filename.concat fixture_dir "parlint_broken/lib/consensus/raft.ml")
  in
  Alcotest.(check int)
    "no findings without anchors" 0
    (List.length (Parlint.lint_string ~filename:"lib/consensus/raft.ml" src))

let test_parse_error () =
  let fs = Parlint.lint_string ~filename:"lib/broken.ml" "let let = in" in
  check_rule_count ~rule:"parse-error" ~expect:1 fs;
  Alcotest.(check int) "only the parse error" 1 (List.length fs)

let test_rule_registry () =
  let ids =
    List.sort String.compare (List.map (fun r -> r.Lint.id) Parlint.rules)
  in
  Alcotest.(check (list string))
    "rule ids"
    (List.sort String.compare
       [
         "wire-coverage";
         "knob-threading";
         "handler-parity";
         "probe-parity";
         "scenario-parity";
       ])
    ids;
  Alcotest.(check bool)
    "rule_by_id finds wire-coverage" true
    (match Parlint.rule_by_id "wire-coverage" with
    | Some r -> String.equal r.Lint.id "wire-coverage"
    | None -> false);
  Alcotest.(check bool)
    "rule_by_id rejects unknown" true
    (match Parlint.rule_by_id "no-such-rule" with
    | Some _ -> false
    | None -> true)

let test_baseline_roundtrip () =
  let fs = Lazy.force broken in
  let path = "parlint_test.baseline.tmp" in
  Baseline.save ~tool:"parlint" path fs;
  let b = Baseline.load path in
  Sys.remove path;
  Alcotest.(check int) "baseline size" (List.length fs) (Baseline.size b);
  List.iter
    (fun f ->
      Alcotest.(check bool)
        (Printf.sprintf "baseline grandfathers %s" (Finding.key f))
        true (Baseline.mem b f))
    fs;
  Alcotest.(check int) "no stale entries" 0 (List.length (Baseline.stale b fs))

let test_baseline_stale () =
  (* A fixed finding leaves its baseline key dangling: [stale] reports
     it so the baseline can only shrink. *)
  let fs = Lazy.force broken in
  let path = "parlint_test.baseline.tmp" in
  Baseline.save ~tool:"parlint" path fs;
  let b = Baseline.load path in
  Sys.remove path;
  let fixed = List.tl fs in
  let stale = Baseline.stale b fixed in
  Alcotest.(check int) "one stale key" 1 (List.length stale);
  Alcotest.(check string)
    "the fixed finding's key"
    (Finding.key (List.hd fs))
    (List.hd stale)

(* --- the tree itself must be clean --- *)

let test_clean_tree () =
  if Sys.file_exists "../lib" && Sys.is_directory "../lib" then begin
    (* collect_files skips lint_fixtures/, so the broken corpus above
       cannot pollute the real tree's fact base. *)
    let findings =
      Parlint.lint_paths [ "../lib"; "../bin"; "../bench"; "../test" ]
    in
    Alcotest.(check string)
      "no parlint findings in the tree" ""
      (String.concat "\n" (List.map Finding.render findings))
  end

let () =
  Alcotest.run "parlint"
    [
      ( "corpora",
        [
          Alcotest.test_case "ok corpus (suppressed site per rule)" `Quick
            test_ok_corpus;
          Alcotest.test_case "broken corpus total" `Quick test_broken_total;
          Alcotest.test_case "wire-coverage" `Quick test_broken_wire;
          Alcotest.test_case "knob-threading" `Quick test_broken_knob;
          Alcotest.test_case "handler-parity" `Quick test_broken_handler;
          Alcotest.test_case "probe-parity" `Quick test_broken_probe;
          Alcotest.test_case "scenario-parity" `Quick test_broken_scenario;
        ] );
      ( "plumbing",
        [
          Alcotest.test_case "single-file self-gate" `Quick test_self_gate;
          Alcotest.test_case "parse error" `Quick test_parse_error;
          Alcotest.test_case "rule registry" `Quick test_rule_registry;
          Alcotest.test_case "baseline roundtrip" `Quick
            test_baseline_roundtrip;
          Alcotest.test_case "baseline stale entry" `Quick test_baseline_stale;
        ] );
      ( "tree",
        [ Alcotest.test_case "clean tree" `Quick test_clean_tree ] );
    ]
