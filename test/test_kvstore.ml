module Sim = Raftpax_sim
open Raftpax_kvstore
module Types = Raftpax_consensus.Types

let spec_with ?(read_fraction = 0.9) ?(conflict_rate = 0.05) () =
  { Workload.default with read_fraction; conflict_rate; records = 1000 }

let draw n spec =
  let wl = Workload.create ~seed:9L ~regions:5 spec in
  List.init n (fun i -> Workload.next_op wl ~region:(i mod 5))

let test_read_fraction () =
  let ops = draw 5000 (spec_with ~read_fraction:0.7 ()) in
  let reads = List.length (List.filter Types.is_read ops) in
  let frac = float_of_int reads /. 5000.0 in
  Alcotest.(check bool) (Fmt.str "≈0.7 (%.2f)" frac) true
    (frac > 0.65 && frac < 0.75)

let test_conflict_rate () =
  let ops = draw 5000 (spec_with ~conflict_rate:0.3 ()) in
  let hot =
    List.length (List.filter (fun op -> Types.key_of op = Workload.hot_key) ops)
  in
  let frac = float_of_int hot /. 5000.0 in
  Alcotest.(check bool) (Fmt.str "≈0.3 (%.2f)" frac) true
    (frac > 0.25 && frac < 0.35)

let test_region_partitioning () =
  let spec = spec_with ~conflict_rate:0.0 () in
  let wl = Workload.create ~seed:4L ~regions:5 spec in
  let per_region = spec.Workload.records / 5 in
  for region = 0 to 4 do
    for _ = 1 to 200 do
      let key = Types.key_of (Workload.next_op wl ~region) in
      let lo = 1 + (region * per_region) and hi = (region + 1) * per_region in
      Alcotest.(check bool)
        (Fmt.str "key %d in region %d partition" key region)
        true
        (key >= lo && key <= hi)
    done
  done

let test_write_ids_unique () =
  let ops = draw 2000 (spec_with ~read_fraction:0.0 ()) in
  let ids =
    List.filter_map
      (function Types.Put { write_id; _ } -> Some write_id | Types.Get _ -> None)
      ops
  in
  Alcotest.(check int) "all unique" (List.length ids)
    (List.length (List.sort_uniq compare ids))

let test_zipfian_skew () =
  (* Under Zipfian 0.99 the head of the per-region key range dominates;
     under Uniform no key does.  conflict_rate 0 so the hot-key path
     doesn't pollute the histogram. *)
  let base = { (spec_with ~read_fraction:0.0 ~conflict_rate:0.0 ()) with Workload.records = 1000 } in
  let top_share key_dist =
    let wl = Workload.create ~seed:11L ~regions:5 { base with Workload.key_dist } in
    let counts = Hashtbl.create 256 in
    let n = 5000 in
    for _ = 1 to n do
      let key = Types.key_of (Workload.next_op wl ~region:2) in
      Hashtbl.replace counts key (1 + Option.value ~default:0 (Hashtbl.find_opt counts key))
    done;
    let top = Hashtbl.fold (fun _ c acc -> max c acc) counts 0 in
    float_of_int top /. float_of_int n
  in
  let zipf = top_share (Workload.Zipfian 0.99) in
  let unif = top_share Workload.Uniform in
  Alcotest.(check bool)
    (Fmt.str "zipf head %.3f >> uniform head %.3f" zipf unif)
    true
    (zipf > 0.05 && unif < 0.03)

let test_zipfian_partition_and_determinism () =
  let spec =
    { (spec_with ~conflict_rate:0.0 ()) with Workload.key_dist = Workload.Zipfian 0.99 }
  in
  let seq () =
    let wl = Workload.create ~seed:3L ~regions:5 spec in
    List.init 500 (fun i -> Workload.next_op wl ~region:(i mod 5))
  in
  Alcotest.(check bool) "same seed, same stream" true (seq () = seq ());
  let per_region = spec.Workload.records / 5 in
  List.iteri
    (fun i op ->
      let region = i mod 5 in
      let key = Types.key_of op in
      let lo = 1 + (region * per_region) and hi = (region + 1) * per_region in
      Alcotest.(check bool)
        (Fmt.str "key %d in region %d partition" key region)
        true
        (key >= lo && key <= hi))
    (seq ())

let test_value_size_respected () =
  let spec = { (spec_with ~read_fraction:0.0 ()) with Workload.value_size = 4096 } in
  let ops = draw 100 spec in
  List.iter
    (function
      | Types.Put { size; _ } -> Alcotest.(check int) "4KB" 4096 size
      | Types.Get _ -> ())
    ops

(* ---- harness ---- *)

let quick_cfg proto =
  Harness.config ~duration_s:4 ~warmup_s:1 ~cooldown_s:1 proto
    {
      Workload.default with
      Workload.clients_per_region = 5;
      records = 500;
    }

let test_harness_runs_all_protocols () =
  List.iter
    (fun proto ->
      let r = Harness.run (quick_cfg proto) in
      Alcotest.(check bool)
        (Harness.protocol_name proto ^ " made progress")
        true
        (r.Harness.throughput_ops > 10.0);
      Alcotest.(check int)
        (Harness.protocol_name proto ^ " consistent")
        0 r.Harness.consistency_violations)
    [
      Harness.Raft;
      Harness.Raft_star;
      Harness.Raft_ll;
      Harness.Raft_pql;
      Harness.Mencius;
      Harness.Multipaxos;
    ]

let test_harness_deterministic () =
  let r1 = Harness.run (quick_cfg Harness.Raft_star) in
  let r2 = Harness.run (quick_cfg Harness.Raft_star) in
  Alcotest.(check (float 0.0001)) "same seed, same throughput"
    r1.Harness.throughput_ops r2.Harness.throughput_ops

let test_harness_seed_changes_run () =
  let cfg = quick_cfg Harness.Raft_star in
  let r1 = Harness.run cfg in
  let r2 = Harness.run { cfg with Harness.seed = 77L } in
  Alcotest.(check bool) "different seeds differ" true
    (r1.Harness.throughput_ops <> r2.Harness.throughput_ops)

let test_pql_beats_raft_on_reads () =
  let r_raft = Harness.run (quick_cfg Harness.Raft) in
  let r_pql = Harness.run (quick_cfg Harness.Raft_pql) in
  let p90 t = Sim.Stats.percentile_us t 0.90 in
  Alcotest.(check bool) "follower reads much faster under PQL" true
    (p90 r_pql.Harness.read_follower * 10 < p90 r_raft.Harness.read_follower)

let test_median_throughput () =
  let cfg = quick_cfg Harness.Raft_star in
  let m = Harness.median_throughput ~trials:3 cfg in
  Alcotest.(check bool) "median positive" true (m > 10.0)

(* ---- sharded serving layer ---- *)

let shard_workload =
  {
    Workload.default with
    Workload.clients_per_region = 5;
    records = 500;
  }

let shard_cfg ?(protocols = [ Harness.Raft_star ]) ?(seed = 1L) shards =
  Shard.config ~protocols ~duration_s:4 ~warmup_s:1 ~cooldown_s:1 ~seed
    ~shards shard_workload

(* Every key routes to exactly one group, the partition is total over the
   key space, and it is a pure function of the key — independent of any
   seed, so reseeding a run cannot move keys between groups. *)
let test_shard_routing_total_and_stable () =
  let keys = List.init 10_000 (fun i -> i + 1) in
  List.iter
    (fun shards ->
      List.iter
        (fun key ->
          let g = Workload.group_of_key ~shards key in
          Alcotest.(check bool)
            (Fmt.str "key %d in [0,%d)" key shards)
            true
            (g >= 0 && g < shards);
          Alcotest.(check int)
            (Fmt.str "key %d stable" key)
            g
            (Workload.group_of_key ~shards key))
        keys)
    [ 1; 2; 3; 4; 8 ]

let test_shard_routing_balanced () =
  let shards = 4 in
  let total = 10_000 in
  let counts = Array.make shards 0 in
  for key = 1 to total do
    let g = Workload.group_of_key ~shards key in
    counts.(g) <- counts.(g) + 1
  done;
  Alcotest.(check int) "partition is total" total (Array.fold_left ( + ) 0 counts);
  Array.iteri
    (fun g n ->
      Alcotest.(check bool)
        (Fmt.str "group %d holds a fair share (%d)" g n)
        true
        (n > total * 15 / 100 && n < total * 35 / 100))
    counts

(* A heterogeneous deployment — different protocols per group — must
   commit in every group under the routed load. *)
let test_shard_heterogeneous_mix_commits () =
  let cfg =
    shard_cfg ~protocols:[ Harness.Raft; Harness.Mencius; Harness.Multipaxos ] 3
  in
  let r = Shard.run cfg in
  Alcotest.(check int) "three groups" 3 (Array.length r.Shard.groups);
  Array.iteri
    (fun i (g : Shard.group_result) ->
      let name = Harness.protocol_name g.Shard.g_protocol in
      Alcotest.(check bool)
        (Fmt.str "group %d (%s) completed ops" i name)
        true (g.Shard.g_ops > 0);
      Alcotest.(check bool)
        (Fmt.str "group %d (%s) committed" i name)
        true
        (g.Shard.g_committed > 0))
    r.Shard.groups;
  Alcotest.(check int) "no violations" 0 r.Shard.violations

(* Cross-shard linearizability: per-group Lin_check oracles over a
   3-shard × 3-protocol × multi-seed matrix must find zero violations. *)
let test_shard_lin_matrix () =
  let mixes =
    [
      [ Harness.Raft; Harness.Mencius; Harness.Multipaxos ];
      [ Harness.Raft_star; Harness.Raft_pql; Harness.Raft ];
      [ Harness.Multipaxos; Harness.Raft_ll; Harness.Mencius ];
    ]
  in
  let reads_checked = ref 0 in
  List.iter
    (fun protocols ->
      List.iter
        (fun seed ->
          let r = Shard.run (shard_cfg ~protocols ~seed 3) in
          Array.iteri
            (fun i (g : Shard.group_result) ->
              Alcotest.(check int)
                (Fmt.str "seed %Ld group %d (%s): zero violations" seed i
                   (Harness.protocol_name g.Shard.g_protocol))
                0 g.Shard.g_violations)
            r.Shard.groups;
          reads_checked := !reads_checked + r.Shard.reads_checked)
        [ 1L; 2L; 3L ])
    mixes;
  Alcotest.(check bool) "oracles actually checked reads" true
    (!reads_checked > 1000)

(* Same seed + same shard config ⇒ byte-identical canonical snapshot and
   bench JSON, including every per-shard metric registry — the same
   discipline test_chaos enforces for nemesis traces. *)
let test_shard_deterministic () =
  let cfg =
    Shard.config
      ~protocols:[ Harness.Raft_star; Harness.Multipaxos ]
      ~duration_s:4 ~warmup_s:1 ~cooldown_s:1 ~seed:7L ~telemetry:true
      ~shards:2 shard_workload
  in
  let a = Shard.run cfg and b = Shard.run cfg in
  Alcotest.(check string)
    "canonical snapshots byte-identical"
    (Shard.snapshot_string cfg a)
    (Shard.snapshot_string cfg b);
  Alcotest.(check string)
    "bench JSON byte-identical"
    (Raftpax_telemetry.Json.to_string (Shard.result_to_json cfg a))
    (Raftpax_telemetry.Json.to_string (Shard.result_to_json cfg b));
  let c = Shard.run { cfg with Shard.seed = 8L } in
  Alcotest.(check bool) "different seed diverges" true
    (Shard.snapshot_string cfg a
    <> Shard.snapshot_string { cfg with Shard.seed = 8L } c)

let test_shard_placement () =
  let site_names sites =
    Array.to_list (Array.map Sim.Topology.site_name sites)
  in
  Alcotest.(check (list string))
    "fixed placement pins every leader"
    [ "Seoul"; "Seoul"; "Seoul" ]
    (site_names (Shard.leader_sites (Shard.Fixed Sim.Topology.Seoul) ~shards:3));
  Alcotest.(check (list string))
    "round-robin cycles the sites"
    [ "Oregon"; "Ohio"; "Ireland"; "Canada"; "Seoul"; "Oregon"; "Ohio" ]
    (site_names (Shard.leader_sites Shard.Round_robin ~shards:7));
  let nm = Shard.leader_sites Shard.Nearest_majority ~shards:5 in
  let rtts =
    Array.to_list (Array.map Sim.Topology.nearest_majority_rtt_ms nm)
  in
  Alcotest.(check (list int))
    "nearest-majority ranks sites by commit RTT"
    (List.sort Int.compare rtts)
    rtts;
  Alcotest.(check string)
    "cheapest-majority site leads the ranking"
    (Sim.Topology.site_name (List.hd Sim.Topology.ranked_by_nearest_majority))
    (Sim.Topology.site_name nm.(0))

let test_shard_protocol_cycling () =
  let cfg =
    shard_cfg ~protocols:[ Harness.Raft; Harness.Mencius ] 5
  in
  Alcotest.(check (list string))
    "protocols cycle over groups"
    [ "Raft"; "Raft*-Mencius"; "Raft"; "Raft*-Mencius"; "Raft" ]
    (List.init 5 (fun g -> Harness.protocol_name (Shard.group_protocol cfg g)))

let () =
  Alcotest.run "kvstore"
    [
      ( "workload",
        [
          Alcotest.test_case "read fraction" `Quick test_read_fraction;
          Alcotest.test_case "conflict rate" `Quick test_conflict_rate;
          Alcotest.test_case "region partition" `Quick test_region_partitioning;
          Alcotest.test_case "unique write ids" `Quick test_write_ids_unique;
          Alcotest.test_case "value size" `Quick test_value_size_respected;
          Alcotest.test_case "zipfian skew" `Quick test_zipfian_skew;
          Alcotest.test_case "zipfian partition + determinism" `Quick
            test_zipfian_partition_and_determinism;
        ] );
      ( "harness",
        [
          Alcotest.test_case "all protocols" `Slow test_harness_runs_all_protocols;
          Alcotest.test_case "deterministic" `Quick test_harness_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick test_harness_seed_changes_run;
          Alcotest.test_case "pql read advantage" `Slow test_pql_beats_raft_on_reads;
          Alcotest.test_case "median" `Slow test_median_throughput;
        ] );
      ( "shard",
        [
          Alcotest.test_case "routing total and stable" `Quick
            test_shard_routing_total_and_stable;
          Alcotest.test_case "routing balanced" `Quick test_shard_routing_balanced;
          Alcotest.test_case "placement policies" `Quick test_shard_placement;
          Alcotest.test_case "protocol cycling" `Quick test_shard_protocol_cycling;
          Alcotest.test_case "heterogeneous mix commits" `Slow
            test_shard_heterogeneous_mix_commits;
          Alcotest.test_case "cross-shard lin matrix" `Slow test_shard_lin_matrix;
          Alcotest.test_case "deterministic" `Slow test_shard_deterministic;
        ] );
    ]
