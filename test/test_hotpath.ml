(* Differential snapshots for the hot-path rewrites.

   The perf work replaced list accumulators rebuilt per message
   (Raft*'s [vote_extras], MultiPaxos's [gathered]) and restructured the
   commit scan and election-timer scheduling.  These tests pin the
   observable outcome — the committed command sequence at every replica
   after a run that forces leader churn with uncommitted entries in
   flight — to golden digests captured before the rewrites: the
   optimized paths must commit byte-identical histories.

   Regenerate goldens (after an *intentional* behavior change only) with

     HOTPATH_PRINT=1 dune exec test/test_hotpath.exe

   and the batched-mode table with

     HOTPATH_PRINT=1 HOTPATH_BATCH=16,2000 dune exec test/test_hotpath.exe
*)

module Sim = Raftpax_sim
module Engine = Sim.Engine
module Net = Sim.Net
module Topology = Sim.Topology
module Types = Raftpax_consensus.Types
module Cluster = Raftpax_nemesis.Cluster
module Workload = Raftpax_kvstore.Workload

(* FNV-1a, 64-bit.  Stable, dependency-free digest of the canonical
   committed-history string. *)
let fnv1a (s : string) : string =
  let h = ref (-3750763034362895579L) (* 0xcbf29ce484222325 *) in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h 1099511628211L)
    s;
  Printf.sprintf "%016Lx" !h

(* A closed-loop run that manufactures the accumulator-heavy scenario in
   two acts.

   Act 1 (partition, 1.0s–4.8s) targets Raft*'s [vote_extras].  Extras
   only ship when a voter's log is *longer* than the candidate's while
   the candidate's tip term is *newer*, so we build exactly that shape:
   the bootstrap leader 0 is cut off with follower 1 and fed extra
   writes (a long uncommitted term-1 tail on both), while the majority
   side {2,3,4} elects its own leader and appends a short term-2 tail.
   Side B is then crashed, the partition healed, and side B restarted —
   the next election pits a side-B candidate (short log, newer tip term)
   against voters 0/1 (long log, older tip term), which grant *with*
   extras that the winner folds through [vote_extras].

   Act 2 (crash, 6.8s–10.4s) targets MultiPaxos's [gathered]: crashing
   node 0 — the MultiPaxos leader, since partitions never trigger its
   takeover watchdog — with entries in flight forces a takeover whose
   phase 1 gathers every accepted instance into [gathered].

   Everything is simulated, so the committed history is a deterministic
   function of (protocol, seed). *)
let run_scenario ?(batch_size = 1) ?(batch_delay_us = 0) protocol seed =
  let engine = Engine.create ~seed:(Int64.of_int seed) () in
  let nodes = List.mapi (fun i site -> { Net.id = i; site }) Topology.sites in
  let net = Net.create engine ~nodes in
  let regions = List.length Topology.sites in
  let cluster = Cluster.make ~batch_size ~batch_delay_us protocol net in
  let wl =
    Workload.create ~seed:(Int64.of_int seed) ~regions
      {
        Workload.default with
        Workload.clients_per_region = 2;
        read_fraction = 0.5;
        conflict_rate = 0.2;
        records = 50;
      }
  in
  (* No client-side retry: an op swallowed by a crash just stalls its
     client, which keeps the op stream a pure function of completion
     order. *)
  let rec client_loop region () =
    let op = Workload.next_op wl ~region in
    cluster.Cluster.submit ~node:region op (fun _reply ->
        if Engine.now engine < 14_000_000 then client_loop region ())
  in
  for region = 0 to regions - 1 do
    for _ = 1 to 2 do
      let jitter = Sim.Rng.int (Engine.rng engine) 50_000 in
      Engine.schedule engine ~delay:jitter (client_loop region)
    done
  done;
  (* Direct injections (distinct key space, above the workload's
     [records]) used to grow the diverged tails on cue. *)
  let inject ~node key =
    cluster.Cluster.submit ~node
      (Types.Put { key; size = 64; write_id = 9000 + key })
      (fun _reply -> ())
  in
  (* Act 1: partition {0,1} | {2,3,4}. *)
  Engine.run engine ~until:1_000_000;
  let side a = if a <= 1 then 0 else 1 in
  Net.set_partition net (Some (fun a b -> side a <> side b));
  (* Long uncommitted tail on the isolated old leader's side. *)
  for i = 0 to 9 do
    Engine.run engine ~until:(1_100_000 + (50_000 * i));
    inject ~node:0 (60 + i)
  done;
  (* Side B is a quorum of the five, so once its longest-log member's
     timeout fires first it elects and commits a term-2 no-op.  Races
     among the equal-log members fail, so give it several rounds, then
     feed the new leader a short newer-term tail. *)
  Engine.run engine ~until:6_500_000;
  List.iter (fun n -> inject ~node:n (80 + n)) [ 2; 3; 4 ];
  (* Depose side B's leader without naming it: crash the whole side,
     heal, restart.  Everyone comes back a follower and the next
     election solicits the long-log/old-term voters 0 and 1. *)
  Engine.run engine ~until:7_000_000;
  List.iter (fun node -> cluster.Cluster.crash ~node) [ 2; 3; 4 ];
  Net.set_partition net None;
  Engine.run engine ~until:7_300_000;
  List.iter (fun node -> cluster.Cluster.restart ~node) [ 2; 3; 4 ];
  (* Act 2: crash node 0 with traffic in flight. *)
  Engine.run engine ~until:9_500_000;
  cluster.Cluster.crash ~node:0;
  Engine.run engine ~until:13_100_000;
  cluster.Cluster.restart ~node:0;
  (* Run past node 0's next 3s watchdog tick: the restarted node comes
     back a non-leader and is lowest-live, so its tick re-runs phase 1 —
     the takeover path that folds survivors' accepted instances through
     [gathered]. *)
  Engine.run engine ~until:16_500_000;
  let buf = Buffer.create 4096 in
  for node = 0 to regions - 1 do
    Buffer.add_string buf (Printf.sprintf "n%d=[" node);
    List.iter
      (fun op ->
        Buffer.add_string buf (Types.render_op op);
        Buffer.add_char buf ';')
      (cluster.Cluster.committed_ops ~node);
    Buffer.add_string buf "];"
  done;
  fnv1a (Buffer.contents buf)

(* Seeds chosen (by instrumenting the accumulator folds) so the Raft*
   runs actually ship extras in the post-heal election — the longest-log
   side-B member must win its side's election race during the partition
   for the tip terms to diverge.  All three exercise [vote_extras] under
   Raft*; 2 and 12 also do under Raft*-PQL; every seed exercises
   MultiPaxos's [gathered]. *)
let seeds = [ 2; 6; 12 ]

(* Golden digests captured from the pre-rewrite tree (list accumulators,
   per-index commit scan, cancel-and-reschedule election timers).  The
   optimized code must reproduce them byte for byte.

   Exception: the Raft* and Raft*-PQL digests were re-captured after the
   Star acceptor-rule fixes (never-shorten guard, unconditional ballot
   rewrite, verified commit frontier — see raft.ml's Append handler):
   those change Star's committed histories by design.  Vanilla Raft,
   Mencius and MultiPaxos digests still match the seed tree. *)
let goldens =
  [
    ("Raft/seed2", "6ca8586255d66e7f");
    ("Raft/seed6", "62861868be2ab828");
    ("Raft/seed12", "7a2d0d48bbbe9d37");
    ("Raft*/seed2", "32ed2f6419e0abb3");
    ("Raft*/seed6", "ab0aa81d8f2b57f0");
    ("Raft*/seed12", "178da9f557336978");
    ("Raft*-PQL/seed2", "629695b1e7640d64");
    ("Raft*-PQL/seed6", "76b8bd8808478a54");
    ("Raft*-PQL/seed12", "70d71c4df714a5ed");
    ("Raft*-Mencius/seed2", "0dcc9c0ab71c2393");
    ("Raft*-Mencius/seed6", "de6ca8fcdcebe884");
    ("Raft*-Mencius/seed12", "c163b553b4b5e990");
    ("MultiPaxos/seed2", "67809d81b1417866");
    ("MultiPaxos/seed6", "4cff576b9906e673");
    ("MultiPaxos/seed12", "7db9382849121278");
  ]

(* The same scenario with leader-side batching armed (engine-bench
   knobs: size 16, 2 ms flush).  Batched histories legitimately differ
   from unbatched ones — replication interleaves differently — so they
   get their own golden table pinning the batched commit order. *)
let batch_knobs = (16, 2_000)

let batched_goldens =
  [
    ("Raft/seed2", "71ebb2f5484b2176");
    ("Raft/seed6", "8751039ae3af2952");
    ("Raft/seed12", "1c8218caedfa7156");
    ("Raft*/seed2", "6ad8854605a3a608");
    ("Raft*/seed6", "8751039ae3af2952");
    ("Raft*/seed12", "1b43da1c2fee063b");
    ("Raft*-PQL/seed2", "fb0ffd52ac1009c2");
    ("Raft*-PQL/seed6", "2496d20a371f1509");
    ("Raft*-PQL/seed12", "b7195c35bb7f5e49");
    ("Raft*-Mencius/seed2", "0bcc052b7ca66b47");
    ("Raft*-Mencius/seed6", "c9733652de3f240a");
    ("Raft*-Mencius/seed12", "dddeef4d8fe3df81");
    ("MultiPaxos/seed2", "471dd25a761b2f75");
    ("MultiPaxos/seed6", "bfb5c994a1c1a966");
    ("MultiPaxos/seed12", "0b425fd48fc49f48");
  ]

let check_goldens ?batch_size ?batch_delay_us table () =
  List.iter
    (fun protocol ->
      List.iter
        (fun seed ->
          let name =
            Printf.sprintf "%s/seed%d" (Cluster.protocol_name protocol) seed
          in
          let got = run_scenario ?batch_size ?batch_delay_us protocol seed in
          match List.assoc_opt name table with
          | Some want -> Alcotest.(check string) name want got
          | None -> Alcotest.failf "no golden for %s (got %s)" name got)
        seeds)
    Cluster.all_protocols

let test_goldens = check_goldens goldens

let test_batched_goldens =
  check_goldens ~batch_size:(fst batch_knobs) ~batch_delay_us:(snd batch_knobs)
    batched_goldens

(* batch_size = 1 must reproduce the unbatched histories byte-for-byte
   whatever the flush delay says — the accumulator paths are bypassed
   entirely, so the *committed* goldens are the oracle, not a separate
   table. *)
let test_batch1_identity () =
  List.iter
    (fun protocol ->
      let name = Printf.sprintf "%s/seed2" (Cluster.protocol_name protocol) in
      let got = run_scenario ~batch_size:1 ~batch_delay_us:2_000 protocol 2 in
      Alcotest.(check string) name (List.assoc name goldens) got)
    Cluster.all_protocols

let print_goldens () =
  let seeds =
    match Sys.getenv_opt "HOTPATH_SEEDS" with
    | None -> seeds
    | Some s -> String.split_on_char ',' s |> List.map int_of_string
  in
  let batch_size, batch_delay_us =
    match Sys.getenv_opt "HOTPATH_BATCH" with
    | None -> (1, 0)
    | Some s -> (
        match String.split_on_char ',' s with
        | [ b; d ] -> (int_of_string b, int_of_string d)
        | _ -> failwith "HOTPATH_BATCH=<size>,<delay_us>")
  in
  List.iter
    (fun protocol ->
      List.iter
        (fun seed ->
          Printf.eprintf "RUN %s/seed%d\n%!" (Cluster.protocol_name protocol) seed;
          Printf.printf "    (\"%s/seed%d\", \"%s\");\n"
            (Cluster.protocol_name protocol)
            seed
            (run_scenario ~batch_size ~batch_delay_us protocol seed))
        seeds)
    Cluster.all_protocols

(* Determinism across repeated in-process runs: the digest depends only
   on (protocol, seed), not on allocation history or prior runs. *)
let determinism =
  QCheck.Test.make ~count:8 ~name:"scenario digest is deterministic"
    QCheck.(
      pair (int_range 0 (List.length Cluster.all_protocols - 1)) (int_range 1 500))
    (fun (pi, seed) ->
      let protocol = List.nth Cluster.all_protocols pi in
      String.equal (run_scenario protocol seed) (run_scenario protocol seed))

let () =
  if Sys.getenv_opt "HOTPATH_PRINT" <> None then print_goldens ()
  else
    Alcotest.run "hotpath"
      [
        ( "differential",
          [
            Alcotest.test_case "golden digests" `Slow test_goldens;
            Alcotest.test_case "batched golden digests" `Slow
              test_batched_goldens;
            Alcotest.test_case "batch=1 reproduces unbatched goldens" `Slow
              test_batch1_identity;
            QCheck_alcotest.to_alcotest determinism;
          ] );
      ]
