(* Geo-replication scenario from the paper's introduction: clients in five
   data centers issue writes.  Under single-leader Raft, remote clients pay
   a forwarding round-trip and the leader's resources bound throughput;
   under Raft*-Mencius every region commits through its local replica.

     dune exec examples/geo_replication.exe *)

module Sim = Raftpax_sim
module Stats = Sim.Stats
open Raftpax_kvstore

let describe name (r : Harness.result) =
  Fmt.pr "%-14s  throughput %6.0f ops/s@." name r.throughput_ops;
  Fmt.pr "    leader-region writes:   %a@." Stats.pp_summary r.write_leader;
  Fmt.pr "    follower-region writes: %a@." Stats.pp_summary r.write_follower

let () =
  let workload =
    {
      Workload.read_fraction = 0.0 (* 100% writes, as in Fig. 10 *);
      conflict_rate = 0.0;
      value_size = 8;
      records = 100_000;
      clients_per_region = 50;
      key_dist = Workload.Uniform;
    }
  in
  Fmt.pr "=== Raft with the leader in Oregon (best placement) ===@.";
  describe "Raft-Oregon"
    (Harness.run
       (Harness.config ~leader_site:Sim.Topology.Oregon Harness.Raft workload));
  Fmt.pr "@.=== Raft with the leader in Seoul (worst placement) ===@.";
  describe "Raft-Seoul"
    (Harness.run
       (Harness.config ~leader_site:Sim.Topology.Seoul Harness.Raft workload));
  Fmt.pr "@.=== Raft*-Mencius: every region is a default leader ===@.";
  describe "Raft*-Mencius"
    (Harness.run (Harness.config Harness.Mencius workload));
  Fmt.pr
    "@.Mencius removes the forwarding round-trip: follower-region writes@.\
     commit at their local majority RTT instead of forward+commit.@."
